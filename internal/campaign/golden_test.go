package campaign

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the emitter golden files")

// goldenSpec is a small fixed grid covering every emitter column class:
// bare and authenticated points, quiet and attacked points, single- and
// two-level hierarchies, default and explicit placements — including
// the l2-dram × no-L2 cells, which pin the failed-cell rendering.
func goldenSpec() Spec {
	return Spec{
		Engines:     []string{"xom"},
		Workloads:   []string{"firmware"},
		Refs:        []int{2000},
		Auths:       []string{"none", "ctree"},
		AttackRates: []float64{0, 8},
		L2Sizes:     []int{0, 32 << 10},
		Placements:  []string{"", "l2-dram"},
	}
}

// TestEmitGolden pins the exact bytes of all three emitters on the
// fixed spec, so a future PR that drifts a column — reordering,
// renaming, reformatting — fails here instead of silently reshaping
// downstream parsing. Regenerate deliberately with:
//
//	go test ./internal/campaign -run TestEmitGolden -update
func TestEmitGolden(t *testing.T) {
	rep, err := Sweep(goldenSpec(), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range Formats {
		t.Run(format, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Emit(&buf, rep, format); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", "sweep."+format+".golden")
			if *updateGolden {
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("%v (run with -update to create the golden files)", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s output drifted from %s (refresh deliberately with -update):\n%s",
					format, path, firstDiff(want, buf.Bytes()))
			}
		})
	}
}

// firstDiff renders the first differing line of got vs want.
func firstDiff(want, got []byte) string {
	wl := bytes.Split(want, []byte("\n"))
	gl := bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			return fmt.Sprintf("line %d:\n want: %s\n  got: %s", i+1, wl[i], gl[i])
		}
	}
	return fmt.Sprintf("line counts differ: want %d, got %d", len(wl), len(gl))
}
