//repro:deterministic
package campaign

import "sort"

// SummaryRow aggregates one engine's results across every grid point it
// completed: the comparative view the survey's tables exist for.
type SummaryRow struct {
	Rank         int     `json:"rank"`
	Engine       string  `json:"engine"`
	EngineName   string  `json:"engine_name"`
	Points       int     `json:"points"`
	Failed       int     `json:"failed"`
	Gates        int     `json:"gates"`
	MeanOverhead float64 `json:"mean_overhead"`
	MinOverhead  float64 `json:"min_overhead"`
	MaxOverhead  float64 `json:"max_overhead"`
	// WorstPoint is the grid point with the highest overhead, the cell
	// a designer reading the summary drills into first.
	WorstPoint string `json:"worst_point"`
}

// Summarize folds results into per-engine rows ranked by mean overhead
// (ascending: cheapest protection first), ties broken by engine key so
// the ranking is total and deterministic.
func Summarize(results []Result) []SummaryRow {
	byEngine := make(map[string]*SummaryRow)
	var order []string
	for _, res := range results {
		// The grouping unit is the protection configuration: an engine
		// plus its authenticator ("xom+tree") is a different design
		// point than the bare engine, with its own cost and area.
		label := res.EngineLabel()
		row, ok := byEngine[label]
		if !ok {
			// EngineName is filled from the first successful result
			// below (failed results carry an empty name).
			row = &SummaryRow{Engine: label}
			byEngine[label] = row
			order = append(order, label)
		}
		if res.Err != "" {
			row.Failed++
			continue
		}
		if row.EngineName == "" {
			row.EngineName = res.EngineName
			if res.Auth != "" && res.Auth != "none" {
				row.EngineName = res.EngineName + "+" + res.Auth
			}
		}
		// Engine gates are constant per engine, but AuthGates can vary
		// across a group's geometry points (the flat counter table
		// scales with line size): report the group's worst-case
		// on-chip area rather than whichever point iterated last.
		if g := res.Gates + res.AuthGates; g > row.Gates {
			row.Gates = g
		}
		if row.Points == 0 || res.Overhead < row.MinOverhead {
			row.MinOverhead = res.Overhead
		}
		if row.Points == 0 || res.Overhead > row.MaxOverhead {
			row.MaxOverhead = res.Overhead
			row.WorstPoint = res.PointKey()
		}
		// MeanOverhead accumulates the sum here; divided once below.
		row.MeanOverhead += res.Overhead
		row.Points++
	}
	rows := make([]SummaryRow, 0, len(order))
	for _, key := range order {
		row := *byEngine[key]
		if row.Points > 0 {
			row.MeanOverhead /= float64(row.Points)
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		// Engines with no successful points rank last, not first — a
		// zero mean from zero measurements is absence of data, not the
		// cheapest design.
		if (rows[i].Points == 0) != (rows[j].Points == 0) {
			return rows[j].Points == 0
		}
		if rows[i].MeanOverhead != rows[j].MeanOverhead {
			return rows[i].MeanOverhead < rows[j].MeanOverhead
		}
		return rows[i].Engine < rows[j].Engine
	})
	for i := range rows {
		rows[i].Rank = i + 1
	}
	return rows
}
