package campaign

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"sort"
	"testing"

	"repro/internal/obs/rec"
)

// tracedSpec exercises the full event taxonomy: a tree authenticator
// under an active adversary produces verify/trap/node-walk/strike
// events on top of the cache and EDU traffic.
func tracedSpec() Spec {
	return Spec{
		Engines:     []string{"aegis"},
		Workloads:   []string{"sequential"},
		Refs:        []int{3000},
		CacheSizes:  []int{4 << 10},
		Auths:       []string{"none", "tree"},
		AttackRates: []float64{16},
	}
}

func tracedRun(t *testing.T, jobs int) (*Report, *Tracer) {
	t.Helper()
	r, err := NewRunner(tracedSpec())
	if err != nil {
		t.Fatal(err)
	}
	tr := &Tracer{}
	r.Trace(tr)
	rep := r.Run(jobs)
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Fatalf("point %s failed: %s", res.Key(), res.Err)
		}
	}
	return rep, tr
}

// TestTracedSweepDeterminism is the tracing half of the campaign
// contract: the canonical merged trace of a -jobs 8 sweep serializes
// byte-identically to -jobs 1, in both export formats.
func TestTracedSweepDeterminism(t *testing.T) {
	serialize := func(jobs int) (string, string) {
		rep, _ := tracedRun(t, jobs)
		tr := TraceOf(rep)
		var cj, cc bytes.Buffer
		if err := rec.WriteChrome(&cj, tr); err != nil {
			t.Fatal(err)
		}
		if err := rec.WriteCSV(&cc, tr); err != nil {
			t.Fatal(err)
		}
		return cj.String(), cc.String()
	}
	j1, c1 := serialize(1)
	j8, c8 := serialize(8)
	if j1 != j8 {
		t.Errorf("Chrome trace differs between jobs=1 and jobs=8 (%d vs %d bytes)", len(j1), len(j8))
	}
	if c1 != c8 {
		t.Errorf("CSV trace differs between jobs=1 and jobs=8")
	}
}

// TestTraceContent checks each task's stream is bracketed by lifecycle
// records and that the protected-under-attack cell carries the whole
// taxonomy: transfers, EDU work, verification, node walks, strikes and
// traps.
func TestTraceContent(t *testing.T) {
	rep, _ := tracedRun(t, 1)
	tr := TraceOf(rep)
	if err := rec.Validate(tr); err != nil {
		t.Fatalf("merged trace invalid: %v", err)
	}
	if len(tr.Streams) != len(rep.Results) {
		t.Fatalf("got %d streams for %d results", len(tr.Streams), len(rep.Results))
	}
	for i, res := range rep.Results {
		st := tr.Streams[i]
		evs := st.Events
		if len(evs) < 3 {
			t.Fatalf("stream %q: only %d events", st.Track, len(evs))
		}
		if evs[0].Kind != rec.KindTaskStart || evs[0].Arg != uint64(res.Refs) {
			t.Errorf("stream %q: first event %v, want task-start(refs)", st.Track, evs[0])
		}
		last, pen := evs[len(evs)-1], evs[len(evs)-2]
		if last.Kind != rec.KindTaskEnd || last.Arg != res.Cycles || last.Cycle != res.Cycles {
			t.Errorf("stream %q: last event %+v, want task-end with cycles=%d", st.Track, last, res.Cycles)
		}
		if pen.Kind != rec.KindBaseline || pen.Arg != res.BaseCycles {
			t.Errorf("stream %q: penultimate event %+v, want baseline with base=%d", st.Track, pen, res.BaseCycles)
		}
		counts := make(map[rec.Kind]int)
		for _, ev := range evs {
			counts[ev.Kind]++
		}
		for _, k := range []rec.Kind{rec.KindFill, rec.KindWriteback, rec.KindDecipher, rec.KindEncipher} {
			if counts[k] == 0 {
				t.Errorf("stream %q: no %s events", st.Track, k)
			}
		}
		if uint64(counts[rec.KindStrike]) != res.Injected {
			t.Errorf("stream %q: %d strike events, schedule injected %d", st.Track, counts[rec.KindStrike], res.Injected)
		}
		if res.Auth == "tree" {
			for _, k := range []rec.Kind{rec.KindVerify, rec.KindNodeFetch, rec.KindTrap, rec.KindRetag} {
				if counts[k] == 0 {
					t.Errorf("stream %q: no %s events", st.Track, k)
				}
			}
			if uint64(counts[rec.KindTrap]) != res.Violations {
				t.Errorf("stream %q: %d trap events, report counted %d violations", st.Track, counts[rec.KindTrap], res.Violations)
			}
		} else if counts[rec.KindVerify] != 0 {
			t.Errorf("stream %q: unverified system emitted verify events", st.Track)
		}
	}
}

// TestUntracedRunnerRecordsNothing: without Trace, results carry no
// streams, TraceOf is empty, and report bytes match a traced run —
// tracing must be invisible in the report.
func TestUntracedRunnerRecordsNothing(t *testing.T) {
	plain, err := Sweep(tracedSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range plain.Results {
		if res.Trace != nil {
			t.Fatalf("untraced result %s carries a stream", res.Key())
		}
	}
	if tr := TraceOf(plain); len(tr.Streams) != 0 {
		t.Fatalf("TraceOf(untraced) has %d streams", len(tr.Streams))
	}
	traced, _ := tracedRun(t, 2)
	pj, err1 := json.Marshal(plain)
	tj, err2 := json.Marshal(traced)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(pj, tj) {
		t.Error("JSON report differs between traced and untraced runs")
	}
}

// TestTracerSnapshotAndHandler: the live hub sorts by track and serves
// decodable Chrome JSON.
func TestTracerSnapshotAndHandler(t *testing.T) {
	_, tr := tracedRun(t, 4)
	snap := tr.Snapshot()
	if len(snap.Streams) != 2 {
		t.Fatalf("snapshot has %d streams, want 2", len(snap.Streams))
	}
	if !sort.SliceIsSorted(snap.Streams, func(i, j int) bool {
		return snap.Streams[i].Track < snap.Streams[j].Track
	}) {
		t.Error("snapshot streams not sorted by track")
	}
	rr := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/trace", nil))
	if rr.Code != 200 {
		t.Fatalf("handler status %d", rr.Code)
	}
	got, err := rec.DecodeChrome(rr.Body)
	if err != nil {
		t.Fatalf("handler output does not decode: %v", err)
	}
	if err := rec.Validate(got); err != nil {
		t.Fatalf("handler output invalid: %v", err)
	}
}

// TestTraceOfMemoHit: a result served from the cross-run memo shares
// the computing task's stream; TraceOf must append the KindMemoHit
// marker to a copy, leaving the original stream untouched.
func TestTraceOfMemoHit(t *testing.T) {
	st := rec.Stream{Track: "orig", Events: []rec.Event{
		{Seq: 0, Kind: rec.KindTaskStart},
		{Seq: 1, Kind: rec.KindTaskEnd, Cycle: 42, Arg: 42},
	}}
	cfg := TaskConfig{Engine: "aegis", Workload: "sequential", Refs: 100,
		CacheSize: 4 << 10, LineSize: 32, BusWidth: 4, Auth: "none"}
	rep := &Report{Results: []Result{
		{TaskConfig: cfg, Cycles: 42, Trace: &st},
		{TaskConfig: cfg, Cycles: 42, Trace: &st},
	}}
	tr := TraceOf(rep)
	if len(tr.Streams) != 2 {
		t.Fatalf("got %d streams", len(tr.Streams))
	}
	a, b := tr.Streams[0], tr.Streams[1]
	if n := len(a.Events); n != 2 {
		t.Errorf("first stream grew to %d events", n)
	}
	if n := len(b.Events); n != 3 {
		t.Fatalf("memo stream has %d events, want 3", n)
	}
	memo := b.Events[2]
	if memo.Kind != rec.KindMemoHit || memo.Arg != 0 || memo.Seq != 2 || memo.Cycle != 42 {
		t.Errorf("memo marker %+v", memo)
	}
	if len(st.Events) != 2 {
		t.Errorf("original sealed stream mutated: %d events", len(st.Events))
	}
	if err := rec.Validate(tr); err != nil {
		t.Errorf("memoized trace invalid: %v", err)
	}
}
