// Process-lifetime shared memoization: the campaign Store.
//
// A Runner's baseline and result memos historically lived and died with
// the Runner. The sweep service (internal/serve) runs many campaigns
// over one process lifetime, and the determinism contract — every
// result is a pure function of its TaskConfig.Key(), every baseline of
// its BaselineKey() — makes completed values safely shareable across
// requests: hand the same Store to every Runner and concurrent sweeps
// share baselines and grid points instead of recomputing them. The
// singleflight memo underneath means even two sweeps computing the
// same key at the same instant run it once: the second blocks and is
// served the first's value (counted as a hit).
//
// Snapshots extend the sharing across process restarts: WriteSnapshot
// persists every completed entry as JSON and ReadSnapshot seeds a
// fresh Store from it, which is the checkpoint/resume story for long
// campaigns — a restarted sweepd replays only the points that had not
// finished.
//
//repro:shardpure
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/sim/soc"
)

// Store is the process-lifetime shared memo: plaintext baselines keyed
// by TaskConfig.BaselineKey(), completed results by TaskConfig.Key().
// A zero Store is not usable; construct with NewStore. All methods are
// safe for concurrent use by any number of Runners.
type Store struct {
	baselines *memo[soc.Report]
	results   *memo[Result]
}

// NewStore returns an empty shared store.
func NewStore() *Store {
	return &Store{
		baselines: newMemo[soc.Report](),
		results:   newMemo[Result](),
	}
}

// BaselineRuns reports how many plaintext baseline simulations actually
// executed over the store's lifetime; BaselineHits how many lookups
// were served from cache instead.
func (s *Store) BaselineRuns() int64 { return s.baselines.Misses() }

// BaselineHits is the cache-served baseline lookup count.
func (s *Store) BaselineHits() int64 { return s.baselines.Hits() }

// ResultRuns reports how many grid points were actually simulated;
// ResultHits how many task lookups were served from cache — the
// cross-request sharing win when the store backs a service.
func (s *Store) ResultRuns() int64 { return s.results.Misses() }

// ResultHits is the cache-served result lookup count.
func (s *Store) ResultHits() int64 { return s.results.Hits() }

// Len reports the resident entry counts (baselines, results),
// including in-flight computations.
func (s *Store) Len() (baselines, results int) {
	return s.baselines.size(), s.results.size()
}

// SnapshotVersion is the store snapshot schema version. Bump it when
// Result or soc.Report change shape in a way that makes old snapshots
// wrong rather than merely incomplete; ReadSnapshot rejects mismatches
// instead of silently seeding stale physics.
const SnapshotVersion = 1

// storeSnapshot is the on-disk form: a plain JSON object so checkpoint
// files are inspectable with standard tools.
type storeSnapshot struct {
	Version   int                   `json:"version"`
	Baselines map[string]soc.Report `json:"baselines"`
	Results   map[string]Result     `json:"results"`
}

// WriteSnapshot persists every completed entry to w. Failed cells
// (Result.Err != "") are skipped — they are configuration errors,
// cheap to rediscover and better re-validated by the build that loads
// the snapshot — and flight-recorder streams are never persisted.
func (s *Store) WriteSnapshot(w io.Writer) error {
	snap := storeSnapshot{
		Version:   SnapshotVersion,
		Baselines: s.baselines.snapshot(),
		Results:   make(map[string]Result),
	}
	for k, r := range s.results.snapshot() {
		if r.Err != "" {
			continue
		}
		r.Trace = nil
		snap.Results[k] = r
	}
	enc := json.NewEncoder(w)
	return enc.Encode(snap)
}

// ReadSnapshot seeds the store from a snapshot written by
// WriteSnapshot. Result keys are re-derived from each value's own
// embedded TaskConfig rather than trusted from the file, so an edited
// snapshot cannot alias a result onto the wrong grid point; baseline
// keys are taken as written (a baseline report does not embed its
// config). Entries already present in the store win.
func (s *Store) ReadSnapshot(r io.Reader) error {
	var snap storeSnapshot
	if err := json.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("campaign: reading store snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return fmt.Errorf("campaign: store snapshot version %d (this build reads %d)",
			snap.Version, SnapshotVersion)
	}
	results := make(map[string]Result, len(snap.Results))
	for _, v := range snap.Results {
		if v.Err != "" {
			continue
		}
		results[v.Key()] = v
	}
	s.results.seed(results)
	s.baselines.seed(snap.Baselines)
	return nil
}

// SaveFile atomically writes the snapshot to path: the bytes land in a
// temporary sibling first and replace the old checkpoint only on a
// clean rename, so a crash mid-save never truncates a good checkpoint.
func (s *Store) SaveFile(path string) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".store-*.json")
	if err != nil {
		return err
	}
	err = s.WriteSnapshot(tmp)
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// LoadFile seeds the store from a checkpoint file. A missing file is
// returned as-is (callers treat it as a cold start via os.IsNotExist /
// errors.Is(err, fs.ErrNotExist)).
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.ReadSnapshot(f)
}
