package campaign

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultJobs is the worker count used when the caller passes jobs <= 0:
// one worker per available CPU.
func DefaultJobs() int { return runtime.GOMAXPROCS(0) }

// forEach runs fn(i) for i in [0, n) on a bounded pool of `jobs`
// goroutines pulling indices from a shared atomic counter. It is the
// campaign's only scheduling primitive: callers write results into
// index i's slot, so the output is independent of completion order and
// a jobs=1 run is byte-identical to a jobs=N run.
func forEach(jobs, n int, fn func(i int)) {
	forEachCtx(context.Background(), jobs, n, fn)
}

// forEachCtx is forEach with cooperative cancellation: once ctx is
// done, workers stop claiming new indices and return. An index whose
// fn is already running completes normally — a task is never abandoned
// mid-simulation — so after forEachCtx returns, every index was either
// fully processed or never started, and a caller can mark the skipped
// slots cleanly (Runner.RunContext does).
func forEachCtx(ctx context.Context, jobs, n int, fn func(i int)) {
	if jobs <= 0 {
		jobs = DefaultJobs()
	}
	if jobs > n {
		jobs = n
	}
	if jobs <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				return
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(jobs)
	for w := 0; w < jobs; w++ {
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
