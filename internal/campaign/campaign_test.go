package campaign

import (
	"bytes"
	"strings"
	"testing"
)

// smallSpec is a fast multi-axis grid exercising engine sharing per
// point (3 engines), two workloads and two geometries.
func smallSpec() Spec {
	return Spec{
		Engines:    []string{"aegis", "xom", "ds5240"},
		Workloads:  []string{"sequential", "streaming"},
		Refs:       []int{3000},
		CacheSizes: []int{4 << 10, 16 << 10},
	}
}

// TestSweepDeterminism is the campaign's core contract: a -jobs 8 sweep
// emits bytes identical to -jobs 1, in every format.
func TestSweepDeterminism(t *testing.T) {
	emitAll := func(jobs int) map[string]string {
		rep, err := Sweep(smallSpec(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		for _, format := range Formats {
			var buf bytes.Buffer
			if err := Emit(&buf, rep, format); err != nil {
				t.Fatalf("emit %s: %v", format, err)
			}
			out[format] = buf.String()
		}
		return out
	}
	seq := emitAll(1)
	par := emitAll(8)
	for _, format := range Formats {
		if seq[format] != par[format] {
			t.Errorf("%s output differs between jobs=1 and jobs=8:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				format, seq[format], par[format])
		}
	}
	for _, res := range mustRun(t, smallSpec(), 8).Results {
		if res.Err != "" {
			t.Errorf("point %s failed: %s", res.Key(), res.Err)
		}
	}
}

// TestBaselineComputedOnce checks the result cache: with E engines at P
// engine-independent grid points, exactly P baselines are simulated and
// (E-1)*P lookups hit the cache.
func TestBaselineComputedOnce(t *testing.T) {
	spec := smallSpec()
	r, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run(8)
	engines := len(spec.Engines)
	points := len(rep.Results) / engines
	if got, want := r.BaselineRuns(), int64(points); got != want {
		t.Errorf("baseline simulations = %d, want %d (one per grid point)", got, want)
	}
	if got, want := r.BaselineHits(), int64((engines-1)*points); got != want {
		t.Errorf("baseline cache hits = %d, want %d", got, want)
	}
	// Shared baseline must mean shared cycle count: every engine at one
	// point reports the same BaseCycles.
	baseAt := make(map[string]uint64)
	for _, res := range rep.Results {
		pk := res.PointKey()
		if prev, ok := baseAt[pk]; ok && prev != res.BaseCycles {
			t.Errorf("point %s: baseline cycles differ across engines (%d vs %d)", pk, prev, res.BaseCycles)
		}
		baseAt[pk] = res.BaseCycles
	}

	// Re-running the same grid on the same runner resimulates nothing:
	// every task is served from the result cache.
	runs := r.Store().ResultRuns()
	r.Run(8)
	if got := r.Store().ResultRuns(); got != runs {
		t.Errorf("re-run executed %d new tasks, want 0", got-runs)
	}
}

// TestSeedSharing pins the determinism mechanics: the seed depends on
// the engine-independent point, not the engine, and distinct points get
// distinct seeds.
func TestSeedSharing(t *testing.T) {
	a := TaskConfig{Engine: "aegis", Workload: "sequential", Refs: 3000, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4}
	b := a
	b.Engine = "xom"
	if a.Seed() != b.Seed() {
		t.Errorf("engines at the same point must share a trace seed: %d vs %d", a.Seed(), b.Seed())
	}
	c := a
	c.CacheSize = 4 << 10
	if a.Seed() == c.Seed() {
		t.Errorf("distinct geometries should shard to distinct seeds")
	}
	if a.Hash() == b.Hash() {
		t.Errorf("distinct engines must have distinct config hashes")
	}
}

// TestBadPointFailsCellNotSweep: an engine whose granule does not
// divide the line size fails its own cells only.
func TestBadPointFailsCellNotSweep(t *testing.T) {
	spec := Spec{
		Engines:   []string{"aegis", "ds5240"}, // granules 16 and 8
		Workloads: []string{"streaming"},
		Refs:      []int{1000},
		LineSizes: []int{8}, // valid for ds5240, not for aegis
	}
	rep := mustRun(t, spec, 2)
	var failed, ok int
	for _, res := range rep.Results {
		if res.Err != "" {
			failed++
		} else {
			ok++
		}
	}
	if failed != 1 || ok != 1 {
		t.Errorf("want exactly the aegis cell to fail, got %d failed / %d ok", failed, ok)
	}
	for _, row := range rep.Summary {
		if row.Engine == "aegis" && row.Failed != 1 {
			t.Errorf("summary should count aegis's failed cell, got %d", row.Failed)
		}
	}
	// An engine that measured nothing must rank below one that did: a
	// zero mean from zero points is absence of data, not cheapness.
	last := rep.Summary[len(rep.Summary)-1]
	if last.Engine != "aegis" || last.Points != 0 {
		t.Errorf("zero-point engine should rank last, got %q (points=%d)", last.Engine, last.Points)
	}
}

func TestRunSuiteMatchesDirect(t *testing.T) {
	// E13 and E15 are trace-free and fast; the suite path must return
	// exactly what the registry runner returns, in the order asked.
	tables, err := RunSuite([]string{"E15", "e13"}, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("got %d tables, want 2", len(tables))
	}
	if !strings.HasPrefix(tables[0].ID, "E15") || !strings.HasPrefix(tables[1].ID, "E13") {
		t.Errorf("suite order not preserved: got %s, %s", tables[0].ID, tables[1].ID)
	}
	if _, err := RunSuite([]string{"E99"}, 0, 1); err == nil {
		t.Error("unknown experiment id should error")
	}
}

func mustRun(t *testing.T, spec Spec, jobs int) *Report {
	t.Helper()
	rep, err := Sweep(spec, jobs)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// The determinism contract must survive the active-adversary axis: the
// attack schedule is seed-derived per point, so a -jobs 8 sweep with
// authenticators and strikes enabled emits bytes identical to -jobs 1.
func TestSweepDeterminismWithAttacks(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Engines:     []string{"aegis", "xom"},
			Workloads:   []string{"firmware"},
			Refs:        []int{8000},
			Auths:       []string{"none", "flat-mac", "tree", "ctree"},
			AttackRates: []float64{0, 8},
		}
	}
	emitAll := func(jobs int) map[string]string {
		rep, err := Sweep(spec(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		for _, format := range Formats {
			var buf bytes.Buffer
			if err := Emit(&buf, rep, format); err != nil {
				t.Fatalf("emit %s: %v", format, err)
			}
			out[format] = buf.String()
		}
		return out
	}
	seq := emitAll(1)
	par := emitAll(8)
	for _, format := range Formats {
		if seq[format] != par[format] {
			t.Errorf("%s output differs between jobs=1 and jobs=8 with attacks enabled:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				format, seq[format], par[format])
		}
	}

	rep := mustRun(t, spec(), 8)
	var sawDetection, sawAuthStall bool
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Errorf("point %s failed: %s", res.Key(), res.Err)
		}
		if res.Auth == "none" && (res.Violations != 0 || res.Detected != 0) {
			t.Errorf("auth=none point %s reports detections", res.Key())
		}
		if res.AttackRate == 0 && res.Injected != 0 {
			t.Errorf("rate=0 point %s reports injections", res.Key())
		}
		if res.Detected > 0 {
			sawDetection = true
		}
		if res.Auth != "none" && res.AuthStalls > 0 {
			sawAuthStall = true
		}
	}
	if !sawDetection {
		t.Error("no grid point detected any tamper; the attack axis is not exercising detection")
	}
	if !sawAuthStall {
		t.Error("no authenticated point charged verifier cycles")
	}
}

// The determinism contract must survive the hierarchy axes, and the
// sharing rules must hold: every placement at one (point, L2) shares a
// baseline, every L2 at one point shares a trace, and the cells whose
// placement needs an L2 that is not there fail alone.
func TestSweepDeterminismWithHierarchy(t *testing.T) {
	spec := func() Spec {
		return Spec{
			Engines:    []string{"aegis"},
			Workloads:  []string{"firmware"},
			Refs:       []int{6000},
			L2Sizes:    []int{0, 32 << 10},
			Placements: []string{"", "l1-l2", "l2-dram"},
		}
	}
	emitAll := func(jobs int) map[string]string {
		rep, err := Sweep(spec(), jobs)
		if err != nil {
			t.Fatal(err)
		}
		out := make(map[string]string)
		for _, format := range Formats {
			var buf bytes.Buffer
			if err := Emit(&buf, rep, format); err != nil {
				t.Fatalf("emit %s: %v", format, err)
			}
			out[format] = buf.String()
		}
		return out
	}
	seq := emitAll(1)
	par := emitAll(8)
	for _, format := range Formats {
		if seq[format] != par[format] {
			t.Errorf("%s output differs between jobs=1 and jobs=8 with hierarchy axes:\n--- jobs=1 ---\n%s\n--- jobs=8 ---\n%s",
				format, seq[format], par[format])
		}
	}

	r, err := NewRunner(spec())
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run(8)
	baseAt := map[string]uint64{}
	var failedNoL2, okPoints int
	for _, res := range rep.Results {
		if res.L2Size == 0 && (res.Placement == "l1-l2" || res.Placement == "l2-dram") {
			if res.Err == "" {
				t.Errorf("point %s: L2 placement without an L2 did not fail", res.Key())
			}
			failedNoL2++
			continue
		}
		if res.Err != "" {
			t.Errorf("point %s failed: %s", res.Key(), res.Err)
			continue
		}
		okPoints++
		// One baseline per (point, hierarchy): same BaseCycles across
		// placements, different across L2 sizes (an L2 changes the
		// plaintext system).
		bk := res.BaselineKey()
		if prev, ok := baseAt[bk]; ok && prev != res.BaseCycles {
			t.Errorf("baseline %s: cycles differ across placements (%d vs %d)", bk, prev, res.BaseCycles)
		}
		baseAt[bk] = res.BaseCycles
	}
	if failedNoL2 != 2 {
		t.Errorf("expected exactly the 2 placement-without-L2 cells to fail, got %d", failedNoL2)
	}
	if len(baseAt) != 2 {
		t.Errorf("expected 2 distinct baselines (single-level + 32K L2), got %d", len(baseAt))
	}
	if got, want := r.BaselineRuns(), int64(2); got != want {
		t.Errorf("baseline simulations = %d, want %d (one per hierarchy)", got, want)
	}
	// The outer placement must actually be filtered relative to inner
	// at the 32K point — the sweep carries E22's argument.
	var inner, outer uint64
	for _, res := range rep.Results {
		if res.L2Size > 0 && res.Placement == "l1-l2" {
			inner = res.EngineLines
		}
		if res.L2Size > 0 && res.Placement == "l2-dram" {
			outer = res.EngineLines
		}
	}
	if inner == 0 || outer >= inner {
		t.Errorf("engine exposure not filtered: inner %d, outer %d", inner, outer)
	}
}
