//repro:deterministic
//repro:shardpure
package campaign

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/sim/trace"
)

// TaskConfig is one grid point: the full configuration of a single
// overhead measurement. It is a value type — two equal configs are the
// same experiment and hash to the same key.
type TaskConfig struct {
	Engine string `json:"engine"`
	// Auth is the authenticator key ("none" for no verification).
	Auth string `json:"auth"`
	// AttackRate is the active-adversary strike rate in tampers per
	// 10,000 references (0 = no adversary).
	AttackRate float64 `json:"attack_rate"`
	// Placement is the EDU/verifier boundary (edu.ParsePlacement
	// vocabulary; "" = the outermost boundary of the hierarchy).
	Placement string `json:"placement"`
	Workload  string `json:"workload"`
	Refs      int    `json:"refs"`
	CacheSize int    `json:"cache_size"`
	// L2Size is the optional second-level cache capacity in bytes
	// (0 = single-level system).
	L2Size   int `json:"l2_size"`
	LineSize int `json:"line_size"`
	BusWidth int `json:"bus_width"`
}

// Key is the canonical string identity of the config; every cache key
// and seed derivation goes through it so identity has one definition.
// An unset Auth normalizes to "none" and an unset Placement to
// "default": the variants spell the same system.
func (c TaskConfig) Key() string {
	auth := c.Auth
	if auth == "" {
		auth = "none"
	}
	return fmt.Sprintf("engine=%s auth=%s attack=%g place=%s l2=%d %s",
		c.Engine, auth, c.AttackRate, c.PlacementName(), c.L2Size, c.PointKey())
}

// PlacementName is the placement with the default spelled out.
func (c TaskConfig) PlacementName() string {
	if c.Placement == "" {
		return "default"
	}
	return c.Placement
}

// EngineLabel is the composite protection identity ("xom+tree"), the
// unit the ranked summary groups by — an authenticated system is a
// different design point than its bare engine.
func (c TaskConfig) EngineLabel() string {
	if c.Auth == "" || c.Auth == "none" {
		return c.Engine
	}
	return c.Engine + "+" + c.Auth
}

// PointKey identifies the protection-independent grid point: the
// workload, trace length, and core system geometry — excluding the
// engine, the authenticator, the attack rate, the EDU placement AND
// the L2 (which joins via BaselineKey). All protection configurations
// at one point share a trace (seeded from this key), which is what
// makes the overhead columns comparable and -jobs N byte-identical.
// The L2 stays out so every hierarchy depth at a point measures the
// same reference stream.
func (c TaskConfig) PointKey() string {
	return fmt.Sprintf("workload=%s refs=%d cache=%d line=%d bus=%d",
		c.Workload, c.Refs, c.CacheSize, c.LineSize, c.BusWidth)
}

// BaselineKey identifies the plaintext baseline simulation a task
// measures against: the point plus the cache hierarchy, because an L2
// changes baseline cycles, while the protection axes (engine, auth,
// attack, placement) do not exist in a Null-engine system. Every
// protection configuration at one (point, L2) shares the baseline
// cached under this key. For single-level tasks it equals PointKey, so
// pre-hierarchy sweeps reuse exactly the baselines they always did.
func (c TaskConfig) BaselineKey() string {
	if c.L2Size == 0 {
		return c.PointKey()
	}
	return fmt.Sprintf("%s l2=%d", c.PointKey(), c.L2Size)
}

// Hash is a stable 64-bit FNV-1a hash of Key; it survives process
// restarts (no map iteration, no pointer identity involved).
func (c TaskConfig) Hash() uint64 { return hashString(c.Key()) }

// Seed derives the task's trace seed from the engine-independent point
// hash. Parallel and sequential sweeps hand each task this same seed,
// so scheduling order cannot perturb a single generated reference.
func (c TaskConfig) Seed() int64 {
	return int64(hashString(c.PointKey()) & (1<<63 - 1))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Task is one unit of campaign work: a grid point plus its position in
// the expansion order (which fixes its slot in the result table).
type Task struct {
	Index int
	Cfg   TaskConfig
}

// Expand enumerates the grid in a fixed nesting order (engine outermost,
// bus width innermost). The order is part of the determinism contract:
// results are reported in expansion order regardless of which worker
// finishes first.
func (s *Spec) Expand() []Task {
	s.Fill()
	tasks := make([]Task, 0, s.Size())
	for _, eng := range s.Engines {
		for _, auth := range s.Auths {
			for _, atk := range s.AttackRates {
				for _, place := range s.Placements {
					for _, wl := range s.Workloads {
						for _, refs := range s.Refs {
							for _, cs := range s.CacheSizes {
								for _, l2 := range s.L2Sizes {
									for _, ls := range s.LineSizes {
										for _, bw := range s.BusWidths {
											tasks = append(tasks, Task{
												Index: len(tasks),
												Cfg: TaskConfig{
													Engine: eng, Auth: auth, AttackRate: atk,
													Placement: place, Workload: wl, Refs: refs,
													CacheSize: cs, L2Size: l2, LineSize: ls, BusWidth: bw,
												},
											})
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return tasks
}

// workloadSource fetches the shared knob settings for the named
// workload (core.WorkloadProfile, the same table the E-suite uses) and
// builds the point's streaming reference source from the task's derived
// seed — the per-task RNG shard. Seeding via Config.Seed (identical
// references to an explicit NewRand(seed)) keeps the source replayable,
// and streaming keeps a sweep's memory bounded by cache geometry, not
// trace length. A workload registered in trace.Sources but missing from
// the profile table is an error, not a silent zero-knob sweep: the two
// registries must move together.
func workloadSource(name string, refs int, seed int64) (trace.RefSource, error) {
	cfg, ok := core.WorkloadProfile(name, refs)
	if !ok {
		return nil, fmt.Errorf("campaign: workload %q has no knob profile (core.WorkloadProfile)", name)
	}
	cfg.Seed = seed
	return trace.Sources[name](cfg), nil
}
