package campaign

import (
	"fmt"
	"hash/fnv"

	"repro/internal/core"
	"repro/internal/sim/trace"
)

// TaskConfig is one grid point: the full configuration of a single
// overhead measurement. It is a value type — two equal configs are the
// same experiment and hash to the same key.
type TaskConfig struct {
	Engine string `json:"engine"`
	// Auth is the authenticator key ("none" for no verification).
	Auth string `json:"auth"`
	// AttackRate is the active-adversary strike rate in tampers per
	// 10,000 references (0 = no adversary).
	AttackRate float64 `json:"attack_rate"`
	Workload   string  `json:"workload"`
	Refs       int     `json:"refs"`
	CacheSize  int     `json:"cache_size"`
	LineSize   int     `json:"line_size"`
	BusWidth   int     `json:"bus_width"`
}

// Key is the canonical string identity of the config; every cache key
// and seed derivation goes through it so identity has one definition.
// An unset Auth normalizes to "none": the two spell the same system.
func (c TaskConfig) Key() string {
	auth := c.Auth
	if auth == "" {
		auth = "none"
	}
	return fmt.Sprintf("engine=%s auth=%s attack=%g %s", c.Engine, auth, c.AttackRate, c.PointKey())
}

// EngineLabel is the composite protection identity ("xom+tree"), the
// unit the ranked summary groups by — an authenticated system is a
// different design point than its bare engine.
func (c TaskConfig) EngineLabel() string {
	if c.Auth == "" || c.Auth == "none" {
		return c.Engine
	}
	return c.Engine + "+" + c.Auth
}

// PointKey identifies the protection-independent grid point: the
// workload, trace length, and system geometry — excluding the engine,
// the authenticator AND the attack rate. All protection configurations
// at one point share a trace (seeded from this key) and a plaintext
// baseline (cached under it), which is what makes baseline caching
// sound and the overhead columns comparable.
func (c TaskConfig) PointKey() string {
	return fmt.Sprintf("workload=%s refs=%d cache=%d line=%d bus=%d",
		c.Workload, c.Refs, c.CacheSize, c.LineSize, c.BusWidth)
}

// Hash is a stable 64-bit FNV-1a hash of Key; it survives process
// restarts (no map iteration, no pointer identity involved).
func (c TaskConfig) Hash() uint64 { return hashString(c.Key()) }

// Seed derives the task's trace seed from the engine-independent point
// hash. Parallel and sequential sweeps hand each task this same seed,
// so scheduling order cannot perturb a single generated reference.
func (c TaskConfig) Seed() int64 {
	return int64(hashString(c.PointKey()) & (1<<63 - 1))
}

func hashString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// Task is one unit of campaign work: a grid point plus its position in
// the expansion order (which fixes its slot in the result table).
type Task struct {
	Index int
	Cfg   TaskConfig
}

// Expand enumerates the grid in a fixed nesting order (engine outermost,
// bus width innermost). The order is part of the determinism contract:
// results are reported in expansion order regardless of which worker
// finishes first.
func (s *Spec) Expand() []Task {
	s.Fill()
	tasks := make([]Task, 0, s.Size())
	for _, eng := range s.Engines {
		for _, auth := range s.Auths {
			for _, atk := range s.AttackRates {
				for _, wl := range s.Workloads {
					for _, refs := range s.Refs {
						for _, cs := range s.CacheSizes {
							for _, ls := range s.LineSizes {
								for _, bw := range s.BusWidths {
									tasks = append(tasks, Task{
										Index: len(tasks),
										Cfg: TaskConfig{
											Engine: eng, Auth: auth, AttackRate: atk,
											Workload: wl, Refs: refs,
											CacheSize: cs, LineSize: ls, BusWidth: bw,
										},
									})
								}
							}
						}
					}
				}
			}
		}
	}
	return tasks
}

// workloadSource fetches the shared knob settings for the named
// workload (core.WorkloadProfile, the same table the E-suite uses) and
// builds the point's streaming reference source from the task's derived
// seed — the per-task RNG shard. Seeding via Config.Seed (identical
// references to an explicit NewRand(seed)) keeps the source replayable,
// and streaming keeps a sweep's memory bounded by cache geometry, not
// trace length. A workload registered in trace.Sources but missing from
// the profile table is an error, not a silent zero-knob sweep: the two
// registries must move together.
func workloadSource(name string, refs int, seed int64) (trace.RefSource, error) {
	cfg, ok := core.WorkloadProfile(name, refs)
	if !ok {
		return nil, fmt.Errorf("campaign: workload %q has no knob profile (core.WorkloadProfile)", name)
	}
	cfg.Seed = seed
	return trace.Sources[name](cfg), nil
}
