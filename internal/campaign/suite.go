//repro:deterministic
package campaign

import (
	"fmt"

	"repro/internal/core"
)

// RunSuite executes the named experiments from the core registry on the
// campaign worker pool and returns their tables in registry order (the
// order ids were given). Empty ids means the whole E1–E22 suite.
//
// Experiments are independent closed-form drivers — each builds its own
// engines and seeds its own traces — so running them concurrently
// changes wall-clock, never a table cell. The first failure is
// reported; completed tables are still returned so a partial suite run
// remains inspectable.
func RunSuite(ids []string, refs, jobs int) ([]*core.Table, error) {
	var exps []core.Experiment
	if len(ids) == 0 {
		exps = core.Experiments()
	} else {
		for _, id := range ids {
			exp, ok := core.ExperimentByID(id)
			if !ok {
				return nil, fmt.Errorf("campaign: unknown experiment %q (want %s)", id, core.ExperimentIDRange())
			}
			exps = append(exps, exp)
		}
	}

	tables := make([]*core.Table, len(exps))
	errs := make([]error, len(exps))
	forEach(jobs, len(exps), func(i int) {
		tbl, err := exps[i].Run(refs)
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", exps[i].ID, err)
			return
		}
		tables[i] = tbl
	})

	out := make([]*core.Table, 0, len(exps))
	var firstErr error
	for i := range exps {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = errs[i]
			}
			continue
		}
		out = append(out, tables[i])
	}
	return out, firstErr
}
