package campaign

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
)

// An observed runner must account every planned reference exactly once
// (tasks plus memoized baselines), drain its workers, and leave the
// emitted report identical to an unobserved run.
func TestRunnerObserve(t *testing.T) {
	spec := Spec{
		Engines:   []string{"aegis", "xom"},
		Workloads: []string{"sequential"},
		Auths:     []string{"ctree"},
		Refs:      []int{2000},
	}
	reg := obs.NewRegistry()
	m := NewMetrics(reg)
	runner, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	runner.Observe(m)
	rep := runner.Run(2)

	n := int64(len(rep.Results))
	if n == 0 {
		t.Fatal("empty report")
	}
	for _, res := range rep.Results {
		if res.Err != "" {
			t.Fatalf("task failed: %s", res.Err)
		}
	}
	if got := reg.Gauge("campaign.tasks_total").Load(); got != n {
		t.Errorf("tasks_total = %d, want %d", got, n)
	}
	if got := reg.Counter("campaign.tasks_done").Load(); got != uint64(n) {
		t.Errorf("tasks_done = %d, want %d", got, n)
	}
	if got := reg.Counter("campaign.task_errors").Load(); got != 0 {
		t.Errorf("task_errors = %d, want 0", got)
	}
	if got := reg.Gauge("campaign.workers_busy").Load(); got != 0 {
		t.Errorf("workers_busy = %d after Run, want 0", got)
	}
	if got := reg.Gauge("campaign.baseline_runs").Load(); got != runner.BaselineRuns() {
		t.Errorf("baseline_runs = %d, want %d", got, runner.BaselineRuns())
	}

	// Every planned reference simulated exactly once: each task's trace
	// plus one trace per unique baseline.
	planned := uint64(reg.Gauge("campaign.refs_planned").Load())
	if got := reg.Counter("soc.refs").Load(); got != planned {
		t.Errorf("soc.refs = %d, want planned %d", got, planned)
	}
	// The ctree tasks exercised the tree authenticator's live counters.
	if reg.Counter("authtree.verified").Load() == 0 {
		t.Error("authtree.verified did not move under auth=ctree")
	}

	// Re-running the same grid is served from the result memo: no new
	// simulation work, one memo hit per task.
	runner.Run(2)
	if got := reg.Counter("campaign.memo_hits").Load(); got != uint64(n) {
		t.Errorf("memo_hits after re-run = %d, want %d", got, n)
	}
	if got := reg.Counter("soc.refs").Load(); got != planned {
		t.Errorf("soc.refs after memoized re-run = %d, want unchanged %d", got, planned)
	}

	// Observation must not perturb results: an unobserved runner on the
	// same spec emits an identical report.
	plain, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(plain.Run(1))
	if string(a) != string(b) {
		t.Error("observed report differs from unobserved report")
	}
}
