//repro:deterministic
package campaign

import (
	"repro/internal/obs"
	"repro/internal/sim/authtree"
	"repro/internal/sim/soc"
)

// Metrics is the campaign's live instrumentation bundle: task
// lifecycle, memo effectiveness, worker utilization, and — through the
// embedded soc/authtree bundles — every simulated system's hot-loop
// stream. All workers share the same pre-registered cells, so the
// registry view is the whole sweep's aggregate; the progress reporter
// derives refs/sec and ETA from it without touching the result path
// (emitted bytes stay independent of -jobs and of whether anyone is
// watching).
type Metrics struct {
	// TasksTotal / RefsPlanned are set once at expansion: the campaign's
	// denominator (planned refs include each unique baseline once).
	TasksTotal  *obs.Gauge
	RefsPlanned *obs.Gauge
	// TasksStarted / TasksDone / TaskErrors trace the task lifecycle
	// (queued→running→done); errors count failed grid cells.
	TasksStarted *obs.Counter
	TasksDone    *obs.Counter
	TaskErrors   *obs.Counter
	// MemoHits counts result-cache hits; BaselineRuns / BaselineHits the
	// baseline memo's computed-vs-served split (the sharing win).
	MemoHits     *obs.Counter
	BaselineRuns *obs.Gauge
	BaselineHits *obs.Gauge
	// WorkersBusy is the number of workers currently inside a task.
	WorkersBusy *obs.Gauge
	// SoC and Auth are installed on every simulated system (baseline and
	// engine runs alike), so soc.refs accumulates sweep-wide.
	SoC  *soc.Metrics
	Auth authtree.Metrics
}

// NewMetrics registers the campaign inventory on r ("campaign.*" plus
// the soc/cache/authtree inventories) and returns the bundle to pass
// to Runner.Observe.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		TasksTotal:   r.Gauge("campaign.tasks_total"),
		RefsPlanned:  r.Gauge("campaign.refs_planned"),
		TasksStarted: r.Counter("campaign.tasks_started"),
		TasksDone:    r.Counter("campaign.tasks_done"),
		TaskErrors:   r.Counter("campaign.task_errors"),
		MemoHits:     r.Counter("campaign.memo_hits"),
		BaselineRuns: r.Gauge("campaign.baseline_runs"),
		BaselineHits: r.Gauge("campaign.baseline_hits"),
		WorkersBusy:  r.Gauge("campaign.workers_busy"),
		SoC:          soc.NewMetrics(r),
		Auth:         authtree.NewMetrics(r),
	}
}

// Observe installs live metrics on the runner (nil to disable, the
// default). Must be called before Run; the bundle is shared by all
// workers.
func (r *Runner) Observe(m *Metrics) { r.m = m }

// plannedRefs is the sweep's total simulated-reference budget: each
// task's trace plus each unique plaintext baseline's trace (baselines
// are memoized under BaselineKey, so every distinct key simulates
// exactly once per Run).
func plannedRefs(tasks []Task) uint64 {
	var total uint64
	baselines := make(map[string]bool)
	for _, t := range tasks {
		total += uint64(t.Cfg.Refs)
		if k := t.Cfg.BaselineKey(); !baselines[k] {
			baselines[k] = true
			total += uint64(t.Cfg.Refs)
		}
	}
	return total
}
