//repro:deterministic
package campaign

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/edu"
)

// SpecFlags binds the grid axes to a FlagSet so every front end — the
// sweep CLI and sweepd's warm-up axes — constructs its Spec from one
// definition of the flag vocabulary, with one help text and one parse
// path. Register with RegisterSpecFlags, then call Spec after
// fs.Parse.
type SpecFlags struct {
	engines, workloads, refs, cache, l2, placement *string
	line, bus, auths, attack                       *string
}

// RegisterSpecFlags installs the grid-axis flags on fs and returns the
// handle that builds the Spec from their parsed values.
func RegisterSpecFlags(fs *flag.FlagSet) *SpecFlags {
	f := &SpecFlags{}
	f.engines = fs.String("engines", "", "engine keys to sweep (default: all surveyed engines)")
	f.workloads = fs.String("workloads", "", "workload names to sweep (default: all generators)")
	f.refs = fs.String("refs", "", fmt.Sprintf("trace lengths to sweep (default: %d)", core.DefaultRefs))
	f.cache = fs.String("cache", "", "L1 cache sizes in bytes, K/M suffixes ok (default: 16K)")
	f.l2 = fs.String("l2", "", "L2 cache sizes in bytes, 0 = no L2, K/M suffixes ok (default: 0)")
	f.placement = fs.String("placement", "", fmt.Sprintf("EDU placements to sweep: %s (default: default)", strings.Join(edu.PlacementNames(), ",")))
	f.line = fs.String("line", "", "cache line sizes in bytes (default: 32)")
	f.bus = fs.String("bus", "", "bus widths in bytes (default: 4)")
	f.auths = fs.String("authtree", "", fmt.Sprintf("authenticator keys to sweep: %s (default: none)", strings.Join(core.AuthKeys(), ",")))
	f.attack = fs.String("attack", "", "active-adversary strike rates in tampers per 10k refs (default: 0)")
	return f
}

// Empty reports whether no grid-axis flag was set — the all-defaults
// sweep, and the condition under which modes that reject grid axes
// (sweep -suite, a flagless sweepd) are allowed.
func (f *SpecFlags) Empty() bool {
	return *f.engines == "" && *f.workloads == "" && *f.refs == "" &&
		*f.cache == "" && *f.l2 == "" && *f.placement == "" &&
		*f.line == "" && *f.bus == "" && *f.auths == "" && *f.attack == ""
}

// Spec builds the grid spec from the parsed flag values. List parsing
// errors surface here; registry validation happens in NewRunner (or
// Spec.Validate) as always.
func (f *SpecFlags) Spec() (Spec, error) {
	spec := Spec{
		Engines:    ParseList(*f.engines),
		Workloads:  ParseList(*f.workloads),
		Auths:      ParseList(*f.auths),
		Placements: ParseList(*f.placement),
	}
	var err error
	if spec.AttackRates, err = ParseFloatList(*f.attack); err != nil {
		return Spec{}, err
	}
	if spec.Refs, err = ParseIntList(*f.refs); err != nil {
		return Spec{}, err
	}
	if spec.CacheSizes, err = ParseIntList(*f.cache); err != nil {
		return Spec{}, err
	}
	if spec.L2Sizes, err = ParseIntList(*f.l2); err != nil {
		return Spec{}, err
	}
	if spec.LineSizes, err = ParseIntList(*f.line); err != nil {
		return Spec{}, err
	}
	if spec.BusWidths, err = ParseIntList(*f.bus); err != nil {
		return Spec{}, err
	}
	return spec, nil
}
