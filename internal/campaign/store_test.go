package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func cancelSpec() Spec {
	return Spec{
		Engines:   []string{"aegis", "xom", "gi", "vlsi"},
		Workloads: []string{"sequential"},
		Refs:      []int{5000},
	}
}

func emitJSON(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := Emit(&buf, rep, "json"); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestRunContextCancelReportsPartialState(t *testing.T) {
	r, err := NewRunner(cancelSpec())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	delivered := 0
	r.OnResult(func(Task, Result) {
		delivered++
		cancel() // stop after the first completed point
	})
	rep, err := r.RunContext(ctx, 1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	if len(rep.Results) != 4 {
		t.Fatalf("report has %d slots, want every grid point", len(rep.Results))
	}
	tasks := r.Plan()
	completed, canceled := 0, 0
	for i, res := range rep.Results {
		switch res.Err {
		case "":
			completed++
		case CanceledErr:
			canceled++
			// Placeholders still carry their grid point.
			if res.Key() != tasks[i].Cfg.Key() {
				t.Errorf("placeholder %d lost its config: %+v", i, res.TaskConfig)
			}
		default:
			t.Errorf("slot %d: unexpected error %q", i, res.Err)
		}
	}
	// Sequential execution + cancel-on-first-delivery: exactly one point
	// ran (the in-flight task always completes; later ones never start).
	if completed != 1 || canceled != 3 {
		t.Fatalf("completed=%d canceled=%d, want 1 and 3 (delivered=%d)",
			completed, canceled, delivered)
	}
	// The canceled placeholders never entered the store.
	if _, nres := r.Store().Len(); nres != completed {
		t.Errorf("store holds %d results, want %d", nres, completed)
	}

	// The shared memo survives cancellation uncorrupted: finishing the
	// sweep on the same runner reuses the completed point and produces a
	// report byte-identical to a cold full run.
	r.OnResult(nil)
	full, err := r.RunContext(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Sweep(cancelSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := emitJSON(t, full), emitJSON(t, fresh); got != want {
		t.Error("post-cancel rerun differs from a cold run")
	}
	if runs := r.Store().ResultRuns(); runs != 4 {
		t.Errorf("store simulated %d points across cancel+rerun, want 4 (no recompute, no loss)", runs)
	}
}

func TestRunContextCancelStopsParallelWorkers(t *testing.T) {
	spec := cancelSpec()
	spec.Refs = []int{20000}
	r, err := NewRunner(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	r.OnResult(func(Task, Result) { once.Do(cancel) })
	rep, err := r.RunContext(ctx, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext err = %v, want context.Canceled", err)
	}
	// With 4 workers the whole grid may have been in flight when cancel
	// landed, so completion counts are scheduling-dependent — but every
	// slot must be settled one way or the other, and whatever completed
	// must be the real deterministic value.
	want, err := Sweep(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range rep.Results {
		if res.Err == CanceledErr {
			continue
		}
		a, _ := json.Marshal(res)
		b, _ := json.Marshal(want.Results[i])
		if !bytes.Equal(a, b) {
			t.Errorf("slot %d: completed-under-cancel value differs from canonical", i)
		}
	}
}

func TestRunContextUncancelledMatchesRun(t *testing.T) {
	spec := Spec{Engines: []string{"aegis"}, Workloads: []string{"sequential"}, Refs: []int{2000}}
	r1, _ := NewRunner(spec)
	rep1, err := r1.RunContext(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRunner(spec)
	rep2 := r2.Run(2)
	if got, want := emitJSON(t, rep1), emitJSON(t, rep2); got != want {
		t.Error("RunContext(Background) differs from Run")
	}
}

func TestSharedStoreAcrossRunners(t *testing.T) {
	spec := Spec{Engines: []string{"aegis", "xom"}, Workloads: []string{"sequential"}, Refs: []int{2000}}
	store := NewStore()

	r1, err := NewRunnerWith(spec, store)
	if err != nil {
		t.Fatal(err)
	}
	rep1 := r1.Run(1)
	if runs := store.ResultRuns(); runs != 2 {
		t.Fatalf("first runner simulated %d points, want 2", runs)
	}
	// Both engines share one protection-independent baseline.
	if runs := store.BaselineRuns(); runs != 1 {
		t.Fatalf("baseline runs = %d, want 1", runs)
	}

	r2, err := NewRunnerWith(spec, store)
	if err != nil {
		t.Fatal(err)
	}
	rep2 := r2.Run(1)
	if runs := store.ResultRuns(); runs != 2 {
		t.Errorf("second runner resimulated: runs = %d, want still 2", runs)
	}
	if hits := store.ResultHits(); hits != 2 {
		t.Errorf("second runner hit the store %d times, want 2", hits)
	}
	if got, want := emitJSON(t, rep2), emitJSON(t, rep1); got != want {
		t.Error("store-served report differs from simulated report")
	}

	// Concurrent runners on one store: the singleflight memo guarantees
	// each point still runs at most once in total.
	store2 := NewStore()
	var wg sync.WaitGroup
	reps := make([]*Report, 4)
	for i := range reps {
		wg.Add(1)
		go func() {
			defer wg.Done()
			r, err := NewRunnerWith(spec, store2)
			if err != nil {
				t.Error(err)
				return
			}
			reps[i] = r.Run(2)
		}()
	}
	wg.Wait()
	if runs := store2.ResultRuns(); runs != 2 {
		t.Errorf("4 concurrent runners simulated %d points, want 2", runs)
	}
	for i := 1; i < len(reps); i++ {
		if emitJSON(t, reps[i]) != emitJSON(t, reps[0]) {
			t.Errorf("concurrent runner %d emitted different bytes", i)
		}
	}
}

func TestStoreSnapshotRoundTrip(t *testing.T) {
	spec := Spec{Engines: []string{"aegis", "xom"}, Workloads: []string{"sequential"}, Refs: []int{2000}}
	warm := NewStore()
	r, _ := NewRunnerWith(spec, warm)
	want := emitJSON(t, r.Run(1))

	var buf bytes.Buffer
	if err := warm.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	cold := NewStore()
	if err := cold.ReadSnapshot(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	nb, nr := cold.Len()
	if nb != 1 || nr != 2 {
		t.Fatalf("restored store Len = (%d, %d), want (1, 2)", nb, nr)
	}
	r2, _ := NewRunnerWith(spec, cold)
	if got := emitJSON(t, r2.Run(1)); got != want {
		t.Error("snapshot-served report differs from original")
	}
	if runs := cold.ResultRuns(); runs != 0 {
		t.Errorf("restored store simulated %d points, want 0", runs)
	}
	if runs := cold.BaselineRuns(); runs != 0 {
		t.Errorf("restored store resimulated %d baselines, want 0", runs)
	}
}

func TestStoreSnapshotSkipsFailedCells(t *testing.T) {
	// placement l1-l2 without an L2 fails its cell — a configuration
	// error that must be rediscovered, not persisted.
	spec := Spec{
		Engines:    []string{"aegis"},
		Workloads:  []string{"sequential"},
		Refs:       []int{1000},
		Placements: []string{"l1-l2"},
	}
	s := NewStore()
	r, err := NewRunnerWith(spec, s)
	if err != nil {
		t.Fatal(err)
	}
	rep := r.Run(1)
	if rep.Results[0].Err == "" {
		t.Fatal("expected the single-level l1-l2 cell to fail")
	}
	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored := NewStore()
	if err := restored.ReadSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, nr := restored.Len(); nr != 0 {
		t.Errorf("failed cell was persisted: restored store has %d results", nr)
	}
}

func TestStoreSnapshotRejectsVersionMismatch(t *testing.T) {
	s := NewStore()
	err := s.ReadSnapshot(strings.NewReader(`{"version":99,"baselines":{},"results":{}}`))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("version-99 snapshot accepted (err = %v)", err)
	}
	if err := s.ReadSnapshot(strings.NewReader(`{not json`)); err == nil {
		t.Fatal("malformed snapshot accepted")
	}
}

func TestStoreSnapshotRederivesKeys(t *testing.T) {
	// Result map keys in the file are untrusted: ReadSnapshot re-keys
	// every value from its own embedded TaskConfig, so an edited
	// snapshot cannot alias a result onto a different grid point.
	spec := Spec{Engines: []string{"aegis"}, Workloads: []string{"sequential"}, Refs: []int{1000}}
	s := NewStore()
	r, _ := NewRunnerWith(spec, s)
	want := emitJSON(t, r.Run(1))

	var buf bytes.Buffer
	if err := s.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	var snap map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	var results map[string]json.RawMessage
	if err := json.Unmarshal(snap["results"], &results); err != nil {
		t.Fatal(err)
	}
	mangled := make(map[string]json.RawMessage, len(results))
	for k, v := range results {
		mangled["bogus "+k] = v
	}
	snap["results"], _ = json.Marshal(mangled)
	edited, _ := json.Marshal(snap)

	restored := NewStore()
	if err := restored.ReadSnapshot(bytes.NewReader(edited)); err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRunnerWith(spec, restored)
	if got := emitJSON(t, r2.Run(1)); got != want {
		t.Error("re-keyed snapshot served wrong bytes")
	}
	if runs := restored.ResultRuns(); runs != 0 {
		t.Errorf("mangled keys broke the restore: %d points resimulated", runs)
	}
}

func TestStoreSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ckpt.json")
	spec := Spec{Engines: []string{"xom"}, Workloads: []string{"sequential"}, Refs: []int{1000}}
	s := NewStore()
	r, _ := NewRunnerWith(spec, s)
	r.Run(1)
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	// Atomic write: no temp droppings left beside the checkpoint.
	entries, _ := os.ReadDir(filepath.Dir(path))
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".store-") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	restored := NewStore()
	if err := restored.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if _, nr := restored.Len(); nr != 1 {
		t.Errorf("restored %d results, want 1", nr)
	}
	// A missing file surfaces as fs.ErrNotExist — the cold-start path.
	err := NewStore().LoadFile(filepath.Join(t.TempDir(), "absent.json"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing checkpoint: err = %v, want ErrNotExist", err)
	}
}
