//repro:deterministic
package campaign

import (
	"context"
	"fmt"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/edu"
	"repro/internal/obs/rec"
	"repro/internal/sim/authtree"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// Result is one completed task: the grid point plus everything the
// emitters report about it. Failed points carry Err and zero metrics —
// a bad (engine, geometry) pairing fails that cell, not the sweep.
type Result struct {
	TaskConfig
	EngineName   string  `json:"engine_name"`
	Gates        int     `json:"gates"`
	BaseCycles   uint64  `json:"base_cycles"`
	Cycles       uint64  `json:"cycles"`
	Overhead     float64 `json:"overhead"`
	EngineStalls uint64  `json:"engine_stalls"`
	// EngineLines counts line transfers that crossed the EDU boundary
	// (soc.Report.EngineLines): the unit's exposed bandwidth, the
	// quantity the placement axis trades against (an L2 filters the
	// miss traffic an outer EDU must transform).
	EngineLines uint64 `json:"engine_lines"`
	RMWEvents   uint64 `json:"rmw_events"`
	// AuthGates is the authenticator's on-chip area (0 for auth=none);
	// AuthStalls its share of the stall cycles.
	AuthGates  int    `json:"auth_gates,omitempty"`
	AuthStalls uint64 `json:"auth_stalls,omitempty"`
	// Violations counts fail-stop events during the run — every failed
	// verification, so an unrepaired line re-counts on each refill (see
	// soc.Report.AuthViolations). Under an attack schedule,
	// Injected/Detected/DetectionRate/MeanDetectLatency describe the
	// adversary's campaign in distinct tampers (latency in references
	// from injection to the first fail-stop event at that line).
	Violations        uint64  `json:"violations,omitempty"`
	Injected          uint64  `json:"injected,omitempty"`
	Detected          uint64  `json:"detected,omitempty"`
	DetectionRate     float64 `json:"detection_rate,omitempty"`
	MeanDetectLatency float64 `json:"mean_detect_latency,omitempty"`
	Err               string  `json:"err,omitempty"`
	// Trace is the task's sealed flight-recorder stream when the runner
	// had a Tracer installed (nil otherwise). Excluded from the JSON
	// report — report bytes must not depend on whether tracing was on;
	// TraceOf serializes it separately.
	Trace *rec.Stream `json:"-"`
}

// Report is a finished campaign: results in expansion order plus the
// ranked per-engine summary. It deliberately carries no timing or
// worker-count fields — emitted bytes must be identical for any -jobs.
type Report struct {
	Spec    Spec         `json:"spec"`
	Results []Result     `json:"results"`
	Summary []SummaryRow `json:"summary"`
}

// Runner executes a campaign. Its backing Store persists across Run
// calls — and, when shared via NewRunnerWith, across Runners — so
// re-running an overlapping grid resimulates nothing.
type Runner struct {
	spec  Spec
	store *Store
	// m is the optional live metrics bundle (Observe); nil publishes
	// nowhere and costs nothing on the simulation path.
	m *Metrics
	// tr is the optional flight-recorder hub (Trace); nil records
	// nothing — the simulator sees a nil recorder, a no-op sink.
	tr *Tracer
	// onResult is the optional incremental delivery hook (OnResult).
	onResult func(Task, Result)
}

// NewRunner validates the spec and prepares a runner with a private
// store — the one-shot CLI shape.
func NewRunner(spec Spec) (*Runner, error) {
	return NewRunnerWith(spec, NewStore())
}

// NewRunnerWith validates the spec and prepares a runner backed by the
// given shared store (nil gets a private one). Every Runner handed the
// same Store shares baselines and completed results: this is how the
// sweep service lets concurrent users' overlapping grids reuse each
// other's work.
func NewRunnerWith(spec Spec, store *Store) (*Runner, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if store == nil {
		store = NewStore()
	}
	return &Runner{spec: spec, store: store}, nil
}

// Spec returns the validated, default-filled grid spec the runner
// executes — the exact Spec a Report built from this runner carries.
func (r *Runner) Spec() Spec { return r.spec }

// Store returns the runner's backing store.
func (r *Runner) Store() *Store { return r.store }

// BaselineRuns reports how many plaintext baseline simulations actually
// executed; BaselineHits how many were served from cache. Both are
// store-lifetime counts: on a shared store they span every runner
// attached to it.
func (r *Runner) BaselineRuns() int64 { return r.store.BaselineRuns() }

// BaselineHits is the cache-served baseline lookup count.
func (r *Runner) BaselineHits() int64 { return r.store.BaselineHits() }

// OnResult installs an incremental delivery hook: fn is called once for
// every task Exec finishes (simulated or memo-served), from the worker
// goroutine that finished it, in completion order — NOT expansion
// order. Callers needing the canonical order re-sequence by Task.Index,
// as the serve package's NDJSON stream does. Install before Run; fn
// must be safe for concurrent calls and must not block long (it holds
// a worker).
func (r *Runner) OnResult(fn func(Task, Result)) { r.onResult = fn }

// Plan expands the grid and, when a metrics bundle is installed,
// publishes the campaign denominators (tasks_total, refs_planned). Run
// calls it implicitly; external schedulers call it once and then Exec
// each task.
func (r *Runner) Plan() []Task {
	tasks := r.spec.Expand()
	if r.m != nil {
		r.m.TasksTotal.Set(int64(len(tasks)))
		r.m.RefsPlanned.Set(int64(plannedRefs(tasks)))
	}
	return tasks
}

// Exec executes one expanded task: the shared-store lookup, the
// simulation on miss, the metrics bookkeeping, and the delivery hook.
// It is the unit of work an external scheduler submits (the sweep
// service's shared worker pool runs Exec closures from many sweeps on
// one pool); Run is forEach over Exec.
func (r *Runner) Exec(t Task) Result {
	if r.m != nil {
		r.m.TasksStarted.Inc()
		r.m.WorkersBusy.Add(1)
	}
	ran := false
	res, _ := r.store.results.get(t.Cfg.Key(), func() (Result, error) {
		ran = true
		return r.runTask(t.Cfg), nil
	})
	if r.m != nil {
		r.m.WorkersBusy.Add(-1)
		r.m.TasksDone.Inc()
		if !ran {
			r.m.MemoHits.Inc()
		}
		if res.Err != "" {
			r.m.TaskErrors.Inc()
		}
		r.m.BaselineRuns.Set(r.store.BaselineRuns())
		r.m.BaselineHits.Set(r.store.BaselineHits())
	}
	if r.onResult != nil {
		r.onResult(t, res)
	}
	return res
}

// Run expands the grid and executes every task on `jobs` workers
// (jobs <= 0 means one per CPU). The returned report is independent of
// jobs: tasks are seeded from config hashes and slotted by index.
func (r *Runner) Run(jobs int) *Report {
	rep, _ := r.RunContext(context.Background(), jobs)
	return rep
}

// CanceledErr is the Err string recorded on grid points whose tasks
// never ran because the sweep was cancelled.
const CanceledErr = "canceled: sweep stopped before this point ran"

// Canceled is the placeholder Result for a grid point skipped by
// cancellation: the config, no metrics, CanceledErr.
func Canceled(cfg TaskConfig) Result {
	return Result{TaskConfig: cfg, Err: CanceledErr}
}

// RunContext is Run with cooperative cancellation. Cancellation is
// task-granular: in-flight simulations finish (a task is never left
// half-run, so the shared store only ever holds complete values), no
// new tasks start, and the error is ctx.Err(). The returned report
// then holds partial state in canonical order — every completed point
// plus a Canceled placeholder in each slot whose task never ran.
func (r *Runner) RunContext(ctx context.Context, jobs int) (*Report, error) {
	tasks := r.Plan()
	out := make([]Result, len(tasks))
	done := make([]bool, len(tasks))
	forEachCtx(ctx, jobs, len(tasks), func(i int) {
		out[i] = r.Exec(tasks[i])
		done[i] = true
	})
	err := ctx.Err()
	if err != nil {
		for i := range out {
			if !done[i] {
				out[i] = Canceled(tasks[i].Cfg)
			}
		}
	}
	return &Report{Spec: r.spec, Results: out, Summary: Summarize(out)}, err
}

// socConfig builds the system geometry for a grid point, starting from
// the experiments' reference system. The returned config carries the
// task's EDU placement; baseline runs clear it (a Null-engine system
// has no EDU boundary).
func socConfig(cfg TaskConfig) (soc.Config, error) {
	sc := soc.DefaultConfig()
	sc.Cache.Size = cfg.CacheSize
	sc.Cache.LineSize = cfg.LineSize
	sc.Bus.WidthBytes = cfg.BusWidth
	if cfg.L2Size > 0 {
		sc.L2 = soc.DefaultL2Config(cfg.L2Size)
		sc.L2.LineSize = cfg.LineSize
	}
	p, err := edu.ParsePlacement(cfg.Placement)
	if err != nil {
		return soc.Config{}, err
	}
	sc.Placement = p
	return sc, nil
}

// runTask measures one grid point, bracketing the simulation with
// lifecycle records when a Tracer is installed. The baseline simulation
// is never recorded live (its owning task is scheduling-dependent);
// the memoized base cycle count is synthesized into a KindBaseline
// record instead, keeping every stream a pure function of its task.
//
//repro:shardpure
func (r *Runner) runTask(cfg TaskConfig) Result {
	if r.tr == nil {
		return r.runTaskRec(cfg, nil)
	}
	rc := rec.New(r.tr.capacity())
	rc.Emit(rec.KindTaskStart, 0, 0, 0, uint64(cfg.Refs))
	res := r.runTaskRec(cfg, rc)
	if res.Err == "" {
		rc.Stamp(res.Cycles, uint64(cfg.Refs))
		rc.Emit(rec.KindBaseline, 0, 0, 0, res.BaseCycles)
		rc.Emit(rec.KindTaskEnd, 0, 0, 0, res.Cycles)
	} else {
		rc.Emit(rec.KindTaskEnd, 0, 0, rec.FlagFail, 0)
	}
	st := rc.Seal(cfg.Key())
	res.Trace = &st
	r.tr.add(st)
	return res
}

// runTaskRec measures one grid point: generate the point's trace from
// its hash-derived seed, fetch (or compute once) the shared plaintext
// baseline, then simulate the engine system on an identical trace,
// recording into rc (nil = untraced).
func (r *Runner) runTaskRec(cfg TaskConfig, rc *rec.Recorder) Result {
	res := Result{TaskConfig: cfg}
	fail := func(err error) Result {
		res.Err = err.Error()
		return res
	}
	entry, err := core.Entry(cfg.Engine)
	if err != nil {
		return fail(err)
	}
	res.EngineName = entry.Name
	if _, ok := trace.Sources[cfg.Workload]; !ok {
		return fail(fmt.Errorf("campaign: unknown workload %q", cfg.Workload))
	}
	sc, err := socConfig(cfg)
	if err != nil {
		return fail(err)
	}

	// The baseline is protection-independent: memoized under the
	// (point, hierarchy) key, so the first task there simulates it and
	// every other engine/auth/placement combination reuses the report.
	base, err := r.store.baselines.get(cfg.BaselineKey(), func() (soc.Report, error) {
		bcfg := sc
		bcfg.Engine = edu.Null{}
		bcfg.Placement = edu.PlacementNone
		if r.m != nil {
			bcfg.Metrics = r.m.SoC
		}
		s, err := soc.New(bcfg)
		if err != nil {
			return soc.Report{}, err
		}
		src, err := workloadSource(cfg.Workload, cfg.Refs, cfg.Seed())
		if err != nil {
			return soc.Report{}, err
		}
		return s.Run(src), nil
	})
	if err != nil {
		return fail(err)
	}

	eng, err := entry.Build()
	if err != nil {
		return fail(err)
	}
	ecfg := sc
	ecfg.Engine = eng
	ver, err := core.BuildAuthenticator(cfg.Auth, cfg.LineSize)
	if err != nil {
		return fail(err)
	}
	ecfg.Verifier = ver
	ecfg.Recorder = rc
	if r.m != nil {
		ecfg.Metrics = r.m.SoC
		if t, ok := ver.(*authtree.Tree); ok {
			t.SetMetrics(r.m.Auth)
		}
	}
	if t, ok := ver.(*authtree.Tree); ok {
		t.SetRecorder(rc)
	}
	var sched *attack.Schedule
	if cfg.AttackRate > 0 {
		// The adversary's seed derives from the protection-independent
		// point key (plus a domain constant), so every engine and
		// authenticator at a grid point faces the same strike plan —
		// and a -jobs 8 sweep stays byte-identical to -jobs 1.
		sched = attack.NewSchedule(attack.ScheduleConfig{
			Seed:      int64(hashString("attack "+cfg.PointKey()) & (1<<63 - 1)),
			PerTenK:   cfg.AttackRate,
			LineBytes: cfg.LineSize,
		})
		sched.SetRecorder(rc)
		ecfg.Intruder = sched
		ecfg.OnViolation = sched.OnViolation
	}
	s, err := soc.New(ecfg)
	if err != nil {
		return fail(err)
	}
	// Each task rebuilds the point's reference stream from the same
	// derived seed rather than sharing one across goroutines: the
	// stream generates references on demand (no materialized slice), so
	// a task's memory is bounded by the simulated working set however
	// long the trace, and tasks stay fully independent.
	src, err := workloadSource(cfg.Workload, cfg.Refs, cfg.Seed())
	if err != nil {
		return fail(err)
	}
	with := s.Run(src)

	res.Gates = eng.Gates()
	res.BaseCycles = base.Cycles
	res.Cycles = with.Cycles
	res.Overhead = with.OverheadVs(base)
	res.EngineStalls = with.EngineStalls
	res.EngineLines = with.EngineLines
	res.RMWEvents = with.RMWEvents
	if ver != nil {
		res.AuthGates = ver.Gates()
		res.AuthStalls = with.AuthStalls
		res.Violations = with.AuthViolations
	}
	if sched != nil {
		res.Injected = sched.Injected
		res.Detected = sched.Detected
		res.DetectionRate = sched.DetectionRate()
		res.MeanDetectLatency = sched.MeanLatency()
	}
	return res
}

// Sweep is the one-call convenience wrapper: validate, run, report.
func Sweep(spec Spec, jobs int) (*Report, error) {
	r, err := NewRunner(spec)
	if err != nil {
		return nil, err
	}
	return r.Run(jobs), nil
}
