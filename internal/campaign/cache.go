//repro:deterministic
//repro:shardpure
package campaign

import (
	"sync"
	"sync/atomic"
)

// memo is a concurrency-safe compute-once cache keyed by canonical
// config strings. Concurrent requests for the same key block on one
// computation (singleflight semantics) rather than duplicating work —
// this is what lets eight engines at one grid point share a single
// plaintext baseline simulation.
//
// Errors are NOT memoized: a failed computation is evicted before its
// waiters are released, so the next lookup retries instead of replaying
// a possibly transient error for the life of the process. Callers that
// were already waiting on the failed computation receive its error (it
// was their attempt too); callers arriving later start fresh.
type memo[T any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[T]
	hits    atomic.Int64
	misses  atomic.Int64
}

type memoEntry[T any] struct {
	done chan struct{} // closed when val/err are final
	val  T
	err  error
}

func newMemo[T any]() *memo[T] {
	return &memo[T]{entries: make(map[string]*memoEntry[T])}
}

// get returns the cached value for key, computing it if absent. Exactly
// one caller runs the computation per attempt; a hit is only counted
// once a completed, successful entry is served — an in-flight wait that
// ends in an error is neither a hit nor a miss for the waiter.
func (m *memo[T]) get(key string, compute func() (T, error)) (T, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[T]{done: make(chan struct{})}
		m.entries[key] = e
		m.mu.Unlock()

		m.misses.Add(1)
		e.val, e.err = compute()
		if e.err != nil {
			// Evict before releasing waiters: once done is closed no
			// later lookup may observe the failed entry.
			m.mu.Lock()
			if m.entries[key] == e {
				delete(m.entries, key)
			}
			m.mu.Unlock()
		}
		close(e.done)
		return e.val, e.err
	}
	m.mu.Unlock()

	<-e.done
	if e.err == nil {
		m.hits.Add(1)
	}
	return e.val, e.err
}

// Hits reports how many lookups were served a completed successful
// value from cache.
func (m *memo[T]) Hits() int64 { return m.hits.Load() }

// Misses reports how many lookups ran the computation.
func (m *memo[T]) Misses() int64 { return m.misses.Load() }

// size reports the number of entries, including in-flight computations.
func (m *memo[T]) size() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// snapshot copies every completed, successful entry — the persistable
// state of the memo. In-flight computations are skipped (they hold no
// final value yet); errored entries were already evicted before their
// waiters released, so none can appear here.
func (m *memo[T]) snapshot() map[string]T {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make(map[string]T, len(m.entries))
	for k, e := range m.entries { //repro:allow iteration builds a map; JSON encoding sorts keys, so snapshot bytes are order-independent
		select {
		case <-e.done:
			if e.err == nil {
				out[k] = e.val
			}
		default:
		}
	}
	return out
}

// seed installs already-computed values, as restored from a snapshot.
// Existing entries win: a value is never replaced under the waiters of
// a live computation, and seeded entries count as neither hits nor
// misses until a lookup actually lands on them.
func (m *memo[T]) seed(vals map[string]T) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, v := range vals { //repro:allow insertion into a keyed map; entry state is identical for any iteration order
		if _, ok := m.entries[k]; ok {
			continue
		}
		e := &memoEntry[T]{done: make(chan struct{}), val: v}
		close(e.done)
		m.entries[k] = e
	}
}
