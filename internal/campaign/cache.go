package campaign

import (
	"sync"
	"sync/atomic"
)

// memo is a concurrency-safe compute-once cache keyed by canonical
// config strings. Concurrent requests for the same key block on one
// computation (singleflight semantics) rather than duplicating work —
// this is what lets eight engines at one grid point share a single
// plaintext baseline simulation.
type memo[T any] struct {
	mu      sync.Mutex
	entries map[string]*memoEntry[T]
	hits    atomic.Int64
	misses  atomic.Int64
}

type memoEntry[T any] struct {
	once sync.Once
	val  T
	err  error
}

func newMemo[T any]() *memo[T] {
	return &memo[T]{entries: make(map[string]*memoEntry[T])}
}

// get returns the cached value for key, computing it (exactly once
// across all callers) if absent.
func (m *memo[T]) get(key string, compute func() (T, error)) (T, error) {
	m.mu.Lock()
	e, ok := m.entries[key]
	if !ok {
		e = &memoEntry[T]{}
		m.entries[key] = e
	}
	m.mu.Unlock()
	if ok {
		m.hits.Add(1)
	} else {
		m.misses.Add(1)
	}
	e.once.Do(func() { e.val, e.err = compute() })
	return e.val, e.err
}

// Hits reports how many lookups were served from cache.
func (m *memo[T]) Hits() int64 { return m.hits.Load() }

// Misses reports how many lookups ran the computation.
func (m *memo[T]) Misses() int64 { return m.misses.Load() }
