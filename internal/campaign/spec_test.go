package campaign

import (
	"reflect"
	"testing"
)

func TestSpecDefaultsAndSize(t *testing.T) {
	var s Spec
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(s.Engines) != 8 {
		t.Errorf("default engines = %d, want all 8 surveyed", len(s.Engines))
	}
	if len(s.Workloads) != 6 {
		t.Errorf("default workloads = %d, want every registered generator", len(s.Workloads))
	}
	if got := s.Size(); got != len(s.Engines)*len(s.Workloads) {
		t.Errorf("Size = %d, want %d", got, len(s.Engines)*len(s.Workloads))
	}
}

func TestSpecValidateRejectsTypos(t *testing.T) {
	cases := []Spec{
		{Engines: []string{"aegsi"}},
		{Workloads: []string{"sequental"}},
		{Refs: []int{-1}},
		{CacheSizes: []int{0}},
		{LineSizes: []int{-32}},
		{BusWidths: []int{0}},
		{Auths: []string{"merkle"}},
		{AttackRates: []float64{-1}},
	}
	for i, s := range cases {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: invalid spec passed validation", i)
		}
	}
}

func TestExpandOrderIsStable(t *testing.T) {
	s := Spec{
		Engines:   []string{"xom", "aegis"},
		Workloads: []string{"streaming"},
		Refs:      []int{100, 200},
	}
	tasks := s.Expand()
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks, want 4", len(tasks))
	}
	want := []TaskConfig{
		{Engine: "xom", Auth: "none", Workload: "streaming", Refs: 100, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4},
		{Engine: "xom", Auth: "none", Workload: "streaming", Refs: 200, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4},
		{Engine: "aegis", Auth: "none", Workload: "streaming", Refs: 100, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4},
		{Engine: "aegis", Auth: "none", Workload: "streaming", Refs: 200, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4},
	}
	for i, task := range tasks {
		if task.Index != i {
			t.Errorf("task %d carries index %d", i, task.Index)
		}
		if task.Cfg != want[i] {
			t.Errorf("task %d = %+v, want %+v", i, task.Cfg, want[i])
		}
	}
}

func TestParseLists(t *testing.T) {
	if got := ParseList(" a, b ,,c "); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Errorf("ParseList = %v", got)
	}
	if got := ParseList("  "); got != nil {
		t.Errorf("empty ParseList = %v, want nil", got)
	}
	got, err := ParseIntList("4K,16k,1M,32")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, []int{4 << 10, 16 << 10, 1 << 20, 32}) {
		t.Errorf("ParseIntList = %v", got)
	}
	if _, err := ParseIntList("12Q"); err == nil {
		t.Error("bad suffix should error")
	}
}

func TestHashStability(t *testing.T) {
	// The seed derivation must be stable across processes and releases:
	// a change here silently invalidates every recorded sweep.
	cfg := TaskConfig{Engine: "aegis", Workload: "sequential", Refs: 60000, CacheSize: 16 << 10, LineSize: 32, BusWidth: 4}
	const wantKey = "engine=aegis auth=none attack=0 place=default l2=0 workload=sequential refs=60000 cache=16384 line=32 bus=4"
	if cfg.Key() != wantKey {
		t.Errorf("Key = %q, want %q", cfg.Key(), wantKey)
	}
	// The trace seed derives from PointKey, which the auth/attack/
	// placement/L2 axes deliberately do NOT touch: recorded sweeps keep
	// their traces, and every hierarchy depth at a point measures the
	// same reference stream.
	const wantPoint = "workload=sequential refs=60000 cache=16384 line=32 bus=4"
	if cfg.PointKey() != wantPoint {
		t.Errorf("PointKey = %q, want %q", cfg.PointKey(), wantPoint)
	}
	// A single-level task's baseline key equals its point key, so
	// pre-hierarchy sweeps reuse exactly the baselines they always did;
	// an L2 forks the baseline (its cycles differ) but not the trace.
	if cfg.BaselineKey() != wantPoint {
		t.Errorf("single-level BaselineKey = %q, want %q", cfg.BaselineKey(), wantPoint)
	}
	l2cfg := cfg
	l2cfg.L2Size = 64 << 10
	if l2cfg.BaselineKey() == cfg.BaselineKey() {
		t.Error("an L2 must fork the baseline key")
	}
	if l2cfg.Seed() != cfg.Seed() {
		t.Error("an L2 must not fork the trace seed")
	}
	if cfg.Hash() != hashString(wantKey) {
		t.Errorf("Hash does not match FNV-1a of Key")
	}
	if cfg.Seed() < 0 {
		t.Errorf("Seed must be non-negative, got %d", cfg.Seed())
	}
}
