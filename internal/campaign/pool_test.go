package campaign

import (
	"context"
	"sync/atomic"
	"testing"
)

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, jobs := range []int{0, 1, 2, 7, 64} {
		const n = 100
		var counts [n]atomic.Int32
		forEach(jobs, n, func(i int) { counts[i].Add(1) })
		for i := range counts {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("jobs=%d: index %d ran %d times", jobs, i, got)
			}
		}
	}
}

func TestForEachCtxCancelSequential(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran []int
	forEachCtx(ctx, 1, 10, func(i int) {
		ran = append(ran, i)
		if i == 2 {
			cancel()
		}
	})
	// The in-flight iteration completes; nothing after it starts.
	if len(ran) != 3 || ran[2] != 2 {
		t.Fatalf("ran %v, want [0 1 2]", ran)
	}
}

func TestForEachCtxCancelParallel(t *testing.T) {
	const n = 1000
	ctx, cancel := context.WithCancel(context.Background())
	var started [n]atomic.Int32
	var total atomic.Int32
	forEachCtx(ctx, 4, n, func(i int) {
		started[i].Add(1)
		if total.Add(1) == 5 {
			cancel()
		}
	})
	// Every claimed index ran exactly once (never abandoned, never
	// repeated), and cancellation stopped the sweep well short of n.
	ran := 0
	for i := range started {
		switch started[i].Load() {
		case 0:
		case 1:
			ran++
		default:
			t.Fatalf("index %d ran %d times", i, started[i].Load())
		}
	}
	if int32(ran) != total.Load() {
		t.Fatalf("ran %d indices but counted %d", ran, total.Load())
	}
	// 4 workers were at most one task past the cancel trigger each.
	if ran < 5 || ran > 5+4 {
		t.Fatalf("cancellation let %d of %d tasks run", ran, n)
	}
}

func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, jobs := range []int{1, 4} {
		ran := atomic.Int32{}
		forEachCtx(ctx, jobs, 50, func(int) { ran.Add(1) })
		if got := ran.Load(); got != 0 {
			t.Errorf("jobs=%d: pre-cancelled context ran %d tasks", jobs, got)
		}
	}
}
