package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"math"
	"strconv"
	"strings"
	"testing"
)

func tinyReport(t *testing.T) *Report {
	t.Helper()
	rep, err := Sweep(Spec{
		Engines:   []string{"xom", "best"},
		Workloads: []string{"streaming"},
		Refs:      []int{1000},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEmitJSONRoundTrips(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := EmitJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Results) != len(rep.Results) || len(back.Summary) != len(rep.Summary) {
		t.Errorf("round trip lost rows: %d/%d results, %d/%d summary",
			len(back.Results), len(rep.Results), len(back.Summary), len(rep.Summary))
	}
	if back.Results[0].Overhead != rep.Results[0].Overhead {
		t.Errorf("overhead mangled in round trip")
	}
}

func TestEmitCSVShape(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := EmitCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != 1+len(rep.Results) {
		t.Fatalf("got %d rows, want header + %d", len(rows), len(rep.Results))
	}
	if rows[0][0] != "engine" || rows[1][0] != "xom" {
		t.Errorf("unexpected leading cells: %q, %q", rows[0][0], rows[1][0])
	}
}

func TestEmitTableAndUnknownFormat(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := Emit(&buf, rep, "table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SWEEP", "RANKING", "xom", "streaming"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	if err := Emit(&buf, rep, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}

// A sweep mixing attack-rate 0, a rate too low to ever strike
// (Injected == 0 with a live schedule), and a striking rate must emit
// finite numbers through every emitter: json.Marshal rejects NaN
// outright, and the csv/table detection cells must parse as 0 for the
// quiet rows — the Injected==0 division guards in
// attack.Schedule.DetectionRate/MeanLatency, exercised end to end.
func TestEmittersFiniteWithMixedAttackRates(t *testing.T) {
	rep, err := Sweep(Spec{
		Engines:   []string{"aegis"},
		Workloads: []string{"firmware"},
		Refs:      []int{8000},
		Auths:     []string{"tree"},
		// 0.1/10k => first strike due at ref 100000, far beyond 8000
		// refs: a live schedule that never injects.
		AttackRates: []float64{0, 0.1, 16},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sawQuietSchedule, sawStrikes bool
	for _, r := range rep.Results {
		if r.Err != "" {
			t.Fatalf("point %s failed: %s", r.Key(), r.Err)
		}
		if r.AttackRate == 0.1 {
			sawQuietSchedule = true
			if r.Injected != 0 {
				t.Fatalf("rate 0.1 injected %d strikes in 8000 refs; the quiet-schedule case is gone", r.Injected)
			}
			if r.DetectionRate != 0 || r.MeanDetectLatency != 0 {
				t.Errorf("Injected==0 row carries nonzero detection metrics: rate=%v lat=%v",
					r.DetectionRate, r.MeanDetectLatency)
			}
		}
		if r.Injected > 0 {
			sawStrikes = true
		}
		for name, v := range map[string]float64{
			"overhead": r.Overhead, "detection_rate": r.DetectionRate, "mean_detect_latency": r.MeanDetectLatency,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("point %s: %s = %v", r.Key(), name, v)
			}
		}
	}
	if !sawQuietSchedule || !sawStrikes {
		t.Fatalf("grid did not cover both quiet (%v) and striking (%v) schedules", sawQuietSchedule, sawStrikes)
	}

	// JSON must encode (it rejects NaN/Inf with an error)...
	var buf bytes.Buffer
	if err := EmitJSON(&buf, rep); err != nil {
		t.Fatalf("json emit failed (NaN reached the encoder?): %v", err)
	}
	// ...CSV's numeric detection cells must all parse finite...
	buf.Reset()
	if err := EmitCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	header := rows[0]
	col := func(name string) int {
		for i, h := range header {
			if h == name {
				return i
			}
		}
		t.Fatalf("csv missing column %q", name)
		return -1
	}
	for _, row := range rows[1:] {
		for _, name := range []string{"detection_rate", "mean_detect_latency", "overhead"} {
			v, err := strconv.ParseFloat(row[col(name)], 64)
			if err != nil || math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("csv %s cell %q not a finite number (%v)", name, row[col(name)], err)
			}
		}
	}
	// ...and the table emitter must render without panicking.
	buf.Reset()
	if err := EmitTable(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("table output contains NaN")
	}
}
