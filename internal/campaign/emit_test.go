package campaign

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"strings"
	"testing"
)

func tinyReport(t *testing.T) *Report {
	t.Helper()
	rep, err := Sweep(Spec{
		Engines:   []string{"xom", "best"},
		Workloads: []string{"streaming"},
		Refs:      []int{1000},
	}, 2)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestEmitJSONRoundTrips(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := EmitJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("emitted JSON does not parse: %v", err)
	}
	if len(back.Results) != len(rep.Results) || len(back.Summary) != len(rep.Summary) {
		t.Errorf("round trip lost rows: %d/%d results, %d/%d summary",
			len(back.Results), len(rep.Results), len(back.Summary), len(rep.Summary))
	}
	if back.Results[0].Overhead != rep.Results[0].Overhead {
		t.Errorf("overhead mangled in round trip")
	}
}

func TestEmitCSVShape(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := EmitCSV(&buf, rep); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatalf("emitted CSV does not parse: %v", err)
	}
	if len(rows) != 1+len(rep.Results) {
		t.Fatalf("got %d rows, want header + %d", len(rows), len(rep.Results))
	}
	if rows[0][0] != "engine" || rows[1][0] != "xom" {
		t.Errorf("unexpected leading cells: %q, %q", rows[0][0], rows[1][0])
	}
}

func TestEmitTableAndUnknownFormat(t *testing.T) {
	rep := tinyReport(t)
	var buf bytes.Buffer
	if err := Emit(&buf, rep, "table"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"SWEEP", "RANKING", "xom", "streaming"} {
		if !strings.Contains(out, want) {
			t.Errorf("table output missing %q", want)
		}
	}
	if err := Emit(&buf, rep, "yaml"); err == nil {
		t.Error("unknown format should error")
	}
}
