//repro:deterministic
package campaign

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"repro/internal/core"
)

// Formats lists the supported emitter names for flag help and
// validation.
var Formats = []string{"table", "csv", "json"}

// Emit writes the report to w in the named format.
func Emit(w io.Writer, rep *Report, format string) error {
	switch format {
	case "json":
		return EmitJSON(w, rep)
	case "csv":
		return EmitCSV(w, rep)
	case "table":
		return EmitTable(w, rep)
	default:
		return fmt.Errorf("campaign: unknown format %q (want table, csv or json)", format)
	}
}

// EmitJSON writes the full structured report: spec, per-point results,
// ranked summary.
func EmitJSON(w io.Writer, rep *Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// EmitCSV writes one row per grid point (the machine-joinable form) —
// the summary is derivable, so CSV carries only the raw cells.
func EmitCSV(w io.Writer, rep *Report) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"engine", "auth", "attack_rate", "placement", "workload", "refs",
		"cache_size", "l2_size", "line_size", "bus_width",
		"gates", "auth_gates", "base_cycles", "cycles", "overhead",
		"engine_stalls", "engine_lines", "auth_stalls",
		"rmw_events", "violations", "injected", "detected", "detection_rate", "mean_detect_latency", "err",
	}); err != nil {
		return err
	}
	for _, r := range rep.Results {
		row := []string{
			r.Engine, r.Auth, strconv.FormatFloat(r.AttackRate, 'g', -1, 64),
			r.PlacementName(), r.Workload, strconv.Itoa(r.Refs),
			strconv.Itoa(r.CacheSize), strconv.Itoa(r.L2Size),
			strconv.Itoa(r.LineSize), strconv.Itoa(r.BusWidth),
			strconv.Itoa(r.Gates), strconv.Itoa(r.AuthGates),
			strconv.FormatUint(r.BaseCycles, 10), strconv.FormatUint(r.Cycles, 10),
			strconv.FormatFloat(r.Overhead, 'f', 6, 64),
			strconv.FormatUint(r.EngineStalls, 10), strconv.FormatUint(r.EngineLines, 10),
			strconv.FormatUint(r.AuthStalls, 10),
			strconv.FormatUint(r.RMWEvents, 10), strconv.FormatUint(r.Violations, 10),
			strconv.FormatUint(r.Injected, 10), strconv.FormatUint(r.Detected, 10),
			strconv.FormatFloat(r.DetectionRate, 'f', 4, 64),
			strconv.FormatFloat(r.MeanDetectLatency, 'f', 1, 64),
			r.Err,
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// EmitTable writes the human-readable form: the per-point grid followed
// by the ranked summary, in the same aligned-table style as the
// experiment suite.
func EmitTable(w io.Writer, rep *Report) error {
	// The adversary and hierarchy columns only earn their width when
	// the sweep actually has those axes.
	hasAuth, hasHier := false, false
	for _, r := range rep.Results {
		if (r.Auth != "" && r.Auth != "none") || r.AttackRate > 0 {
			hasAuth = true
		}
		if r.L2Size > 0 || r.Placement != "" {
			hasHier = true
		}
	}
	header := []string{"engine"}
	if hasAuth {
		header = append(header, "auth", "atk")
	}
	if hasHier {
		header = append(header, "place")
	}
	header = append(header, "workload", "refs", "cache")
	if hasHier {
		header = append(header, "l2")
	}
	header = append(header, "line", "bus", "overhead", "rmw")
	if hasHier {
		header = append(header, "edu-lines")
	}
	if hasAuth {
		header = append(header, "det", "lat")
	}
	header = append(header, "status")
	grid := &core.Table{
		ID:     "SWEEP",
		Title:  fmt.Sprintf("campaign grid (%d points)", len(rep.Results)),
		Header: header,
	}
	for _, r := range rep.Results {
		status := "ok"
		overhead := fmt.Sprintf("%.2f%%", 100*r.Overhead)
		if r.Err != "" {
			status = r.Err
			overhead = "-"
		}
		row := []interface{}{r.Engine}
		if hasAuth {
			row = append(row, r.Auth, r.AttackRate)
		}
		if hasHier {
			row = append(row, r.PlacementName())
		}
		row = append(row, r.Workload, r.Refs, sizeCell(r.CacheSize))
		if hasHier {
			l2 := "-"
			if r.L2Size > 0 {
				l2 = sizeCell(r.L2Size)
			}
			row = append(row, l2)
		}
		row = append(row, r.LineSize, r.BusWidth, overhead, r.RMWEvents)
		if hasHier {
			row = append(row, r.EngineLines)
		}
		if hasAuth {
			det, lat := "-", "-"
			if r.AttackRate > 0 && r.Err == "" {
				det = fmt.Sprintf("%d/%d", r.Detected, r.Injected)
				if r.Detected > 0 {
					lat = fmt.Sprintf("%.0f", r.MeanDetectLatency)
				}
			}
			row = append(row, det, lat)
		}
		row = append(row, status)
		grid.AddRow(row...)
	}
	if _, err := fmt.Fprintln(w, grid); err != nil {
		return err
	}

	sum := &core.Table{
		ID:     "RANKING",
		Title:  "engines ranked by mean overhead across the grid",
		Header: []string{"rank", "engine", "gates", "mean", "min", "max", "worst point", "failed"},
	}
	for _, row := range rep.Summary {
		sum.AddRow(row.Rank, row.EngineName, row.Gates,
			fmt.Sprintf("%.2f%%", 100*row.MeanOverhead),
			fmt.Sprintf("%.2f%%", 100*row.MinOverhead),
			fmt.Sprintf("%.2f%%", 100*row.MaxOverhead),
			row.WorstPoint, row.Failed)
	}
	_, err := fmt.Fprintln(w, sum)
	return err
}

// sizeCell renders a byte count with a K suffix only when that is
// exact; odd sizes print in full rather than truncating.
func sizeCell(bytes int) string {
	if bytes >= 1<<10 && bytes%(1<<10) == 0 {
		return fmt.Sprintf("%dK", bytes>>10)
	}
	return fmt.Sprintf("%dB", bytes)
}
