// Package campaign is the batch experiment-sweep engine: it expands a
// declarative grid spec (engines × authenticators × attack rates × EDU
// placements × workloads × cache hierarchies × bus widths × trace
// lengths) into tasks, runs them on a bounded worker pool with
// deterministic per-task RNG sharding, caches shared plaintext
// baselines so each (geometry, workload) point is simulated once
// rather than once per protection configuration, and aggregates the
// results into ranked summaries with JSON/CSV/table emitters.
//
// Determinism is the subsystem's contract: every task derives its trace
// seed from a stable hash of its configuration (excluding the engine,
// so all engines at one grid point share a trace and a baseline), and
// results are slotted by task index, so a `-jobs 8` sweep emits bytes
// identical to a `-jobs 1` sweep.
//
//repro:deterministic
package campaign

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/edu"
	"repro/internal/sim/trace"
)

// Spec is the declarative grid: the cross product of every non-empty
// axis is the campaign's task list. Zero-value axes get defaults from
// (*Spec).Fill.
type Spec struct {
	// Engines are survey registry keys (core.Entry); default all.
	Engines []string `json:"engines"`
	// Workloads are trace generator names (trace.Generators); default
	// the standard five-workload set.
	Workloads []string `json:"workloads"`
	// Refs are trace lengths to sweep; default {core.DefaultRefs}.
	Refs []int `json:"refs"`
	// CacheSizes are L1 cache capacities in bytes; default {16 KiB}.
	CacheSizes []int `json:"cache_sizes"`
	// L2Sizes are second-level cache capacities in bytes; 0 means no L2
	// (the single-level system). Default {0}. Like Placements, the axis
	// stays outside the engine-independent point key, so every depth at
	// a grid point measures the same trace; the plaintext baseline is
	// keyed per (point, L2) because an L2 changes baseline cycles.
	L2Sizes []int `json:"l2_sizes"`
	// LineSizes are cache line sizes in bytes; default {32}.
	LineSizes []int `json:"line_sizes"`
	// BusWidths are external bus widths in bytes; default {4}.
	BusWidths []int `json:"bus_widths"`
	// Auths are authenticator keys (core.Authenticators: none,
	// flat-mac, flat-fresh, tree, ctree); default {"none"}. Every
	// authenticator composes with every engine — a separate axis, not
	// an engine variant.
	Auths []string `json:"auths"`
	// AttackRates are active-adversary strike rates in tampers per
	// 10,000 references (internal/attack.Schedule); default {0} (no
	// adversary). Nonzero rates populate the detection-rate and
	// detection-latency columns.
	AttackRates []float64 `json:"attack_rates"`
	// Placements are EDU/verifier boundaries (edu.ParsePlacement:
	// "default", "cpu-l1", "l1-l2", "l2-dram"); default {""} (the
	// outermost boundary of whatever hierarchy the point has). A
	// placement that requires an L2 fails its single-level cells, not
	// the sweep. Protection-side like Auths: outside the point key.
	Placements []string `json:"placements"`
}

// Fill applies defaults to empty axes.
func (s *Spec) Fill() {
	if len(s.Engines) == 0 {
		for _, e := range core.Survey() {
			s.Engines = append(s.Engines, e.Key)
		}
	}
	if len(s.Workloads) == 0 {
		s.Workloads = WorkloadNames()
	}
	if len(s.Refs) == 0 {
		s.Refs = []int{core.DefaultRefs}
	}
	if len(s.CacheSizes) == 0 {
		s.CacheSizes = []int{16 << 10}
	}
	if len(s.L2Sizes) == 0 {
		s.L2Sizes = []int{0}
	}
	if len(s.LineSizes) == 0 {
		s.LineSizes = []int{32}
	}
	if len(s.BusWidths) == 0 {
		s.BusWidths = []int{4}
	}
	if len(s.Auths) == 0 {
		s.Auths = []string{"none"}
	}
	if len(s.AttackRates) == 0 {
		s.AttackRates = []float64{0}
	}
	if len(s.Placements) == 0 {
		s.Placements = []string{""}
	}
}

// Validate checks every axis value against its registry before any
// simulation runs, so a typo fails the whole sweep immediately.
func (s *Spec) Validate() error {
	s.Fill()
	for _, key := range s.Engines {
		if _, err := core.Entry(key); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, w := range s.Workloads {
		if _, ok := trace.Sources[w]; !ok {
			return fmt.Errorf("campaign: unknown workload %q (known: %s)",
				w, strings.Join(WorkloadNames(), ", "))
		}
	}
	for _, r := range s.Refs {
		if r <= 0 {
			return fmt.Errorf("campaign: non-positive refs %d", r)
		}
	}
	for _, v := range s.CacheSizes {
		if v <= 0 {
			return fmt.Errorf("campaign: non-positive cache size %d", v)
		}
	}
	for _, v := range s.L2Sizes {
		if v < 0 {
			return fmt.Errorf("campaign: negative L2 size %d", v)
		}
	}
	for _, p := range s.Placements {
		if _, err := edu.ParsePlacement(p); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, v := range s.LineSizes {
		if v <= 0 {
			return fmt.Errorf("campaign: non-positive line size %d", v)
		}
	}
	for _, v := range s.BusWidths {
		if v <= 0 {
			return fmt.Errorf("campaign: non-positive bus width %d", v)
		}
	}
	for _, a := range s.Auths {
		if _, err := core.AuthEntryFor(a); err != nil {
			return fmt.Errorf("campaign: %w", err)
		}
	}
	for _, r := range s.AttackRates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("campaign: attack rate %g is not a non-negative finite number", r)
		}
	}
	return nil
}

// ParseSpecJSON decodes the wire form of a Spec — the exact payload
// `POST /sweeps` accepts and `sweep -spec` reads. Unknown fields are
// rejected (a typoed axis name must not silently sweep defaults), as
// is trailing data after the object, and the decoded spec is validated
// (and so default-filled) before it is returned.
func ParseSpecJSON(r io.Reader) (Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var spec Spec
	if err := dec.Decode(&spec); err != nil {
		return Spec{}, fmt.Errorf("campaign: parsing spec JSON: %w", err)
	}
	if dec.More() {
		return Spec{}, fmt.Errorf("campaign: trailing data after spec JSON")
	}
	if err := spec.Validate(); err != nil {
		return Spec{}, err
	}
	return spec, nil
}

// Size returns the number of tasks the grid expands to.
func (s *Spec) Size() int {
	s.Fill()
	return len(s.Engines) * len(s.Auths) * len(s.AttackRates) * len(s.Placements) *
		len(s.Workloads) * len(s.Refs) *
		len(s.CacheSizes) * len(s.L2Sizes) * len(s.LineSizes) * len(s.BusWidths)
}

// WorkloadNames lists the sweepable workloads in stable order.
func WorkloadNames() []string {
	names := make([]string, 0, len(trace.Sources))
	for n := range trace.Sources {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseList splits a comma-separated flag value into trimmed non-empty
// items; empty input returns nil (axis default applies).
func ParseList(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// ParseIntList is ParseList for integer axes; it accepts size suffixes
// K and M (binary) so cache grids read naturally: "4K,16K,64K".
func ParseIntList(s string) ([]int, error) {
	var out []int
	for _, item := range ParseList(s) {
		mult := 1
		upper := strings.ToUpper(item)
		switch {
		case strings.HasSuffix(upper, "K"):
			mult, item = 1<<10, item[:len(item)-1]
		case strings.HasSuffix(upper, "M"):
			mult, item = 1<<20, item[:len(item)-1]
		}
		n, err := strconv.Atoi(strings.TrimSpace(item))
		if err != nil {
			return nil, fmt.Errorf("campaign: bad integer %q in list", item)
		}
		out = append(out, n*mult)
	}
	return out, nil
}

// ParseFloatList is ParseList for float axes (attack rates).
func ParseFloatList(s string) ([]float64, error) {
	var out []float64
	for _, item := range ParseList(s) {
		f, err := strconv.ParseFloat(item, 64)
		if err != nil {
			return nil, fmt.Errorf("campaign: bad number %q in list", item)
		}
		out = append(out, f)
	}
	return out, nil
}
