package campaign

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"reflect"
	"strings"
	"testing"
)

// keysOf is the grid a spec expands to, as the ordered Key() list — the
// identity the round-trip tests compare.
func keysOf(t *testing.T, spec Spec) []string {
	t.Helper()
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	tasks := spec.Expand()
	keys := make([]string, len(tasks))
	for i, task := range tasks {
		keys[i] = task.Cfg.Key()
	}
	return keys
}

func TestSpecJSONRoundTrip(t *testing.T) {
	specs := []Spec{
		{}, // all defaults
		{Engines: []string{"aegis", "xom"}},
		{Engines: []string{"gi"}, Workloads: []string{"sequential", "firmware"},
			Refs: []int{1000, 2000}},
		{CacheSizes: []int{4 << 10, 64 << 10}, L2Sizes: []int{0, 64 << 10},
			LineSizes: []int{16, 64}, BusWidths: []int{8}},
		{Auths: []string{"tree", "ctree"}, AttackRates: []float64{0, 2.5}},
		{Placements: []string{"default", "l1-l2"}, L2Sizes: []int{64 << 10}},
	}
	for i, spec := range specs {
		b, err := json.Marshal(spec)
		if err != nil {
			t.Fatal(err)
		}
		decoded, err := ParseSpecJSON(bytes.NewReader(b))
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if got, want := keysOf(t, decoded), keysOf(t, spec); !reflect.DeepEqual(got, want) {
			t.Errorf("spec %d: decoded grid differs\ngot  %d keys %v\nwant %d keys %v",
				i, len(got), got, len(want), want)
		}
	}
}

func TestSpecJSONRoundTripIsStableOnFilledSpec(t *testing.T) {
	// A validated (default-filled) spec — the form a Report carries and
	// a checkpointed service re-serializes — round-trips to the exact
	// same filled axes, not just the same expansion.
	spec := Spec{Engines: []string{"xom"}}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	b, _ := json.Marshal(spec)
	decoded, err := ParseSpecJSON(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, spec) {
		t.Errorf("filled spec mutated in round trip:\ngot  %+v\nwant %+v", decoded, spec)
	}
}

func TestParseSpecJSONRejects(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"not json", `{engines}`, "parsing spec"},
		{"unknown field", `{"engine":["aegis"]}`, "unknown field"},
		{"typoed axis", `{"cachesizes":[4096]}`, "unknown field"},
		{"trailing data", `{"engines":["aegis"]} {"engines":["xom"]}`, "trailing data"},
		{"unknown engine", `{"engines":["warp-drive"]}`, "unknown engine"},
		{"unknown workload", `{"workloads":["fortnite"]}`, "unknown workload"},
		{"zero refs", `{"refs":[0]}`, "non-positive refs"},
		{"negative refs", `{"refs":[-5]}`, "non-positive refs"},
		{"bad placement", `{"placements":["l3-dram"]}`, "placement"},
		{"negative attack rate", `{"attack_rates":[-1]}`, "attack rate"},
		{"wrong type", `{"refs":"60000"}`, "parsing spec"},
		{"array not object", `[1,2,3]`, "parsing spec"},
	}
	for _, tc := range cases {
		_, err := ParseSpecJSON(strings.NewReader(tc.in))
		if err == nil {
			t.Errorf("%s: accepted %s", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: err = %q, want mention of %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestParseSpecJSONEmptyObjectsAndLists(t *testing.T) {
	// `{}` and explicit empty axes both mean "defaults" — an empty list
	// is not a zero-point grid.
	for _, in := range []string{`{}`, `{"engines":[],"refs":[]}`, `{"engines":null}`} {
		spec, err := ParseSpecJSON(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if len(spec.Engines) == 0 || spec.Size() == 0 {
			t.Errorf("%s: defaults not filled: %+v", in, spec)
		}
	}
	// Empty input is an error, not an empty grid.
	if _, err := ParseSpecJSON(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := ParseSpecJSON(io.LimitReader(strings.NewReader(`{"engines"`), 10)); err == nil {
		t.Error("truncated input accepted")
	}
}

// TestSpecFlagsMatchJSON pins the satellite contract: the CLI axis
// flags and the service's JSON payload build the same grid.
func TestSpecFlagsMatchJSON(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := RegisterSpecFlags(fs)
	if err := fs.Parse([]string{
		"-engines", "aegis,xom",
		"-workloads", "sequential",
		"-refs", "2K",
		"-cache", "4K,16K",
		"-l2", "0,64K",
		"-placement", "default",
		"-line", "32",
		"-bus", "8",
		"-authtree", "tree",
		"-attack", "0.5",
	}); err != nil {
		t.Fatal(err)
	}
	if sf.Empty() {
		t.Fatal("Empty() true after setting every axis")
	}
	fromFlags, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := ParseSpecJSON(strings.NewReader(`{
		"engines":["aegis","xom"], "workloads":["sequential"], "refs":[2048],
		"cache_sizes":[4096,16384], "l2_sizes":[0,65536], "placements":["default"],
		"line_sizes":[32], "bus_widths":[8], "auths":["tree"], "attack_rates":[0.5]
	}`))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := keysOf(t, fromFlags), keysOf(t, fromJSON); !reflect.DeepEqual(got, want) {
		t.Errorf("flag grid != JSON grid\nflags %v\njson  %v", got, want)
	}
}

func TestSpecFlagsEmptyAndErrors(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	sf := RegisterSpecFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if !sf.Empty() {
		t.Error("Empty() false with no axis flags set")
	}
	spec, err := sf.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if len(spec.Engines) != 0 {
		t.Error("flagless Spec should leave axes empty (defaults fill at Validate)")
	}

	fs2 := flag.NewFlagSet("test", flag.ContinueOnError)
	sf2 := RegisterSpecFlags(fs2)
	if err := fs2.Parse([]string{"-refs", "sixty-thousand"}); err != nil {
		t.Fatal(err)
	}
	if sf2.Empty() {
		t.Error("Empty() true with -refs set")
	}
	if _, err := sf2.Spec(); err == nil {
		t.Error("bad -refs value accepted")
	}
}
