package campaign

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The negative-caching regression: a transient failure must not be
// memoized for the life of the process. The first lookup fails, the
// second retries and succeeds, and from then on the value is served
// from cache.
func TestMemoDoesNotCacheErrors(t *testing.T) {
	m := newMemo[int]()
	calls := 0
	flaky := func() (int, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}
	if _, err := m.get("k", flaky); err == nil {
		t.Fatal("first lookup should surface the failure")
	}
	v, err := m.get("k", flaky)
	if err != nil || v != 42 {
		t.Fatalf("retry after error: got %d, %v; want 42, nil", v, err)
	}
	v, err = m.get("k", flaky)
	if err != nil || v != 42 {
		t.Fatalf("cached lookup: got %d, %v", v, err)
	}
	if calls != 2 {
		t.Errorf("computation ran %d times, want 2 (fail, succeed, then cached)", calls)
	}
	if m.Misses() != 2 {
		t.Errorf("misses = %d, want 2 (every executed computation)", m.Misses())
	}
	if m.Hits() != 1 {
		t.Errorf("hits = %d, want 1 (only the served cached value)", m.Hits())
	}
}

// Hit accounting: a hit is only counted once the entry's computation
// has completed successfully — errored attempts count for nobody, and
// N concurrent callers of one successful computation yield exactly one
// miss and N-1 hits.
func TestMemoHitAccounting(t *testing.T) {
	m := newMemo[string]()
	var running atomic.Int32
	const callers = 16
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			v, err := m.get("shared", func() (string, error) {
				if running.Add(1) > 1 {
					t.Error("computation ran concurrently with itself")
				}
				defer running.Add(-1)
				return "value", nil
			})
			if err != nil || v != "value" {
				t.Errorf("got %q, %v", v, err)
			}
		}()
	}
	close(start)
	wg.Wait()
	if m.Misses() != 1 {
		t.Errorf("misses = %d, want 1", m.Misses())
	}
	if m.Hits() != callers-1 {
		t.Errorf("hits = %d, want %d", m.Hits(), callers-1)
	}
}

// Concurrent stress across flaky keys: every caller eventually observes
// either the error of the attempt it joined or a good value; no caller
// ever sees a stale error after a success, and a success is computed at
// most once per key.
func TestMemoConcurrentRetry(t *testing.T) {
	m := newMemo[int]()
	var failures atomic.Int32
	failures.Store(3)
	var successes atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				v, err := m.get("k", func() (int, error) {
					if failures.Add(-1) >= 0 {
						return 0, fmt.Errorf("transient")
					}
					successes.Add(1)
					return 7, nil
				})
				if err == nil {
					if v != 7 {
						t.Errorf("got %d", v)
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := successes.Load(); got != 1 {
		t.Errorf("successful computation ran %d times, want 1", got)
	}
	// After the dust settles the value is cached.
	before := m.Misses()
	if v, err := m.get("k", func() (int, error) { return 0, fmt.Errorf("must not run") }); err != nil || v != 7 {
		t.Errorf("post-stress lookup: %d, %v", v, err)
	}
	if m.Misses() != before {
		t.Error("post-stress lookup recomputed")
	}
}
