// Campaign-level flight recording: per-task recorders, the canonical
// merged trace, and the live snapshot hub the sweep CLI serves beside
// /metrics.
//
// Determinism contract (DESIGN.md §10): each task's stream is a pure
// function of its TaskConfig — the recorder is private to the task,
// events are stamped with simulated cycles and reference indices
// (never wall-clock), and the baseline simulation (whose owner is
// scheduling-dependent) is represented by a synthesized KindBaseline
// record rather than recorded live. TraceOf then orders streams by
// task expansion index, so a -jobs 8 sweep serializes byte-identically
// to -jobs 1.
//
//repro:deterministic
package campaign

import (
	"fmt"
	"net/http"
	"sync"

	"repro/internal/obs/rec"
)

// DefaultTraceCap is the per-task ring capacity (events) used when a
// Tracer doesn't set one: 64k events ≈ 3 MiB per concurrent task.
const DefaultTraceCap = rec.DefaultCap

// Tracer installs flight recording on a Runner (Runner.Trace) and
// collects each task's sealed stream as it completes. The collection
// side is mutex-guarded — workers seal concurrently — but the recorded
// content is per-task deterministic; only the live Snapshot order
// depends on completion timing, which is why Snapshot sorts and
// TraceOf (the canonical merge) reads from the Report instead.
type Tracer struct {
	// Cap is the per-task ring capacity in events (rounded up to a
	// power of two); 0 means DefaultTraceCap.
	Cap int

	mu      sync.Mutex
	streams []rec.Stream
}

func (tr *Tracer) capacity() int {
	if tr.Cap > 0 {
		return tr.Cap
	}
	return DefaultTraceCap
}

func (tr *Tracer) add(st rec.Stream) {
	tr.mu.Lock()
	tr.streams = append(tr.streams, st)
	tr.mu.Unlock()
}

// Snapshot returns the streams of every task completed so far, sorted
// by track label for a stable listing — the live view. For the
// canonical jobs-independent merge of a finished campaign, use TraceOf.
func (tr *Tracer) Snapshot() *rec.Trace {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	out := &rec.Trace{Streams: make([]rec.Stream, len(tr.streams))}
	copy(out.Streams, tr.streams)
	for i := 1; i < len(out.Streams); i++ {
		for j := i; j > 0 && out.Streams[j].Track < out.Streams[j-1].Track; j-- {
			out.Streams[j], out.Streams[j-1] = out.Streams[j-1], out.Streams[j]
		}
	}
	return out
}

// Handler serves the live snapshot as Chrome trace_event JSON — the
// /trace endpoint beside /metrics: curl it mid-sweep, load it in
// Perfetto.
func (tr *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := rec.WriteChrome(w, tr.Snapshot()); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}

// Trace installs tr on the runner: every subsequent task records into
// a private ring and carries its sealed stream in Result.Trace. nil
// uninstalls. Like Observe, this is opt-in observability — the
// simulation path is untouched when absent, and emitted result bytes
// are identical either way.
func (r *Runner) Trace(tr *Tracer) { r.tr = tr }

// TraceOf assembles the canonical merged trace of a traced report:
// streams ordered by task expansion index (the track label carries the
// index and the task key), events already in sequence order within
// each stream. A task served from the result memo carries the
// computing task's identical stream plus one appended KindMemoHit
// record naming it — memoization is scheduling-invisible, so the merge
// stays a pure function of the report. Returns an empty trace for an
// untraced report.
func TraceOf(rep *Report) *rec.Trace {
	tr := &rec.Trace{}
	first := make(map[string]int)
	for i := range rep.Results {
		res := &rep.Results[i]
		if res.Trace == nil {
			continue
		}
		st := *res.Trace
		if fi, dup := first[res.Key()]; dup {
			memo := rec.Event{Kind: rec.KindMemoHit, Cycle: res.Cycles, Arg: uint64(fi)}
			if n := len(st.Events); n > 0 {
				memo.Seq = st.Events[n-1].Seq + 1
			}
			// Full-slice expression: the append must copy, never grow
			// the computing task's backing array in place.
			st.Events = append(st.Events[:len(st.Events):len(st.Events)], memo)
		} else {
			first[res.Key()] = i
		}
		st.Track = fmt.Sprintf("task%03d %s", i, res.Key())
		tr.Streams = append(tr.Streams, st)
	}
	return tr
}
