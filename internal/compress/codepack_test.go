package compress

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/modes"
)

func trained(t testing.TB, n int) (*Codec, []byte) {
	t.Helper()
	prog := SyntheticProgram(n, 42)
	c, err := Train(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c, prog
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("empty program accepted")
	}
	if _, err := Train(make([]byte, 6)); err == nil {
		t.Error("non-multiple-of-4 program accepted")
	}
}

func TestCompressValidation(t *testing.T) {
	c, _ := trained(t, 4096)
	if _, err := c.Compress(nil); err == nil {
		t.Error("empty image accepted")
	}
	if _, err := c.Compress(make([]byte, BlockBytes+4)); err == nil {
		t.Error("non-block-multiple image accepted")
	}
}

func TestRoundtrip(t *testing.T) {
	c, prog := trained(t, 16384)
	im, err := c.Compress(prog)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(im)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, prog) {
		t.Fatal("decompress != original")
	}
}

// The survey's density claim: ~35 % gain on code, i.e. ratio ≈ 1.35.
// Accept the band [1.2, 1.8] for the synthetic program.
func TestDensityGainNearCodePackClaim(t *testing.T) {
	c, prog := trained(t, 64*1024)
	im, err := c.Compress(prog)
	if err != nil {
		t.Fatal(err)
	}
	r := im.Ratio()
	if r < 1.2 || r > 1.8 {
		t.Errorf("compression ratio %.3f outside CodePack-like band [1.2,1.8]", r)
	}
}

// Random access: any single block decodes without touching the others.
func TestRandomAccessBlocks(t *testing.T) {
	c, prog := trained(t, 8192)
	im, _ := c.Compress(prog)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		blk := rng.Intn(len(im.Index))
		got, err := c.DecompressBlock(im, blk)
		if err != nil {
			t.Fatal(err)
		}
		want := prog[blk*BlockBytes : (blk+1)*BlockBytes]
		if !bytes.Equal(got, want) {
			t.Fatalf("block %d mismatch", blk)
		}
	}
	if _, err := c.DecompressBlock(im, -1); err == nil {
		t.Error("negative block accepted")
	}
	if _, err := c.DecompressBlock(im, len(im.Index)); err == nil {
		t.Error("out-of-range block accepted")
	}
}

// A codec trained on one program still roundtrips another (rare values
// ride the escape path), just with a worse ratio.
func TestEscapePathOnForeignProgram(t *testing.T) {
	c, _ := trained(t, 8192)
	foreign := SyntheticProgram(4096, 999)
	im, err := c.Compress(foreign)
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.Decompress(im)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, foreign) {
		t.Fatal("foreign roundtrip failed")
	}
}

// Figure 8's ordering rule: compressing ciphertext must do (much) worse
// than compressing plaintext — encrypted data is incompressible.
func TestCiphertextDoesNotCompress(t *testing.T) {
	c, prog := trained(t, 32768)
	plain, err := c.Compress(prog)
	if err != nil {
		t.Fatal(err)
	}

	blk, err := aes.New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, len(prog))
	modes.NewECB(blk).Encrypt(ct, prog)

	// Retrain on the ciphertext (most favourable for it) and compress.
	c2, err := Train(ct)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := c2.Compress(ct)
	if err != nil {
		t.Fatal(err)
	}
	if enc.Ratio() >= 1.0 {
		t.Errorf("ciphertext compressed (ratio %.3f); entropy argument violated", enc.Ratio())
	}
	if plain.Ratio() < enc.Ratio()+0.3 {
		t.Errorf("plaintext (%.3f) should compress far better than ciphertext (%.3f)",
			plain.Ratio(), enc.Ratio())
	}
}

func TestSyntheticProgramSizing(t *testing.T) {
	p := SyntheticProgram(10, 1) // rounds up to one block
	if len(p) != BlockBytes {
		t.Errorf("len = %d, want %d", len(p), BlockBytes)
	}
	p = SyntheticProgram(BlockBytes+1, 1)
	if len(p)%BlockBytes != 0 {
		t.Error("not block aligned")
	}
	// Deterministic per seed.
	if !bytes.Equal(SyntheticProgram(1024, 7), SyntheticProgram(1024, 7)) {
		t.Error("same seed differs")
	}
	if bytes.Equal(SyntheticProgram(1024, 7), SyntheticProgram(1024, 8)) {
		t.Error("different seeds identical")
	}
}

func TestDecodeCycles(t *testing.T) {
	c, _ := trained(t, 4096)
	if c.DecodeCycles() != BlockInstructions {
		t.Errorf("decode cycles = %d", c.DecodeCycles())
	}
}

func TestImageAccounting(t *testing.T) {
	c, prog := trained(t, 4096)
	im, _ := c.Compress(prog)
	if im.OriginalBytes != 4096 {
		t.Error("original size wrong")
	}
	if im.CompressedBytes() != len(im.Stream)+4*len(im.Index) {
		t.Error("compressed size accounting wrong")
	}
	if len(im.Index) != 4096/BlockBytes {
		t.Errorf("index entries = %d", len(im.Index))
	}
	empty := &Image{}
	if empty.Ratio() != 0 {
		t.Error("empty image ratio should be 0")
	}
}

func BenchmarkCompress(b *testing.B) {
	prog := SyntheticProgram(64*1024, 42)
	c, _ := Train(prog)
	b.SetBytes(int64(len(prog)))
	for i := 0; i < b.N; i++ {
		if _, err := c.Compress(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecompressBlock(b *testing.B) {
	prog := SyntheticProgram(64*1024, 42)
	c, _ := Train(prog)
	im, _ := c.Compress(prog)
	b.SetBytes(BlockBytes)
	for i := 0; i < b.N; i++ {
		if _, err := c.DecompressBlock(im, i%len(im.Index)); err != nil {
			b.Fatal(err)
		}
	}
}
