// Package compress implements a CodePack-style code compressor, the §4
// direction the survey proposes to offset encryption cost: "IBM proposes
// a tool for code compression: CodePack. The performance impact is
// claimed to be about +/- 10% (depends on the type of memory used) and
// an increase of memory density of 35%."
//
// Architecture faithful to CodePack:
//
//   - 32-bit instructions are split into high and low 16-bit halves,
//     each compressed against its own trained table (the two halves have
//     very different statistics: opcodes/registers vs immediates).
//   - Codes are canonical prefix codes over the most frequent halfword
//     values, with an escape code carrying rare values verbatim.
//   - Code is compressed in fixed blocks of instructions, with an index
//     table giving each block's bit offset, preserving random access —
//     the same property the bus engines need for jumps.
//
// The paper's Figure 8 ordering rule — "compression has to be done
// before ciphering, if not, compression will have a very poor ratio due
// to the strong stochastic properties of encrypted data" — is measured
// by experiment E12 using Ratio on ciphertext.
package compress

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
)

// BlockInstructions is the number of 32-bit instructions per compression
// block (CodePack used 16-instruction groups).
const BlockInstructions = 16

// BlockBytes is the plaintext size of one compression block.
const BlockBytes = 4 * BlockInstructions

// tableEntries is the number of halfword values given short codes per
// table; everything else takes the escape path.
const tableEntries = 256

// codeword describes one assigned prefix code.
type codeword struct {
	bits uint32
	n    uint8 // code length in bits
}

// halfTable is one trained table: value -> code, plus the decode side.
type halfTable struct {
	enc map[uint16]codeword
	// decode: sorted by (length, bits) canonical order.
	decValues []uint16
	decCodes  []codeword
	escape    codeword
}

// Codec is a trained CodePack-style compressor.
type Codec struct {
	hi, lo halfTable
	// DecodeCyclesPerInstr models the hardware decompressor's rate; the
	// CodePack core decoded roughly one instruction per cycle after a
	// small startup.
	DecodeCyclesPerInstr int
}

// Train builds a codec from a representative program image (length must
// be a multiple of 4). Frequencies of high and low halfwords are
// collected separately, exactly as CodePack's table construction does.
func Train(program []byte) (*Codec, error) {
	if len(program) == 0 || len(program)%4 != 0 {
		return nil, fmt.Errorf("compress: program length %d not a positive multiple of 4", len(program))
	}
	hiFreq := make(map[uint16]int)
	loFreq := make(map[uint16]int)
	for off := 0; off < len(program); off += 4 {
		w := binary.BigEndian.Uint32(program[off:])
		hiFreq[uint16(w>>16)]++
		loFreq[uint16(w)]++
	}
	c := &Codec{DecodeCyclesPerInstr: 1}
	c.hi = buildTable(hiFreq)
	c.lo = buildTable(loFreq)
	return c, nil
}

// buildTable assigns canonical prefix codes: the top values get codes of
// length 4..12 in frequency buckets, the escape is a fixed 12-bit code
// followed by 16 raw bits. Code lengths follow a Huffman-ish geometric
// ladder that keeps the decoder a simple length-indexed table walk, like
// the hardware.
func buildTable(freq map[uint16]int) halfTable {
	type vf struct {
		v uint16
		f int
	}
	all := make([]vf, 0, len(freq))
	//repro:allow iteration feeds a full sort with a value tiebreak below; map order cannot reach the output
	for v, f := range freq {
		all = append(all, vf{v, f})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].f != all[j].f {
			return all[i].f > all[j].f
		}
		return all[i].v < all[j].v
	})
	if len(all) > tableEntries {
		all = all[:tableEntries]
	}

	// Bucket sizes per code length: a fixed ladder (1 code of 2 bits, 3
	// of 4, 10 of 6, 40 of 8, 160 of 10, rest of 12) mirroring
	// CodePack's short-tag buckets, leaving space for the escape at 12.
	ladder := []struct {
		length int
		count  int
	}{{2, 1}, {4, 3}, {6, 10}, {8, 40}, {10, 160}, {12, 42}}

	t := halfTable{enc: make(map[uint16]codeword, len(all))}
	var code uint32
	var prevLen int
	idx := 0
	assign := func(length int) codeword {
		if prevLen != 0 && length > prevLen {
			code <<= uint(length - prevLen)
		}
		cw := codeword{bits: code, n: uint8(length)}
		code++
		prevLen = length
		return cw
	}
	for _, step := range ladder {
		for i := 0; i < step.count && idx < len(all); i++ {
			cw := assign(step.length)
			t.enc[all[idx].v] = cw
			t.decValues = append(t.decValues, all[idx].v)
			t.decCodes = append(t.decCodes, cw)
			idx++
		}
	}
	// Escape: the next canonical 12-bit code (always representable: the
	// ladder leaves at least one spare 12-bit slot because bucket sums
	// fit in the prefix space with room for it).
	t.escape = assign(12)
	return t
}

// bitWriter accumulates a bitstream MSB-first.
type bitWriter struct {
	buf  []byte
	bits uint64
	n    uint
}

func (w *bitWriter) write(bits uint32, n uint8) {
	w.bits = w.bits<<uint(n) | uint64(bits)&((1<<uint(n))-1)
	w.n += uint(n)
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.bits>>w.n))
	}
}

func (w *bitWriter) flush() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.bits<<(8-w.n)))
		w.n = 0
	}
}

// bitReader consumes a bitstream MSB-first.
type bitReader struct {
	buf []byte
	pos uint // bit position
}

func (r *bitReader) read(n uint8) uint32 {
	var out uint32
	for i := uint8(0); i < n; i++ {
		byteIdx := r.pos >> 3
		bit := (r.buf[byteIdx] >> (7 - r.pos&7)) & 1
		out = out<<1 | uint32(bit)
		r.pos++
	}
	return out
}

// Image is a compressed program: the block index plus the bitstream.
type Image struct {
	// Index holds each block's starting bit offset in Stream.
	Index []uint32
	// Stream is the compressed bitstream.
	Stream []byte
	// OriginalBytes is the plaintext image size.
	OriginalBytes int
}

// CompressedBytes is the total compressed footprint including the index
// (4 bytes per block entry, as the on-chip index table would occupy).
func (im *Image) CompressedBytes() int { return len(im.Stream) + 4*len(im.Index) }

// Ratio returns original/compressed — > 1 means the image shrank. The
// survey's 35 % density claim corresponds to ratio ≈ 1.35.
func (im *Image) Ratio() float64 {
	cb := im.CompressedBytes()
	if cb == 0 {
		return 0
	}
	return float64(im.OriginalBytes) / float64(cb)
}

// Compress encodes a program image (length multiple of BlockBytes).
func (c *Codec) Compress(program []byte) (*Image, error) {
	if len(program) == 0 || len(program)%BlockBytes != 0 {
		return nil, fmt.Errorf("compress: image length %d not a positive multiple of %d", len(program), BlockBytes)
	}
	w := &bitWriter{}
	im := &Image{OriginalBytes: len(program)}
	bitPos := uint32(0)
	for off := 0; off < len(program); off += BlockBytes {
		im.Index = append(im.Index, bitPos)
		for i := 0; i < BlockInstructions; i++ {
			word := binary.BigEndian.Uint32(program[off+4*i:])
			bitPos += c.hi.emit(w, uint16(word>>16))
			bitPos += c.lo.emit(w, uint16(word))
		}
	}
	w.flush()
	im.Stream = w.buf
	return im, nil
}

func (t *halfTable) emit(w *bitWriter, v uint16) uint32 {
	if cw, ok := t.enc[v]; ok {
		w.write(cw.bits, cw.n)
		return uint32(cw.n)
	}
	w.write(t.escape.bits, t.escape.n)
	w.write(uint32(v), 16)
	return uint32(t.escape.n) + 16
}

// DecompressBlock decodes block blk (random access via the index),
// returning its BlockBytes of instructions — the operation the
// decompression core performs on every cache-line fill.
func (c *Codec) DecompressBlock(im *Image, blk int) ([]byte, error) {
	if blk < 0 || blk >= len(im.Index) {
		return nil, fmt.Errorf("compress: block %d out of range [0,%d)", blk, len(im.Index))
	}
	r := &bitReader{buf: im.Stream, pos: uint(im.Index[blk])}
	out := make([]byte, BlockBytes)
	for i := 0; i < BlockInstructions; i++ {
		hi, err := c.hi.decode(r)
		if err != nil {
			return nil, err
		}
		lo, err := c.lo.decode(r)
		if err != nil {
			return nil, err
		}
		binary.BigEndian.PutUint32(out[4*i:], uint32(hi)<<16|uint32(lo))
	}
	return out, nil
}

// Decompress decodes the whole image.
func (c *Codec) Decompress(im *Image) ([]byte, error) {
	out := make([]byte, 0, im.OriginalBytes)
	for b := range im.Index {
		blk, err := c.DecompressBlock(im, b)
		if err != nil {
			return nil, err
		}
		out = append(out, blk...)
	}
	return out, nil
}

func (t *halfTable) decode(r *bitReader) (uint16, error) {
	// Canonical decode: extend the code one bit at a time and scan the
	// (short) table; the ladder caps lengths at 12 bits.
	var bits uint32
	var n uint8
	for n < 13 {
		if uint(r.pos) >= uint(len(r.buf))*8 {
			return 0, fmt.Errorf("compress: bitstream underrun")
		}
		bits = bits<<1 | r.read(1)
		n++
		if t.escape.n == n && t.escape.bits == bits {
			return uint16(r.read(16)), nil
		}
		for i, cw := range t.decCodes {
			if cw.n == n && cw.bits == bits {
				return t.decValues[i], nil
			}
		}
	}
	return 0, fmt.Errorf("compress: invalid code in bitstream")
}

// DecodeCycles models the hardware decompressor latency for one block.
func (c *Codec) DecodeCycles() uint64 {
	return uint64(BlockInstructions * c.DecodeCyclesPerInstr)
}

// SyntheticProgram generates a program image with realistic instruction
// statistics: a small hot set of opcode halfwords (the skew CodePack
// exploits) and more diffuse immediate halfwords. n is the image size in
// bytes (rounded up to a block multiple).
func SyntheticProgram(n int, seed int64) []byte {
	if n < BlockBytes {
		n = BlockBytes
	}
	if rem := n % BlockBytes; rem != 0 {
		n += BlockBytes - rem
	}
	rng := rand.New(rand.NewSource(seed))
	// 32 hot opcodes cover ~85 % of instructions (Zipf-ish).
	hot := make([]uint16, 32)
	for i := range hot {
		hot[i] = uint16(rng.Intn(1 << 16))
	}
	out := make([]byte, n)
	for off := 0; off < n; off += 4 {
		var hi uint16
		if rng.Float64() < 0.85 {
			// Zipf-like choice within the hot set.
			idx := int(float64(len(hot)) * rng.Float64() * rng.Float64())
			hi = hot[idx]
		} else {
			hi = uint16(rng.Intn(1 << 16))
		}
		// Low halves: small immediates and register fields dominate, as
		// in real RISC code.
		var lo uint16
		switch {
		case rng.Float64() < 0.6:
			lo = uint16(rng.Intn(32)) // tiny immediate / register field
		case rng.Float64() < 0.7:
			lo = uint16(rng.Intn(1024))
		default:
			lo = uint16(rng.Intn(1 << 16))
		}
		binary.BigEndian.PutUint32(out[off:], uint32(hi)<<16|uint32(lo))
	}
	return out
}
