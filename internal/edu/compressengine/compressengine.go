// Package compressengine implements the survey's Figure 8 unit:
// compression composed with encryption between the cache and the memory
// controller. "Compression can improve the performance of the encryption
// unit by decreasing the data size to cipher and to decipher. In
// addition, compression can raise hopes for a gain of memory capacity,
// and also performance benefit due to lowered bus usage. ... Moreover,
// compression increases the message entropy and thus improves the
// efficiency of an encryption algorithm... Another benefit is that
// compression adds a layer of security."
//
// The engine compresses code-region lines (CodePack compresses code, not
// data), then hands the smaller payload to an optional inner encryption
// engine. Decompression hardware adds its decode latency to fills; the
// bus moves the compressed size (via edu.TransferSizer).
package compressengine

import (
	"fmt"

	"repro/internal/compress"
	"repro/internal/edu"
)

// Config assembles the Figure 8 unit.
type Config struct {
	// Codec is the trained compressor.
	Codec *compress.Codec
	// Ratio is the measured compression ratio of the installed image
	// (original/compressed); the traffic model divides code-line bus
	// sizes by it.
	Ratio float64
	// CodeLimit bounds the compressed region: only code compresses well.
	CodeLimit uint64
	// Inner is the encryption engine applied after compression (Fig. 8
	// order); nil means compression-only (the CodePack baseline of E10).
	Inner edu.Engine
	// Gates is the decompressor area.
	Gates int
}

// Engine is a configured compression(+encryption) unit.
type Engine struct{ cfg Config }

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	switch {
	case cfg.Codec == nil:
		return nil, fmt.Errorf("compressengine: nil codec")
	case cfg.Ratio <= 1.0:
		return nil, fmt.Errorf("compressengine: ratio %.3f must exceed 1", cfg.Ratio)
	case cfg.CodeLimit == 0:
		return nil, fmt.Errorf("compressengine: zero code limit")
	}
	return &Engine{cfg}, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string {
	if e.cfg.Inner == nil {
		return "codepack"
	}
	return "codepack+" + e.cfg.Inner.Name() //repro:allow name formatting runs once per report, never per reference
}

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine.
func (e *Engine) BlockBytes() int {
	if e.cfg.Inner == nil {
		return 1
	}
	return e.cfg.Inner.BlockBytes()
}

// Gates implements edu.Engine.
func (e *Engine) Gates() int {
	g := e.cfg.Gates
	if e.cfg.Inner != nil {
		g += e.cfg.Inner.Gates()
	}
	return g
}

func (e *Engine) isCode(addr uint64) bool { return addr < e.cfg.CodeLimit }

// EncryptLine implements edu.Engine: the data path applies the inner
// cipher (the stored layout keeps line framing; compression affects the
// traffic and timing model, not the simulator's byte bookkeeping).
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) {
	if e.cfg.Inner != nil {
		e.cfg.Inner.EncryptLine(addr, dst, src)
		return
	}
	copy(dst, src)
}

// DecryptLine implements edu.Engine.
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) {
	if e.cfg.Inner != nil {
		e.cfg.Inner.DecryptLine(addr, dst, src)
		return
	}
	copy(dst, src)
}

// TransferBytes implements edu.TransferSizer: code lines cross the bus
// at the compressed size.
func (e *Engine) TransferBytes(addr uint64, lineBytes int) int {
	if !e.isCode(addr) {
		return lineBytes
	}
	n := int(float64(lineBytes) / e.cfg.Ratio)
	if n < 1 {
		n = 1
	}
	return n
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return 0 }

// DecodeStartupCycles is the decompressor's exposed startup: the index
// table lookup (which compression block, which bit offset) plus the
// decode pipeline fill. The decoder consumes compressed words as they
// arrive off the bus (the CodePack core sits in the memory controller
// for exactly this overlap), so beyond startup only a rate shortfall
// stalls the fill.
const DecodeStartupCycles = 4

// ReadExtraCycles implements edu.Engine: the decode overlaps the
// (shorter) compressed transfer; the exposed cost is the startup plus
// the amount by which decoding outlasts the transfer, plus the inner
// engine's cost over the smaller payload.
func (e *Engine) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	var cost uint64
	if e.isCode(addr) {
		decode := uint64(lineBytes / 4 * e.cfg.Codec.DecodeCyclesPerInstr)
		cost += DecodeStartupCycles
		if decode > transferCycles {
			cost += decode - transferCycles
		}
	}
	if e.cfg.Inner != nil {
		n := lineBytes
		if e.isCode(addr) {
			n = e.TransferBytes(addr, lineBytes)
		}
		cost += e.cfg.Inner.ReadExtraCycles(addr, n, transferCycles)
	}
	return cost
}

// WriteExtraCycles implements edu.Engine: code is read-mostly; data
// writes pay only the inner engine.
func (e *Engine) WriteExtraCycles(addr uint64, lineBytes int) uint64 {
	if e.cfg.Inner == nil {
		return 0
	}
	n := lineBytes
	if e.isCode(addr) {
		n = e.TransferBytes(addr, lineBytes)
	}
	return e.cfg.Inner.WriteExtraCycles(addr, n)
}

// NeedsRMW implements edu.Engine.
func (e *Engine) NeedsRMW(writeBytes int) bool {
	if e.cfg.Inner == nil {
		return false
	}
	return e.cfg.Inner.NeedsRMW(writeBytes)
}
