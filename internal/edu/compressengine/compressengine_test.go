package compressengine

import (
	"bytes"
	"testing"

	"repro/internal/compress"
	"repro/internal/edu"
	"repro/internal/edu/products"
)

const codeLimit = 1 << 20

func newCodec(t testing.TB) (*compress.Codec, float64) {
	t.Helper()
	prog := compress.SyntheticProgram(64<<10, 42)
	c, err := compress.Train(prog)
	if err != nil {
		t.Fatal(err)
	}
	im, err := c.Compress(prog)
	if err != nil {
		t.Fatal(err)
	}
	return c, im.Ratio()
}

func TestValidation(t *testing.T) {
	codec, ratio := newCodec(t)
	bad := []Config{
		{},
		{Codec: codec, Ratio: 0.9, CodeLimit: 1},
		{Codec: codec, Ratio: ratio, CodeLimit: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCompressionOnlyIdentityTransform(t *testing.T) {
	codec, ratio := newCodec(t)
	e, err := New(Config{Codec: codec, Ratio: ratio, CodeLimit: codeLimit, Gates: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "codepack" || e.BlockBytes() != 1 || e.NeedsRMW(1) {
		t.Error("identity wrong")
	}
	line := []byte("a 32-byte line of program text..")
	dst := make([]byte, 32)
	e.EncryptLine(0, dst, line)
	if !bytes.Equal(dst, line) {
		t.Error("compression-only engine must not transform data bytes")
	}
	if e.Gates() != 20000 || e.Placement() != edu.PlacementCacheMem || e.PerAccessCycles() != 0 {
		t.Error("accessors wrong")
	}
	if e.WriteExtraCycles(0, 32) != 0 {
		t.Error("compression-only writes must be free")
	}
}

func TestTransferBytesShrinksCodeOnly(t *testing.T) {
	codec, ratio := newCodec(t)
	e, _ := New(Config{Codec: codec, Ratio: ratio, CodeLimit: codeLimit})
	code := e.TransferBytes(0x1000, 32)
	if code >= 32 || code < 32/2 {
		t.Errorf("code transfer size %d implausible for ratio %.2f", code, ratio)
	}
	if e.TransferBytes(codeLimit+0x1000, 32) != 32 {
		t.Error("data lines must move uncompressed")
	}
}

func TestDecodeOverlap(t *testing.T) {
	codec, ratio := newCodec(t)
	e, _ := New(Config{Codec: codec, Ratio: ratio, CodeLimit: codeLimit})
	// Slow transfer hides the decode: only startup shows.
	slow := e.ReadExtraCycles(0, 32, 100)
	if slow != DecodeStartupCycles {
		t.Errorf("slow-bus decode cost %d, want %d", slow, DecodeStartupCycles)
	}
	// Fast transfer exposes the decode-rate shortfall.
	fast := e.ReadExtraCycles(0, 32, 2)
	if fast <= slow {
		t.Error("fast bus should expose decode time")
	}
	// Data lines cost nothing.
	if e.ReadExtraCycles(codeLimit+64, 32, 2) != 0 {
		t.Error("data fill should be free in compression-only mode")
	}
}

func TestComposedWithEncryption(t *testing.T) {
	codec, ratio := newCodec(t)
	inner, err := products.XOM(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{Codec: codec, Ratio: ratio, CodeLimit: codeLimit, Inner: inner, Gates: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "codepack+xom-aes" {
		t.Errorf("name %q", e.Name())
	}
	if e.Gates() <= 20000 {
		t.Error("inner gates not included")
	}
	if e.BlockBytes() != inner.BlockBytes() {
		t.Error("granule must come from the inner engine")
	}
	if !e.NeedsRMW(4) {
		t.Error("inner RMW predicate must propagate")
	}

	// The data path is the inner cipher: roundtrip through it.
	line := []byte("32 bytes of enciphered program..")
	ct := make([]byte, 32)
	e.EncryptLine(0x40, ct, line)
	if bytes.Equal(ct, line) {
		t.Error("composed engine did not encrypt")
	}
	back := make([]byte, 32)
	e.DecryptLine(0x40, back, ct)
	if !bytes.Equal(back, line) {
		t.Error("composed roundtrip failed")
	}

	// Fill cost includes both stages; write cost is the inner engine on
	// the compressed payload.
	if e.ReadExtraCycles(0, 32, 50) <= DecodeStartupCycles {
		t.Error("inner read cost missing")
	}
	if e.WriteExtraCycles(0, 32) == 0 {
		t.Error("inner write cost missing")
	}
}
