package multikey

import (
	"bytes"
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/products"
)

func domainEngine(t testing.TB, salt uint64) edu.Engine {
	t.Helper()
	key := []byte("0123456789abcdef")
	e, err := products.AEGIS(key, modes.IVCounter, salt)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func twoDomains(t testing.TB, switchCycles int) *Engine {
	t.Helper()
	e, err := New(Config{
		Regions: []Region{
			{Base: 0x0000, Limit: 0x10000, Engine: domainEngine(t, 1), Name: "procA"},
			{Base: 0x10000, Limit: 0x20000, Engine: domainEngine(t, 2), Name: "procB"},
		},
		SwitchCycles: switchCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("no regions accepted")
	}
	if _, err := New(Config{Regions: []Region{{Base: 0, Limit: 10}}}); err == nil {
		t.Error("nil domain engine accepted")
	}
	if _, err := New(Config{Regions: []Region{{Base: 10, Limit: 10, Engine: domainEngine(t, 1)}}}); err == nil {
		t.Error("empty region accepted")
	}
	if _, err := New(Config{Regions: []Region{
		{Base: 0, Limit: 0x100, Engine: domainEngine(t, 1), Name: "a"},
		{Base: 0x80, Limit: 0x200, Engine: domainEngine(t, 2), Name: "b"},
	}}); err == nil {
		t.Error("overlapping regions accepted")
	}
	if _, err := New(Config{Regions: []Region{{Base: 0, Limit: 1, Engine: domainEngine(t, 1)}}, SwitchCycles: -1}); err == nil {
		t.Error("negative switch cost accepted")
	}
}

func TestRoutingAndRoundtrip(t *testing.T) {
	e := twoDomains(t, 50)
	line := []byte("a line belonging to process A!!!")[:32]
	ct := make([]byte, 32)
	e.EncryptLine(0x100, ct, line)
	back := make([]byte, 32)
	e.DecryptLine(0x100, back, ct)
	if !bytes.Equal(back, line) {
		t.Fatal("domain A roundtrip failed")
	}
}

// Isolation: the same plaintext in two domains produces different
// ciphertext (different keys), and one domain's ciphertext does not
// decrypt in the other.
func TestDomainIsolation(t *testing.T) {
	e := twoDomains(t, 0)
	line := bytes.Repeat([]byte{0x42}, 32)
	ctA := make([]byte, 32)
	ctB := make([]byte, 32)
	e.EncryptLine(0x0100, ctA, line)  // process A
	e.EncryptLine(0x10100, ctB, line) // process B, same offset
	if bytes.Equal(ctA, ctB) {
		t.Error("two domains produced identical ciphertext for equal plaintext")
	}
}

func TestUnmappedAddressPanics(t *testing.T) {
	e := twoDomains(t, 0)
	defer func() {
		if recover() == nil {
			t.Error("unmapped address did not panic")
		}
	}()
	e.EncryptLine(0x90000, make([]byte, 32), make([]byte, 32))
}

// The context-switch tax: consecutive transfers within one domain are
// free of reload cost; crossing domains pays SwitchCycles.
func TestSwitchCostCharging(t *testing.T) {
	e := twoDomains(t, 50)
	inner := domainEngine(t, 1)
	base := inner.ReadExtraCycles(0x100, 32, 40)

	first := e.ReadExtraCycles(0x100, 32, 40) // loads A (no prior key)
	if first != base {
		t.Errorf("first access cost %d, want %d (no switch yet)", first, base)
	}
	same := e.ReadExtraCycles(0x200, 32, 40) // still A
	if same != base {
		t.Errorf("same-domain cost %d, want %d", same, base)
	}
	cross := e.ReadExtraCycles(0x10100, 32, 40) // B: reload
	if cross != base+50 {
		t.Errorf("cross-domain cost %d, want %d", cross, base+50)
	}
	back := e.ReadExtraCycles(0x300, 32, 40) // back to A: reload again
	if back != base+50 {
		t.Errorf("return cost %d, want %d", back, base+50)
	}
	if e.Switches != 2 {
		t.Errorf("switches = %d, want 2", e.Switches)
	}
	if r := e.SwitchRate(4); r != 0.5 {
		t.Errorf("switch rate %v, want 0.5", r)
	}
	if e.SwitchRate(0) != 0 {
		t.Error("zero-transfer rate guard missing")
	}
}

func TestWriteSwitchCost(t *testing.T) {
	e := twoDomains(t, 50)
	inner := domainEngine(t, 1)
	base := inner.WriteExtraCycles(0x100, 32)
	e.WriteExtraCycles(0x100, 32)
	got := e.WriteExtraCycles(0x10100, 32)
	innerB := domainEngine(t, 2)
	if got != innerB.WriteExtraCycles(0x10100, 32)+50 {
		t.Errorf("cross-domain write cost %d (domain base %d)", got, base)
	}
}

func TestAggregateAccessors(t *testing.T) {
	e := twoDomains(t, 10)
	if e.Name() != "multikey[2 domains]" {
		t.Errorf("name %q", e.Name())
	}
	if e.Placement() != edu.PlacementCacheMem {
		t.Error("placement wrong")
	}
	if e.BlockBytes() != 16 {
		t.Errorf("granule %d, want the domains' max (16)", e.BlockBytes())
	}
	if e.Gates() <= 300_000 || e.Gates() >= 2*300_000 {
		t.Errorf("gates %d: want shared core + key RAM, not per-domain duplication", e.Gates())
	}
	if !e.NeedsRMW(4) || e.NeedsRMW(16) {
		t.Error("RMW predicate should be conservative over domains")
	}
	if e.PerAccessCycles() != 0 {
		t.Error("per-access cycles nonzero")
	}
}
