// Package multikey implements the survey's other deferred topic: "it
// will not explore the key management mechanisms relative to
// multitasking operating systems; refer to [2]" (§1, pointing at Kuhn's
// TrustNo1 cryptoprocessor concept). In a multitasking system each
// process's external-memory image is ciphered under its own key, so a
// compromised or malicious process — or a probe correlating two
// processes — learns nothing across protection domains.
//
// The unit routes each bus line to the engine keyed for its address
// region (one region per process, assigned by the trusted kernel), and
// charges a key-reload penalty whenever consecutive transfers cross
// domains: the survey-era hardware held one expanded key schedule, and
// re-expansion/reload is the context-switch tax this extension measures
// (experiment E19).
package multikey

import (
	"fmt"
	"sort"

	"repro/internal/edu"
)

// Region binds an address range [Base, Limit) to a process's engine.
type Region struct {
	// Base is the region's first byte address.
	Base uint64
	// Limit is one past the region's last byte.
	Limit uint64
	// Engine is the per-process engine (its own key).
	Engine edu.Engine
	// Name labels the process in reports.
	Name string
}

// Config assembles the key-management unit.
type Config struct {
	// Regions are the process domains; they must not overlap and every
	// access must fall inside one.
	Regions []Region
	// SwitchCycles is the key-reload penalty when the active domain
	// changes between consecutive line transfers (key schedule reload
	// from the on-chip key RAM).
	SwitchCycles int
}

// Engine is a configured multi-domain EDU.
type Engine struct {
	regions []Region
	switchC uint64
	// active is the index of the domain whose key schedule is loaded.
	active    int
	hasActive bool
	// Switches counts key reloads (the context-switch tax).
	Switches uint64
}

// New builds the unit, validating domain geometry.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("multikey: no regions")
	}
	if cfg.SwitchCycles < 0 {
		return nil, fmt.Errorf("multikey: negative switch cost")
	}
	rs := append([]Region{}, cfg.Regions...)
	sort.Slice(rs, func(i, j int) bool { return rs[i].Base < rs[j].Base })
	for i, r := range rs {
		if r.Engine == nil {
			return nil, fmt.Errorf("multikey: region %q has no engine", r.Name)
		}
		if r.Limit <= r.Base {
			return nil, fmt.Errorf("multikey: region %q empty [%#x,%#x)", r.Name, r.Base, r.Limit)
		}
		if i > 0 && r.Base < rs[i-1].Limit {
			return nil, fmt.Errorf("multikey: regions %q and %q overlap", rs[i-1].Name, r.Name)
		}
	}
	return &Engine{regions: rs, switchC: uint64(cfg.SwitchCycles)}, nil
}

// lookup finds the domain for addr (-1 if none).
func (e *Engine) lookup(addr uint64) int {
	// Binary search over sorted disjoint regions.
	lo, hi := 0, len(e.regions)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		r := e.regions[mid]
		switch {
		case addr < r.Base:
			hi = mid - 1
		case addr >= r.Limit:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// engineFor returns the domain engine, panicking on unmapped addresses:
// an access outside every protection domain is a kernel bug, and real
// hardware would raise a bus error.
func (e *Engine) engineFor(addr uint64) edu.Engine {
	if i := e.lookup(addr); i >= 0 {
		return e.regions[i].Engine
	}
	panic(fmt.Sprintf("multikey: address %#x outside every protection domain", addr))
}

// switchCost charges the key reload if addr's domain differs from the
// loaded one.
func (e *Engine) switchCost(addr uint64) uint64 {
	i := e.lookup(addr)
	if i < 0 {
		return 0 // engineFor will panic on the data path
	}
	if e.hasActive && e.active == i {
		return 0
	}
	cost := uint64(0)
	if e.hasActive {
		e.Switches++
		cost = e.switchC
	}
	e.active, e.hasActive = i, true
	return cost
}

// Name implements edu.Engine.
func (e *Engine) Name() string { return fmt.Sprintf("multikey[%d domains]", len(e.regions)) } //repro:allow name formatting runs once per report, never per reference

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine: the coarsest domain granule, so the
// SoC's RMW logic stays conservative.
func (e *Engine) BlockBytes() int {
	max := 1
	for _, r := range e.regions {
		if b := r.Engine.BlockBytes(); b > max {
			max = b
		}
	}
	return max
}

// KeyRAMGatesPerDomain approximates on-chip storage for one retained
// key (key material + schedule slot in the key RAM).
const KeyRAMGatesPerDomain = 2_000

// Gates implements edu.Engine: the largest domain datapath (the cipher
// core is shared) plus the key RAM.
func (e *Engine) Gates() int {
	max := 0
	for _, r := range e.regions {
		if g := r.Engine.Gates(); g > max {
			max = g
		}
	}
	return max + len(e.regions)*KeyRAMGatesPerDomain
}

// EncryptLine implements edu.Engine.
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) {
	e.engineFor(addr).EncryptLine(addr, dst, src)
}

// DecryptLine implements edu.Engine.
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) {
	e.engineFor(addr).DecryptLine(addr, dst, src)
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: domain engine cost plus the key
// reload when the transfer crosses domains.
func (e *Engine) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	sw := e.switchCost(addr)
	if i := e.lookup(addr); i >= 0 {
		return sw + e.regions[i].Engine.ReadExtraCycles(addr, lineBytes, transferCycles)
	}
	return sw
}

// WriteExtraCycles implements edu.Engine.
func (e *Engine) WriteExtraCycles(addr uint64, lineBytes int) uint64 {
	sw := e.switchCost(addr)
	if i := e.lookup(addr); i >= 0 {
		return sw + e.regions[i].Engine.WriteExtraCycles(addr, lineBytes)
	}
	return sw
}

// NeedsRMW implements edu.Engine: conservative over all domains.
func (e *Engine) NeedsRMW(writeBytes int) bool {
	for _, r := range e.regions {
		if r.Engine.NeedsRMW(writeBytes) {
			return true
		}
	}
	return false
}

// SwitchRate reports switches per call into the timing model — the
// context-switch tax intensity.
func (e *Engine) SwitchRate(transfers uint64) float64 {
	if transfers == 0 {
		return 0
	}
	return float64(e.Switches) / float64(transfers)
}
