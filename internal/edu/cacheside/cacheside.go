// Package cacheside implements the survey's Figure 7b proposal: the EDU
// between the CPU core and the cache, so that even on-chip cache
// contents are ciphered. Section 4 of the paper dissects why this is
// "critical": it sits on the CPU–cache timing path, it demands an
// on-chip keystream memory "equivalent to the cache memory in term of
// size", and it "seems to provide no benefit in term of performance when
// compared to a stream cipher located between cache memory and memory
// controller". Experiment E11 reproduces that verdict.
package cacheside

import (
	"fmt"

	"repro/internal/crypto/stream"
	"repro/internal/edu"
)

// Config assembles a cache-side engine.
type Config struct {
	// Name labels the engine.
	Name string
	// Pads supplies the keystream; the deciphering key stream for a line
	// must be reproducible, so it is address-seeded like the Fig. 7a
	// stream engine — but here a copy is also held in on-chip RAM.
	Pads *stream.PadSource
	// CacheAccessPenalty is the extra CPU cycles added to EVERY cache
	// access by the in-path XOR and keystream lookup (≥1: "modifying the
	// cache access time directly impacts the system performance").
	CacheAccessPenalty int
	// CacheBytes is the cache capacity; the keystream store must match
	// it, and its area is what makes the scheme "unaffordable".
	CacheBytes int
	// KeystreamCyclesPerByte is the generator rate for refilling the
	// keystream store on a miss.
	KeystreamCyclesPerByte int
	// GeneratorGates is the keystream generator's own area.
	GeneratorGates int
}

// GatesPerKeystreamByte approximates on-chip SRAM cost in gate
// equivalents per byte (6T cells plus decode/sense overhead).
const GatesPerKeystreamByte = 12

// Engine is a configured Figure 7b EDU.
type Engine struct {
	cfg Config
	pad []byte // reusable pad scratch: the line transform must not allocate
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	switch {
	case cfg.Pads == nil:
		return nil, fmt.Errorf("cacheside: nil pad source")
	case cfg.CacheAccessPenalty < 1:
		return nil, fmt.Errorf("cacheside: access penalty must be >= 1 (the unit is on the cache path)")
	case cfg.CacheBytes <= 0:
		return nil, fmt.Errorf("cacheside: cache size must be positive")
	case cfg.KeystreamCyclesPerByte <= 0:
		return nil, fmt.Errorf("cacheside: non-positive keystream rate")
	}
	if cfg.Name == "" {
		cfg.Name = "cpu<->cache stream"
	}
	return &Engine{cfg: cfg, pad: make([]byte, cfg.Pads.LineSize())}, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string { return e.cfg.Name }

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCPUCache }

// BlockBytes implements edu.Engine.
func (e *Engine) BlockBytes() int { return 1 }

// Gates implements edu.Engine: generator plus the doubled on-chip
// memory — "to add an on-chip memory equivalent to the cache memory in
// term of size" — which dominates.
func (e *Engine) Gates() int {
	return e.cfg.GeneratorGates + e.cfg.CacheBytes*GatesPerKeystreamByte
}

// EncryptLine / DecryptLine: the cache stores ciphertext, and that same
// ciphertext continues over the bus, so the line transform at the chip
// boundary is the identity on the already-ciphered bytes; but LoadImage
// and ReadPlain go through the engine, so the transform applied here is
// the pad XOR that the CPU-side unit performs.
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) { e.xor(addr, dst, src) }

// DecryptLine implements edu.Engine.
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) { e.xor(addr, dst, src) }

func (e *Engine) xor(addr uint64, dst, src []byte) {
	ls := e.cfg.Pads.LineSize()
	pad := e.pad
	for off := 0; off < len(src); off += ls {
		e.cfg.Pads.Pad(pad, addr+uint64(off))
		n := len(src) - off
		if n > ls {
			n = ls
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pad[i]
		}
	}
}

// PerAccessCycles implements edu.Engine: the defining cost of this
// placement — every hit pays it too.
func (e *Engine) PerAccessCycles() uint64 { return uint64(e.cfg.CacheAccessPenalty) }

// ReadExtraCycles implements edu.Engine: on a miss the keystream for the
// incoming line must be generated (and parked in the keystream store)
// within the external fetch window; only the shortfall stalls. This is
// §4's constraint verbatim.
func (e *Engine) ReadExtraCycles(_ uint64, lineBytes int, transferCycles uint64) uint64 {
	ks := uint64(lineBytes * e.cfg.KeystreamCyclesPerByte)
	if ks > transferCycles {
		return ks - transferCycles
	}
	return 0
}

// WriteExtraCycles implements edu.Engine: outbound lines are already
// ciphertext in the cache; they leave as-is.
func (e *Engine) WriteExtraCycles(uint64, int) uint64 { return 0 }

// NeedsRMW implements edu.Engine.
func (e *Engine) NeedsRMW(int) bool { return false }
