package cacheside

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/stream"
	"repro/internal/edu"
)

func newEngine(t testing.TB) *Engine {
	t.Helper()
	pads := stream.NewPadSource(stream.NewGeffe(0), 0xcafe, 32)
	e, err := New(Config{
		Pads:                   pads,
		CacheAccessPenalty:     1,
		CacheBytes:             16 << 10,
		KeystreamCyclesPerByte: 1,
		GeneratorGates:         6000,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	pads := stream.NewPadSource(stream.NewLFSR(0), 1, 32)
	cases := []Config{
		{},
		{Pads: pads, CacheAccessPenalty: 0, CacheBytes: 1024, KeystreamCyclesPerByte: 1},
		{Pads: pads, CacheAccessPenalty: 1, CacheBytes: 0, KeystreamCyclesPerByte: 1},
		{Pads: pads, CacheAccessPenalty: 1, CacheBytes: 1024, KeystreamCyclesPerByte: 0},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestIdentity(t *testing.T) {
	e := newEngine(t)
	if e.Placement() != edu.PlacementCPUCache {
		t.Error("placement must be cpu<->cache")
	}
	if e.Name() == "" || e.BlockBytes() != 1 || e.NeedsRMW(1) {
		t.Error("identity wrong")
	}
}

// §4: "That implies to add an on-chip memory equivalent to the cache
// memory in term of size" — the area must be dominated by the keystream
// store and scale with cache capacity.
func TestKeystreamMemoryDominatesArea(t *testing.T) {
	e := newEngine(t)
	wantMem := 16 * 1024 * GatesPerKeystreamByte
	if e.Gates() != 6000+wantMem {
		t.Errorf("gates = %d, want %d", e.Gates(), 6000+wantMem)
	}
	if e.Gates() < 10*6000 {
		t.Error("keystream store should dominate the generator area")
	}
}

func TestEveryAccessPaysThePenalty(t *testing.T) {
	e := newEngine(t)
	if e.PerAccessCycles() != 1 {
		t.Errorf("per-access = %d, want 1", e.PerAccessCycles())
	}
}

func TestRoundtrip(t *testing.T) {
	e := newEngine(t)
	line := make([]byte, 32)
	rand.New(rand.NewSource(1)).Read(line)
	ct := make([]byte, 32)
	e.EncryptLine(0x8000, ct, line)
	if bytes.Equal(ct, line) {
		t.Error("no transformation applied")
	}
	back := make([]byte, 32)
	e.DecryptLine(0x8000, back, ct)
	if !bytes.Equal(back, line) {
		t.Error("roundtrip failed")
	}
}

// The §4 constraint: keystream creation for a line must fit within an
// external fetch or stall the system.
func TestKeystreamGenerationConstraint(t *testing.T) {
	e := newEngine(t)
	if got := e.ReadExtraCycles(0, 32, 40); got != 0 {
		t.Errorf("in-window generation should not stall, got %d", got)
	}
	if got := e.ReadExtraCycles(0, 32, 10); got != 22 {
		t.Errorf("out-of-window generation: got %d, want 22", got)
	}
	if e.WriteExtraCycles(0, 32) != 0 {
		t.Error("outbound lines are already ciphertext; no write cost")
	}
}
