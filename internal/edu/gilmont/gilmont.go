// Package gilmont models the engine of Gilmont, Legat and Quisquater
// ("Enhancing Security in the Memory Management Unit", Euromicro 1999)
// as the survey describes it: "a fetch prediction unit and pipelined
// triple-DES block cipher. They assume to keep the deciphering cost
// under 2.5% in term of performance cost. However, this work only
// addresses static code ciphering" — so data writes bypass the unit and
// the design never faces the smaller-than-block write problem.
//
// The fetch prediction unit exploits the sequentiality of instruction
// streams: while line N is being consumed it speculatively fetches and
// deciphers line N+1, so a correctly predicted miss pays (almost) no
// deciphering latency; only a mispredicted fetch (a jump crossing a line
// boundary to a cold line) exposes the 3-DES pipeline fill.
package gilmont

import (
	"fmt"

	"repro/internal/crypto/des"
	"repro/internal/edu"
)

// Config assembles a Gilmont engine.
type Config struct {
	// Key is the 3-DES key (16 or 24 bytes).
	Key []byte
	// CodeLimit bounds the ciphered region: addresses below it are code
	// (enciphered, predicted); addresses at or above it are data and
	// pass through in clear, per the static-code-only design.
	CodeLimit uint64
	// Timing is the pipelined 3-DES core (48 Feistel stages; the paper's
	// pipeline runs one round per stage).
	Timing edu.PipelineTiming
	// PredictedCost is the residual cycles on a correct prediction (the
	// handoff from the prediction buffer; ~1).
	PredictedCost int
	// Gates is the area estimate.
	Gates int
}

// Engine is a configured Gilmont unit.
type Engine struct {
	cfg  Config
	tdes *des.TripleCipher
	// predicted is the line address the prediction unit has pre-deciphered.
	predicted uint64
	hasPred   bool
	// Stats
	Hits, Misses uint64 // prediction hits/misses on enciphered fills
}

// New builds the engine. A zero Timing defaults to the fully pipelined
// 48-stage core (latency 48, II 1); PredictedCost defaults to 1.
func New(cfg Config) (*Engine, error) {
	t, err := des.NewTriple(cfg.Key)
	if err != nil {
		return nil, fmt.Errorf("gilmont: %w", err)
	}
	if cfg.CodeLimit == 0 {
		return nil, fmt.Errorf("gilmont: zero code limit would cipher nothing")
	}
	if cfg.Timing.Latency == 0 {
		cfg.Timing = edu.PipelineTiming{Latency: 3 * des.Rounds, II: 1}
	}
	if cfg.Timing.Latency <= 0 || cfg.Timing.II <= 0 {
		return nil, fmt.Errorf("gilmont: bad timing %+v", cfg.Timing)
	}
	if cfg.PredictedCost == 0 {
		cfg.PredictedCost = 1
	}
	return &Engine{cfg: cfg, tdes: t}, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string { return "gilmont-3des" }

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine.
func (e *Engine) BlockBytes() int { return des.BlockSize }

// Gates implements edu.Engine.
func (e *Engine) Gates() int { return e.cfg.Gates }

// isCode reports whether the line at addr falls in the ciphered region.
func (e *Engine) isCode(addr uint64) bool { return addr < e.cfg.CodeLimit }

// EncryptLine implements edu.Engine: ECB 3-DES over code lines, identity
// over data (static code ciphering only).
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) {
	if !e.isCode(addr) {
		copy(dst, src)
		return
	}
	for off := 0; off+des.BlockSize <= len(src); off += des.BlockSize {
		e.tdes.Encrypt(dst[off:off+des.BlockSize], src[off:off+des.BlockSize])
	}
}

// DecryptLine implements edu.Engine.
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) {
	if !e.isCode(addr) {
		copy(dst, src)
		return
	}
	for off := 0; off+des.BlockSize <= len(src); off += des.BlockSize {
		e.tdes.Decrypt(dst[off:off+des.BlockSize], src[off:off+des.BlockSize])
	}
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: the prediction logic.
func (e *Engine) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	if !e.isCode(addr) {
		return 0 // data passes the unit in clear
	}
	predictedHit := e.hasPred && e.predicted == addr
	// Whatever happens, the unit now begins pre-deciphering the next
	// sequential line.
	e.predicted = addr + uint64(lineBytes)
	e.hasPred = true
	if predictedHit {
		e.Hits++
		return uint64(e.cfg.PredictedCost)
	}
	e.Misses++
	// Mispredicted (or first) fill: the line streams through the
	// pipelined core as it arrives; the CPU waits for the critical
	// first block's pipeline fill.
	return uint64(e.cfg.Timing.Latency)
}

// WriteExtraCycles implements edu.Engine: static code is never written
// back at run time; data lines pass in clear.
func (e *Engine) WriteExtraCycles(addr uint64, lineBytes int) uint64 {
	if !e.isCode(addr) {
		return 0
	}
	blocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	return uint64(e.cfg.Timing.Latency + (blocks-1)*e.cfg.Timing.II)
}

// NeedsRMW implements edu.Engine: the design "is not confronted to
// smaller-than-block-size memory operations" because data is in clear.
func (e *Engine) NeedsRMW(int) bool { return false }

// PredictionRate reports the fraction of enciphered fills whose line was
// correctly predicted.
func (e *Engine) PredictionRate() float64 {
	d := e.Hits + e.Misses
	if d == 0 {
		return 0
	}
	return float64(e.Hits) / float64(d)
}
