package gilmont

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/edu"
)

const codeLimit = 1 << 20

func newEngine(t testing.TB) *Engine {
	t.Helper()
	e, err := New(Config{Key: make([]byte, 24), CodeLimit: codeLimit, Gates: 120000})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{Key: make([]byte, 5), CodeLimit: 1}); err == nil {
		t.Error("bad key accepted")
	}
	if _, err := New(Config{Key: make([]byte, 24), CodeLimit: 0}); err == nil {
		t.Error("zero code limit accepted")
	}
	if _, err := New(Config{Key: make([]byte, 24), CodeLimit: 1, Timing: edu.PipelineTiming{Latency: 4, II: 0}}); err == nil {
		t.Error("bad timing accepted")
	}
}

func TestDefaults(t *testing.T) {
	e := newEngine(t)
	if e.cfg.Timing.Latency != 48 || e.cfg.Timing.II != 1 {
		t.Errorf("default timing %+v, want 48/1 pipelined 3-DES", e.cfg.Timing)
	}
	if e.Name() != "gilmont-3des" || e.Placement() != edu.PlacementCacheMem || e.BlockBytes() != 8 {
		t.Error("identity wrong")
	}
	if e.NeedsRMW(1) {
		t.Error("static-code design never faces RMW")
	}
}

func TestCodeCipheredDataClear(t *testing.T) {
	e := newEngine(t)
	line := bytes.Repeat([]byte{0xAB}, 32)

	ct := make([]byte, 32)
	e.EncryptLine(0x1000, ct, line) // code region
	if bytes.Equal(ct, line) {
		t.Error("code line not enciphered")
	}
	back := make([]byte, 32)
	e.DecryptLine(0x1000, back, ct)
	if !bytes.Equal(back, line) {
		t.Error("code roundtrip failed")
	}

	e.EncryptLine(codeLimit+0x1000, ct, line) // data region
	if !bytes.Equal(ct, line) {
		t.Error("data line was transformed (should pass in clear)")
	}
}

// The prediction unit: sequential fetches after the first cost ~1 cycle;
// jumps pay the pipeline fill.
func TestFetchPrediction(t *testing.T) {
	e := newEngine(t)
	const line = 32
	transfer := uint64(20)

	first := e.ReadExtraCycles(0x0000, line, transfer)
	if first != 48 {
		t.Errorf("cold fill extra = %d, want 48", first)
	}
	seq := e.ReadExtraCycles(0x0020, line, transfer)
	if seq != 1 {
		t.Errorf("predicted fill extra = %d, want 1", seq)
	}
	seq2 := e.ReadExtraCycles(0x0040, line, transfer)
	if seq2 != 1 {
		t.Errorf("second predicted fill extra = %d", seq2)
	}
	jump := e.ReadExtraCycles(0x8000, line, transfer)
	if jump != 48 {
		t.Errorf("jump target extra = %d, want 48", jump)
	}
	if e.Hits != 2 || e.Misses != 2 {
		t.Errorf("prediction stats %d/%d, want 2/2", e.Hits, e.Misses)
	}
	if e.PredictionRate() != 0.5 {
		t.Errorf("prediction rate %v", e.PredictionRate())
	}
}

func TestDataReadsFree(t *testing.T) {
	e := newEngine(t)
	if e.ReadExtraCycles(codeLimit+64, 32, 20) != 0 {
		t.Error("data fill should cost nothing")
	}
	if e.WriteExtraCycles(codeLimit+64, 32) != 0 {
		t.Error("data write should cost nothing")
	}
	if e.WriteExtraCycles(0, 32) == 0 {
		t.Error("code write (install path) should cost")
	}
}

// High prediction rate on straight-line code is the mechanism behind the
// <2.5% claim; verify the mechanism on a synthetic fetch walk.
func TestSequentialWalkPredictsAlmostAll(t *testing.T) {
	e := newEngine(t)
	rng := rand.New(rand.NewSource(3))
	addr := uint64(0)
	for i := 0; i < 1000; i++ {
		if rng.Float64() < 0.02 { // rare jump
			addr = uint64(rng.Intn(1<<15)) &^ 31
		}
		e.ReadExtraCycles(addr, 32, 20)
		addr += 32
	}
	if e.PredictionRate() < 0.95 {
		t.Errorf("sequential walk prediction rate %.3f, want > 0.95", e.PredictionRate())
	}
	if e.PerAccessCycles() != 0 || e.Gates() != 120000 {
		t.Error("identity accessors wrong")
	}
}
