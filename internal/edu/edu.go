// Package edu defines the Encryption/Decryption Unit abstraction of the
// survey's Figure 2c: the hardware block that sits on the external side
// of the cache (or, in the Figure 7b variant, between CPU and cache) and
// transforms every line crossing the chip boundary.
//
// An Engine couples two things the survey insists must be reasoned about
// together: the *data path* (what bytes appear on the probed bus) and
// the *timing* (what the deciphering does to CPU performance, "the
// usually stated critical impact"). Each surveyed design — Best, VLSI,
// General Instrument, Dallas, XOM, AEGIS, Gilmont — is an Engine
// implementation in a subpackage.
package edu

import "fmt"

// Placement locates the EDU in the memory hierarchy (Figure 7).
type Placement int

const (
	// PlacementNone means no encryption: the plaintext baseline.
	PlacementNone Placement = iota
	// PlacementCacheMem is Figure 7a: EDU between cache and memory
	// controller; cache contents are plaintext, bus and memory carry
	// ciphertext. Every surveyed product uses this placement.
	PlacementCacheMem
	// PlacementCPUCache is Figure 7b: EDU between CPU core and cache;
	// even on-chip cache contents are ciphertext. §4 explains why this
	// is hard: it touches the CPU-cache critical path and needs an
	// on-chip keystream store as large as the cache.
	PlacementCPUCache
	// PlacementL1L2 generalizes Figure 7 to a two-level hierarchy: the
	// EDU sits between the L1 and L2 caches, so the L2 and everything
	// beyond it hold ciphertext and every L1 miss crosses the unit.
	PlacementL1L2
	// PlacementL2DRAM is the AEGIS-evaluated configuration: the EDU at
	// the outer edge of a two-level hierarchy, where the L2 has already
	// filtered the miss traffic the unit must transform.
	PlacementL2DRAM
)

// String names the placement as the survey's figures do.
func (p Placement) String() string {
	switch p {
	case PlacementNone:
		return "none"
	case PlacementCacheMem:
		return "cache<->memctrl"
	case PlacementCPUCache:
		return "cpu<->cache"
	case PlacementL1L2:
		return "l1<->l2"
	case PlacementL2DRAM:
		return "l2<->dram"
	default:
		return "unknown"
	}
}

// PlacementNames lists the sweepable placement vocabulary accepted by
// ParsePlacement, in hierarchy order (flag help, validation).
func PlacementNames() []string {
	return []string{"default", "cpu-l1", "l1-l2", "l2-dram"}
}

// ParsePlacement resolves the CLI/campaign placement vocabulary: "" or
// "default" selects the outermost boundary of whatever hierarchy is
// configured (the pre-hierarchy behavior), "cpu-l1" the Figure 7b CPU-
// side boundary, "l1-l2" and "l2-dram" the two boundaries of a
// two-level hierarchy.
func ParsePlacement(name string) (Placement, error) {
	switch name {
	case "", "default":
		return PlacementNone, nil
	case "cpu-l1":
		return PlacementCPUCache, nil
	case "l1-l2":
		return PlacementL1L2, nil
	case "l2-dram":
		return PlacementL2DRAM, nil
	default:
		return PlacementNone, fmt.Errorf("edu: unknown placement %q (want default, cpu-l1, l1-l2 or l2-dram)", name)
	}
}

// Engine is one bus-encryption unit: data transform plus timing model.
//
// Addresses given to the transform methods are line-aligned physical bus
// addresses; engines that bind ciphertext to addresses (Best, DS5240,
// AEGIS IVs) use them, ECB-style engines ignore them.
type Engine interface {
	// Name identifies the engine in reports.
	Name() string
	// Placement reports where the unit sits (Figure 7).
	Placement() Placement
	// BlockBytes is the ciphering granule in bytes (1 for the DS5002's
	// byte cipher, 8 for DES cores, 16 for AES cores).
	BlockBytes() int
	// Gates estimates the silicon area in gate equivalents; the survey
	// quotes AEGIS's unit at 300,000 gates.
	Gates() int

	// EncryptLine transforms one plaintext line at addr into the bytes
	// that will cross the bus. len(dst) == len(src) == a line size that
	// is a multiple of BlockBytes.
	EncryptLine(addr uint64, dst, src []byte)
	// DecryptLine inverts EncryptLine.
	DecryptLine(addr uint64, dst, src []byte)

	// PerAccessCycles is added to EVERY cpu reference, hit or miss;
	// nonzero only for PlacementCPUCache engines, which lengthen the
	// cache access path itself.
	PerAccessCycles() uint64
	// ReadExtraCycles is the stall added to a line fill beyond the
	// bus+memory transfer time transferCycles. Engines that overlap
	// keystream generation with the fetch return (near) zero here.
	ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64
	// WriteExtraCycles is the engine-side cost of encrypting an
	// outbound line (writeback or write-through of a full granule).
	WriteExtraCycles(addr uint64, lineBytes int) uint64
	// NeedsRMW reports whether a store of writeBytes requires the
	// read-decipher-modify-recipher-write sequence of §2.2 because it
	// is smaller than the ciphering granule.
	NeedsRMW(writeBytes int) bool
}

// TransferSizer is an optional Engine extension for units that change
// the number of bytes actually crossing the bus — the compression stage
// of Figure 8. The SoC asks engines implementing it how many bytes to
// move for a line; plain encryption engines move the full line.
type TransferSizer interface {
	// TransferBytes returns the on-bus size of a line of lineBytes at
	// addr (≤ lineBytes for a compressor; the data path still carries
	// the full deciphered line to the cache).
	TransferBytes(addr uint64, lineBytes int) int
}

// PipelineTiming describes a hardware cipher core the way the surveyed
// papers do: a fill latency and an initiation interval. XOM's unit is
// quoted as "a low latency of 14 cycles, while a throughput of one
// encrypted/decrypted data per clock cycle" — Latency 14, II 1. An
// iterative (non-pipelined) core has II == Latency.
type PipelineTiming struct {
	// Latency is the cycles from a block entering the core to its
	// result emerging (pipeline depth × stage time).
	Latency int
	// II is the initiation interval: cycles between successive block
	// admissions (1 for fully pipelined, Latency for iterative).
	II int
}

// LineCycles returns the engine-side completion time, measured from the
// start of the line transfer, of deciphering `blocks` granules that
// arrive uniformly over transferCycles. It models a core that starts a
// granule as soon as that granule has arrived and a pipeline slot is
// free. The extra stall the CPU sees is LineCycles - transferCycles
// (never negative: the transfer itself is already accounted).
func (p PipelineTiming) LineCycles(blocks int, transferCycles uint64) uint64 {
	if blocks <= 0 {
		return transferCycles
	}
	// First granule arrives after its share of the transfer; subsequent
	// admissions are gated by both arrival and the initiation interval.
	firstArrival := transferCycles / uint64(blocks)
	lastStart := firstArrival + uint64((blocks-1)*p.II)
	if t := transferCycles; lastStart < t {
		// The last granule cannot start before it has fully arrived.
		lastStart = t
	}
	return lastStart + uint64(p.Latency)
}

// ExtraCycles is the stall beyond the transfer itself.
func (p PipelineTiming) ExtraCycles(blocks int, transferCycles uint64) uint64 {
	return p.LineCycles(blocks, transferCycles) - transferCycles
}

// Null is the plaintext baseline: no transformation, no cost. Every
// experiment reports overhead relative to a Null run.
type Null struct{}

// Name implements Engine.
func (Null) Name() string { return "plaintext" }

// Placement implements Engine.
func (Null) Placement() Placement { return PlacementNone }

// BlockBytes implements Engine; 1 means any write is granule-aligned.
func (Null) BlockBytes() int { return 1 }

// Gates implements Engine.
func (Null) Gates() int { return 0 }

// EncryptLine implements Engine (identity).
func (Null) EncryptLine(_ uint64, dst, src []byte) { copy(dst, src) }

// DecryptLine implements Engine (identity).
func (Null) DecryptLine(_ uint64, dst, src []byte) { copy(dst, src) }

// PerAccessCycles implements Engine.
func (Null) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements Engine.
func (Null) ReadExtraCycles(uint64, int, uint64) uint64 { return 0 }

// WriteExtraCycles implements Engine.
func (Null) WriteExtraCycles(uint64, int) uint64 { return 0 }

// NeedsRMW implements Engine.
func (Null) NeedsRMW(int) bool { return false }
