package edu

import "testing"

func TestPlacementString(t *testing.T) {
	cases := map[Placement]string{
		PlacementNone:     "none",
		PlacementCacheMem: "cache<->memctrl",
		PlacementCPUCache: "cpu<->cache",
		Placement(99):     "unknown",
	}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestPipelineFullyPipelined(t *testing.T) {
	// XOM's unit: latency 14, II 1. A 2-block line arriving over 20
	// cycles: last block arrives at 20, finishes at 34 → extra 14.
	p := PipelineTiming{Latency: 14, II: 1}
	if got := p.ExtraCycles(2, 20); got != 14 {
		t.Errorf("pipelined extra = %d, want 14", got)
	}
	// Throughput-limited only if blocks outpace the transfer entirely:
	// 32 blocks arriving instantaneously.
	if got := p.ExtraCycles(32, 0); got != 14+31 {
		t.Errorf("burst extra = %d, want 45", got)
	}
}

func TestPipelineIterativeCore(t *testing.T) {
	// Iterative DES: latency 16, II 16. Four blocks over a 20-cycle
	// transfer: first arrives at 5, admissions at 5,21,37,53; last done
	// at 69 → extra 49.
	p := PipelineTiming{Latency: 16, II: 16}
	if got := p.ExtraCycles(4, 20); got != 49 {
		t.Errorf("iterative extra = %d, want 49", got)
	}
}

func TestPipelineLastArrivalGates(t *testing.T) {
	// Slow transfer, fast pipeline: the last block's arrival dominates;
	// only the final latency shows.
	p := PipelineTiming{Latency: 5, II: 1}
	if got := p.ExtraCycles(4, 1000); got != 5 {
		t.Errorf("slow-bus extra = %d, want 5", got)
	}
}

func TestPipelineZeroBlocks(t *testing.T) {
	p := PipelineTiming{Latency: 10, II: 1}
	if got := p.LineCycles(0, 42); got != 42 {
		t.Errorf("zero blocks: %d, want 42", got)
	}
}

func TestNullEngine(t *testing.T) {
	var e Engine = Null{}
	if e.Name() != "plaintext" || e.Placement() != PlacementNone {
		t.Error("null identity wrong")
	}
	if e.Gates() != 0 || e.BlockBytes() != 1 || e.PerAccessCycles() != 0 {
		t.Error("null costs nonzero")
	}
	if e.ReadExtraCycles(0, 32, 10) != 0 || e.WriteExtraCycles(0, 32) != 0 {
		t.Error("null cycles nonzero")
	}
	if e.NeedsRMW(1) {
		t.Error("null needs RMW")
	}
	src := []byte{1, 2, 3}
	dst := make([]byte, 3)
	e.EncryptLine(0, dst, src)
	if dst[0] != 1 || dst[2] != 3 {
		t.Error("null transform not identity")
	}
	e.DecryptLine(0, dst, src)
	if dst[1] != 2 {
		t.Error("null decrypt not identity")
	}
}

func TestParsePlacement(t *testing.T) {
	cases := []struct {
		in   string
		want Placement
	}{
		{"", PlacementNone},
		{"default", PlacementNone},
		{"cpu-l1", PlacementCPUCache},
		{"l1-l2", PlacementL1L2},
		{"l2-dram", PlacementL2DRAM},
	}
	for _, c := range cases {
		got, err := ParsePlacement(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParsePlacement(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	if _, err := ParsePlacement("l3-dram"); err == nil {
		t.Error("unknown placement accepted")
	}
	// Every vocabulary name must round-trip through the parser.
	for _, name := range PlacementNames() {
		if _, err := ParsePlacement(name); err != nil {
			t.Errorf("listed name %q rejected: %v", name, err)
		}
	}
	for _, p := range []Placement{PlacementNone, PlacementCacheMem, PlacementCPUCache, PlacementL1L2, PlacementL2DRAM} {
		if p.String() == "unknown" {
			t.Errorf("placement %d has no name", p)
		}
	}
}
