// Package products instantiates each engine the survey catalogues,
// wired with the parameters the paper quotes:
//
//   - Best (Figure 3): substitution/transposition cipher, key on-chip.
//   - VLSI Technology (Figure 4): secure-DMA page transfers between
//     external and internal memory through a block-cipher core.
//   - General Instrument (Figure 5): 3-DES in CBC mode plus a keyed-hash
//     authenticator; robust but hostile to random access.
//   - Dallas DS5002FP and DS5240 (Figure 6): byte-wise bus cipher broken
//     by Kuhn, and its 64-bit DES/3-DES successor.
//   - XOM: pipelined AES, "a low latency of 14 latency cycles, while a
//     throughput of one encrypted/decrypted data per clock cycle".
//   - AEGIS: pipelined AES (300,000 gates) in CBC mode chained per cache
//     block, IV from block address plus random vector or counter.
package products

import (
	"fmt"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/bestcipher"
	"repro/internal/crypto/des"
	"repro/internal/crypto/ds5002"
	"repro/internal/crypto/keyedhash"
	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/blockengine"
)

// Gate-count estimates for the survey's comparison table. AEGISGates is
// the paper's own figure; the others are order-of-magnitude estimates
// for cores of that era, used only for relative area comparison.
const (
	BestGates    = 3_000   // substitution tables + transposition mux
	DS5002Gates  = 8_000   // byte scrambler + address encryptor
	DS5240Gates  = 30_000  // iterative 3-DES datapath
	VLSIGates    = 45_000  // DES core + DMA engine + page buffer control
	GIGates      = 60_000  // 3-DES CBC + CBC-MAC datapaths
	XOMGates     = 200_000 // fully pipelined AES rounds
	AEGISGates   = 300_000 // the survey's quoted figure
	GilmontGates = 120_000 // 48-stage pipelined 3-DES
)

// XOM builds the XOM-style engine: fully pipelined AES in ECB,
// latency 14 cycles, initiation interval 1.
func XOM(key []byte) (edu.Engine, error) {
	c, err := aes.New(key)
	if err != nil {
		return nil, fmt.Errorf("products: xom: %w", err)
	}
	return blockengine.New(blockengine.Config{
		Name:   "xom-aes",
		Cipher: c,
		Mode:   blockengine.ECB,
		Timing: edu.PipelineTiming{Latency: 14, II: 1},
		Gates:  XOMGates,
	})
}

// AEGIS builds the AEGIS-style engine: pipelined AES in per-cache-block
// CBC with address-bound IVs. ivMode selects the random vector (exposed
// to the birthday attack) or the counter fix; the survey: "to thwart the
// birthday attack it is possible to replace the random vector by a
// counter". The whole-line stall reproduces "the fetch instruction
// cannot be provided to the processor until an entire cache block is
// deciphered".
func AEGIS(key []byte, ivMode modes.IVMode, salt uint64) (edu.Engine, error) {
	c, err := aes.New(key)
	if err != nil {
		return nil, fmt.Errorf("products: aegis: %w", err)
	}
	return blockengine.New(blockengine.Config{
		Name:           "aegis-aes-cbc",
		Cipher:         c,
		Mode:           blockengine.LineCBC,
		Timing:         edu.PipelineTiming{Latency: 14, II: 1},
		Gates:          AEGISGates,
		Salt:           salt,
		IVMode:         ivMode,
		WholeLineStall: true,
	})
}

// GeneralInstrument is the Figure 5 engine: 3-DES CBC chained across
// sequential lines with a keyed-hash authenticator. Chaining beyond one
// line is what makes random access expensive: a non-sequential line
// fetch must also obtain the predecessor ciphertext block to restart the
// chain, and the MAC check serializes on the line.
type GeneralInstrument struct {
	tdes *des.TripleCipher
	cbc  *modes.BlockCBC // chain restart uses address-bound IVs
	mac  *keyedhash.CBCMAC
	// timing
	timing edu.PipelineTiming
	// chain state: last line address fetched, to detect random access
	lastLine uint64
	haveLast bool
	// Stats
	SequentialFills, RandomFills uint64
}

// NewGeneralInstrument builds the engine from a 3-DES key (16/24 bytes)
// and an 8-byte MAC key.
func NewGeneralInstrument(desKey, macKey []byte) (*GeneralInstrument, error) {
	t, err := des.NewTriple(desKey)
	if err != nil {
		return nil, fmt.Errorf("products: gi: %w", err)
	}
	m, err := keyedhash.NewCBCMAC(macKey)
	if err != nil {
		return nil, fmt.Errorf("products: gi: %w", err)
	}
	return &GeneralInstrument{
		tdes:   t,
		cbc:    modes.NewBlockCBC(t, modes.IVRandom, 0x6131),
		mac:    m,
		timing: edu.PipelineTiming{Latency: 3 * des.Rounds, II: 3 * des.Rounds}, // iterative core
	}, nil
}

// Name implements edu.Engine.
func (g *GeneralInstrument) Name() string { return "general-instrument-3des-cbc" }

// Placement implements edu.Engine.
func (g *GeneralInstrument) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine.
func (g *GeneralInstrument) BlockBytes() int { return des.BlockSize }

// Gates implements edu.Engine.
func (g *GeneralInstrument) Gates() int { return GIGates }

// EncryptLine implements edu.Engine.
func (g *GeneralInstrument) EncryptLine(addr uint64, dst, src []byte) {
	g.cbc.EncryptBlockAt(addr, dst, src)
}

// DecryptLine implements edu.Engine.
func (g *GeneralInstrument) DecryptLine(addr uint64, dst, src []byte) {
	g.cbc.DecryptBlockAt(addr, dst, src)
}

// MAC returns the authenticator tag for a line's plaintext; the SoC-side
// verify path and the attack experiments use it.
func (g *GeneralInstrument) MAC(line []byte) [keyedhash.TagSize]byte { return g.mac.Sum(line) }

// VerifyMAC checks a line against its tag.
func (g *GeneralInstrument) VerifyMAC(line []byte, tag [keyedhash.TagSize]byte) bool {
	return g.mac.Verify(line, tag)
}

// PerAccessCycles implements edu.Engine.
func (g *GeneralInstrument) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: iterative 3-DES decryption of
// the whole line (CBC + MAC serialize it), plus a chain-restart penalty
// of one extra block time on non-sequential access — the "random data
// access problem".
func (g *GeneralInstrument) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	blocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	// Iterative core, chained MAC: latency per block, serial.
	cost := uint64(blocks * g.timing.Latency)
	sequential := g.haveLast && addr == g.lastLine+uint64(lineBytes)
	g.lastLine, g.haveLast = addr, true
	if sequential {
		g.SequentialFills++
	} else {
		g.RandomFills++
		// Chain restart: fetch + decipher the predecessor block.
		cost += uint64(g.timing.Latency) + transferCycles/uint64(blocks)
	}
	return cost
}

// WriteExtraCycles implements edu.Engine: serial CBC encryption plus the
// MAC pass over the line.
func (g *GeneralInstrument) WriteExtraCycles(_ uint64, lineBytes int) uint64 {
	blocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	return uint64(2 * blocks * g.timing.Latency)
}

// NeedsRMW implements edu.Engine.
func (g *GeneralInstrument) NeedsRMW(writeBytes int) bool { return writeBytes < des.BlockSize }

// Best is the Figure 3 engine: the patent cipher with its key in an
// on-chip register. The substitution/transposition network is shallow —
// two gate levels — so it runs at bus speed: latency 2 cycles per block,
// accepting a block every 2 cycles.
type Best struct {
	c *bestcipher.Cipher
}

// NewBest builds the engine from an 8-byte key.
func NewBest(key []byte) (*Best, error) {
	c, err := bestcipher.New(key)
	if err != nil {
		return nil, fmt.Errorf("products: best: %w", err)
	}
	return &Best{c}, nil
}

// Name implements edu.Engine.
func (b *Best) Name() string { return "best-1979" }

// Placement implements edu.Engine.
func (b *Best) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine.
func (b *Best) BlockBytes() int { return bestcipher.BlockSize }

// Gates implements edu.Engine.
func (b *Best) Gates() int { return BestGates }

// EncryptLine implements edu.Engine.
func (b *Best) EncryptLine(addr uint64, dst, src []byte) {
	for off := 0; off+bestcipher.BlockSize <= len(src); off += bestcipher.BlockSize {
		b.c.EncryptAt(addr+uint64(off), dst[off:off+bestcipher.BlockSize], src[off:off+bestcipher.BlockSize])
	}
}

// DecryptLine implements edu.Engine.
func (b *Best) DecryptLine(addr uint64, dst, src []byte) {
	for off := 0; off+bestcipher.BlockSize <= len(src); off += bestcipher.BlockSize {
		b.c.DecryptAt(addr+uint64(off), dst[off:off+bestcipher.BlockSize], src[off:off+bestcipher.BlockSize])
	}
}

// PerAccessCycles implements edu.Engine.
func (b *Best) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: the shallow network keeps pace
// with the bus; only its two-level latency shows.
func (b *Best) ReadExtraCycles(uint64, int, uint64) uint64 { return 2 }

// WriteExtraCycles implements edu.Engine.
func (b *Best) WriteExtraCycles(uint64, int) uint64 { return 2 }

// NeedsRMW implements edu.Engine.
func (b *Best) NeedsRMW(writeBytes int) bool { return writeBytes < bestcipher.BlockSize }

// DS5002 is the Figure 6 original: byte-granular bus cipher, zero
// buffering, runs at bus speed — and enciphers "by block of 8-bit
// instructions", the property Kuhn's attack exhausts in 256 guesses.
type DS5002 struct {
	d *ds5002.DS5002
}

// NewDS5002 builds the engine.
func NewDS5002(key []byte) (*DS5002, error) {
	d, err := ds5002.NewDS5002(key)
	if err != nil {
		return nil, fmt.Errorf("products: %w", err)
	}
	return &DS5002{d}, nil
}

// Name implements edu.Engine.
func (e *DS5002) Name() string { return "ds5002fp" }

// Placement implements edu.Engine.
func (e *DS5002) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine: one byte.
func (e *DS5002) BlockBytes() int { return 1 }

// Gates implements edu.Engine.
func (e *DS5002) Gates() int { return DS5002Gates }

// EncryptLine implements edu.Engine.
func (e *DS5002) EncryptLine(addr uint64, dst, src []byte) {
	for i := range src {
		dst[i] = e.d.EncryptByte(uint16(addr+uint64(i)), src[i])
	}
}

// DecryptLine implements edu.Engine.
func (e *DS5002) DecryptLine(addr uint64, dst, src []byte) {
	for i := range src {
		dst[i] = e.d.DecryptByte(uint16(addr+uint64(i)), src[i])
	}
}

// PerAccessCycles implements edu.Engine.
func (e *DS5002) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: one combinational stage.
func (e *DS5002) ReadExtraCycles(uint64, int, uint64) uint64 { return 1 }

// WriteExtraCycles implements edu.Engine.
func (e *DS5002) WriteExtraCycles(uint64, int) uint64 { return 1 }

// NeedsRMW implements edu.Engine: byte granularity never needs RMW.
func (e *DS5002) NeedsRMW(int) bool { return false }

// Inner exposes the modeled part for the Kuhn attack harness.
func (e *DS5002) Inner() *ds5002.DS5002 { return e.d }

// DS5240 is the Figure 6 successor: 64-bit DES/3-DES bus ciphering with
// an iterative core (one round per cycle).
type DS5240 struct {
	d      *ds5002.DS5240
	rounds int
}

// NewDS5240 builds the engine; key length selects DES (8) or 3-DES
// (16/24), and with it the iterative latency (16 or 48 rounds).
func NewDS5240(key []byte) (*DS5240, error) {
	d, err := ds5002.NewDS5240(key)
	if err != nil {
		return nil, fmt.Errorf("products: %w", err)
	}
	rounds := des.Rounds
	if len(key) > 8 {
		rounds = 3 * des.Rounds
	}
	return &DS5240{d, rounds}, nil
}

// Name implements edu.Engine.
func (e *DS5240) Name() string { return "ds5240" }

// Placement implements edu.Engine.
func (e *DS5240) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine.
func (e *DS5240) BlockBytes() int { return des.BlockSize }

// Gates implements edu.Engine.
func (e *DS5240) Gates() int { return DS5240Gates }

// EncryptLine implements edu.Engine.
func (e *DS5240) EncryptLine(addr uint64, dst, src []byte) {
	for off := 0; off+des.BlockSize <= len(src); off += des.BlockSize {
		e.d.EncryptBlockAt(addr+uint64(off), dst[off:off+des.BlockSize], src[off:off+des.BlockSize])
	}
}

// DecryptLine implements edu.Engine.
func (e *DS5240) DecryptLine(addr uint64, dst, src []byte) {
	for off := 0; off+des.BlockSize <= len(src); off += des.BlockSize {
		e.d.DecryptBlockAt(addr+uint64(off), dst[off:off+des.BlockSize], src[off:off+des.BlockSize])
	}
}

// PerAccessCycles implements edu.Engine.
func (e *DS5240) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine: iterative core, one block in
// flight; blocks arrive faster than they decipher on a fast bus.
func (e *DS5240) ReadExtraCycles(_ uint64, lineBytes int, transferCycles uint64) uint64 {
	blocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	t := edu.PipelineTiming{Latency: e.rounds, II: e.rounds}
	return t.ExtraCycles(blocks, transferCycles)
}

// WriteExtraCycles implements edu.Engine.
func (e *DS5240) WriteExtraCycles(_ uint64, lineBytes int) uint64 {
	blocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	return uint64(blocks * e.rounds)
}

// NeedsRMW implements edu.Engine.
func (e *DS5240) NeedsRMW(writeBytes int) bool { return writeBytes < des.BlockSize }

// VLSI is the Figure 4 engine: "data transfers to and from the external
// memory are done page-by-page. All CPU external requests are managed by
// a secure DMA unit and communications between external and internal
// memory use an encryption / decryption core." The page buffer holds
// deciphered pages in internal memory; a line fill from a resident page
// is free of deciphering cost, while first touch of a page pays the full
// page decipherment. "This technique is viable provided that the OS is
// trusted" — the model takes that trust as given.
type VLSI struct {
	c        *modes.ECB
	pageBits uint
	capacity int
	timing   edu.PipelineTiming
	resident map[uint64]uint64 // page base -> last-use tick
	tick     uint64
	// Stats
	PageHits, PageFaults uint64
}

// NewVLSI builds the engine: a DES core, pageSize bytes per DMA page
// (power of two), and capacity pages of internal memory.
func NewVLSI(key []byte, pageSize, capacity int) (*VLSI, error) {
	c, err := des.New(key)
	if err != nil {
		return nil, fmt.Errorf("products: vlsi: %w", err)
	}
	if pageSize <= 0 || pageSize&(pageSize-1) != 0 {
		return nil, fmt.Errorf("products: vlsi: page size %d not a power of two", pageSize)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("products: vlsi: non-positive capacity")
	}
	bits := uint(0)
	for 1<<bits < pageSize {
		bits++
	}
	return &VLSI{
		c:        modes.NewECB(c),
		pageBits: bits,
		capacity: capacity,
		timing:   edu.PipelineTiming{Latency: des.Rounds, II: des.Rounds},
		resident: make(map[uint64]uint64),
	}, nil
}

// Name implements edu.Engine.
func (v *VLSI) Name() string { return "vlsi-secure-dma" }

// Placement implements edu.Engine.
func (v *VLSI) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine: inside the SoC the page buffer is
// byte-addressable, so CPU-visible writes never RMW.
func (v *VLSI) BlockBytes() int { return 1 }

// Gates implements edu.Engine (core + DMA; internal page RAM excluded,
// it replaces equivalent on-chip memory).
func (v *VLSI) Gates() int { return VLSIGates }

// PageSize returns the DMA transfer granule in bytes.
func (v *VLSI) PageSize() int { return 1 << v.pageBits }

// EncryptLine implements edu.Engine.
func (v *VLSI) EncryptLine(_ uint64, dst, src []byte) { v.c.Encrypt(dst, src) }

// DecryptLine implements edu.Engine.
func (v *VLSI) DecryptLine(_ uint64, dst, src []byte) { v.c.Decrypt(dst, src) }

// PerAccessCycles implements edu.Engine.
func (v *VLSI) PerAccessCycles() uint64 { return 0 }

// PageFaultSetupCycles is the DMA descriptor/setup cost charged to the
// access that faults a page in.
const PageFaultSetupCycles = 32

// ReadExtraCycles implements edu.Engine: page-resident fills cost
// nothing extra. On a page fault the secure DMA unit serves the
// requested line first (deciphering just its blocks through the core)
// and streams the rest of the page in the background, so the faulting
// access pays DMA setup plus one line's decipherment, not the whole
// page. Background contention is not modeled; the trust assumption (the
// OS programs the DMA) is the patent's own.
func (v *VLSI) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	page := addr >> v.pageBits
	v.tick++
	if _, ok := v.resident[page]; ok {
		v.resident[page] = v.tick //repro:allow LRU touch stores to an existing key; no growth on the hit path
		v.PageHits++
		return 0
	}
	v.PageFaults++
	if len(v.resident) >= v.capacity {
		// Evict the least recently used page.
		var victim uint64
		var oldest uint64 = ^uint64(0)
		//repro:allow ticks are unique per access, so the min-tick victim is iteration-order independent
		for p, t := range v.resident {
			if t < oldest {
				oldest, victim = t, p
			}
		}
		delete(v.resident, victim)
	}
	v.resident[page] = v.tick //repro:allow demand paging; eviction above bounds the table, faults are off the steady-state path
	lineBlocks := (lineBytes + des.BlockSize - 1) / des.BlockSize
	return uint64(PageFaultSetupCycles + lineBlocks*v.timing.Latency)
}

// WriteExtraCycles implements edu.Engine: writes land in the internal
// page buffer; the DMA unit re-enciphers pages in the background.
func (v *VLSI) WriteExtraCycles(uint64, int) uint64 { return 0 }

// NeedsRMW implements edu.Engine.
func (v *VLSI) NeedsRMW(int) bool { return false }

// PageFaultRate reports faults / (hits + faults).
func (v *VLSI) PageFaultRate() float64 {
	d := v.PageHits + v.PageFaults
	if d == 0 {
		return 0
	}
	return float64(v.PageFaults) / float64(d)
}
