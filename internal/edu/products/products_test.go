package products

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
)

// roundtripLine checks EncryptLine/DecryptLine inversion across
// addresses for any engine.
func roundtripLine(t *testing.T, e edu.Engine, lineSize int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		addr := uint64(rng.Intn(1<<16)) &^ uint64(lineSize-1)
		line := make([]byte, lineSize)
		rng.Read(line)
		ct := make([]byte, lineSize)
		e.EncryptLine(addr, ct, line)
		if bytes.Equal(ct, line) {
			t.Fatalf("%s: line not transformed", e.Name())
		}
		back := make([]byte, lineSize)
		e.DecryptLine(addr, back, ct)
		if !bytes.Equal(back, line) {
			t.Fatalf("%s: roundtrip failed at %#x", e.Name(), addr)
		}
	}
}

func TestAllEnginesRoundtripAndIdentity(t *testing.T) {
	xom, err := XOM(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	aegis, err := AEGIS(make([]byte, 16), modes.IVCounter, 1)
	if err != nil {
		t.Fatal(err)
	}
	gi, err := NewGeneralInstrument(make([]byte, 24), make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	best, err := NewBest(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	d2, err := NewDS5002(make([]byte, 8))
	if err != nil {
		t.Fatal(err)
	}
	d4, err := NewDS5240(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	vlsi, err := NewVLSI(make([]byte, 8), 4096, 4)
	if err != nil {
		t.Fatal(err)
	}

	engines := []edu.Engine{xom, aegis, gi, best, d2, d4, vlsi}
	seenGates := map[int]bool{}
	for _, e := range engines {
		roundtripLine(t, e, 32)
		if e.Name() == "" {
			t.Error("engine with empty name")
		}
		if e.Placement() != edu.PlacementCacheMem {
			t.Errorf("%s: unexpected placement %v", e.Name(), e.Placement())
		}
		if e.Gates() <= 0 {
			t.Errorf("%s: no area estimate", e.Name())
		}
		seenGates[e.Gates()] = true
	}
	if len(seenGates) < 5 {
		t.Error("gate estimates suspiciously uniform")
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := XOM(make([]byte, 5)); err == nil {
		t.Error("XOM bad key accepted")
	}
	if _, err := AEGIS(make([]byte, 5), modes.IVCounter, 0); err == nil {
		t.Error("AEGIS bad key accepted")
	}
	if _, err := NewGeneralInstrument(make([]byte, 5), make([]byte, 8)); err == nil {
		t.Error("GI bad DES key accepted")
	}
	if _, err := NewGeneralInstrument(make([]byte, 24), make([]byte, 5)); err == nil {
		t.Error("GI bad MAC key accepted")
	}
	if _, err := NewBest(make([]byte, 5)); err == nil {
		t.Error("Best bad key accepted")
	}
	if _, err := NewDS5002(make([]byte, 5)); err == nil {
		t.Error("DS5002 bad key accepted")
	}
	if _, err := NewDS5240(make([]byte, 5)); err == nil {
		t.Error("DS5240 bad key accepted")
	}
	if _, err := NewVLSI(make([]byte, 8), 1000, 4); err == nil {
		t.Error("VLSI non-pow2 page accepted")
	}
	if _, err := NewVLSI(make([]byte, 8), 4096, 0); err == nil {
		t.Error("VLSI zero capacity accepted")
	}
}

func TestAegisQuotedParameters(t *testing.T) {
	e, _ := AEGIS(make([]byte, 16), modes.IVCounter, 1)
	if e.Gates() != 300_000 {
		t.Errorf("AEGIS gates = %d, want the survey's 300,000", e.Gates())
	}
}

// XOM's quoted numbers: 14-cycle latency. A single-block read on an
// instantaneous bus shows exactly the pipeline fill.
func TestXomQuotedLatency(t *testing.T) {
	e, _ := XOM(make([]byte, 16))
	if got := e.ReadExtraCycles(0, 16, 0); got != 14 {
		t.Errorf("XOM single-block latency = %d, want 14", got)
	}
	// Critical-word-first: a long line costs no more than one pipeline
	// fill on the read path (throughput 1/cycle absorbs the rest; the
	// full-drain behaviour is exercised by PipelineTiming's own tests).
	if got := e.ReadExtraCycles(0, 64*16, 0); got != 14 {
		t.Errorf("XOM long-line read = %d, want 14", got)
	}
	// The write path does drain the pipeline: 14 + 63 for 64 blocks.
	if got := e.WriteExtraCycles(0, 64*16); got != 14+63 {
		t.Errorf("XOM burst write = %d, want 77", got)
	}
}

func TestGIChainRestartPenalty(t *testing.T) {
	g, _ := NewGeneralInstrument(make([]byte, 24), make([]byte, 8))
	const line = 32
	transfer := uint64(20)
	first := g.ReadExtraCycles(0x0000, line, transfer) // random (cold)
	seq := g.ReadExtraCycles(0x0020, line, transfer)   // sequential
	jump := g.ReadExtraCycles(0x8000, line, transfer)  // random
	if seq >= first || seq >= jump {
		t.Errorf("sequential (%d) should beat random (%d/%d)", seq, first, jump)
	}
	if g.SequentialFills != 1 || g.RandomFills != 2 {
		t.Errorf("fill classification wrong: %d/%d", g.SequentialFills, g.RandomFills)
	}
	// Writes pay CBC + MAC serialization.
	if g.WriteExtraCycles(0, line) != 2*4*48 {
		t.Errorf("GI write cost = %d", g.WriteExtraCycles(0, line))
	}
	if !g.NeedsRMW(4) || g.NeedsRMW(8) {
		t.Error("GI RMW predicate wrong")
	}
}

func TestGIMAC(t *testing.T) {
	g, _ := NewGeneralInstrument(make([]byte, 24), make([]byte, 8))
	line := []byte("a line of external memory bytes!")
	tag := g.MAC(line)
	if !g.VerifyMAC(line, tag) {
		t.Error("valid MAC rejected")
	}
	mod := append([]byte{}, line...)
	mod[3] ^= 1
	if g.VerifyMAC(mod, tag) {
		t.Error("tampered line accepted — the keyed hash must catch it")
	}
}

func TestDS5002ByteGranularity(t *testing.T) {
	e, _ := NewDS5002(make([]byte, 8))
	if e.BlockBytes() != 1 || e.NeedsRMW(1) {
		t.Error("DS5002 must be byte-granular")
	}
	if e.ReadExtraCycles(0, 32, 20) != 1 || e.WriteExtraCycles(0, 32) != 1 {
		t.Error("DS5002 combinational costs wrong")
	}
	if e.Inner() == nil {
		t.Error("Inner() must expose the part for the attack harness")
	}
}

func TestDS5240IterativeCost(t *testing.T) {
	des1, _ := NewDS5240(make([]byte, 8))  // single DES: 16 rounds
	tdes, _ := NewDS5240(make([]byte, 24)) // 3-DES: 48 rounds
	a := des1.ReadExtraCycles(0, 32, 20)
	b := tdes.ReadExtraCycles(0, 32, 20)
	if b <= a {
		t.Errorf("3-DES (%d) should cost more than DES (%d)", b, a)
	}
	if des1.WriteExtraCycles(0, 32) != 4*16 || tdes.WriteExtraCycles(0, 32) != 4*48 {
		t.Error("DS5240 write costs wrong")
	}
	if !tdes.NeedsRMW(4) || tdes.NeedsRMW(8) {
		t.Error("DS5240 RMW predicate wrong")
	}
}

// VLSI: page-resident fills are free, page faults pay the page
// decipherment, and the LRU page buffer works.
func TestVLSIPageBuffer(t *testing.T) {
	v, _ := NewVLSI(make([]byte, 8), 4096, 2)
	if v.PageSize() != 4096 {
		t.Errorf("page size %d", v.PageSize())
	}
	fault := v.ReadExtraCycles(0x0000, 32, 20)
	if fault == 0 {
		t.Error("first touch should fault")
	}
	hit := v.ReadExtraCycles(0x0040, 32, 20) // same page
	if hit != 0 {
		t.Errorf("resident page fill cost %d, want 0", hit)
	}
	v.ReadExtraCycles(0x1000, 32, 20) // page 1 (fault)
	v.ReadExtraCycles(0x2000, 32, 20) // page 2 (fault, evicts page 0: LRU)
	if got := v.ReadExtraCycles(0x0000, 32, 20); got == 0 {
		t.Error("evicted page should fault again")
	}
	if v.PageFaults != 4 || v.PageHits != 1 {
		t.Errorf("fault accounting: faults=%d hits=%d", v.PageFaults, v.PageHits)
	}
	if v.PageFaultRate() != 0.8 {
		t.Errorf("fault rate %v", v.PageFaultRate())
	}
	if v.WriteExtraCycles(0, 32) != 0 || v.NeedsRMW(1) {
		t.Error("VLSI internal-buffer writes should be free of RMW")
	}
}

func TestBestEngineCosts(t *testing.T) {
	b, _ := NewBest(make([]byte, 8))
	if b.ReadExtraCycles(0, 32, 20) != 2 || b.WriteExtraCycles(0, 32) != 2 {
		t.Error("Best timing wrong")
	}
	if !b.NeedsRMW(4) || b.NeedsRMW(8) {
		t.Error("Best RMW predicate wrong")
	}
	if b.BlockBytes() != 8 {
		t.Error("Best granule wrong")
	}
}
