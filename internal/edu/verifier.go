// The memory-authentication side of the EDU: the survey's closing
// future-work item asks for integrity against modification of fetched
// instructions, and the AEGIS direction answers it with hash trees over
// protected DRAM. Verifier is the seam that keeps the two concerns
// orthogonal: any confidentiality Engine composes with any
// authenticator, because the SoC drives them independently on the same
// miss/writeback traffic.

package edu

// Verifier authenticates the lines crossing the chip boundary. The SoC
// calls VerifyRead on every inbound line (fill, non-resident
// write-through recovery, debug reads) and UpdateWrite on every
// outbound line (writeback, write-through, image install), passing the
// ciphertext exactly as it appears on the probed bus — authentication
// covers what the adversary can touch, not the plaintext.
//
// Implementations are stateful (tag stores, counters, node caches) and
// single-goroutine, like engines. The returned stall is the
// authenticator-side cycle cost of the operation; it depends on
// internal cache state, so the SoC charges it at call time rather than
// recomputing it.
type Verifier interface {
	// Name identifies the authenticator in reports.
	Name() string
	// Gates estimates the ON-CHIP silicon cost in gate equivalents:
	// datapath plus whatever SRAM the scheme holds inside the trust
	// boundary (counter tables, node caches, the tree root). External
	// tag/tree storage is intentionally excluded — it is untrusted
	// DRAM. SRAM is charged at SRAMGatesPerByte; see the constant.
	Gates() int
	// VerifyRead authenticates the inbound ciphertext line at the
	// line-aligned addr. ok=false is a detected tamper: the SoC
	// responds fail-stop (zeroes the line, counts the violation,
	// charges Config.ViolationCycles).
	VerifyRead(addr uint64, ct []byte) (stall uint64, ok bool)
	// UpdateWrite absorbs an outbound ciphertext line at the
	// line-aligned addr: recompute its tag, bump freshness state, and
	// propagate through whatever structure the scheme maintains.
	UpdateWrite(addr uint64, ct []byte) (stall uint64)
}

// SRAMGatesPerByte is the accounting rule every authenticator's Gates
// figure uses for on-chip SRAM: ~12 gate equivalents per byte (6T
// bitcells plus decode/sense amortized). The flat freshness counter
// table of edu/integrity, the node caches of sim/authtree, and any
// future on-chip store all charge area through this one constant, so
// the gate columns of E17 and E20 are directly comparable.
const SRAMGatesPerByte = 12

// GHASHUnitGates approximates a pipelined GF(2^128) multiply-
// accumulate datapath — the Carter–Wegman tag unit of the tree
// authenticators. Substantially smaller than a full SHA-256 datapath
// (integrity.MACUnitGates), which is the point of universal hashing on
// the miss path.
const GHASHUnitGates = 14_000
