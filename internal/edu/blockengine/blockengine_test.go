package blockengine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/des"
	"repro/internal/crypto/modes"
	"repro/internal/edu"
)

func aesEngine(t testing.TB, mode Mode, whole bool) *Engine {
	t.Helper()
	c, err := aes.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Cipher: c, Mode: mode,
		Timing:         edu.PipelineTiming{Latency: 14, II: 1},
		Gates:          200000,
		Salt:           7,
		IVMode:         modes.IVCounter,
		WholeLineStall: whole,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil cipher accepted")
	}
	c, _ := aes.New(make([]byte, 16))
	if _, err := New(Config{Cipher: c}); err == nil {
		t.Error("zero timing accepted")
	}
	if _, err := New(Config{Cipher: c, Timing: edu.PipelineTiming{Latency: 1, II: 1}, Mode: Mode(9)}); err == nil {
		t.Error("unknown mode accepted")
	}
}

func TestDefaultNameAndModeString(t *testing.T) {
	c, _ := aes.New(make([]byte, 16))
	e, err := New(Config{Cipher: c, Timing: edu.PipelineTiming{Latency: 1, II: 1}, Mode: LineCBC})
	if err != nil {
		t.Fatal(err)
	}
	if e.Name() != "block-line-CBC" {
		t.Errorf("default name = %q", e.Name())
	}
	if ECB.String() != "ECB" || CTR.String() != "CTR" || Mode(9).String() != "unknown" {
		t.Error("mode strings wrong")
	}
	if e.Mode() != LineCBC {
		t.Error("Mode accessor wrong")
	}
}

func TestRoundtripAllModes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, mode := range []Mode{ECB, LineCBC, CTR} {
		e := aesEngine(t, mode, false)
		for trial := 0; trial < 30; trial++ {
			line := make([]byte, 32)
			rng.Read(line)
			addr := uint64(rng.Intn(1<<20)) &^ 31
			ct := make([]byte, 32)
			e.EncryptLine(addr, ct, line)
			if bytes.Equal(ct, line) {
				t.Errorf("%s: ciphertext equals plaintext", mode)
			}
			back := make([]byte, 32)
			e.DecryptLine(addr, back, ct)
			if !bytes.Equal(back, line) {
				t.Fatalf("%s: roundtrip failed at %#x", mode, addr)
			}
		}
	}
}

// ECB determinism vs LineCBC/CTR address binding — the survey's E4 story
// at engine level.
func TestECBLeaksLineCBCDoesNot(t *testing.T) {
	line := bytes.Repeat([]byte{0x42}, 32)
	ecb := aesEngine(t, ECB, false)
	c1 := make([]byte, 32)
	c2 := make([]byte, 32)
	ecb.EncryptLine(0x1000, c1, line)
	ecb.EncryptLine(0x2000, c2, line)
	if !bytes.Equal(c1, c2) {
		t.Error("ECB should repeat for equal plaintext")
	}
	lcbc := aesEngine(t, LineCBC, false)
	lcbc.EncryptLine(0x1000, c1, line)
	lcbc.EncryptLine(0x2000, c2, line)
	if bytes.Equal(c1, c2) {
		t.Error("LineCBC repeated across addresses")
	}
	ctr := aesEngine(t, CTR, false)
	ctr.EncryptLine(0x1000, c1, line)
	ctr.EncryptLine(0x2000, c2, line)
	if bytes.Equal(c1, c2) {
		t.Error("CTR repeated across addresses")
	}
}

func TestBlockBytesAndRMW(t *testing.T) {
	ecb := aesEngine(t, ECB, false)
	if ecb.BlockBytes() != 16 {
		t.Errorf("ECB granule = %d", ecb.BlockBytes())
	}
	if !ecb.NeedsRMW(4) || ecb.NeedsRMW(16) {
		t.Error("ECB RMW predicate wrong")
	}
	ctr := aesEngine(t, CTR, false)
	if ctr.BlockBytes() != 1 {
		t.Errorf("CTR granule = %d", ctr.BlockBytes())
	}
	if ctr.NeedsRMW(1) {
		t.Error("CTR should never RMW")
	}
}

// CTR overlaps the pad with the fetch: fast transfer exposes pad time,
// slow transfer hides it completely.
func TestCTROverlap(t *testing.T) {
	e := aesEngine(t, CTR, false)
	// 32-byte line = 2 AES blocks; pad pipeline = 14 + 1 = 15 cycles.
	if got := e.ReadExtraCycles(0, 32, 100); got != 1 {
		t.Errorf("slow bus: extra = %d, want 1 (fully hidden)", got)
	}
	if got := e.ReadExtraCycles(0, 32, 5); got != 15-5+1 {
		t.Errorf("fast bus: extra = %d, want %d", got, 15-5+1)
	}
	if got := e.WriteExtraCycles(0, 32); got != 1 {
		t.Errorf("CTR write extra = %d, want 1", got)
	}
}

// Whole-line stall (AEGIS) must cost at least as much as
// critical-word-first (ECB-style forwarding).
func TestWholeLineStallCostsMore(t *testing.T) {
	cwf := aesEngine(t, LineCBC, false)
	whole := aesEngine(t, LineCBC, true)
	transfer := uint64(20)
	a := cwf.ReadExtraCycles(0, 64, transfer)
	b := whole.ReadExtraCycles(0, 64, transfer)
	if b < a {
		t.Errorf("whole-line (%d) cheaper than critical-word-first (%d)", b, a)
	}
}

// CBC encryption is serial: write cost scales with block count at full
// latency each.
func TestLineCBCSerialWrites(t *testing.T) {
	e := aesEngine(t, LineCBC, false)
	w32 := e.WriteExtraCycles(0, 32) // 2 blocks
	w64 := e.WriteExtraCycles(0, 64) // 4 blocks
	if w32 != 2*14 || w64 != 4*14 {
		t.Errorf("serial CBC writes: got %d/%d, want 28/56", w32, w64)
	}
	// ECB pipelines: much cheaper for the same line.
	ecb := aesEngine(t, ECB, false)
	if ecb.WriteExtraCycles(0, 64) >= w64 {
		t.Error("ECB writes should be cheaper than serial CBC")
	}
}

func TestWithDESCore(t *testing.T) {
	c, err := des.NewTriple(make([]byte, 24))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Cipher: c, Mode: ECB,
		Timing: edu.PipelineTiming{Latency: 48, II: 48},
	})
	if err != nil {
		t.Fatal(err)
	}
	line := make([]byte, 32)
	rand.New(rand.NewSource(2)).Read(line)
	ct := make([]byte, 32)
	e.EncryptLine(0, ct, line)
	back := make([]byte, 32)
	e.DecryptLine(0, back, ct)
	if !bytes.Equal(back, line) {
		t.Error("3-DES engine roundtrip failed")
	}
	if e.BlockBytes() != 8 {
		t.Errorf("granule = %d, want 8", e.BlockBytes())
	}
}

func TestPlacementAndGates(t *testing.T) {
	e := aesEngine(t, ECB, false)
	if e.Placement() != edu.PlacementCacheMem {
		t.Error("placement wrong")
	}
	if e.Gates() != 200000 {
		t.Error("gates wrong")
	}
	if e.PerAccessCycles() != 0 {
		t.Error("per-access cycles nonzero")
	}
}
