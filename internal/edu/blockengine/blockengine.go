// Package blockengine implements the generic block-cipher EDU of the
// survey's Figure 2b/2c: any block cipher, in one of three operating
// modes, with a hardware timing model given as a pipeline descriptor.
//
// The three modes span the survey's design space:
//
//   - ECB: simplest and random-access friendly, but deterministic
//     ("a same data will be ciphered to the same value; which is the
//     main security weakness of that mode").
//   - LineCBC: the AEGIS-style compromise — CBC chained within one cache
//     line with an address-derived IV, so lines stay independently
//     addressable while identical plaintexts differ.
//   - CTR: the block cipher driven as a keystream generator from the bus
//     address; the pad is computable before the data arrives, giving the
//     stream cipher's latency-hiding with a block cipher's core.
package blockengine

import (
	"fmt"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
)

// Mode selects the operating mode.
type Mode int

const (
	// ECB enciphers each cipher block independently.
	ECB Mode = iota
	// LineCBC chains blocks within one line, IV bound to the address.
	LineCBC
	// CTR XORs data with an address-indexed pad.
	CTR
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ECB:
		return "ECB"
	case LineCBC:
		return "line-CBC"
	case CTR:
		return "CTR"
	default:
		return "unknown"
	}
}

// Config assembles a block engine.
type Config struct {
	// Name labels the engine in reports.
	Name string
	// Cipher is the block cipher core.
	Cipher modes.Block
	// Mode is the operating mode.
	Mode Mode
	// Timing describes the hardware core (latency / initiation interval).
	Timing edu.PipelineTiming
	// Gates is the area estimate for the survey table.
	Gates int
	// Salt keys the address-derived IVs (LineCBC) or the CTR nonce.
	Salt uint64
	// IVMode selects random-vector vs counter IVs for LineCBC.
	IVMode modes.IVMode
	// WholeLineStall, when true, forbids critical-word-first forwarding:
	// "the fetch instruction cannot be provided to the processor until an
	// entire cache block is deciphered" (the AEGIS behaviour). When
	// false, the CPU resumes after the first granule's pipeline fill.
	WholeLineStall bool
}

// Engine is a configured block-cipher EDU.
type Engine struct {
	cfg  Config
	ecb  *modes.ECB
	lcbc *modes.BlockCBC
	ctr  *modes.CTR
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Cipher == nil {
		return nil, fmt.Errorf("blockengine: nil cipher")
	}
	if cfg.Timing.Latency <= 0 || cfg.Timing.II <= 0 {
		return nil, fmt.Errorf("blockengine: bad timing %+v", cfg.Timing)
	}
	if cfg.Name == "" {
		cfg.Name = fmt.Sprintf("block-%s", cfg.Mode)
	}
	e := &Engine{cfg: cfg}
	switch cfg.Mode {
	case ECB:
		e.ecb = modes.NewECB(cfg.Cipher)
	case LineCBC:
		e.lcbc = modes.NewBlockCBC(cfg.Cipher, cfg.IVMode, cfg.Salt)
	case CTR:
		e.ctr = modes.NewCTR(cfg.Cipher, cfg.Salt)
	default:
		return nil, fmt.Errorf("blockengine: unknown mode %d", cfg.Mode)
	}
	return e, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string { return e.cfg.Name }

// Placement implements edu.Engine: block engines sit between cache and
// memory controller, like every surveyed product.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine. CTR mode is byte-granular on writes
// (the pad XOR needs no enclosing block), so it reports 1.
func (e *Engine) BlockBytes() int {
	if e.cfg.Mode == CTR {
		return 1
	}
	return e.cfg.Cipher.BlockSize()
}

// Gates implements edu.Engine.
func (e *Engine) Gates() int { return e.cfg.Gates }

// cipherBlocks is the granule count for a line of n bytes.
func (e *Engine) cipherBlocks(n int) int {
	bs := e.cfg.Cipher.BlockSize()
	return (n + bs - 1) / bs
}

// EncryptLine implements edu.Engine.
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) {
	switch e.cfg.Mode {
	case ECB:
		e.ecb.Encrypt(dst, src)
	case LineCBC:
		e.lcbc.EncryptBlockAt(addr, dst, src)
	case CTR:
		e.ctr.XOR(dst, src, addr/uint64(e.cfg.Cipher.BlockSize()))
	}
}

// DecryptLine implements edu.Engine.
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) {
	switch e.cfg.Mode {
	case ECB:
		e.ecb.Decrypt(dst, src)
	case LineCBC:
		e.lcbc.DecryptBlockAt(addr, dst, src)
	case CTR:
		e.ctr.XOR(dst, src, addr/uint64(e.cfg.Cipher.BlockSize()))
	}
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return 0 }

// ReadExtraCycles implements edu.Engine.
func (e *Engine) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	blocks := e.cipherBlocks(lineBytes)
	switch e.cfg.Mode {
	case CTR:
		// The pad is a pure function of the address, so its generation
		// overlaps the external fetch; only the shortfall (if the pad
		// pipeline is slower than the bus) plus the XOR shows.
		padCycles := uint64(e.cfg.Timing.Latency + (blocks-1)*e.cfg.Timing.II)
		if padCycles > transferCycles {
			return padCycles - transferCycles + 1
		}
		return 1
	default:
		if e.cfg.WholeLineStall {
			// CPU waits for the last block to clear the pipeline.
			return e.cfg.Timing.ExtraCycles(blocks, transferCycles)
		}
		// Critical-word-first: the CPU resumes once the first granule is
		// through the pipeline; the rest decipher in its shadow.
		return uint64(e.cfg.Timing.Latency)
	}
}

// WriteExtraCycles implements edu.Engine.
func (e *Engine) WriteExtraCycles(addr uint64, lineBytes int) uint64 {
	blocks := e.cipherBlocks(lineBytes)
	switch e.cfg.Mode {
	case CTR:
		return 1 // pad precomputed; XOR only
	case LineCBC:
		// CBC ENCRYPTION is inherently serial: block i needs ciphertext
		// i-1, so the pipeline degenerates to latency per block. This is
		// the write-path price of chaining the survey keeps stressing.
		return uint64(blocks * e.cfg.Timing.Latency)
	default: // ECB pipelines freely: fill once, then one block per II.
		return uint64(e.cfg.Timing.Latency + (blocks-1)*e.cfg.Timing.II)
	}
}

// NeedsRMW implements edu.Engine: any write smaller than the cipher
// block forces read-decipher-modify-recipher-write; CTR never does.
func (e *Engine) NeedsRMW(writeBytes int) bool {
	if e.cfg.Mode == CTR {
		return false
	}
	return writeBytes < e.cfg.Cipher.BlockSize()
}

// Mode returns the configured mode (used by reports and ablations).
func (e *Engine) Mode() Mode { return e.cfg.Mode }
