package streamengine

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/stream"
	"repro/internal/edu"
)

func newEngine(t testing.TB, rate int) *Engine {
	t.Helper()
	pads := stream.NewPadSource(stream.NewGeffe(0), 0xfeed, 32)
	e, err := New(Config{Pads: pads, KeystreamCyclesPerByte: rate, Gates: 6000})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil pads accepted")
	}
	pads := stream.NewPadSource(stream.NewLFSR(0), 1, 32)
	if _, err := New(Config{Pads: pads, KeystreamCyclesPerByte: 0}); err == nil {
		t.Error("zero rate accepted")
	}
}

func TestIdentityAndDefaults(t *testing.T) {
	e := newEngine(t, 1)
	if e.Name() != "stream" {
		t.Errorf("default name %q", e.Name())
	}
	if e.Placement() != edu.PlacementCacheMem || e.BlockBytes() != 1 || e.Gates() != 6000 {
		t.Error("engine identity wrong")
	}
	if e.NeedsRMW(1) {
		t.Error("stream engine should never RMW")
	}
	if e.PerAccessCycles() != 0 {
		t.Error("per-access cycles nonzero")
	}
}

func TestRoundtripAndAddressBinding(t *testing.T) {
	e := newEngine(t, 1)
	rng := rand.New(rand.NewSource(1))
	line := make([]byte, 32)
	rng.Read(line)
	c1 := make([]byte, 32)
	c2 := make([]byte, 32)
	e.EncryptLine(0x1000, c1, line)
	e.EncryptLine(0x2000, c2, line)
	if bytes.Equal(c1, c2) {
		t.Error("pads identical across lines")
	}
	back := make([]byte, 32)
	e.DecryptLine(0x1000, back, c1)
	if !bytes.Equal(back, line) {
		t.Error("roundtrip failed")
	}
}

func TestMultiLineTransform(t *testing.T) {
	e := newEngine(t, 1)
	data := make([]byte, 96) // three pad lines
	rand.New(rand.NewSource(2)).Read(data)
	ct := make([]byte, 96)
	e.EncryptLine(0x4000, ct, data)
	back := make([]byte, 96)
	e.DecryptLine(0x4000, back, ct)
	if !bytes.Equal(back, data) {
		t.Error("multi-line roundtrip failed")
	}
	// Each 32-byte segment must match the single-line transform at its
	// own address (random access property).
	seg := make([]byte, 32)
	e.DecryptLine(0x4020, seg, ct[32:64])
	if !bytes.Equal(seg, data[32:64]) {
		t.Error("middle line not independently decryptable")
	}
}

// The §2.2 claim: keystream generation parallelised with the fetch. A
// generator that keeps pace (rate ≤ transfer/line) costs only the XOR.
func TestOverlapTiming(t *testing.T) {
	fast := newEngine(t, 1) // 32 cycles per 32-byte line
	if got := fast.ReadExtraCycles(0, 32, 40); got != 1 {
		t.Errorf("keeping-pace generator: extra = %d, want 1", got)
	}
	// A slow generator (4 cycles/byte = 128 > 40) exposes the shortfall.
	slow := newEngine(t, 4)
	if got := slow.ReadExtraCycles(0, 32, 40); got != 128-40+1 {
		t.Errorf("slow generator: extra = %d, want %d", got, 128-40+1)
	}
	if got := fast.WriteExtraCycles(0, 32); got != 1 {
		t.Errorf("write extra = %d, want 1", got)
	}
}
