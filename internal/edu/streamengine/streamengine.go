// Package streamengine implements the stream-cipher EDU of the survey's
// Figure 2a placed between cache and memory controller: a keystream
// generator seeded by the secret key and the line address, plus an XOR
// gate on the data path.
//
// Its defining timing property, argued in §2.2: "stream cipher seems to
// be more suitable in term of performance: the key stream generation can
// be parallelised with external data fetch. The shortcoming of block
// cipher cryptosystems is that deciphering cannot start until a complete
// block has been received." The engine therefore charges only the
// shortfall between keystream-generation time and the memory fetch it
// overlaps, plus one cycle for the XOR.
package streamengine

import (
	"fmt"

	"repro/internal/crypto/stream"
	"repro/internal/edu"
)

// Config assembles a stream engine.
type Config struct {
	// Name labels the engine in reports.
	Name string
	// Pads supplies address-indexed keystream pads.
	Pads *stream.PadSource
	// KeystreamCyclesPerByte is the generator's production rate in CPU
	// cycles per keystream byte (an LFSR bank emitting 8 bits/cycle ≈ 1;
	// a slow generator > 1 starts eating into the overlap).
	KeystreamCyclesPerByte int
	// Gates is the area estimate.
	Gates int
}

// Engine is a configured stream EDU.
type Engine struct {
	cfg Config
	pad []byte // reusable pad scratch: the line transform must not allocate
}

// New builds the engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Pads == nil {
		return nil, fmt.Errorf("streamengine: nil pad source")
	}
	if cfg.KeystreamCyclesPerByte <= 0 {
		return nil, fmt.Errorf("streamengine: non-positive keystream rate")
	}
	if cfg.Name == "" {
		cfg.Name = "stream"
	}
	return &Engine{cfg: cfg, pad: make([]byte, cfg.Pads.LineSize())}, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string { return e.cfg.Name }

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return edu.PlacementCacheMem }

// BlockBytes implements edu.Engine: XOR is byte-granular, no RMW ever.
func (e *Engine) BlockBytes() int { return 1 }

// Gates implements edu.Engine.
func (e *Engine) Gates() int { return e.cfg.Gates }

// EncryptLine implements edu.Engine. The pad is line-indexed, so the
// transform is valid for any slice lying within one pad line.
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) { e.xor(addr, dst, src) }

// DecryptLine implements edu.Engine (XOR is its own inverse).
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) { e.xor(addr, dst, src) }

func (e *Engine) xor(addr uint64, dst, src []byte) {
	ls := e.cfg.Pads.LineSize()
	pad := e.pad
	for off := 0; off < len(src); off += ls {
		e.cfg.Pads.Pad(pad, addr+uint64(off))
		n := len(src) - off
		if n > ls {
			n = ls
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pad[i]
		}
	}
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return 0 }

// keystreamCycles is the time to produce a pad for n bytes.
func (e *Engine) keystreamCycles(n int) uint64 {
	return uint64(n * e.cfg.KeystreamCyclesPerByte)
}

// ReadExtraCycles implements edu.Engine: generation starts when the
// address is issued and runs concurrently with the external fetch. The
// survey's §4 constraint — "the time to create the key stream
// corresponding to a cache line must be equal, in the worst case, to an
// external memory data fetch otherwise it again implies important
// performance loss" — is exactly this max(0, ks − fetch) term.
func (e *Engine) ReadExtraCycles(_ uint64, lineBytes int, transferCycles uint64) uint64 {
	ks := e.keystreamCycles(lineBytes)
	if ks > transferCycles {
		return ks - transferCycles + 1
	}
	return 1 // the XOR gate
}

// WriteExtraCycles implements edu.Engine: the pad for an outbound line
// is likewise precomputable; only the XOR shows.
func (e *Engine) WriteExtraCycles(_ uint64, lineBytes int) uint64 { return 1 }

// NeedsRMW implements edu.Engine: never, XOR is byte-addressable.
func (e *Engine) NeedsRMW(int) bool { return false }
