// Package integrity implements the survey's closing future-work item:
// "it might also be relevant to take into account the problem of
// integrity, to thwart attacks based on the modification of the fetched
// instructions" (§5). It wraps any confidentiality engine with a
// per-line authenticator, turning the Figure 2c EDU into an
// authenticated-encryption unit in the style the General Instrument
// patent sketches ("authenticate the data coming from external memory
// thanks to a keyed hash algorithm") and AEGIS develops fully.
//
// Three active attacks define the requirement (see internal/attack's
// Tamper* helpers):
//
//   - spoofing: overwrite external memory with attacker bytes;
//   - splicing (relocation): copy valid ciphertext from address A to B;
//   - replay: restore a stale ciphertext previously valid at the SAME
//     address.
//
// A keyed MAC over (line ‖ address) stops spoofing and splicing. Replay
// additionally needs freshness — a per-line version counter mixed into
// the MAC, checked against an on-chip counter table (the direction that
// leads to AEGIS's integrity trees; the table here is the flat on-chip
// variant, with its area charged honestly).
package integrity

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crypto/keyedhash"
	"repro/internal/edu"
)

// TagBytes is the truncated MAC stored per line (64-bit tags, the
// common hardware choice of the era).
const TagBytes = 8

// Level selects how much of the attack surface is closed.
type Level int

const (
	// MACOnly authenticates line content and address: stops spoofing
	// and splicing; replay of a stale (line, tag) pair still verifies.
	MACOnly Level = iota
	// MACWithFreshness adds per-line version counters: stops replay too.
	MACWithFreshness
)

// String names the level.
func (l Level) String() string {
	if l == MACWithFreshness {
		return "mac+freshness"
	}
	return "mac"
}

// Config assembles an integrity wrapper.
type Config struct {
	// Inner is the confidentiality engine being wrapped (required).
	Inner edu.Engine
	// MACKey keys the HMAC (any length).
	MACKey []byte
	// Level selects MACOnly or MACWithFreshness.
	Level Level
	// MACCycles is the authenticator's pipeline cost per line (it runs
	// concurrently with decryption; only its tail shows). Default 8.
	MACCycles int
	// ProtectedLines bounds the freshness counter table (on-chip SRAM);
	// required for MACWithFreshness.
	ProtectedLines int
}

// Engine is an authenticated bus-encryption unit. The MAC store lives
// with the ciphertext in external memory (tags are themselves covered
// by the address binding); the freshness counters live on-chip.
type Engine struct {
	cfg      Config
	hmac     keyedhash.MAC             // reusable key schedule; zero allocs per tag
	tags     map[uint64][TagBytes]byte // external tag memory (modeled here)
	versions map[uint64]uint64         // on-chip counter table
	// Violations counts failed verifications — the detection events the
	// survey's future work asks for.
	Violations uint64
	// Verified counts successful line verifications.
	Verified uint64
}

// New builds the wrapper.
func New(cfg Config) (*Engine, error) {
	if cfg.Inner == nil {
		return nil, fmt.Errorf("integrity: nil inner engine")
	}
	if len(cfg.MACKey) == 0 {
		return nil, fmt.Errorf("integrity: empty MAC key")
	}
	if cfg.MACCycles == 0 {
		cfg.MACCycles = 8
	}
	if cfg.MACCycles < 0 {
		return nil, fmt.Errorf("integrity: negative MAC cost")
	}
	if cfg.Level == MACWithFreshness && cfg.ProtectedLines <= 0 {
		return nil, fmt.Errorf("integrity: freshness requires a positive ProtectedLines bound")
	}
	e := &Engine{
		cfg:      cfg,
		tags:     make(map[uint64][TagBytes]byte),
		versions: make(map[uint64]uint64),
	}
	e.hmac.Init(cfg.MACKey)
	return e, nil
}

// Name implements edu.Engine.
func (e *Engine) Name() string {
	return e.cfg.Inner.Name() + "+" + e.cfg.Level.String() //repro:allow name formatting runs once per report, never per reference
}

// Placement implements edu.Engine.
func (e *Engine) Placement() edu.Placement { return e.cfg.Inner.Placement() }

// BlockBytes implements edu.Engine.
func (e *Engine) BlockBytes() int { return e.cfg.Inner.BlockBytes() }

// CounterBytes is the per-line freshness counter width in the on-chip
// table.
const CounterBytes = 8

// counterTableGates is the on-chip SRAM cost of the freshness table:
// CounterBytes per protected line, charged through the shared
// edu.SRAMGatesPerByte accounting rule — the same rule the sim/authtree
// verifiers use for their node caches, so the E17 and E20 gate/area
// columns are directly comparable.
func (e *Engine) counterTableGates() int {
	if e.cfg.Level != MACWithFreshness {
		return 0
	}
	return e.cfg.ProtectedLines * CounterBytes * edu.SRAMGatesPerByte
}

// MACUnitGates approximates the keyed-hash datapath.
const MACUnitGates = 25_000

// Gates implements edu.Engine: inner engine + MAC datapath + counter
// table. The counter table is the scaling problem that motivates
// AEGIS's tree (its cost grows with protected memory, not with cache).
func (e *Engine) Gates() int {
	return e.cfg.Inner.Gates() + MACUnitGates + e.counterTableGates()
}

// mac computes the truncated authenticator over (addr ‖ version ‖ line)
// by streaming the header and line through the engine's reusable HMAC
// state: no per-call message buffer, no per-call key schedule.
//
//repro:hotpath
func (e *Engine) mac(addr, version uint64, line []byte) [TagBytes]byte {
	var hdr [16]byte
	binary.BigEndian.PutUint64(hdr[0:8], addr)
	binary.BigEndian.PutUint64(hdr[8:16], version)
	e.hmac.Reset()
	e.hmac.Write(hdr[:])
	e.hmac.Write(line)
	full := e.hmac.SumFixed()
	var tag [TagBytes]byte
	copy(tag[:], full[:TagBytes])
	return tag
}

// EncryptLine implements edu.Engine: encrypt through the inner engine
// and deposit a fresh tag (bumping the version under freshness).
func (e *Engine) EncryptLine(addr uint64, dst, src []byte) {
	if e.cfg.Level == MACWithFreshness {
		e.versions[addr]++ //repro:allow sparse counter table; steady-state bumps hit existing keys
	}
	//repro:allow sparse external tag store; steady-state writes hit existing keys
	e.tags[addr] = e.mac(addr, e.versions[addr], src)
	e.cfg.Inner.EncryptLine(addr, dst, src)
}

// DecryptLine implements edu.Engine: decrypt, then verify the line
// against its stored tag and current version. Verification failures are
// counted, and the line is zeroed — the hardware's fail-stop response
// (a real part would raise a security exception).
func (e *Engine) DecryptLine(addr uint64, dst, src []byte) {
	e.cfg.Inner.DecryptLine(addr, dst, src)
	tag, ok := e.tags[addr]
	if !ok {
		// First sight of a never-written line: enroll it, as the boot
		// firmware of a real part would when initializing protected
		// memory. Attacks against enrolled lines are what matter.
		//repro:allow enrollment inserts once per line; steady-state reads never reach here
		e.tags[addr] = e.mac(addr, e.versions[addr], dst)
		e.Verified++
		return
	}
	want := e.mac(addr, e.versions[addr], dst)
	if !keyedhash.Equal(want[:], tag[:]) {
		e.Violations++
		zero(dst)
		return
	}
	e.Verified++
}

func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// TamperTag lets the attack harness overwrite a stored tag (the tag
// memory is external and writable by the adversary).
func (e *Engine) TamperTag(addr uint64, tag [TagBytes]byte) { e.tags[addr] = tag } //repro:allow attack-harness tamper write; per-strike, timing runs never call it

// TagAt returns the stored tag for a line (attacker-readable).
func (e *Engine) TagAt(addr uint64) ([TagBytes]byte, bool) {
	t, ok := e.tags[addr]
	return t, ok
}

// PerAccessCycles implements edu.Engine.
func (e *Engine) PerAccessCycles() uint64 { return e.cfg.Inner.PerAccessCycles() }

// ReadExtraCycles implements edu.Engine: the MAC pipeline runs beside
// the decryptor; its tail is additive (and the tag fetch rides the same
// burst). Freshness adds one on-chip table lookup cycle.
func (e *Engine) ReadExtraCycles(addr uint64, lineBytes int, transferCycles uint64) uint64 {
	cost := e.cfg.Inner.ReadExtraCycles(addr, lineBytes, transferCycles) + uint64(e.cfg.MACCycles)
	if e.cfg.Level == MACWithFreshness {
		cost++
	}
	return cost
}

// WriteExtraCycles implements edu.Engine.
func (e *Engine) WriteExtraCycles(addr uint64, lineBytes int) uint64 {
	cost := e.cfg.Inner.WriteExtraCycles(addr, lineBytes) + uint64(e.cfg.MACCycles)
	if e.cfg.Level == MACWithFreshness {
		cost++
	}
	return cost
}

// NeedsRMW implements edu.Engine: authentication is per line, so any
// partial write must rebuild the whole line's tag — integrity makes the
// §2.2 write problem strictly worse.
func (e *Engine) NeedsRMW(writeBytes int) bool {
	return e.cfg.Inner.NeedsRMW(writeBytes) || writeBytes < TagBytes
}
