package integrity

import (
	"bytes"
	"math/rand"
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/products"
)

func inner(t testing.TB) edu.Engine {
	t.Helper()
	e, err := products.AEGIS(make([]byte, 16), modes.IVCounter, 3)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func newEngine(t testing.TB, level Level) *Engine {
	t.Helper()
	e, err := New(Config{
		Inner: inner(t), MACKey: []byte("integrity-key"),
		Level: level, ProtectedLines: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("nil inner accepted")
	}
	if _, err := New(Config{Inner: inner(t)}); err == nil {
		t.Error("empty MAC key accepted")
	}
	if _, err := New(Config{Inner: inner(t), MACKey: []byte("k"), MACCycles: -1}); err == nil {
		t.Error("negative MAC cost accepted")
	}
	if _, err := New(Config{Inner: inner(t), MACKey: []byte("k"), Level: MACWithFreshness}); err == nil {
		t.Error("freshness without a counter-table bound accepted")
	}
}

func TestIdentity(t *testing.T) {
	e := newEngine(t, MACWithFreshness)
	if e.Name() != "aegis-aes-cbc+mac+freshness" {
		t.Errorf("name %q", e.Name())
	}
	if e.Placement() != edu.PlacementCacheMem || e.BlockBytes() != 16 {
		t.Error("delegation wrong")
	}
	if MACOnly.String() != "mac" || MACWithFreshness.String() != "mac+freshness" {
		t.Error("level names wrong")
	}
}

func TestGatesIncludeCounterTable(t *testing.T) {
	macOnly := newEngine(t, MACOnly)
	fresh := newEngine(t, MACWithFreshness)
	if fresh.Gates() <= macOnly.Gates() {
		t.Error("freshness counter table must cost area")
	}
	if macOnly.Gates() <= 300_000 {
		t.Error("MAC datapath area missing")
	}
}

func TestRoundtripVerifies(t *testing.T) {
	e := newEngine(t, MACWithFreshness)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		addr := uint64(rng.Intn(1<<16)) &^ 31
		line := make([]byte, 32)
		rng.Read(line)
		ct := make([]byte, 32)
		e.EncryptLine(addr, ct, line)
		back := make([]byte, 32)
		e.DecryptLine(addr, back, ct)
		if !bytes.Equal(back, line) {
			t.Fatalf("roundtrip failed at %#x", addr)
		}
	}
	if e.Violations != 0 || e.Verified == 0 {
		t.Errorf("stats: %d violations, %d verified", e.Violations, e.Verified)
	}
}

func TestSpoofedLineFailsStop(t *testing.T) {
	e := newEngine(t, MACOnly)
	line := []byte("genuine firmware line, 32 bytes!")
	ct := make([]byte, 32)
	e.EncryptLine(0x1000, ct, line)

	// The attacker flips a ciphertext bit.
	ct[7] ^= 0x80
	out := make([]byte, 32)
	e.DecryptLine(0x1000, out, ct)
	if !allZeroT(out) {
		t.Error("tampered line was not zeroed")
	}
	if e.Violations != 1 {
		t.Errorf("violations = %d", e.Violations)
	}
}

func TestSplicedLineFailsEvenWithTag(t *testing.T) {
	e := newEngine(t, MACOnly)
	line := []byte("line that lives at address 0x40!")
	ct := make([]byte, 32)
	e.EncryptLine(0x40, ct, line)

	// Relocate ciphertext AND tag to 0x80 (the thorough splice).
	tag, _ := e.TagAt(0x40)
	e.TamperTag(0x80, tag)
	out := make([]byte, 32)
	e.DecryptLine(0x80, out, ct)
	if !allZeroT(out) {
		t.Error("spliced line accepted despite address-bound MAC")
	}
}

// statelessEngine returns an inner engine with no IV state (XOM's ECB
// AES): replayed ciphertext decrypts to the stale plaintext, exposing
// the pure MAC-only replay gap.
func statelessEngine(t testing.TB, level Level) *Engine {
	t.Helper()
	in, err := products.XOM(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(Config{
		Inner: in, MACKey: []byte("integrity-key"),
		Level: level, ProtectedLines: 1 << 16,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestReplayStoppedOnlyByFreshness(t *testing.T) {
	run := func(level Level) (staleAccepted bool) {
		e := statelessEngine(t, level)
		v1 := []byte("account balance: 100 credits    ")
		v2 := []byte("account balance: 000 credits    ")
		ct1 := make([]byte, 32)
		e.EncryptLine(0x200, ct1, v1)
		tag1, _ := e.TagAt(0x200)

		// Legitimate update spends the credits...
		ct2 := make([]byte, 32)
		e.EncryptLine(0x200, ct2, v2)

		// ...and the attacker restores the stale ciphertext + tag.
		e.TamperTag(0x200, tag1)
		out := make([]byte, 32)
		e.DecryptLine(0x200, out, ct1)
		return bytes.Equal(out, v1)
	}
	if !run(MACOnly) {
		t.Error("MAC-only should ACCEPT the replay (that is its gap)")
	}
	if run(MACWithFreshness) {
		t.Error("freshness should reject the replay")
	}
}

// AEGIS's counter IVs give implicit replay resistance even under a
// MAC-only wrapper: the stale ciphertext decrypts with the NEW counter's
// IV and fails the MAC.
func TestCounterIVInnerResistsReplayImplicitly(t *testing.T) {
	e := newEngine(t, MACOnly) // inner = AEGIS with IVCounter
	v1 := []byte("account balance: 100 credits    ")
	v2 := []byte("account balance: 000 credits    ")
	ct1 := make([]byte, 32)
	e.EncryptLine(0x200, ct1, v1)
	tag1, _ := e.TagAt(0x200)
	ct2 := make([]byte, 32)
	e.EncryptLine(0x200, ct2, v2)
	e.TamperTag(0x200, tag1)
	out := make([]byte, 32)
	e.DecryptLine(0x200, out, ct1)
	if bytes.Equal(out, v1) {
		t.Error("replay succeeded despite counter-IV inner engine")
	}
}

func TestTimingAdditive(t *testing.T) {
	in := inner(t)
	e, err := New(Config{Inner: in, MACKey: []byte("k"), MACCycles: 8})
	if err != nil {
		t.Fatal(err)
	}
	base := in.ReadExtraCycles(0, 32, 50)
	if got := e.ReadExtraCycles(0, 32, 50); got != base+8 {
		t.Errorf("read extra %d, want %d", got, base+8)
	}
	fresh := newEngine(t, MACWithFreshness)
	if fresh.ReadExtraCycles(0, 32, 50) != base+8+1 {
		t.Error("freshness lookup cycle missing")
	}
	if e.WriteExtraCycles(0, 32) != in.WriteExtraCycles(0, 32)+8 {
		t.Error("write extra wrong")
	}
}

func TestRMWStricter(t *testing.T) {
	e := newEngine(t, MACOnly)
	// Any write below the tag granule must RMW even if the inner engine
	// would not care.
	if !e.NeedsRMW(4) {
		t.Error("sub-tag write should RMW")
	}
}

func TestFirstSightEnrollment(t *testing.T) {
	e := newEngine(t, MACOnly)
	// Decrypt a line never written through the engine: enrolled, not a
	// violation.
	out := make([]byte, 32)
	e.DecryptLine(0x9000, out, make([]byte, 32))
	if e.Violations != 0 || e.Verified != 1 {
		t.Errorf("enrollment: %d violations %d verified", e.Violations, e.Verified)
	}
	// Tampering after enrollment is caught.
	ct := make([]byte, 32)
	ct[0] = 0xFF
	e.DecryptLine(0x9000, out, ct)
	if e.Violations != 1 {
		t.Error("post-enrollment tamper missed")
	}
}

func allZeroT(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
