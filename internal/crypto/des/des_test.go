package des

import (
	"bytes"
	stddes "crypto/des"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

// Classic published DES vector (and the degenerate all-zero one).
func TestKnownVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"133457799bbcdff1", "0123456789abcdef", "85e813540f0ab405"},
		{"0000000000000000", "0000000000000000", "8ca64de9c1b123a7"},
		{"ffffffffffffffff", "ffffffffffffffff", "7359b2163e4edc58"},
	}
	for _, c := range cases {
		key, _ := hex.DecodeString(c.key)
		pt, _ := hex.DecodeString(c.pt)
		ci, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 8)
		ci.Encrypt(got, pt)
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: got %x, want %s", c.key, got, c.ct)
		}
		back := make([]byte, 8)
		ci.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Errorf("key %s: decrypt roundtrip failed", c.key)
		}
	}
}

func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		key := make([]byte, 8)
		rng.Read(key)
		pt := make([]byte, 8)
		rng.Read(pt)

		ours, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 8)
		ref.Encrypt(want, pt)
		got := make([]byte, 8)
		ours.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("encrypt mismatch key %x pt %x: got %x want %x", key, pt, got, want)
		}
	}
}

func TestTripleAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 100; trial++ {
		key := make([]byte, 24)
		rng.Read(key)
		pt := make([]byte, 8)
		rng.Read(pt)

		ours, err := NewTriple(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stddes.NewTripleDESCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		want := make([]byte, 8)
		ref.Encrypt(want, pt)
		got := make([]byte, 8)
		ours.Encrypt(got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("3des mismatch key %x: got %x want %x", key, got, want)
		}
		back := make([]byte, 8)
		ours.Decrypt(back, got)
		if !bytes.Equal(back, pt) {
			t.Fatal("3des roundtrip failed")
		}
	}
}

// EDE2 with K1==K2==K3 degenerates to single DES; EDE2 (16-byte key)
// reuses K1 as K3.
func TestTripleDegeneratesToSingle(t *testing.T) {
	key := []byte("8bytekey")
	k24 := append(append(append([]byte{}, key...), key...), key...)
	single, _ := New(key)
	triple, _ := NewTriple(k24)
	pt := []byte("survey05")
	a := make([]byte, 8)
	b := make([]byte, 8)
	single.Encrypt(a, pt)
	triple.Encrypt(b, pt)
	if !bytes.Equal(a, b) {
		t.Error("EDE with equal keys does not degenerate to single DES")
	}
}

func TestTripleEDE2(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	k16 := make([]byte, 16)
	rng.Read(k16)
	k24 := append(append([]byte{}, k16...), k16[:8]...)
	a, _ := NewTriple(k16)
	b, _ := NewTriple(k24)
	pt := make([]byte, 8)
	rng.Read(pt)
	ca := make([]byte, 8)
	cb := make([]byte, 8)
	a.Encrypt(ca, pt)
	b.Encrypt(cb, pt)
	if !bytes.Equal(ca, cb) {
		t.Error("EDE2 16-byte key does not equal EDE3 with K3=K1")
	}
}

func TestKeySizeErrors(t *testing.T) {
	if _, err := New(make([]byte, 7)); err == nil {
		t.Error("New(7 bytes): want error")
	}
	if _, err := NewTriple(make([]byte, 8)); err == nil {
		t.Error("NewTriple(8 bytes): want error")
	}
	if KeySizeError(3).Error() == "" {
		t.Error("empty KeySizeError message")
	}
}

func TestRoundAPIMatchesWholeBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	key := make([]byte, 8)
	rng.Read(key)
	ci, _ := New(key)
	for trial := 0; trial < 50; trial++ {
		pt := make([]byte, 8)
		rng.Read(pt)
		want := make([]byte, 8)
		ci.Encrypt(want, pt)

		rs := ci.Begin(pt, false)
		n := 0
		for done := false; !done; {
			done = ci.Round(rs)
			n++
		}
		if n != Rounds {
			t.Fatalf("round API took %d rounds, want %d", n, Rounds)
		}
		got := make([]byte, 8)
		ci.Finish(rs, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("round API mismatch got %x want %x", got, want)
		}

		// And decryption direction.
		rsd := ci.Begin(want, true)
		for !ci.Round(rsd) {
		}
		back := make([]byte, 8)
		ci.Finish(rsd, back)
		if !bytes.Equal(back, pt) {
			t.Fatal("round API decrypt mismatch")
		}
	}
}

func TestFinishEarlyPanics(t *testing.T) {
	ci, _ := New(make([]byte, 8))
	rs := ci.Begin(make([]byte, 8), false)
	defer func() {
		if recover() == nil {
			t.Error("early Finish did not panic")
		}
	}()
	ci.Finish(rs, make([]byte, 8))
}

func TestRoundtripProperty(t *testing.T) {
	ci, _ := New([]byte("propkey!"))
	tri, _ := NewTriple([]byte("propkey!propkey@propkey#"))
	f := func(pt [8]byte) bool {
		ct := make([]byte, 8)
		back := make([]byte, 8)
		ci.Encrypt(ct, pt[:])
		ci.Decrypt(back, ct)
		if !bytes.Equal(back, pt[:]) {
			return false
		}
		tri.Encrypt(ct, pt[:])
		tri.Decrypt(back, ct)
		return bytes.Equal(back, pt[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// DES complementation property: E_k̄(p̄) = Ē_k(p). A classic structural
// invariant; if the tables were mis-transcribed this fails immediately.
func TestComplementationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		key := make([]byte, 8)
		pt := make([]byte, 8)
		rng.Read(key)
		rng.Read(pt)
		nkey := make([]byte, 8)
		npt := make([]byte, 8)
		for i := range key {
			nkey[i] = ^key[i]
			npt[i] = ^pt[i]
		}
		c1, _ := New(key)
		c2, _ := New(nkey)
		a := make([]byte, 8)
		b := make([]byte, 8)
		c1.Encrypt(a, pt)
		c2.Encrypt(b, npt)
		for i := range a {
			if a[i] != ^b[i] {
				t.Fatalf("complementation property violated at byte %d", i)
			}
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	ci, _ := New(make([]byte, 8))
	src := make([]byte, 8)
	dst := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		ci.Encrypt(dst, src)
	}
}

func BenchmarkTripleEncrypt(b *testing.B) {
	ci, _ := NewTriple(make([]byte, 24))
	src := make([]byte, 8)
	dst := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		ci.Encrypt(dst, src)
	}
}
