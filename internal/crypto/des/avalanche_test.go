package des

import (
	"math/rand"
	"testing"
)

// Avalanche property: one plaintext bit flip should change roughly half
// of the 64 ciphertext bits — the diffusion the 16 Feistel rounds exist
// to provide, and a sensitive detector of table transcription errors.
func TestPlaintextAvalanche(t *testing.T) {
	ci, err := New([]byte("aval-key"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	var total, samples int
	for trial := 0; trial < 100; trial++ {
		pt := make([]byte, 8)
		rng.Read(pt)
		base := make([]byte, 8)
		ci.Encrypt(base, pt)
		bit := rng.Intn(64)
		mod := append([]byte{}, pt...)
		mod[bit/8] ^= 1 << uint(bit%8)
		out := make([]byte, 8)
		ci.Encrypt(out, mod)
		total += hammingDES(base, out)
		samples++
	}
	mean := float64(total) / float64(samples)
	if mean < 26 || mean > 38 { // 32 ± 6
		t.Errorf("plaintext avalanche mean %.1f bits, want ~32", mean)
	}
}

// Key avalanche over the 56 effective key bits (parity bits excluded:
// flipping a parity bit must change nothing).
func TestKeyAvalanche(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	var total, samples int
	for trial := 0; trial < 100; trial++ {
		key := make([]byte, 8)
		rng.Read(key)
		pt := make([]byte, 8)
		rng.Read(pt)
		c1, _ := New(key)
		// Flip a non-parity bit (bits 1..7 of each byte in FIPS
		// numbering; parity is the LSB of each byte).
		byteIdx := rng.Intn(8)
		bitIdx := 1 + rng.Intn(7)
		key2 := append([]byte{}, key...)
		key2[byteIdx] ^= 1 << uint(bitIdx)
		c2, _ := New(key2)
		a := make([]byte, 8)
		b := make([]byte, 8)
		c1.Encrypt(a, pt)
		c2.Encrypt(b, pt)
		total += hammingDES(a, b)
		samples++
	}
	mean := float64(total) / float64(samples)
	if mean < 26 || mean > 38 {
		t.Errorf("key avalanche mean %.1f bits, want ~32", mean)
	}
}

// Parity bits are ignored by the key schedule: flipping one changes no
// ciphertext bit.
func TestParityBitsIgnored(t *testing.T) {
	key := []byte("parity!!")
	c1, _ := New(key)
	key2 := append([]byte{}, key...)
	key2[3] ^= 0x01 // LSB = parity position in FIPS byte numbering
	c2, _ := New(key2)
	pt := []byte("testblok")
	a := make([]byte, 8)
	b := make([]byte, 8)
	c1.Encrypt(a, pt)
	c2.Encrypt(b, pt)
	if hammingDES(a, b) != 0 {
		t.Error("parity bit influenced the ciphertext")
	}
}

func hammingDES(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			n += int(x & 1)
			x >>= 1
		}
	}
	return n
}
