// Package des implements the DES and Triple-DES block ciphers (FIPS 46-3)
// from scratch.
//
// DES is the cipher of record for most of the engines the survey covers:
// the General Instrument patent (3-DES in CBC mode), the Dallas DS5240
// ("a true DES or 3-DES block cipher"), and Gilmont's pipelined
// triple-DES. As with the AES package, a per-round API is exposed so the
// hardware pipeline models can map one Feistel round per pipeline stage
// (16 stages for DES, 48 for EDE3 3-DES). Correctness is cross-checked
// against crypto/des in the tests.
package des

import "fmt"

// BlockSize is the DES block size in bytes.
const BlockSize = 8

// Rounds is the number of Feistel rounds in single DES.
const Rounds = 16

// Standard DES tables (FIPS 46-3). Entries are 1-based bit positions as
// printed in the standard; the permute helper converts.
var initialPermutation = [64]byte{
	58, 50, 42, 34, 26, 18, 10, 2,
	60, 52, 44, 36, 28, 20, 12, 4,
	62, 54, 46, 38, 30, 22, 14, 6,
	64, 56, 48, 40, 32, 24, 16, 8,
	57, 49, 41, 33, 25, 17, 9, 1,
	59, 51, 43, 35, 27, 19, 11, 3,
	61, 53, 45, 37, 29, 21, 13, 5,
	63, 55, 47, 39, 31, 23, 15, 7,
}

var finalPermutation = [64]byte{
	40, 8, 48, 16, 56, 24, 64, 32,
	39, 7, 47, 15, 55, 23, 63, 31,
	38, 6, 46, 14, 54, 22, 62, 30,
	37, 5, 45, 13, 53, 21, 61, 29,
	36, 4, 44, 12, 52, 20, 60, 28,
	35, 3, 43, 11, 51, 19, 59, 27,
	34, 2, 42, 10, 50, 18, 58, 26,
	33, 1, 41, 9, 49, 17, 57, 25,
}

var expansion = [48]byte{
	32, 1, 2, 3, 4, 5,
	4, 5, 6, 7, 8, 9,
	8, 9, 10, 11, 12, 13,
	12, 13, 14, 15, 16, 17,
	16, 17, 18, 19, 20, 21,
	20, 21, 22, 23, 24, 25,
	24, 25, 26, 27, 28, 29,
	28, 29, 30, 31, 32, 1,
}

var pPermutation = [32]byte{
	16, 7, 20, 21, 29, 12, 28, 17,
	1, 15, 23, 26, 5, 18, 31, 10,
	2, 8, 24, 14, 32, 27, 3, 9,
	19, 13, 30, 6, 22, 11, 4, 25,
}

var permutedChoice1 = [56]byte{
	57, 49, 41, 33, 25, 17, 9,
	1, 58, 50, 42, 34, 26, 18,
	10, 2, 59, 51, 43, 35, 27,
	19, 11, 3, 60, 52, 44, 36,
	63, 55, 47, 39, 31, 23, 15,
	7, 62, 54, 46, 38, 30, 22,
	14, 6, 61, 53, 45, 37, 29,
	21, 13, 5, 28, 20, 12, 4,
}

var permutedChoice2 = [48]byte{
	14, 17, 11, 24, 1, 5,
	3, 28, 15, 6, 21, 10,
	23, 19, 12, 4, 26, 8,
	16, 7, 27, 20, 13, 2,
	41, 52, 31, 37, 47, 55,
	30, 40, 51, 45, 33, 48,
	44, 49, 39, 56, 34, 53,
	46, 42, 50, 36, 29, 32,
}

var keyShifts = [16]byte{1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1}

// sBoxes[i][row][col] per FIPS 46-3.
var sBoxes = [8][4][16]byte{
	{
		{14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7},
		{0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8},
		{4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0},
		{15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13},
	},
	{
		{15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10},
		{3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5},
		{0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15},
		{13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9},
	},
	{
		{10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8},
		{13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1},
		{13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7},
		{1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12},
	},
	{
		{7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15},
		{13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9},
		{10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4},
		{3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14},
	},
	{
		{2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9},
		{14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6},
		{4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14},
		{11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3},
	},
	{
		{12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11},
		{10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8},
		{9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6},
		{4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13},
	},
	{
		{4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1},
		{13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6},
		{1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2},
		{6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12},
	},
	{
		{13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7},
		{1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2},
		{7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8},
		{2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11},
	},
}

// permute applies a 1-based source-bit table to src, producing a value
// with len(table) bits. Bit 1 of src is its most significant bit of
// width, matching the numbering convention of FIPS 46-3.
func permute(src uint64, width uint, table []byte) uint64 {
	var out uint64
	for _, pos := range table {
		out <<= 1
		out |= (src >> (width - uint(pos))) & 1
	}
	return out
}

// KeySizeError reports an unsupported key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("des: invalid key size %d", int(k))
}

// Cipher is a single-DES instance with its 16 expanded subkeys.
type Cipher struct {
	subkeys [Rounds]uint64 // 48-bit round keys
}

// New expands an 8-byte key (parity bits ignored, as hardware does) into
// a DES instance.
func New(key []byte) (*Cipher, error) {
	if len(key) != 8 {
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{}
	c.expandKey(beUint64(key))
	return c, nil
}

func beUint64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b[i])
	}
	return v
}

func putBeUint64(b []byte, v uint64) {
	for i := 7; i >= 0; i-- {
		b[i] = byte(v)
		v >>= 8
	}
}

func (c *Cipher) expandKey(key uint64) {
	k56 := permute(key, 64, permutedChoice1[:])
	cHalf := uint32(k56 >> 28)
	dHalf := uint32(k56 & 0x0fffffff)
	for r := 0; r < Rounds; r++ {
		s := uint(keyShifts[r])
		cHalf = ((cHalf << s) | (cHalf >> (28 - s))) & 0x0fffffff
		dHalf = ((dHalf << s) | (dHalf >> (28 - s))) & 0x0fffffff
		cd := uint64(cHalf)<<28 | uint64(dHalf)
		c.subkeys[r] = permute(cd, 56, permutedChoice2[:])
	}
}

// BlockSize returns 8.
func (c *Cipher) BlockSize() int { return BlockSize }

// feistel is the DES round function f(R, K).
func feistel(r uint32, subkey uint64) uint32 {
	e := permute(uint64(r), 32, expansion[:]) // 48 bits
	x := e ^ subkey
	var out uint32
	for i := 0; i < 8; i++ {
		six := byte(x >> (uint(7-i) * 6) & 0x3f)
		row := (six&0x20)>>4 | six&1
		col := (six >> 1) & 0x0f
		out = out<<4 | uint32(sBoxes[i][row][col])
	}
	return uint32(permute(uint64(out), 32, pPermutation[:]))
}

// Encrypt encrypts one 8-byte block.
func (c *Cipher) Encrypt(dst, src []byte) { c.crypt(dst, src, false) }

// Decrypt decrypts one 8-byte block.
func (c *Cipher) Decrypt(dst, src []byte) { c.crypt(dst, src, true) }

func (c *Cipher) crypt(dst, src []byte, decrypt bool) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("des: input not full block")
	}
	v := permute(beUint64(src), 64, initialPermutation[:])
	l, r := uint32(v>>32), uint32(v)
	for i := 0; i < Rounds; i++ {
		k := c.subkeys[i]
		if decrypt {
			k = c.subkeys[Rounds-1-i]
		}
		l, r = r, l^feistel(r, k)
	}
	// Swap halves before the final permutation (the "pre-output" R16L16).
	out := permute(uint64(r)<<32|uint64(l), 64, finalPermutation[:])
	putBeUint64(dst, out)
}

// RoundState is an in-flight block within the per-round API, used by the
// pipelined hardware models (one Feistel round per stage).
type RoundState struct {
	l, r    uint32
	round   int
	decrypt bool
}

// Begin starts the round-level processing of one block in the given
// direction, applying the initial permutation (stage 0 of the pipeline).
func (c *Cipher) Begin(src []byte, decrypt bool) *RoundState {
	if len(src) < BlockSize {
		panic("des: input not full block")
	}
	v := permute(beUint64(src), 64, initialPermutation[:])
	return &RoundState{l: uint32(v >> 32), r: uint32(v), decrypt: decrypt}
}

// Round advances rs by one Feistel round, reporting completion.
func (c *Cipher) Round(rs *RoundState) bool {
	if rs.round >= Rounds {
		return true
	}
	k := c.subkeys[rs.round]
	if rs.decrypt {
		k = c.subkeys[Rounds-1-rs.round]
	}
	rs.l, rs.r = rs.r, rs.l^feistel(rs.r, k)
	rs.round++
	return rs.round >= Rounds
}

// Finish writes the completed block to dst; it panics if rounds remain.
func (c *Cipher) Finish(rs *RoundState, dst []byte) {
	if rs.round != Rounds {
		panic(fmt.Sprintf("des: Finish after %d of %d rounds", rs.round, Rounds))
	}
	out := permute(uint64(rs.r)<<32|uint64(rs.l), 64, finalPermutation[:])
	putBeUint64(dst, out)
}

// TripleCipher is EDE triple DES. With a 16-byte key it runs EDE2
// (K1,K2,K1); with a 24-byte key, EDE3 (K1,K2,K3). Both variants appear
// in the surveyed products.
type TripleCipher struct {
	c1, c2, c3 *Cipher
}

// NewTriple builds a 3-DES instance from a 16- or 24-byte key.
func NewTriple(key []byte) (*TripleCipher, error) {
	switch len(key) {
	case 16:
		key = append(append([]byte{}, key...), key[:8]...)
	case 24:
		// as is
	default:
		return nil, KeySizeError(len(key))
	}
	c1, err := New(key[0:8])
	if err != nil {
		return nil, err
	}
	c2, err := New(key[8:16])
	if err != nil {
		return nil, err
	}
	c3, err := New(key[16:24])
	if err != nil {
		return nil, err
	}
	return &TripleCipher{c1, c2, c3}, nil
}

// BlockSize returns 8.
func (t *TripleCipher) BlockSize() int { return BlockSize }

// Rounds returns the total Feistel round count (48), the pipeline depth
// of a fully unrolled 3-DES core such as Gilmont's.
func (t *TripleCipher) Rounds() int { return 3 * Rounds }

// Encrypt performs EDE encryption of one block.
func (t *TripleCipher) Encrypt(dst, src []byte) {
	var tmp [BlockSize]byte
	t.c1.Encrypt(tmp[:], src)
	t.c2.Decrypt(tmp[:], tmp[:])
	t.c3.Encrypt(dst, tmp[:])
}

// Decrypt performs EDE decryption of one block.
func (t *TripleCipher) Decrypt(dst, src []byte) {
	var tmp [BlockSize]byte
	t.c3.Decrypt(tmp[:], src)
	t.c2.Encrypt(tmp[:], tmp[:])
	t.c1.Decrypt(dst, tmp[:])
}
