package keyedhash

import (
	"bytes"
	stdhmac "crypto/hmac"
	stdsha "crypto/sha256"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSHA256KnownVectors(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"},
		{"abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"},
		{"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
			"248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"},
	}
	for _, c := range cases {
		got := Sum256([]byte(c.in))
		if hex.EncodeToString(got[:]) != c.want {
			t.Errorf("Sum256(%q) = %x, want %s", c.in, got, c.want)
		}
	}
}

func TestSHA256AgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(300)
		msg := make([]byte, n)
		rng.Read(msg)
		got := Sum256(msg)
		want := stdsha.Sum256(msg)
		if got != want {
			t.Fatalf("len %d: digest mismatch", n)
		}
	}
}

// Incremental writes in arbitrary chunkings must equal one-shot hashing.
func TestSHA256Incremental(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	msg := make([]byte, 1000)
	rng.Read(msg)
	want := Sum256(msg)

	d := NewSHA256()
	rest := msg
	for len(rest) > 0 {
		n := 1 + rng.Intn(100)
		if n > len(rest) {
			n = len(rest)
		}
		d.Write(rest[:n])
		rest = rest[n:]
	}
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("incremental digest differs from one-shot")
	}
}

// Sum must not disturb the running state.
func TestSumIsNonDestructive(t *testing.T) {
	d := NewSHA256()
	d.Write([]byte("hello "))
	_ = d.Sum(nil)
	d.Write([]byte("world"))
	want := Sum256([]byte("hello world"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Sum disturbed the digest state")
	}
}

func TestResetRestoresInitialState(t *testing.T) {
	d := NewSHA256()
	d.Write([]byte("garbage"))
	d.Reset()
	d.Write([]byte("abc"))
	want := Sum256([]byte("abc"))
	if !bytes.Equal(d.Sum(nil), want[:]) {
		t.Error("Reset did not restore initial state")
	}
}

func TestHMACAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 100; trial++ {
		key := make([]byte, 1+rng.Intn(100))
		msg := make([]byte, rng.Intn(200))
		rng.Read(key)
		rng.Read(msg)
		got := HMAC(key, msg)
		ref := stdhmac.New(stdsha.New, key)
		ref.Write(msg)
		if !bytes.Equal(got[:], ref.Sum(nil)) {
			t.Fatalf("HMAC mismatch keyLen=%d msgLen=%d", len(key), len(msg))
		}
	}
}

func TestHMACRFC4231Vector(t *testing.T) {
	key := bytes.Repeat([]byte{0x0b}, 20)
	got := HMAC(key, []byte("Hi There"))
	want := "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
	if hex.EncodeToString(got[:]) != want {
		t.Errorf("RFC 4231 case 1: got %x", got)
	}
}

func TestEqual(t *testing.T) {
	a := []byte{1, 2, 3}
	if !Equal(a, []byte{1, 2, 3}) {
		t.Error("Equal on equal slices = false")
	}
	if Equal(a, []byte{1, 2, 4}) {
		t.Error("Equal on different slices = true")
	}
	if Equal(a, []byte{1, 2}) {
		t.Error("Equal on different lengths = true")
	}
}

func TestCBCMACDetectsTamper(t *testing.T) {
	m, err := NewCBCMAC([]byte("mac-key!"))
	if err != nil {
		t.Fatal(err)
	}
	line := []byte("a 32-byte cache line of code....")
	tag := m.Sum(line)
	if !m.Verify(line, tag) {
		t.Fatal("valid tag rejected")
	}
	for i := range line {
		mod := append([]byte{}, line...)
		mod[i] ^= 0x01
		if m.Verify(mod, tag) {
			t.Fatalf("single-bit tamper at byte %d not detected", i)
		}
	}
}

func TestCBCMACKeyDependence(t *testing.T) {
	m1, _ := NewCBCMAC([]byte("key-one!"))
	m2, _ := NewCBCMAC([]byte("key-two!"))
	msg := []byte("16 bytes of data")
	if m1.Sum(msg) == m2.Sum(msg) {
		t.Error("MACs under different keys coincide")
	}
}

func TestCBCMACEmptyAndShort(t *testing.T) {
	m, _ := NewCBCMAC([]byte("mac-key!"))
	tagEmpty := m.Sum(nil)
	tagZero := m.Sum(make([]byte, 8))
	if tagEmpty == tagZero {
		// Zero-padded single zero block equals the empty-message tag in
		// plain CBC-MAC; we accept that here because the engine only MACs
		// fixed-size lines, but the tags must at least be deterministic.
		t.Log("empty and zero-block tags coincide (expected for plain CBC-MAC)")
	}
	if !m.Verify(nil, tagEmpty) {
		t.Error("empty-message tag does not verify")
	}
}

func TestCBCMACBadKey(t *testing.T) {
	if _, err := NewCBCMAC(make([]byte, 5)); err == nil {
		t.Error("short MAC key accepted")
	}
}

func TestHMACProperty(t *testing.T) {
	f := func(key, msg []byte) bool {
		if len(key) == 0 {
			key = []byte{0}
		}
		got := HMAC(key, msg)
		ref := stdhmac.New(stdsha.New, key)
		ref.Write(msg)
		return bytes.Equal(got[:], ref.Sum(nil))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkSHA256(b *testing.B) {
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	for i := 0; i < b.N; i++ {
		Sum256(msg)
	}
}

func BenchmarkCBCMACLine(b *testing.B) {
	m, _ := NewCBCMAC(make([]byte, 8))
	line := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		m.Sum(line)
	}
}
