// Package keyedhash provides the data-authentication primitives the
// General Instrument patent attaches to its bus encryptor: the survey
// notes the design can "authenticate the data coming from external
// memory thanks to a keyed hash algorithm".
//
// Two constructions are provided: HMAC over a from-scratch SHA-256
// (cross-checked against crypto/sha256 and crypto/hmac in the tests),
// and DES-CBC-MAC, the construction hardware of the patent's era would
// actually have used (it reuses the DES datapath already on the die).
package keyedhash

import (
	"encoding/binary"
	"fmt"

	"repro/internal/crypto/des"
)

// Size is the SHA-256 digest length in bytes.
const Size = 32

// BlockSize is the SHA-256 message block length in bytes.
const BlockSize = 64

var k256 = [64]uint32{
	0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
	0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
	0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
	0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
	0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
	0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
	0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
	0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
}

// Digest is an incremental SHA-256 computation (FIPS 180-4).
type Digest struct {
	h      [8]uint32
	buf    [BlockSize]byte
	n      int    // bytes buffered
	length uint64 // total message bytes
}

// NewSHA256 returns a fresh SHA-256 digest.
func NewSHA256() *Digest {
	d := &Digest{}
	d.Reset()
	return d
}

// Reset restores the initial hash state.
func (d *Digest) Reset() {
	d.h = [8]uint32{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19}
	d.n = 0
	d.length = 0
}

// Write absorbs p; it never fails.
func (d *Digest) Write(p []byte) (int, error) {
	d.length += uint64(len(p))
	n := len(p)
	for len(p) > 0 {
		c := copy(d.buf[d.n:], p)
		d.n += c
		p = p[c:]
		if d.n == BlockSize {
			d.block(d.buf[:])
			d.n = 0
		}
	}
	return n, nil
}

func rotr(x uint32, n uint) uint32 { return x>>n | x<<(32-n) }

func (d *Digest) block(p []byte) {
	var w [64]uint32
	for i := 0; i < 16; i++ {
		w[i] = binary.BigEndian.Uint32(p[4*i:])
	}
	for i := 16; i < 64; i++ {
		s0 := rotr(w[i-15], 7) ^ rotr(w[i-15], 18) ^ w[i-15]>>3
		s1 := rotr(w[i-2], 17) ^ rotr(w[i-2], 19) ^ w[i-2]>>10
		w[i] = w[i-16] + s0 + w[i-7] + s1
	}
	a, b, c, dd, e, f, g, h := d.h[0], d.h[1], d.h[2], d.h[3], d.h[4], d.h[5], d.h[6], d.h[7]
	for i := 0; i < 64; i++ {
		s1 := rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25)
		ch := e&f ^ ^e&g
		t1 := h + s1 + ch + k256[i] + w[i]
		s0 := rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22)
		maj := a&b ^ a&c ^ b&c
		t2 := s0 + maj
		h, g, f, e, dd, c, b, a = g, f, e, dd+t1, c, b, a, t1+t2
	}
	d.h[0] += a
	d.h[1] += b
	d.h[2] += c
	d.h[3] += dd
	d.h[4] += e
	d.h[5] += f
	d.h[6] += g
	d.h[7] += h
}

// SumFixed returns the digest of everything written so far without
// allocating; the digest state is not disturbed. This is the hot-path
// form — the per-line verifiers call it once per bus line.
//
//repro:hotpath
func (d *Digest) SumFixed() [Size]byte {
	c := *d // pad a copy so further Writes continue the stream
	var tail [BlockSize + 8]byte
	tail[0] = 0x80
	padLen := BlockSize - (int(c.length)+9)%BlockSize + 1
	if padLen == BlockSize+1 {
		padLen = 1
	}
	binary.BigEndian.PutUint64(tail[padLen:padLen+8], c.length*8)
	c.Write(tail[:padLen+8])
	var out [Size]byte
	for i, v := range c.h {
		binary.BigEndian.PutUint32(out[4*i:], v)
	}
	return out
}

// Sum appends the digest of everything written so far to in and returns
// the result; the digest state is not disturbed. (hash.Hash-style
// convenience; use SumFixed on allocation-free paths.)
func (d *Digest) Sum(in []byte) []byte {
	out := d.SumFixed()
	return append(in, out[:]...)
}

// Sum256 returns the SHA-256 digest of data.
func Sum256(data []byte) [Size]byte {
	var d Digest
	d.Reset()
	d.Write(data)
	return d.SumFixed()
}

// MAC is a reusable HMAC-SHA256 state: the key schedule (padded key
// blocks) is computed once in Init, and Reset/Write/SumFixed run
// allocation-free, so a verifier can hold a MAC by value and tag one
// line per call on the hot path.
type MAC struct {
	opad [BlockSize]byte
	// innerInit is the inner digest with the ipad block absorbed;
	// Reset restores inner from it by value copy.
	innerInit Digest
	inner     Digest
}

// Init computes the key schedule. Call once per key; it may allocate.
func (m *MAC) Init(key []byte) {
	if len(key) > BlockSize {
		sum := Sum256(key)
		key = sum[:]
	}
	var ipad [BlockSize]byte
	copy(ipad[:], key)
	copy(m.opad[:], key)
	for i := range ipad {
		ipad[i] ^= 0x36
		m.opad[i] ^= 0x5c
	}
	m.innerInit.Reset()
	m.innerInit.Write(ipad[:])
	m.inner = m.innerInit
}

// Reset restarts the message, keeping the key schedule.
//
//repro:hotpath
func (m *MAC) Reset() { m.inner = m.innerInit }

// Write absorbs p into the current message.
//
//repro:hotpath
func (m *MAC) Write(p []byte) { m.inner.Write(p) }

// SumFixed returns HMAC(key, message-so-far) without allocating and
// without disturbing the running state.
//
//repro:hotpath
func (m *MAC) SumFixed() [Size]byte {
	innerSum := m.inner.SumFixed()
	var outer Digest
	outer.Reset()
	outer.Write(m.opad[:])
	outer.Write(innerSum[:])
	return outer.SumFixed()
}

// HMAC computes HMAC-SHA256(key, msg) per RFC 2104. One-shot form;
// repeated callers should hold a MAC and Reset it per message.
func HMAC(key, msg []byte) [Size]byte {
	var m MAC
	m.Init(key)
	m.Write(msg)
	return m.SumFixed()
}

// Equal compares two MACs in constant time (per-byte accumulate).
func Equal(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	var v byte
	for i := range a {
		v |= a[i] ^ b[i]
	}
	return v == 0
}

// CBCMAC computes DES-CBC-MAC over msg, the period-appropriate keyed
// hash for the General Instrument engine: the message is padded with
// zeros to a block multiple and run through DES-CBC with a zero IV; the
// final ciphertext block is the 8-byte tag. Only safe for fixed-length
// messages (cache lines are), which the engine layer guarantees.
type CBCMAC struct {
	c *des.Cipher
}

// NewCBCMAC builds a DES-CBC-MAC with an 8-byte key.
func NewCBCMAC(key []byte) (*CBCMAC, error) {
	c, err := des.New(key)
	if err != nil {
		return nil, fmt.Errorf("keyedhash: %w", err)
	}
	return &CBCMAC{c}, nil
}

// TagSize is the CBC-MAC tag length (one DES block).
const TagSize = des.BlockSize

// Sum returns the 8-byte tag for msg.
func (m *CBCMAC) Sum(msg []byte) [TagSize]byte {
	var acc [TagSize]byte
	for off := 0; off < len(msg); off += TagSize {
		var blk [TagSize]byte
		copy(blk[:], msg[off:])
		for i := range acc {
			acc[i] ^= blk[i]
		}
		m.c.Encrypt(acc[:], acc[:])
	}
	if len(msg) == 0 {
		m.c.Encrypt(acc[:], acc[:])
	}
	return acc
}

// Verify recomputes the tag for msg and compares in constant time.
func (m *CBCMAC) Verify(msg []byte, tag [TagSize]byte) bool {
	want := m.Sum(msg)
	return Equal(want[:], tag[:])
}
