package aes

import (
	"math/rand"
	"testing"
)

// Avalanche property: flipping one plaintext bit should flip roughly
// half the ciphertext bits. A transcription error in the S-box or
// MixColumns constants shows up here as a skewed distribution even when
// round-trips still pass.
func TestPlaintextAvalanche(t *testing.T) {
	ci, err := New([]byte("avalanche-key-16"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var total, samples int
	for trial := 0; trial < 50; trial++ {
		pt := make([]byte, 16)
		rng.Read(pt)
		base := make([]byte, 16)
		ci.Encrypt(base, pt)
		bit := rng.Intn(128)
		mod := append([]byte{}, pt...)
		mod[bit/8] ^= 1 << uint(bit%8)
		out := make([]byte, 16)
		ci.Encrypt(out, mod)
		total += hamming(base, out)
		samples++
	}
	mean := float64(total) / float64(samples)
	if mean < 52 || mean > 76 { // 64 ± 12
		t.Errorf("plaintext avalanche mean %.1f bits, want ~64", mean)
	}
}

// Key avalanche: one key bit flip must also diffuse through the whole
// ciphertext (key schedule correctness).
func TestKeyAvalanche(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	var total, samples int
	for trial := 0; trial < 50; trial++ {
		key := make([]byte, 16)
		rng.Read(key)
		pt := make([]byte, 16)
		rng.Read(pt)
		c1, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		bit := rng.Intn(128)
		key2 := append([]byte{}, key...)
		key2[bit/8] ^= 1 << uint(bit%8)
		c2, err := New(key2)
		if err != nil {
			t.Fatal(err)
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		c1.Encrypt(a, pt)
		c2.Encrypt(b, pt)
		total += hamming(a, b)
		samples++
	}
	mean := float64(total) / float64(samples)
	if mean < 52 || mean > 76 {
		t.Errorf("key avalanche mean %.1f bits, want ~64", mean)
	}
}

func hamming(a, b []byte) int {
	n := 0
	for i := range a {
		x := a[i] ^ b[i]
		for x != 0 {
			n += int(x & 1)
			x >>= 1
		}
	}
	return n
}
