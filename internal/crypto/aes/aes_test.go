package aes

import (
	"bytes"
	stdaes "crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustHex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix B / C vectors.
func TestFIPSVectors(t *testing.T) {
	cases := []struct{ key, pt, ct string }{
		{"2b7e151628aed2a6abf7158809cf4f3c", "3243f6a8885a308d313198a2e0370734", "3925841d02dc09fbdc118597196a0b32"},
		{"000102030405060708090a0b0c0d0e0f", "00112233445566778899aabbccddeeff", "69c4e0d86a7b0430d8cdb78070b4c55a"},
		{"000102030405060708090a0b0c0d0e0f1011121314151617", "00112233445566778899aabbccddeeff", "dda97ca4864cdfe06eaf70a0ec0d7191"},
		{"000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f", "00112233445566778899aabbccddeeff", "8ea2b7ca516745bfeafc49904b496089"},
	}
	for _, c := range cases {
		ci, err := New(mustHex(t, c.key))
		if err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 16)
		ci.Encrypt(got, mustHex(t, c.pt))
		if hex.EncodeToString(got) != c.ct {
			t.Errorf("key %s: encrypt = %x, want %s", c.key, got, c.ct)
		}
		back := make([]byte, 16)
		ci.Decrypt(back, got)
		if hex.EncodeToString(back) != c.pt {
			t.Errorf("key %s: decrypt = %x, want %s", c.key, back, c.pt)
		}
	}
}

func TestKeySizeError(t *testing.T) {
	for _, n := range []int{0, 1, 15, 17, 23, 25, 31, 33, 64} {
		if _, err := New(make([]byte, n)); err == nil {
			t.Errorf("New with %d-byte key: want error, got nil", n)
		}
	}
	var e error = KeySizeError(7)
	if e.Error() == "" {
		t.Error("KeySizeError has empty message")
	}
}

func TestRoundsPerKeySize(t *testing.T) {
	for _, c := range []struct{ keyLen, rounds int }{{16, 10}, {24, 12}, {32, 14}} {
		ci, err := New(make([]byte, c.keyLen))
		if err != nil {
			t.Fatal(err)
		}
		if ci.Rounds() != c.rounds {
			t.Errorf("key len %d: rounds = %d, want %d", c.keyLen, ci.Rounds(), c.rounds)
		}
		if ci.BlockSize() != 16 {
			t.Errorf("BlockSize = %d, want 16", ci.BlockSize())
		}
	}
}

// TestAgainstStdlib cross-checks every key size against crypto/aes on
// random inputs.
func TestAgainstStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, keyLen := range []int{16, 24, 32} {
		for trial := 0; trial < 200; trial++ {
			key := make([]byte, keyLen)
			rng.Read(key)
			pt := make([]byte, 16)
			rng.Read(pt)

			ours, err := New(key)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := stdaes.NewCipher(key)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]byte, 16)
			ref.Encrypt(want, pt)
			got := make([]byte, 16)
			ours.Encrypt(got, pt)
			if !bytes.Equal(got, want) {
				t.Fatalf("keyLen %d: encrypt mismatch\nkey %x\npt  %x\ngot %x\nwant %x", keyLen, key, pt, got, want)
			}
			back := make([]byte, 16)
			ours.Decrypt(back, got)
			if !bytes.Equal(back, pt) {
				t.Fatalf("keyLen %d: roundtrip mismatch", keyLen)
			}
		}
	}
}

// TestEncryptDecryptInverse is the property-based roundtrip check.
func TestEncryptDecryptInverse(t *testing.T) {
	ci, err := New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	f := func(pt [16]byte) bool {
		ct := make([]byte, 16)
		ci.Encrypt(ct, pt[:])
		back := make([]byte, 16)
		ci.Decrypt(back, ct)
		return bytes.Equal(back, pt[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestRoundAPIMatchesWholeBlock drives the per-round pipeline API and
// checks it produces the identical ciphertext to Encrypt.
func TestRoundAPIMatchesWholeBlock(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, keyLen := range []int{16, 24, 32} {
		key := make([]byte, keyLen)
		rng.Read(key)
		ci, err := New(key)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 50; trial++ {
			pt := make([]byte, 16)
			rng.Read(pt)
			want := make([]byte, 16)
			ci.Encrypt(want, pt)

			rs := ci.BeginEncrypt(pt)
			steps := 0
			for !ci.EncryptRound(rs) {
				steps++
			}
			steps++ // the completing round
			if steps != ci.Rounds() {
				t.Fatalf("round API took %d steps, want %d", steps, ci.Rounds())
			}
			got := make([]byte, 16)
			ci.Finish(rs, got)
			if !bytes.Equal(got, want) {
				t.Fatalf("round API mismatch: got %x want %x", got, want)
			}
		}
	}
}

func TestFinishEarlyPanics(t *testing.T) {
	ci, _ := New(make([]byte, 16))
	rs := ci.BeginEncrypt(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Error("Finish before final round did not panic")
		}
	}()
	ci.Finish(rs, make([]byte, 16))
}

func TestShortInputPanics(t *testing.T) {
	ci, _ := New(make([]byte, 16))
	for name, f := range map[string]func(){
		"Encrypt": func() { ci.Encrypt(make([]byte, 16), make([]byte, 15)) },
		"Decrypt": func() { ci.Decrypt(make([]byte, 16), make([]byte, 15)) },
		"Begin":   func() { ci.BeginEncrypt(make([]byte, 15)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with short input did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSboxIsPermutationAndInverse(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		v := sbox[i]
		if seen[v] {
			t.Fatalf("sbox not a permutation: value %#x repeated", v)
		}
		seen[v] = true
		if invSbox[v] != byte(i) {
			t.Fatalf("invSbox[sbox[%#x]] = %#x", i, invSbox[v])
		}
	}
	// Known anchor values from FIPS-197.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Errorf("sbox anchors wrong: sbox[0]=%#x sbox[0x53]=%#x", sbox[0x00], sbox[0x53])
	}
}

func TestGFMulProperties(t *testing.T) {
	// Commutativity and identity on a sample grid.
	for a := 0; a < 256; a += 7 {
		for b := 0; b < 256; b += 11 {
			if mul(byte(a), byte(b)) != mul(byte(b), byte(a)) {
				t.Fatalf("mul not commutative at %d,%d", a, b)
			}
		}
		if mul(byte(a), 1) != byte(a) {
			t.Fatalf("mul identity fails at %d", a)
		}
	}
	// inv is a true inverse for all nonzero elements.
	for a := 1; a < 256; a++ {
		if mul(byte(a), inv(byte(a))) != 1 {
			t.Fatalf("inv(%d) wrong", a)
		}
	}
}

func BenchmarkEncrypt(b *testing.B) {
	ci, _ := New(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		ci.Encrypt(dst, src)
	}
}

func BenchmarkDecrypt(b *testing.B) {
	ci, _ := New(make([]byte, 16))
	src := make([]byte, 16)
	dst := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		ci.Decrypt(dst, src)
	}
}
