// Package aes implements the AES block cipher (FIPS-197) from scratch.
//
// It exists so that the bus-encryption engine models in this repository
// (XOM's pipelined AES, AEGIS's AES-CBC unit) can reason about the cipher
// at round granularity: a hardware pipeline maps one round per stage, so
// the package exposes both the usual whole-block Encrypt/Decrypt and a
// per-round API (EncryptRound, DecryptRound) used by the timing models.
//
// The S-box and round constants are derived programmatically from GF(2^8)
// arithmetic rather than pasted as literal tables; correctness is
// cross-checked against the Go standard library's crypto/aes in the test
// suite and against the FIPS-197 appendix vectors.
package aes

import "fmt"

// BlockSize is the AES block size in bytes (fixed by the standard).
const BlockSize = 16

// Number of rounds for each supported key length, per FIPS-197.
const (
	rounds128 = 10
	rounds192 = 12
	rounds256 = 14
)

// sbox and invSbox are built in init from GF(2^8) inversion plus the
// affine transform defined in FIPS-197 §5.1.1.
var (
	sbox    [256]byte
	invSbox [256]byte
)

// mul multiplies two elements of GF(2^8) modulo the AES polynomial
// x^8 + x^4 + x^3 + x + 1 (0x11b).
func mul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1b
		}
		b >>= 1
	}
	return p
}

// inv returns the multiplicative inverse in GF(2^8), with inv(0) = 0 as
// the standard requires for the S-box construction.
func inv(a byte) byte {
	if a == 0 {
		return 0
	}
	// Brute-force inverse: the field has 255 invertible elements, so a
	// linear scan at init time is perfectly adequate and obviously right.
	for b := 1; b < 256; b++ {
		if mul(a, byte(b)) == 1 {
			return byte(b)
		}
	}
	panic("aes: GF(2^8) element without inverse") // unreachable
}

func init() {
	for i := 0; i < 256; i++ {
		x := inv(byte(i))
		// Affine transform: b'_i = b_i ^ b_{i+4} ^ b_{i+5} ^ b_{i+6} ^ b_{i+7} ^ c_i
		y := x ^ rotl8(x, 1) ^ rotl8(x, 2) ^ rotl8(x, 3) ^ rotl8(x, 4) ^ 0x63
		sbox[i] = y
		invSbox[y] = byte(i)
	}
}

func rotl8(x byte, n uint) byte { return x<<n | x>>(8-n) }

// KeySizeError reports an unsupported key length.
type KeySizeError int

func (k KeySizeError) Error() string {
	return fmt.Sprintf("aes: invalid key size %d (want 16, 24, or 32)", int(k))
}

// Cipher is an expanded-key AES instance. It implements the same
// interface shape as crypto/cipher.Block so engine code can accept either.
type Cipher struct {
	enc    []uint32 // encryption round keys, 4 words per round key
	dec    []uint32 // decryption round keys (equivalent inverse cipher)
	rounds int
}

// New expands key (16, 24 or 32 bytes) into an AES cipher instance.
func New(key []byte) (*Cipher, error) {
	var nr int
	switch len(key) {
	case 16:
		nr = rounds128
	case 24:
		nr = rounds192
	case 32:
		nr = rounds256
	default:
		return nil, KeySizeError(len(key))
	}
	c := &Cipher{rounds: nr}
	c.expandKey(key)
	return c, nil
}

// BlockSize returns the AES block size, 16 bytes.
func (c *Cipher) BlockSize() int { return BlockSize }

// Rounds returns the number of cipher rounds (10, 12 or 14); the hardware
// pipeline models use it as the pipeline depth.
func (c *Cipher) Rounds() int { return c.rounds }

func (c *Cipher) expandKey(key []byte) {
	nk := len(key) / 4
	n := 4 * (c.rounds + 1)
	w := make([]uint32, n)
	for i := 0; i < nk; i++ {
		w[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1) << 24
	for i := nk; i < n; i++ {
		t := w[i-1]
		if i%nk == 0 {
			t = subWord(rotWord(t)) ^ rcon
			rcon = uint32(mul(byte(rcon>>24), 2)) << 24
		} else if nk > 6 && i%nk == 4 {
			t = subWord(t)
		}
		w[i] = w[i-nk] ^ t
	}
	c.enc = w

	// Equivalent inverse cipher round keys: reverse round order and apply
	// InvMixColumns to the middle round keys (FIPS-197 §5.3.5).
	d := make([]uint32, n)
	for i := 0; i < n; i += 4 {
		src := n - 4 - i
		for j := 0; j < 4; j++ {
			t := w[src+j]
			if i > 0 && i < n-4 {
				t = invMixWord(t)
			}
			d[i+j] = t
		}
	}
	c.dec = d
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

func invMixWord(w uint32) uint32 {
	b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
	return uint32(mul(b0, 14)^mul(b1, 11)^mul(b2, 13)^mul(b3, 9))<<24 |
		uint32(mul(b0, 9)^mul(b1, 14)^mul(b2, 11)^mul(b3, 13))<<16 |
		uint32(mul(b0, 13)^mul(b1, 9)^mul(b2, 14)^mul(b3, 11))<<8 |
		uint32(mul(b0, 11)^mul(b1, 13)^mul(b2, 9)^mul(b3, 14))
}

// state is the 4x4 AES state held column-major in four words, matching
// the word layout of the round keys.
type state [4]uint32

func loadState(src []byte) state {
	var s state
	for i := 0; i < 4; i++ {
		s[i] = uint32(src[4*i])<<24 | uint32(src[4*i+1])<<16 | uint32(src[4*i+2])<<8 | uint32(src[4*i+3])
	}
	return s
}

func (s state) store(dst []byte) {
	for i := 0; i < 4; i++ {
		dst[4*i] = byte(s[i] >> 24)
		dst[4*i+1] = byte(s[i] >> 16)
		dst[4*i+2] = byte(s[i] >> 8)
		dst[4*i+3] = byte(s[i])
	}
}

func (s *state) addRoundKey(rk []uint32) {
	s[0] ^= rk[0]
	s[1] ^= rk[1]
	s[2] ^= rk[2]
	s[3] ^= rk[3]
}

func (s *state) subBytes(box *[256]byte) {
	for i := 0; i < 4; i++ {
		w := s[i]
		s[i] = uint32(box[w>>24])<<24 | uint32(box[w>>16&0xff])<<16 |
			uint32(box[w>>8&0xff])<<8 | uint32(box[w&0xff])
	}
}

// shiftRows rotates row r left by r bytes. With column-major words, row r
// is byte r of every word, so we gather/scatter through a byte matrix;
// clarity wins over micro-optimization here (the engines model timing
// separately, they do not depend on software throughput).
func (s *state) shiftRows() {
	var m [4][4]byte
	for c := 0; c < 4; c++ {
		m[0][c] = byte(s[c] >> 24)
		m[1][c] = byte(s[c] >> 16)
		m[2][c] = byte(s[c] >> 8)
		m[3][c] = byte(s[c])
	}
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[c] = m[r][(c+r)%4]
		}
		m[r] = row
	}
	for c := 0; c < 4; c++ {
		s[c] = uint32(m[0][c])<<24 | uint32(m[1][c])<<16 | uint32(m[2][c])<<8 | uint32(m[3][c])
	}
}

func (s *state) invShiftRows() {
	var m [4][4]byte
	for c := 0; c < 4; c++ {
		m[0][c] = byte(s[c] >> 24)
		m[1][c] = byte(s[c] >> 16)
		m[2][c] = byte(s[c] >> 8)
		m[3][c] = byte(s[c])
	}
	for r := 1; r < 4; r++ {
		var row [4]byte
		for c := 0; c < 4; c++ {
			row[(c+r)%4] = m[r][c]
		}
		m[r] = row
	}
	for c := 0; c < 4; c++ {
		s[c] = uint32(m[0][c])<<24 | uint32(m[1][c])<<16 | uint32(m[2][c])<<8 | uint32(m[3][c])
	}
}

func (s *state) mixColumns() {
	for i := 0; i < 4; i++ {
		w := s[i]
		b0, b1, b2, b3 := byte(w>>24), byte(w>>16), byte(w>>8), byte(w)
		s[i] = uint32(mul(b0, 2)^mul(b1, 3)^b2^b3)<<24 |
			uint32(b0^mul(b1, 2)^mul(b2, 3)^b3)<<16 |
			uint32(b0^b1^mul(b2, 2)^mul(b3, 3))<<8 |
			uint32(mul(b0, 3)^b1^b2^mul(b3, 2))
	}
}

func (s *state) invMixColumns() {
	for i := 0; i < 4; i++ {
		s[i] = invMixWord(s[i])
	}
}

// Encrypt encrypts exactly one 16-byte block from src into dst.
// dst and src may overlap entirely or not at all.
func (c *Cipher) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes(&sbox)
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.enc[4*r : 4*r+4])
	}
	s.subBytes(&sbox)
	s.shiftRows()
	s.addRoundKey(c.enc[4*c.rounds : 4*c.rounds+4])
	s.store(dst)
}

// Decrypt decrypts exactly one 16-byte block from src into dst using the
// equivalent inverse cipher.
func (c *Cipher) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aes: input not full block")
	}
	s := loadState(src)
	s.addRoundKey(c.dec[0:4])
	for r := 1; r < c.rounds; r++ {
		s.subBytes(&invSbox)
		s.invShiftRows()
		s.invMixColumns()
		s.addRoundKey(c.dec[4*r : 4*r+4])
	}
	s.subBytes(&invSbox)
	s.invShiftRows()
	s.addRoundKey(c.dec[4*c.rounds : 4*c.rounds+4])
	s.store(dst)
}

// RoundState is an in-flight block inside the round-level API. A hardware
// pipeline holds one RoundState per occupied stage.
type RoundState struct {
	s     state
	round int // rounds already applied
}

// BeginEncrypt starts the round-level encryption of one block: it applies
// the initial AddRoundKey (pipeline stage 0) and returns the state.
func (c *Cipher) BeginEncrypt(src []byte) *RoundState {
	if len(src) < BlockSize {
		panic("aes: input not full block")
	}
	s := loadState(src)
	s.addRoundKey(c.enc[0:4])
	return &RoundState{s: s}
}

// EncryptRound advances rs by exactly one cipher round (one pipeline
// stage). It reports whether the block is complete; once complete,
// Finish extracts the ciphertext.
func (c *Cipher) EncryptRound(rs *RoundState) bool {
	if rs.round >= c.rounds {
		return true
	}
	rs.round++
	rs.s.subBytes(&sbox)
	rs.s.shiftRows()
	if rs.round < c.rounds {
		rs.s.mixColumns()
	}
	rs.s.addRoundKey(c.enc[4*rs.round : 4*rs.round+4])
	return rs.round >= c.rounds
}

// Finish writes the completed block held in rs into dst. It panics if the
// block has not passed through all rounds: the pipeline model must drain
// stages in order, and finishing early is a scheduling bug.
func (c *Cipher) Finish(rs *RoundState, dst []byte) {
	if rs.round != c.rounds {
		panic(fmt.Sprintf("aes: Finish after %d of %d rounds", rs.round, c.rounds))
	}
	rs.s.store(dst)
}
