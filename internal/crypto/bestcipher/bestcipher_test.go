package bestcipher

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newCipher(t testing.TB) *Cipher {
	t.Helper()
	c, err := New([]byte("bestpat!"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestKeyLength(t *testing.T) {
	if _, err := New(make([]byte, 7)); err == nil {
		t.Error("7-byte key accepted")
	}
	if _, err := New(make([]byte, 9)); err == nil {
		t.Error("9-byte key accepted")
	}
}

func TestRoundtrip(t *testing.T) {
	c := newCipher(t)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		addr := uint64(rng.Intn(1<<16)) &^ (BlockSize - 1)
		pt := make([]byte, BlockSize)
		rng.Read(pt)
		ct := make([]byte, BlockSize)
		c.EncryptAt(addr, ct, pt)
		back := make([]byte, BlockSize)
		c.DecryptAt(addr, back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("roundtrip failed at addr %#x", addr)
		}
	}
}

func TestRoundtripProperty(t *testing.T) {
	c := newCipher(t)
	f := func(pt [BlockSize]byte, blockIdx uint32) bool {
		addr := uint64(blockIdx) * BlockSize
		ct := make([]byte, BlockSize)
		c.EncryptAt(addr, ct, pt[:])
		back := make([]byte, BlockSize)
		c.DecryptAt(addr, back, ct)
		return bytes.Equal(back, pt[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Poly-alphabetic property: the same plaintext block enciphers
// differently at different addresses — the improvement over a pure
// mono-alphabetic substitution.
func TestAddressDependence(t *testing.T) {
	c := newCipher(t)
	pt := []byte("MOV A,#0")
	c1 := make([]byte, BlockSize)
	c2 := make([]byte, BlockSize)
	c.EncryptAt(0x0000, c1, pt)
	c.EncryptAt(0x0008, c2, pt)
	if bytes.Equal(c1, c2) {
		t.Error("same block at different addresses encrypted identically")
	}
}

func TestKeyDependence(t *testing.T) {
	a, _ := New([]byte("key-one!"))
	b, _ := New([]byte("key-two!"))
	pt := []byte("8 bytes!")
	ca := make([]byte, BlockSize)
	cb := make([]byte, BlockSize)
	a.EncryptAt(0, ca, pt)
	b.EncryptAt(0, cb, pt)
	if bytes.Equal(ca, cb) {
		t.Error("different keys produced identical ciphertext")
	}
}

// The substitution layer must be a bijection per address or decryption
// could not work; check the full byte alphabet at a few addresses.
func TestPerAddressByteBijection(t *testing.T) {
	c := newCipher(t)
	for _, addr := range []uint64{0, 8, 0x1000} {
		var seen [256]bool
		for v := 0; v < 256; v++ {
			pt := make([]byte, BlockSize)
			pt[0] = byte(v)
			ct := make([]byte, BlockSize)
			c.EncryptAt(addr, ct, pt)
			// Find where position 0 landed after transposition: encrypt a
			// second block differing only in byte 0 and diff.
			pt2 := make([]byte, BlockSize)
			pt2[0] = byte(v ^ 1)
			ct2 := make([]byte, BlockSize)
			c.EncryptAt(addr, ct2, pt2)
			pos := -1
			for i := range ct {
				if ct[i] != ct2[i] {
					if pos != -1 {
						t.Fatal("single-byte change affected multiple positions (not a pure transposition)")
					}
					pos = i
				}
			}
			if pos == -1 {
				t.Fatal("single-byte change invisible in ciphertext")
			}
			if seen[ct[pos]] {
				t.Fatalf("addr %#x: substitution not injective", addr)
			}
			seen[ct[pos]] = true
		}
	}
}

func TestUnalignedPanics(t *testing.T) {
	c := newCipher(t)
	defer func() {
		if recover() == nil {
			t.Error("unaligned address did not panic")
		}
	}()
	c.EncryptAt(3, make([]byte, 8), make([]byte, 8))
}

func TestShortBufferPanics(t *testing.T) {
	c := newCipher(t)
	defer func() {
		if recover() == nil {
			t.Error("short buffer did not panic")
		}
	}()
	c.EncryptAt(0, make([]byte, 8), make([]byte, 4))
}

func BenchmarkEncryptAt(b *testing.B) {
	c, _ := New([]byte("benchkey"))
	src := make([]byte, BlockSize)
	dst := make([]byte, BlockSize)
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		c.EncryptAt(uint64(i)*BlockSize, dst, src)
	}
}
