// Package bestcipher models the cipher of Robert M. Best's crypto-
// microprocessor patents (US 4,168,396 / 4,278,837 / 4,465,901), the
// design the survey credits with introducing bus encryption "25 years
// ago". Per the survey: "The block cipher chosen is based on basic
// cryptographic functions such as mono and poly-alphabetic substitutions
// and byte transpositions", with the cipher unit and the secret key held
// on-chip and everything outside the SoC enciphered.
//
// The model is faithful to that construction style, not to the exact
// patent tables (which are illustrative in the patents themselves):
//
//   - a key-derived mono-alphabetic substitution (one fixed byte S-box),
//   - a poly-alphabetic layer: the substitution alphabet is rotated by a
//     value derived from the byte's address (Best enciphers each byte as
//     a function of its address so relocated code does not repeat),
//   - a byte transposition within the block, permuting positions by a
//     key- and address-derived permutation.
//
// Its cryptographic weakness — small per-byte alphabets recoverable by
// frequency analysis / known plaintext — is intentional and measured by
// experiment E15.
package bestcipher

import "fmt"

// BlockSize is the cipher's block size in bytes. Best's patents operate
// on small multi-byte words fetched over the bus; we use 8.
const BlockSize = 8

// Cipher is an instance keyed with a 64-bit secret held "in an on-chip
// register" per the survey's description of Figure 3.
type Cipher struct {
	sub    [256]byte // mono-alphabetic substitution
	invSub [256]byte
	key    uint64
}

// New builds a Best-style cipher from an 8-byte key.
func New(key []byte) (*Cipher, error) {
	if len(key) != 8 {
		return nil, fmt.Errorf("bestcipher: key must be 8 bytes, got %d", len(key))
	}
	var k uint64
	for _, b := range key {
		k = k<<8 | uint64(b)
	}
	c := &Cipher{key: k}
	c.buildSbox()
	return c, nil
}

// buildSbox derives the mono-alphabetic substitution from the key with a
// Fisher–Yates shuffle driven by a splitmix of the key — a stand-in for
// the patent's key-loaded substitution matrix.
func (c *Cipher) buildSbox() {
	for i := 0; i < 256; i++ {
		c.sub[i] = byte(i)
	}
	x := c.key
	next := func() uint64 {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ z>>30) * 0xbf58476d1ce4e5b9
		z = (z ^ z>>27) * 0x94d049bb133111eb
		return z ^ z>>31
	}
	for i := 255; i > 0; i-- {
		j := int(next() % uint64(i+1))
		c.sub[i], c.sub[j] = c.sub[j], c.sub[i]
	}
	for i := 0; i < 256; i++ {
		c.invSub[c.sub[i]] = byte(i)
	}
}

// alphabetShift is the poly-alphabetic rotation for the byte at the given
// bus address: the same plaintext byte maps to different ciphertext bytes
// at different addresses.
func (c *Cipher) alphabetShift(addr uint64) byte {
	h := addr*0x2545f4914f6cdd1d + c.key
	return byte(h ^ h>>17 ^ h>>31)
}

// permFor derives the in-block byte transposition for the block starting
// at addr: a permutation of the 8 positions chosen by key and address.
func (c *Cipher) permFor(addr uint64) [BlockSize]int {
	var p [BlockSize]int
	for i := range p {
		p[i] = i
	}
	h := addr ^ c.key*0x9e3779b97f4a7c15
	for i := BlockSize - 1; i > 0; i-- {
		h = h*6364136223846793005 + 1442695040888963407
		j := int(h>>33) % (i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// EncryptAt enciphers one block located at bus address addr (addr must be
// block-aligned; the hardware enforces this with the address decoder).
func (c *Cipher) EncryptAt(addr uint64, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("bestcipher: input not full block")
	}
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("bestcipher: unaligned block address %#x", addr))
	}
	// Substitution pass: mono-alphabetic box rotated per byte address.
	var tmp [BlockSize]byte
	for i := 0; i < BlockSize; i++ {
		shift := c.alphabetShift(addr + uint64(i))
		tmp[i] = c.sub[src[i]+shift]
	}
	// Transposition pass.
	p := c.permFor(addr)
	for i := 0; i < BlockSize; i++ {
		dst[p[i]] = tmp[i]
	}
}

// DecryptAt inverts EncryptAt for the block at addr.
func (c *Cipher) DecryptAt(addr uint64, dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("bestcipher: input not full block")
	}
	if addr%BlockSize != 0 {
		panic(fmt.Sprintf("bestcipher: unaligned block address %#x", addr))
	}
	p := c.permFor(addr)
	var tmp [BlockSize]byte
	for i := 0; i < BlockSize; i++ {
		tmp[i] = src[p[i]]
	}
	for i := 0; i < BlockSize; i++ {
		shift := c.alphabetShift(addr + uint64(i))
		dst[i] = c.invSub[tmp[i]] - shift
	}
}

// BlockSizeBytes reports the cipher's block size; the name avoids
// clashing with the Block interface's BlockSize while making clear this
// cipher is address-dependent and so does not satisfy modes.Block.
func (c *Cipher) BlockSizeBytes() int { return BlockSize }
