// Package modes implements the block-cipher operating modes the survey
// discusses: ECB (the "obvious" mode whose determinism leaks patterns),
// CBC (robust but hostile to random access), CTR (the counter mode that
// lets a pad be precomputed from the address), and the AEGIS-style
// per-cache-block CBC whose initialization vector is derived from the
// block address plus a random value or a write counter.
//
// All modes operate on whole multiples of the cipher's block size; the
// bus-engine layer is responsible for the read-modify-write dance on
// partial writes (that cost is exactly what experiment E3 measures).
package modes

import (
	"encoding/binary"
	"fmt"
)

// Block is the block-cipher contract all modes consume. Both the local
// AES/DES implementations and crypto/cipher.Block satisfy it.
type Block interface {
	BlockSize() int
	Encrypt(dst, src []byte)
	Decrypt(dst, src []byte)
}

// ECB is Electronic CodeBook: each block enciphered independently.
// Deterministic — identical plaintext blocks produce identical
// ciphertext blocks, the weakness §2.2 of the survey calls out and
// experiment E4 quantifies.
type ECB struct{ b Block }

// NewECB wraps b in ECB mode.
func NewECB(b Block) *ECB { return &ECB{b} }

func checkLen(n, bs int) {
	if n%bs != 0 {
		panic(fmt.Sprintf("modes: length %d not a multiple of block size %d", n, bs))
	}
}

// Encrypt enciphers src into dst; len(src) must be a block multiple.
func (e *ECB) Encrypt(dst, src []byte) {
	bs := e.b.BlockSize()
	checkLen(len(src), bs)
	for i := 0; i < len(src); i += bs {
		e.b.Encrypt(dst[i:i+bs], src[i:i+bs])
	}
}

// Decrypt deciphers src into dst.
func (e *ECB) Decrypt(dst, src []byte) {
	bs := e.b.BlockSize()
	checkLen(len(src), bs)
	for i := 0; i < len(src); i += bs {
		e.b.Decrypt(dst[i:i+bs], src[i:i+bs])
	}
}

// CBC is Cipher Block Chaining over a whole message with an explicit IV.
// Each ciphertext block depends on all previous plaintext blocks, which
// is why the survey notes its use "proves limited in a processor-memory
// system due to the random data access problem (JUMP instructions)".
type CBC struct {
	b  Block
	iv []byte
}

// NewCBC wraps b in CBC mode with the given IV (length = block size).
func NewCBC(b Block, iv []byte) (*CBC, error) {
	if b.BlockSize() > maxBlockSize {
		return nil, fmt.Errorf("modes: block size %d exceeds %d", b.BlockSize(), maxBlockSize)
	}
	if len(iv) != b.BlockSize() {
		return nil, fmt.Errorf("modes: IV length %d != block size %d", len(iv), b.BlockSize())
	}
	return &CBC{b, append([]byte{}, iv...)}, nil
}

// cbcEncrypt is the one copy of the CBC encryption chain: xor each
// plaintext block with the previous ciphertext block (iv first) into
// scratch (a block-size buffer the caller owns — stack or persistent,
// which is what keeps the hot path allocation-free), then encipher.
func cbcEncrypt(b Block, iv, scratch, dst, src []byte) {
	bs := b.BlockSize()
	checkLen(len(src), bs)
	prev := iv
	for i := 0; i < len(src); i += bs {
		for j := 0; j < bs; j++ {
			scratch[j] = src[i+j] ^ prev[j]
		}
		b.Encrypt(dst[i:i+bs], scratch)
		prev = dst[i : i+bs]
	}
}

// cbcDecrypt is the one copy of the CBC decryption chain. dst and src
// must not alias: the chain needs the previous *ciphertext* block.
func cbcDecrypt(b Block, iv, dst, src []byte) {
	bs := b.BlockSize()
	checkLen(len(src), bs)
	prev := iv
	for i := 0; i < len(src); i += bs {
		b.Decrypt(dst[i:i+bs], src[i:i+bs])
		for j := 0; j < bs; j++ {
			dst[i+j] ^= prev[j]
		}
		prev = src[i : i+bs]
	}
}

// Encrypt enciphers src into dst as one chained message.
func (c *CBC) Encrypt(dst, src []byte) {
	var x [maxBlockSize]byte
	cbcEncrypt(c.b, c.iv, x[:c.b.BlockSize()], dst, src)
}

// Decrypt deciphers src into dst. dst and src must not alias, because the
// chain needs the previous *ciphertext* block.
func (c *CBC) Decrypt(dst, src []byte) {
	cbcDecrypt(c.b, c.iv, dst, src)
}

// DecryptFrom deciphers only the chain suffix beginning at block index
// start, given the ciphertext of block start-1 (or the IV for start==0).
// It models the random-access property: you can land anywhere, but only
// with the previous ciphertext block in hand — which on a bus means
// fetching one extra block. The engines use it for jump-target costing.
func (c *CBC) DecryptFrom(dst, src []byte, start int, prevCT []byte) {
	bs := c.b.BlockSize()
	prev := prevCT
	if start == 0 {
		prev = c.iv
	}
	if len(prev) != bs {
		panic("modes: DecryptFrom needs previous ciphertext block")
	}
	cbcDecrypt(c.b, prev, dst, src)
}

// IVMode selects how BlockCBC derives per-cache-block IVs.
type IVMode int

const (
	// IVRandom derives the IV from the block address and a per-system
	// random vector. Vulnerable to the birthday attack the survey notes.
	IVRandom IVMode = iota
	// IVCounter derives the IV from the block address and a monotonically
	// increasing write counter, the fix AEGIS proposes.
	IVCounter
)

// BlockCBC is the AEGIS scheme: the chaining unit is one cache block, so
// every cache block can be (de)ciphered independently — restoring random
// access — while chaining inside the block keeps CBC's diffusion.
// IV(blockAddr) = E_K(addr ‖ salt) where salt is random or a counter.
type BlockCBC struct {
	b        Block
	mode     IVMode
	salt     uint64            // random vector (IVRandom)
	counters map[uint64]uint64 // per-address write counters (IVCounter)
	// Scratch for iv() and the chaining xor so the per-line hot path
	// does not allocate; a BlockCBC is a single hardware unit and is
	// not goroutine-safe.
	ivSrc, ivBuf, xorBuf [maxBlockSize]byte
}

// maxBlockSize bounds the cipher block sizes the mode scratch buffers
// accommodate (AES is 16; 64 leaves headroom).
const maxBlockSize = 64

// NewBlockCBC builds an AEGIS-style per-cache-block CBC engine. salt
// seeds the random-vector variant and the initial counter value.
func NewBlockCBC(b Block, mode IVMode, salt uint64) *BlockCBC {
	if b.BlockSize() > maxBlockSize {
		panic(fmt.Sprintf("modes: block size %d exceeds %d", b.BlockSize(), maxBlockSize))
	}
	return &BlockCBC{b: b, mode: mode, salt: salt, counters: make(map[uint64]uint64)}
}

// iv computes the initialization vector for the cache block at addr.
// freshen advances the write counter first (call with true on writes).
// The returned slice aliases internal scratch, valid until the next
// iv() call.
func (a *BlockCBC) iv(addr uint64, freshen bool) []byte {
	bs := a.b.BlockSize()
	var salt uint64
	switch a.mode {
	case IVRandom:
		salt = a.salt
	case IVCounter:
		if freshen {
			a.counters[addr]++ //repro:allow sparse IV-freshness counters; steady-state bumps hit existing keys
		}
		salt = a.salt + a.counters[addr]
	}
	src := a.ivSrc[:bs]
	for i := range src {
		src[i] = 0
	}
	binary.BigEndian.PutUint64(src[:8], addr)
	if bs >= 16 {
		binary.BigEndian.PutUint64(src[8:16], salt)
	} else {
		// 8-byte blocks: fold the salt into the address word.
		binary.BigEndian.PutUint64(src[:8], addr^salt)
	}
	iv := a.ivBuf[:bs]
	a.b.Encrypt(iv, src)
	return iv
}

// IVFor exposes the current IV for a block address (no counter advance);
// the birthday-attack experiment samples it. The result is a copy the
// caller may retain.
func (a *BlockCBC) IVFor(addr uint64) []byte {
	return append([]byte(nil), a.iv(addr, false)...)
}

// EncryptBlockAt enciphers one cache block stored at addr, advancing the
// write counter in IVCounter mode so rewrites never reuse an IV. The
// persistent xor scratch keeps the per-line hot path allocation-free.
func (a *BlockCBC) EncryptBlockAt(addr uint64, dst, src []byte) {
	cbcEncrypt(a.b, a.iv(addr, true), a.xorBuf[:a.b.BlockSize()], dst, src)
}

// DecryptBlockAt deciphers one cache block stored at addr. dst and src
// must not alias (the chain needs the previous ciphertext block).
func (a *BlockCBC) DecryptBlockAt(addr uint64, dst, src []byte) {
	cbcDecrypt(a.b, a.iv(addr, false), dst, src)
}

// CTR is counter mode: the cipher enciphers a per-block counter to form
// a pad XORed with the data. Because the counter for a bus transfer can
// be the *address*, the pad is computable before the data arrives from
// external memory — this is the property that lets a block cipher behave
// like a stream cipher on the bus (experiment E2's winning configuration).
type CTR struct {
	b     Block
	nonce uint64
	// Scratch so the per-block pad generation does not allocate; a CTR
	// is a single hardware unit and is not goroutine-safe.
	ctrBlock, padBlock [maxBlockSize]byte
}

// NewCTR builds a CTR pad generator keyed by b with a fixed nonce mixed
// into every counter block.
func NewCTR(b Block, nonce uint64) *CTR {
	if b.BlockSize() > maxBlockSize {
		panic(fmt.Sprintf("modes: block size %d exceeds %d", b.BlockSize(), maxBlockSize))
	}
	return &CTR{b: b, nonce: nonce}
}

// padOne fills the internal pad scratch for one counter value and
// returns it (valid until the next padOne call).
func (c *CTR) padOne(counter uint64) []byte {
	bs := c.b.BlockSize()
	ctrBlock := c.ctrBlock[:bs]
	for i := range ctrBlock {
		ctrBlock[i] = 0
	}
	binary.BigEndian.PutUint64(ctrBlock[:8], c.nonce)
	if bs >= 16 {
		binary.BigEndian.PutUint64(ctrBlock[8:16], counter)
	} else {
		binary.BigEndian.PutUint64(ctrBlock[:8], c.nonce^counter)
	}
	pad := c.padBlock[:bs]
	c.b.Encrypt(pad, ctrBlock)
	return pad
}

// Pad writes the keystream pad for the given starting counter (usually
// the bus address divided by block size) into dst, any length.
func (c *CTR) Pad(dst []byte, counter uint64) {
	bs := c.b.BlockSize()
	for off := 0; off < len(dst); off += bs {
		copy(dst[off:], c.padOne(counter))
		counter++
	}
}

// XOR applies the pad for counter to src, writing dst (encrypt and
// decrypt are the same operation).
func (c *CTR) XOR(dst, src []byte, counter uint64) {
	bs := c.b.BlockSize()
	for off := 0; off < len(src); off += bs {
		pad := c.padOne(counter)
		n := len(src) - off
		if n > bs {
			n = bs
		}
		for i := 0; i < n; i++ {
			dst[off+i] = src[off+i] ^ pad[i]
		}
		counter++
	}
}
