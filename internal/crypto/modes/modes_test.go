package modes

import (
	"bytes"
	stdaes "crypto/aes"
	stdcipher "crypto/cipher"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/des"
)

func newAES(t testing.TB) Block {
	t.Helper()
	b, err := aes.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func newDES(t testing.TB) Block {
	t.Helper()
	b, err := des.New([]byte("8bytekey"))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestECBRoundtrip(t *testing.T) {
	for name, b := range map[string]Block{"aes": newAES(t), "des": newDES(t)} {
		e := NewECB(b)
		pt := bytes.Repeat([]byte("ABCDEFGH"), 8) // 64 bytes, multiple of both
		ct := make([]byte, len(pt))
		e.Encrypt(ct, pt)
		if bytes.Equal(ct, pt) {
			t.Errorf("%s: ciphertext equals plaintext", name)
		}
		back := make([]byte, len(pt))
		e.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Errorf("%s: roundtrip failed", name)
		}
	}
}

// The determinism leak: identical plaintext blocks give identical
// ciphertext blocks under ECB but not under CBC.
func TestECBLeaksCBCHides(t *testing.T) {
	b := newAES(t)
	pt := bytes.Repeat([]byte("0123456789abcdef"), 4) // 4 identical blocks
	ct := make([]byte, len(pt))
	NewECB(b).Encrypt(ct, pt)
	if !bytes.Equal(ct[0:16], ct[16:32]) {
		t.Error("ECB: identical plaintext blocks should encrypt identically")
	}

	iv := make([]byte, 16)
	cbc, err := NewCBC(b, iv)
	if err != nil {
		t.Fatal(err)
	}
	cbc.Encrypt(ct, pt)
	if bytes.Equal(ct[0:16], ct[16:32]) {
		t.Error("CBC: identical plaintext blocks should differ")
	}
}

func TestCBCRoundtrip(t *testing.T) {
	b := newAES(t)
	iv := []byte("iviviviviviviviv")
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		n := 16 * (1 + rng.Intn(16))
		pt := make([]byte, n)
		rng.Read(pt)
		enc, _ := NewCBC(b, iv)
		dec, _ := NewCBC(b, iv)
		ct := make([]byte, n)
		enc.Encrypt(ct, pt)
		back := make([]byte, n)
		dec.Decrypt(back, ct)
		if !bytes.Equal(back, pt) {
			t.Fatalf("trial %d: CBC roundtrip failed", trial)
		}
	}
}

func TestCBCMatchesStdlib(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	ours, err := aes.New(key)
	if err != nil {
		t.Fatal(err)
	}
	std, err := stdaes.NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	pt := make([]byte, 256)
	rng.Read(pt)

	cbc, _ := NewCBC(ours, iv)
	got := make([]byte, len(pt))
	cbc.Encrypt(got, pt)

	want := make([]byte, len(pt))
	stdcipher.NewCBCEncrypter(std, iv).CryptBlocks(want, pt)
	if !bytes.Equal(got, want) {
		t.Error("CBC encryption disagrees with crypto/cipher")
	}
}

func TestCBCBadIV(t *testing.T) {
	if _, err := NewCBC(newAES(t), make([]byte, 8)); err == nil {
		t.Error("NewCBC with wrong IV length: want error")
	}
}

// DecryptFrom with the true previous ciphertext block recovers the chain
// suffix; this is the mechanism behind the one-extra-block jump cost.
func TestCBCDecryptFrom(t *testing.T) {
	b := newAES(t)
	iv := make([]byte, 16)
	pt := make([]byte, 16*8)
	rand.New(rand.NewSource(3)).Read(pt)
	enc, _ := NewCBC(b, iv)
	ct := make([]byte, len(pt))
	enc.Encrypt(ct, pt)

	// Jump to block 3: decrypt blocks 3..7 given ciphertext of block 2.
	dec, _ := NewCBC(b, iv)
	suffix := make([]byte, 16*5)
	dec.DecryptFrom(suffix, ct[16*3:], 3, ct[16*2:16*3])
	if !bytes.Equal(suffix, pt[16*3:]) {
		t.Error("DecryptFrom did not recover chain suffix")
	}

	// From block 0 the IV substitutes for the previous block.
	full := make([]byte, len(pt))
	dec.DecryptFrom(full, ct, 0, nil)
	if !bytes.Equal(full, pt) {
		t.Error("DecryptFrom(0) did not recover full message")
	}
}

func TestBlockCBCRoundtripBothIVModes(t *testing.T) {
	for _, mode := range []IVMode{IVRandom, IVCounter} {
		a := NewBlockCBC(newAES(t), mode, 0xdeadbeef)
		line := make([]byte, 32) // a 32-byte cache block
		rand.New(rand.NewSource(4)).Read(line)
		ct := make([]byte, 32)
		a.EncryptBlockAt(0x8000, ct, line)
		back := make([]byte, 32)
		a.DecryptBlockAt(0x8000, back, ct)
		if !bytes.Equal(back, line) {
			t.Errorf("mode %d: BlockCBC roundtrip failed", mode)
		}
	}
}

// Different addresses must produce different ciphertext for the same
// plaintext (the address is in the IV) — this is what defeats the
// block-relocation observation ECB allows.
func TestBlockCBCAddressBinding(t *testing.T) {
	a := NewBlockCBC(newAES(t), IVRandom, 42)
	line := bytes.Repeat([]byte{0xAA}, 32)
	c1 := make([]byte, 32)
	c2 := make([]byte, 32)
	a.EncryptBlockAt(0x1000, c1, line)
	a.EncryptBlockAt(0x2000, c2, line)
	if bytes.Equal(c1, c2) {
		t.Error("same plaintext at different addresses encrypted identically")
	}
}

// In counter mode, rewriting the same block at the same address yields a
// fresh ciphertext every time; in random mode it repeats — the exposure
// behind the birthday attack.
func TestBlockCBCCounterFreshness(t *testing.T) {
	line := bytes.Repeat([]byte{0x55}, 32)

	ctr := NewBlockCBC(newAES(t), IVCounter, 7)
	c1 := make([]byte, 32)
	c2 := make([]byte, 32)
	ctr.EncryptBlockAt(0x1000, c1, line)
	ctr.EncryptBlockAt(0x1000, c2, line)
	if bytes.Equal(c1, c2) {
		t.Error("IVCounter: rewrite reused ciphertext")
	}
	// The reader must still see the latest write.
	back := make([]byte, 32)
	ctr.DecryptBlockAt(0x1000, back, c2)
	if !bytes.Equal(back, line) {
		t.Error("IVCounter: cannot decrypt latest write")
	}

	rnd := NewBlockCBC(newAES(t), IVRandom, 7)
	rnd.EncryptBlockAt(0x1000, c1, line)
	rnd.EncryptBlockAt(0x1000, c2, line)
	if !bytes.Equal(c1, c2) {
		t.Error("IVRandom: expected deterministic rewrite (that is its weakness)")
	}
}

func TestBlockCBCWithDES(t *testing.T) {
	a := NewBlockCBC(newDES(t), IVCounter, 99)
	line := make([]byte, 32)
	rand.New(rand.NewSource(5)).Read(line)
	ct := make([]byte, 32)
	a.EncryptBlockAt(0x40, ct, line)
	back := make([]byte, 32)
	a.DecryptBlockAt(0x40, back, ct)
	if !bytes.Equal(back, line) {
		t.Error("BlockCBC over DES roundtrip failed")
	}
}

func TestCTRRoundtripAndAddressability(t *testing.T) {
	c := NewCTR(newAES(t), 0x1234)
	rng := rand.New(rand.NewSource(6))
	pt := make([]byte, 160)
	rng.Read(pt)
	ct := make([]byte, len(pt))
	c.XOR(ct, pt, 100)
	back := make([]byte, len(pt))
	c.XOR(back, ct, 100)
	if !bytes.Equal(back, pt) {
		t.Error("CTR roundtrip failed")
	}

	// Random access: decrypting only the tail with the right counter.
	tail := make([]byte, 32)
	c.XOR(tail, ct[128:], 100+128/16)
	if !bytes.Equal(tail, pt[128:]) {
		t.Error("CTR random access failed")
	}
}

func TestCTRPadIsDeterministicPerCounter(t *testing.T) {
	c := NewCTR(newAES(t), 9)
	p1 := make([]byte, 64)
	p2 := make([]byte, 64)
	c.Pad(p1, 5)
	c.Pad(p2, 5)
	if !bytes.Equal(p1, p2) {
		t.Error("pad not deterministic")
	}
	c.Pad(p2, 6)
	if bytes.Equal(p1, p2) {
		t.Error("pads for different counters identical")
	}
}

func TestCTRWithDESBlock(t *testing.T) {
	c := NewCTR(newDES(t), 0xbeef)
	pt := []byte("sixteen byte msg")
	ct := make([]byte, 16)
	c.XOR(ct, pt, 3)
	back := make([]byte, 16)
	c.XOR(back, ct, 3)
	if !bytes.Equal(back, pt) {
		t.Error("CTR over DES roundtrip failed")
	}
}

func TestNonBlockMultiplePanics(t *testing.T) {
	e := NewECB(newAES(t))
	defer func() {
		if recover() == nil {
			t.Error("odd-length ECB input did not panic")
		}
	}()
	e.Encrypt(make([]byte, 17), make([]byte, 17))
}

func TestPropertyRoundtrips(t *testing.T) {
	b := newAES(t)
	a := NewBlockCBC(b, IVCounter, 1)
	ctr := NewCTR(b, 2)
	f := func(data [64]byte, addr uint64) bool {
		ct := make([]byte, 64)
		back := make([]byte, 64)
		a.EncryptBlockAt(addr, ct, data[:])
		a.DecryptBlockAt(addr, back, ct)
		if !bytes.Equal(back, data[:]) {
			return false
		}
		ctr.XOR(ct, data[:], addr)
		ctr.XOR(back, ct, addr)
		return bytes.Equal(back, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
