// Package ds5002 models the bus-encryption microcontrollers of Dallas
// Semiconductor described in the survey's Figure 6: the DS5002FP, whose
// "ciphering by block of 8-bit instructions" was broken by Markus Kuhn's
// cipher instruction search attack, and its successor the DS5240, where
// "the 8-bit based ciphering passes to 64-bit based ciphering" using a
// true DES or 3-DES core.
//
// The DS5002FP's real cipher was proprietary; Kuhn's attack does not
// depend on its internals, only on the structural facts that (a) each
// instruction byte is enciphered independently as a function of its
// address and a stored key, so (b) for a fixed address there are at most
// 256 possible ciphertext bytes, searchable exhaustively. The model here
// preserves exactly those facts (an address-keyed byte substitution
// following the block diagram: address encryptor + data encryptor), so
// the attack in internal/attack reproduces Kuhn's result; see E9.
package ds5002

import (
	"fmt"

	"repro/internal/crypto/des"
)

// DS5002 models the original part: independent 8-bit bus encryption with
// separate address and data scramblers.
type DS5002 struct {
	key uint64
}

// NewDS5002 builds the 8-bit bus cipher from an 8-byte key (the part's
// battery-backed key register).
func NewDS5002(key []byte) (*DS5002, error) {
	if len(key) != 8 {
		return nil, fmt.Errorf("ds5002: key must be 8 bytes, got %d", len(key))
	}
	var k uint64
	for _, b := range key {
		k = k<<8 | uint64(b)
	}
	return &DS5002{key: k}, nil
}

// scrambleAddr models the address encryptor: external memory is filled
// through a key-dependent address permutation, so dumping it in order
// reveals neither code layout nor contents.
func (d *DS5002) scrambleAddr(addr uint16) uint16 {
	x := uint32(addr) ^ uint32(d.key)
	x = (x * 0x9E37) & 0xffff
	x ^= x >> 7
	x = (x * 0x79B9) & 0xffff
	x ^= x >> 9
	// Make it a permutation of the 16-bit space: the steps above are all
	// invertible (odd multiplications mod 2^16, xor-shifts), so x is one.
	return uint16(x)
}

// byteKey derives the per-address byte-substitution key. This is the
// heart of what Kuhn exploited: it depends only on (key, addr), never on
// neighbouring data.
func (d *DS5002) byteKey(addr uint16) byte {
	h := (uint64(addr)+1)*0x2545f4914f6cdd1d ^ d.key
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	return byte(h >> 56)
}

// EncryptByte enciphers one data byte destined for external address addr.
func (d *DS5002) EncryptByte(addr uint16, b byte) byte {
	k := d.byteKey(addr)
	// Keyed byte cipher: xor, nibble swap, add — invertible and fast,
	// structurally matching a tiny substitution network.
	x := b ^ k
	x = x<<4 | x>>4
	return x + k
}

// DecryptByte inverts EncryptByte at addr.
func (d *DS5002) DecryptByte(addr uint16, b byte) byte {
	k := d.byteKey(addr)
	x := b - k
	x = x<<4 | x>>4
	return x ^ k
}

// BusAddress returns the scrambled external address used for CPU address
// addr.
func (d *DS5002) BusAddress(addr uint16) uint16 { return d.scrambleAddr(addr) }

// MemSize is the external SRAM image size: the part's full 16-bit
// address space. Store and Load require images of exactly this size so
// the address scrambler stays collision-free.
const MemSize = 1 << 16

// Store enciphers value into the external memory image mem at the
// scrambled location for addr, as the bootstrap loader does.
func (d *DS5002) Store(mem []byte, addr uint16, value byte) {
	if len(mem) != MemSize {
		panic(fmt.Sprintf("ds5002: memory image must be %d bytes, got %d", MemSize, len(mem)))
	}
	mem[d.scrambleAddr(addr)] = d.EncryptByte(addr, value)
}

// Load fetches and deciphers the byte for CPU address addr from mem.
func (d *DS5002) Load(mem []byte, addr uint16) byte {
	if len(mem) != MemSize {
		panic(fmt.Sprintf("ds5002: memory image must be %d bytes, got %d", MemSize, len(mem)))
	}
	return d.DecryptByte(addr, mem[d.scrambleAddr(addr)])
}

// DS5240 models the successor part: the 8-bit ciphering "passes to
// 64-bit based ciphering" with single DES or 3-DES selected at key load.
type DS5240 struct {
	blk interface {
		BlockSize() int
		Encrypt(dst, src []byte)
		Decrypt(dst, src []byte)
	}
	key uint64 // whitening for address binding
}

// NewDS5240 builds the 64-bit successor. Key length selects the core:
// 8 bytes → single DES, 16/24 bytes → 3-DES, matching the survey's
// "true DES or 3-DES block cipher".
func NewDS5240(key []byte) (*DS5240, error) {
	var k uint64
	for _, b := range key {
		k = k<<8 ^ uint64(b)*0x100000001b3
	}
	switch len(key) {
	case 8:
		c, err := des.New(key)
		if err != nil {
			return nil, err
		}
		return &DS5240{blk: c, key: k}, nil
	case 16, 24:
		c, err := des.NewTriple(key)
		if err != nil {
			return nil, err
		}
		return &DS5240{blk: c, key: k}, nil
	default:
		return nil, fmt.Errorf("ds5240: key must be 8, 16 or 24 bytes, got %d", len(key))
	}
}

// BlockSize returns the bus encryption granule, 8 bytes.
func (d *DS5240) BlockSize() int { return des.BlockSize }

// EncryptBlockAt enciphers one 8-byte block bound to its bus address:
// the plaintext is whitened with an address-derived tweak before the DES
// core so identical instruction words at different addresses differ on
// the bus (the property whose absence doomed simple ECB).
func (d *DS5240) EncryptBlockAt(addr uint64, dst, src []byte) {
	var tmp [des.BlockSize]byte
	tweak := d.tweak(addr)
	for i := 0; i < des.BlockSize; i++ {
		tmp[i] = src[i] ^ tweak[i]
	}
	d.blk.Encrypt(dst, tmp[:])
}

// DecryptBlockAt inverts EncryptBlockAt.
func (d *DS5240) DecryptBlockAt(addr uint64, dst, src []byte) {
	d.blk.Decrypt(dst, src)
	tweak := d.tweak(addr)
	for i := 0; i < des.BlockSize; i++ {
		dst[i] ^= tweak[i]
	}
}

func (d *DS5240) tweak(addr uint64) [des.BlockSize]byte {
	h := (addr/des.BlockSize + 1) * 0x9e3779b97f4a7c15
	h ^= d.key
	h ^= h >> 31
	h *= 0xbf58476d1ce4e5b9
	var t [des.BlockSize]byte
	for i := range t {
		t[i] = byte(h >> (8 * uint(i)))
	}
	return t
}
