package ds5002

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func newPart(t testing.TB) *DS5002 {
	t.Helper()
	d, err := NewDS5002([]byte("battery!"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestKeyValidation(t *testing.T) {
	if _, err := NewDS5002(make([]byte, 4)); err == nil {
		t.Error("short DS5002 key accepted")
	}
	if _, err := NewDS5240(make([]byte, 12)); err == nil {
		t.Error("12-byte DS5240 key accepted")
	}
	for _, n := range []int{8, 16, 24} {
		if _, err := NewDS5240(make([]byte, n)); err != nil {
			t.Errorf("NewDS5240(%d bytes): %v", n, err)
		}
	}
}

func TestByteRoundtrip(t *testing.T) {
	d := newPart(t)
	for addr := 0; addr < 1024; addr++ {
		for _, v := range []byte{0x00, 0x74, 0xFF, 0xA5} {
			ct := d.EncryptByte(uint16(addr), v)
			if d.DecryptByte(uint16(addr), ct) != v {
				t.Fatalf("byte roundtrip failed at addr %#x value %#x", addr, v)
			}
		}
	}
}

func TestByteRoundtripProperty(t *testing.T) {
	d := newPart(t)
	f := func(addr uint16, v byte) bool {
		return d.DecryptByte(addr, d.EncryptByte(addr, v)) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// The structural fact Kuhn exploited: for a fixed address the cipher is a
// byte bijection, so 256 guesses exhaust it.
func TestPerAddressBijection(t *testing.T) {
	d := newPart(t)
	for _, addr := range []uint16{0x0000, 0x1234, 0xFFFF} {
		var seen [256]bool
		for v := 0; v < 256; v++ {
			ct := d.EncryptByte(addr, byte(v))
			if seen[ct] {
				t.Fatalf("addr %#x: not a bijection", addr)
			}
			seen[ct] = true
		}
	}
}

// Address dependence: the same value encrypts differently at (almost all)
// different addresses — dumping memory in order yields gibberish.
func TestAddressDependence(t *testing.T) {
	d := newPart(t)
	same := 0
	const n = 4096
	for addr := 0; addr < n; addr++ {
		if d.EncryptByte(uint16(addr), 0x74) == d.EncryptByte(0, 0x74) {
			same++
		}
	}
	if same > n/64 {
		t.Errorf("value 0x74 repeats its addr-0 ciphertext at %d/%d addresses", same, n)
	}
}

func TestAddressScramblerIsPermutation(t *testing.T) {
	d := newPart(t)
	seen := make([]bool, 1<<16)
	for a := 0; a < 1<<16; a++ {
		s := d.BusAddress(uint16(a))
		if seen[s] {
			t.Fatalf("address scrambler collides at %#x", a)
		}
		seen[s] = true
	}
}

func TestStoreLoad(t *testing.T) {
	d := newPart(t)
	mem := make([]byte, MemSize)
	program := []byte{0x74, 0x2A, 0xF5, 0x90, 0x80, 0xFB}
	for i, b := range program {
		d.Store(mem, uint16(0x100+i), b)
	}
	for i, want := range program {
		if got := d.Load(mem, uint16(0x100+i)); got != want {
			t.Fatalf("Load(%#x) = %#x, want %#x", 0x100+i, got, want)
		}
	}
	// The raw image must not contain the plaintext sequence.
	if bytes.Contains(mem, program) {
		t.Error("plaintext program visible in external memory image")
	}
}

func TestStoreLoadWrongSizePanics(t *testing.T) {
	d := newPart(t)
	defer func() {
		if recover() == nil {
			t.Error("undersized memory image did not panic")
		}
	}()
	d.Store(make([]byte, 1024), 0, 0)
}

func TestDS5240RoundtripAllKeySizes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{8, 16, 24} {
		key := make([]byte, n)
		rng.Read(key)
		d, err := NewDS5240(key)
		if err != nil {
			t.Fatal(err)
		}
		if d.BlockSize() != 8 {
			t.Errorf("BlockSize = %d, want 8", d.BlockSize())
		}
		for trial := 0; trial < 50; trial++ {
			addr := uint64(rng.Intn(1<<20)) &^ 7
			pt := make([]byte, 8)
			rng.Read(pt)
			ct := make([]byte, 8)
			d.EncryptBlockAt(addr, ct, pt)
			back := make([]byte, 8)
			d.DecryptBlockAt(addr, back, ct)
			if !bytes.Equal(back, pt) {
				t.Fatalf("key %d bytes: roundtrip failed at %#x", n, addr)
			}
		}
	}
}

// The successor's fix: identical plaintext blocks at different addresses
// produce different bus ciphertext (address tweak), and the block is 64
// bits so Kuhn's 256-way search is hopeless.
func TestDS5240AddressTweak(t *testing.T) {
	d, _ := NewDS5240(make([]byte, 16))
	pt := []byte("MOV A,#5")
	c1 := make([]byte, 8)
	c2 := make([]byte, 8)
	d.EncryptBlockAt(0x0000, c1, pt)
	d.EncryptBlockAt(0x0008, c2, pt)
	if bytes.Equal(c1, c2) {
		t.Error("DS5240 lacks address binding")
	}
}

func TestDS5240Property(t *testing.T) {
	d, _ := NewDS5240([]byte("0123456789abcdef01234567"))
	f := func(pt [8]byte, blockIdx uint32) bool {
		addr := uint64(blockIdx) * 8
		ct := make([]byte, 8)
		d.EncryptBlockAt(addr, ct, pt[:])
		back := make([]byte, 8)
		d.DecryptBlockAt(addr, back, ct)
		return bytes.Equal(back, pt[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func BenchmarkDS5002Byte(b *testing.B) {
	d, _ := NewDS5002(make([]byte, 8))
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		d.EncryptByte(uint16(i), byte(i))
	}
}

func BenchmarkDS5240Block(b *testing.B) {
	d, _ := NewDS5240(make([]byte, 24))
	src := make([]byte, 8)
	dst := make([]byte, 8)
	b.SetBytes(8)
	for i := 0; i < b.N; i++ {
		d.EncryptBlockAt(uint64(i)*8, dst, src)
	}
}
