package ghash

import (
	"bytes"
	"encoding/binary"
	"encoding/hex"
	"math/rand"
	"testing"
)

// slowMul is an independent GF(2^128) multiplication written straight
// from the NIST SP 800-38D definition: bit-by-bit conditional add with
// shift-reduce by R = 0xe1·x^120. It shares no code with the table
// implementation, so agreement between the two validates both.
func slowMul(x, y [16]byte) [16]byte {
	var z [16]byte
	v := x
	for i := 0; i < 128; i++ {
		if y[i/8]&(0x80>>(i%8)) != 0 {
			for j := range z {
				z[j] ^= v[j]
			}
		}
		lsb := v[15] & 1
		// Right shift the whole 128-bit value by one bit.
		var carry byte
		for j := 0; j < 16; j++ {
			next := v[j] & 1
			v[j] = v[j]>>1 | carry<<7
			carry = next
		}
		if lsb == 1 {
			v[0] ^= 0xe1
		}
	}
	return z
}

// slowSum reimplements Sum's message schedule (blocks, zero-padded
// tail, closing length block) over slowMul.
func slowSum(h []byte, data []byte) [16]byte {
	var hh [16]byte
	copy(hh[:], h)
	var y [16]byte
	absorb := func(block [16]byte) {
		for i := range y {
			y[i] ^= block[i]
		}
		y = slowMul(y, hh)
	}
	n := len(data)
	for len(data) >= 16 {
		var b [16]byte
		copy(b[:], data[:16])
		absorb(b)
		data = data[16:]
	}
	if len(data) > 0 {
		var b [16]byte
		copy(b[:], data)
		absorb(b)
	}
	var lenBlock [16]byte
	binary.BigEndian.PutUint64(lenBlock[8:], uint64(n)*8)
	absorb(lenBlock)
	return y
}

func TestFastMatchesBitwiseReference(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		h := make([]byte, KeySize)
		rng.Read(h)
		k := NewKey(h)
		for _, n := range []int{0, 1, 8, 15, 16, 17, 32, 33, 64, 100} {
			data := make([]byte, n)
			rng.Read(data)
			fast := k.Sum(data)
			slow := slowSum(h, data)
			if fast != slow {
				t.Fatalf("trial %d len %d: fast %x != slow %x (h=%x)", trial, n, fast, slow, h)
			}
		}
	}
}

// The GCM spec's test case 2 intermediate value: GHASH with
// H = 66e94bd4ef8a2c3b884cfa59ca342b2e over a single ciphertext block
// and the standard length block — exactly Sum's framing for a 16-byte
// input with no associated data.
func TestNISTGCMVector(t *testing.T) {
	h, _ := hex.DecodeString("66e94bd4ef8a2c3b884cfa59ca342b2e")
	c, _ := hex.DecodeString("0388dace60b6a392f328c2b971b2fe78")
	want, _ := hex.DecodeString("f38cbb1ad69223dcc3457ae5b6b0f885")
	got := NewKey(h).Sum(c)
	if !bytes.Equal(got[:], want) {
		t.Fatalf("GHASH = %x, want %x", got, want)
	}
}

func TestTagLineBindings(t *testing.T) {
	k := NewKey([]byte("0123456789abcdef"))
	line := make([]byte, 32)
	for i := range line {
		line[i] = byte(i)
	}
	base := k.TagLine(0x1000, 3, line)

	if got := k.TagLine(0x1000, 3, line); got != base {
		t.Fatalf("tag not deterministic: %x vs %x", got, base)
	}
	if got := k.TagLine(0x2000, 3, line); got == base {
		t.Fatalf("tag ignores address (splice would pass)")
	}
	if got := k.TagLine(0x1000, 4, line); got == base {
		t.Fatalf("tag ignores version (replay would pass)")
	}
	mutated := append([]byte(nil), line...)
	mutated[7] ^= 1
	if got := k.TagLine(0x1000, 3, mutated); got == base {
		t.Fatalf("tag ignores content (spoof would pass)")
	}
	if got := NewKey([]byte("fedcba9876543210")).TagLine(0x1000, 3, line); got == base {
		t.Fatalf("tag ignores key")
	}
}

func TestTagLineMatchesReference(t *testing.T) {
	h := []byte("0123456789abcdef")
	k := NewKey(h)
	line := make([]byte, 32)
	rand.New(rand.NewSource(7)).Read(line)
	got := k.TagLine(0xdead0000, 42, line)

	// Reference: prefix block (addr ‖ version) followed by the line,
	// through the bitwise implementation with the same framing. The
	// length block covers only the data bytes, as sumInto does.
	var hh [16]byte
	copy(hh[:], h)
	var y [16]byte
	var prefix [16]byte
	binary.BigEndian.PutUint64(prefix[:8], 0xdead0000)
	binary.BigEndian.PutUint64(prefix[8:], 42)
	for i := range y {
		y[i] ^= prefix[i]
	}
	y = slowMul(y, hh)
	for off := 0; off < 32; off += 16 {
		var b [16]byte
		copy(b[:], line[off:off+16])
		for i := range y {
			y[i] ^= b[i]
		}
		y = slowMul(y, hh)
	}
	var lenBlock [16]byte
	binary.BigEndian.PutUint64(lenBlock[8:], 32*8)
	for i := range y {
		y[i] ^= lenBlock[i]
	}
	y = slowMul(y, hh)

	if !bytes.Equal(got[:], y[:TagBytes]) {
		t.Fatalf("TagLine = %x, reference prefix %x", got, y[:TagBytes])
	}
}

func TestSumZeroAllocs(t *testing.T) {
	k := NewKey([]byte("0123456789abcdef"))
	line := make([]byte, 32)
	if avg := testing.AllocsPerRun(100, func() {
		_ = k.TagLine(0x40, 1, line)
	}); avg != 0 {
		t.Fatalf("TagLine allocates %.1f per call, want 0", avg)
	}
}
