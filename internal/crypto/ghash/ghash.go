// Package ghash implements the Carter–Wegman universal hash over
// GF(2^128) that GCM calls GHASH — the construction that makes per-node
// authentication cheap enough to sit on a cache miss path. A hardware
// GHASH unit is one 128-bit carryless multiplier plus an accumulator
// (a few tens of kilogates), an order of magnitude smaller than a
// SHA-256 datapath, which is why the AEGIS-direction integrity trees
// tag every tree node with a keyed universal hash instead of a full
// cryptographic MAC.
//
// The implementation is the classic 4-bit-window table method: key
// expansion precomputes the 16 multiples of H needed to multiply by one
// hex digit at a time, and the per-block work is 32 table lookups and a
// shift-reduce. Everything is fixed-size value state, so hashing a line
// performs zero heap allocations — the property the simulator's
// 0 allocs/ref hot path requires.
package ghash

import "encoding/binary"

// KeySize is the GHASH key length: one 128-bit field element H.
const KeySize = 16

// TagBytes is the truncated authenticator the memory-authentication
// engines store per node (64-bit tags, the common hardware width).
const TagBytes = 8

// Tag is a truncated GHASH authenticator.
type Tag = [TagBytes]byte

// fieldElement is a GF(2^128) element in GCM's reflected bit order:
// low holds the first 8 bytes of the serialized element, high the rest.
type fieldElement struct {
	low, high uint64
}

// Key is an expanded GHASH key: the per-digit multiple table of H.
type Key struct {
	productTable [16]fieldElement
}

// reductionTable folds the 4 bits shifted out of a field element back
// in, premultiplied by the reduction polynomial x^128 + x^7 + x^2 + x + 1.
var reductionTable = [16]uint16{
	0x0000, 0x1c20, 0x3840, 0x2460, 0x7080, 0x6ca0, 0x48c0, 0x54e0,
	0xe100, 0xfd20, 0xd940, 0xc560, 0x9180, 0x8da0, 0xa9c0, 0xb5e0,
}

// reverseBits reverses a 4-bit index; the product table is stored in
// reversed order so the multiply loop can index by the low digit
// directly.
func reverseBits(i int) int {
	i = i<<2&0xc | i>>2&0x3
	i = i<<1&0xa | i>>1&0x5
	return i
}

// add is addition in GF(2^128): XOR.
func add(x, y fieldElement) fieldElement {
	return fieldElement{x.low ^ y.low, x.high ^ y.high}
}

// double multiplies by x in the reflected representation (the serialized
// msb is the polynomial's constant term, so doubling is a right shift
// with conditional reduction).
func double(x fieldElement) fieldElement {
	msbSet := x.high&1 == 1
	var d fieldElement
	d.high = x.high>>1 | x.low<<63
	d.low = x.low >> 1
	if msbSet {
		d.low ^= 0xe100000000000000
	}
	return d
}

// NewKey expands the 16-byte hash key H.
func NewKey(h []byte) *Key {
	if len(h) != KeySize {
		panic("ghash: key must be exactly 16 bytes")
	}
	x := fieldElement{
		binary.BigEndian.Uint64(h[:8]),
		binary.BigEndian.Uint64(h[8:]),
	}
	k := &Key{}
	k.productTable[reverseBits(1)] = x
	for i := 2; i < 16; i += 2 {
		k.productTable[reverseBits(i)] = double(k.productTable[reverseBits(i/2)])
		k.productTable[reverseBits(i+1)] = add(k.productTable[reverseBits(i)], x)
	}
	return k
}

// mul sets y = y * H, one hex digit of y at a time.
func (k *Key) mul(y *fieldElement) {
	var z fieldElement
	for i := 0; i < 2; i++ {
		word := y.high
		if i == 1 {
			word = y.low
		}
		for j := 0; j < 64; j += 4 {
			msw := z.high & 0xf
			z.high >>= 4
			z.high |= z.low << 60
			z.low >>= 4
			z.low ^= uint64(reductionTable[msw]) << 48
			t := &k.productTable[word&0xf]
			z.low ^= t.low
			z.high ^= t.high
			word >>= 4
		}
	}
	*y = z
}

// absorb folds one 16-byte block into the accumulator: y = (y ⊕ b) · H.
func (k *Key) absorb(y *fieldElement, block []byte) {
	y.low ^= binary.BigEndian.Uint64(block[:8])
	y.high ^= binary.BigEndian.Uint64(block[8:])
	k.mul(y)
}

// Sum computes the full 16-byte GHASH of data, allocation-free. A
// ragged tail is zero-padded, and a final length block closes the
// polynomial, so inputs of different lengths never collide by padding.
//
//repro:hotpath
func (k *Key) Sum(data []byte) [KeySize]byte {
	var y fieldElement
	k.sumInto(&y, data)
	return k.serialize(&y)
}

func (k *Key) sumInto(y *fieldElement, data []byte) {
	n := len(data)
	for len(data) >= KeySize {
		k.absorb(y, data[:KeySize])
		data = data[KeySize:]
	}
	if len(data) > 0 {
		var pad [KeySize]byte
		copy(pad[:], data)
		k.absorb(y, pad[:])
	}
	var lenBlock [KeySize]byte
	binary.BigEndian.PutUint64(lenBlock[8:], uint64(n)*8)
	k.absorb(y, lenBlock[:])
}

func (k *Key) serialize(y *fieldElement) [KeySize]byte {
	var out [KeySize]byte
	binary.BigEndian.PutUint64(out[:8], y.low)
	binary.BigEndian.PutUint64(out[8:], y.high)
	return out
}

// TagLine computes the truncated authenticator the memory engines store
// per protected node: GHASH over a prefix block carrying the address
// and version (the bindings that stop splicing and replay) followed by
// the node's bytes. Allocation-free.
//
//repro:hotpath
func (k *Key) TagLine(addr, version uint64, data []byte) Tag {
	var y fieldElement
	var prefix [KeySize]byte
	binary.BigEndian.PutUint64(prefix[:8], addr)
	binary.BigEndian.PutUint64(prefix[8:], version)
	k.absorb(&y, prefix[:])
	k.sumInto(&y, data)
	full := k.serialize(&y)
	var t Tag
	copy(t[:], full[:TagBytes])
	return t
}
