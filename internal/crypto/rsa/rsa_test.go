package rsa

import (
	"bytes"
	"math/big"
	"math/rand"
	"testing"
)

func genTestKey(t testing.TB, bits int) *PrivateKey {
	t.Helper()
	key, err := GenerateKey(rand.New(rand.NewSource(42)), bits)
	if err != nil {
		t.Fatal(err)
	}
	return key
}

func TestGenerateKeyProperties(t *testing.T) {
	key := genTestKey(t, 512)
	if key.Bits() != 512 {
		t.Errorf("modulus bit length = %d, want 512", key.Bits())
	}
	// e*d ≡ 1 (mod phi) implies m^(ed) = m; spot-check the trapdoor.
	m := big.NewInt(123456789)
	c := new(big.Int).Exp(m, key.E, key.N)
	back := new(big.Int).Exp(c, key.D, key.N)
	if back.Cmp(m) != 0 {
		t.Error("trapdoor property fails")
	}
}

func TestGenerateKeyTooSmall(t *testing.T) {
	if _, err := GenerateKey(rand.New(rand.NewSource(1)), 64); err == nil {
		t.Error("64-bit modulus accepted")
	}
}

func TestEncryptDecryptRoundtrip(t *testing.T) {
	key := genTestKey(t, 512)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		msg := make([]byte, 1+rng.Intn(40))
		rng.Read(msg)
		ct, err := Encrypt(rng, &key.PublicKey, msg)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(ct, msg) && len(msg) > 4 {
			t.Error("ciphertext contains plaintext")
		}
		back, err := Decrypt(key, ct)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(back, msg) {
			t.Fatalf("roundtrip failed for %d-byte message", len(msg))
		}
	}
}

func TestEncryptTooLong(t *testing.T) {
	key := genTestKey(t, 256)
	long := make([]byte, 64)
	if _, err := Encrypt(rand.New(rand.NewSource(1)), &key.PublicKey, long); err == nil {
		t.Error("oversized message accepted")
	}
}

func TestEncryptionIsRandomized(t *testing.T) {
	key := genTestKey(t, 512)
	msg := []byte("session-key-K")
	c1, _ := Encrypt(rand.New(rand.NewSource(1)), &key.PublicKey, msg)
	c2, _ := Encrypt(rand.New(rand.NewSource(2)), &key.PublicKey, msg)
	if bytes.Equal(c1, c2) {
		t.Error("two encryptions with different pads identical")
	}
	// Both still decrypt.
	for _, c := range [][]byte{c1, c2} {
		back, err := Decrypt(key, c)
		if err != nil || !bytes.Equal(back, msg) {
			t.Error("randomized ciphertext failed to decrypt")
		}
	}
}

func TestDecryptRejectsOutOfRange(t *testing.T) {
	key := genTestKey(t, 256)
	big := make([]byte, 64)
	for i := range big {
		big[i] = 0xff
	}
	if _, err := Decrypt(key, big); err == nil {
		t.Error("out-of-range ciphertext accepted")
	}
}

func TestWrongKeyFailsToDecrypt(t *testing.T) {
	k1 := genTestKey(t, 512)
	k2, err := GenerateKey(rand.New(rand.NewSource(99)), 512)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("the secret session key")
	ct, _ := Encrypt(rand.New(rand.NewSource(3)), &k1.PublicKey, msg)
	back, err := Decrypt(k2, ct)
	if err == nil && bytes.Equal(back, msg) {
		t.Error("decryption with the wrong private key recovered the message")
	}
}

func TestSignVerify(t *testing.T) {
	key := genTestKey(t, 512)
	digest := []byte("32-byte-digest-of-the-public-key")
	sig := Sign(key, digest)
	if !Verify(&key.PublicKey, digest, sig) {
		t.Error("valid signature rejected")
	}
	bad := append([]byte{}, sig...)
	bad[0] ^= 1
	if Verify(&key.PublicKey, digest, bad) {
		t.Error("tampered signature accepted")
	}
	if Verify(&key.PublicKey, []byte("other digest"), sig) {
		t.Error("signature verified against the wrong digest")
	}
}

func TestDeterministicKeygen(t *testing.T) {
	a, _ := GenerateKey(rand.New(rand.NewSource(5)), 256)
	b, _ := GenerateKey(rand.New(rand.NewSource(5)), 256)
	if a.N.Cmp(b.N) != 0 || a.D.Cmp(b.D) != 0 {
		t.Error("same seed produced different keys (experiments must be reproducible)")
	}
}

func BenchmarkEncrypt512(b *testing.B) {
	key, _ := GenerateKey(rand.New(rand.NewSource(42)), 512)
	rng := rand.New(rand.NewSource(1))
	msg := []byte("16-byte-sess-key")
	for i := 0; i < b.N; i++ {
		if _, err := Encrypt(rng, &key.PublicKey, msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecrypt512(b *testing.B) {
	key, _ := GenerateKey(rand.New(rand.NewSource(42)), 512)
	ct, _ := Encrypt(rand.New(rand.NewSource(1)), &key.PublicKey, []byte("16-byte-sess-key"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decrypt(key, ct); err != nil {
			b.Fatal(err)
		}
	}
}
