// Package rsa implements textbook RSA over math/big, sufficient to
// exercise the survey's Figure 1 protocol: the chip manufacturer embeds
// a private key Dm in the secure processor's non-volatile memory and
// publishes Em; a software editor wraps the symmetric session key K under
// Em; only the processor can unwrap it.
//
// SECURITY NOTE: this is a modeling artifact, not a production
// cryptosystem — keygen uses a caller-seeded deterministic PRNG so
// experiments are reproducible, the padding is a simple length-framed
// random pad (not OAEP), and nothing is constant-time. The repository's
// purpose is simulating 2005-era bus-encryption architectures, and
// Figure 1 only needs the mathematical trapdoor property.
package rsa

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/big"
	"math/rand"
)

// PublicKey is Em: the modulus and public exponent.
type PublicKey struct {
	N *big.Int
	E *big.Int
}

// PrivateKey is Dm plus its public half.
type PrivateKey struct {
	PublicKey
	D *big.Int
}

// Bits returns the modulus size in bits.
func (k *PublicKey) Bits() int { return k.N.BitLen() }

// GenerateKey produces an RSA keypair with a modulus of the given bit
// size (>= 128; use >= 512 for anything resembling realism) from the
// deterministic source rng.
func GenerateKey(rng *rand.Rand, bits int) (*PrivateKey, error) {
	if bits < 128 {
		return nil, fmt.Errorf("rsa: modulus size %d too small (min 128)", bits)
	}
	e := big.NewInt(65537)
	one := big.NewInt(1)
	for attempt := 0; attempt < 1000; attempt++ {
		p := genPrime(rng, bits/2)
		q := genPrime(rng, bits-bits/2)
		if p.Cmp(q) == 0 {
			continue
		}
		n := new(big.Int).Mul(p, q)
		phi := new(big.Int).Mul(new(big.Int).Sub(p, one), new(big.Int).Sub(q, one))
		d := new(big.Int).ModInverse(e, phi)
		if d == nil {
			continue // e shares a factor with phi; re-draw primes
		}
		return &PrivateKey{PublicKey: PublicKey{N: n, E: e}, D: d}, nil
	}
	return nil, errors.New("rsa: key generation did not converge")
}

// genPrime draws random odd candidates of exactly the requested bit size
// until ProbablyPrime accepts one.
func genPrime(rng *rand.Rand, bits int) *big.Int {
	bytesLen := (bits + 7) / 8
	buf := make([]byte, bytesLen)
	for {
		rng.Read(buf)
		p := new(big.Int).SetBytes(buf)
		// Force exact bit length and oddness; setting the top TWO bits
		// guarantees the product of two such primes reaches the full
		// modulus width (p·q ≥ (3·2^(b-2))² = 9·2^(2b-4) > 2^(2b-1)).
		p.SetBit(p, bits-1, 1)
		p.SetBit(p, bits-2, 1)
		p.SetBit(p, 0, 1)
		p.SetBit(p, bits, 0)
		if p.BitLen() != bits {
			continue
		}
		if p.ProbablyPrime(32) {
			return p
		}
	}
}

// maxPayload returns the largest message Encrypt accepts for key k:
// modulus bytes minus 2 framing bytes minus 8 pad bytes.
func maxPayload(k *PublicKey) int {
	return (k.Bits()+7)/8 - 2 - 8
}

// Encrypt wraps msg under pub. The plaintext is framed as
// [len:2][msg][random pad] so decryption can strip the pad; rng supplies
// the pad bytes (deterministic for reproducible experiments).
func Encrypt(rng *rand.Rand, pub *PublicKey, msg []byte) ([]byte, error) {
	maxLen := maxPayload(pub)
	if len(msg) > maxLen {
		return nil, fmt.Errorf("rsa: message %d bytes exceeds max %d for %d-bit key", len(msg), maxLen, pub.Bits())
	}
	k := (pub.Bits() + 7) / 8
	frame := make([]byte, k-1) // strictly less than the modulus
	binary.BigEndian.PutUint16(frame[:2], uint16(len(msg)))
	copy(frame[2:], msg)
	rng.Read(frame[2+len(msg):])
	m := new(big.Int).SetBytes(frame)
	c := new(big.Int).Exp(m, pub.E, pub.N)
	out := make([]byte, k)
	c.FillBytes(out)
	return out, nil
}

// Decrypt unwraps ct with priv, returning the original message.
func Decrypt(priv *PrivateKey, ct []byte) ([]byte, error) {
	c := new(big.Int).SetBytes(ct)
	if c.Cmp(priv.N) >= 0 {
		return nil, errors.New("rsa: ciphertext out of range")
	}
	m := new(big.Int).Exp(c, priv.D, priv.N)
	k := (priv.Bits() + 7) / 8
	frame := make([]byte, k-1)
	if m.BitLen() > 8*(k-1) {
		// A correctly framed plaintext always fits k-1 bytes; anything
		// larger means the wrong key or a mangled ciphertext.
		return nil, errors.New("rsa: corrupt frame")
	}
	m.FillBytes(frame)
	n := int(binary.BigEndian.Uint16(frame[:2]))
	if n > len(frame)-2 {
		return nil, errors.New("rsa: corrupt frame")
	}
	return append([]byte{}, frame[2:2+n]...), nil
}

// Sign produces a textbook signature over digest (sig = digest^D mod N).
// Used by the Fig. 1 protocol extension where the manufacturer signs the
// public key it distributes.
func Sign(priv *PrivateKey, digest []byte) []byte {
	m := new(big.Int).SetBytes(digest)
	m.Mod(m, priv.N)
	s := new(big.Int).Exp(m, priv.D, priv.N)
	out := make([]byte, (priv.Bits()+7)/8)
	s.FillBytes(out)
	return out
}

// Verify checks a Sign signature against digest.
func Verify(pub *PublicKey, digest, sig []byte) bool {
	s := new(big.Int).SetBytes(sig)
	if s.Cmp(pub.N) >= 0 {
		return false
	}
	m := new(big.Int).Exp(s, pub.E, pub.N)
	d := new(big.Int).SetBytes(digest)
	d.Mod(d, pub.N)
	return m.Cmp(d) == 0
}
