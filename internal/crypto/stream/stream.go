// Package stream implements the stream-cipher machinery of the survey's
// Figure 2a: a keystream generator plus an XOR gate. The survey argues
// stream ciphers suit the processor–memory bus because "the key stream
// generation can be parallelised with external data fetch"; the engine
// models in internal/edu/streamengine exploit exactly that property.
//
// Three generators are provided, in increasing robustness:
//
//   - LFSR: a single Fibonacci linear-feedback shift register. Fast and
//     tiny in hardware, but linear — recoverable from 2·deg output bits
//     (Berlekamp–Massey); kept as the known-weak baseline.
//   - Geffe: three LFSRs nonlinearly combined. Historically proposed,
//     still correlation-attackable; a middle robustness point.
//   - RC4: the byte-oriented software stream cipher the survey names.
//
// All generators implement Keystream, and the address-seeded PadSource
// turns any of them into a random-access pad for bus lines.
package stream

import "fmt"

// Keystream produces a deterministic byte stream from its seed state.
type Keystream interface {
	// Next returns the next keystream byte.
	Next() byte
	// Reset rewinds the generator to a fresh state derived from seed,
	// so the deciphering side can reproduce the stream.
	Reset(seed uint64)
}

// XORKeyStream enciphers (or deciphers — same operation) src into dst
// with ks, Figure 2a's XOR gate.
func XORKeyStream(ks Keystream, dst, src []byte) {
	for i, b := range src {
		dst[i] = b ^ ks.Next()
	}
}

// LFSR is a Fibonacci linear-feedback shift register with a fixed
// primitive feedback polynomial of degree 64
// (x^64 + x^63 + x^61 + x^60 + 1, taps 64,63,61,60).
type LFSR struct {
	state uint64
	taps  uint64
}

// NewLFSR returns a 64-bit LFSR seeded with seed (zero is remapped, as a
// zero LFSR state is a fixed point).
func NewLFSR(seed uint64) *LFSR {
	// Right-shift Fibonacci form: taps 64,63,61,60 sit at bit offsets
	// 0,1,3,4 from the output end, mask 0b11011.
	l := &LFSR{taps: 0x1b}
	l.Reset(seed)
	return l
}

// Reset reseeds the register.
func (l *LFSR) Reset(seed uint64) {
	if seed == 0 {
		seed = 0x1 // avoid the degenerate all-zero state
	}
	l.state = seed
}

// Step advances one bit and returns it.
func (l *LFSR) Step() byte {
	out := byte(l.state & 1)
	// Parity of tapped bits becomes the new MSB.
	fb := popcountParity(l.state & l.taps)
	l.state = l.state>>1 | uint64(fb)<<63
	return out
}

func popcountParity(x uint64) byte {
	x ^= x >> 32
	x ^= x >> 16
	x ^= x >> 8
	x ^= x >> 4
	x ^= x >> 2
	x ^= x >> 1
	return byte(x & 1)
}

// Next assembles eight steps into a keystream byte.
func (l *LFSR) Next() byte {
	var b byte
	for i := 0; i < 8; i++ {
		b = b<<1 | l.Step()
	}
	return b
}

// Geffe combines three LFSRs with the Geffe function
// f(a,b,c) = (a AND b) XOR (NOT a AND c): LFSR a selects between b and c.
type Geffe struct {
	a, b, c *LFSR
}

// NewGeffe builds the three-register generator; the three internal seeds
// are derived from seed so a single 64-bit secret drives the unit.
func NewGeffe(seed uint64) *Geffe {
	g := &Geffe{a: NewLFSR(0), b: NewLFSR(0), c: NewLFSR(0)}
	g.Reset(seed)
	return g
}

// Reset reseeds all three registers with distinct mixes of seed.
func (g *Geffe) Reset(seed uint64) {
	g.a.Reset(seed*0x9e3779b97f4a7c15 + 1)
	g.b.Reset(seed*0xbf58476d1ce4e5b9 + 2)
	g.c.Reset(seed*0x94d049bb133111eb + 3)
}

// Next returns the next combined keystream byte.
func (g *Geffe) Next() byte {
	var out byte
	for i := 0; i < 8; i++ {
		a := g.a.Step()
		b := g.b.Step()
		c := g.c.Step()
		out = out<<1 | (a&b | (1-a)&c)
	}
	return out
}

// RC4 is the classic byte-oriented stream cipher named in §1 of the
// survey. Kept faithful to the original key-scheduling and PRGA; like
// everything in this repository it is for modeling, not for new designs.
type RC4 struct {
	s    [256]byte
	i, j byte
	key  []byte
	// seedKey is preallocated scratch for Reset's per-seed re-key, so
	// address-seeded pad derivation stays allocation-free.
	seedKey []byte
}

// NewRC4 builds an RC4 generator from key (1–256 bytes).
func NewRC4(key []byte) (*RC4, error) {
	if len(key) == 0 || len(key) > 256 {
		return nil, fmt.Errorf("stream: RC4 key length %d out of range [1,256]", len(key))
	}
	r := &RC4{key: append([]byte{}, key...), seedKey: make([]byte, len(key))}
	r.schedule()
	return r, nil
}

func (r *RC4) schedule() {
	for i := 0; i < 256; i++ {
		r.s[i] = byte(i)
	}
	var j byte
	for i := 0; i < 256; i++ {
		j += r.s[i] + r.key[i%len(r.key)]
		r.s[i], r.s[j] = r.s[j], r.s[i]
	}
	r.i, r.j = 0, 0
}

// Next returns the next PRGA byte.
func (r *RC4) Next() byte {
	r.i++
	r.j += r.s[r.i]
	r.s[r.i], r.s[r.j] = r.s[r.j], r.s[r.i]
	return r.s[r.s[r.i]+r.s[r.j]]
}

// Reset re-keys the cipher with the original key XOR-folded with seed;
// this gives RC4 the address-seeded interface the pad source needs.
func (r *RC4) Reset(seed uint64) {
	copy(r.seedKey, r.key)
	for i := 0; i < 8 && i < len(r.seedKey); i++ {
		r.seedKey[i] ^= byte(seed >> (8 * uint(i)))
	}
	saved := r.key
	r.key = r.seedKey
	r.schedule()
	r.key = saved
}

// PadSource derives a random-access pad from a generator factory: the
// pad for bus line address A is the first lineSize bytes of the stream
// seeded with secret‖A. This is what both the Fig. 7b cache-side EDU and
// the stream EDU between cache and memory controller consume, because a
// bus engine cannot afford a sequential stream — accesses arrive in
// address order, not time order.
type PadSource struct {
	secret   uint64
	lineSize int
	gen      Keystream
}

// NewPadSource builds a pad source over gen with the given secret and
// line size in bytes.
func NewPadSource(gen Keystream, secret uint64, lineSize int) *PadSource {
	if lineSize <= 0 {
		panic("stream: non-positive line size")
	}
	return &PadSource{secret: secret, lineSize: lineSize, gen: gen}
}

// LineSize returns the pad granularity in bytes.
func (p *PadSource) LineSize() int { return p.lineSize }

// Pad writes the pad for the line containing addr into dst
// (len(dst) == LineSize()). The same (secret, line) always produces the
// same pad — the determinism the deciphering side depends on, and also
// the reuse the survey warns requires protecting the keystream store.
func (p *PadSource) Pad(dst []byte, addr uint64) {
	if len(dst) != p.lineSize {
		panic(fmt.Sprintf("stream: pad buffer %d != line size %d", len(dst), p.lineSize))
	}
	line := addr / uint64(p.lineSize)
	p.gen.Reset(p.secret ^ mix(line))
	for i := range dst {
		dst[i] = p.gen.Next()
	}
}

// XORLine applies the pad for addr to src into dst.
func (p *PadSource) XORLine(dst, src []byte, addr uint64) {
	pad := make([]byte, p.lineSize)
	p.Pad(pad, addr)
	for i := range src {
		dst[i] = src[i] ^ pad[i]
	}
}

// mix is a 64-bit finalizer (splitmix64) so adjacent line numbers seed
// well-separated generator states.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
	x = (x ^ x>>27) * 0x94d049bb133111eb
	return x ^ x>>31
}
