package stream

import (
	"bytes"
	stdrc4 "crypto/rc4"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLFSRDeterministicAndNonTrivial(t *testing.T) {
	a := NewLFSR(12345)
	b := NewLFSR(12345)
	out := make([]byte, 64)
	out2 := make([]byte, 64)
	for i := range out {
		out[i] = a.Next()
		out2[i] = b.Next()
	}
	if !bytes.Equal(out, out2) {
		t.Error("same seed gave different streams")
	}
	allSame := true
	for _, v := range out[1:] {
		if v != out[0] {
			allSame = false
			break
		}
	}
	if allSame {
		t.Error("LFSR output is constant")
	}
}

func TestLFSRZeroSeedIsRemapped(t *testing.T) {
	l := NewLFSR(0)
	var acc byte
	for i := 0; i < 32; i++ {
		acc |= l.Next()
	}
	if acc == 0 {
		t.Error("zero seed produced the all-zero fixed point")
	}
}

func TestLFSRPeriodIsLong(t *testing.T) {
	// A 64-bit maximal LFSR must not revisit its start state quickly.
	l := NewLFSR(777)
	start := l.state
	for i := 0; i < 100000; i++ {
		l.Step()
		if l.state == start {
			t.Fatalf("LFSR state repeated after %d steps", i+1)
		}
	}
}

func TestGeffeDiffersFromComponents(t *testing.T) {
	g := NewGeffe(42)
	l := NewLFSR(42)
	same := 0
	for i := 0; i < 256; i++ {
		if g.Next() == l.Next() {
			same++
		}
	}
	if same > 64 { // far more agreement than chance would give
		t.Errorf("Geffe output suspiciously close to plain LFSR: %d/256 equal bytes", same)
	}
}

func TestGeffeResetReproduces(t *testing.T) {
	g := NewGeffe(9)
	first := make([]byte, 32)
	for i := range first {
		first[i] = g.Next()
	}
	g.Reset(9)
	second := make([]byte, 32)
	for i := range second {
		second[i] = g.Next()
	}
	if !bytes.Equal(first, second) {
		t.Error("Reset did not reproduce the stream")
	}
}

func TestRC4MatchesStdlib(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		key := make([]byte, 5+rng.Intn(27))
		rng.Read(key)
		ours, err := NewRC4(key)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := stdrc4.NewCipher(key)
		if err != nil {
			t.Fatal(err)
		}
		pt := make([]byte, 128)
		rng.Read(pt)
		want := make([]byte, 128)
		ref.XORKeyStream(want, pt)
		got := make([]byte, 128)
		XORKeyStream(ours, got, pt)
		if !bytes.Equal(got, want) {
			t.Fatalf("RC4 disagrees with crypto/rc4 for key %x", key)
		}
	}
}

func TestRC4KeyLengthValidation(t *testing.T) {
	if _, err := NewRC4(nil); err == nil {
		t.Error("empty key accepted")
	}
	if _, err := NewRC4(make([]byte, 257)); err == nil {
		t.Error("257-byte key accepted")
	}
}

func TestRC4ResetIsSeedDependent(t *testing.T) {
	r, _ := NewRC4([]byte("buskey"))
	r.Reset(1)
	a := make([]byte, 16)
	for i := range a {
		a[i] = r.Next()
	}
	r.Reset(2)
	b := make([]byte, 16)
	for i := range b {
		b[i] = r.Next()
	}
	if bytes.Equal(a, b) {
		t.Error("different seeds gave identical streams")
	}
	r.Reset(1)
	c := make([]byte, 16)
	for i := range c {
		c[i] = r.Next()
	}
	if !bytes.Equal(a, c) {
		t.Error("same seed did not reproduce stream")
	}
}

func TestXORKeyStreamRoundtrip(t *testing.T) {
	for name, mk := range map[string]func() Keystream{
		"lfsr":  func() Keystream { return NewLFSR(5) },
		"geffe": func() Keystream { return NewGeffe(5) },
		"rc4": func() Keystream {
			r, _ := NewRC4([]byte("key!"))
			return r
		},
	} {
		enc := mk()
		dec := mk()
		pt := []byte("the processor-memory bus is the weakest point of the system")
		ct := make([]byte, len(pt))
		XORKeyStream(enc, ct, pt)
		if bytes.Equal(ct, pt) {
			t.Errorf("%s: ciphertext equals plaintext", name)
		}
		back := make([]byte, len(ct))
		XORKeyStream(dec, back, ct)
		if !bytes.Equal(back, pt) {
			t.Errorf("%s: roundtrip failed", name)
		}
	}
}

func TestPadSourceProperties(t *testing.T) {
	p := NewPadSource(NewGeffe(0), 0x5ec7e7, 32)

	// Determinism per line.
	a := make([]byte, 32)
	b := make([]byte, 32)
	p.Pad(a, 0x1000)
	p.Pad(b, 0x1000)
	if !bytes.Equal(a, b) {
		t.Error("pad for same line not deterministic")
	}

	// Any address inside the same line selects the same pad.
	p.Pad(b, 0x101f)
	if !bytes.Equal(a, b) {
		t.Error("addresses within a line must share the pad")
	}

	// Adjacent lines differ.
	p.Pad(b, 0x1020)
	if bytes.Equal(a, b) {
		t.Error("adjacent lines share a pad")
	}
}

func TestPadSourceXORLineRoundtrip(t *testing.T) {
	p := NewPadSource(NewLFSR(0), 777, 16)
	f := func(data [16]byte, addr uint64) bool {
		ct := make([]byte, 16)
		p.XORLine(ct, data[:], addr)
		back := make([]byte, 16)
		p.XORLine(back, ct, addr)
		return bytes.Equal(back, data[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPadSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero line size did not panic")
		}
	}()
	NewPadSource(NewLFSR(1), 1, 0)
}

func TestPadSourceWrongBufferPanics(t *testing.T) {
	p := NewPadSource(NewLFSR(1), 1, 16)
	defer func() {
		if recover() == nil {
			t.Error("wrong pad buffer size did not panic")
		}
	}()
	p.Pad(make([]byte, 8), 0)
}

// Crude balance check: keystreams should be roughly half ones.
func TestKeystreamBitBalance(t *testing.T) {
	for name, ks := range map[string]Keystream{
		"lfsr":  NewLFSR(31337),
		"geffe": NewGeffe(31337),
	} {
		ones := 0
		const n = 4096
		for i := 0; i < n; i++ {
			b := ks.Next()
			for j := 0; j < 8; j++ {
				ones += int(b >> uint(j) & 1)
			}
		}
		total := n * 8
		if ones < total*45/100 || ones > total*55/100 {
			t.Errorf("%s: bit balance off: %d/%d ones", name, ones, total)
		}
	}
}

func BenchmarkGeffePad(b *testing.B) {
	p := NewPadSource(NewGeffe(0), 1, 32)
	pad := make([]byte, 32)
	b.SetBytes(32)
	for i := 0; i < b.N; i++ {
		p.Pad(pad, uint64(i)*32)
	}
}

func BenchmarkRC4(b *testing.B) {
	r, _ := NewRC4([]byte("benchkey"))
	b.SetBytes(1)
	for i := 0; i < b.N; i++ {
		r.Next()
	}
}
