// Package bench records the repository's performance trajectory: it
// parses `go test -bench` output into structured results, snapshots
// them as schema-versioned BENCH_<n>.json files with host metadata,
// and diffs a fresh run against a recorded snapshot so a perf
// regression fails loudly instead of compounding silently across PRs.
//
// The snapshot sequence (BENCH_1.json, BENCH_2.json, ...) is the
// perf-trajectory record ROADMAP.md calls for: each optimization PR
// checks in the next snapshot, and CI re-measures against the latest.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Schema is the snapshot format version; bump on incompatible change.
const Schema = 1

// Result is one parsed benchmark line. Metrics maps unit → value
// exactly as printed ("ns/op", "B/op", "allocs/op", plus any
// b.ReportMetric units like "ns/ref" or "refs/s").
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// NsPerOp returns the ns/op metric (0 if absent).
func (r Result) NsPerOp() float64 { return r.Metrics["ns/op"] }

// AllocsPerOp returns the allocs/op metric (0 if absent).
func (r Result) AllocsPerOp() float64 { return r.Metrics["allocs/op"] }

// Host is the machine fingerprint stored with a snapshot — numbers are
// only comparable on like hardware, so the diff warns when it differs.
type Host struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	NumCPU    int    `json:"num_cpu"`
}

// Snapshot is one recorded benchmark run.
type Snapshot struct {
	Schema     int      `json:"schema"`
	CreatedAt  string   `json:"created_at"`
	Host       Host     `json:"host"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches one benchmark result line: name, iteration count,
// then (value, unit) pairs.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

// ParseBenchOutput extracts benchmark results from `go test -bench`
// output. Non-benchmark lines (logs, PASS, ok) are skipped; the -N
// GOMAXPROCS suffix is stripped from names so snapshots diff across
// machines with different core counts.
func ParseBenchOutput(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{
			Name:       trimProcSuffix(m[1]),
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench: bad value %q on line %q", fields[i], sc.Text())
			}
			res.Metrics[fields[i+1]] = v
		}
		if len(res.Metrics) == 0 {
			continue
		}
		out = append(out, res)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// trimProcSuffix drops the trailing -<gomaxprocs> from a benchmark name.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// Regression is one benchmark that got materially worse.
type Regression struct {
	Name string
	// Metric names what regressed ("ns/op" or "allocs/op").
	Metric   string
	Old, New float64
	// Ratio is New/Old (allocs 0→n reports +Inf semantics as Ratio 0
	// with the absolute values carrying the story).
	Ratio float64
}

func (r Regression) String() string {
	if r.Metric == "allocs/op" {
		return fmt.Sprintf("%s: allocs/op %g -> %g (allocation-free contract broken)", r.Name, r.Old, r.New)
	}
	return fmt.Sprintf("%s: %s %.4g -> %.4g (%+.1f%%)", r.Name, r.Metric, r.Old, r.New, 100*(r.Ratio-1))
}

// Diff compares a new snapshot against a recorded one. A benchmark
// regresses when its ns/op grows by more than threshold (0.20 = 20%),
// or when a formerly allocation-free benchmark starts allocating —
// that one has no tolerance: 0 allocs/op is a contract, not a number.
// Benchmarks present in only one snapshot are ignored (suites grow).
func Diff(old, cur Snapshot, threshold float64) []Regression {
	prev := make(map[string]Result, len(old.Benchmarks))
	for _, r := range old.Benchmarks {
		prev[r.Name] = r
	}
	var regs []Regression
	for _, now := range cur.Benchmarks {
		was, ok := prev[now.Name]
		if !ok {
			continue
		}
		if was.NsPerOp() > 0 && now.NsPerOp() > was.NsPerOp()*(1+threshold) {
			regs = append(regs, Regression{
				Name: now.Name, Metric: "ns/op",
				Old: was.NsPerOp(), New: now.NsPerOp(),
				Ratio: now.NsPerOp() / was.NsPerOp(),
			})
		}
		if was.AllocsPerOp() == 0 && now.AllocsPerOp() > 0 {
			if _, tracked := was.Metrics["allocs/op"]; tracked {
				regs = append(regs, Regression{
					Name: now.Name, Metric: "allocs/op",
					Old: 0, New: now.AllocsPerOp(),
				})
			}
		}
	}
	sort.Slice(regs, func(i, j int) bool { return regs[i].Name < regs[j].Name })
	return regs
}

// snapPattern matches snapshot file names and captures the sequence
// number.
var snapPattern = regexp.MustCompile(`^BENCH_(\d+)\.json$`)

// LatestPath returns the highest-numbered BENCH_<n>.json in dir ("" if
// none exist).
func LatestPath(dir string) (string, error) {
	path, _, err := scanSnapshots(dir)
	return path, err
}

// NextPath returns the path the next snapshot should be written to:
// BENCH_<latest+1>.json (BENCH_1.json in a fresh directory).
func NextPath(dir string) (string, error) {
	_, maxN, err := scanSnapshots(dir)
	if err != nil {
		return "", err
	}
	return filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", maxN+1)), nil
}

func scanSnapshots(dir string) (latest string, maxN int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return "", 0, err
	}
	for _, e := range entries {
		m := snapPattern.FindStringSubmatch(e.Name())
		if m == nil {
			continue
		}
		n, _ := strconv.Atoi(m[1])
		if n > maxN {
			maxN = n
			latest = filepath.Join(dir, e.Name())
		}
	}
	return latest, maxN, nil
}
