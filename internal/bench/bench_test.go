package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: whatever
BenchmarkHotLoopPlaintext-8   	 3546012	       339.4 ns/op	      2946823 refs/s	       0 B/op	       0 allocs/op
BenchmarkHotLoopAegis-8       	 2000000	       501.0 ns/op	      1996007 refs/s	       0 B/op	       0 allocs/op
BenchmarkAuthTreeVerifiedRun-8	     100	  11062342 ns/op	       553.1 ns/ref	       0 B/op	       0 allocs/op
--- BENCH: BenchmarkE1SurveyTable
    bench_test.go:40: some log line
PASS
ok  	repro	12.3s
`

func parseSample(t *testing.T) []Result {
	t.Helper()
	rs, err := ParseBenchOutput(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	return rs
}

func TestParseBenchOutput(t *testing.T) {
	rs := parseSample(t)
	if len(rs) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(rs), rs)
	}
	r := rs[0]
	if r.Name != "BenchmarkHotLoopPlaintext" {
		t.Errorf("name = %q (want proc suffix stripped)", r.Name)
	}
	if r.Iterations != 3546012 {
		t.Errorf("iterations = %d", r.Iterations)
	}
	if r.NsPerOp() != 339.4 {
		t.Errorf("ns/op = %g", r.NsPerOp())
	}
	if r.Metrics["refs/s"] != 2946823 {
		t.Errorf("refs/s = %g", r.Metrics["refs/s"])
	}
	if r.AllocsPerOp() != 0 {
		t.Errorf("allocs/op = %g", r.AllocsPerOp())
	}
	if rs[2].Metrics["ns/ref"] != 553.1 {
		t.Errorf("ns/ref = %g", rs[2].Metrics["ns/ref"])
	}
}

func TestDiffFlagsRegressions(t *testing.T) {
	old := Snapshot{Schema: Schema, Benchmarks: parseSample(t)}

	// Same numbers: clean.
	if regs := Diff(old, old, 0.20); len(regs) != 0 {
		t.Fatalf("self-diff regressed: %v", regs)
	}

	// Inject a 2x slowdown on one benchmark and an allocation on
	// another; both must be flagged, the untouched one must not.
	cur := Snapshot{Schema: Schema, Benchmarks: parseSample(t)}
	cur.Benchmarks[0].Metrics["ns/op"] *= 2
	cur.Benchmarks[1].Metrics["allocs/op"] = 3

	regs := Diff(old, cur, 0.20)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	byName := map[string]Regression{}
	for _, r := range regs {
		byName[r.Name] = r
	}
	slow := byName["BenchmarkHotLoopPlaintext"]
	if slow.Metric != "ns/op" || slow.Ratio < 1.9 || slow.Ratio > 2.1 {
		t.Errorf("slowdown regression = %+v", slow)
	}
	alloc := byName["BenchmarkHotLoopAegis"]
	if alloc.Metric != "allocs/op" || alloc.New != 3 {
		t.Errorf("alloc regression = %+v", alloc)
	}
	if !strings.Contains(alloc.String(), "allocation-free contract") {
		t.Errorf("alloc regression message: %s", alloc)
	}

	// Inside the threshold: not a regression.
	mild := Snapshot{Schema: Schema, Benchmarks: parseSample(t)}
	mild.Benchmarks[0].Metrics["ns/op"] *= 1.1
	if regs := Diff(old, mild, 0.20); len(regs) != 0 {
		t.Errorf("10%% drift flagged at 20%% threshold: %v", regs)
	}
}

func TestSnapshotSequence(t *testing.T) {
	dir := t.TempDir()

	latest, err := LatestPath(dir)
	if err != nil || latest != "" {
		t.Fatalf("empty dir: latest=%q err=%v", latest, err)
	}
	next, err := NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_1.json" {
		t.Fatalf("first snapshot path = %q, err=%v", next, err)
	}

	snap := Snapshot{Schema: Schema, CreatedAt: "2026-08-07T00:00:00Z", Benchmarks: parseSample(t)}
	b, _ := json.Marshal(snap)
	for _, name := range []string{"BENCH_1.json", "BENCH_2.json", "BENCH_10.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	latest, err = LatestPath(dir)
	if err != nil || filepath.Base(latest) != "BENCH_10.json" {
		t.Fatalf("latest = %q, err=%v", latest, err)
	}
	next, err = NextPath(dir)
	if err != nil || filepath.Base(next) != "BENCH_11.json" {
		t.Fatalf("next = %q, err=%v", next, err)
	}

	// Round-trip: a written snapshot reads back identically.
	var back Snapshot
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != Schema || len(back.Benchmarks) != 3 {
		t.Errorf("round-trip snapshot = %+v", back)
	}
	if back.Benchmarks[0].NsPerOp() != 339.4 {
		t.Errorf("round-trip ns/op = %g", back.Benchmarks[0].NsPerOp())
	}
}
