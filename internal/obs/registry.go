package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
)

// Registry is a fixed set of named metrics. Registration happens once,
// at setup time, before the instrumented run starts (that is what keeps
// the hot path allocation-free: publishers hold *Counter/*Gauge/
// *Histogram pointers and never touch the registry); readers snapshot
// it concurrently at any time. Registration is idempotent — asking for
// an existing name returns the same metric, so independent subsystems
// sharing a registry accumulate into shared cells, which is exactly
// what a campaign of many SoC runs wants.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter registers (or fetches) the named counter. A nil registry
// returns nil — the no-op sink — so optional instrumentation needs no
// branching at the caller.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "counter")
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge registers (or fetches) the named gauge; nil registry → nil.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "gauge")
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram registers (or fetches) the named histogram; nil → nil.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkName(name, "histogram")
	h := r.histograms[name]
	if h == nil {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// checkName panics if name is already registered under a different
// metric kind — a programming error (two subsystems claiming one name
// as different types), caught at setup time, never during a run.
func (r *Registry) checkName(name, kind string) {
	if _, ok := r.counters[name]; ok && kind != "counter" {
		panic(fmt.Sprintf("obs: %q already registered as a counter", name))
	}
	if _, ok := r.gauges[name]; ok && kind != "gauge" {
		panic(fmt.Sprintf("obs: %q already registered as a gauge", name))
	}
	if _, ok := r.histograms[name]; ok && kind != "histogram" {
		panic(fmt.Sprintf("obs: %q already registered as a histogram", name))
	}
}

// Snapshot is a point-in-time copy of every registered metric, ready
// for JSON. Counters and gauges are plain numbers; histograms carry
// their bucket breakdown.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures the registry. Values are read metric by metric —
// the snapshot is not a single atomic cut across metrics, which is fine
// for progress/monitoring (each value is individually consistent).
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]uint64, len(r.counters))
		for n, c := range r.counters {
			s.Counters[n] = c.Load()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for n, g := range r.gauges {
			s.Gauges[n] = g.Load()
		}
	}
	if len(r.histograms) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.histograms))
		for n, h := range r.histograms {
			s.Histograms[n] = h.Snapshot()
		}
	}
	return s
}

// Names lists every registered metric name, sorted — the inventory the
// docs and tests pin.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// WriteJSON writes the snapshot as indented JSON (map keys sort, so
// output is stable for a given state).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Handler serves the JSON snapshot — the /metrics endpoint of the
// sweep's resident HTTP seam (expvar-style: one GET, whole state).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		if err := r.WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
