package obs

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestHistogramBucketBoundaries audits the power-of-two bucketing at
// every edge: each boundary value must land in exactly one bucket
// whose [Lo, Hi] range contains it.
func TestHistogramBucketBoundaries(t *testing.T) {
	values := []uint64{0, 1, 2, 3, 4, 7, 8, 15, 16}
	for exp := 5; exp <= 63; exp++ {
		v := uint64(1) << exp
		values = append(values, v-1, v, v+1)
	}
	values = append(values, ^uint64(0)-1, ^uint64(0))
	for _, v := range values {
		var h Histogram
		h.Observe(v)
		s := h.Snapshot()
		if s.Count != 1 || s.Sum != v {
			t.Fatalf("observe(%d): count=%d sum=%d", v, s.Count, s.Sum)
		}
		if len(s.Buckets) != 1 {
			t.Fatalf("observe(%d): %d buckets materialized: %+v", v, len(s.Buckets), s.Buckets)
		}
		b := s.Buckets[0]
		if v < b.Lo || v > b.Hi {
			t.Errorf("observe(%d): landed in [%d, %d]", v, b.Lo, b.Hi)
		}
		if b.Count != 1 {
			t.Errorf("observe(%d): bucket count %d", v, b.Count)
		}
	}
}

// TestHistogramAdjacentBucketsMeet checks the bucket lattice is exact:
// consecutive materialized buckets must tile the range with no gap and
// no overlap (Hi+1 == next Lo).
func TestHistogramAdjacentBucketsMeet(t *testing.T) {
	var h Histogram
	for exp := 0; exp <= 63; exp++ {
		h.Observe(uint64(1) << exp)
	}
	h.Observe(0)
	s := h.Snapshot()
	if len(s.Buckets) != 65 {
		t.Fatalf("%d buckets, want all 65", len(s.Buckets))
	}
	for i := 1; i < len(s.Buckets); i++ {
		prev, cur := s.Buckets[i-1], s.Buckets[i]
		if prev.Hi+1 != cur.Lo {
			t.Errorf("gap/overlap between [%d,%d] and [%d,%d]", prev.Lo, prev.Hi, cur.Lo, cur.Hi)
		}
	}
	if top := s.Buckets[len(s.Buckets)-1]; top.Hi != ^uint64(0) {
		t.Errorf("top bucket Hi = %d, want max uint64", top.Hi)
	}
}

// TestHistogramSnapshotNotTorn pins the concurrent-read invariant the
// fixed load order provides: a snapshot taken mid-publish may miss an
// in-flight observation's bucket, but it must never show more bucketed
// observations than Count (buckets read first, count read last, while
// Observe writes count first and the bucket last). Run under -race in
// CI.
func TestHistogramSnapshotNotTorn(t *testing.T) {
	var h Histogram
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			v := seed
			for !stop.Load() {
				v = v*6364136223846793005 + 1442695040888963407
				h.Observe(v >> (v % 64))
			}
		}(uint64(w + 1))
	}
	for i := 0; i < 3000; i++ {
		s := h.Snapshot()
		var bucketed uint64
		for _, b := range s.Buckets {
			bucketed += b.Count
		}
		if bucketed > s.Count {
			t.Fatalf("torn snapshot: %d bucketed observations, count %d", bucketed, s.Count)
		}
	}
	stop.Store(true)
	wg.Wait()
	s := h.Snapshot()
	var bucketed uint64
	for _, b := range s.Buckets {
		bucketed += b.Count
	}
	if bucketed != s.Count {
		t.Errorf("quiescent snapshot inconsistent: %d bucketed, count %d", bucketed, s.Count)
	}
}

// TestRegistrySnapshotDuringHotLoop snapshots the whole registry —
// counters, gauges and histograms, the /metrics read path — while
// publisher goroutines run the hot-path publish pattern, asserting
// per-cell monotonicity and the histogram invariant on every read.
func TestRegistrySnapshotDuringHotLoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hot.refs")
	g := r.Gauge("hot.busy")
	h := r.Histogram("hot.cycles")
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := uint64(1); !stop.Load(); i++ {
				g.Add(1)
				c.Inc()
				h.Observe(i % (1 << 20))
				g.Add(-1)
			}
		}()
	}
	var lastCount uint64
	for i := 0; i < 2000; i++ {
		snap := r.Snapshot()
		if snap.Counters["hot.refs"] < lastCount {
			t.Fatalf("counter went backwards: %d after %d", snap.Counters["hot.refs"], lastCount)
		}
		lastCount = snap.Counters["hot.refs"]
		if busy := snap.Gauges["hot.busy"]; busy < 0 || busy > 4 {
			t.Fatalf("gauge outside [0,4]: %d", busy)
		}
		hs := snap.Histograms["hot.cycles"]
		var bucketed uint64
		for _, b := range hs.Buckets {
			bucketed += b.Count
		}
		if bucketed > hs.Count {
			t.Fatalf("torn histogram in registry snapshot: %d bucketed, count %d", bucketed, hs.Count)
		}
	}
	stop.Store(true)
	wg.Wait()
}
