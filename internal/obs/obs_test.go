package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	if got := c.Load(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if got := g.Load(); got != 4 {
		t.Errorf("gauge = %d, want 4", got)
	}
}

// Nil metrics are no-op sinks: uninstrumented code paths publish into
// them unconditionally, so this is the contract the hot path relies on.
func TestNilMetricsAreNoOps(t *testing.T) {
	var c *Counter
	c.Inc()
	c.Add(5)
	if c.Load() != 0 {
		t.Error("nil counter loaded nonzero")
	}
	var g *Gauge
	g.Set(3)
	g.Add(1)
	if g.Load() != 0 {
		t.Error("nil gauge loaded nonzero")
	}
	var h *Histogram
	h.Observe(9)
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 {
		t.Error("nil histogram recorded")
	}
	if s := h.Snapshot(); s.Count != 0 || len(s.Buckets) != 0 {
		t.Error("nil histogram snapshot non-empty")
	}
	var r *Registry
	if r.Counter("x") != nil || r.Gauge("y") != nil || r.Histogram("z") != nil {
		t.Error("nil registry returned non-nil metric")
	}
	if n := r.Names(); n != nil {
		t.Errorf("nil registry names = %v", n)
	}
}

// Publishing must be allocation-free: the SoC hot loop bumps these per
// reference while holding the 0 allocs/ref contract.
func TestPublishZeroAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h")
	var nilC *Counter
	if avg := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(2)
		h.Observe(1234)
		nilC.Inc()
	}); avg != 0 {
		t.Errorf("publish allocated %.1f per op, want 0", avg)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)  // bucket 0
	h.Observe(1)  // [1,1]
	h.Observe(2)  // [2,3]
	h.Observe(3)  // [2,3]
	h.Observe(64) // [64,127]
	s := h.Snapshot()
	if s.Count != 5 || s.Sum != 70 {
		t.Fatalf("count=%d sum=%d, want 5/70", s.Count, s.Sum)
	}
	if s.Mean != 14 {
		t.Errorf("mean = %g, want 14", s.Mean)
	}
	want := []HistogramBucket{
		{Lo: 0, Hi: 0, Count: 1},
		{Lo: 1, Hi: 1, Count: 1},
		{Lo: 2, Hi: 3, Count: 2},
		{Lo: 64, Hi: 127, Count: 1},
	}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	for i := range want {
		if s.Buckets[i] != want[i] {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], want[i])
		}
	}
	// Top bucket: values with bit 63 set must not overflow the bound.
	var top Histogram
	top.Observe(^uint64(0))
	ts := top.Snapshot()
	if len(ts.Buckets) != 1 || ts.Buckets[0].Hi != ^uint64(0) {
		t.Errorf("top bucket = %+v", ts.Buckets)
	}
}

func TestRegistryIdempotentAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("soc.refs")
	b := r.Counter("soc.refs")
	if a != b {
		t.Error("re-registration returned a different counter")
	}
	a.Inc()
	if b.Load() != 1 {
		t.Error("shared counter not shared")
	}
	defer func() {
		if recover() == nil {
			t.Error("registering a counter name as a gauge did not panic")
		}
	}()
	r.Gauge("soc.refs")
}

func TestRegistrySnapshotJSONAndHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("a.count").Add(3)
	r.Gauge("b.gauge").Set(-2)
	r.Histogram("c.hist").Observe(5)

	if got, want := r.Names(), []string{"a.count", "b.gauge", "c.hist"}; strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("names = %v, want %v", got, want)
	}

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if snap.Counters["a.count"] != 3 || snap.Gauges["b.gauge"] != -2 {
		t.Errorf("snapshot = %+v", snap)
	}
	if h := snap.Histograms["c.hist"]; h.Count != 1 || h.Sum != 5 {
		t.Errorf("histogram snapshot = %+v", h)
	}

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("handler status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("content-type %q", ct)
	}
	var via Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &via); err != nil {
		t.Fatalf("handler body: %v", err)
	}
	if via.Counters["a.count"] != 3 {
		t.Errorf("handler snapshot = %+v", via)
	}
}

func TestRegistryConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				_ = r.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Load(); got != 8000 {
		t.Errorf("shared counter = %d, want 8000", got)
	}
}

func TestProgressHumanAndJSON(t *testing.T) {
	var mu sync.Mutex
	done := uint64(0)
	sample := func() ProgressSample {
		mu.Lock()
		defer mu.Unlock()
		return ProgressSample{Done: done, Total: 1000, TasksDone: 1, TasksTotal: 4, Note: "busy 2"}
	}

	var human bytes.Buffer
	p := StartProgress(ProgressConfig{W: &human, Interval: 5 * time.Millisecond, Sample: sample})
	mu.Lock()
	done = 250
	mu.Unlock()
	time.Sleep(25 * time.Millisecond)
	p.Stop()
	p.Stop() // idempotent
	out := human.String()
	for _, want := range []string{"progress:", "refs", "25.0%", "tasks 1/4", "busy 2", "done in"} {
		if !strings.Contains(out, want) {
			t.Errorf("human progress output missing %q:\n%s", want, out)
		}
	}

	var jsonBuf bytes.Buffer
	p = StartProgress(ProgressConfig{W: &jsonBuf, Interval: 5 * time.Millisecond, JSON: true, Sample: sample})
	time.Sleep(12 * time.Millisecond)
	p.Stop()
	sc := bufio.NewScanner(&jsonBuf)
	lines := 0
	sawFinal := false
	for sc.Scan() {
		var line map[string]any
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad JSON progress line %q: %v", sc.Text(), err)
		}
		if line["unit"] != "refs" || line["done"] != float64(250) {
			t.Errorf("line = %v", line)
		}
		if line["final"] == true {
			sawFinal = true
		}
		lines++
	}
	if lines == 0 || !sawFinal {
		t.Errorf("json progress: %d lines, final=%v", lines, sawFinal)
	}
}
