package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// ProgressSample is one reading of the quantity a Progress reporter
// tracks. Done/Total are work units (references, for the sweep);
// Total 0 means the goal is unknown and percent/ETA are omitted.
// TasksDone/TasksTotal are the coarser task-level view (0/0 to omit),
// and Note is free-form trailing context (memo hits, busy workers).
type ProgressSample struct {
	Done, Total           uint64
	TasksDone, TasksTotal uint64
	Note                  string
}

// ProgressConfig configures a Progress reporter.
type ProgressConfig struct {
	// W receives the progress lines — stderr for CLIs, never the
	// result stream: progress must not perturb byte-identical stdout.
	W io.Writer
	// Interval is the emission period (default 1s).
	Interval time.Duration
	// JSON switches from the human line to one JSON object per line.
	JSON bool
	// Unit names the work unit in human lines (default "refs").
	Unit string
	// Sample is polled at each tick. It must be safe to call from the
	// reporter's goroutine — reading obs counters qualifies.
	Sample func() ProgressSample
}

// Progress periodically samples and prints campaign progress with
// throughput and ETA. It runs on its own goroutine, far from the hot
// path: the simulator only bumps counters, the reporter does the
// formatting (and its allocations) at human timescales.
type Progress struct {
	cfg      ProgressConfig
	start    time.Time
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	// last tick state for instantaneous rate
	lastDone uint64
	lastAt   time.Time
}

// StartProgress begins periodic reporting and returns the reporter;
// call Stop to emit the final line and release the goroutine.
func StartProgress(cfg ProgressConfig) *Progress {
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Unit == "" {
		cfg.Unit = "refs"
	}
	now := time.Now()
	p := &Progress{
		cfg:    cfg,
		start:  now,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
		lastAt: now,
	}
	go p.loop()
	return p
}

func (p *Progress) loop() {
	defer close(p.done)
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			p.emit(false)
		case <-p.stop:
			p.emit(true)
			return
		}
	}
}

// Stop emits a final line and waits for the reporter to exit. Safe to
// call more than once.
func (p *Progress) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

// progressLine is the JSON shape of one emission (schema documented in
// DESIGN.md §8).
type progressLine struct {
	ElapsedS   float64 `json:"elapsed_s"`
	Done       uint64  `json:"done"`
	Total      uint64  `json:"total,omitempty"`
	Unit       string  `json:"unit"`
	RatePerSec float64 `json:"rate_per_sec"`
	EtaS       float64 `json:"eta_s,omitempty"`
	TasksDone  uint64  `json:"tasks_done,omitempty"`
	TasksTotal uint64  `json:"tasks_total,omitempty"`
	Note       string  `json:"note,omitempty"`
	Final      bool    `json:"final,omitempty"`
}

func (p *Progress) emit(final bool) {
	s := p.cfg.Sample()
	now := time.Now()
	elapsed := now.Sub(p.start).Seconds()

	// Cumulative rate drives the ETA (stable); the displayed rate is
	// the instantaneous one (informative) unless the window is empty.
	var cumRate, instRate float64
	if elapsed > 0 {
		cumRate = float64(s.Done) / elapsed
	}
	if dt := now.Sub(p.lastAt).Seconds(); dt > 0 && s.Done >= p.lastDone {
		instRate = float64(s.Done-p.lastDone) / dt
	}
	if instRate == 0 {
		instRate = cumRate
	}
	p.lastDone, p.lastAt = s.Done, now

	var eta float64
	if s.Total > s.Done && cumRate > 0 {
		eta = float64(s.Total-s.Done) / cumRate
	}

	if p.cfg.JSON {
		line := progressLine{
			ElapsedS: round2(elapsed), Done: s.Done, Total: s.Total,
			Unit: p.cfg.Unit, RatePerSec: round2(instRate), EtaS: round2(eta),
			TasksDone: s.TasksDone, TasksTotal: s.TasksTotal,
			Note: s.Note, Final: final,
		}
		b, err := json.Marshal(line)
		if err != nil {
			return
		}
		fmt.Fprintf(p.cfg.W, "%s\n", b)
		return
	}

	var b []byte
	b = append(b, "progress: "...)
	b = append(b, siCount(s.Done)...)
	if s.Total > 0 {
		b = append(b, '/')
		b = append(b, siCount(s.Total)...)
	}
	b = append(b, ' ')
	b = append(b, p.cfg.Unit...)
	if s.Total > 0 {
		b = append(b, fmt.Sprintf(" (%.1f%%)", 100*float64(s.Done)/float64(s.Total))...)
	}
	b = append(b, fmt.Sprintf("  %s %s/s", siCount(uint64(instRate)), p.cfg.Unit)...)
	if eta > 0 && !final {
		b = append(b, fmt.Sprintf("  eta %s", time.Duration(eta*float64(time.Second)).Round(time.Second))...)
	}
	if s.TasksTotal > 0 {
		b = append(b, fmt.Sprintf("  tasks %d/%d", s.TasksDone, s.TasksTotal)...)
	}
	if s.Note != "" {
		b = append(b, "  "...)
		b = append(b, s.Note...)
	}
	if final {
		b = append(b, fmt.Sprintf("  done in %s", time.Duration(elapsed*float64(time.Second)).Round(time.Millisecond))...)
	}
	b = append(b, '\n')
	p.cfg.W.Write(b)
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

// siCount renders a count with a binary-free SI suffix (12.3M) — the
// reading a human wants from a refs counter.
func siCount(n uint64) string {
	switch {
	case n >= 1_000_000_000:
		return fmt.Sprintf("%.2fG", float64(n)/1e9)
	case n >= 1_000_000:
		return fmt.Sprintf("%.2fM", float64(n)/1e6)
	case n >= 10_000:
		return fmt.Sprintf("%.1fk", float64(n)/1e3)
	default:
		return fmt.Sprintf("%d", n)
	}
}
