// Package obs is the observability layer: a fixed-registry,
// allocation-free metrics core that the simulator publishes into while
// it runs. The design constraint comes from the SoC hot path, which is
// pinned at 0 allocations per reference (soc.TestHotLoopZeroAllocs*):
// every metric is pre-registered before the run starts, publishing is a
// pointer-held atomic operation on a fixed cell, and the registry is
// only walked by readers (snapshots, progress lines, the /metrics
// endpoint) — never by publishers.
//
// All publish methods are nil-receiver safe: a nil *Counter, *Gauge or
// *Histogram is a no-op sink. Instrumented code therefore carries plain
// metric-bundle values whose zero value disables instrumentation — no
// per-call-site nil checks, no interface dispatch, no allocation either
// way.
package obs

import (
	"math/bits"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a nil *Counter discards publishes.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
//
//repro:hotpath
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
//
//repro:hotpath
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic instantaneous value (worker occupancy, planned
// totals). The zero value is ready; a nil *Gauge discards publishes.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//repro:hotpath
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by d (negative to decrement).
//
//repro:hotpath
func (g *Gauge) Add(d int64) {
	if g != nil {
		g.v.Add(d)
	}
}

// Load returns the current value (0 for a nil gauge).
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histogramBuckets is the fixed bucket count: bucket i holds values
// whose bit length is i, i.e. [2^(i-1), 2^i), with bucket 0 holding
// exactly zero. Power-of-two bucketing needs no configuration, covers
// the whole uint64 range, and turns Observe into one bits.Len64 plus
// one atomic add — cheap enough for per-event use on the hot path.
const histogramBuckets = 65

// Histogram counts observations in power-of-two buckets. The zero
// value is ready; a nil *Histogram discards publishes.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histogramBuckets]atomic.Uint64
}

// Observe records v.
//
//repro:hotpath
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the average observed value (0 with no observations).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// HistogramBucket is one populated histogram bucket in a snapshot:
// Count observations fell in [Lo, Hi].
type HistogramBucket struct {
	Lo    uint64 `json:"lo"`
	Hi    uint64 `json:"hi"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's point-in-time state: only
// populated buckets are materialized.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	Sum     uint64            `json:"sum"`
	Mean    float64           `json:"mean"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram (reader side; allocates). Taken
// concurrently with Observe it is not a single atomic cut, but the
// load order preserves the invariant readers rely on: buckets are read
// first and count last, while Observe increments count first and its
// bucket last, so a mid-flight observation can be missing from the
// buckets yet present in Count — never the reverse. Σ buckets ≤ Count
// always holds (obs_race_test.go pins this under -race).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	var s HistogramSnapshot
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		b := HistogramBucket{Count: n}
		if i > 0 {
			b.Lo = 1 << (i - 1)
			b.Hi = 1<<i - 1
			if i == histogramBuckets-1 {
				b.Hi = ^uint64(0)
			}
		}
		s.Buckets = append(s.Buckets, b)
	}
	s.Sum = h.sum.Load()
	s.Count = h.count.Load()
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	return s
}
