// Package rec is the flight recorder: a fixed-record ring buffer the
// simulation hot path appends events into at zero allocations per
// reference, in the same discipline as the metrics layer (internal/obs)
// — storage is pre-sized at setup, publishing touches only
// preallocated cells, and readers never share a code path with
// publishers. Where obs answers "how much", rec answers "in what
// order": each record carries the simulated-cycle time and reference
// index at which it happened, so a sealed stream is a deterministic,
// replayable account of one run.
//
// Writer side (hot path): (*Recorder).Stamp and (*Recorder).Emit, both
// nil-receiver safe — a nil *Recorder (and a zero-value Recorder) is a
// no-op sink, so instrumented code carries the pointer unconditionally
// with no per-call-site checks. When the ring fills, Emit overwrites
// the oldest record (flight-recorder semantics): recording never
// stalls or allocates; Dropped counts what scrolled off.
//
// Reader side (after or between runs): Seal copies the ring out into a
// Stream in sequence order; exporters (Chrome trace_event JSON, CSV)
// and the decoder live in export.go/decode.go and must never be
// reachable from //repro:hotpath roots — reprolint's recdiscipline
// analyzer enforces exactly that split.
//
//repro:deterministic
package rec

// Kind is the event taxonomy: one byte naming what happened. The kinds
// span the whole stack — cache line transfers, EDU granule batches,
// authtree node traffic, adversary strikes and traps, campaign task
// lifecycle — so one stream tells the story of a run end to end.
// DESIGN.md §10 documents each kind's Addr/Level/Flags/Arg payload.
type Kind uint8

const (
	// KindNone is the zero kind (an unwritten record).
	KindNone Kind = iota
	// KindFill is a cache line moving inward at Level (Arg = transfer
	// cycles; FlagChip set when DRAM is on the far side).
	KindFill
	// KindWriteback is a line moving outward at Level — an eviction
	// spill or an install into the next level (Arg = transfer cycles;
	// FlagFlush set when the end-of-run drain caused it).
	KindWriteback
	// KindWriteThrough is a store written straight to memory in a
	// write-through system (Arg = total cycles including any RMW).
	KindWriteThrough
	// KindDecipher is an EDU decrypt of one line crossing the guarded
	// boundary inward (Arg = block granules; FlagInner when the
	// boundary is L1<->L2).
	KindDecipher
	// KindEncipher is the outbound counterpart of KindDecipher.
	KindEncipher
	// KindVerify is an authenticator read-verification of inbound
	// ciphertext (Arg = verifier stall cycles; FlagFail on a detected
	// tamper).
	KindVerify
	// KindRetag is the authenticator write-update for an outbound line
	// (Arg = verifier stall cycles).
	KindRetag
	// KindNodeFetch is an authtree walk fetching an uncached interior
	// node from external memory (Addr = node key, Level = tree level,
	// Arg = fetch+hash cycles; FlagUpdate on an update walk).
	KindNodeFetch
	// KindNodeHit is a walk terminating at a node already inside the
	// trust boundary (Addr = node key, Level = tree level).
	KindNodeHit
	// KindDirtyPropagate is a dirty tree node written back on eviction
	// from the node cache (Addr = victim's replacement key, Level =
	// the inserted node's level, Arg = writeback cycles).
	KindDirtyPropagate
	// KindStrike is an adversary injection that actually mutated
	// external state (Addr = tampered line, Arg = attack.TamperKind).
	KindStrike
	// KindTrap is a fail-stop violation trap: verification failed and
	// the line was zeroed (Addr = line, Arg = trap cycles charged).
	KindTrap
	// KindTaskStart opens a campaign task's stream.
	KindTaskStart
	// KindTaskEnd closes it (Cycle and Arg = final cycle count;
	// FlagFail when the task errored).
	KindTaskEnd
	// KindBaseline records the task's memoized plaintext baseline
	// (Arg = baseline cycles). The baseline simulation itself is not
	// recorded live — which worker computes it is scheduling-dependent
	// — so the stream carries its deterministic summary instead.
	KindBaseline
	// KindMemoHit marks a stream reused verbatim from an earlier task
	// with the same key (Arg = the computing task's expansion index).
	// Appended by the canonical merge, never by a recorder.
	KindMemoHit

	kindCount // one past the last valid kind
)

// kindNames indexes Kind -> stable export name (also the CSV/Chrome
// vocabulary; decode.go inverts it).
var kindNames = [kindCount]string{
	KindNone:           "none",
	KindFill:           "fill",
	KindWriteback:      "writeback",
	KindWriteThrough:   "write-through",
	KindDecipher:       "decipher",
	KindEncipher:       "encipher",
	KindVerify:         "verify",
	KindRetag:          "retag",
	KindNodeFetch:      "node-fetch",
	KindNodeHit:        "node-hit",
	KindDirtyPropagate: "dirty-propagate",
	KindStrike:         "strike",
	KindTrap:           "trap",
	KindTaskStart:      "task-start",
	KindTaskEnd:        "task-end",
	KindBaseline:       "baseline",
	KindMemoHit:        "memo-hit",
}

// String names the kind as exporters spell it.
func (k Kind) String() string {
	if k < kindCount {
		return kindNames[k]
	}
	return "invalid"
}

// Flag bits qualifying an event.
const (
	// FlagChip marks a transfer that crossed the chip boundary (DRAM
	// on the far side) rather than an on-chip level-to-level move.
	FlagChip uint8 = 1 << 0
	// FlagFlush marks a transfer performed by the end-of-run drain of
	// dirty lines rather than demand traffic.
	FlagFlush uint8 = 1 << 1
	// FlagFail marks a failed verification (KindVerify) or an errored
	// task (KindTaskEnd).
	FlagFail uint8 = 1 << 2
	// FlagInner marks an EDU event at the inner (L1<->L2) boundary.
	FlagInner uint8 = 1 << 3
	// FlagUpdate marks an authtree walk event on the update (write)
	// path rather than the verify (read) path.
	FlagUpdate uint8 = 1 << 4
)

// Event is one fixed-size record: 48 bytes, no pointers, so the ring
// is a single flat allocation the collector never scans per-entry.
// Seq is the recorder-local sequence number (dense from 0, the stream
// order); Cycle and Ref are the simulated-cycle time and reference
// index stamped when the event fired. Addr, Level, Flags and Arg are
// kind-specific (see the Kind constants and DESIGN.md §10).
type Event struct {
	Seq   uint64
	Cycle uint64
	Ref   uint64
	Addr  uint64
	Arg   uint64
	Kind  Kind
	Level uint8
	Flags uint8
}

// Recorder is one ring-buffer flight recorder. Not safe for concurrent
// writers — like a soc.SoC, a recorder belongs to one task; merged
// views are built reader-side from sealed streams. The zero value (and
// a nil pointer) is a no-op sink.
type Recorder struct {
	buf  []Event
	mask uint64
	seq  uint64
	// cycle/ref are the current stamp: the simulation sets them once
	// per reference (or per costed transfer) and every Emit until the
	// next Stamp inherits them, so subsystems without a clock (the
	// authtree walk, the attack schedule) timestamp correctly for free.
	cycle, ref uint64
}

// DefaultCap is the ring capacity New substitutes for a non-positive
// request: 64k events (3 MiB) holds a short run entirely and a long
// run's recent past.
const DefaultCap = 1 << 16

// New builds a recorder with capacity rounded up to a power of two
// (minimum 16) so the ring index is a mask, not a modulo.
func New(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultCap
	}
	n := 16
	for n < capacity {
		n <<= 1
	}
	return &Recorder{buf: make([]Event, n), mask: uint64(n - 1)}
}

// Cap reports the ring capacity in events (0 for a nil/zero recorder).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Stamp sets the simulated-cycle time and reference index subsequent
// Emit calls record. The hot loop stamps once per reference and once
// per costed transfer; everything a reference causes shares its stamp.
//
//repro:hotpath
func (r *Recorder) Stamp(cycle, ref uint64) {
	if r == nil {
		return
	}
	r.cycle = cycle
	r.ref = ref
}

// Emit appends one event, overwriting the oldest record when the ring
// is full. Allocation-free by construction: one indexed store into the
// preallocated ring plus the sequence increment.
//
//repro:hotpath
func (r *Recorder) Emit(k Kind, addr uint64, level, flags uint8, arg uint64) {
	if r == nil || len(r.buf) == 0 {
		return
	}
	r.buf[r.seq&r.mask] = Event{
		Seq: r.seq, Cycle: r.cycle, Ref: r.ref,
		Addr: addr, Arg: arg, Kind: k, Level: level, Flags: flags,
	}
	r.seq++
}

// Len reports how many events are currently held (at most Cap).
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	if r.seq > uint64(len(r.buf)) {
		return len(r.buf)
	}
	return int(r.seq)
}

// Dropped reports how many events were overwritten before they could
// be sealed — the flight-recorder overflow count.
func (r *Recorder) Dropped() uint64 {
	if r == nil || r.seq <= uint64(len(r.buf)) {
		return 0
	}
	return r.seq - uint64(len(r.buf))
}

// Reset forgets all recorded events (capacity retained) and clears the
// stamp, so a recorder can be reused across runs.
func (r *Recorder) Reset() {
	if r == nil {
		return
	}
	r.seq, r.cycle, r.ref = 0, 0, 0
}

// Stream is a sealed, reader-owned copy of one recorder's contents in
// sequence order: what one task recorded.
type Stream struct {
	// Track labels the stream (the task key, or a CLI-chosen label);
	// exporters name the per-task track with it.
	Track string `json:"track"`
	// Events are in strictly increasing Seq order. When Dropped > 0
	// the first event's Seq is Dropped, not 0 — the earlier records
	// scrolled off the ring.
	Events []Event `json:"events"`
	// Dropped counts records overwritten before sealing.
	Dropped uint64 `json:"dropped"`
}

// Seal copies the ring out into a Stream in sequence order. Reader
// side: allocates, must not be called from the hot path (enforced by
// reprolint's recdiscipline analyzer).
func (r *Recorder) Seal(track string) Stream {
	st := Stream{Track: track}
	if r == nil || r.seq == 0 {
		return st
	}
	if r.seq > uint64(len(r.buf)) {
		st.Dropped = r.seq - uint64(len(r.buf))
		st.Events = make([]Event, 0, len(r.buf))
		start := r.seq & r.mask // the oldest surviving record
		st.Events = append(st.Events, r.buf[start:]...)
		st.Events = append(st.Events, r.buf[:start]...)
		return st
	}
	st.Events = append(make([]Event, 0, r.seq), r.buf[:r.seq]...)
	return st
}

// Trace is a canonical merged view: one stream per track, in a
// deterministic order fixed by the producer (campaign.TraceOf orders
// by task expansion index; CLIs record a single stream).
type Trace struct {
	Streams []Stream `json:"streams"`
}

// Len is the total event count across all streams.
func (t *Trace) Len() int {
	n := 0
	for i := range t.Streams {
		n += len(t.Streams[i].Events)
	}
	return n
}

// Dropped is the total overflow count across all streams.
func (t *Trace) Dropped() uint64 {
	var n uint64
	for i := range t.Streams {
		n += t.Streams[i].Dropped
	}
	return n
}
