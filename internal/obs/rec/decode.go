// The Chrome trace decoder: the reader-side inverse of WriteChrome,
// used by the round-trip tests and cmd/tracelab's -check mode to prove
// an exported trace is valid, lossless, and sequence-monotone.
package rec

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// chromeEvent is the wire shape of one trace_event entry. Args holds
// mixed strings and numbers; the decoder is configured with UseNumber
// so uint64 payloads survive exactly.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

type chromeFile struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

// kindByName inverts kindNames (a linear scan; the table is tiny).
func kindByName(name string) (Kind, bool) {
	for k := Kind(0); k < kindCount; k++ {
		if kindNames[k] == name {
			return k, true
		}
	}
	return 0, false
}

// DecodeChrome parses Chrome trace_event JSON produced by WriteChrome
// back into a Trace: streams grouped by pid in first-appearance order,
// events reconstructed from the lossless args payload. Unknown event
// names or malformed payloads are errors — the decoder is a validator,
// not a tolerant reader.
func DecodeChrome(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.UseNumber()
	var file chromeFile
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("rec: decode chrome trace: %w", err)
	}
	tr := &Trace{}
	byPid := make(map[int]int) // pid -> stream index
	stream := func(pid int) *Stream {
		if i, ok := byPid[pid]; ok {
			return &tr.Streams[i]
		}
		byPid[pid] = len(tr.Streams)
		tr.Streams = append(tr.Streams, Stream{})
		return &tr.Streams[len(tr.Streams)-1]
	}
	for i, ce := range file.TraceEvents {
		switch ce.Ph {
		case "M":
			if ce.Name != "process_name" {
				continue
			}
			st := stream(ce.Pid)
			if name, ok := ce.Args["name"].(string); ok {
				st.Track = name
			}
			if d, ok := ce.Args["dropped"].(json.Number); ok {
				n, err := strconv.ParseUint(d.String(), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("rec: event %d: bad dropped count %q", i, d)
				}
				st.Dropped = n
			}
		case "X", "i":
			kind, ok := kindByName(ce.Name)
			if !ok {
				return nil, fmt.Errorf("rec: event %d: unknown kind %q", i, ce.Name)
			}
			ev, err := eventFromArgs(kind, ce.Args)
			if err != nil {
				return nil, fmt.Errorf("rec: event %d (%s): %w", i, ce.Name, err)
			}
			st := stream(ce.Pid)
			st.Events = append(st.Events, ev)
		default:
			return nil, fmt.Errorf("rec: event %d: unexpected phase %q", i, ce.Ph)
		}
	}
	return tr, nil
}

// eventFromArgs rebuilds an Event from the lossless args payload.
func eventFromArgs(kind Kind, args map[string]any) (Event, error) {
	ev := Event{Kind: kind}
	u64 := func(key string) (uint64, error) {
		num, ok := args[key].(json.Number)
		if !ok {
			return 0, fmt.Errorf("missing or non-numeric arg %q", key)
		}
		n, err := strconv.ParseUint(num.String(), 10, 64)
		if err != nil {
			return 0, fmt.Errorf("bad arg %q=%q", key, num)
		}
		return n, nil
	}
	var err error
	if ev.Seq, err = u64("seq"); err != nil {
		return ev, err
	}
	if ev.Cycle, err = u64("cycle"); err != nil {
		return ev, err
	}
	if ev.Ref, err = u64("ref"); err != nil {
		return ev, err
	}
	if ev.Arg, err = u64("arg"); err != nil {
		return ev, err
	}
	lvl, err := u64("level")
	if err != nil {
		return ev, err
	}
	ev.Level = uint8(lvl)
	flags, err := u64("flags")
	if err != nil {
		return ev, err
	}
	ev.Flags = uint8(flags)
	addr, ok := args["addr"].(string)
	if !ok {
		return ev, fmt.Errorf("missing or non-string arg %q", "addr")
	}
	if ev.Addr, err = strconv.ParseUint(strings.TrimPrefix(addr, "0x"), 16, 64); err != nil {
		return ev, fmt.Errorf("bad addr %q", addr)
	}
	return ev, nil
}

// Validate checks a trace's structural contract: known kinds and
// strictly increasing sequence numbers within every stream (the
// canonical-merge ordering the determinism contract promises).
func Validate(tr *Trace) error {
	for i := range tr.Streams {
		st := &tr.Streams[i]
		for j, ev := range st.Events {
			if ev.Kind >= kindCount {
				return fmt.Errorf("rec: stream %d (%s) event %d: invalid kind %d", i, st.Track, j, ev.Kind)
			}
			if j > 0 && ev.Seq <= st.Events[j-1].Seq {
				return fmt.Errorf("rec: stream %d (%s): seq not strictly increasing at event %d (%d after %d)",
					i, st.Track, j, ev.Seq, st.Events[j-1].Seq)
			}
		}
	}
	return nil
}
