package rec

import (
	"runtime"
	"runtime/debug"
	"testing"
)

// allocsPerRun is testing.AllocsPerRun with the collector parked, the
// same guard the soc tests use: a GC cycle inside the window would
// attribute runtime allocations to a loop that performs none.
func allocsPerRun(runs int, f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	runtime.GC()
	return testing.AllocsPerRun(runs, f)
}

func TestNilAndZeroRecorderAreNoOps(t *testing.T) {
	var nilRec *Recorder
	nilRec.Stamp(1, 2)
	nilRec.Emit(KindFill, 0x40, 0, 0, 7)
	if nilRec.Len() != 0 || nilRec.Dropped() != 0 || nilRec.Cap() != 0 {
		t.Error("nil recorder reported state")
	}
	if st := nilRec.Seal("x"); len(st.Events) != 0 || st.Track != "x" {
		t.Errorf("nil Seal = %+v", st)
	}
	nilRec.Reset()

	var zero Recorder // zero value: no ring, must discard silently
	zero.Stamp(1, 2)
	zero.Emit(KindFill, 0x40, 0, 0, 7)
	if zero.Len() != 0 {
		t.Error("zero-value recorder recorded an event")
	}
}

func TestCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, DefaultCap}, {-5, DefaultCap}, {1, 16}, {16, 16}, {17, 32}, {1000, 1024},
	} {
		if got := New(tc.ask).Cap(); got != tc.want {
			t.Errorf("New(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestEmitStampAndSeal(t *testing.T) {
	r := New(16)
	r.Stamp(100, 3)
	r.Emit(KindFill, 0xabc0, 1, FlagChip, 42)
	r.Stamp(150, 4)
	r.Emit(KindVerify, 0xabc0, 0, FlagFail, 9)

	st := r.Seal("t")
	if len(st.Events) != 2 || st.Dropped != 0 {
		t.Fatalf("sealed %d events, dropped %d", len(st.Events), st.Dropped)
	}
	want0 := Event{Seq: 0, Cycle: 100, Ref: 3, Addr: 0xabc0, Arg: 42, Kind: KindFill, Level: 1, Flags: FlagChip}
	want1 := Event{Seq: 1, Cycle: 150, Ref: 4, Addr: 0xabc0, Arg: 9, Kind: KindVerify, Flags: FlagFail}
	if st.Events[0] != want0 {
		t.Errorf("event 0 = %+v, want %+v", st.Events[0], want0)
	}
	if st.Events[1] != want1 {
		t.Errorf("event 1 = %+v, want %+v", st.Events[1], want1)
	}

	// Seal is a copy: later emits must not mutate the sealed stream.
	r.Emit(KindTrap, 0xdead, 0, 0, 0)
	if len(st.Events) != 2 {
		t.Error("Seal aliases the live ring")
	}
}

func TestOverflowKeepsNewestInOrder(t *testing.T) {
	r := New(16)
	const total = 40
	for i := uint64(0); i < total; i++ {
		r.Stamp(i*10, i)
		r.Emit(KindFill, i, 0, 0, i)
	}
	if got := r.Dropped(); got != total-16 {
		t.Fatalf("Dropped = %d, want %d", got, total-16)
	}
	if got := r.Len(); got != 16 {
		t.Fatalf("Len = %d, want 16", got)
	}
	st := r.Seal("t")
	if st.Dropped != total-16 || len(st.Events) != 16 {
		t.Fatalf("sealed %d events, dropped %d", len(st.Events), st.Dropped)
	}
	// The newest 16 records, in sequence order, starting at seq=Dropped.
	for j, ev := range st.Events {
		wantSeq := uint64(total - 16 + j)
		if ev.Seq != wantSeq || ev.Addr != wantSeq || ev.Ref != wantSeq {
			t.Fatalf("event %d = %+v, want seq/addr/ref %d", j, ev, wantSeq)
		}
	}
}

func TestReset(t *testing.T) {
	r := New(16)
	for i := 0; i < 20; i++ {
		r.Emit(KindFill, 1, 0, 0, 0)
	}
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("Reset did not clear state")
	}
	r.Emit(KindTrap, 2, 0, 0, 0)
	st := r.Seal("t")
	if len(st.Events) != 1 || st.Events[0].Seq != 0 || st.Events[0].Kind != KindTrap {
		t.Fatalf("post-Reset stream = %+v", st)
	}
}

// The writer-side contract the whole design hangs on: Stamp+Emit are
// allocation-free, full ring or not, nil or live.
func TestEmitZeroAllocs(t *testing.T) {
	r := New(1024)
	var i uint64
	if avg := allocsPerRun(100, func() {
		for n := 0; n < 2048; n++ { // wraps: overwrite path included
			r.Stamp(i, i)
			r.Emit(KindFill, i, 1, FlagChip, 7)
			i++
		}
	}); avg != 0 {
		t.Errorf("Stamp+Emit allocated %.1f per 2048 events, want 0", avg)
	}
	var nilRec *Recorder
	if avg := allocsPerRun(100, func() {
		nilRec.Stamp(1, 2)
		nilRec.Emit(KindFill, 3, 0, 0, 4)
	}); avg != 0 {
		t.Errorf("nil-recorder publish allocated %.1f, want 0", avg)
	}
}

func TestKindNamesComplete(t *testing.T) {
	for k := Kind(0); k < kindCount; k++ {
		if kindNames[k] == "" {
			t.Errorf("kind %d has no name", k)
		}
		back, ok := kindByName(k.String())
		if !ok || back != k {
			t.Errorf("kind %d (%s) does not round-trip by name", k, k)
		}
	}
	if Kind(200).String() != "invalid" {
		t.Error("out-of-range kind should stringify as invalid")
	}
}
