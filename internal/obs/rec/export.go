// Reader-side exporters: Chrome trace_event JSON (Perfetto-loadable)
// and CSV. Both are byte-deterministic functions of the Trace — the
// writers iterate slices in order, never maps — because traced sweeps
// inherit the campaign's contract that -jobs 1 and -jobs 8 emit
// identical bytes. Never reachable from //repro:hotpath roots
// (reprolint recdiscipline).
//
//repro:deterministic
package rec

import (
	"bufio"
	"fmt"
	"io"
)

// Lane numbers group events into per-track rows ("threads" in the
// Chrome trace model): one row per cache level plus fixed rows for the
// EDU, the authenticator, the adversary, and the task lifecycle.
const (
	laneLifecycle = 0  // task start/end, baseline, memo
	laneCacheBase = 1  // lane 1 = L1 transfers, lane 2 = L2, ...
	laneEDU       = 8  // encipher/decipher batches
	laneAuth      = 9  // verify/retag + tree node traffic
	laneAttack    = 10 // strikes and traps
)

// laneOf maps an event to its display lane.
func laneOf(ev Event) int {
	switch ev.Kind {
	case KindTaskStart, KindTaskEnd, KindBaseline, KindMemoHit:
		return laneLifecycle
	case KindFill, KindWriteback, KindWriteThrough:
		return laneCacheBase + int(ev.Level)
	case KindDecipher, KindEncipher:
		return laneEDU
	case KindVerify, KindRetag, KindNodeFetch, KindNodeHit, KindDirtyPropagate:
		return laneAuth
	case KindStrike, KindTrap:
		return laneAttack
	}
	return laneAttack + 1
}

// laneName names a lane for the trace viewer's row header.
func laneName(lane int) string {
	switch {
	case lane == laneLifecycle:
		return "lifecycle"
	case lane >= laneCacheBase && lane < laneEDU:
		return fmt.Sprintf("L%d transfers", lane-laneCacheBase+1)
	case lane == laneEDU:
		return "edu"
	case lane == laneAuth:
		return "auth"
	case lane == laneAttack:
		return "attack"
	}
	return fmt.Sprintf("lane %d", lane)
}

// spanKind reports whether the event exports as a Chrome "X" complete
// event (a bar with duration) rather than an instant, and its ts/dur.
// Costed transfers and verifier operations span [Cycle, Cycle+Arg];
// task end and baseline span the whole run from cycle 0, which is what
// makes the per-task track read as a Gantt row in Perfetto.
func spanKind(ev Event) (ts, dur uint64, ok bool) {
	switch ev.Kind {
	case KindFill, KindWriteback, KindWriteThrough, KindVerify, KindRetag:
		return ev.Cycle, ev.Arg, true
	case KindTaskEnd, KindBaseline:
		return 0, ev.Arg, true
	}
	return 0, 0, false
}

// WriteChrome serializes tr as Chrome trace_event JSON ("JSON Object
// Format": a traceEvents array), loadable in Perfetto / chrome://
// tracing. Tracks map to processes (pid = stream index, named by
// metadata events), lanes to threads; ts/dur are simulated cycles
// (displayed as microseconds — the unit label is cosmetic, the
// ordering is what matters). Every event's args carry the full record
// (seq/cycle/ref/addr/level/flags/arg), so DecodeChrome round-trips
// losslessly whatever ph shape the event rendered as.
func WriteChrome(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	io.WriteString(bw, "{\"traceEvents\":[")
	first := true
	sep := func() {
		if first {
			first = false
		} else {
			io.WriteString(bw, ",")
		}
		io.WriteString(bw, "\n")
	}
	for pid := range tr.Streams {
		st := &tr.Streams[pid]
		sep()
		fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":0,"name":"process_name","args":{"name":%q,"dropped":%d}}`,
			pid, st.Track, st.Dropped)
		// Name each lane on first use; lane usage is a pure function of
		// the event sequence, so the metadata is as deterministic as the
		// events themselves.
		var named [laneAttack + 2]bool
		for _, ev := range st.Events {
			lane := laneOf(ev)
			if lane < len(named) && !named[lane] {
				named[lane] = true
				sep()
				fmt.Fprintf(bw, `{"ph":"M","pid":%d,"tid":%d,"name":"thread_name","args":{"name":%q}}`,
					pid, lane, laneName(lane))
			}
			sep()
			if ts, dur, isSpan := spanKind(ev); isSpan {
				fmt.Fprintf(bw, `{"name":%q,"ph":"X","pid":%d,"tid":%d,"ts":%d,"dur":%d,"args":{%s}}`,
					ev.Kind.String(), pid, lane, ts, dur, eventArgs(ev))
			} else {
				fmt.Fprintf(bw, `{"name":%q,"ph":"i","s":"t","pid":%d,"tid":%d,"ts":%d,"args":{%s}}`,
					ev.Kind.String(), pid, lane, ev.Cycle, eventArgs(ev))
			}
		}
	}
	io.WriteString(bw, "\n]}\n")
	return bw.Flush()
}

// eventArgs renders the lossless record payload embedded in every
// Chrome event. Addr is hex (a string: JSON numbers lose precision
// past 2^53, and hex is what you grep for anyway).
func eventArgs(ev Event) string {
	return fmt.Sprintf(`"seq":%d,"cycle":%d,"ref":%d,"addr":"0x%x","level":%d,"flags":%d,"arg":%d`,
		ev.Seq, ev.Cycle, ev.Ref, ev.Addr, ev.Level, ev.Flags, ev.Arg)
}

// WriteCSV serializes tr as flat CSV, one event per row — the format
// for spreadsheet/pandas analysis of event streams.
func WriteCSV(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	io.WriteString(bw, "track,seq,kind,cycle,ref,addr,level,flags,arg\n")
	for i := range tr.Streams {
		st := &tr.Streams[i]
		for _, ev := range st.Events {
			fmt.Fprintf(bw, "%s,%d,%s,%d,%d,0x%x,%d,%d,%d\n",
				csvEscape(st.Track), ev.Seq, ev.Kind.String(),
				ev.Cycle, ev.Ref, ev.Addr, ev.Level, ev.Flags, ev.Arg)
		}
	}
	return bw.Flush()
}

// csvEscape quotes a track label if it contains CSV metacharacters.
func csvEscape(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			return fmt.Sprintf("%q", s)
		}
	}
	return s
}
