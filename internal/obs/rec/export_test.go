package rec

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// sampleTrace builds a two-stream trace exercising every kind, flag
// bits, large addresses, and a nonzero drop count.
func sampleTrace() *Trace {
	var evs []Event
	seq := uint64(0)
	add := func(k Kind, cycle, ref, addr uint64, level, flags uint8, arg uint64) {
		evs = append(evs, Event{Seq: seq, Cycle: cycle, Ref: ref, Addr: addr, Arg: arg, Kind: k, Level: level, Flags: flags})
		seq++
	}
	add(KindTaskStart, 0, 0, 0, 0, 0, 0)
	add(KindBaseline, 0, 0, 0, 0, 0, 123456)
	add(KindStrike, 10, 1, 0x4000_1230, 0, 0, 2)
	add(KindDecipher, 40, 2, 0x4000_1230, 0, 0, 2)
	add(KindVerify, 40, 2, 0x4000_1230, 0, FlagFail, 55)
	add(KindTrap, 40, 2, 0x4000_1230, 0, 0, 100)
	add(KindFill, 40, 2, 0x4000_1230, 0, FlagChip, 210)
	add(KindNodeFetch, 40, 2, 1<<56|7, 1, FlagUpdate, 30)
	add(KindNodeHit, 40, 2, 2<<56|1, 2, 0, 0)
	add(KindDirtyPropagate, 40, 2, 1<<56|3, 1, 0, 24)
	add(KindEncipher, 90, 3, 0xffff_ffff_ffff_ffe0, 0, FlagInner, 2)
	add(KindRetag, 90, 3, 0xffff_ffff_ffff_ffe0, 0, 0, 12)
	add(KindWriteback, 90, 3, 0xffff_ffff_ffff_ffe0, 1, FlagFlush, 80)
	add(KindWriteThrough, 120, 4, 0x40, 0, 0, 60)
	add(KindTaskEnd, 500, 4, 0, 0, 0, 500)

	second := []Event{
		{Seq: 5, Cycle: 9, Ref: 1, Addr: 0x80, Kind: KindFill, Level: 0, Flags: FlagChip, Arg: 33},
		{Seq: 7, Cycle: 12, Ref: 2, Addr: 0, Kind: KindMemoHit, Arg: 0},
	}
	return &Trace{Streams: []Stream{
		{Track: "task000 engine=aegis auth=ctree", Events: evs},
		{Track: `quoted "track", with comma`, Events: second, Dropped: 5},
	}}
}

// The headline export contract: WriteChrome emits valid JSON that
// DecodeChrome inverts losslessly, and Validate accepts it.
func TestChromeRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := WriteChrome(&buf, tr); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("WriteChrome produced invalid JSON")
	}
	got, err := DecodeChrome(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(got); err != nil {
		t.Fatal(err)
	}
	if len(got.Streams) != len(tr.Streams) {
		t.Fatalf("decoded %d streams, want %d", len(got.Streams), len(tr.Streams))
	}
	for i := range tr.Streams {
		want, have := tr.Streams[i], got.Streams[i]
		if have.Track != want.Track {
			t.Errorf("stream %d track = %q, want %q", i, have.Track, want.Track)
		}
		if have.Dropped != want.Dropped {
			t.Errorf("stream %d dropped = %d, want %d", i, have.Dropped, want.Dropped)
		}
		if len(have.Events) != len(want.Events) {
			t.Fatalf("stream %d has %d events, want %d", i, len(have.Events), len(want.Events))
		}
		for j := range want.Events {
			if have.Events[j] != want.Events[j] {
				t.Errorf("stream %d event %d = %+v, want %+v", i, j, have.Events[j], want.Events[j])
			}
		}
	}
}

// Exporters are part of the byte-determinism contract: two serializations
// of the same trace are identical bytes.
func TestExportDeterministic(t *testing.T) {
	tr := sampleTrace()
	var a, b, c, d bytes.Buffer
	if err := WriteChrome(&a, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteChrome(&b, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("WriteChrome is not deterministic")
	}
	if err := WriteCSV(&c, tr); err != nil {
		t.Fatal(err)
	}
	if err := WriteCSV(&d, tr); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(c.Bytes(), d.Bytes()) {
		t.Error("WriteCSV is not deterministic")
	}
}

func TestCSVShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if lines[0] != "track,seq,kind,cycle,ref,addr,level,flags,arg" {
		t.Errorf("header = %q", lines[0])
	}
	wantRows := sampleTrace().Len()
	if len(lines)-1 != wantRows {
		t.Errorf("%d data rows, want %d", len(lines)-1, wantRows)
	}
	// The comma-bearing track label must be quoted, not split.
	var quoted bool
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, `"quoted \"track\", with comma"`) {
			quoted = true
		}
	}
	if !quoted {
		t.Error("track label with comma was not CSV-escaped")
	}
}

func TestValidateRejectsNonMonotoneSeq(t *testing.T) {
	tr := &Trace{Streams: []Stream{{
		Track: "t",
		Events: []Event{
			{Seq: 3, Kind: KindFill},
			{Seq: 3, Kind: KindTrap},
		},
	}}}
	if err := Validate(tr); err == nil {
		t.Error("Validate accepted a repeated sequence number")
	}
	tr.Streams[0].Events[1].Seq = 2
	if err := Validate(tr); err == nil {
		t.Error("Validate accepted a decreasing sequence number")
	}
	tr.Streams[0].Events[1] = Event{Seq: 9, Kind: kindCount + 1}
	if err := Validate(tr); err == nil {
		t.Error("Validate accepted an invalid kind")
	}
}

// Lane assignment keeps every kind on a stable display row.
func TestLaneMapping(t *testing.T) {
	for _, tc := range []struct {
		ev   Event
		want int
	}{
		{Event{Kind: KindTaskStart}, laneLifecycle},
		{Event{Kind: KindFill, Level: 0}, laneCacheBase},
		{Event{Kind: KindWriteback, Level: 1}, laneCacheBase + 1},
		{Event{Kind: KindDecipher}, laneEDU},
		{Event{Kind: KindNodeFetch}, laneAuth},
		{Event{Kind: KindStrike}, laneAttack},
		{Event{Kind: KindTrap}, laneAttack},
	} {
		if got := laneOf(tc.ev); got != tc.want {
			t.Errorf("laneOf(%s) = %d, want %d", tc.ev.Kind, got, tc.want)
		}
	}
	seen := map[string]bool{}
	for lane := 0; lane <= laneAttack+1; lane++ {
		name := laneName(lane)
		if name == "" || seen[name] {
			t.Errorf("lane %d name %q empty or duplicated", lane, name)
		}
		seen[name] = true
	}
}
