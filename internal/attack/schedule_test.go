package attack

import (
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu/products"
	"repro/internal/sim/authtree"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// firmwareRun assembles an AEGIS system (counter-mode: writebacks
// produce fresh ciphertext, so replay is meaningful) with the given
// authenticator, drives the firmware workload under an attack schedule,
// and returns the schedule and report.
func firmwareRun(t *testing.T, auth string, rate float64, refs int) (*Schedule, soc.Report) {
	t.Helper()
	eng, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0x5eed)
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	switch auth {
	case "none":
	case "tree", "ctree":
		variant := authtree.HashTree
		if auth == "ctree" {
			variant = authtree.CounterTree
		}
		cfg.Verifier, err = authtree.New(authtree.Config{
			Key: []byte("0123456789abcdef"), LineBytes: 32,
			Regions: []authtree.Region{
				{Base: 0, Bytes: 1 << 20},
				{Base: 0x4000_0000, Bytes: 1 << 20},
			},
			NodeCacheBytes: 4 << 10, Variant: variant,
		})
	case "flat-mac":
		cfg.Verifier, err = authtree.NewFlat(authtree.FlatConfig{Key: []byte("0123456789abcdef")})
	default:
		t.Fatalf("unknown auth %q", auth)
	}
	if err != nil {
		t.Fatal(err)
	}
	sched := NewSchedule(ScheduleConfig{Seed: 99, PerTenK: rate, LineBytes: 32})
	cfg.Intruder = sched
	cfg.OnViolation = sched.OnViolation
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	src := trace.FirmwareSource(trace.Config{
		Refs: refs, Seed: 42, LoadFraction: 0.35, WriteFraction: 0.4, JumpRate: 0.03, Locality: 0.5,
	})
	return sched, s.Run(src)
}

// Under a tree authenticator, a sustained attack campaign must be
// substantially detected; under a confidentiality-only system, nothing
// is ever detected.
func TestScheduleDetection(t *testing.T) {
	sched, rep := firmwareRun(t, "tree", 8, 60000)
	if sched.Injected == 0 {
		t.Fatal("schedule never injected a tamper")
	}
	if sched.DetectionRate() < 0.5 {
		t.Errorf("detection rate %.2f (detected %d of %d), want >= 0.5",
			sched.DetectionRate(), sched.Detected, sched.Injected)
	}
	if sched.Detected > 0 && sched.MeanLatency() <= 0 {
		t.Error("detections recorded but zero mean latency")
	}
	if rep.AuthViolations < sched.Detected {
		t.Errorf("report violations %d < schedule detections %d", rep.AuthViolations, sched.Detected)
	}

	none, noneRep := firmwareRun(t, "none", 8, 60000)
	if none.Injected == 0 {
		t.Fatal("schedule never injected against the unprotected system")
	}
	if none.Detected != 0 || noneRep.AuthViolations != 0 {
		t.Errorf("confidentiality-only system detected %d tampers, want 0", none.Detected)
	}
}

// flat-mac must detect strictly fewer strikes than a root-anchored
// tree under the same schedule: the delta is the replay kind.
func TestFlatMACMissesReplay(t *testing.T) {
	flat, _ := firmwareRun(t, "flat-mac", 8, 60000)
	tree, _ := firmwareRun(t, "tree", 8, 60000)
	if flat.DetectedByKind[KindReplay] != 0 {
		t.Errorf("flat-mac detected %d replays, want 0 (no freshness)", flat.DetectedByKind[KindReplay])
	}
	if tree.ByKind[KindReplay] > 0 && tree.DetectedByKind[KindReplay] == 0 {
		t.Errorf("tree detected no replays out of %d injected", tree.ByKind[KindReplay])
	}
	if tree.DetectedByKind[KindSpoof] == 0 || tree.DetectedByKind[KindSplice] == 0 {
		t.Errorf("tree detections by kind = %v, want every kind represented", tree.DetectedByKind)
	}
}

// Equal seeds must strike identically: the schedule is part of the
// campaign's byte-identical determinism contract.
func TestScheduleDeterminism(t *testing.T) {
	a, repA := firmwareRun(t, "ctree", 4, 40000)
	b, repB := firmwareRun(t, "ctree", 4, 40000)
	if a.Injected != b.Injected || a.Detected != b.Detected ||
		a.MeanLatency() != b.MeanLatency() || a.MaxLatency != b.MaxLatency {
		t.Errorf("schedule diverged across identical runs: %+v vs %+v",
			[4]float64{float64(a.Injected), float64(a.Detected), a.MeanLatency(), float64(a.MaxLatency)},
			[4]float64{float64(b.Injected), float64(b.Detected), b.MeanLatency(), float64(b.MaxLatency)})
	}
	if repA.Cycles != repB.Cycles {
		t.Errorf("cycles diverged: %d vs %d", repA.Cycles, repB.Cycles)
	}
}

// A zero-rate schedule must be inert.
func TestZeroRateScheduleIsInert(t *testing.T) {
	sched, rep := firmwareRun(t, "tree", 0, 20000)
	if sched.Injected != 0 {
		t.Errorf("zero-rate schedule injected %d tampers", sched.Injected)
	}
	if rep.AuthViolations != 0 {
		t.Errorf("zero-rate run reported %d violations", rep.AuthViolations)
	}
}
