// The active-adversary campaign axis: a deterministic, seed-derived
// attack schedule injectable into streaming simulation runs. Where the
// Spoof/Splice/Replay helpers in tamper.go probe a quiescent system
// once, a Schedule strikes repeatedly WHILE the workload runs, and the
// interesting observables become statistical: what fraction of tampers
// is ever detected, and how many references pass between injection and
// the fail-stop event (detection latency — bounded only by cache
// residency, which is why the survey-era literature measures it).

//repro:deterministic
package attack

import (
	"bytes"
	"math/rand"
	"slices"

	"repro/internal/obs/rec"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// TamperKind names one active-attack form.
type TamperKind int

const (
	// KindSpoof overwrites a line's ciphertext with attacker bytes.
	KindSpoof TamperKind = iota
	// KindSplice relocates valid ciphertext (and its tag) to another
	// address.
	KindSplice
	// KindReplay restores a stale ciphertext+tag snapshot at its own
	// address after the line has been legitimately rewritten.
	KindReplay
)

// String names the kind.
func (k TamperKind) String() string {
	switch k {
	case KindSplice:
		return "splice"
	case KindReplay:
		return "replay"
	default:
		return "spoof"
	}
}

// AllKinds is the default strike rotation.
var AllKinds = []TamperKind{KindSpoof, KindSplice, KindReplay}

// ScheduleConfig parameterizes an attack schedule.
type ScheduleConfig struct {
	// Seed derives every attacker decision; equal seeds strike
	// identically, which is what keeps -jobs N sweeps byte-identical.
	Seed int64
	// PerTenK is the strike rate in tampers per 10,000 references;
	// 0 disables the schedule.
	PerTenK float64
	// Kinds is the strike rotation; default AllKinds.
	Kinds []TamperKind
	// LineBytes is the target granule; default 32.
	LineBytes int
}

// Schedule is one active adversary. It implements soc.Intruder; its
// OnViolation method is the matching soc.Config.OnViolation observer.
// The adversary is realistic about what it can see: it targets only
// lines it has watched cross the external bus (a probe attacker knows
// the live address stream), which also means its targets are enrolled
// and plausibly re-read.
type Schedule struct {
	cfg      ScheduleConfig
	rng      *rand.Rand
	interval float64
	nextAt   float64
	kindIdx  int

	codeSeen, dataSeen reservoir

	// pending maps tampered line -> its injection record, awaiting a
	// violation at that line. Bounded by the distinct lines tampered.
	pending map[uint64]pendingTamper

	// Replay works in two phases: snapshot a data line, then restore it
	// once legitimate writeback traffic has made the snapshot stale.
	armed      bool
	armedAddr  uint64
	snapCT     []byte
	snapTag    [8]byte
	snapHadTag bool

	junk, ctBuf []byte

	// Injected counts strikes that actually mutated external state;
	// Detected those later flagged by the verifier.
	Injected, Detected uint64
	// ByKind counts injections per tamper kind (spoof, splice, replay).
	ByKind [3]uint64
	// DetectedByKind counts detections per kind.
	DetectedByKind [3]uint64
	latencySum     uint64
	// MaxLatency is the worst observed detection latency in references.
	MaxLatency uint64

	// rc is the flight recorder (nil = no-op): inject emits one
	// KindStrike event per tamper that actually mutated external state,
	// mirroring Injected exactly, which is what lets cmd/tracelab
	// rebuild the per-strike latency accounting from the stream alone.
	rc *rec.Recorder
}

// pendingTamper records one injected, not-yet-detected tamper.
type pendingTamper struct {
	ref  uint64
	kind TamperKind
}

// NewSchedule builds a schedule; a zero rate yields a schedule that
// never strikes (harmless to install).
func NewSchedule(cfg ScheduleConfig) *Schedule {
	if len(cfg.Kinds) == 0 {
		cfg.Kinds = AllKinds
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 32
	}
	sc := &Schedule{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		pending: make(map[uint64]pendingTamper),
		junk:    make([]byte, cfg.LineBytes),
		snapCT:  make([]byte, cfg.LineBytes),
		ctBuf:   make([]byte, cfg.LineBytes),
	}
	if cfg.PerTenK > 0 {
		sc.interval = 10000 / cfg.PerTenK
		sc.nextAt = sc.interval // a warmup window before the first strike
	}
	return sc
}

// Strike implements soc.Intruder: observe the reference stream, and
// when a strike is due, tamper with external state.
func (sc *Schedule) Strike(refIndex uint64, ref trace.Ref, s *soc.SoC) {
	la := ref.Addr &^ uint64(sc.cfg.LineBytes-1)
	if ref.Kind == trace.Fetch {
		sc.codeSeen.put(la)
	} else {
		sc.dataSeen.put(la)
	}
	if sc.interval == 0 || float64(refIndex) < sc.nextAt {
		return
	}
	sc.nextAt += sc.interval
	kind := sc.cfg.Kinds[sc.kindIdx%len(sc.cfg.Kinds)]
	sc.kindIdx++

	switch kind {
	case KindSpoof:
		addr, ok := sc.pickTarget(s, la)
		if !ok {
			return
		}
		sc.rng.Read(sc.junk)
		s.DRAM().Write(addr, sc.junk)
		sc.inject(addr, refIndex, kind)

	case KindSplice:
		src, ok1 := sc.codeSeen.pick(sc.rng)
		if !ok1 {
			src, ok1 = sc.dataSeen.pick(sc.rng)
		}
		dst, ok2 := sc.pickTarget(s, la)
		if !ok1 || !ok2 || src == dst {
			return
		}
		s.DRAM().ReadInto(src, sc.ctBuf)
		s.DRAM().Write(dst, sc.ctBuf)
		// A thorough attacker relocates the external tag too.
		if ts := tamperTagStore(s); ts != nil {
			if tag, had := ts.TagAt(src); had {
				ts.TamperTag(dst, tag)
			}
		}
		sc.inject(dst, refIndex, kind)

	case KindReplay:
		if !sc.armed {
			addr, ok := sc.dataSeen.pick(sc.rng)
			if !ok {
				return
			}
			if _, tampered := sc.pending[addr]; tampered {
				return // its external state is already attacker-made, not a legit snapshot
			}
			s.DRAM().ReadInto(addr, sc.snapCT)
			sc.snapHadTag = false
			if ts := tamperTagStore(s); ts != nil {
				sc.snapTag, sc.snapHadTag = ts.TagAt(addr)
			}
			sc.armedAddr, sc.armed = addr, true
			return // surveillance, not yet an injection
		}
		// Restore only once the snapshot has gone stale — replaying the
		// current contents is a no-op — and only while the line is off-
		// chip, or the next writeback would paper over the rollback.
		if _, tampered := sc.pending[sc.armedAddr]; tampered {
			// Another strike tampered this line after we armed: the
			// "changed DRAM" we would see is that tamper, and restoring
			// our (still-current, legitimate) snapshot would silently
			// repair it. Abandon this snapshot.
			sc.armed = false
			return
		}
		if s.Resident(sc.armedAddr) {
			return // stay armed
		}
		s.DRAM().ReadInto(sc.armedAddr, sc.ctBuf)
		if bytes.Equal(sc.ctBuf, sc.snapCT) {
			return // still fresh; stay armed
		}
		s.DRAM().Write(sc.armedAddr, sc.snapCT)
		if ts := tamperTagStore(s); ts != nil && sc.snapHadTag {
			ts.TamperTag(sc.armedAddr, sc.snapTag)
		}
		sc.inject(sc.armedAddr, refIndex, kind)
		sc.armed = false
	}
}

// pickTarget chooses the line a competent adversary would hit: one the
// CPU is likely to touch again (hot data first, code as fallback) but
// does not currently hold on-chip — a probe attacker sees fills and
// evictions, so it knows tampering a resident line is wasted effort
// (either served from cache untested, or overwritten by the writeback).
func (sc *Schedule) pickTarget(s *soc.SoC, curLine uint64) (uint64, bool) {
	for tries := 0; tries < 16; tries++ {
		addr, ok := sc.dataSeen.pick(sc.rng)
		if !ok {
			addr, ok = sc.codeSeen.pick(sc.rng)
		}
		if !ok {
			return 0, false
		}
		if addr == curLine {
			// The reference being processed right after this strike: it
			// may never have been filled, and first-sight enrollment
			// would launder the tamper into the trusted state.
			continue
		}
		if _, tampered := sc.pending[addr]; tampered {
			continue // already owned; re-tampering adds nothing
		}
		if !s.Resident(addr) {
			return addr, true
		}
	}
	// Everything hot is on-chip right now: wait for the next slot
	// rather than waste a tamper a writeback will erase.
	return 0, false
}

// SetRecorder installs the flight recorder (nil to disable). The SoC
// stamps the recorder before every Strike call, so injection events
// carry the right reference index without the schedule owning a clock.
func (sc *Schedule) SetRecorder(r *rec.Recorder) {
	if sc != nil {
		sc.rc = r
	}
}

func (sc *Schedule) inject(addr, refIndex uint64, kind TamperKind) {
	if _, tampered := sc.pending[addr]; tampered {
		// A second tamper of a still-undetected line is not a new
		// attack opportunity; keep the original injection time.
		return
	}
	sc.Injected++
	sc.ByKind[kind]++
	sc.pending[addr] = pendingTamper{ref: refIndex, kind: kind} //repro:allow per-strike bookkeeping; strikes are sparse events, never on the per-reference fast path
	sc.rc.Emit(rec.KindStrike, addr, 0, 0, uint64(kind))
}

// OnViolation matches soc.Config.OnViolation: credit a detected strike
// and record its latency in references.
func (sc *Schedule) OnViolation(refIndex, lineAddr uint64) {
	p, ok := sc.pending[lineAddr]
	if !ok {
		return
	}
	delete(sc.pending, lineAddr)
	sc.Detected++
	sc.DetectedByKind[p.kind]++
	lat := refIndex - p.ref
	sc.latencySum += lat
	if lat > sc.MaxLatency {
		sc.MaxLatency = lat
	}
}

// DetectionRate is detected / injected (0 with no injections).
func (sc *Schedule) DetectionRate() float64 {
	if sc.Injected == 0 {
		return 0
	}
	return float64(sc.Detected) / float64(sc.Injected)
}

// MeanLatency is the mean detection latency in references over the
// detected tampers (0 if none was detected).
func (sc *Schedule) MeanLatency() float64 {
	if sc.Detected == 0 {
		return 0
	}
	return float64(sc.latencySum) / float64(sc.Detected)
}

// tamperTagStore finds the external tag memory the adversary can write:
// the verifier's (tree/flat authenticators) or the engine's
// (edu/integrity wrapper).
func tamperTagStore(s *soc.SoC) tagStore {
	if ts, ok := s.Verifier().(tagStore); ok {
		return ts
	}
	if ts, ok := s.Engine().(tagStore); ok {
		return ts
	}
	return nil
}

// reservoir is a fixed ring of recently observed line addresses — the
// attacker's notebook of live bus traffic. Fixed-size and index-based:
// observing a reference never allocates.
type reservoir struct {
	buf  [1024]uint64
	n    int // valid entries
	next int // ring cursor
}

func (r *reservoir) put(addr uint64) {
	r.buf[r.next] = addr
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
}

// pick draws from the middle-aged band of the observation ring. The
// youngest entries are still cache-resident (tampering them is wasted:
// served on-chip, or the writeback erases the tamper); the oldest have
// likely rotated out of the workload's live set and will never be
// re-read. The band between — recently evicted but still live — is
// where a tamper both persists and gets re-fetched.
func (r *reservoir) pick(rng *rand.Rand) (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	lo, hi := 64, 1024 // how far back in observations to look
	if hi > r.n {
		hi = r.n
	}
	if lo >= hi {
		lo = 0
	}
	back := 1 + lo + rng.Intn(hi-lo)
	return r.buf[(r.next-back+len(r.buf))%len(r.buf)], true
}

// PendingAddrs lists tampered lines still awaiting detection (debug),
// in ascending address order so callers see a stable listing.
func (sc *Schedule) PendingAddrs() []uint64 {
	out := make([]uint64, 0, len(sc.pending))
	for a := range sc.pending {
		out = append(out, a)
	}
	slices.Sort(out)
	return out
}
