package attack

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/modes"
	"repro/internal/sim/bus"
)

func TestProbeCaptureAndSearch(t *testing.T) {
	p := &Probe{}
	p.Observe(bus.Beat{Dir: bus.Read, Addr: 0x10, Data: []byte("hello ")})
	p.Observe(bus.Beat{Dir: bus.Write, Addr: 0x20, Data: []byte("world")})
	if !p.ContainsPlaintext([]byte("lo wor")) {
		t.Error("cross-beat plaintext not found")
	}
	if p.ContainsPlaintext([]byte("absent")) {
		t.Error("false positive")
	}
	at := p.AddressTrace()
	if len(at) != 2 || at[0] != 0x10 || at[1] != 0x20 {
		t.Errorf("address trace %v", at)
	}
}

func TestDuplicateBlockRatio(t *testing.T) {
	// 4 identical 16-byte blocks: 1 unique of 4 → ratio 0.75.
	data := bytes.Repeat([]byte("0123456789abcdef"), 4)
	if got := DuplicateBlockRatio(data, 16); got != 0.75 {
		t.Errorf("ratio = %v, want 0.75", got)
	}
	// All distinct blocks → 0.
	distinct := make([]byte, 64)
	for i := range distinct {
		distinct[i] = byte(i)
	}
	if got := DuplicateBlockRatio(distinct, 16); got != 0 {
		t.Errorf("distinct ratio = %v", got)
	}
	// Degenerate inputs.
	if DuplicateBlockRatio(nil, 16) != 0 || DuplicateBlockRatio(data, 0) != 0 {
		t.Error("degenerate guards missing")
	}
}

// ECB preserves plaintext block equalities; LineCBC destroys them — the
// attack-side view of experiment E4.
func TestECBLeakVisibleThroughAnalysis(t *testing.T) {
	blk, err := aes.New(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte("same 16b blocks!"), 32)

	ecbCT := make([]byte, len(plain))
	modes.NewECB(blk).Encrypt(ecbCT, plain)
	if got := DuplicateBlockRatio(ecbCT, 16); got < 0.9 {
		t.Errorf("ECB of repeated plaintext should leak heavily, ratio %v", got)
	}

	lcbc := modes.NewBlockCBC(blk, modes.IVCounter, 5)
	cbcCT := make([]byte, len(plain))
	for off := 0; off < len(plain); off += 32 {
		lcbc.EncryptBlockAt(uint64(off), cbcCT[off:off+32], plain[off:off+32])
	}
	if got := DuplicateBlockRatio(cbcCT, 16); got > 0.05 {
		t.Errorf("address-bound CBC should not leak, ratio %v", got)
	}
}

type rewriteEnc struct {
	bc *modes.BlockCBC
}

func (r rewriteEnc) EncryptLine(addr uint64, dst, src []byte) { r.bc.EncryptBlockAt(addr, dst, src) }

func TestRewriteLeakRandomVsCounterIV(t *testing.T) {
	blk, _ := aes.New(make([]byte, 16))
	line := bytes.Repeat([]byte{0x77}, 32)

	random := rewriteEnc{modes.NewBlockCBC(blk, modes.IVRandom, 9)}
	if got := RewriteLeak(random, 0x1000, line, 10); got != 9 {
		t.Errorf("random IV rewrites: %d repeats, want 9", got)
	}
	counter := rewriteEnc{modes.NewBlockCBC(blk, modes.IVCounter, 9)}
	if got := RewriteLeak(counter, 0x1000, line, 10); got != 0 {
		t.Errorf("counter IV rewrites: %d repeats, want 0", got)
	}
}

func TestBirthdayProbability(t *testing.T) {
	// Degenerate cases.
	if BirthdayCollisionProbability(0, 10) != 0 || BirthdayCollisionProbability(64, 1) != 0 {
		t.Error("degenerate guards missing")
	}
	// The classic anchor: 23 people, 365 "days" ≈ 8.5 bits.
	p := BirthdayCollisionProbability(9, 23) // 512 slots, a bit under 365-day odds
	if p < 0.3 || p > 0.6 {
		t.Errorf("birthday anchor out of band: %v", p)
	}
	// Monotone in n.
	if BirthdayCollisionProbability(32, 1000) >= BirthdayCollisionProbability(32, 100000) {
		t.Error("not monotone in samples")
	}
	// 2^(n/2) samples give ~39%+.
	if got := BirthdayCollisionProbability(32, 1<<16); got < 0.35 {
		t.Errorf("sqrt-space collision probability %v", got)
	}
}

// The survey's "lifetime of at most 10 years": a key a class-II attacker
// can almost reach today falls within ~a decade under Moore's law, while
// 128-bit keys outlive any doubling cadence that matters.
func TestBruteForceLifetimes(t *testing.T) {
	b := BruteForce{KeysPerSecond: 1e8, DoublingYears: 1.5}

	des := b.YearsToBreak(56)
	if des < 1 || des > 25 {
		t.Errorf("DES-56 lifetime %v years implausible", des)
	}
	aes128 := b.YearsToBreak(128)
	if aes128 < 80 {
		t.Errorf("AES-128 lifetime %v years — should be generations", aes128)
	}
	if b.YearsToBreak(8) > 0.001 {
		t.Error("an 8-bit space should fall instantly")
	}
	// Monotone in key size.
	prev := -1.0
	for _, row := range b.LifetimeTable() {
		if row.Years <= prev {
			t.Errorf("lifetime table not monotone at %d bits", row.Bits)
		}
		prev = row.Years
	}
	// Default doubling period kicks in when unset.
	d := BruteForce{KeysPerSecond: 1e9}
	if math.IsNaN(d.YearsToBreak(56)) || d.YearsToBreak(56) <= 0 {
		t.Error("default doubling period broken")
	}
}
