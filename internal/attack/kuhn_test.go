package attack

import (
	"bytes"
	"testing"
)

// A recognizable "protected program" the attacker wants.
func victimProgram() []byte {
	prog := []byte("PAY-TV ACCESS CONTROL v1.2 -- secret entitlement keys: 0xDEADBEEF 0xCAFEBABE -- ")
	return append(prog, bytes.Repeat([]byte{0x74, 0x2A, 0xF5, 0x90}, 32)...)
}

func TestVictimSetup(t *testing.T) {
	prog := victimProgram()
	v, err := NewVictim([]byte("battery!"), prog)
	if err != nil {
		t.Fatal(err)
	}
	// The external image must not contain the plaintext anywhere.
	if bytes.Contains(v.MemImage(), prog[:16]) {
		t.Fatal("victim memory holds plaintext")
	}
}

func TestKuhnAttackRecoversMemory(t *testing.T) {
	prog := victimProgram()
	v, err := NewVictim([]byte("battery!"), prog)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Kuhn(v, 0x8000, len(prog))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Dump, prog) {
		t.Fatal("dump does not match the protected program")
	}
	// Economics check: phase 1 is bounded by a few 256-way searches —
	// the survey's "8-bit instruction => 256 possibilities". Total probe
	// budget: ~5×256 for tables/search + one probe per dumped byte.
	maxProbes := 6*256 + len(prog)
	if res.Probes > maxProbes {
		t.Errorf("attack used %d probes, expected <= %d", res.Probes, maxProbes)
	}
}

func TestKuhnAttackDifferentKeys(t *testing.T) {
	prog := victimProgram()
	for _, key := range []string{"key-AAAA", "key-BBBB", "key-CCCC"} {
		v, err := NewVictim([]byte(key), prog)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Kuhn(v, 0x9000, 64)
		if err != nil {
			t.Fatalf("key %q: %v", key, err)
		}
		if !bytes.Equal(res.Dump, prog[:64]) {
			t.Fatalf("key %q: dump mismatch", key)
		}
	}
}

// The DS5240's 64-bit block closes the search: random 8-byte injections
// never assemble the gadget.
func TestDS5240Resists(t *testing.T) {
	hits, err := DS5240SearchInfeasible([]byte("0123456789abcdef"), 200000, 42)
	if err != nil {
		t.Fatal(err)
	}
	if hits != 0 {
		t.Errorf("64-bit search found %d gadget hits in 2e5 trials; expected 0", hits)
	}
	if _, err := DS5240SearchInfeasible(make([]byte, 5), 1, 1); err == nil {
		t.Error("bad key accepted")
	}
}

func TestExecuteInjectedBehaviours(t *testing.T) {
	v, _ := NewVictim([]byte("battery!"), []byte{0xAA, 0xBB})
	// An injection that decrypts to garbage produces no port activity
	// (overwhelmingly likely for a fixed frame).
	silent := 0
	for c := 0; c < 64; c++ {
		if v.ExecuteInjected(0x4000, [GadgetLen]byte{byte(c), byte(c), byte(c), byte(c)}) == nil {
			silent++
		}
	}
	if silent < 60 {
		t.Errorf("only %d/64 random injections silent; oracle too chatty", silent)
	}
}
