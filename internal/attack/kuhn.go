// The Kuhn cipher-instruction-search attack on the DS5002FP, as the
// survey recounts it: "The security principle of this microcontroller is
// based on a ciphering by block of 8-bit instructions. The hacker
// circumvents the cryptographic problem by finding a hole in the
// architecture processing and by applying exhaustive attack (8-bit
// instruction -> 256 possibilities). After having identified the MOV
// instruction, he dumped the external memory content in clear form
// through the parallel-port."

package attack

import (
	"fmt"

	"repro/internal/crypto/ds5002"
)

// The simplified 8051-flavoured ISA of the victim model. Only the
// opcodes the gadget needs have architectural effects; everything else
// is inert, and the attacker can distinguish "port emitted a byte" from
// "nothing happened" — the externally observable hole Kuhn exploited.
const (
	// OpMovADirect is "MOV A, direct": load A from the memory byte whose
	// 16-bit address follows the opcode. (Real 8051: 0xE5 with an 8-bit
	// address; widened to 16 bits here for a full dump.)
	OpMovADirect = 0xE5
	// OpMovPort is "MOV P1, A": emit A on the parallel port. Real 8051
	// encoding 0xF5 0x90; modeled as a single byte for clarity.
	OpMovPort = 0xF7
)

// GadgetLen is the dump gadget size in bytes:
// MOV A,direct(lo,hi) ; MOV P1,A.
const GadgetLen = 4

// Victim is the protected device: a DS5002-style part with a secret key
// and an enciphered external memory image, exposing only what a real
// board exposes — injectable bus bytes and the parallel port.
type Victim struct {
	part *ds5002.DS5002
	mem  []byte // external (enciphered) memory image
}

// NewVictim loads the plaintext program into a freshly keyed part.
func NewVictim(key, program []byte) (*Victim, error) {
	part, err := ds5002.NewDS5002(key)
	if err != nil {
		return nil, err
	}
	v := &Victim{part: part, mem: make([]byte, ds5002.MemSize)}
	for i, b := range program {
		v.part.Store(v.mem, uint16(i), b)
	}
	return v, nil
}

// MemImage exposes the raw enciphered external memory — what the
// attacker can already read by desoldering; useless without the cipher.
func (v *Victim) MemImage() []byte { return v.mem }

// ExecuteInjected models the attacker driving the bus: the CPU fetches
// GadgetLen bytes starting at addr, but the attacker substitutes the
// bytes on the data lines with `injected` (ciphertext, since they enter
// the part's decryptor). The return value is what appears on the
// parallel port (nil if nothing). This is the "hole in the architecture
// processing": behavior observable per injected instruction.
func (v *Victim) ExecuteInjected(addr uint16, injected [GadgetLen]byte) []byte {
	// The part decrypts each injected byte with its per-address cipher.
	var plain [GadgetLen]byte
	for i := range injected {
		plain[i] = v.part.DecryptByte(addr+uint16(i), injected[i])
	}
	// Interpret: MOV A,direct lo hi ; MOV P1,A
	if plain[0] == OpMovADirect && plain[3] == OpMovPort {
		target := uint16(plain[1]) | uint16(plain[2])<<8
		a := v.part.Load(v.mem, target)
		return []byte{a}
	}
	// Single-instruction probe: MOV P1,A with the reset value of A.
	if plain[0] == OpMovPort {
		return []byte{0x00}
	}
	return nil
}

// KuhnResult reports the attack outcome.
type KuhnResult struct {
	// Probes is the number of injected executions used.
	Probes int
	// Dump is the recovered plaintext memory.
	Dump []byte
}

// Kuhn runs the full attack against v, recovering n bytes of plaintext
// memory. Phase 1 is the cipher instruction search: at a scratch window,
// exhaust the 256 possible ciphertext bytes per position to identify the
// gadget bytes' encryptions (the survey's "8-bit instruction -> 256
// possibilities"). Phase 2 drives the recovered dump gadget across the
// address space, reading every byte through the port.
func Kuhn(v *Victim, window uint16, n int) (*KuhnResult, error) {
	res := &KuhnResult{}

	// --- Phase 1a: find E(window, OpMovPort): inject candidate as a
	// single instruction; the port emits A's reset value when we hit it.
	findPort := func(addr uint16) (byte, error) {
		for c := 0; c < 256; c++ {
			res.Probes++
			var inj [GadgetLen]byte
			inj[0] = byte(c)
			if out := v.ExecuteInjected(addr, inj); len(out) == 1 && out[0] == 0x00 {
				return byte(c), nil
			}
		}
		return 0, fmt.Errorf("attack: no ciphertext decodes to MOV P1,A at %#x", addr)
	}
	// The gadget needs MOV P1,A at window+3.
	portByte, err := findPort(window + 3)
	if err != nil {
		return nil, err
	}
	// And a sentinel MOV P1,A at the window start, used to calibrate the
	// search for the first gadget byte below.
	if _, err := findPort(window); err != nil {
		return nil, err
	}

	// --- Phase 1b: find E(window, OpMovADirect). With the port opcode
	// pinned at window+3, sweep the first byte: when it decodes to
	// MOV A,direct the machine loads A from the (arbitrary) operand
	// address and the port emits it — observable regardless of value.
	var movByte byte
	found := false
	for c := 0; c < 256 && !found; c++ {
		res.Probes++
		inj := [GadgetLen]byte{byte(c), 0, 0, portByte}
		if out := v.ExecuteInjected(window, inj); len(out) == 1 {
			// Exclude the single-byte port hit found in 1a (emits 0x00
			// from position 0 without consuming operands); the collision
			// is resolved by changing the operand and observing a
			// different byte, but for the model the opcode values differ
			// so a second injection disambiguates.
			inj2 := [GadgetLen]byte{byte(c), 1, 0, portByte}
			out2 := v.ExecuteInjected(window, inj2)
			if len(out2) == 1 && (out2[0] != out[0] || v.distinct(window, byte(c))) {
				movByte = byte(c)
				found = true
			}
		}
	}
	if !found {
		return nil, fmt.Errorf("attack: MOV A,direct not identified at %#x", window)
	}

	// --- Phase 1c: the operand bytes at window+1/window+2 must encode
	// attacker-chosen addresses, so recover the full 256-entry
	// encryption tables for those two positions by exhaustive search:
	// inject each candidate as the low operand and observe which memory
	// byte arrives. Mapping plaintext->ciphertext needs the inverse
	// direction, so build decrypt tables by probing all 256 values.
	encLo := v.buildOperandTable(window+1, res)
	encHi := v.buildOperandTable(window+2, res)

	// --- Phase 2: dump memory through the port.
	res.Dump = make([]byte, n)
	for a := 0; a < n; a++ {
		res.Probes++
		inj := [GadgetLen]byte{movByte, encLo[byte(a)], encHi[byte(a>>8)], portByte}
		out := v.ExecuteInjected(window, inj)
		if len(out) != 1 {
			return nil, fmt.Errorf("attack: dump gadget failed at %#x", a)
		}
		res.Dump[a] = out[0]
	}
	return res, nil
}

// distinct reports whether candidate decodes differently from OpMovPort
// at addr (disambiguation helper — uses only observable behavior: the
// one-byte probe's output position).
func (v *Victim) distinct(addr uint16, candidate byte) bool {
	var inj [GadgetLen]byte
	inj[0] = candidate
	out := v.ExecuteInjected(addr, inj)
	// A bare MOV P1,A emits 0x00; MOV A,direct with zeroed operands
	// reads mem[decrypt(0,0)...] — still emits something only when the
	// trailing port opcode runs, which the single-byte frame lacks.
	return out == nil
}

// buildOperandTable recovers, for one operand position, the ciphertext
// byte that decodes to each plaintext value 0..255 — 256 probes, one per
// candidate, exactly the survey's "8-bit instruction -> 256
// possibilities" economics applied to an operand byte.
//
// Mechanism in the real attack: Kuhn obtained known-plaintext pairs for
// chosen addresses by letting the part's loader write attacker-supplied
// bytes through the bus encryptor and recording the enciphered result on
// the bus (ciphertext is observable at the pins; the plaintext was his
// own). With pairs for the operand address, the bijection
// DecryptByte(addr, ·) is read off candidate by candidate. The model
// grants that known-plaintext step directly: each probe queries the
// part's per-address decryptor once.
func (v *Victim) buildOperandTable(addr uint16, res *KuhnResult) [256]byte {
	var enc [256]byte
	for c := 0; c < 256; c++ {
		res.Probes++
		pt := v.part.DecryptByte(addr, byte(c))
		enc[pt] = byte(c)
	}
	return enc
}

// DS5240SearchInfeasible demonstrates the successor's fix: Kuhn's attack
// needs the injected block to decrypt to a *chosen* instruction sequence
// (the dump gadget with attacker-controlled operands). With 8-bit
// ciphering that is a 256-way search per byte; with 64-bit blocks the
// bytes cannot be searched independently — the attacker must hit a full
// chosen 8-byte plaintext, probability 2^-64 per injection. `trials`
// random injections are run and the chosen-gadget hit count returned
// (expected 0) — the paper: "the 8-bit based ciphering passes to 64-bit
// based ciphering", closing the attack.
func DS5240SearchInfeasible(key []byte, trials int, seed int64) (hits int, err error) {
	d, err := ds5002.NewDS5240(key)
	if err != nil {
		return 0, err
	}
	// Deterministic xorshift for reproducibility.
	x := uint64(seed) | 1
	next := func() uint64 {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		return x
	}
	// The chosen gadget: dump mem[0x1234] then pad with NOPs (0x00).
	target := [8]byte{OpMovADirect, 0x34, 0x12, OpMovPort, 0, 0, 0, 0}
	var block [8]byte
	var plain [8]byte
	for i := 0; i < trials; i++ {
		v := next()
		for j := range block {
			block[j] = byte(v >> (8 * uint(j)))
		}
		d.DecryptBlockAt(0x8000, plain[:], block[:])
		if plain == target {
			hits++
		}
	}
	return hits, nil
}
