// Package attack implements the adversary of the survey's §2.3: a
// class-II attacker whose "physical access to data is limited to bus
// probing", whose goal is "to prevent ... understanding the contents of
// the data stored in external memory" — here, the attacker trying to
// defeat that goal. It provides:
//
//   - Probe: a bus tap recording every beat (the board-level logic
//     analyzer the survey says costs almost nothing).
//   - ECB leakage analysis: duplicate-ciphertext-block counting, the
//     measurable form of ECB's determinism weakness (experiment E4).
//   - Plaintext search: scanning a capture or memory dump for known
//     plaintext, the zero-effort attack on an unencrypted bus.
//   - RewriteLeak: detecting pad/IV reuse across rewrites of the same
//     address, the exposure behind the birthday attack on AEGIS-style
//     random-vector IVs (E6).
//   - Brute-force lifetime: the §1 "about 10 years" cryptosystem
//     lifetime model under Moore's law (E13).
//
// The Kuhn cipher-instruction-search attack lives in kuhn.go.
package attack

import (
	"bytes"
	"math"

	"repro/internal/sim/bus"
)

// Probe records bus traffic. It implements bus.Probe; attach with
// soc.Bus().Attach(probe).
type Probe struct {
	// Beats is every observed transaction in order.
	Beats []bus.Beat
}

// Observe implements bus.Probe.
func (p *Probe) Observe(b bus.Beat) { p.Beats = append(p.Beats, b) }

// Data concatenates all observed data bytes (the data-line capture).
func (p *Probe) Data() []byte {
	var out []byte
	for _, b := range p.Beats {
		out = append(out, b.Data...)
	}
	return out
}

// ContainsPlaintext reports whether the capture contains needle verbatim
// — the attack that succeeds trivially on an unencrypted bus.
func (p *Probe) ContainsPlaintext(needle []byte) bool {
	return bytes.Contains(p.Data(), needle)
}

// DuplicateBlockRatio measures ECB-style leakage in a byte stream: split
// data into blockSize blocks and return 1 - unique/total. A deterministic
// per-block cipher preserves plaintext block equalities, so structured
// data (zero pages, repeated constants, copied code) shows up as a high
// ratio; a chained or address-bound mode pushes it to ~0.
func DuplicateBlockRatio(data []byte, blockSize int) float64 {
	if blockSize <= 0 || len(data) < blockSize {
		return 0
	}
	total := len(data) / blockSize
	seen := make(map[string]bool, total)
	for i := 0; i+blockSize <= len(data); i += blockSize {
		seen[string(data[i:i+blockSize])] = true
	}
	return 1 - float64(len(seen))/float64(total)
}

// AddressTrace extracts the observed address sequence: even with perfect
// data encryption, the address lines leak the access pattern (the leak
// the survey's key-management reference [2] worries about; reported for
// completeness in the survey table).
func (p *Probe) AddressTrace() []uint64 {
	out := make([]uint64, len(p.Beats))
	for i, b := range p.Beats {
		out[i] = b.Addr
	}
	return out
}

// LineEncryptor is the slice of the engine interface RewriteLeak needs.
type LineEncryptor interface {
	EncryptLine(addr uint64, dst, src []byte)
}

// RewriteLeak enciphers the same plaintext line at the same address
// `writes` times and reports how many ciphertexts repeat an earlier one.
// A random-vector IV scheme returns writes-1 (every rewrite repeats); a
// counter IV scheme returns 0. This is the observable the birthday
// attack on AEGIS's random IVs aggregates.
func RewriteLeak(e LineEncryptor, addr uint64, line []byte, writes int) int {
	seen := make(map[string]bool, writes)
	repeats := 0
	ct := make([]byte, len(line))
	for i := 0; i < writes; i++ {
		e.EncryptLine(addr, ct, line)
		if seen[string(ct)] {
			repeats++
		}
		seen[string(ct)] = true
	}
	return repeats
}

// BirthdayCollisionProbability is the analytic probability that n
// uniformly drawn IVs of `bits` bits contain at least one collision —
// the attacker's waiting game against a random-vector IV.
func BirthdayCollisionProbability(bits int, n uint64) float64 {
	if bits <= 0 || n < 2 {
		return 0
	}
	// 1 - exp(-n(n-1) / 2^(bits+1)), the standard approximation.
	exponent := -float64(n) * float64(n-1) / math.Exp2(float64(bits)+1)
	return 1 - math.Exp(exponent)
}

// BruteForce models the §1 temporal problem: "the key must be long
// enough to thwart the brute force attack... a cryptosystem has a
// lifetime of at most 10 years due to the increase in computer
// processing power (Moore's law)".
type BruteForce struct {
	// KeysPerSecond is the attacker's current search rate.
	KeysPerSecond float64
	// DoublingYears is the Moore's-law doubling period (1.5 by default).
	DoublingYears float64
}

// YearsToBreak returns the expected years until a `bits`-bit keyspace is
// half-searched, accounting for the attacker's exponentially growing
// rate: solve ∫ r·2^(t/d) dt = 2^(bits-1).
func (b BruteForce) YearsToBreak(bits int) float64 {
	d := b.DoublingYears
	if d <= 0 {
		d = 1.5
	}
	r := b.KeysPerSecond * 365.25 * 24 * 3600 // keys per year now
	target := math.Exp2(float64(bits - 1))
	// ∫₀ᵀ r·2^(t/d) dt = r·d/ln2 ·(2^(T/d) − 1) = target
	x := target*math.Ln2/(r*d) + 1
	return d * math.Log2(x)
}

// LifetimeRow is one entry of the E13 table.
type LifetimeRow struct {
	Bits  int
	Years float64
}

// LifetimeTable evaluates YearsToBreak over the classic key sizes: DES
// (56), the DS5002 byte cipher's effective strength as Kuhn broke it
// (8), 3-DES EDE2 (80 effective), 3-DES EDE3 (112), AES (128).
func (b BruteForce) LifetimeTable() []LifetimeRow {
	out := []LifetimeRow{}
	for _, bits := range []int{8, 56, 64, 80, 112, 128} {
		out = append(out, LifetimeRow{Bits: bits, Years: b.YearsToBreak(bits)})
	}
	return out
}
