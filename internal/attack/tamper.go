// Active attacks on external memory — the threat the survey's closing
// section defers to future work: "attacks based on the modification of
// the fetched instructions". Three canonical forms are implemented
// against the simulated SoC: spoofing (arbitrary overwrite), splicing
// (relocating valid ciphertext to another address), and replay
// (restoring stale ciphertext at its own address).

package attack

import (
	"bytes"

	"repro/internal/sim/soc"
)

// TamperOutcome reports what one active attack achieved.
type TamperOutcome struct {
	// Accepted is true when the CPU consumed attacker-influenced data as
	// if it were genuine (the attack succeeded).
	Accepted bool
	// Detail describes what the CPU-side read returned.
	Detail string
}

// Spoof overwrites the ciphertext line at addr with attacker bytes and
// reads it back through the engine. Against a confidentiality-only
// engine the CPU happily deciphers garbage (accepted: the attacker
// steered execution); an integrity engine must return a zeroed
// (fail-stop) line.
func Spoof(s *soc.SoC, addr uint64, junk []byte) TamperOutcome {
	lineSize := len(junk)
	before := s.ReadPlain(addr, lineSize)
	s.DRAM().Write(addr, junk)
	after := s.ReadPlain(addr, lineSize)

	if allZero(after) {
		return TamperOutcome{Accepted: false, Detail: "fail-stop: line zeroed"}
	}
	if bytes.Equal(after, before) {
		return TamperOutcome{Accepted: false, Detail: "unchanged (tamper had no effect)"}
	}
	return TamperOutcome{Accepted: true, Detail: "CPU consumed attacker-modified data"}
}

// Splice copies the valid ciphertext line at src over the line at dst
// (both line-aligned, same length n) — Kuhn-style code relocation. An
// address-bound cipher garbles it; only an authenticated engine
// *detects* it; a plain ECB engine executes the relocated code verbatim.
func Splice(s *soc.SoC, srcAddr, dstAddr uint64, n int) TamperOutcome {
	srcPlain := s.ReadPlain(srcAddr, n)
	ct := s.DRAM().Dump(srcAddr, n)
	s.DRAM().Write(dstAddr, ct)
	// A thorough attacker relocates the authentication tag too (it lives
	// in external memory with the data); the MAC's address binding is
	// what must stop the splice, not tag absence.
	if ts := tamperTagStore(s); ts != nil {
		if tag, had := ts.TagAt(srcAddr); had {
			ts.TamperTag(dstAddr, tag)
		}
	}
	after := s.ReadPlain(dstAddr, n)

	switch {
	case allZero(after):
		return TamperOutcome{Accepted: false, Detail: "fail-stop: line zeroed"}
	case bytes.Equal(after, srcPlain):
		return TamperOutcome{Accepted: true, Detail: "relocated code accepted verbatim (no address binding)"}
	default:
		return TamperOutcome{Accepted: true, Detail: "garbled but consumed (address binding without authentication)"}
	}
}

// tagStore is implemented by authenticators whose tag memory is
// external (attacker-readable and -writable): the edu/integrity engine
// wrapper and the sim/authtree verifiers.
type tagStore interface {
	TagAt(addr uint64) ([8]byte, bool)
	TamperTag(addr uint64, tag [8]byte)
}

// Replay snapshots the ciphertext line at addr — INCLUDING its external
// authentication tag, if the engine stores one — lets mutate rewrite the
// line through legitimate means, restores the stale snapshot, and reads
// back. MAC-only engines accept the old (line, tag) pair, a rollback —
// the classic attack on spent credit counters; only freshness (on-chip
// version counters) refuses it. addr must be line-aligned and n one
// line.
func Replay(s *soc.SoC, addr uint64, n int, mutate func()) TamperOutcome {
	oldPlain := s.ReadPlain(addr, n)
	snapshot := s.DRAM().Dump(addr, n)
	var staleTag [8]byte
	var hadTag bool
	ts := tamperTagStore(s)
	hasStore := ts != nil
	if hasStore {
		staleTag, hadTag = ts.TagAt(addr)
	}
	mutate()
	s.DRAM().Write(addr, snapshot)
	if hasStore && hadTag {
		ts.TamperTag(addr, staleTag)
	}
	after := s.ReadPlain(addr, n)

	switch {
	case allZero(after):
		return TamperOutcome{Accepted: false, Detail: "fail-stop: stale line rejected"}
	case bytes.Equal(after, oldPlain):
		return TamperOutcome{Accepted: true, Detail: "stale value accepted (rollback succeeded)"}
	default:
		return TamperOutcome{Accepted: true, Detail: "stale ciphertext consumed as garbage"}
	}
}

func allZero(b []byte) bool {
	for _, v := range b {
		if v != 0 {
			return false
		}
	}
	return true
}
