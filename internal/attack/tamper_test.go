package attack

import (
	"bytes"
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/integrity"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
)

func buildSystem(t *testing.T, eng edu.Engine, image []byte) *soc.SoC {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadImage(0, image); err != nil {
		t.Fatal(err)
	}
	return s
}

func aegisEngine(t *testing.T) edu.Engine {
	t.Helper()
	e, err := products.AEGIS(make([]byte, 16), modes.IVCounter, 1)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func protectedEngine(t *testing.T, level integrity.Level) edu.Engine {
	t.Helper()
	e, err := integrity.New(integrity.Config{
		Inner: aegisEngine(t), MACKey: []byte("tag-key"),
		Level: level, ProtectedLines: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// statelessProtected wraps a stateless (ECB) inner so replay outcomes
// reflect the MAC level alone, not the inner engine's IV counters.
func statelessProtected(t *testing.T, level integrity.Level) edu.Engine {
	t.Helper()
	in, err := products.XOM(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	e, err := integrity.New(integrity.Config{
		Inner: in, MACKey: []byte("tag-key"),
		Level: level, ProtectedLines: 1 << 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func image() []byte {
	return bytes.Repeat([]byte("GENUINE FIRMWARE LINE 32 BYTES! "), 16)
}

func TestSpoofAgainstConfidentialityOnly(t *testing.T) {
	s := buildSystem(t, aegisEngine(t), image())
	out := Spoof(s, 0x40, bytes.Repeat([]byte{0xEE}, 32))
	if !out.Accepted {
		t.Errorf("confidentiality-only engine should consume spoofed data: %s", out.Detail)
	}
}

func TestSpoofAgainstIntegrity(t *testing.T) {
	s := buildSystem(t, protectedEngine(t, integrity.MACOnly), image())
	out := Spoof(s, 0x40, bytes.Repeat([]byte{0xEE}, 32))
	if out.Accepted {
		t.Errorf("integrity engine accepted spoofed data: %s", out.Detail)
	}
}

func TestSpliceOutcomes(t *testing.T) {
	img := append(bytes.Repeat([]byte("AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA"), 1),
		bytes.Repeat([]byte("BBBBBBBBBBBBBBBBBBBBBBBBBBBBBBBB"), 1)...)

	// ECB: relocation accepted verbatim (no address binding at all).
	ecbEng, err := products.XOM(make([]byte, 16)) // XOM model = ECB AES
	if err != nil {
		t.Fatal(err)
	}
	s := buildSystem(t, ecbEng, img)
	out := Splice(s, 0x00, 0x20, 32)
	if !out.Accepted || out.Detail != "relocated code accepted verbatim (no address binding)" {
		t.Errorf("ECB splice: %+v", out)
	}

	// AEGIS: address-bound IVs garble it, but the CPU still consumes it.
	s = buildSystem(t, aegisEngine(t), img)
	out = Splice(s, 0x00, 0x20, 32)
	if !out.Accepted {
		t.Errorf("address binding alone should not DETECT, only garble: %+v", out)
	}

	// Integrity: detected and zeroed.
	s = buildSystem(t, protectedEngine(t, integrity.MACOnly), img)
	out = Splice(s, 0x00, 0x20, 32)
	if out.Accepted {
		t.Errorf("authenticated splice accepted: %+v", out)
	}
}

func TestReplayOutcomes(t *testing.T) {
	balance := func(v byte) []byte { return bytes.Repeat([]byte{v}, 32) }

	run := func(eng edu.Engine) TamperOutcome {
		s := buildSystem(t, eng, balance(100))
		return Replay(s, 0, 32, func() {
			// Legitimate update: spend the balance via the engine.
			if err := s.LoadImage(0, balance(0)); err != nil {
				t.Fatal(err)
			}
		})
	}

	// Stateless inner (ECB): the MAC level alone decides the outcome.
	ecbEng, err := products.XOM(make([]byte, 16))
	if err != nil {
		t.Fatal(err)
	}
	if out := run(ecbEng); !out.Accepted {
		t.Errorf("plain stateless engine should accept the rollback: %+v", out)
	}
	if out := run(statelessProtected(t, integrity.MACOnly)); !out.Accepted {
		t.Errorf("MAC-only should accept the rollback (stale tag replayed too): %+v", out)
	}
	if out := run(statelessProtected(t, integrity.MACWithFreshness)); out.Accepted {
		t.Errorf("freshness should reject the rollback: %+v", out)
	}
	// An AEGIS counter-IV inner under MAC-only rejects the replay too:
	// the stale ciphertext decrypts under the new IV and fails the MAC.
	if out := run(protectedEngine(t, integrity.MACOnly)); out.Accepted {
		t.Errorf("counter-IV inner should implicitly reject replay: %+v", out)
	}
}

func TestSpoofNoopDetection(t *testing.T) {
	// Writing back the very same ciphertext is not a change; the helper
	// must report "unchanged" rather than a false success.
	s := buildSystem(t, aegisEngine(t), image())
	same := s.DRAM().Dump(0x40, 32)
	out := Spoof(s, 0x40, same)
	if out.Accepted {
		t.Errorf("no-op spoof misreported: %+v", out)
	}
}
