package trace

import "testing"

// Every named source must exist in both registries under the same key.
func TestSourcesAndGeneratorsKeysMatch(t *testing.T) {
	for name := range Sources {
		if _, ok := Generators[name]; !ok {
			t.Errorf("source %q has no materialized generator", name)
		}
	}
	for name := range Generators {
		if _, ok := Sources[name]; !ok {
			t.Errorf("generator %q has no streaming source", name)
		}
	}
}

func streamCfg() Config {
	return Config{
		Refs: 7000, Seed: 23,
		LoadFraction: 0.4, WriteFraction: 0.3, JumpRate: 0.05, Locality: 0.6,
	}
}

// A source consumed ref-by-ref must equal the drained trace built from
// the same config — the streaming and materialized forms are the same
// workload.
func TestStreamMatchesGenerator(t *testing.T) {
	for name, mkSource := range Sources {
		tr := Generators[name](streamCfg())
		src := mkSource(streamCfg())
		if src.Label() != tr.Name {
			t.Errorf("%s: label %q != trace name %q", name, src.Label(), tr.Name)
		}
		for i := range tr.Refs {
			r, ok := src.Next()
			if !ok {
				t.Fatalf("%s: source dried up at ref %d of %d", name, i, len(tr.Refs))
			}
			if r != tr.Refs[i] {
				t.Fatalf("%s: ref %d differs: stream %+v trace %+v", name, i, r, tr.Refs[i])
			}
		}
		if _, ok := src.Next(); ok {
			t.Errorf("%s: source longer than its trace", name)
		}
	}
}

// Reset must replay the exact stream.
func TestStreamResetReplays(t *testing.T) {
	for name, mkSource := range Sources {
		src := mkSource(streamCfg())
		first := Drain(src)
		src.Reset()
		second := Drain(src)
		if len(first.Refs) != len(second.Refs) {
			t.Fatalf("%s: replay length %d != %d", name, len(second.Refs), len(first.Refs))
		}
		for i := range first.Refs {
			if first.Refs[i] != second.Refs[i] {
				t.Fatalf("%s: replay diverged at ref %d", name, i)
			}
		}
	}
}

// A pristine source tolerates Reset (soc.Run rewinds unconditionally),
// even when built from an explicit Rand.
func TestPristineResetIsNoop(t *testing.T) {
	src := SequentialSource(Config{Refs: 100, Rand: NewRand(5)})
	src.Reset() // must not panic
	if tr := Drain(src); len(tr.Refs) != 100 {
		t.Errorf("got %d refs after pristine reset", len(tr.Refs))
	}
}

// A consumed explicit-Rand source cannot be rewound: it must fail loud,
// not silently produce a different stream.
func TestExplicitRandSourceSinglePass(t *testing.T) {
	src := SequentialSource(Config{Refs: 100, Rand: NewRand(5)})
	Drain(src)
	defer func() {
		if recover() == nil {
			t.Error("Reset of a consumed explicit-Rand source did not panic")
		}
	}()
	src.Reset()
}

// The multi-process stream must match its materialized form quantum for
// quantum.
func TestMultiProcessSourceMatchesTrace(t *testing.T) {
	cfg := MultiProcessConfig{
		Config:  Config{Refs: 6000, Seed: 31, LoadFraction: 0.3, WriteFraction: 0.3},
		Procs:   3,
		Quantum: 250,
	}
	tr := MultiProcess(cfg)
	src := MultiProcessSource(cfg)
	for i := range tr.Refs {
		r, ok := src.Next()
		if !ok {
			t.Fatalf("stream dried up at ref %d", i)
		}
		if r != tr.Refs[i] {
			t.Fatalf("ref %d differs: stream %+v trace %+v", i, r, tr.Refs[i])
		}
	}
	src.Reset()
	if replay := Drain(src); len(replay.Refs) != len(tr.Refs) {
		t.Fatalf("replay length %d != %d", len(replay.Refs), len(tr.Refs))
	}
}

// A *Trace is itself a RefSource: Next walks the slice, Reset rewinds.
func TestTraceIsARefSource(t *testing.T) {
	tr := Sequential(Config{Refs: 50, Seed: 2})
	var src RefSource = tr
	n := 0
	for {
		if _, ok := src.Next(); !ok {
			break
		}
		n++
	}
	if n != 50 {
		t.Fatalf("trace source yielded %d refs, want 50", n)
	}
	src.Reset()
	if r, ok := src.Next(); !ok || r != tr.Refs[0] {
		t.Error("reset trace source did not replay from the first ref")
	}
}

// Replayable must distinguish seed-derived sources (rewindable) from
// explicit-Rand sources (single-pass) for every registered workload —
// the property soc.Compare checks before it commits to replaying.
func TestReplayable(t *testing.T) {
	for name, mk := range Sources {
		if src := mk(Config{Refs: 10, Seed: 1}); !src.(interface{ Replayable() bool }).Replayable() {
			t.Errorf("%s: seeded source reports single-pass", name)
		}
		if src := mk(Config{Refs: 10, Rand: NewRand(1)}); src.(interface{ Replayable() bool }).Replayable() {
			t.Errorf("%s: explicit-Rand source reports replayable", name)
		}
	}
	mp := MultiProcessSource(MultiProcessConfig{Config: Config{Refs: 10, Rand: NewRand(2)}})
	if mp.(interface{ Replayable() bool }).Replayable() {
		t.Error("multi-process explicit-Rand source reports replayable")
	}
	tr := &Trace{Name: "mat", Refs: []Ref{{Kind: Fetch, Addr: 0, Size: 4}}}
	if !tr.Replayable() {
		t.Error("materialized trace reports single-pass")
	}
}
