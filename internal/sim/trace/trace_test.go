package trace

import (
	"math"
	"testing"
)

func TestKindString(t *testing.T) {
	if Fetch.String() != "fetch" || Load.String() != "load" || Store.String() != "store" {
		t.Error("Kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Error("unknown kind has empty name")
	}
}

func TestGeneratorsProduceRequestedLength(t *testing.T) {
	for name, gen := range Generators {
		tr := gen(Config{Refs: 1234, Seed: 1})
		if len(tr.Refs) != 1234 {
			t.Errorf("%s: got %d refs, want 1234", name, len(tr.Refs))
		}
		if tr.Name == "" {
			t.Errorf("%s: empty trace name", name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	for name, gen := range Generators {
		a := gen(Config{Refs: 500, Seed: 7})
		b := gen(Config{Refs: 500, Seed: 7})
		for i := range a.Refs {
			if a.Refs[i] != b.Refs[i] {
				t.Errorf("%s: ref %d differs between equal-seed runs", name, i)
				break
			}
		}
	}
}

func TestSeedChangesTrace(t *testing.T) {
	a := Sequential(Config{Refs: 500, Seed: 1, LoadFraction: 0.3, JumpRate: 0.1})
	b := Sequential(Config{Refs: 500, Seed: 2, LoadFraction: 0.3, JumpRate: 0.1})
	same := 0
	for i := range a.Refs {
		if a.Refs[i] == b.Refs[i] {
			same++
		}
	}
	if same == len(a.Refs) {
		t.Error("different seeds produced identical traces")
	}
}

func TestAddressesStayInRegions(t *testing.T) {
	cfg := Config{
		Refs: 5000, Seed: 3,
		CodeBase: 0x1000, CodeSize: 1 << 16,
		DataBase: 0x100000, DataSize: 1 << 18,
		LoadFraction: 0.5, WriteFraction: 0.3, JumpRate: 0.05,
	}
	tr := Sequential(cfg)
	for i, r := range tr.Refs {
		switch r.Kind {
		case Fetch:
			if r.Addr < cfg.CodeBase || r.Addr >= cfg.CodeBase+cfg.CodeSize {
				t.Fatalf("ref %d: fetch addr %#x outside code region", i, r.Addr)
			}
		case Load, Store:
			if r.Addr < cfg.DataBase || r.Addr >= cfg.DataBase+cfg.DataSize {
				t.Fatalf("ref %d: data addr %#x outside data region", i, r.Addr)
			}
		}
	}
}

func TestCodeOnlyHasNoData(t *testing.T) {
	tr := CodeOnly(Config{Refs: 2000, Seed: 4, JumpRate: 0.1})
	s := tr.Stats()
	if s.Loads != 0 || s.Stores != 0 {
		t.Errorf("code-only trace has %d loads, %d stores", s.Loads, s.Stores)
	}
	if s.Fetches != 2000 {
		t.Errorf("code-only: %d fetches, want 2000", s.Fetches)
	}
}

func TestWriteFractionKnob(t *testing.T) {
	lo := Sequential(Config{Refs: 20000, Seed: 5, LoadFraction: 0.5, WriteFraction: 0.1})
	hi := Sequential(Config{Refs: 20000, Seed: 5, LoadFraction: 0.5, WriteFraction: 0.9})
	flo := lo.Stats().WriteFraction()
	fhi := hi.Stats().WriteFraction()
	if math.Abs(flo-0.1) > 0.05 {
		t.Errorf("write fraction 0.1 knob produced %.3f", flo)
	}
	if math.Abs(fhi-0.9) > 0.05 {
		t.Errorf("write fraction 0.9 knob produced %.3f", fhi)
	}
}

func TestJumpRateAffectsSequentiality(t *testing.T) {
	seq := func(jr float64) float64 {
		tr := CodeOnly(Config{Refs: 20000, Seed: 6, JumpRate: jr})
		sequential := 0
		var prev uint64
		for i, r := range tr.Refs {
			if i > 0 && r.Addr == prev+4 {
				sequential++
			}
			prev = r.Addr
		}
		return float64(sequential) / float64(len(tr.Refs)-1)
	}
	if s0, s5 := seq(0.0), seq(0.5); s0 < 0.99 || s5 > 0.6 {
		t.Errorf("jump knob broken: seq(0)=%.3f seq(0.5)=%.3f", s0, s5)
	}
}

func TestStreamingIsUnitStride(t *testing.T) {
	tr := Streaming(Config{Refs: 4000, Seed: 7})
	var prev uint64
	first := true
	strided := 0
	dataRefs := 0
	for _, r := range tr.Refs {
		if r.Kind != Load && r.Kind != Store {
			continue
		}
		dataRefs++
		if !first && r.Addr == prev+4 {
			strided++
		}
		first = false
		prev = r.Addr
	}
	if dataRefs == 0 || float64(strided)/float64(dataRefs) < 0.95 {
		t.Errorf("streaming not unit-stride: %d/%d", strided, dataRefs)
	}
}

func TestPointerChaseLoadsAreRandomWide(t *testing.T) {
	tr := PointerChase(Config{Refs: 4000, Seed: 8})
	seen := map[uint64]bool{}
	loads := 0
	for _, r := range tr.Refs {
		if r.Kind == Load {
			loads++
			seen[r.Addr] = true
			if r.Size != 8 {
				t.Fatal("pointer chase loads should be 8 bytes")
			}
		}
	}
	if loads == 0 || len(seen) < loads*9/10 {
		t.Errorf("pointer-chase addresses not spread: %d unique of %d", len(seen), loads)
	}
}

func TestMatrixLikeHasStores(t *testing.T) {
	tr := MatrixLike(Config{Refs: 6000, Seed: 9})
	s := tr.Stats()
	if s.Stores == 0 || s.Loads == 0 {
		t.Errorf("matrix-like missing loads/stores: %+v", s)
	}
}

func TestStatsComputeCycles(t *testing.T) {
	tr := &Trace{Refs: []Ref{
		{Kind: Fetch, Compute: 3},
		{Kind: Load, Compute: 2},
		{Kind: Store, Compute: 1},
	}}
	s := tr.Stats()
	if s.ComputeCycles != 6 || s.Fetches != 1 || s.Loads != 1 || s.Stores != 1 {
		t.Errorf("Stats wrong: %+v", s)
	}
	if wf := s.WriteFraction(); wf != 0.5 {
		t.Errorf("WriteFraction = %v, want 0.5", wf)
	}
	empty := (&Trace{}).Stats()
	if empty.WriteFraction() != 0 {
		t.Error("empty trace write fraction should be 0")
	}
}

func TestMultiProcessRegionsAndQuanta(t *testing.T) {
	cfg := MultiProcessConfig{
		Config:      Config{Refs: 8000, Seed: 10, LoadFraction: 0.3, WriteFraction: 0.3},
		Procs:       4,
		Quantum:     250,
		RegionBytes: 64 << 10,
	}
	tr := MultiProcess(cfg)
	if len(tr.Refs) != 8000 {
		t.Fatalf("refs = %d", len(tr.Refs))
	}
	// Every reference must sit inside exactly one process's region, and
	// quantum boundaries must rotate processes round-robin.
	owner := func(addr uint64) int {
		for p := 0; p < cfg.Procs; p++ {
			base, limit := cfg.ProcessRegion(p)
			if addr >= base && addr < limit {
				return p
			}
		}
		return -1
	}
	for i, r := range tr.Refs {
		p := owner(r.Addr)
		if p < 0 {
			t.Fatalf("ref %d addr %#x outside every region", i, r.Addr)
		}
		want := (i / cfg.Quantum) % cfg.Procs
		if p != want {
			t.Fatalf("ref %d owned by process %d, want %d (round robin)", i, p, want)
		}
	}
}

func TestMultiProcessDefaults(t *testing.T) {
	tr := MultiProcess(MultiProcessConfig{Config: Config{Refs: 1000, Seed: 1}})
	if len(tr.Refs) != 1000 || tr.Name != "multi-process" {
		t.Errorf("defaults broken: %d refs, %q", len(tr.Refs), tr.Name)
	}
	base0, limit0 := MultiProcessConfig{}.ProcessRegion(0)
	base1, _ := MultiProcessConfig{}.ProcessRegion(1)
	if limit0 != base1 || base0 != 0 {
		t.Errorf("regions not contiguous: [%#x,%#x) then %#x", base0, limit0, base1)
	}
}

func TestMultiProcessDeterminism(t *testing.T) {
	cfg := MultiProcessConfig{Config: Config{Refs: 2000, Seed: 5}}
	a := MultiProcess(cfg)
	b := MultiProcess(cfg)
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatal("multi-process trace not deterministic")
		}
	}
}

func TestExplicitRandMatchesSeed(t *testing.T) {
	// An explicit Rand built from seed s must generate the exact trace
	// that Seed: s generates — the property the campaign scheduler's
	// per-task RNG sharding rests on.
	for name, gen := range Generators {
		bySeed := gen(Config{Refs: 2000, Seed: 77})
		byRand := gen(Config{Refs: 2000, Seed: 12345, Rand: NewRand(77)})
		if len(bySeed.Refs) != len(byRand.Refs) {
			t.Fatalf("%s: length mismatch", name)
		}
		for i := range bySeed.Refs {
			if bySeed.Refs[i] != byRand.Refs[i] {
				t.Fatalf("%s: ref %d differs with explicit Rand: %+v vs %+v",
					name, i, bySeed.Refs[i], byRand.Refs[i])
			}
		}
	}
}

func TestMultiProcessExplicitRandDeterminism(t *testing.T) {
	mk := func() *Trace {
		return MultiProcess(MultiProcessConfig{
			Config: Config{Refs: 2000, Rand: NewRand(9)},
		})
	}
	a, b := mk(), mk()
	for i := range a.Refs {
		if a.Refs[i] != b.Refs[i] {
			t.Fatal("multi-process trace not deterministic under explicit Rand")
		}
	}
}
