// Streaming reference sources: the constant-memory form of every
// workload generator. Each source is a resumable state machine that
// draws from its RNG in exactly the order the materialized generators
// historically did, so a drained source and a streamed source are
// reference-for-reference identical for the same Config. The
// materialized constructors in trace.go are thin Drain wrappers over
// these — the stream is the canonical implementation.
//
//repro:deterministic
package trace

import "math/rand"

// RefSource is an ordered stream of memory references — the interface
// the SoC simulator consumes. A source generates references on demand,
// so a billion-reference workload needs no more memory than its
// generator state.
//
// Sources are single-goroutine objects. Reset rewinds a source to its
// first reference; sources built from a Config carrying an explicit
// *rand.Rand are single-pass (the consumed Rand state cannot be
// rewound) and panic on Reset after use — thread a Seed instead when a
// source must be replayed (soc.Compare replays).
type RefSource interface {
	// Label names the workload in reports.
	Label() string
	// Next returns the next reference, or ok=false when the stream is
	// exhausted.
	Next() (ref Ref, ok bool)
	// Reset rewinds the source to the beginning of its stream.
	Reset()
}

// Sources is the registry of named streaming workloads, keyed exactly
// like Generators; the campaign sweeps and the CLIs draw from it so
// trace length is bounded by hardware speed, not RAM.
var Sources = map[string]func(Config) RefSource{
	"sequential":    SequentialSource,
	"code-only":     CodeOnlySource,
	"streaming":     StreamingSource,
	"pointer-chase": PointerChaseSource,
	"matrix-like":   MatrixLikeSource,
	"firmware":      FirmwareSource,
}

// Drain materializes a source into a Trace (small workloads, tests).
func Drain(src RefSource) *Trace {
	t := &Trace{Name: src.Label()}
	for {
		r, ok := src.Next()
		if !ok {
			return t
		}
		t.Refs = append(t.Refs, r)
	}
}

// streamBase carries the state every source shares: the resolved RNG,
// whether it can be rewound, and the emitted-reference count that
// bounds the stream.
type streamBase struct {
	name    string
	seed    int64
	started bool
	rng     *rand.Rand
	src     rand.Source // seed-derived source, reseeded in place on Reset; nil when rng is an explicit Config.Rand
	emitted int
	limit   int
}

func newStreamBase(name string, cfg *Config) streamBase {
	b := streamBase{name: name, seed: cfg.Seed, limit: cfg.Refs}
	if cfg.Rand != nil {
		b.rng = cfg.Rand
	} else {
		b.src = rand.NewSource(cfg.Seed)
		b.rng = rand.New(b.src)
	}
	return b
}

// Label implements RefSource.
func (b *streamBase) Label() string { return b.name }

// Replayable reports whether the source can be rewound: true for
// seed-derived sources (Reset reseeds in place), false for sources
// built from an explicit Config.Rand, whose consumed state cannot be
// rewound — those panic on Reset after use. Consumers that must replay
// (soc.Compare) check this instead of discovering the panic mid-run.
func (b *streamBase) Replayable() bool { return b.src != nil }

// resetBase rewinds the shared state; it reports whether the caller
// must also rewind its own generator state (false when the source was
// never started, so there is nothing to rewind). Reseeding the retained
// rand.Source keeps Reset allocation-free.
func (b *streamBase) resetBase() bool {
	if !b.started {
		return false
	}
	if b.src == nil {
		panic("trace: a source built from an explicit Config.Rand is single-pass and cannot be Reset; configure Seed instead")
	}
	b.src.Seed(b.seed)
	b.started = false
	b.emitted = 0
	return true
}

// seqSource streams the Sequential workload.
type seqSource struct {
	streamBase
	cfg     Config
	pc      uint64
	recent  []uint64
	pend    Ref
	hasPend bool
}

// SequentialSource returns the streaming form of Sequential.
func SequentialSource(cfg Config) RefSource {
	cfg.fill()
	return &seqSource{
		streamBase: newStreamBase("sequential", &cfg),
		cfg:        cfg,
		pc:         cfg.CodeBase,
		recent:     make([]uint64, 0, 64),
	}
}

// CodeOnlySource returns the streaming form of CodeOnly: Sequential
// with the data knobs forced to zero.
func CodeOnlySource(cfg Config) RefSource {
	cfg.LoadFraction = 0
	cfg.WriteFraction = 0
	s := SequentialSource(cfg).(*seqSource)
	s.name = "code-only"
	return s
}

// FirmwareSource returns a microcontroller-class Sequential stream: a
// 16 KiB code loop over a 32 KiB hot data set — the footprint of the
// survey's secured embedded parts, and the regime where active-attack
// detection latency is measurable (tampered lines actually cycle back
// through the cache; see internal/attack.Schedule).
func FirmwareSource(cfg Config) RefSource {
	cfg.CodeBase, cfg.CodeSize = 0, 16<<10
	cfg.DataBase, cfg.DataSize = 0x4000_0000, 32<<10
	s := SequentialSource(cfg).(*seqSource)
	s.name = "firmware"
	return s
}

// Next implements RefSource.
func (s *seqSource) Next() (Ref, bool) {
	if s.hasPend {
		s.hasPend = false
		return s.pend, true
	}
	if s.emitted >= s.limit {
		return Ref{}, false
	}
	s.started = true
	r := Ref{Kind: Fetch, Addr: s.pc, Size: 4, Compute: computeGap(s.rng, s.cfg.ComputeMean)}
	if s.rng.Float64() < s.cfg.JumpRate {
		s.pc = s.cfg.CodeBase + uint64(s.rng.Int63n(int64(s.cfg.CodeSize)))&^3
	} else {
		s.pc += 4
		if s.pc >= s.cfg.CodeBase+s.cfg.CodeSize {
			s.pc = s.cfg.CodeBase
		}
	}
	s.emitted++
	if s.emitted < s.limit && s.rng.Float64() < s.cfg.LoadFraction {
		var addr uint64
		if len(s.recent) > 0 && s.rng.Float64() < s.cfg.Locality {
			addr = s.recent[s.rng.Intn(len(s.recent))]
		} else {
			addr = s.cfg.DataBase + uint64(s.rng.Int63n(int64(s.cfg.DataSize)))&^3
			if len(s.recent) < cap(s.recent) {
				s.recent = append(s.recent, addr)
			} else {
				s.recent[s.rng.Intn(len(s.recent))] = addr
			}
		}
		k := Load
		if s.rng.Float64() < s.cfg.WriteFraction {
			k = Store
		}
		size := uint8(4)
		if s.rng.Float64() < 0.25 {
			size = 1 // byte stores are what trigger worst-case RMW
		}
		s.pend = Ref{Kind: k, Addr: addr, Size: size, Compute: computeGap(s.rng, s.cfg.ComputeMean)}
		s.hasPend = true
		s.emitted++
	}
	return r, true
}

// Reset implements RefSource.
func (s *seqSource) Reset() {
	if !s.resetBase() {
		return
	}
	s.pc = s.cfg.CodeBase
	s.recent = s.recent[:0]
	s.hasPend = false
}

// strideSource streams the Streaming workload.
type strideSource struct {
	streamBase
	cfg     Config
	pc      uint64
	addr    uint64
	pend    Ref
	hasPend bool
}

// StreamingSource returns the streaming form of Streaming.
func StreamingSource(cfg Config) RefSource {
	cfg.fill()
	return &strideSource{
		streamBase: newStreamBase("streaming", &cfg),
		cfg:        cfg,
		pc:         cfg.CodeBase,
		addr:       cfg.DataBase,
	}
}

// Next implements RefSource.
func (s *strideSource) Next() (Ref, bool) {
	if s.hasPend {
		s.hasPend = false
		return s.pend, true
	}
	if s.emitted >= s.limit {
		return Ref{}, false
	}
	s.started = true
	r := Ref{Kind: Fetch, Addr: s.pc, Size: 4, Compute: computeGap(s.rng, s.cfg.ComputeMean)}
	s.pc += 4
	if s.pc >= s.cfg.CodeBase+4096 { // a tight copy loop
		s.pc = s.cfg.CodeBase
	}
	s.emitted++
	if s.emitted < s.limit {
		k := Load
		if s.rng.Float64() < s.cfg.WriteFraction {
			k = Store
		}
		s.pend = Ref{Kind: k, Addr: s.addr, Size: 4, Compute: 0}
		s.hasPend = true
		s.emitted++
		s.addr += 4
		if s.addr >= s.cfg.DataBase+s.cfg.DataSize {
			s.addr = s.cfg.DataBase
		}
	}
	return r, true
}

// Reset implements RefSource.
func (s *strideSource) Reset() {
	if !s.resetBase() {
		return
	}
	s.pc = s.cfg.CodeBase
	s.addr = s.cfg.DataBase
	s.hasPend = false
}

// chaseSource streams the PointerChase workload.
type chaseSource struct {
	streamBase
	cfg     Config
	pc      uint64
	pend    Ref
	hasPend bool
}

// PointerChaseSource returns the streaming form of PointerChase.
func PointerChaseSource(cfg Config) RefSource {
	cfg.fill()
	return &chaseSource{
		streamBase: newStreamBase("pointer-chase", &cfg),
		cfg:        cfg,
		pc:         cfg.CodeBase,
	}
}

// Next implements RefSource.
func (s *chaseSource) Next() (Ref, bool) {
	if s.hasPend {
		s.hasPend = false
		return s.pend, true
	}
	if s.emitted >= s.limit {
		return Ref{}, false
	}
	s.started = true
	r := Ref{Kind: Fetch, Addr: s.pc, Size: 4, Compute: computeGap(s.rng, s.cfg.ComputeMean)}
	s.pc += 4
	if s.pc >= s.cfg.CodeBase+256 {
		s.pc = s.cfg.CodeBase
	}
	s.emitted++
	if s.emitted < s.limit {
		addr := s.cfg.DataBase + uint64(s.rng.Int63n(int64(s.cfg.DataSize)))&^7
		s.pend = Ref{Kind: Load, Addr: addr, Size: 8, Compute: 0}
		s.hasPend = true
		s.emitted++
	}
	return r, true
}

// Reset implements RefSource.
func (s *chaseSource) Reset() {
	if !s.resetBase() {
		return
	}
	s.pc = s.cfg.CodeBase
	s.hasPend = false
}

// matrixSource streams the MatrixLike workload.
type matrixSource struct {
	streamBase
	cfg      Config
	pc       uint64
	row, col int
	pend     [3]Ref
	pendN    int
	pendI    int
}

// MatrixLikeSource returns the streaming form of MatrixLike.
func MatrixLikeSource(cfg Config) RefSource {
	cfg.fill()
	return &matrixSource{
		streamBase: newStreamBase("matrix-like", &cfg),
		cfg:        cfg,
		pc:         cfg.CodeBase,
	}
}

// Next implements RefSource.
func (s *matrixSource) Next() (Ref, bool) {
	if s.pendI < s.pendN {
		r := s.pend[s.pendI]
		s.pendI++
		return r, true
	}
	if s.emitted >= s.limit {
		return Ref{}, false
	}
	s.started = true
	const dim = 256 // 256x256 of 8-byte elements
	r := Ref{Kind: Fetch, Addr: s.pc, Size: 4, Compute: computeGap(s.rng, s.cfg.ComputeMean)}
	s.pc += 4
	if s.pc >= s.cfg.CodeBase+2048 {
		s.pc = s.cfg.CodeBase
	}
	s.emitted++
	if s.emitted >= s.limit {
		return r, true
	}
	// A[row][col] load, B[col][row] load, C[row][col] store pattern.
	a := s.cfg.DataBase + uint64(s.row*dim+s.col)*8
	b := s.cfg.DataBase + uint64(dim*dim)*8 + uint64(s.col*dim+s.row)*8
	cAddr := s.cfg.DataBase + 2*uint64(dim*dim)*8 + uint64(s.row*dim+s.col)*8
	s.pendI, s.pendN = 0, 0
	s.pend[s.pendN] = Ref{Kind: Load, Addr: a, Size: 8}
	s.pendN++
	s.emitted++
	if s.emitted < s.limit {
		s.pend[s.pendN] = Ref{Kind: Load, Addr: b, Size: 8}
		s.pendN++
		s.emitted++
	}
	if s.emitted < s.limit {
		s.pend[s.pendN] = Ref{Kind: Store, Addr: cAddr, Size: 8}
		s.pendN++
		s.emitted++
	}
	s.col++
	if s.col == dim {
		s.col = 0
		s.row = (s.row + 1) % dim
	}
	return r, true
}

// Reset implements RefSource.
func (s *matrixSource) Reset() {
	if !s.resetBase() {
		return
	}
	s.pc = s.cfg.CodeBase
	s.row, s.col = 0, 0
	s.pendI, s.pendN = 0, 0
}

// multiSource streams the MultiProcess workload: per-process Sequential
// substreams advanced lazily a quantum at a time, so the whole workload
// is O(Procs) state instead of O(Procs x Refs) materialized slices.
type multiSource struct {
	cfg      MultiProcessConfig
	explicit bool
	started  bool
	subs     []*seqSource
	p        int // current process
	inQuant  int // refs taken from the current process this quantum
	emitted  int
}

// MultiProcessSource returns the streaming form of MultiProcess.
func MultiProcessSource(cfg MultiProcessConfig) RefSource {
	cfg.fillMP()
	cfg.Config.fill()
	m := &multiSource{cfg: cfg, explicit: cfg.Rand != nil}
	m.subs = make([]*seqSource, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		m.subs[p] = m.subSource(p)
	}
	return m
}

// subSource builds process p's confined Sequential substream, seeded
// exactly as the materialized generator seeds it.
func (m *multiSource) subSource(p int) *seqSource {
	sub := m.cfg.Config
	base, _ := m.cfg.ProcessRegion(p)
	sub.CodeBase, sub.CodeSize = base, m.cfg.RegionBytes
	sub.DataBase, sub.DataSize = base+m.cfg.RegionBytes, m.cfg.RegionBytes
	// Each process gets its own independent source: seed-derived by
	// default, or drawn from the caller's explicit Rand so the whole
	// workload is a function of that one source.
	if m.cfg.Rand != nil {
		sub.Rand = NewRand(m.cfg.Rand.Int63())
	} else {
		sub.Seed = m.cfg.Seed + int64(p)*7919
	}
	sub.Refs = m.cfg.Refs // oversize; sliced per quantum
	return SequentialSource(sub).(*seqSource)
}

// Label implements RefSource.
func (m *multiSource) Label() string { return "multi-process" }

// Replayable reports whether the source can be rewound (see
// streamBase.Replayable): false when built from an explicit Rand.
func (m *multiSource) Replayable() bool { return !m.explicit }

// Next implements RefSource.
func (m *multiSource) Next() (Ref, bool) {
	if m.emitted >= m.cfg.Refs {
		return Ref{}, false
	}
	m.started = true
	for rotations := 0; rotations <= len(m.subs); rotations++ {
		if m.inQuant >= m.cfg.Quantum {
			m.p = (m.p + 1) % m.cfg.Procs
			m.inQuant = 0
		}
		r, ok := m.subs[m.p].Next()
		if !ok {
			// Substream exhausted mid-quantum: the next process starts a
			// fresh quantum, matching the materialized slicing.
			m.p = (m.p + 1) % m.cfg.Procs
			m.inQuant = 0
			continue
		}
		m.inQuant++
		m.emitted++
		return r, true
	}
	return Ref{}, false // all substreams dry (cannot happen: Procs*Refs >= Refs)
}

// Reset implements RefSource.
func (m *multiSource) Reset() {
	if !m.started {
		return
	}
	if m.explicit {
		panic("trace: a source built from an explicit Config.Rand is single-pass and cannot be Reset; configure Seed instead")
	}
	for p := range m.subs {
		m.subs[p].Reset()
	}
	m.p, m.inQuant, m.emitted = 0, 0, 0
	m.started = false
}
