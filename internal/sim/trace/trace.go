// Package trace defines the memory-reference traces that drive the SoC
// simulator and provides the synthetic workload generators substituting
// for the benchmark suites the surveyed papers ran (per DESIGN.md §5 the
// substitution: parametric generators whose knobs — jump rate, write
// fraction, locality — are swept across the regimes those papers
// measured).
//
//repro:deterministic
package trace

import (
	"fmt"
	"math/rand"
)

// Kind distinguishes the three reference types an in-order core issues.
type Kind uint8

const (
	// Fetch is an instruction fetch.
	Fetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String returns the conventional short name.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is one memory reference: an address, a size in bytes, and the gap
// of pure compute cycles the core spends before issuing it (so traces
// carry the paper-relevant ratio of memory activity to computation).
type Ref struct {
	Kind    Kind
	Addr    uint64
	Size    uint8  // bytes touched: 1, 2, 4 or 8
	Compute uint16 // compute cycles preceding this reference
}

// Trace is a fully materialized reference stream. It is the thin
// in-memory adapter over the streaming sources (stream.go): small
// workloads and tests hold a Trace, while long-running sweeps consume
// the RefSource a generator config builds directly. A *Trace is itself
// a RefSource (Label/Next/Reset over the slice), so every simulator
// entry point accepts either form.
type Trace struct {
	Name string
	Refs []Ref

	pos int // Next cursor
}

// Label implements RefSource.
func (t *Trace) Label() string { return t.Name }

// Next implements RefSource.
func (t *Trace) Next() (Ref, bool) {
	if t.pos >= len(t.Refs) {
		return Ref{}, false
	}
	r := t.Refs[t.pos]
	t.pos++
	return r, true
}

// Reset implements RefSource: rewinds to the first reference.
func (t *Trace) Reset() { t.pos = 0 }

// Replayable reports that a materialized trace can always be rewound.
func (t *Trace) Replayable() bool { return true }

// Stats summarizes a trace's composition.
type Stats struct {
	Refs          int
	Fetches       int
	Loads         int
	Stores        int
	ComputeCycles uint64
}

// Stats scans the trace.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Refs = len(t.Refs)
	for _, r := range t.Refs {
		switch r.Kind {
		case Fetch:
			s.Fetches++
		case Load:
			s.Loads++
		case Store:
			s.Stores++
		}
		s.ComputeCycles += uint64(r.Compute)
	}
	return s
}

// WriteFraction returns stores / (loads + stores), the knob experiment
// E3 sweeps.
func (s Stats) WriteFraction() float64 {
	d := s.Loads + s.Stores
	if d == 0 {
		return 0
	}
	return float64(s.Stores) / float64(d)
}

// Config parameterizes the synthetic generators. Zero values get
// defaults from (*Config).fill.
type Config struct {
	// Refs is the number of references to generate.
	Refs int
	// Seed drives the generator's PRNG; equal configs produce equal
	// traces. Ignored when Rand is set.
	Seed int64
	// Rand, when non-nil, is the explicit random source driving the
	// generator and takes precedence over Seed. Every generator draws
	// exclusively from this source (there is no package-global RNG), so
	// callers that need deterministic parallel sharding hand each task
	// its own *rand.Rand and get byte-identical traces regardless of
	// scheduling. The source is consumed: do not share one *rand.Rand
	// across concurrent generator calls, and note that a streaming
	// RefSource built from an explicit Rand is single-pass (it cannot
	// Reset) — configure Seed when a source must be replayed.
	Rand *rand.Rand
	// CodeBase/CodeSize bound the instruction region (bytes).
	CodeBase, CodeSize uint64
	// DataBase/DataSize bound the data region (bytes).
	DataBase, DataSize uint64
	// JumpRate is the probability a fetch redirects to a random code
	// address instead of falling through — the survey's "random data
	// access problem (JUMP instructions)".
	JumpRate float64
	// LoadFraction is the probability a data access follows each fetch.
	LoadFraction float64
	// WriteFraction is the probability a data access is a store.
	WriteFraction float64
	// Locality in [0,1): probability a data access revisits a recent
	// address rather than drawing a fresh one (drives the cache hit rate).
	Locality float64
	// ComputeMean is the average compute gap between references.
	ComputeMean int
}

func (c *Config) fill() {
	if c.Refs == 0 {
		c.Refs = 50000
	}
	if c.CodeSize == 0 {
		c.CodeBase, c.CodeSize = 0x0000_0000, 1<<20
	}
	if c.DataSize == 0 {
		c.DataBase, c.DataSize = 0x4000_0000, 4<<20
	}
	if c.ComputeMean == 0 {
		c.ComputeMean = 2
	}
}

// NewRand returns a deterministic source for seed, the one every
// generator uses internally when Config.Rand is nil.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// rng resolves the generator's random source: the explicit Rand if the
// caller threaded one through, else a fresh Seed-derived source.
func (c *Config) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return NewRand(c.Seed)
}

// Sequential generates straight-line code with occasional jumps and a
// configurable mix of data accesses; the general-purpose workload.
// Materialized form of SequentialSource.
func Sequential(cfg Config) *Trace { return Drain(SequentialSource(cfg)) }

// CodeOnly generates a pure instruction-fetch stream (no loads/stores):
// the static-code workload Gilmont's engine targets — "this work only
// addresses static code ciphering". Materialized form of CodeOnlySource.
func CodeOnly(cfg Config) *Trace { return Drain(CodeOnlySource(cfg)) }

// Streaming generates long unit-stride data scans (memcpy-like) with
// sparse control: the friendliest case for prefetch and pipelined
// deciphering. Materialized form of StreamingSource.
func Streaming(cfg Config) *Trace { return Drain(StreamingSource(cfg)) }

// PointerChase generates dependent random loads (linked-list traversal):
// the workload with no latency-hiding opportunity, worst case for any
// deciphering latency on the miss path. Materialized form of
// PointerChaseSource.
func PointerChase(cfg Config) *Trace { return Drain(PointerChaseSource(cfg)) }

// MatrixLike generates blocked row/column sweeps over a square matrix
// region: moderate locality, balanced loads and stores — the numeric
// kernel stand-in. Materialized form of MatrixLikeSource.
func MatrixLike(cfg Config) *Trace { return Drain(MatrixLikeSource(cfg)) }

// computeGap draws a small geometric-ish compute gap around mean.
func computeGap(rng *rand.Rand, mean int) uint16 {
	if mean <= 0 {
		return 0
	}
	g := rng.Intn(2*mean + 1)
	return uint16(g)
}

// Generators is the registry of named materialized workloads, keyed
// exactly like Sources; the map value builds a trace from a config.
// Long sweeps should prefer Sources: same references, O(1) memory.
var Generators = map[string]func(Config) *Trace{
	"sequential":    Sequential,
	"code-only":     CodeOnly,
	"streaming":     Streaming,
	"pointer-chase": PointerChase,
	"matrix-like":   MatrixLike,
	"firmware":      Firmware,
}

// Firmware materializes FirmwareSource (microcontroller footprint).
func Firmware(cfg Config) *Trace { return Drain(FirmwareSource(cfg)) }

// MultiProcess generates a round-robin multitasking workload: Procs
// processes, each confined to its own code and data regions, scheduled
// in quanta of Quantum references. It drives the key-management
// extension (multikey EDU): every quantum boundary is a protection-
// domain switch on the bus.
type MultiProcessConfig struct {
	// Config supplies the per-process knobs (jump rate, write fraction,
	// locality, compute gaps); region fields are ignored.
	Config
	// Procs is the process count (>= 1; default 4).
	Procs int
	// Quantum is references per scheduling slice (default 500).
	Quantum int
	// RegionBytes is each process's code and data region size
	// (default 256 KiB each).
	RegionBytes uint64
}

// ProcessRegion returns process p's code region [base, limit) under cfg;
// its data region follows immediately after. The multikey experiments
// use it to wire protection domains that match the generator.
func (c MultiProcessConfig) ProcessRegion(p int) (base, limit uint64) {
	c.fillMP()
	base = uint64(p) * 2 * c.RegionBytes
	return base, base + 2*c.RegionBytes
}

func (c *MultiProcessConfig) fillMP() {
	if c.Procs == 0 {
		c.Procs = 4
	}
	if c.Quantum == 0 {
		c.Quantum = 500
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = 256 << 10
	}
}

// MultiProcess builds the workload. Materialized form of
// MultiProcessSource.
func MultiProcess(cfg MultiProcessConfig) *Trace { return Drain(MultiProcessSource(cfg)) }
