// Package trace defines the memory-reference traces that drive the SoC
// simulator and provides the synthetic workload generators substituting
// for the benchmark suites the surveyed papers ran (per DESIGN.md §5 the
// substitution: parametric generators whose knobs — jump rate, write
// fraction, locality — are swept across the regimes those papers
// measured).
package trace

import (
	"fmt"
	"math/rand"
)

// Kind distinguishes the three reference types an in-order core issues.
type Kind uint8

const (
	// Fetch is an instruction fetch.
	Fetch Kind = iota
	// Load is a data read.
	Load
	// Store is a data write.
	Store
)

// String returns the conventional short name.
func (k Kind) String() string {
	switch k {
	case Fetch:
		return "fetch"
	case Load:
		return "load"
	case Store:
		return "store"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Ref is one memory reference: an address, a size in bytes, and the gap
// of pure compute cycles the core spends before issuing it (so traces
// carry the paper-relevant ratio of memory activity to computation).
type Ref struct {
	Kind    Kind
	Addr    uint64
	Size    uint8  // bytes touched: 1, 2, 4 or 8
	Compute uint16 // compute cycles preceding this reference
}

// Trace is an ordered reference stream plus the address-space split the
// generators used, which the simulator needs to size memories.
type Trace struct {
	Name string
	Refs []Ref
}

// Stats summarizes a trace's composition.
type Stats struct {
	Refs          int
	Fetches       int
	Loads         int
	Stores        int
	ComputeCycles uint64
}

// Stats scans the trace.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Refs = len(t.Refs)
	for _, r := range t.Refs {
		switch r.Kind {
		case Fetch:
			s.Fetches++
		case Load:
			s.Loads++
		case Store:
			s.Stores++
		}
		s.ComputeCycles += uint64(r.Compute)
	}
	return s
}

// WriteFraction returns stores / (loads + stores), the knob experiment
// E3 sweeps.
func (s Stats) WriteFraction() float64 {
	d := s.Loads + s.Stores
	if d == 0 {
		return 0
	}
	return float64(s.Stores) / float64(d)
}

// Config parameterizes the synthetic generators. Zero values get
// defaults from (*Config).fill.
type Config struct {
	// Refs is the number of references to generate.
	Refs int
	// Seed drives the generator's PRNG; equal configs produce equal
	// traces. Ignored when Rand is set.
	Seed int64
	// Rand, when non-nil, is the explicit random source driving the
	// generator and takes precedence over Seed. Every generator draws
	// exclusively from this source (there is no package-global RNG), so
	// callers that need deterministic parallel sharding hand each task
	// its own *rand.Rand and get byte-identical traces regardless of
	// scheduling. The source is consumed: do not share one *rand.Rand
	// across concurrent generator calls.
	Rand *rand.Rand
	// CodeBase/CodeSize bound the instruction region (bytes).
	CodeBase, CodeSize uint64
	// DataBase/DataSize bound the data region (bytes).
	DataBase, DataSize uint64
	// JumpRate is the probability a fetch redirects to a random code
	// address instead of falling through — the survey's "random data
	// access problem (JUMP instructions)".
	JumpRate float64
	// LoadFraction is the probability a data access follows each fetch.
	LoadFraction float64
	// WriteFraction is the probability a data access is a store.
	WriteFraction float64
	// Locality in [0,1): probability a data access revisits a recent
	// address rather than drawing a fresh one (drives the cache hit rate).
	Locality float64
	// ComputeMean is the average compute gap between references.
	ComputeMean int
}

func (c *Config) fill() {
	if c.Refs == 0 {
		c.Refs = 50000
	}
	if c.CodeSize == 0 {
		c.CodeBase, c.CodeSize = 0x0000_0000, 1<<20
	}
	if c.DataSize == 0 {
		c.DataBase, c.DataSize = 0x4000_0000, 4<<20
	}
	if c.ComputeMean == 0 {
		c.ComputeMean = 2
	}
}

// NewRand returns a deterministic source for seed, the one every
// generator uses internally when Config.Rand is nil.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// rng resolves the generator's random source: the explicit Rand if the
// caller threaded one through, else a fresh Seed-derived source.
func (c *Config) rng() *rand.Rand {
	if c.Rand != nil {
		return c.Rand
	}
	return NewRand(c.Seed)
}

// Sequential generates straight-line code with occasional jumps and a
// configurable mix of data accesses; the general-purpose workload.
func Sequential(cfg Config) *Trace {
	cfg.fill()
	rng := cfg.rng()
	t := &Trace{Name: "sequential"}
	pc := cfg.CodeBase
	recent := make([]uint64, 0, 64)
	for len(t.Refs) < cfg.Refs {
		// Instruction fetch (4-byte instructions).
		t.Refs = append(t.Refs, Ref{Kind: Fetch, Addr: pc, Size: 4, Compute: computeGap(rng, cfg.ComputeMean)})
		if rng.Float64() < cfg.JumpRate {
			pc = cfg.CodeBase + uint64(rng.Int63n(int64(cfg.CodeSize)))&^3
		} else {
			pc += 4
			if pc >= cfg.CodeBase+cfg.CodeSize {
				pc = cfg.CodeBase
			}
		}
		if len(t.Refs) < cfg.Refs && rng.Float64() < cfg.LoadFraction {
			var addr uint64
			if len(recent) > 0 && rng.Float64() < cfg.Locality {
				addr = recent[rng.Intn(len(recent))]
			} else {
				addr = cfg.DataBase + uint64(rng.Int63n(int64(cfg.DataSize)))&^3
				if len(recent) < cap(recent) {
					recent = append(recent, addr)
				} else {
					recent[rng.Intn(len(recent))] = addr
				}
			}
			k := Load
			if rng.Float64() < cfg.WriteFraction {
				k = Store
			}
			size := uint8(4)
			if rng.Float64() < 0.25 {
				size = 1 // byte stores are what trigger worst-case RMW
			}
			t.Refs = append(t.Refs, Ref{Kind: k, Addr: addr, Size: size, Compute: computeGap(rng, cfg.ComputeMean)})
		}
	}
	t.Refs = t.Refs[:cfg.Refs]
	return t
}

// CodeOnly generates a pure instruction-fetch stream (no loads/stores):
// the static-code workload Gilmont's engine targets — "this work only
// addresses static code ciphering".
func CodeOnly(cfg Config) *Trace {
	cfg.LoadFraction = 0
	cfg.WriteFraction = 0
	t := Sequential(cfg)
	t.Name = "code-only"
	return t
}

// Streaming generates long unit-stride data scans (memcpy-like) with
// sparse control: the friendliest case for prefetch and pipelined
// deciphering.
func Streaming(cfg Config) *Trace {
	cfg.fill()
	rng := cfg.rng()
	t := &Trace{Name: "streaming"}
	pc := cfg.CodeBase
	addr := cfg.DataBase
	for len(t.Refs) < cfg.Refs {
		t.Refs = append(t.Refs, Ref{Kind: Fetch, Addr: pc, Size: 4, Compute: computeGap(rng, cfg.ComputeMean)})
		pc += 4
		if pc >= cfg.CodeBase+4096 { // a tight copy loop
			pc = cfg.CodeBase
		}
		if len(t.Refs) < cfg.Refs {
			k := Load
			if rng.Float64() < cfg.WriteFraction {
				k = Store
			}
			t.Refs = append(t.Refs, Ref{Kind: k, Addr: addr, Size: 4, Compute: 0})
			addr += 4
			if addr >= cfg.DataBase+cfg.DataSize {
				addr = cfg.DataBase
			}
		}
	}
	t.Refs = t.Refs[:cfg.Refs]
	return t
}

// PointerChase generates dependent random loads (linked-list traversal):
// the workload with no latency-hiding opportunity, worst case for any
// deciphering latency on the miss path.
func PointerChase(cfg Config) *Trace {
	cfg.fill()
	rng := cfg.rng()
	t := &Trace{Name: "pointer-chase"}
	pc := cfg.CodeBase
	for len(t.Refs) < cfg.Refs {
		t.Refs = append(t.Refs, Ref{Kind: Fetch, Addr: pc, Size: 4, Compute: computeGap(rng, cfg.ComputeMean)})
		pc += 4
		if pc >= cfg.CodeBase+256 {
			pc = cfg.CodeBase
		}
		if len(t.Refs) < cfg.Refs {
			addr := cfg.DataBase + uint64(rng.Int63n(int64(cfg.DataSize)))&^7
			t.Refs = append(t.Refs, Ref{Kind: Load, Addr: addr, Size: 8, Compute: 0})
		}
	}
	t.Refs = t.Refs[:cfg.Refs]
	return t
}

// MatrixLike generates blocked row/column sweeps over a square matrix
// region: moderate locality, balanced loads and stores — the numeric
// kernel stand-in.
func MatrixLike(cfg Config) *Trace {
	cfg.fill()
	rng := cfg.rng()
	t := &Trace{Name: "matrix-like"}
	const dim = 256 // 256x256 of 8-byte elements
	row, col := 0, 0
	pc := cfg.CodeBase
	for len(t.Refs) < cfg.Refs {
		t.Refs = append(t.Refs, Ref{Kind: Fetch, Addr: pc, Size: 4, Compute: computeGap(rng, cfg.ComputeMean)})
		pc += 4
		if pc >= cfg.CodeBase+2048 {
			pc = cfg.CodeBase
		}
		if len(t.Refs) >= cfg.Refs {
			break
		}
		// A[row][col] load, B[col][row] load, C[row][col] store pattern.
		a := cfg.DataBase + uint64(row*dim+col)*8
		b := cfg.DataBase + uint64(dim*dim)*8 + uint64(col*dim+row)*8
		cAddr := cfg.DataBase + 2*uint64(dim*dim)*8 + uint64(row*dim+col)*8
		t.Refs = append(t.Refs, Ref{Kind: Load, Addr: a, Size: 8})
		if len(t.Refs) < cfg.Refs {
			t.Refs = append(t.Refs, Ref{Kind: Load, Addr: b, Size: 8})
		}
		if len(t.Refs) < cfg.Refs {
			t.Refs = append(t.Refs, Ref{Kind: Store, Addr: cAddr, Size: 8})
		}
		col++
		if col == dim {
			col = 0
			row = (row + 1) % dim
		}
	}
	t.Refs = t.Refs[:cfg.Refs]
	return t
}

// computeGap draws a small geometric-ish compute gap around mean.
func computeGap(rng *rand.Rand, mean int) uint16 {
	if mean <= 0 {
		return 0
	}
	g := rng.Intn(2*mean + 1)
	return uint16(g)
}

// Generators is the registry of named workloads the experiment harness
// sweeps; the map value builds a trace from a config.
var Generators = map[string]func(Config) *Trace{
	"sequential":    Sequential,
	"code-only":     CodeOnly,
	"streaming":     Streaming,
	"pointer-chase": PointerChase,
	"matrix-like":   MatrixLike,
}

// MultiProcess generates a round-robin multitasking workload: Procs
// processes, each confined to its own code and data regions, scheduled
// in quanta of Quantum references. It drives the key-management
// extension (multikey EDU): every quantum boundary is a protection-
// domain switch on the bus.
type MultiProcessConfig struct {
	// Config supplies the per-process knobs (jump rate, write fraction,
	// locality, compute gaps); region fields are ignored.
	Config
	// Procs is the process count (>= 1; default 4).
	Procs int
	// Quantum is references per scheduling slice (default 500).
	Quantum int
	// RegionBytes is each process's code and data region size
	// (default 256 KiB each).
	RegionBytes uint64
}

// ProcessRegion returns process p's code region [base, limit) under cfg;
// its data region follows immediately after. The multikey experiments
// use it to wire protection domains that match the generator.
func (c MultiProcessConfig) ProcessRegion(p int) (base, limit uint64) {
	c.fillMP()
	base = uint64(p) * 2 * c.RegionBytes
	return base, base + 2*c.RegionBytes
}

func (c *MultiProcessConfig) fillMP() {
	if c.Procs == 0 {
		c.Procs = 4
	}
	if c.Quantum == 0 {
		c.Quantum = 500
	}
	if c.RegionBytes == 0 {
		c.RegionBytes = 256 << 10
	}
}

// MultiProcess builds the workload.
func MultiProcess(cfg MultiProcessConfig) *Trace {
	cfg.fillMP()
	cfg.Config.fill()
	out := &Trace{Name: "multi-process"}
	// One generator per process, advanced a quantum at a time. Each is
	// its own Sequential stream confined to the process's regions.
	streams := make([][]Ref, cfg.Procs)
	for p := 0; p < cfg.Procs; p++ {
		sub := cfg.Config
		base, _ := cfg.ProcessRegion(p)
		sub.CodeBase, sub.CodeSize = base, cfg.RegionBytes
		sub.DataBase, sub.DataSize = base+cfg.RegionBytes, cfg.RegionBytes
		// Each process gets its own independent source: seed-derived by
		// default, or drawn from the caller's explicit Rand so the whole
		// workload is a function of that one source.
		if cfg.Rand != nil {
			sub.Rand = NewRand(cfg.Rand.Int63())
		} else {
			sub.Seed = cfg.Seed + int64(p)*7919
		}
		sub.Refs = cfg.Refs // oversize; sliced per quantum below
		streams[p] = Sequential(sub).Refs
	}
	cursor := make([]int, cfg.Procs)
	p := 0
	for len(out.Refs) < cfg.Refs {
		take := cfg.Quantum
		if remain := cfg.Refs - len(out.Refs); take > remain {
			take = remain
		}
		cur := cursor[p]
		end := cur + take
		if end > len(streams[p]) {
			end = len(streams[p])
		}
		out.Refs = append(out.Refs, streams[p][cur:end]...)
		cursor[p] = end
		p = (p + 1) % cfg.Procs
	}
	out.Refs = out.Refs[:cfg.Refs]
	return out
}
