// Package bus models the processor–memory bus: the link the survey calls
// "the weakest point of the system, hacker's favorite security hole",
// because "observing both memory content and system execution can be
// done through simple board-level probing at almost no cost".
//
// The model carries two concerns: timing (width and clock divider turn a
// transfer size into bus cycles) and observability (any number of Probe
// taps see every beat that crosses the chip boundary — this is the
// attacker's vantage point used by internal/attack).
package bus

import "fmt"

// Direction of a bus transfer relative to the SoC.
type Direction int

const (
	// Read moves data from external memory into the SoC.
	Read Direction = iota
	// Write moves data from the SoC to external memory.
	Write
)

// String names the direction.
func (d Direction) String() string {
	if d == Read {
		return "read"
	}
	return "write"
}

// Beat is one observable bus transaction: the address placed on the
// address lines and the data on the data lines. Data is what actually
// crosses the pins — ciphertext when an engine is present, plaintext
// when not; the probe records it verbatim.
type Beat struct {
	Dir   Direction
	Addr  uint64
	Data  []byte
	Cycle uint64 // bus-clock cycle at which the beat completed
}

// Probe receives every beat; implementations live in internal/attack.
type Probe interface {
	Observe(Beat)
}

// Config fixes the bus timing parameters.
type Config struct {
	// WidthBytes is the data-path width (e.g. 4 for a 32-bit bus).
	WidthBytes int
	// ClockDivider is CPU cycles per bus cycle (≥1); external buses run
	// slower than the core.
	ClockDivider int
	// AddressCycles is the fixed per-transaction address/handshake cost
	// in bus cycles.
	AddressCycles int
}

// Validate checks the parameters.
func (c Config) Validate() error {
	if c.WidthBytes <= 0 || c.ClockDivider <= 0 || c.AddressCycles < 0 {
		return fmt.Errorf("bus: bad config %+v", c)
	}
	return nil
}

// Bus is one bus instance with attached probes.
type Bus struct {
	cfg    Config
	probes []Probe
	cycle  uint64
	// Stats
	Transactions uint64
	BytesMoved   uint64
	BusyCycles   uint64 // in CPU cycles
}

// New builds a bus.
func New(cfg Config) (*Bus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Bus{cfg: cfg}, nil
}

// Config returns the timing parameters.
func (b *Bus) Config() Config { return b.cfg }

// Attach adds a probe tap. Multiple probes may coexist (a logic analyzer
// on address lines and another on data lines, say).
func (b *Bus) Attach(p Probe) { b.probes = append(b.probes, p) }

// CyclesFor returns the CPU-cycle cost of moving n bytes in one
// transaction: address phase plus ceil(n/width) data beats, all scaled
// by the clock divider.
func (b *Bus) CyclesFor(n int) uint64 {
	beats := (n + b.cfg.WidthBytes - 1) / b.cfg.WidthBytes
	return uint64(b.cfg.ClockDivider) * uint64(b.cfg.AddressCycles+beats)
}

// Transfer moves data across the pins, notifying probes, and returns the
// CPU-cycle cost. data is what is visible on the wires.
func (b *Bus) Transfer(dir Direction, addr uint64, data []byte) uint64 {
	cost := b.CyclesFor(len(data))
	b.cycle += cost / uint64(b.cfg.ClockDivider)
	b.Transactions++
	b.BytesMoved += uint64(len(data))
	b.BusyCycles += cost
	if len(b.probes) > 0 {
		// Copy so probes can retain the beat without aliasing engine
		// buffers that will be reused.
		//repro:allow probe retention copy; probes attach only in attack experiments, never in timing runs
		cp := append([]byte{}, data...)
		beat := Beat{Dir: dir, Addr: addr, Data: cp, Cycle: b.cycle}
		for _, p := range b.probes {
			p.Observe(beat)
		}
	}
	return cost
}
