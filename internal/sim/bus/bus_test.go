package bus

import (
	"bytes"
	"testing"
)

type recorder struct{ beats []Beat }

func (r *recorder) Observe(b Beat) { r.beats = append(r.beats, b) }

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{WidthBytes: 0, ClockDivider: 1},
		{WidthBytes: 4, ClockDivider: 0},
		{WidthBytes: 4, ClockDivider: 1, AddressCycles: -1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestCyclesFor(t *testing.T) {
	b, err := New(Config{WidthBytes: 4, ClockDivider: 2, AddressCycles: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 32 bytes over a 4-byte bus: 8 beats + 2 addr = 10 bus cycles × 2.
	if got := b.CyclesFor(32); got != 20 {
		t.Errorf("CyclesFor(32) = %d, want 20", got)
	}
	// Partial beat rounds up: 5 bytes = 2 beats + 2 addr = 4 × 2.
	if got := b.CyclesFor(5); got != 8 {
		t.Errorf("CyclesFor(5) = %d, want 8", got)
	}
}

func TestTransferStatsAndCost(t *testing.T) {
	b, _ := New(Config{WidthBytes: 4, ClockDivider: 1, AddressCycles: 1})
	cost := b.Transfer(Read, 0x100, make([]byte, 16))
	if cost != 5 { // 4 beats + 1 addr
		t.Errorf("cost = %d, want 5", cost)
	}
	if b.Transactions != 1 || b.BytesMoved != 16 || b.BusyCycles != 5 {
		t.Errorf("stats: txns=%d bytes=%d busy=%d", b.Transactions, b.BytesMoved, b.BusyCycles)
	}
}

func TestProbeSeesEveryBeat(t *testing.T) {
	b, _ := New(Config{WidthBytes: 4, ClockDivider: 1, AddressCycles: 1})
	p := &recorder{}
	b.Attach(p)
	data := []byte{1, 2, 3, 4}
	b.Transfer(Write, 0x40, data)
	b.Transfer(Read, 0x80, []byte{9, 9})
	if len(p.beats) != 2 {
		t.Fatalf("probe saw %d beats, want 2", len(p.beats))
	}
	if p.beats[0].Dir != Write || p.beats[0].Addr != 0x40 || !bytes.Equal(p.beats[0].Data, data) {
		t.Errorf("beat 0 wrong: %+v", p.beats[0])
	}
	if p.beats[1].Dir != Read || p.beats[1].Addr != 0x80 {
		t.Errorf("beat 1 wrong: %+v", p.beats[1])
	}
}

// The probe must get its own copy: mutating the engine buffer afterwards
// must not corrupt the recorded evidence.
func TestProbeDataIsCopied(t *testing.T) {
	b, _ := New(Config{WidthBytes: 4, ClockDivider: 1, AddressCycles: 0})
	p := &recorder{}
	b.Attach(p)
	buf := []byte{0xAA, 0xBB}
	b.Transfer(Read, 0, buf)
	buf[0] = 0x00
	if p.beats[0].Data[0] != 0xAA {
		t.Error("probe beat aliases the transfer buffer")
	}
}

func TestMultipleProbes(t *testing.T) {
	b, _ := New(Config{WidthBytes: 4, ClockDivider: 1, AddressCycles: 0})
	p1, p2 := &recorder{}, &recorder{}
	b.Attach(p1)
	b.Attach(p2)
	b.Transfer(Read, 0, make([]byte, 4))
	if len(p1.beats) != 1 || len(p2.beats) != 1 {
		t.Error("both probes should observe")
	}
}

func TestDirectionString(t *testing.T) {
	if Read.String() != "read" || Write.String() != "write" {
		t.Error("direction names wrong")
	}
}

func TestCycleAdvances(t *testing.T) {
	b, _ := New(Config{WidthBytes: 4, ClockDivider: 2, AddressCycles: 1})
	p := &recorder{}
	b.Attach(p)
	b.Transfer(Read, 0, make([]byte, 4))
	b.Transfer(Read, 4, make([]byte, 4))
	if len(p.beats) == 2 && p.beats[1].Cycle <= p.beats[0].Cycle {
		t.Error("bus cycle did not advance between transfers")
	}
}
