package authtree

import (
	"math/rand"
	"testing"

	"repro/internal/crypto/ghash"
	"repro/internal/edu"
)

var testKey = []byte("0123456789abcdef")

func testRegions() []Region {
	return []Region{
		{Base: 0, Bytes: 1 << 20},
		{Base: 0x4000_0000, Bytes: 4 << 20},
	}
}

func mkTree(t *testing.T, variant Variant, nodeCacheBytes int) *Tree {
	t.Helper()
	tr, err := New(Config{
		Key: testKey, LineBytes: 32, Regions: testRegions(),
		NodeCacheBytes: nodeCacheBytes, Variant: variant,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func line(seed byte) []byte {
	b := make([]byte, 32)
	for i := range b {
		b[i] = seed + byte(i)
	}
	return b
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Key: []byte("short"), LineBytes: 32, Regions: testRegions()},
		{Key: testKey, LineBytes: 33, Regions: testRegions()},
		{Key: testKey, LineBytes: 32},
		{Key: testKey, LineBytes: 32, Regions: testRegions(), Arity: 3},
		{Key: testKey, LineBytes: 32, Regions: []Region{{Base: 7, Bytes: 1024}}},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d accepted, want error", i)
		}
	}
	if _, err := NewFlat(FlatConfig{Key: testKey, Fresh: true}); err == nil {
		t.Error("flat freshness without a table bound accepted")
	}
}

func TestLevelsAndNodeGeometry(t *testing.T) {
	tr := mkTree(t, HashTree, 4<<10)
	// 5 MiB protected at 32 B/line = 160 Ki leaves; arity 8 needs
	// ceil(log8(160Ki)) = 6 interior levels including the root.
	if tr.Levels() != 6 {
		t.Errorf("Levels = %d, want 6", tr.Levels())
	}
	if tr.NodeBytes() != 16*8 {
		t.Errorf("hash node = %dB, want 128", tr.NodeBytes())
	}
	ct := mkTree(t, CounterTree, 4<<10)
	if ct.NodeBytes() != 8*8+8 {
		t.Errorf("counter node = %dB, want 72", ct.NodeBytes())
	}
	if ct.NodeBytes() >= tr.NodeBytes() {
		t.Error("counter-tree nodes should be smaller than hash-tree nodes")
	}
}

// Legitimate write-then-read must verify, for both variants and both
// flat schemes.
func TestRoundTripVerifies(t *testing.T) {
	verifiers := []edu.Verifier{
		mkTree(t, HashTree, 4<<10),
		mkTree(t, CounterTree, 4<<10),
		mustFlat(t, false),
		mustFlat(t, true),
	}
	for _, v := range verifiers {
		ct := line(3)
		v.UpdateWrite(0x40, ct)
		if _, ok := v.VerifyRead(0x40, ct); !ok {
			t.Errorf("%s: legitimate read rejected", v.Name())
		}
		// Rewrite with new content, re-read.
		ct2 := line(9)
		v.UpdateWrite(0x40, ct2)
		if _, ok := v.VerifyRead(0x40, ct2); !ok {
			t.Errorf("%s: read after rewrite rejected", v.Name())
		}
	}
}

func mustFlat(t *testing.T, fresh bool) *Flat {
	t.Helper()
	f, err := NewFlat(FlatConfig{Key: testKey, Fresh: fresh, ProtectedLines: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// The three attacks at the verifier seam: spoof (content), splice
// (address), replay (freshness).
func TestAttackDetection(t *testing.T) {
	type tamperCase struct {
		name string
		// wantDetected[i] is the expectation for
		// {hash-tree, counter-tree, flat-mac, flat-fresh}.
		want [4]bool
		run  func(v edu.Verifier) bool // returns detected
	}
	genuine := line(1)
	other := line(2)
	cases := []tamperCase{
		{"spoof", [4]bool{true, true, true, true}, func(v edu.Verifier) bool {
			v.UpdateWrite(0x40, genuine)
			junk := line(0xEE)
			_, ok := v.VerifyRead(0x40, junk)
			return !ok
		}},
		{"splice", [4]bool{true, true, true, true}, func(v edu.Verifier) bool {
			v.UpdateWrite(0x00, genuine)
			v.UpdateWrite(0x40, other)
			// Relocate ciphertext AND tag from 0x00 to 0x40.
			ts := v.(interface {
				TagAt(uint64) ([ghash.TagBytes]byte, bool)
				TamperTag(uint64, [ghash.TagBytes]byte)
			})
			if tag, had := ts.TagAt(0x00); had {
				ts.TamperTag(0x40, tag)
			}
			_, ok := v.VerifyRead(0x40, genuine) // 0x00's bytes at 0x40
			return !ok
		}},
		{"replay", [4]bool{true, true, false, true}, func(v edu.Verifier) bool {
			v.UpdateWrite(0x40, genuine)
			ts := v.(interface {
				TagAt(uint64) ([ghash.TagBytes]byte, bool)
				TamperTag(uint64, [ghash.TagBytes]byte)
			})
			staleTag, _ := ts.TagAt(0x40)
			// Legitimate rewrite, then roll back ct + tag.
			v.UpdateWrite(0x40, other)
			ts.TamperTag(0x40, staleTag)
			_, ok := v.VerifyRead(0x40, genuine)
			return !ok
		}},
	}
	for _, tc := range cases {
		verifiers := []edu.Verifier{
			mkTree(t, HashTree, 4<<10),
			mkTree(t, CounterTree, 4<<10),
			mustFlat(t, false),
			mustFlat(t, true),
		}
		for i, v := range verifiers {
			if got := tc.run(v); got != tc.want[i] {
				t.Errorf("%s under %s: detected=%v, want %v", tc.name, v.Name(), got, tc.want[i])
			}
		}
	}
}

// Unprotected addresses bypass verification (counted, free, accepted).
func TestUnprotectedBypass(t *testing.T) {
	tr := mkTree(t, HashTree, 4<<10)
	stall, ok := tr.VerifyRead(0x9000_0000, line(5))
	if !ok || stall != 0 {
		t.Fatalf("unprotected read: stall=%d ok=%v, want 0,true", stall, ok)
	}
	if tr.Unprotected != 1 {
		t.Fatalf("Unprotected = %d, want 1", tr.Unprotected)
	}
}

// The node cache is the cost lever: the same access stream must get
// cheaper (higher hit rate, lower cumulative stall) as the cache grows.
func TestNodeCacheLocality(t *testing.T) {
	run := func(nodeCacheBytes int) (stall uint64, hitRate float64) {
		tr := mkTree(t, HashTree, nodeCacheBytes)
		rng := rand.New(rand.NewSource(7))
		ct := line(1)
		// A looping working set of 512 lines (16 KiB): tree locality a
		// real node cache can exploit.
		for i := 0; i < 20000; i++ {
			addr := uint64(rng.Intn(512)) * 32
			if rng.Intn(4) == 0 {
				stall += tr.UpdateWrite(addr, ct)
			} else {
				s, _ := tr.VerifyRead(addr, ct)
				stall += s
			}
		}
		return stall, tr.NodeHitRate()
	}
	smallStall, smallHit := run(512)
	bigStall, bigHit := run(16 << 10)
	if bigStall >= smallStall {
		t.Errorf("16K node cache stall %d >= 512B stall %d", bigStall, smallStall)
	}
	if bigHit <= smallHit {
		t.Errorf("16K node cache hit rate %.3f <= 512B hit rate %.3f", bigHit, smallHit)
	}
}

// On-chip area: trees are flat in protected size; the flat freshness
// table is linear in it — the motivating contrast.
func TestGatesScaling(t *testing.T) {
	small, err := New(Config{Key: testKey, LineBytes: 32,
		Regions: []Region{{Base: 0, Bytes: 4 << 20}}, NodeCacheBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	big, err := New(Config{Key: testKey, LineBytes: 32,
		Regions: []Region{{Base: 0, Bytes: 512 << 20}}, NodeCacheBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if small.Gates() != big.Gates() {
		t.Errorf("tree gates vary with protected size: %d vs %d", small.Gates(), big.Gates())
	}
	if big.Levels() <= small.Levels() {
		t.Errorf("levels should grow with protected size: %d vs %d", big.Levels(), small.Levels())
	}

	flatSmall, _ := NewFlat(FlatConfig{Key: testKey, Fresh: true, ProtectedLines: (4 << 20) / 32})
	flatBig, _ := NewFlat(FlatConfig{Key: testKey, Fresh: true, ProtectedLines: (512 << 20) / 32})
	if flatBig.Gates() <= 100*flatSmall.Gates() {
		t.Errorf("flat-fresh gates should scale ~linearly: %d vs %d", flatSmall.Gates(), flatBig.Gates())
	}
	// The accounting rule is shared: counter table = lines * 8 bytes *
	// edu.SRAMGatesPerByte, plus the hash datapath.
	want := edu.GHASHUnitGates + (4<<20)/32*8*edu.SRAMGatesPerByte
	if flatSmall.Gates() != want {
		t.Errorf("flat-fresh gates = %d, want %d (shared SRAM rule)", flatSmall.Gates(), want)
	}
}

// Steady-state verifier operations must not allocate: they sit on the
// SoC's 0 allocs/ref miss path.
func TestVerifierZeroAllocs(t *testing.T) {
	for _, v := range []edu.Verifier{
		mkTree(t, HashTree, 1<<10),
		mkTree(t, CounterTree, 1<<10),
		mustFlat(t, true),
	} {
		ct := line(1)
		// Warm every line's tag entry, then measure.
		for a := uint64(0); a < 256*32; a += 32 {
			v.UpdateWrite(a, ct)
			v.VerifyRead(a, ct)
		}
		i := 0
		if avg := testing.AllocsPerRun(200, func() {
			a := uint64(i%256) * 32
			i++
			v.VerifyRead(a, ct)
			v.UpdateWrite(a, ct)
		}); avg != 0 {
			t.Errorf("%s: %.2f allocs per op, want 0", v.Name(), avg)
		}
	}
}
