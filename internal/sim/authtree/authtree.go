// Package authtree is the memory-authentication subsystem the survey's
// future-work section points toward and AEGIS develops: integrity trees
// over protected DRAM with only the root held on-chip. The flat
// authenticator of edu/integrity charges O(protected memory) on-chip
// SRAM for its freshness counters; a tree pays O(1) on-chip (the root
// plus a bounded node cache) and moves the rest of the structure into
// untrusted external memory, authenticated level by level.
//
// Two variants span the design space:
//
//   - HashTree: a Merkle tree whose leaves are the per-line tags and
//     whose interior nodes hash their children at full 128-bit width.
//   - CounterTree: the AEGIS/TEC-tree direction — interior nodes hold
//     per-child freshness counters (8 bytes each) plus one node tag, so
//     nodes are smaller: the same on-chip SRAM caches more of the tree
//     and each uncached level moves fewer bus bytes.
//
// Node tags use a GHASH-style keyed universal hash (crypto/ghash): a
// carryless multiplier is cheap enough to put on the miss path, which
// is what makes per-node authentication affordable at all.
//
// The on-chip node cache is the performance lever: a verification walk
// climbs only until it meets a node already verified this epoch (cached
// copies are inside the trust boundary), so the cost of a miss depends
// on tree locality rather than always paying log(N) hashes. Updates dirty
// the cached path lazily and pay the propagation on eviction — the
// cached-tree discipline of the AEGIS literature.
//
// Simulation contract: external stores (the per-line tag array) are
// materialized sparsely and are attacker-tamperable via TagAt/
// TamperTag; interior nodes are modeled positionally — the walk charges
// fetch/hash cycles against real node-cache state, while the verdict is
// computed against the root-anchored ground truth the walk would
// reconstruct. For the tamper surface the attack harness implements
// (DRAM data + external tag store), the two are equivalent; see
// DESIGN.md §7. All steady-state operations are allocation-free.
package authtree

import (
	"fmt"

	"repro/internal/crypto/ghash"
	"repro/internal/edu"
	"repro/internal/obs/rec"
)

// Variant selects the tree flavor.
type Variant int

const (
	// HashTree is a Merkle tree: interior nodes are full-width hashes
	// of their children.
	HashTree Variant = iota
	// CounterTree is the AEGIS direction: interior nodes carry
	// per-child counters plus a node tag, so nodes are smaller.
	CounterTree
)

// String names the variant as reports print it.
func (v Variant) String() string {
	if v == CounterTree {
		return "counter-tree"
	}
	return "hash-tree"
}

// Region is one protected window of the physical address space.
// Regions map contiguously into the tree's leaf index space in slice
// order; accesses outside every region bypass authentication (and are
// counted — unprotected traffic should be a deliberate choice).
type Region struct {
	Base, Bytes uint64
}

// Config assembles a tree authenticator.
type Config struct {
	// Key is the 16-byte GHASH key.
	Key []byte
	// LineBytes is the protected granule — the SoC's cache line size.
	LineBytes int
	// Arity is children per interior node; power of two, default 8.
	Arity int
	// Regions are the protected DRAM windows (required, non-empty).
	Regions []Region
	// NodeCacheBytes is the on-chip node cache SRAM; default 4 KiB.
	NodeCacheBytes int
	// Variant selects HashTree or CounterTree.
	Variant Variant
	// TagCycles is the leaf-tag (GHASH over a line) pipeline tail
	// visible beyond the transfer; default 8.
	TagCycles int
	// NodeHashCycles is the cost of hashing one interior node;
	// default 4 (nodes are smaller than lines).
	NodeHashCycles int
}

// Tree is one tree authenticator instance. It implements edu.Verifier.
type Tree struct {
	cfg        Config
	key        *ghash.Key
	log2Arity  uint
	levels     int    // interior levels; level `levels` is the on-chip root
	leaves     uint64 // leaf slots across all regions
	nodeBytes  int
	fetchCost  uint64 // external node fetch/writeback, CPU cycles
	cache      nodeCache
	ext        map[uint64]ghash.Tag // external per-line tag store (tamperable)
	trusted    map[uint64]ghash.Tag // root-anchored ground truth
	ver        map[uint64]uint64    // per-line counters (CounterTree)
	Verified   uint64               // successful line verifications
	Violations uint64               // detected tampers
	// Unprotected counts reads/writes outside every protected region.
	Unprotected uint64
	// NodeHits / NodeFetches split verification walks by node-cache
	// outcome: the locality the node cache exists to exploit.
	NodeHits, NodeFetches uint64
	// m is the live metrics bundle (zero value = publish nowhere).
	m Metrics
	// rc is the flight recorder (nil = no-op): walks emit per-node
	// fetch/hit/dirty-propagate events under the SoC's current stamp.
	rc *rec.Recorder
}

// New builds a tree authenticator.
func New(cfg Config) (*Tree, error) {
	if len(cfg.Key) != ghash.KeySize {
		return nil, fmt.Errorf("authtree: key must be %d bytes, got %d", ghash.KeySize, len(cfg.Key))
	}
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("authtree: line size %d not a positive power of two", cfg.LineBytes)
	}
	if cfg.Arity == 0 {
		cfg.Arity = 8
	}
	if cfg.Arity < 2 || cfg.Arity&(cfg.Arity-1) != 0 {
		return nil, fmt.Errorf("authtree: arity %d not a power of two >= 2", cfg.Arity)
	}
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("authtree: no protected regions")
	}
	var total uint64
	for _, r := range cfg.Regions {
		if r.Bytes == 0 || r.Bytes%uint64(cfg.LineBytes) != 0 || r.Base%uint64(cfg.LineBytes) != 0 {
			return nil, fmt.Errorf("authtree: region %+v not line-aligned", r)
		}
		total += r.Bytes
	}
	if cfg.NodeCacheBytes == 0 {
		cfg.NodeCacheBytes = 4 << 10
	}
	if cfg.NodeCacheBytes < 0 {
		return nil, fmt.Errorf("authtree: negative node cache size")
	}
	if cfg.TagCycles == 0 {
		cfg.TagCycles = 8
	}
	if cfg.NodeHashCycles == 0 {
		cfg.NodeHashCycles = 4
	}

	t := &Tree{
		cfg:     cfg,
		key:     ghash.NewKey(cfg.Key),
		leaves:  total / uint64(cfg.LineBytes),
		ext:     make(map[uint64]ghash.Tag),
		trusted: make(map[uint64]ghash.Tag),
	}
	for a := cfg.Arity; a > 1; a >>= 1 {
		t.log2Arity++
	}
	// Interior levels until one node covers every leaf; that single
	// top node is the on-chip root.
	for n := t.leaves; n > uint64(cfg.Arity); n = (n + uint64(cfg.Arity) - 1) / uint64(cfg.Arity) {
		t.levels++
	}
	t.levels++ // the root level itself

	switch cfg.Variant {
	case CounterTree:
		// Per-child 8-byte counters plus one 8-byte node tag.
		t.nodeBytes = 8*cfg.Arity + 8
		t.ver = make(map[uint64]uint64)
	default:
		// Full-width interior hashes: collision resistance lives here.
		t.nodeBytes = ghash.KeySize * cfg.Arity
	}
	// External node traffic: a first-order row access plus 32-bit bus
	// beats for the node body (see DESIGN.md §7 for the rationale).
	t.fetchCost = uint64(16 + t.nodeBytes/4)
	t.cache.init(cfg.NodeCacheBytes / t.nodeBytes)
	return t, nil
}

// Name implements edu.Verifier.
func (t *Tree) Name() string { return t.cfg.Variant.String() }

// Levels reports the interior tree depth including the root level —
// the walk length a cold verification pays.
func (t *Tree) Levels() int { return t.levels }

// NodeBytes reports one interior node's external footprint.
func (t *Tree) NodeBytes() int { return t.nodeBytes }

// Gates implements edu.Verifier: the GHASH datapath, the node-cache
// SRAM, and the root register — on-chip cost is independent of
// protected-memory size, which is the whole argument for trees.
func (t *Tree) Gates() int {
	return edu.GHASHUnitGates +
		(t.cfg.NodeCacheBytes+t.nodeBytes)*edu.SRAMGatesPerByte
}

// leafIndex maps a protected address to its leaf slot; ok=false means
// the address is outside every protected region.
func (t *Tree) leafIndex(addr uint64) (uint64, bool) {
	var offset uint64
	for _, r := range t.cfg.Regions {
		if addr >= r.Base && addr < r.Base+r.Bytes {
			return (offset + (addr - r.Base)) / uint64(t.cfg.LineBytes), true
		}
		offset += r.Bytes
	}
	return 0, false
}

func nodeKey(level int, id uint64) uint64 {
	return uint64(level)<<56 | id
}

// version returns the freshness input to a line's tag: the live counter
// under CounterTree, 0 under HashTree (whose freshness comes from the
// root-anchored tag chain instead).
func (t *Tree) version(addr uint64) uint64 {
	if t.ver == nil {
		return 0
	}
	return t.ver[addr]
}

// walkVerify climbs from the leaf's parent toward the root, stopping at
// the first node already inside the trust boundary (node-cache hit or
// the on-chip root). Each uncached level pays an external node fetch
// plus a node hash; evicting a dirty cached node pays its writeback.
func (t *Tree) walkVerify(leaf uint64) uint64 {
	var stall uint64
	for lvl := 1; lvl < t.levels; lvl++ {
		key := nodeKey(lvl, leaf>>(uint(lvl)*t.log2Arity))
		if t.cache.probe(key, false) {
			t.NodeHits++
			t.m.NodeHits.Inc()
			t.rc.Emit(rec.KindNodeHit, key, uint8(lvl), 0, 0)
			return stall + 1
		}
		t.NodeFetches++
		t.m.NodeFetches.Inc()
		t.rc.Emit(rec.KindNodeFetch, key, uint8(lvl), 0, t.fetchCost+uint64(t.cfg.NodeHashCycles))
		stall += t.fetchCost + uint64(t.cfg.NodeHashCycles)
		if t.cache.insert(key, false) {
			stall += t.fetchCost // dirty victim written back
			t.rc.Emit(rec.KindDirtyPropagate, key, uint8(lvl), 0, t.fetchCost)
		}
	}
	return stall + 1 // met the on-chip root
}

// walkUpdate recomputes the path above a modified leaf. A cached
// ancestor absorbs the update in place (dirtied, propagated on
// eviction); an uncached one must be fetched and verified before it can
// be rewritten.
func (t *Tree) walkUpdate(leaf uint64) uint64 {
	var stall uint64
	for lvl := 1; lvl < t.levels; lvl++ {
		key := nodeKey(lvl, leaf>>(uint(lvl)*t.log2Arity))
		if t.cache.probe(key, true) {
			t.NodeHits++
			t.m.NodeHits.Inc()
			t.rc.Emit(rec.KindNodeHit, key, uint8(lvl), rec.FlagUpdate, 0)
			return stall + uint64(t.cfg.NodeHashCycles)
		}
		t.NodeFetches++
		t.m.NodeFetches.Inc()
		t.rc.Emit(rec.KindNodeFetch, key, uint8(lvl), rec.FlagUpdate, t.fetchCost+2*uint64(t.cfg.NodeHashCycles))
		stall += t.fetchCost + 2*uint64(t.cfg.NodeHashCycles) // verify, then recompute
		if t.cache.insert(key, true) {
			stall += t.fetchCost
			t.rc.Emit(rec.KindDirtyPropagate, key, uint8(lvl), rec.FlagUpdate, t.fetchCost)
		}
	}
	return stall + uint64(t.cfg.NodeHashCycles) // root register update
}

// VerifyRead implements edu.Verifier. Two comparisons close the three
// attacks: the recomputed tag against the external store catches
// spoofing and splicing (content and address binding), and the external
// store against the root-anchored value catches replay of a stale
// (line, tag) pair.
func (t *Tree) VerifyRead(addr uint64, ct []byte) (uint64, bool) {
	leaf, protected := t.leafIndex(addr)
	if !protected {
		t.Unprotected++
		return 0, true
	}
	stall := uint64(t.cfg.TagCycles)
	want := t.key.TagLine(addr, t.version(addr), ct)
	t.m.TagComputations.Inc()
	stored, enrolled := t.ext[addr]
	if !enrolled {
		// First sight of a never-written line: enroll it, as boot
		// firmware initializing protected memory would.
		//repro:allow enrollment inserts once per line; steady-state reads never reach here
		t.ext[addr] = want
		//repro:allow enrollment inserts once per line; steady-state reads never reach here
		t.trusted[addr] = want
		t.Verified++
		t.m.Verified.Inc()
		return stall + t.walkUpdate(leaf), true
	}
	stall += t.walkVerify(leaf)
	if want != stored || stored != t.trusted[addr] {
		t.Violations++
		t.m.Violations.Inc()
		return stall, false
	}
	t.Verified++
	t.m.Verified.Inc()
	return stall, true
}

// UpdateWrite implements edu.Verifier: retag the line (bumping its
// counter under CounterTree) and propagate up the cached path.
func (t *Tree) UpdateWrite(addr uint64, ct []byte) uint64 {
	leaf, protected := t.leafIndex(addr)
	if !protected {
		t.Unprotected++
		return 0
	}
	if t.ver != nil {
		t.ver[addr]++ //repro:allow sparse counter table; steady-state bumps hit existing keys
	}
	tag := t.key.TagLine(addr, t.version(addr), ct)
	t.m.TagComputations.Inc()
	//repro:allow sparse external tag store; steady-state writes hit existing keys
	t.ext[addr] = tag
	//repro:allow sparse external tag store; steady-state writes hit existing keys
	t.trusted[addr] = tag
	return uint64(t.cfg.TagCycles) + t.walkUpdate(leaf)
}

// TagAt returns the externally stored tag for a line — attacker-
// readable, like the tag memory it models.
func (t *Tree) TagAt(addr uint64) ([ghash.TagBytes]byte, bool) {
	tag, ok := t.ext[addr]
	return tag, ok
}

// TamperTag overwrites the external tag store — the attack harness's
// write access to external memory.
func (t *Tree) TamperTag(addr uint64, tag [ghash.TagBytes]byte) { t.ext[addr] = tag } //repro:allow attack-harness tamper write; per-strike, timing runs never call it

// NodeHitRate reports the fraction of walk terminations served by the
// node cache.
func (t *Tree) NodeHitRate() float64 {
	total := t.NodeHits + t.NodeFetches
	if total == 0 {
		return 0
	}
	return float64(t.NodeHits) / float64(total)
}

// nodeCache is the on-chip cache of verified tree nodes: 4-way
// set-associative, LRU, preallocated — probes and inserts never
// allocate.
type nodeCache struct {
	entries []nodeEntry
	sets    int
	ways    int
	tick    uint64
}

type nodeEntry struct {
	key   uint64
	valid bool
	dirty bool
	used  uint64
}

func (c *nodeCache) init(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	c.ways = 4
	if capacity < c.ways {
		c.ways = capacity
	}
	// Use the whole configured budget: the set index is a plain
	// modulo, so the set count need not be a power of two. (Rounding
	// down would silently discard SRAM the Gates figure charges —
	// and with it the counter-tree's smaller-node advantage.)
	c.sets = capacity / c.ways
	if c.sets < 1 {
		c.sets = 1
	}
	c.entries = make([]nodeEntry, c.sets*c.ways)
}

func (c *nodeCache) set(key uint64) []nodeEntry {
	s := int((key ^ key>>17) % uint64(c.sets))
	return c.entries[s*c.ways : (s+1)*c.ways]
}

// probe reports residency, refreshing LRU state and optionally marking
// the node dirty (an in-place cached update).
func (c *nodeCache) probe(key uint64, markDirty bool) bool {
	c.tick++
	ways := c.set(key)
	for i := range ways {
		if ways[i].valid && ways[i].key == key {
			ways[i].used = c.tick
			if markDirty {
				ways[i].dirty = true
			}
			return true
		}
	}
	return false
}

// insert caches a just-verified node, returning whether a dirty victim
// was evicted (its propagation cost is the caller's to charge).
func (c *nodeCache) insert(key uint64, dirty bool) (evictedDirty bool) {
	c.tick++
	ways := c.set(key)
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].used < ways[victim].used {
			victim = i
		}
	}
	evictedDirty = ways[victim].valid && ways[victim].dirty
	ways[victim] = nodeEntry{key: key, valid: true, dirty: dirty, used: c.tick}
	return evictedDirty
}
