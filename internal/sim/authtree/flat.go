// The flat authenticators: the baseline the trees are measured against.
// Same GHASH tag path and the same edu.Verifier seam, but no tree —
// which is exactly what makes the comparison in E20 meaningful: the
// delta is the structure, not the hash.

package authtree

import (
	"fmt"

	"repro/internal/crypto/ghash"
	"repro/internal/edu"
)

// FlatConfig assembles a flat (tree-less) authenticator.
type FlatConfig struct {
	// Key is the 16-byte GHASH key.
	Key []byte
	// Fresh adds an on-chip per-line version counter table: replay is
	// detected, but on-chip area grows linearly with protected memory —
	// the scaling problem the trees exist to solve.
	Fresh bool
	// ProtectedLines bounds the counter table; required when Fresh.
	ProtectedLines int
	// TagCycles is the per-line GHASH pipeline tail; default 8.
	TagCycles int
}

// Flat is a per-line MAC authenticator: tags live in external memory
// (tamperable), versions — when Fresh — in on-chip SRAM. Without
// freshness, a replayed stale (line, tag) pair verifies: the rollback
// attack the survey's credit-counter examples worry about.
type Flat struct {
	cfg        FlatConfig
	key        *ghash.Key
	ext        map[uint64]ghash.Tag
	ver        map[uint64]uint64
	Verified   uint64
	Violations uint64
}

// NewFlat builds a flat authenticator.
func NewFlat(cfg FlatConfig) (*Flat, error) {
	if len(cfg.Key) != ghash.KeySize {
		return nil, fmt.Errorf("authtree: key must be %d bytes, got %d", ghash.KeySize, len(cfg.Key))
	}
	if cfg.Fresh && cfg.ProtectedLines <= 0 {
		return nil, fmt.Errorf("authtree: freshness requires a positive ProtectedLines bound")
	}
	if cfg.TagCycles == 0 {
		cfg.TagCycles = 8
	}
	f := &Flat{cfg: cfg, key: ghash.NewKey(cfg.Key), ext: make(map[uint64]ghash.Tag)}
	if cfg.Fresh {
		f.ver = make(map[uint64]uint64)
	}
	return f, nil
}

// Name implements edu.Verifier.
func (f *Flat) Name() string {
	if f.cfg.Fresh {
		return "flat-fresh"
	}
	return "flat-mac"
}

// Gates implements edu.Verifier: the GHASH datapath plus — under
// freshness — the flat on-chip counter table, charged at 8 bytes per
// protected line through the shared edu.SRAMGatesPerByte rule so the
// figure is directly comparable with edu/integrity and the trees.
func (f *Flat) Gates() int {
	g := edu.GHASHUnitGates
	if f.cfg.Fresh {
		g += f.cfg.ProtectedLines * 8 * edu.SRAMGatesPerByte
	}
	return g
}

func (f *Flat) version(addr uint64) uint64 {
	if f.ver == nil {
		return 0
	}
	return f.ver[addr]
}

// VerifyRead implements edu.Verifier: recompute the tag and compare
// against the external store. With no root anchor, a consistent stale
// pair passes — flat-mac accepts replay by construction.
func (f *Flat) VerifyRead(addr uint64, ct []byte) (uint64, bool) {
	stall := uint64(f.cfg.TagCycles)
	if f.ver != nil {
		stall++ // on-chip counter table lookup
	}
	want := f.key.TagLine(addr, f.version(addr), ct)
	stored, enrolled := f.ext[addr]
	if !enrolled {
		f.ext[addr] = want //repro:allow enrollment inserts once per line; steady-state reads never reach here
		f.Verified++
		return stall, true
	}
	if want != stored {
		f.Violations++
		return stall, false
	}
	f.Verified++
	return stall, true
}

// UpdateWrite implements edu.Verifier.
func (f *Flat) UpdateWrite(addr uint64, ct []byte) uint64 {
	stall := uint64(f.cfg.TagCycles)
	if f.ver != nil {
		f.ver[addr]++ //repro:allow sparse counter table; steady-state bumps hit existing keys
		stall++
	}
	//repro:allow sparse external tag store; steady-state writes hit existing keys
	f.ext[addr] = f.key.TagLine(addr, f.version(addr), ct)
	return stall
}

// TagAt returns the externally stored tag (attacker-readable).
func (f *Flat) TagAt(addr uint64) ([ghash.TagBytes]byte, bool) {
	tag, ok := f.ext[addr]
	return tag, ok
}

// TamperTag overwrites the external tag store.
func (f *Flat) TamperTag(addr uint64, tag [ghash.TagBytes]byte) { f.ext[addr] = tag } //repro:allow attack-harness tamper write; per-strike, timing runs never call it
