package authtree

import (
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// Metrics publishes the tree authenticator's activity into
// pre-registered obs metrics, live — node-cache hit rate and tag-unit
// pressure are the two signals the cached-tree argument rests on. The
// zero value (all nil) disables publishing; all methods of obs metrics
// are nil-receiver no-ops, so the verified miss path stays
// allocation-free either way.
type Metrics struct {
	// NodeHits / NodeFetches split verification and update walks by
	// node-cache outcome (live twin of Tree.NodeHits/NodeFetches).
	NodeHits, NodeFetches *obs.Counter
	// TagComputations counts GHASH line-tag evaluations — the tag
	// unit's throughput demand.
	TagComputations *obs.Counter
	// Verified / Violations count line verifications by verdict.
	Verified, Violations *obs.Counter
}

// NewMetrics registers the authenticator inventory on r
// ("authtree.node_hits", "authtree.node_fetches",
// "authtree.tag_computations", "authtree.verified",
// "authtree.violations").
func NewMetrics(r *obs.Registry) Metrics {
	return Metrics{
		NodeHits:        r.Counter("authtree.node_hits"),
		NodeFetches:     r.Counter("authtree.node_fetches"),
		TagComputations: r.Counter("authtree.tag_computations"),
		Verified:        r.Counter("authtree.verified"),
		Violations:      r.Counter("authtree.violations"),
	}
}

// SetMetrics installs live counters on the tree (zero value to
// disable). Trees sharing a registry share cells — a campaign's
// aggregate node-cache hit rate.
func (t *Tree) SetMetrics(m Metrics) { t.m = m }

// SetRecorder installs the flight recorder (nil to disable): walks
// emit per-node fetch/hit/dirty-propagate events into it, stamped with
// whatever cycle/ref the SoC last set — the tree has no clock of its
// own, and the recorder's stamp discipline means it doesn't need one.
func (t *Tree) SetRecorder(r *rec.Recorder) { t.rc = r }
