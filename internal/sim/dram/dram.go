// Package dram models the external RAM of the survey's system diagrams:
// a row-buffer timing model plus an actual byte store, because the
// attacks need real memory contents to dump ("he dumped the external
// memory content in clear form through the parallel-port").
package dram

import "fmt"

// Config fixes the memory timing, in memory-clock cycles.
type Config struct {
	// RowHitCycles is the access time when the open row matches.
	RowHitCycles int
	// RowMissCycles is the access time including precharge + activate.
	RowMissCycles int
	// RowSize is the row-buffer span in bytes (power of two).
	RowSize int
	// ClockDivider is CPU cycles per memory cycle.
	ClockDivider int
}

// Validate checks parameters.
func (c Config) Validate() error {
	switch {
	case c.RowHitCycles <= 0 || c.RowMissCycles < c.RowHitCycles:
		return fmt.Errorf("dram: bad latencies %+v", c)
	case c.RowSize <= 0 || c.RowSize&(c.RowSize-1) != 0:
		return fmt.Errorf("dram: row size %d not a power of two", c.RowSize)
	case c.ClockDivider <= 0:
		return fmt.Errorf("dram: bad clock divider %d", c.ClockDivider)
	}
	return nil
}

// DefaultConfig is a 2005-flavour SDR/DDR-ish part: fast row hits,
// expensive row misses, 2 KiB rows, memory clock at a third of the core.
func DefaultConfig() Config {
	return Config{RowHitCycles: 4, RowMissCycles: 12, RowSize: 2048, ClockDivider: 3}
}

// DRAM is one external memory instance.
type DRAM struct {
	cfg     Config
	openRow uint64
	hasOpen bool
	store   map[uint64][]byte // page-granular backing store (4 KiB pages)
	// Stats
	Accesses uint64
	RowHits  uint64
}

const pageSize = 4096

// New builds a memory.
func New(cfg Config) (*DRAM, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &DRAM{cfg: cfg, store: make(map[uint64][]byte)}, nil
}

// Config returns the timing parameters.
func (d *DRAM) Config() Config { return d.cfg }

// AccessCycles returns the CPU-cycle latency for touching addr,
// updating the row-buffer state.
func (d *DRAM) AccessCycles(addr uint64) uint64 {
	row := addr / uint64(d.cfg.RowSize)
	d.Accesses++
	cycles := d.cfg.RowMissCycles
	if d.hasOpen && d.openRow == row {
		cycles = d.cfg.RowHitCycles
		d.RowHits++
	}
	d.openRow, d.hasOpen = row, true
	return uint64(cycles * d.cfg.ClockDivider)
}

func (d *DRAM) page(addr uint64) []byte {
	base := addr &^ (pageSize - 1)
	p, ok := d.store[base]
	if !ok {
		p = make([]byte, pageSize) //repro:allow demand paging; each page allocates once, steady state hits existing pages
		d.store[base] = p          //repro:allow demand paging; each page inserts once, steady state hits existing pages
	}
	return p
}

// Write stores data at addr (no timing; pair with AccessCycles).
func (d *DRAM) Write(addr uint64, data []byte) {
	for len(data) > 0 {
		p := d.page(addr)
		off := int(addr & (pageSize - 1))
		n := copy(p[off:], data)
		data = data[n:]
		addr += uint64(n)
	}
}

// Read fetches n bytes at addr; untouched memory reads as zero.
func (d *DRAM) Read(addr uint64, n int) []byte {
	out := make([]byte, n)
	d.ReadInto(addr, out)
	return out
}

// ReadInto fetches len(dst) bytes at addr into dst without allocating —
// the simulator's hot fill path.
func (d *DRAM) ReadInto(addr uint64, dst []byte) {
	for len(dst) > 0 {
		p := d.page(addr)
		off := int(addr & (pageSize - 1))
		n := copy(dst, p[off:])
		dst = dst[n:]
		addr += uint64(n)
	}
}

// Dump copies out [addr, addr+n): the attacker's memory image, exactly
// what a parallel-port dump or a desoldered chip read would produce.
func (d *DRAM) Dump(addr uint64, n int) []byte { return d.Read(addr, n) }

// RowHitRate reports the fraction of accesses that hit the open row.
func (d *DRAM) RowHitRate() float64 {
	if d.Accesses == 0 {
		return 0
	}
	return float64(d.RowHits) / float64(d.Accesses)
}
