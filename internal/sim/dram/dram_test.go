package dram

import (
	"bytes"
	"testing"
	"testing/quick"
)

func mustDRAM(t testing.TB) *DRAM {
	t.Helper()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{RowHitCycles: 4, RowMissCycles: 2, RowSize: 1024, ClockDivider: 1}, // miss < hit
		{RowHitCycles: 4, RowMissCycles: 8, RowSize: 1000, ClockDivider: 1}, // row not pow2
		{RowHitCycles: 4, RowMissCycles: 8, RowSize: 1024, ClockDivider: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestRowBufferTiming(t *testing.T) {
	d := mustDRAM(t)
	cfg := d.Config()
	first := d.AccessCycles(0) // row miss (cold)
	if first != uint64(cfg.RowMissCycles*cfg.ClockDivider) {
		t.Errorf("cold access = %d cycles", first)
	}
	second := d.AccessCycles(64) // same 2 KiB row
	if second != uint64(cfg.RowHitCycles*cfg.ClockDivider) {
		t.Errorf("row hit = %d cycles", second)
	}
	third := d.AccessCycles(uint64(cfg.RowSize)) // next row
	if third != uint64(cfg.RowMissCycles*cfg.ClockDivider) {
		t.Errorf("row switch = %d cycles", third)
	}
	if d.RowHitRate() != 1.0/3.0 {
		t.Errorf("row hit rate = %v", d.RowHitRate())
	}
}

func TestReadWriteRoundtrip(t *testing.T) {
	d := mustDRAM(t)
	data := []byte("bus encryption survey DATE 2005")
	d.Write(0x1000, data)
	got := d.Read(0x1000, len(data))
	if !bytes.Equal(got, data) {
		t.Errorf("roundtrip: got %q", got)
	}
}

func TestUntouchedMemoryReadsZero(t *testing.T) {
	d := mustDRAM(t)
	got := d.Read(0x9999000, 16)
	for _, b := range got {
		if b != 0 {
			t.Fatal("untouched memory nonzero")
		}
	}
}

func TestCrossPageWrite(t *testing.T) {
	d := mustDRAM(t)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	// Straddle the 4 KiB internal page boundary.
	d.Write(4096-50, data)
	got := d.Read(4096-50, 100)
	if !bytes.Equal(got, data) {
		t.Error("cross-page write corrupted data")
	}
}

func TestDumpEqualsRead(t *testing.T) {
	d := mustDRAM(t)
	d.Write(0x2000, []byte{1, 2, 3, 4})
	if !bytes.Equal(d.Dump(0x2000, 4), d.Read(0x2000, 4)) {
		t.Error("Dump differs from Read")
	}
}

func TestWriteReadProperty(t *testing.T) {
	d := mustDRAM(t)
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := uint64(addr)
		d.Write(a, data)
		return bytes.Equal(d.Read(a, len(data)), data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestZeroAccessesRate(t *testing.T) {
	d := mustDRAM(t)
	if d.RowHitRate() != 0 {
		t.Error("rate with no accesses should be 0")
	}
}
