// Hierarchy composes cache levels into the two-level (or deeper)
// on-chip storage of the AEGIS-class evaluations: level 0 is nearest
// the CPU, misses fall through to the next level, dirty evictions push
// down one level at a time, and only the outermost level talks to
// external memory. The composition is pure cache state — each access
// returns the ordered list of line transfers it caused, and the caller
// (the SoC) turns those into timing, data movement and engine/verifier
// activity at whichever boundary the EDU guards.
package cache

import "fmt"

// EventKind classifies one line transfer between adjacent levels (or
// between the outermost level and external memory).
type EventKind uint8

const (
	// EvFill moves a line inward: level Level receives Addr from level
	// Level+1 (PeerSlot) or from external memory (PeerSlot < 0).
	EvFill EventKind = iota
	// EvWriteback moves a dirty line outward: level Level spills Addr
	// into level Level+1 (PeerSlot) or to external memory (PeerSlot < 0).
	EvWriteback
)

// Event is one line transfer. Events are emitted in the order their
// data must move: a victim's outward spill always precedes the fill or
// install that reuses its slot, so side storage indexed by slot can be
// recycled in lockstep.
type Event struct {
	Kind EventKind
	// Level is the level whose line moves (0 = nearest the CPU).
	Level int
	// Addr is the line-aligned address.
	Addr uint64
	// Slot is the line's storage slot in its level (Result.Slot).
	Slot int
	// PeerSlot is the slot in level Level+1 serving (fill) or receiving
	// (writeback) the line; -1 means external memory — the transfer
	// crosses the chip boundary.
	PeerSlot int
}

// AccessResult summarizes one hierarchy access from the CPU's side.
type AccessResult struct {
	// Hit reports a level-0 hit.
	Hit bool
	// Slot is the line's level-0 slot when a line is involved, -1 on a
	// write-through no-allocate miss.
	Slot int
	// Through reports a store propagated straight out of level 0
	// (write-through policy; only supported in a single-level hierarchy).
	Through bool
}

// Hierarchy is one composed cache stack. It reuses its event buffer:
// the slice returned by Access/Flush is valid until the next call, and
// steady-state accesses allocate nothing.
type Hierarchy struct {
	levels   []*Cache
	events   []Event
	flushBuf []DirtyLine
	// m publishes transfer events live; zero value publishes nowhere.
	m HierarchyMetrics
}

// NewHierarchy composes levels (innermost first). All levels must share
// one line size — a line is the unit moved between levels — and only a
// single-level hierarchy may use a write-through level-0 (propagating
// per-store traffic through a lower level is not modeled).
func NewHierarchy(levels ...*Cache) (*Hierarchy, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("cache: hierarchy needs at least one level")
	}
	ls := levels[0].cfg.LineSize
	for i, l := range levels[1:] {
		if l.cfg.LineSize != ls {
			return nil, fmt.Errorf("cache: level %d line size %d != level 0 line size %d",
				i+1, l.cfg.LineSize, ls)
		}
		if l.cfg.WriteMode != WriteBack {
			return nil, fmt.Errorf("cache: level %d must be write-back (write-through is a level-0 policy)", i+1)
		}
	}
	if len(levels) > 1 && levels[0].cfg.WriteMode != WriteBack {
		return nil, fmt.Errorf("cache: write-through level 0 above a lower level is not modeled")
	}
	return &Hierarchy{levels: levels}, nil
}

// Levels returns the number of composed levels.
func (h *Hierarchy) Levels() int { return len(h.levels) }

// Level returns level i (0 = nearest the CPU).
func (h *Hierarchy) Level(i int) *Cache { return h.levels[i] }

// Access performs one CPU reference against level 0, falling through on
// misses, and returns the transfers it caused. The event slice is owned
// by the hierarchy and valid until the next Access or Flush.
//
//repro:hotpath
func (h *Hierarchy) Access(addr uint64, isStore bool) (AccessResult, []Event) {
	h.events = h.events[:0]
	res := h.levels[0].Access(addr, isStore)
	out := AccessResult{Hit: res.Hit, Slot: res.Slot, Through: res.Through}
	if res.Writeback {
		h.pushDown(0, res.WritebackAddr, res.Slot)
	}
	if res.Fill {
		h.fillFrom(0, res.FillAddr, res.Slot)
	}
	return out, h.events
}

// pushDown emits the transfers for level writing back line addr from
// slot: into the next level's Install (whole-line write, no fill from
// below), or out to external memory at the last level. A dirty victim
// displaced by the install spills onward first.
func (h *Hierarchy) pushDown(level int, addr uint64, slot int) {
	if level == len(h.levels)-1 {
		h.emit(Event{Kind: EvWriteback, Level: level, Addr: addr, Slot: slot, PeerSlot: -1})
		return
	}
	peer, victim, hasVictim := h.levels[level+1].Install(addr)
	if hasVictim {
		h.pushDown(level+1, victim.Addr, victim.Slot)
	}
	h.emit(Event{Kind: EvWriteback, Level: level, Addr: addr, Slot: slot, PeerSlot: peer})
}

// emit appends one transfer event and publishes it to the live
// metrics (a no-op with the zero-value metrics bundle).
func (h *Hierarchy) emit(ev Event) {
	h.m.observe(ev)
	h.events = append(h.events, ev)
}

// fillFrom emits the transfers for level filling line addr into slot:
// a lookup in the next level (fill-through on its miss), or a fetch
// from external memory at the last level.
func (h *Hierarchy) fillFrom(level int, addr uint64, slot int) {
	if level == len(h.levels)-1 {
		h.emit(Event{Kind: EvFill, Level: level, Addr: addr, Slot: slot, PeerSlot: -1})
		return
	}
	res := h.levels[level+1].Access(addr, false)
	if res.Writeback {
		h.pushDown(level+1, res.WritebackAddr, res.Slot)
	}
	if res.Fill {
		h.fillFrom(level+1, res.FillAddr, res.Slot)
	}
	h.emit(Event{Kind: EvFill, Level: level, Addr: addr, Slot: slot, PeerSlot: res.Slot})
}

// Flush drains every dirty line toward memory, innermost level first:
// each level's dirty lines push down through the levels below exactly
// like capacity writebacks, so a level-0 line flushes into level 1 and
// is drained from there to memory in the same pass. The returned events
// are valid until the next Access or Flush.
func (h *Hierarchy) Flush() []Event {
	h.events = h.events[:0]
	for level := range h.levels {
		h.flushBuf = h.levels[level].FlushDirty(h.flushBuf[:0])
		for _, d := range h.flushBuf {
			h.pushDown(level, d.Addr, d.Slot)
		}
	}
	return h.events
}
