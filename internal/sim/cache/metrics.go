package cache

import "repro/internal/obs"

// LevelMetrics publishes one cache level's event stream into
// pre-registered obs counters, live, as the simulation runs — the
// observable twin of Stats. The zero value (all nil counters) disables
// publishing: obs metrics are nil-receiver-safe no-ops, so the hot
// path carries no extra branches and never allocates either way.
type LevelMetrics struct {
	Hits       *obs.Counter
	Misses     *obs.Counter
	Evictions  *obs.Counter
	Writebacks *obs.Counter
}

// NewLevelMetrics registers a level's counters under the given prefix
// ("l1" → "l1.hits", "l1.misses", "l1.evictions", "l1.writebacks").
func NewLevelMetrics(r *obs.Registry, prefix string) LevelMetrics {
	return LevelMetrics{
		Hits:       r.Counter(prefix + ".hits"),
		Misses:     r.Counter(prefix + ".misses"),
		Evictions:  r.Counter(prefix + ".evictions"),
		Writebacks: r.Counter(prefix + ".writebacks"),
	}
}

// SetMetrics installs live counters on the cache (zero value to
// disable). Counters accumulate across runs and across caches sharing
// the same registry names — the campaign's whole-sweep view.
func (c *Cache) SetMetrics(m LevelMetrics) { c.m = m }

// HierarchyMetrics publishes line-transfer events between levels and
// across the chip boundary. Fills/Writebacks count every inter-level
// transfer; ChipFills/ChipWritebacks the subset that crossed the chip
// boundary (external bus traffic).
type HierarchyMetrics struct {
	Fills          *obs.Counter
	Writebacks     *obs.Counter
	ChipFills      *obs.Counter
	ChipWritebacks *obs.Counter
}

// NewHierarchyMetrics registers the transfer counters ("hier.fills",
// "hier.writebacks", "hier.chip_fills", "hier.chip_writebacks").
func NewHierarchyMetrics(r *obs.Registry) HierarchyMetrics {
	return HierarchyMetrics{
		Fills:          r.Counter("hier.fills"),
		Writebacks:     r.Counter("hier.writebacks"),
		ChipFills:      r.Counter("hier.chip_fills"),
		ChipWritebacks: r.Counter("hier.chip_writebacks"),
	}
}

// SetMetrics installs live transfer counters (zero value to disable).
func (h *Hierarchy) SetMetrics(m HierarchyMetrics) { h.m = m }

// observe publishes one emitted event.
func (m *HierarchyMetrics) observe(ev Event) {
	if ev.Kind == EvFill {
		m.Fills.Inc()
		if ev.PeerSlot < 0 {
			m.ChipFills.Inc()
		}
	} else {
		m.Writebacks.Inc()
		if ev.PeerSlot < 0 {
			m.ChipWritebacks.Inc()
		}
	}
}
