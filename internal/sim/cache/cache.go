// Package cache models the on-chip cache that sits between the CPU core
// and the memory controller in every architecture the survey draws
// (Figures 2c, 7a, 7b). It is a timing/state model, not a data store:
// the simulator tracks which lines are resident and dirty, and the
// engines cost the traffic the cache emits on its external side.
package cache

import "fmt"

// Policy selects the replacement discipline within a set.
type Policy int

const (
	// LRU replaces the least recently used way.
	LRU Policy = iota
	// FIFO replaces in insertion order.
	FIFO
)

// WriteMode selects the write-hit policy.
type WriteMode int

const (
	// WriteBack marks the line dirty and writes it out on eviction.
	WriteBack WriteMode = iota
	// WriteThrough propagates every store to memory immediately.
	WriteThrough
)

// Config fixes the cache geometry.
type Config struct {
	// Size is total capacity in bytes.
	Size int
	// LineSize is the block size in bytes (the survey's "cache block",
	// the ciphering granule of the AEGIS engine).
	LineSize int
	// Ways is the associativity (1 = direct mapped).
	Ways int
	// Policy is the replacement policy.
	Policy Policy
	// WriteMode is the write-hit policy; write misses allocate in
	// WriteBack mode and bypass in WriteThrough mode.
	WriteMode WriteMode
}

// Validate checks geometry sanity.
func (c Config) Validate() error {
	switch {
	case c.Size <= 0 || c.LineSize <= 0 || c.Ways <= 0:
		return fmt.Errorf("cache: non-positive geometry %+v", c)
	case c.Size%(c.LineSize*c.Ways) != 0:
		return fmt.Errorf("cache: size %d not divisible by line*ways %d", c.Size, c.LineSize*c.Ways)
	case c.LineSize&(c.LineSize-1) != 0:
		return fmt.Errorf("cache: line size %d not a power of two", c.LineSize)
	}
	sets := c.Size / (c.LineSize * c.Ways)
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache: set count %d not a power of two", sets)
	}
	return nil
}

// Stats counts cache events.
type Stats struct {
	Hits         uint64
	Misses       uint64
	Evictions    uint64
	Writebacks   uint64 // dirty evictions
	WriteThrough uint64 // stores propagated in write-through mode
}

// MissRate returns misses / (hits + misses).
func (s Stats) MissRate() float64 {
	d := s.Hits + s.Misses
	if d == 0 {
		return 0
	}
	return float64(s.Misses) / float64(d)
}

type line struct {
	tag   uint64
	valid bool
	dirty bool
	used  uint64 // LRU timestamp or FIFO insertion order
}

// Cache is one cache instance.
type Cache struct {
	cfg   Config
	sets  [][]line
	setsN uint64
	tick  uint64
	stats Stats
	// m mirrors the Stats counters into live obs metrics; the zero
	// value publishes nowhere (nil-safe no-ops).
	m LevelMetrics
}

// New builds a cache or reports a bad geometry.
func New(cfg Config) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	setsN := cfg.Size / (cfg.LineSize * cfg.Ways)
	sets := make([][]line, setsN)
	backing := make([]line, setsN*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	return &Cache{cfg: cfg, sets: sets, setsN: uint64(setsN)}, nil
}

// Config returns the geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the event counters so far.
func (c *Cache) Stats() Stats { return c.stats }

// ResetStats zeroes the counters (state stays warm).
func (c *Cache) ResetStats() { c.stats = Stats{} }

// LineAddr returns the line-aligned address containing addr.
func (c *Cache) LineAddr(addr uint64) uint64 {
	return addr &^ uint64(c.cfg.LineSize-1)
}

func (c *Cache) index(addr uint64) (set uint64, tag uint64) {
	lineNo := addr / uint64(c.cfg.LineSize)
	return lineNo % c.setsN, lineNo / c.setsN
}

// Result describes what one access did on the cache's external side.
type Result struct {
	// Hit reports whether the access hit.
	Hit bool
	// Slot is the line's storage slot (set*ways + way) when the access
	// touched a resident or newly filled line, and -1 when no line was
	// involved (a write-through no-allocate miss). On a fill it names
	// the victim's slot, so callers keeping per-line side state can
	// recycle the victim's storage in lockstep with the eviction —
	// clean or dirty.
	Slot int
	// FillAddr is the line-aligned address fetched from memory on a
	// miss-with-allocate (0 and Fill=false otherwise).
	Fill     bool
	FillAddr uint64
	// WritebackAddr is the line-aligned dirty victim written to memory.
	Writeback     bool
	WritebackAddr uint64
	// Through reports that a store was propagated straight to memory
	// (write-through policy). The store's address and size are those of
	// the reference that caused it; the Result carries no copy.
	Through bool
}

// Access performs one reference. isStore marks data writes. It returns
// the external traffic generated, which the SoC model converts to bus
// and engine activity.
//
//repro:hotpath
func (c *Cache) Access(addr uint64, isStore bool) Result {
	set, tag := c.index(addr)
	ways := c.sets[set]
	c.tick++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			c.m.Hits.Inc()
			if c.cfg.Policy == LRU {
				ways[i].used = c.tick
			}
			var res Result
			res.Hit = true
			res.Slot = int(set)*c.cfg.Ways + i
			if isStore {
				switch c.cfg.WriteMode {
				case WriteBack:
					ways[i].dirty = true
				case WriteThrough:
					c.stats.WriteThrough++
					res.Through = true
				}
			}
			return res
		}
	}

	c.stats.Misses++
	c.m.Misses.Inc()
	var res Result
	res.Slot = -1

	if isStore && c.cfg.WriteMode == WriteThrough {
		// No-allocate on write miss: the store goes straight out.
		c.stats.WriteThrough++
		res.Through = true
		return res
	}

	victim, wbAddr, writeback := c.victimWay(set)
	if writeback {
		res.Writeback = true
		res.WritebackAddr = wbAddr
	}

	ways[victim] = line{tag: tag, valid: true, used: c.tick}
	if isStore && c.cfg.WriteMode == WriteBack {
		ways[victim].dirty = true
	}
	res.Slot = int(set)*c.cfg.Ways + victim
	res.Fill = true
	res.FillAddr = c.LineAddr(addr)
	return res
}

// victimWay chooses the replacement way in set — the first invalid way,
// else the policy minimum — counting the eviction and dirty-writeback
// stats exactly as a demand miss does. It reports the line-aligned
// address of a dirty victim that must spill before the way is reused.
func (c *Cache) victimWay(set uint64) (way int, wbAddr uint64, writeback bool) {
	ways := c.sets[set]
	victim := -1
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
	}
	if victim == -1 {
		victim = 0
		for i := 1; i < len(ways); i++ {
			if ways[i].used < ways[victim].used {
				victim = i
			}
		}
		c.stats.Evictions++
		c.m.Evictions.Inc()
		if ways[victim].dirty {
			c.stats.Writebacks++
			c.m.Writebacks.Inc()
			writeback = true
			wbAddr = (ways[victim].tag*c.setsN + set) * uint64(c.cfg.LineSize)
		}
	}
	return victim, wbAddr, writeback
}

// Install allocates addr's line as a whole-line write arriving from the
// level above — an upper level's dirty writeback landing in this one.
// No fill from below is needed (every byte of the line is being
// overwritten), so the line is installed, or updated in place if
// already resident, and marked dirty. It returns the line's storage
// slot and the dirty victim (if any) whose contents must spill onward
// before the slot's side storage is reused. Installs share the
// hit/miss/eviction counters with demand accesses: this level's Stats
// describe all traffic arriving at it, not only CPU-side demand.
//
//repro:hotpath
func (c *Cache) Install(addr uint64) (slot int, victim DirtyLine, hasVictim bool) {
	set, tag := c.index(addr)
	ways := c.sets[set]
	c.tick++

	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			c.stats.Hits++
			c.m.Hits.Inc()
			if c.cfg.Policy == LRU {
				ways[i].used = c.tick
			}
			ways[i].dirty = true
			return int(set)*c.cfg.Ways + i, DirtyLine{}, false
		}
	}

	c.stats.Misses++
	c.m.Misses.Inc()
	way, wbAddr, writeback := c.victimWay(set)
	if writeback {
		victim = DirtyLine{Addr: wbAddr, Slot: int(set)*c.cfg.Ways + way}
		hasVictim = true
	}
	ways[way] = line{tag: tag, valid: true, used: c.tick, dirty: true}
	return int(set)*c.cfg.Ways + way, victim, hasVictim
}

// Lines returns the total number of line slots (sets x ways) — the
// bound on any per-resident-line side storage a caller keeps.
func (c *Cache) Lines() int { return int(c.setsN) * c.cfg.Ways }

// DirtyLine identifies one dirty resident line: its line-aligned
// address and its storage slot (see Result.Slot).
type DirtyLine struct {
	Addr uint64
	Slot int
}

// FlushDirty appends every dirty line to buf and marks them clean —
// the end-of-run drain that makes writeback traffic fully accounted.
// Passing a reused buf[:0] keeps the call allocation-free.
func (c *Cache) FlushDirty(buf []DirtyLine) []DirtyLine {
	for s := range c.sets {
		for w := range c.sets[s] {
			l := &c.sets[s][w]
			if l.valid && l.dirty {
				buf = append(buf, DirtyLine{
					Addr: (l.tag*c.setsN + uint64(s)) * uint64(c.cfg.LineSize),
					Slot: s*c.cfg.Ways + w,
				})
				l.dirty = false
			}
		}
	}
	return buf
}

// Contains reports whether addr's line is resident (test helper and
// attack-model primitive: a probe cannot see cache-hit traffic).
func (c *Cache) Contains(addr uint64) bool {
	set, tag := c.index(addr)
	for _, l := range c.sets[set] {
		if l.valid && l.tag == tag {
			return true
		}
	}
	return false
}
