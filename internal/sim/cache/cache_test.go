package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustCache(t testing.TB, cfg Config) *Cache {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func small() Config {
	return Config{Size: 1024, LineSize: 32, Ways: 2, Policy: LRU, WriteMode: WriteBack}
}

func TestValidation(t *testing.T) {
	bad := []Config{
		{},
		{Size: 1024, LineSize: 0, Ways: 1},
		{Size: 1000, LineSize: 32, Ways: 2},       // not divisible
		{Size: 1024, LineSize: 24, Ways: 2},       // line not pow2
		{Size: 32 * 3 * 2, LineSize: 32, Ways: 2}, // sets = 3
		{Size: -4, LineSize: 32, Ways: 1},         // negative
		{Size: 1024, LineSize: 32, Ways: -1},      // negative ways
		{Size: 1024, LineSize: 2048, Ways: 1},     // size < line*ways
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: bad config %+v accepted", i, cfg)
		}
	}
	if _, err := New(small()); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestColdMissThenHit(t *testing.T) {
	c := mustCache(t, small())
	r := c.Access(0x100, false)
	if r.Hit || !r.Fill || r.FillAddr != 0x100 {
		t.Errorf("cold access: %+v", r)
	}
	r = c.Access(0x104, false) // same line
	if !r.Hit {
		t.Error("same-line access missed")
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Errorf("stats %+v", s)
	}
}

func TestLineAddr(t *testing.T) {
	c := mustCache(t, small())
	if c.LineAddr(0x10f) != 0x100 {
		t.Errorf("LineAddr(0x10f) = %#x", c.LineAddr(0x10f))
	}
}

func TestLRUReplacement(t *testing.T) {
	// 2-way: fill both ways of set 0, touch the first, add a third; the
	// second (LRU) must be evicted.
	cfg := small() // 16 sets, line 32: set = (addr/32) % 16
	c := mustCache(t, cfg)
	setStride := uint64(32 * 16) // addresses mapping to the same set
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // a is now MRU
	c.Access(d, false) // evicts b
	if !c.Contains(a) {
		t.Error("MRU line evicted under LRU")
	}
	if c.Contains(b) {
		t.Error("LRU line survived")
	}
	if !c.Contains(d) {
		t.Error("new line not resident")
	}
}

func TestFIFOReplacement(t *testing.T) {
	cfg := small()
	cfg.Policy = FIFO
	c := mustCache(t, cfg)
	setStride := uint64(32 * 16)
	a, b, d := uint64(0), setStride, 2*setStride
	c.Access(a, false)
	c.Access(b, false)
	c.Access(a, false) // touching must NOT rescue a under FIFO
	c.Access(d, false) // evicts a (oldest insertion)
	if c.Contains(a) {
		t.Error("FIFO kept the oldest line after a touch")
	}
	if !c.Contains(b) || !c.Contains(d) {
		t.Error("FIFO evicted the wrong line")
	}
}

func TestWriteBackDirtyEviction(t *testing.T) {
	c := mustCache(t, small())
	setStride := uint64(32 * 16)
	c.Access(0, true) // dirty line at 0
	c.Access(setStride, false)
	r := c.Access(2*setStride, false) // evicts line 0 (dirty, LRU)
	if !r.Writeback || r.WritebackAddr != 0 {
		t.Errorf("dirty eviction not reported: %+v", r)
	}
	s := c.Stats()
	if s.Writebacks != 1 {
		t.Errorf("writebacks = %d", s.Writebacks)
	}
}

func TestCleanEvictionNoWriteback(t *testing.T) {
	c := mustCache(t, small())
	setStride := uint64(32 * 16)
	c.Access(0, false)
	c.Access(setStride, false)
	r := c.Access(2*setStride, false)
	if r.Writeback {
		t.Error("clean eviction reported a writeback")
	}
}

func TestWriteThroughHitAndMiss(t *testing.T) {
	cfg := small()
	cfg.WriteMode = WriteThrough
	c := mustCache(t, cfg)

	// Write miss: no-allocate, goes through.
	r := c.Access(0x200, true)
	if r.Fill || !r.Through {
		t.Errorf("WT write miss: %+v", r)
	}
	if c.Contains(0x200) {
		t.Error("WT write miss allocated")
	}

	// Read miss allocates, then a write hit also goes through.
	c.Access(0x200, false)
	r = c.Access(0x200, true)
	if !r.Hit || !r.Through {
		t.Errorf("WT write hit: %+v", r)
	}
	if c.Stats().WriteThrough != 2 {
		t.Errorf("write-through count = %d", c.Stats().WriteThrough)
	}
}

func TestWriteBackNoThroughTraffic(t *testing.T) {
	c := mustCache(t, small())
	c.Access(0, false)
	r := c.Access(0, true)
	if r.Through {
		t.Error("write-back cache emitted through traffic")
	}
}

func TestFlushDirty(t *testing.T) {
	c := mustCache(t, small())
	// Distinct sets (set stride is 32 bytes here) so nothing is evicted.
	c.Access(0x000, true)
	c.Access(0x020, true)
	c.Access(0x040, false)
	dirty := c.FlushDirty(nil)
	if len(dirty) != 2 {
		t.Fatalf("FlushDirty returned %d lines, want 2", len(dirty))
	}
	seen := map[uint64]bool{}
	for _, d := range dirty {
		seen[d.Addr] = true
		if d.Slot < 0 || d.Slot >= c.Lines() {
			t.Errorf("flush slot %d out of range [0,%d)", d.Slot, c.Lines())
		}
	}
	if !seen[0x000] || !seen[0x020] {
		t.Errorf("FlushDirty addresses wrong: %v", dirty)
	}
	if len(c.FlushDirty(dirty[:0])) != 0 {
		t.Error("second flush found dirty lines")
	}
}

// Slots must name the victim's storage on fills (clean or dirty), stay
// stable across hits, and be -1 only for write-through bypass misses.
func TestSlotTracking(t *testing.T) {
	c := mustCache(t, small())
	setStride := uint64(32 * 16)
	r0 := c.Access(0, false)
	if !r0.Fill || r0.Slot < 0 {
		t.Fatalf("cold fill got %+v", r0)
	}
	if rh := c.Access(4, false); !rh.Hit || rh.Slot != r0.Slot {
		t.Errorf("hit slot %d != fill slot %d", rh.Slot, r0.Slot)
	}
	r1 := c.Access(setStride, false)
	if r1.Slot == r0.Slot {
		t.Error("second way reused the first way's slot")
	}
	// Third line in the same set evicts LRU (line 0): the fill must
	// report that victim's slot even though the eviction is clean.
	r2 := c.Access(2*setStride, false)
	if r2.Writeback || !r2.Fill || r2.Slot != r0.Slot {
		t.Errorf("clean eviction fill got %+v, want victim slot %d", r2, r0.Slot)
	}

	wt := small()
	wt.WriteMode = WriteThrough
	cw := mustCache(t, wt)
	if r := cw.Access(0x200, true); r.Slot != -1 {
		t.Errorf("write-through bypass miss got slot %d, want -1", r.Slot)
	}
}

func TestMissRateStats(t *testing.T) {
	c := mustCache(t, small())
	for i := 0; i < 10; i++ {
		c.Access(0, false)
	}
	s := c.Stats()
	if got := s.MissRate(); got != 0.1 {
		t.Errorf("miss rate = %v, want 0.1", got)
	}
	c.ResetStats()
	if c.Stats().Hits != 0 {
		t.Error("ResetStats did not zero")
	}
	if (Stats{}).MissRate() != 0 {
		t.Error("empty stats miss rate should be 0")
	}
}

// Property: the reported fill address is always the accessed line, and a
// filled line is immediately resident.
func TestFillInvariant(t *testing.T) {
	c := mustCache(t, Config{Size: 4096, LineSize: 64, Ways: 4, Policy: LRU, WriteMode: WriteBack})
	f := func(addr uint64) bool {
		addr %= 1 << 30
		r := c.Access(addr, false)
		if r.Fill && r.FillAddr != addr&^63 {
			return false
		}
		return c.Contains(addr)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: working set smaller than capacity eventually stops missing.
func TestSmallWorkingSetConverges(t *testing.T) {
	c := mustCache(t, small()) // 1 KiB
	rng := rand.New(rand.NewSource(1))
	addrs := make([]uint64, 16) // 16 lines = 512 B working set
	for i := range addrs {
		addrs[i] = uint64(i) * 32
	}
	for i := 0; i < 1000; i++ {
		c.Access(addrs[rng.Intn(len(addrs))], false)
	}
	c.ResetStats()
	for i := 0; i < 1000; i++ {
		c.Access(addrs[rng.Intn(len(addrs))], false)
	}
	if mr := c.Stats().MissRate(); mr != 0 {
		t.Errorf("warm small working set still missing: %v", mr)
	}
}

// Property: direct-mapped cache with a power-of-two stride equal to the
// set span thrashes 100 %.
func TestConflictThrashing(t *testing.T) {
	c := mustCache(t, Config{Size: 1024, LineSize: 32, Ways: 1, Policy: LRU, WriteMode: WriteBack})
	span := uint64(1024)
	for i := 0; i < 100; i++ {
		c.Access(0, false)
		c.Access(span, false)
	}
	if mr := c.Stats().MissRate(); mr != 1 {
		t.Errorf("conflict pair should thrash a direct-mapped cache, miss rate %v", mr)
	}
}
