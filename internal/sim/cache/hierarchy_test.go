package cache

import (
	"math/rand"
	"testing"
)

func l1Config() Config {
	return Config{Size: 1 << 10, LineSize: 32, Ways: 2, Policy: LRU, WriteMode: WriteBack}
}

func l2Config() Config {
	return Config{Size: 4 << 10, LineSize: 32, Ways: 4, Policy: LRU, WriteMode: WriteBack}
}

func TestInstall(t *testing.T) {
	c := mustCache(t, Config{Size: 64, LineSize: 32, Ways: 1, Policy: LRU, WriteMode: WriteBack})

	// Install into an empty set: no victim, line resident and dirty.
	slot, _, hasVictim := c.Install(0x0)
	if hasVictim {
		t.Error("install into empty set produced a victim")
	}
	if !c.Contains(0x0) {
		t.Error("installed line not resident")
	}
	buf := c.FlushDirty(nil)
	if len(buf) != 1 || buf[0].Addr != 0x0 || buf[0].Slot != slot {
		t.Errorf("installed line not dirty: flush = %+v", buf)
	}

	// Re-install the (now clean) line: updated in place, dirty again.
	slot2, _, hasVictim := c.Install(0x0)
	if hasVictim || slot2 != slot {
		t.Errorf("re-install moved the line: slot %d -> %d (victim %v)", slot, slot2, hasVictim)
	}
	if got := c.FlushDirty(nil); len(got) != 1 {
		t.Errorf("re-install did not re-dirty: flush = %+v", got)
	}

	// A conflicting install evicts; the displaced dirty line comes back
	// as the victim with its slot (64B direct-mapped = 2 sets of one
	// 32B line: 0x0 and 0x40 both map to set 0).
	c.Install(0x0) // dirty again
	s3, victim, has := c.Install(0x40)
	if !has {
		t.Fatal("conflicting install produced no victim")
	}
	if victim.Addr != 0x0 || victim.Slot != s3 {
		t.Errorf("victim = %+v, want addr 0x0 in slot %d", victim, s3)
	}
	if c.Contains(0x0) || !c.Contains(0x40) {
		t.Error("install did not replace the victim line")
	}
}

// A single-level hierarchy must be event-for-event equivalent to using
// the cache directly: same hits, same fills, same writebacks, in the
// same order — the property the SoC's pre-hierarchy byte-identical
// reports rest on.
func TestHierarchySingleLevelEquivalence(t *testing.T) {
	direct := mustCache(t, l1Config())
	inHier := mustCache(t, l1Config())
	h, err := NewHierarchy(inHier)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20000; i++ {
		addr := uint64(rng.Intn(1<<14)) &^ 3
		isStore := rng.Intn(4) == 0
		want := direct.Access(addr, isStore)
		res, events := h.Access(addr, isStore)
		if res.Hit != want.Hit || res.Slot != want.Slot || res.Through != want.Through {
			t.Fatalf("ref %d: result %+v, want hit=%v slot=%d", i, res, want.Hit, want.Slot)
		}
		var gotWB, gotFill bool
		for _, ev := range events {
			if ev.Level != 0 || ev.PeerSlot != -1 {
				t.Fatalf("ref %d: single-level event touches level %d peer %d", i, ev.Level, ev.PeerSlot)
			}
			switch ev.Kind {
			case EvWriteback:
				gotWB = true
				if ev.Addr != want.WritebackAddr {
					t.Fatalf("ref %d: writeback addr %#x, want %#x", i, ev.Addr, want.WritebackAddr)
				}
			case EvFill:
				gotFill = true
				if ev.Addr != want.FillAddr || ev.Slot != want.Slot {
					t.Fatalf("ref %d: fill %#x slot %d, want %#x slot %d", i, ev.Addr, ev.Slot, want.FillAddr, want.Slot)
				}
			}
		}
		if gotWB != want.Writeback || gotFill != want.Fill {
			t.Fatalf("ref %d: events wb=%v fill=%v, want wb=%v fill=%v", i, gotWB, gotFill, want.Writeback, want.Fill)
		}
	}
	if direct.Stats() != inHier.Stats() {
		t.Errorf("stats diverged: direct %+v hier %+v", direct.Stats(), inHier.Stats())
	}
}

// Two-level invariants over a random workload: every L1 miss consults
// the L2, L1 victim writebacks install in the L2, a victim's outward
// spill always precedes the event that reuses its slot, and Flush
// leaves no dirty line anywhere.
func TestHierarchyTwoLevel(t *testing.T) {
	h, err := NewHierarchy(mustCache(t, l1Config()), mustCache(t, l2Config()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		addr := uint64(rng.Intn(64<<10)) &^ 3
		res, events := h.Access(addr, rng.Intn(3) == 0)
		for _, ev := range events {
			switch {
			case ev.Kind == EvWriteback && ev.Level == 0:
				if !h.Level(1).Contains(ev.Addr) {
					t.Fatalf("ref %d: L1 writeback of %#x did not install in L2", i, ev.Addr)
				}
			case ev.Kind == EvFill && ev.Level == 0:
				if ev.PeerSlot < 0 {
					t.Fatalf("ref %d: L1 fill bypassed the L2", i)
				}
				if !h.Level(1).Contains(ev.Addr) {
					t.Fatalf("ref %d: L1 filled %#x but L2 does not hold it", i, ev.Addr)
				}
			}
		}
		if !res.Hit && !h.Level(0).Contains(addr) {
			t.Fatalf("ref %d: miss did not allocate %#x in L1", i, addr)
		}
	}
	// Flush: afterwards both levels are clean.
	events := h.Flush()
	for _, ev := range events {
		if ev.Kind != EvWriteback {
			t.Errorf("flush emitted a fill event: %+v", ev)
		}
	}
	if got := h.Level(0).FlushDirty(nil); len(got) != 0 {
		t.Errorf("L1 still dirty after Flush: %d lines", len(got))
	}
	if got := h.Level(1).FlushDirty(nil); len(got) != 0 {
		t.Errorf("L2 still dirty after Flush: %d lines", len(got))
	}
}

func TestHierarchyValidation(t *testing.T) {
	if _, err := NewHierarchy(); err == nil {
		t.Error("empty hierarchy accepted")
	}
	bad := l2Config()
	bad.LineSize = 64
	if _, err := NewHierarchy(mustCache(t, l1Config()), mustCache(t, bad)); err == nil {
		t.Error("mismatched line sizes accepted")
	}
	wt := l1Config()
	wt.WriteMode = WriteThrough
	if _, err := NewHierarchy(mustCache(t, wt), mustCache(t, l2Config())); err == nil {
		t.Error("write-through L1 above an L2 accepted")
	}
	wt2 := l2Config()
	wt2.WriteMode = WriteThrough
	if _, err := NewHierarchy(mustCache(t, l1Config()), mustCache(t, wt2)); err == nil {
		t.Error("write-through L2 accepted")
	}
	// Write-through is fine for a single level.
	if _, err := NewHierarchy(mustCache(t, wt)); err != nil {
		t.Errorf("single-level write-through rejected: %v", err)
	}
}
