package soc

import (
	"repro/internal/obs"
	"repro/internal/sim/cache"
)

// Metrics is the SoC's live instrumentation bundle: pre-registered obs
// metrics the hot loop publishes into with zero allocations. A nil
// *Config.Metrics (the default) runs the loop with the zero-value
// bundle — every publish is a nil-receiver no-op — so instrumentation
// is strictly additive: same simulation, same Report, same 0 allocs/ref.
//
// Counters are cumulative across runs and across every SoC sharing the
// bundle: the campaign installs one bundle on all its workers' systems,
// and the progress reporter reads whole-sweep refs/sec from it.
type Metrics struct {
	// Refs counts processed references — the progress/ETA signal.
	Refs *obs.Counter
	// Instructions counts fetch references.
	Instructions *obs.Counter
	// Cycles accumulates simulated cycles (refs/cycle rates derive
	// from the Refs/Cycles pair).
	Cycles *obs.Counter
	// EngineLines counts line transfers crossing the EDU boundary
	// (Report.EngineLines, live).
	EngineLines *obs.Counter
	// AuthStalls / AuthViolations are the verifier-side stall cycles
	// and fail-stop events (Report.AuthStalls/AuthViolations, live).
	AuthStalls     *obs.Counter
	AuthViolations *obs.Counter
	// TransferCycles is the per-line-transfer cost distribution
	// (power-of-two buckets): fills and writebacks at every boundary,
	// including verifier walks — the shape of the miss-path tail.
	TransferCycles *obs.Histogram
	// L1/L2 mirror each cache level's hit/miss/eviction/writeback
	// stream; Hier mirrors the hierarchy's transfer events.
	L1, L2 cache.LevelMetrics
	Hier   cache.HierarchyMetrics
}

// NewMetrics registers the SoC metric inventory on r (see DESIGN.md §8
// for the name list) and returns the bundle to place in Config.Metrics.
// Registration is idempotent: bundles from the same registry share
// cells, which is how a whole campaign accumulates into one view.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Refs:           r.Counter("soc.refs"),
		Instructions:   r.Counter("soc.instructions"),
		Cycles:         r.Counter("soc.cycles"),
		EngineLines:    r.Counter("soc.engine_lines"),
		AuthStalls:     r.Counter("soc.auth_stalls"),
		AuthViolations: r.Counter("soc.auth_violations"),
		TransferCycles: r.Histogram("soc.transfer_cycles"),
		L1:             cache.NewLevelMetrics(r, "l1"),
		L2:             cache.NewLevelMetrics(r, "l2"),
		Hier:           cache.NewHierarchyMetrics(r),
	}
}
