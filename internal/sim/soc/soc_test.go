package soc

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/products"
	"repro/internal/sim/authtree"
	"repro/internal/sim/bus"
	"repro/internal/sim/cache"
	"repro/internal/sim/trace"
)

// fixedEngine is a test engine with controllable costs and an XOR data
// transform so ciphertext is distinguishable from plaintext.
type fixedEngine struct {
	block     int
	readCost  uint64
	writeCost uint64
	perAccess uint64
}

func (f fixedEngine) Name() string             { return "fixed" }
func (f fixedEngine) Placement() edu.Placement { return edu.PlacementCacheMem }
func (f fixedEngine) BlockBytes() int          { return f.block }
func (f fixedEngine) Gates() int               { return 1000 }
func (f fixedEngine) EncryptLine(_ uint64, dst, src []byte) {
	for i := range src {
		dst[i] = src[i] ^ 0x5c
	}
}
func (f fixedEngine) DecryptLine(_ uint64, dst, src []byte) {
	for i := range src {
		dst[i] = src[i] ^ 0x5c
	}
}
func (f fixedEngine) PerAccessCycles() uint64                    { return f.perAccess }
func (f fixedEngine) ReadExtraCycles(uint64, int, uint64) uint64 { return f.readCost }
func (f fixedEngine) WriteExtraCycles(uint64, int) uint64        { return f.writeCost }
func (f fixedEngine) NeedsRMW(n int) bool                        { return n < f.block }

func smallTrace() *trace.Trace {
	return trace.Sequential(trace.Config{Refs: 5000, Seed: 1, LoadFraction: 0.4, WriteFraction: 0.3, JumpRate: 0.02, Locality: 0.6})
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheHitCycles = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero hit latency accepted")
	}
	cfg = DefaultConfig()
	cfg.Cache.Size = 100 // invalid geometry
	if _, err := New(cfg); err == nil {
		t.Error("bad cache accepted")
	}
	cfg = DefaultConfig()
	cfg.Engine = fixedEngine{block: 48} // line 32 not divisible by 48
	if _, err := New(cfg); err == nil {
		t.Error("granule larger than line accepted")
	}
}

func TestBaselineRunBasics(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := smallTrace()
	rep := s.Run(tr)
	st := tr.Stats()
	if rep.Instructions != uint64(st.Fetches) {
		t.Errorf("instructions = %d, want %d", rep.Instructions, st.Fetches)
	}
	if rep.Refs != uint64(st.Refs) {
		t.Errorf("refs = %d, want %d", rep.Refs, st.Refs)
	}
	if rep.Cycles == 0 || rep.CPI() <= 1 {
		t.Errorf("implausible cycle count %d (CPI %.2f)", rep.Cycles, rep.CPI())
	}
	if rep.EngineStalls != 0 {
		t.Error("null engine reported stalls")
	}
}

func TestEngineAddsOverhead(t *testing.T) {
	cfg := DefaultConfig()
	eng := fixedEngine{block: 16, readCost: 20, writeCost: 10}
	base, with, err := Compare(cfg, eng, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if with.Cycles <= base.Cycles {
		t.Errorf("engine did not slow the system: base %d with %d", base.Cycles, with.Cycles)
	}
	if with.OverheadVs(base) <= 0 {
		t.Error("overhead not positive")
	}
	if with.EngineStalls == 0 {
		t.Error("engine stalls not accounted")
	}
	// Identical cache behaviour: the engine must not perturb hits/misses.
	if with.Cache.Misses != base.Cache.Misses {
		t.Errorf("engine changed miss count: %d vs %d", with.Cache.Misses, base.Cache.Misses)
	}
}

func TestZeroCostEngineZeroOverhead(t *testing.T) {
	base, with, err := Compare(DefaultConfig(), fixedEngine{block: 1}, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != with.Cycles {
		t.Errorf("zero-cost engine changed cycles: %d vs %d", base.Cycles, with.Cycles)
	}
}

func TestPerAccessCyclesCharged(t *testing.T) {
	cfg := DefaultConfig()
	base, with, err := Compare(cfg, fixedEngine{block: 1, perAccess: 1}, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Every reference pays exactly 1 extra cycle.
	want := base.Cycles + with.Refs
	if with.Cycles != want {
		t.Errorf("per-access accounting: got %d, want %d", with.Cycles, want)
	}
}

func TestWriteThroughRMWCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cache.WriteMode = cache.WriteThrough
	cfg.Engine = fixedEngine{block: 16, readCost: 5, writeCost: 5}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Byte stores (size 1 < block 16) must trigger RMW.
	tr := &trace.Trace{Name: "stores", Refs: []trace.Ref{
		{Kind: trace.Store, Addr: 0x4000_0001, Size: 1},
		{Kind: trace.Store, Addr: 0x4000_0002, Size: 1},
	}}
	rep := s.Run(tr)
	if rep.RMWEvents != 2 {
		t.Errorf("RMW events = %d, want 2", rep.RMWEvents)
	}
}

func TestLoadImageReadPlainRoundtrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := []byte("this program text will live enciphered in external memory....")
	if err := s.LoadImage(0x1000, img); err != nil {
		t.Fatal(err)
	}
	// External memory must hold ciphertext...
	raw := s.DRAM().Dump(0x1000, len(img))
	if bytes.Contains(raw, img[:16]) {
		t.Error("plaintext visible in DRAM")
	}
	// ...but the CPU-side view is plaintext.
	got := s.ReadPlain(0x1000, len(img))
	if !bytes.Equal(got, img) {
		t.Errorf("ReadPlain mismatch: %q", got)
	}
}

func TestLoadImageAlignment(t *testing.T) {
	s, _ := New(DefaultConfig())
	if err := s.LoadImage(0x1001, []byte("x")); err == nil {
		t.Error("unaligned image base accepted")
	}
}

// The probe on an encrypted system must never see installed plaintext;
// on a plaintext system it must.
type sniffer struct{ data []byte }

func (s *sniffer) Observe(b bus.Beat) { s.data = append(s.data, b.Data...) }

func TestProbeSeesCiphertextOnlyWithEngine(t *testing.T) {
	secret := bytes.Repeat([]byte("SECRET-INSTRUCTION-STREAM!"), 4)
	tr := &trace.Trace{Name: "touch", Refs: []trace.Ref{
		{Kind: trace.Fetch, Addr: 0x1000, Size: 4},
		{Kind: trace.Fetch, Addr: 0x1020, Size: 4},
		{Kind: trace.Fetch, Addr: 0x1040, Size: 4},
	}}

	run := func(eng edu.Engine) *sniffer {
		cfg := DefaultConfig()
		cfg.Engine = eng
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadImage(0x1000, secret); err != nil {
			t.Fatal(err)
		}
		sn := &sniffer{}
		s.Bus().Attach(sn)
		s.Run(tr)
		return sn
	}

	plain := run(edu.Null{})
	if !bytes.Contains(plain.data, secret[:16]) {
		t.Error("plaintext system: probe should capture the secret")
	}
	enc := run(fixedEngine{block: 16})
	if bytes.Contains(enc.data, secret[:16]) {
		t.Error("encrypted system: probe captured plaintext")
	}
}

// The shadow store must be bounded by cache geometry, not by how many
// distinct lines the workload touches — the regression guard for the
// old map that grew on every clean eviction.
func TestShadowBounded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.ShadowBytes(); got != cfg.Cache.Size {
		t.Fatalf("shadow = %d bytes, want cache size %d", got, cfg.Cache.Size)
	}
	// A scan over 64x the cache capacity forces continuous clean
	// evictions; the shadow must not grow.
	src := trace.StreamingSource(trace.Config{
		Refs: 200000, Seed: 9, DataSize: uint64(64 * cfg.Cache.Size),
	})
	s.Run(src)
	if got := s.ShadowBytes(); got != cfg.Cache.Size {
		t.Errorf("shadow grew to %d bytes after run, want %d", got, cfg.Cache.Size)
	}
}

// The per-reference hot path must not allocate: fills, spills and
// write-throughs reuse preallocated line buffers and the slot arena,
// and streaming sources generate references without materializing.
func TestHotLoopZeroAllocs(t *testing.T) {
	systems := []struct {
		name string
		mut  func(*Config)
	}{
		{"null-writeback", func(c *Config) {}},
		{"engine-writeback", func(c *Config) { c.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3} }},
		{"engine-writethrough", func(c *Config) {
			c.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3}
			c.Cache.WriteMode = cache.WriteThrough
		}},
	}
	for _, sys := range systems {
		t.Run(sys.name, func(t *testing.T) {
			cfg := DefaultConfig()
			sys.mut(&cfg)
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := trace.SequentialSource(trace.Config{
				Refs: 20000, Seed: 3, LoadFraction: 0.4, WriteFraction: 0.4,
				JumpRate: 0.02, Locality: 0.5,
			})
			s.Run(src) // warm DRAM pages and internal state
			if avg := allocsPerRun(3, func() { s.Run(src) }); avg != 0 {
				t.Errorf("Run allocated %.1f times per 20k-ref run, want 0", avg)
			}
		})
	}
}

// End-of-run flush: dirty lines left in the cache must be spilled and
// their traffic accounted, unless the config opts out.
func TestFinalFlushAccounted(t *testing.T) {
	run := func(skip bool) Report {
		cfg := DefaultConfig()
		cfg.SkipFinalFlush = skip
		cfg.Engine = fixedEngine{block: 16, writeCost: 5}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Store to distinct lines, nothing evicted: all dirt survives
		// to the end of the run.
		tr := &trace.Trace{Name: "dirty", Refs: []trace.Ref{
			{Kind: trace.Store, Addr: 0x4000_0000, Size: 4},
			{Kind: trace.Store, Addr: 0x4000_0020, Size: 4},
			{Kind: trace.Store, Addr: 0x4000_0040, Size: 4},
		}}
		return s.Run(tr)
	}
	flushed := run(false)
	skipped := run(true)
	if flushed.FlushedLines != 3 {
		t.Errorf("flushed %d lines, want 3", flushed.FlushedLines)
	}
	if skipped.FlushedLines != 0 {
		t.Errorf("SkipFinalFlush still flushed %d lines", skipped.FlushedLines)
	}
	if flushed.Cycles <= skipped.Cycles {
		t.Errorf("flush cycles not folded in: %d <= %d", flushed.Cycles, skipped.Cycles)
	}
	if flushed.BusBytes <= skipped.BusBytes {
		t.Errorf("flush writeback traffic not on the bus: %d <= %d", flushed.BusBytes, skipped.BusBytes)
	}
	if flushed.EngineStalls == 0 {
		t.Error("flush spills paid no engine write cost")
	}
}

// Write-through stores must not clobber memory contents: after storing
// through an installed image, the CPU-side view must still round-trip.
// (The old granule-aligned path encrypted an all-zeros buffer and wrote
// it to DRAM.)
func TestWriteThroughPreservesDRAM(t *testing.T) {
	// The stateless XOR engine covers the granule-aligned and RMW
	// timing paths; the AEGIS-style engine (per-line chained CBC with
	// counter IVs) covers the data-path hazard that motivated the
	// full-line recipher — a granule-local rewrite under a chained
	// address-bound mode corrupts the rest of the line.
	engines := map[string]func() (edu.Engine, error){
		"xor-1":  func() (edu.Engine, error) { return fixedEngine{block: 1}, nil },
		"xor-16": func() (edu.Engine, error) { return fixedEngine{block: 16}, nil },
		"aegis": func() (edu.Engine, error) {
			return products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0xae915)
		},
	}
	for name, build := range engines {
		eng, err := build()
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig()
		cfg.Cache.WriteMode = cache.WriteThrough
		cfg.Engine = eng
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		img := bytes.Repeat([]byte("LIVE DATA MUST SURVIVE STORES..."), 4)
		if err := s.LoadImage(0x4000_0000, img); err != nil {
			t.Fatal(err)
		}
		// Store hits (after a load allocates) and store misses, at
		// aligned and unaligned offsets, in sizes above and below the
		// granule.
		tr := &trace.Trace{Name: "stores", Refs: []trace.Ref{
			{Kind: trace.Load, Addr: 0x4000_0000, Size: 4},
			{Kind: trace.Store, Addr: 0x4000_0000, Size: 4},
			{Kind: trace.Store, Addr: 0x4000_0013, Size: 1},
			{Kind: trace.Store, Addr: 0x4000_0040, Size: 8},
			{Kind: trace.Store, Addr: 0x4000_0061, Size: 1},
		}}
		s.Run(tr)
		if got := s.ReadPlain(0x4000_0000, len(img)); !bytes.Equal(got, img) {
			t.Errorf("%s: stores corrupted memory:\n got %q\nwant %q", name, got, img)
		}
	}
}

// A streaming source and its materialized trace must drive the SoC to
// the same report.
func TestStreamMatchesMaterialized(t *testing.T) {
	tcfg := trace.Config{Refs: 8000, Seed: 5, LoadFraction: 0.4, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.6}
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16, readCost: 9, writeCost: 4}

	sA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	repStream := sA.Run(trace.SequentialSource(tcfg))

	sB, _ := New(cfg)
	repMat := sB.Run(trace.Sequential(tcfg))
	if repStream != repMat {
		t.Errorf("stream report differs from materialized:\n stream %+v\n mater  %+v", repStream, repMat)
	}
}

func TestReportCPIZeroInstructions(t *testing.T) {
	if (Report{}).CPI() != 0 || (Report{}).OverheadVs(Report{}) != 0 {
		t.Error("zero-division guards missing")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16, readCost: 7}
	tr := smallTrace()
	r1, err := func() (Report, error) {
		s, err := New(cfg)
		if err != nil {
			return Report{}, err
		}
		return s.Run(tr), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(cfg)
	r2 := s2.Run(tr)
	if r1.Cycles != r2.Cycles || r1.Cache != r2.Cache {
		t.Error("identical runs diverged")
	}
}

// The verified miss path must hold the 0 allocs/ref contract with a
// tree authenticator installed, whether verification walks terminate in
// the node cache (large cache: hit case) or climb to the root every
// time (single-node cache: miss case). Steady state: tag-store entries
// exist after the warmup run.
func TestVerifiedMissZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name           string
		variant        authtree.Variant
		nodeCacheBytes int
	}{
		{"hash-tree-cache-hits", authtree.HashTree, 64 << 10},
		{"hash-tree-cache-misses", authtree.HashTree, 128},
		{"counter-tree-cache-hits", authtree.CounterTree, 64 << 10},
		{"counter-tree-cache-misses", authtree.CounterTree, 128},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ver, err := authtree.New(authtree.Config{
				Key:       []byte("0123456789abcdef"),
				LineBytes: 32,
				Regions: []authtree.Region{
					{Base: 0, Bytes: 1 << 20},
					{Base: 0x4000_0000, Bytes: 8 << 20},
				},
				NodeCacheBytes: tc.nodeCacheBytes,
				Variant:        tc.variant,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3}
			cfg.Verifier = ver
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := trace.SequentialSource(trace.Config{
				Refs: 20000, Seed: 3, LoadFraction: 0.4, WriteFraction: 0.4,
				JumpRate: 0.02, Locality: 0.5,
			})
			rep := s.Run(src) // warm DRAM pages, tag stores, node cache
			if rep.AuthStalls == 0 {
				t.Fatal("verifier charged no cycles; the test is not exercising the verified path")
			}
			if rep.AuthViolations != 0 {
				t.Fatalf("%d violations on an untampered run", rep.AuthViolations)
			}
			if avg := allocsPerRun(3, func() { s.Run(src) }); avg != 0 {
				t.Errorf("verified Run allocated %.1f times per 20k-ref run, want 0", avg)
			}
			// Sanity, not a tuning claim (the relative big-vs-small
			// cache comparison lives in the authtree locality test).
			if tc.nodeCacheBytes >= 64<<10 && ver.NodeHitRate() < 0.2 {
				t.Errorf("large node cache hit rate %.2f, want >= 0.2", ver.NodeHitRate())
			}
		})
	}
}

// --- two-level hierarchy ---

func l2Config(size int) cache.Config {
	return cache.Config{Size: size, LineSize: 32, Ways: 8, Policy: cache.LRU, WriteMode: cache.WriteBack}
}

func TestL2Validation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2 = l2Config(64 << 10)
	cfg.L2.LineSize = 64
	if _, err := New(cfg); err == nil {
		t.Error("mismatched L1/L2 line sizes accepted")
	}

	cfg = DefaultConfig()
	cfg.L2 = l2Config(64 << 10)
	cfg.Cache.WriteMode = cache.WriteThrough
	if _, err := New(cfg); err == nil {
		t.Error("write-through L1 above an L2 accepted")
	}

	cfg = DefaultConfig()
	cfg.Placement = edu.PlacementL1L2
	if _, err := New(cfg); err == nil {
		t.Error("placement l1<->l2 without an L2 accepted")
	}
	cfg.Placement = edu.PlacementL2DRAM
	if _, err := New(cfg); err == nil {
		t.Error("placement l2<->dram without an L2 accepted")
	}

	cfg = DefaultConfig()
	cfg.L2HitCycles = 4
	if _, err := New(cfg); err == nil {
		t.Error("L2 latency without an L2 accepted")
	}

	// PlacementCPUCache without an L2 stays valid (E11's single-level
	// arrangement); with an L2 it selects the inner boundary.
	cfg = DefaultConfig()
	cfg.Placement = edu.PlacementCPUCache
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("single-level cpu<->cache placement rejected: %v", err)
	}
	if s.Placement() != edu.PlacementCacheMem {
		t.Errorf("single-level placement resolved to %v", s.Placement())
	}
	cfg.L2 = l2Config(64 << 10)
	if s, err = New(cfg); err != nil {
		t.Fatalf("cpu<->cache placement with L2 rejected: %v", err)
	}
	if s.Placement() != edu.PlacementCPUCache {
		t.Errorf("placement resolved to %v, want cpu<->cache", s.Placement())
	}
}

// firmwareishSource is a 48 KiB-footprint workload: overflows the L1
// but fits a 64 KiB L2, the regime where the L2 actually filters.
func firmwareishSource() trace.RefSource {
	return trace.SequentialSource(trace.Config{
		Refs: 40000, Seed: 22, LoadFraction: 0.35, WriteFraction: 0.4, JumpRate: 0.03, Locality: 0.5,
		CodeBase: 0, CodeSize: 16 << 10, DataBase: 0x4000_0000, DataSize: 32 << 10,
	})
}

// The placement contract: the inner boundary sees the full L1 miss
// stream (identical to a single-level system on the same trace), the
// outer boundary sees only what the L2 lets through.
func TestPlacementFiltersEngineTraffic(t *testing.T) {
	run := func(l2 int, p edu.Placement) Report {
		cfg := DefaultConfig()
		if l2 > 0 {
			cfg.L2 = l2Config(l2)
		}
		cfg.Placement = p
		cfg.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(firmwareishSource())
	}
	single := run(0, edu.PlacementNone)
	inner := run(64<<10, edu.PlacementL1L2)
	outer := run(64<<10, edu.PlacementL2DRAM)

	if single.EngineLines == 0 {
		t.Fatal("no engine traffic at all")
	}
	if inner.EngineLines != single.EngineLines {
		t.Errorf("inner boundary exposure %d != single-level %d (the L1 miss stream is L2-independent)",
			inner.EngineLines, single.EngineLines)
	}
	if outer.EngineLines >= inner.EngineLines {
		t.Errorf("outer boundary exposure %d not filtered below inner %d", outer.EngineLines, inner.EngineLines)
	}
	// The same L1 demand stream everywhere.
	if inner.Cache.Misses != single.Cache.Misses || outer.Cache.Misses != single.Cache.Misses {
		t.Errorf("L1 miss stream diverged: single %d inner %d outer %d",
			single.Cache.Misses, inner.Cache.Misses, outer.Cache.Misses)
	}
	if inner.L2.Hits == 0 || outer.L2.Hits == 0 {
		t.Error("L2 never hit; the workload is not exercising the hierarchy")
	}
	// Engine stalls follow exposure.
	if outer.EngineStalls >= inner.EngineStalls {
		t.Errorf("outer engine stalls %d not below inner %d", outer.EngineStalls, inner.EngineStalls)
	}
}

// Data-path consistency with two levels: after a run full of stores,
// the final flush has drained both levels, and the CPU-side view of
// memory round-trips — under both placements, for a stateless XOR
// engine and the stateful AEGIS mode.
func TestL2DataPathConsistency(t *testing.T) {
	engines := map[string]func() (edu.Engine, error){
		"xor-16": func() (edu.Engine, error) { return fixedEngine{block: 16}, nil },
		"aegis": func() (edu.Engine, error) {
			return products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0xae915)
		},
	}
	for name, build := range engines {
		for _, p := range []edu.Placement{edu.PlacementL1L2, edu.PlacementL2DRAM} {
			eng, err := build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.L2 = l2Config(64 << 10)
			cfg.Placement = p
			cfg.Engine = eng
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			img := bytes.Repeat([]byte("LIVE DATA MUST SURVIVE THE L2..."), 64)
			if err := s.LoadImage(0x4000_0000, img); err != nil {
				t.Fatal(err)
			}
			// Loads and stores across the image, plus far misses to force
			// evictions through both levels.
			src := trace.SequentialSource(trace.Config{
				Refs: 30000, Seed: 5, LoadFraction: 0.5, WriteFraction: 0.0, JumpRate: 0.05,
				CodeBase: 0x4000_0000, CodeSize: uint64(len(img)),
				DataBase: 0x4000_0000, DataSize: uint64(len(img)),
			})
			s.Run(src)
			if got := s.ReadPlain(0x4000_0000, len(img)); !bytes.Equal(got, img) {
				t.Errorf("%s/%v: post-run memory corrupted", name, p)
			}
			// Shadow arenas stay bounded by hierarchy capacity.
			if want := cfg.Cache.Size + cfg.L2.Size; s.ShadowBytes() != want {
				t.Errorf("%s/%v: shadow = %d bytes, want %d", name, p, s.ShadowBytes(), want)
			}
		}
	}
}

// A probe on the external bus must see ciphertext only, under both
// placements: with the EDU at L1<->L2 the raw moves carry bytes the
// engine already transformed.
func TestL2ProbeSeesCiphertextOnly(t *testing.T) {
	secret := bytes.Repeat([]byte("SECRET-INSTRUCTION-STREAM!"), 4)
	for _, p := range []edu.Placement{edu.PlacementL1L2, edu.PlacementL2DRAM} {
		cfg := DefaultConfig()
		cfg.L2 = l2Config(64 << 10)
		cfg.Placement = p
		cfg.Engine = fixedEngine{block: 16}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadImage(0x1000, secret); err != nil {
			t.Fatal(err)
		}
		sn := &sniffer{}
		s.Bus().Attach(sn)
		s.Run(&trace.Trace{Name: "touch", Refs: []trace.Ref{
			{Kind: trace.Fetch, Addr: 0x1000, Size: 4},
			{Kind: trace.Fetch, Addr: 0x1020, Size: 4},
			{Kind: trace.Fetch, Addr: 0x1040, Size: 4},
		}})
		if bytes.Contains(sn.data, secret[:16]) {
			t.Errorf("placement %v: probe captured plaintext", p)
		}
	}
}

// The 0 allocs/ref contract must hold with an L2 — miss path through
// both levels, raw moves, and the verifier installed — under both
// placements.
func TestHotLoopZeroAllocsL2(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    edu.Placement
	}{
		{"outer", edu.PlacementL2DRAM},
		{"inner", edu.PlacementL1L2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ver, err := authtree.New(authtree.Config{
				Key:       []byte("0123456789abcdef"),
				LineBytes: 32,
				Regions: []authtree.Region{
					{Base: 0, Bytes: 1 << 20},
					{Base: 0x4000_0000, Bytes: 8 << 20},
				},
				NodeCacheBytes: 4 << 10,
				Variant:        authtree.CounterTree,
			})
			if err != nil {
				t.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.L2 = l2Config(64 << 10)
			cfg.Placement = tc.p
			cfg.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3}
			cfg.Verifier = ver
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			src := trace.SequentialSource(trace.Config{
				Refs: 20000, Seed: 3, LoadFraction: 0.4, WriteFraction: 0.4,
				JumpRate: 0.02, Locality: 0.5,
			})
			rep := s.Run(src) // warm DRAM pages, tag stores, node cache, event buffers
			if rep.AuthStalls == 0 {
				t.Fatal("verifier charged no cycles")
			}
			if rep.AuthViolations != 0 {
				t.Fatalf("%d violations on an untampered run", rep.AuthViolations)
			}
			if avg := allocsPerRun(3, func() { s.Run(src) }); avg != 0 {
				t.Errorf("two-level Run allocated %.1f times per 20k-ref run, want 0", avg)
			}
		})
	}
}

// With the EDU (and verifier) at the inner boundary, a tamper planted
// in DRAM is still caught — when the line climbs back through the L2
// and crosses into the L1.
func TestInnerPlacementDetectsTamper(t *testing.T) {
	ver, err := authtree.New(authtree.Config{
		Key:            []byte("0123456789abcdef"),
		LineBytes:      32,
		Regions:        []authtree.Region{{Base: 0, Bytes: 1 << 20}},
		NodeCacheBytes: 4 << 10,
		Variant:        authtree.HashTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.L2 = l2Config(64 << 10)
	cfg.Placement = edu.PlacementL1L2
	cfg.Engine = fixedEngine{block: 16}
	cfg.Verifier = ver
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := make([]byte, 4096)
	for i := range img {
		img[i] = byte(i * 13)
	}
	if err := s.LoadImage(0, img); err != nil {
		t.Fatal(err)
	}
	// Corrupt a line in DRAM before anything is resident.
	junk := bytes.Repeat([]byte{0xEE}, 32)
	s.DRAM().Write(0x40, junk)
	rep := s.Run(&trace.Trace{Name: "touch", Refs: []trace.Ref{
		{Kind: trace.Fetch, Addr: 0x40, Size: 4},
	}})
	if rep.AuthViolations == 0 {
		t.Error("tamper crossed the inner boundary undetected")
	}
}

// Compare must reject a single-pass source (explicit Config.Rand) with
// a clear error instead of panicking on the second run's Reset.
func TestCompareSinglePassSourceErrors(t *testing.T) {
	src := trace.SequentialSource(trace.Config{Refs: 100, Rand: trace.NewRand(5)})
	_, _, err := Compare(DefaultConfig(), fixedEngine{block: 16}, src)
	if err == nil {
		t.Fatal("Compare accepted a single-pass source")
	}
	if !strings.Contains(err.Error(), "single-pass") {
		t.Errorf("error does not explain the problem: %v", err)
	}
	// Seed-configured and materialized sources stay accepted.
	if _, _, err := Compare(DefaultConfig(), fixedEngine{block: 16},
		trace.SequentialSource(trace.Config{Refs: 100, Seed: 5})); err != nil {
		t.Errorf("seeded source rejected: %v", err)
	}
	if _, _, err := Compare(DefaultConfig(), fixedEngine{block: 16}, smallTrace()); err != nil {
		t.Errorf("materialized trace rejected: %v", err)
	}
}
