package soc

import (
	"bytes"
	"testing"

	"repro/internal/edu"
	"repro/internal/sim/bus"
	"repro/internal/sim/cache"
	"repro/internal/sim/trace"
)

// fixedEngine is a test engine with controllable costs and an XOR data
// transform so ciphertext is distinguishable from plaintext.
type fixedEngine struct {
	block     int
	readCost  uint64
	writeCost uint64
	perAccess uint64
}

func (f fixedEngine) Name() string             { return "fixed" }
func (f fixedEngine) Placement() edu.Placement { return edu.PlacementCacheMem }
func (f fixedEngine) BlockBytes() int          { return f.block }
func (f fixedEngine) Gates() int               { return 1000 }
func (f fixedEngine) EncryptLine(_ uint64, dst, src []byte) {
	for i := range src {
		dst[i] = src[i] ^ 0x5c
	}
}
func (f fixedEngine) DecryptLine(_ uint64, dst, src []byte) {
	for i := range src {
		dst[i] = src[i] ^ 0x5c
	}
}
func (f fixedEngine) PerAccessCycles() uint64                    { return f.perAccess }
func (f fixedEngine) ReadExtraCycles(uint64, int, uint64) uint64 { return f.readCost }
func (f fixedEngine) WriteExtraCycles(uint64, int) uint64        { return f.writeCost }
func (f fixedEngine) NeedsRMW(n int) bool                        { return n < f.block }

func smallTrace() *trace.Trace {
	return trace.Sequential(trace.Config{Refs: 5000, Seed: 1, LoadFraction: 0.4, WriteFraction: 0.3, JumpRate: 0.02, Locality: 0.6})
}

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.CacheHitCycles = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero hit latency accepted")
	}
	cfg = DefaultConfig()
	cfg.Cache.Size = 100 // invalid geometry
	if _, err := New(cfg); err == nil {
		t.Error("bad cache accepted")
	}
	cfg = DefaultConfig()
	cfg.Engine = fixedEngine{block: 48} // line 32 not divisible by 48
	if _, err := New(cfg); err == nil {
		t.Error("granule larger than line accepted")
	}
}

func TestBaselineRunBasics(t *testing.T) {
	s, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	tr := smallTrace()
	rep := s.Run(tr)
	st := tr.Stats()
	if rep.Instructions != uint64(st.Fetches) {
		t.Errorf("instructions = %d, want %d", rep.Instructions, st.Fetches)
	}
	if rep.Refs != uint64(st.Refs) {
		t.Errorf("refs = %d, want %d", rep.Refs, st.Refs)
	}
	if rep.Cycles == 0 || rep.CPI() <= 1 {
		t.Errorf("implausible cycle count %d (CPI %.2f)", rep.Cycles, rep.CPI())
	}
	if rep.EngineStalls != 0 {
		t.Error("null engine reported stalls")
	}
}

func TestEngineAddsOverhead(t *testing.T) {
	cfg := DefaultConfig()
	eng := fixedEngine{block: 16, readCost: 20, writeCost: 10}
	base, with, err := Compare(cfg, eng, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if with.Cycles <= base.Cycles {
		t.Errorf("engine did not slow the system: base %d with %d", base.Cycles, with.Cycles)
	}
	if with.OverheadVs(base) <= 0 {
		t.Error("overhead not positive")
	}
	if with.EngineStalls == 0 {
		t.Error("engine stalls not accounted")
	}
	// Identical cache behaviour: the engine must not perturb hits/misses.
	if with.Cache.Misses != base.Cache.Misses {
		t.Errorf("engine changed miss count: %d vs %d", with.Cache.Misses, base.Cache.Misses)
	}
}

func TestZeroCostEngineZeroOverhead(t *testing.T) {
	base, with, err := Compare(DefaultConfig(), fixedEngine{block: 1}, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles != with.Cycles {
		t.Errorf("zero-cost engine changed cycles: %d vs %d", base.Cycles, with.Cycles)
	}
}

func TestPerAccessCyclesCharged(t *testing.T) {
	cfg := DefaultConfig()
	base, with, err := Compare(cfg, fixedEngine{block: 1, perAccess: 1}, smallTrace())
	if err != nil {
		t.Fatal(err)
	}
	// Every reference pays exactly 1 extra cycle.
	want := base.Cycles + with.Refs
	if with.Cycles != want {
		t.Errorf("per-access accounting: got %d, want %d", with.Cycles, want)
	}
}

func TestWriteThroughRMWCounted(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Cache.WriteMode = cache.WriteThrough
	cfg.Engine = fixedEngine{block: 16, readCost: 5, writeCost: 5}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Byte stores (size 1 < block 16) must trigger RMW.
	tr := &trace.Trace{Name: "stores", Refs: []trace.Ref{
		{Kind: trace.Store, Addr: 0x4000_0001, Size: 1},
		{Kind: trace.Store, Addr: 0x4000_0002, Size: 1},
	}}
	rep := s.Run(tr)
	if rep.RMWEvents != 2 {
		t.Errorf("RMW events = %d, want 2", rep.RMWEvents)
	}
}

func TestLoadImageReadPlainRoundtrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	img := []byte("this program text will live enciphered in external memory....")
	if err := s.LoadImage(0x1000, img); err != nil {
		t.Fatal(err)
	}
	// External memory must hold ciphertext...
	raw := s.DRAM().Dump(0x1000, len(img))
	if bytes.Contains(raw, img[:16]) {
		t.Error("plaintext visible in DRAM")
	}
	// ...but the CPU-side view is plaintext.
	got := s.ReadPlain(0x1000, len(img))
	if !bytes.Equal(got, img) {
		t.Errorf("ReadPlain mismatch: %q", got)
	}
}

func TestLoadImageAlignment(t *testing.T) {
	s, _ := New(DefaultConfig())
	if err := s.LoadImage(0x1001, []byte("x")); err == nil {
		t.Error("unaligned image base accepted")
	}
}

// The probe on an encrypted system must never see installed plaintext;
// on a plaintext system it must.
type sniffer struct{ data []byte }

func (s *sniffer) Observe(b bus.Beat) { s.data = append(s.data, b.Data...) }

func TestProbeSeesCiphertextOnlyWithEngine(t *testing.T) {
	secret := bytes.Repeat([]byte("SECRET-INSTRUCTION-STREAM!"), 4)
	tr := &trace.Trace{Name: "touch", Refs: []trace.Ref{
		{Kind: trace.Fetch, Addr: 0x1000, Size: 4},
		{Kind: trace.Fetch, Addr: 0x1020, Size: 4},
		{Kind: trace.Fetch, Addr: 0x1040, Size: 4},
	}}

	run := func(eng edu.Engine) *sniffer {
		cfg := DefaultConfig()
		cfg.Engine = eng
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.LoadImage(0x1000, secret); err != nil {
			t.Fatal(err)
		}
		sn := &sniffer{}
		s.Bus().Attach(sn)
		s.Run(tr)
		return sn
	}

	plain := run(edu.Null{})
	if !bytes.Contains(plain.data, secret[:16]) {
		t.Error("plaintext system: probe should capture the secret")
	}
	enc := run(fixedEngine{block: 16})
	if bytes.Contains(enc.data, secret[:16]) {
		t.Error("encrypted system: probe captured plaintext")
	}
}

func TestReportCPIZeroInstructions(t *testing.T) {
	if (Report{}).CPI() != 0 || (Report{}).OverheadVs(Report{}) != 0 {
		t.Error("zero-division guards missing")
	}
}

func TestDeterministicRuns(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Engine = fixedEngine{block: 16, readCost: 7}
	tr := smallTrace()
	r1, err := func() (Report, error) {
		s, err := New(cfg)
		if err != nil {
			return Report{}, err
		}
		return s.Run(tr), nil
	}()
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := New(cfg)
	r2 := s2.Run(tr)
	if r1.Cycles != r2.Cycles || r1.Cache != r2.Cache {
		t.Error("identical runs diverged")
	}
}
