package soc

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// The 0 allocs/ref contract must hold with the flight recorder
// installed on top of full metrics instrumentation: Emit writes one
// fixed-size record into a pre-allocated ring, so recording a fully
// verified two-level run adds no allocation to the hot loop.
func TestHotLoopZeroAllocsTraced(t *testing.T) {
	for _, tc := range []struct {
		name     string
		twoLevel bool
	}{
		{"single-level", false},
		{"two-level", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			rc := rec.New(1 << 12)
			s, _ := instrumentedSystem(t, reg, tc.twoLevel, rc)
			src := obsTestSource()
			s.Run(src) // warm DRAM pages, tag stores, node cache, buffers
			if rc.Len() == 0 {
				t.Fatal("recorder captured nothing; tracing not wired")
			}
			if avg := allocsPerRun(3, func() { s.Run(src) }); avg != 0 {
				t.Errorf("traced Run allocated %.1f times per 20k-ref run, want 0", avg)
			}
		})
	}
}

// The recorded stream must agree with the Report and live metrics the
// same run produces: the trace is the same truth at event granularity.
func TestTraceMirrorsReport(t *testing.T) {
	reg := obs.NewRegistry()
	rc := rec.New(1 << 19)
	s, ver := instrumentedSystem(t, reg, true, rc)
	rep := s.Run(obsTestSource())
	st := rc.Seal("soc")
	if st.Dropped != 0 {
		t.Fatalf("ring overflowed (%d dropped); grow the test capacity", st.Dropped)
	}
	if err := rec.Validate(&rec.Trace{Streams: []rec.Stream{st}}); err != nil {
		t.Fatal(err)
	}

	counts := make(map[rec.Kind]uint64)
	var lastCycle uint64
	for _, ev := range st.Events {
		counts[ev.Kind]++
		if ev.Cycle < lastCycle {
			t.Fatalf("seq %d: cycle stamp went backwards (%d after %d)", ev.Seq, ev.Cycle, lastCycle)
		}
		lastCycle = ev.Cycle
		if ev.Ref > rep.Refs {
			t.Fatalf("seq %d: ref stamp %d beyond run length %d", ev.Seq, ev.Ref, rep.Refs)
		}
	}

	if got := counts[rec.KindTrap]; got != rep.AuthViolations {
		t.Errorf("trap events = %d, report violations = %d", got, rep.AuthViolations)
	}
	if got, want := counts[rec.KindVerify], ver.Verified+ver.Violations; got != want {
		t.Errorf("verify events = %d, verifier performed %d verifications", got, want)
	}
	if got := counts[rec.KindNodeFetch]; got != ver.NodeFetches {
		t.Errorf("node-fetch events = %d, tree counted %d", got, ver.NodeFetches)
	}
	if got := counts[rec.KindNodeHit]; got != ver.NodeHits {
		t.Errorf("node-hit events = %d, tree counted %d", got, ver.NodeHits)
	}
	// One closing transfer record per costed hierarchy event — the same
	// population the transfer-cycle histogram observes.
	h := reg.Histogram("soc.transfer_cycles").Snapshot()
	if got := counts[rec.KindFill] + counts[rec.KindWriteback]; got != h.Count {
		t.Errorf("transfer events = %d, histogram observed %d", got, h.Count)
	}
	if counts[rec.KindDecipher] == 0 || counts[rec.KindEncipher] == 0 {
		t.Error("no EDU events recorded on a line-encrypted system")
	}
}
