package soc

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/rec"
	"repro/internal/sim/authtree"
	"repro/internal/sim/cache"
	"repro/internal/sim/trace"
)

// allocsPerRun is testing.AllocsPerRun with the collector parked for
// the duration of the measurement. AllocsPerRun reads the global
// MemStats.Mallocs delta, so a GC cycle landing inside the window
// attributes runtime-internal allocations to a loop that performs
// none — a known source of spurious nonzero readings in exactly the
// heap-size-sensitive way that makes it flake across unrelated edits.
func allocsPerRun(runs int, f func()) float64 {
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	// Parking the pacer does not stop a concurrent cycle already in
	// flight; a blocking collection drains it before measuring.
	runtime.GC()
	return testing.AllocsPerRun(runs, f)
}

func instrumentedSystem(t *testing.T, reg *obs.Registry, twoLevel bool, rc *rec.Recorder) (*SoC, *authtree.Tree) {
	t.Helper()
	ver, err := authtree.New(authtree.Config{
		Key:       []byte("0123456789abcdef"),
		LineBytes: 32,
		Regions: []authtree.Region{
			{Base: 0, Bytes: 1 << 20},
			{Base: 0x4000_0000, Bytes: 8 << 20},
		},
		NodeCacheBytes: 4 << 10,
		Variant:        authtree.CounterTree,
	})
	if err != nil {
		t.Fatal(err)
	}
	ver.SetMetrics(authtree.NewMetrics(reg))
	ver.SetRecorder(rc)
	cfg := DefaultConfig()
	cfg.Recorder = rc
	if twoLevel {
		cfg.L2 = cache.Config{Size: 64 << 10, LineSize: 32, Ways: 8, Policy: cache.LRU, WriteMode: cache.WriteBack}
	}
	cfg.Engine = fixedEngine{block: 16, readCost: 7, writeCost: 3}
	cfg.Verifier = ver
	cfg.Metrics = NewMetrics(reg)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s, ver
}

func obsTestSource() trace.RefSource {
	return trace.SequentialSource(trace.Config{
		Refs: 20000, Seed: 3, LoadFraction: 0.4, WriteFraction: 0.4,
		JumpRate: 0.02, Locality: 0.5,
	})
}

// The 0 allocs/ref contract must hold with the metrics registry
// installed: publishing is pointer-held atomics on pre-registered
// cells, so full instrumentation (SoC + both cache levels + hierarchy
// + tree verifier) adds no allocation to the hot loop.
func TestHotLoopZeroAllocsInstrumented(t *testing.T) {
	for _, tc := range []struct {
		name     string
		twoLevel bool
	}{
		{"single-level", false},
		{"two-level", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reg := obs.NewRegistry()
			s, _ := instrumentedSystem(t, reg, tc.twoLevel, nil)
			src := obsTestSource()
			rep := s.Run(src) // warm DRAM pages, tag stores, node cache, buffers
			if rep.AuthStalls == 0 {
				t.Fatal("verifier charged no cycles; instrumented path not exercised")
			}
			if reg.Counter("soc.refs").Load() == 0 {
				t.Fatal("metrics did not publish; instrumentation not wired")
			}
			if avg := allocsPerRun(3, func() { s.Run(src) }); avg != 0 {
				t.Errorf("instrumented Run allocated %.1f times per 20k-ref run, want 0", avg)
			}
		})
	}
}

// The live metrics must agree with the Report the same run returns:
// the observable twin carries the same truth, just readable mid-run.
func TestMetricsMirrorReport(t *testing.T) {
	reg := obs.NewRegistry()
	s, ver := instrumentedSystem(t, reg, true, nil)
	rep := s.Run(obsTestSource())

	counters := map[string]uint64{
		"soc.refs":            rep.Refs,
		"soc.instructions":    rep.Instructions,
		"soc.cycles":          rep.Cycles,
		"soc.engine_lines":    rep.EngineLines,
		"soc.auth_stalls":     rep.AuthStalls,
		"soc.auth_violations": rep.AuthViolations,
		"l1.hits":             rep.Cache.Hits,
		"l1.misses":           rep.Cache.Misses,
		"l1.evictions":        rep.Cache.Evictions,
		"l1.writebacks":       rep.Cache.Writebacks,
		"l2.hits":             rep.L2.Hits,
		"l2.misses":           rep.L2.Misses,
		"authtree.node_hits":  ver.NodeHits,
		"authtree.verified":   ver.Verified,
	}
	for name, want := range counters {
		if got := reg.Counter(name).Load(); got != want {
			t.Errorf("%s = %d, want %d (report)", name, got, want)
		}
	}
	if got := reg.Counter("authtree.node_fetches").Load(); got != ver.NodeFetches {
		t.Errorf("authtree.node_fetches = %d, want %d", got, ver.NodeFetches)
	}

	// Transfer histogram: one observation per costed line transfer,
	// i.e. per hierarchy event processed.
	h := reg.Histogram("soc.transfer_cycles").Snapshot()
	fills := reg.Counter("hier.fills").Load()
	wbs := reg.Counter("hier.writebacks").Load()
	if h.Count != fills+wbs {
		t.Errorf("transfer_cycles count %d != fills %d + writebacks %d", h.Count, fills, wbs)
	}
	if h.Count == 0 || h.Sum == 0 {
		t.Error("transfer histogram empty on a missing workload")
	}
	// Chip-boundary transfers are a subset of all transfers.
	if cf := reg.Counter("hier.chip_fills").Load(); cf == 0 || cf > fills {
		t.Errorf("chip_fills = %d (fills %d)", cf, fills)
	}

	// A second run on a shared registry accumulates rather than resets.
	before := reg.Counter("soc.refs").Load()
	s2, _ := instrumentedSystem(t, reg, true, nil)
	s2.Run(obsTestSource())
	if got := reg.Counter("soc.refs").Load(); got != before+rep.Refs {
		t.Errorf("shared registry refs = %d, want %d", got, before+rep.Refs)
	}
}

// An uninstrumented system (Config.Metrics nil) must behave
// identically: same Report, no metric traffic.
func TestNilMetricsIdentical(t *testing.T) {
	reg := obs.NewRegistry()
	inst, _ := instrumentedSystem(t, reg, true, nil)
	plainCfg := inst.cfg
	plainCfg.Metrics = nil
	plainCfg.Verifier = nil
	instCfg := inst.cfg
	instCfg.Verifier = nil

	a, err := New(plainCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(instCfg)
	if err != nil {
		t.Fatal(err)
	}
	ra := a.Run(obsTestSource())
	rb := b.Run(obsTestSource())
	if ra != rb {
		t.Errorf("instrumented report differs from uninstrumented:\n%+v\n%+v", rb, ra)
	}
}
