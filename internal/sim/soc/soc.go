// Package soc composes the simulated system-on-chip of the survey's
// Figure 2c: trace-driven CPU core, one or two levels of on-chip cache,
// an encryption/decryption unit at one of the Figure 7 placements, the
// external bus (probe-able), and external DRAM. It produces the cycle
// counts from which every experiment's overhead figure is derived.
//
// The timing model is deterministic cycle accounting for an in-order,
// single-issue core: each trace reference contributes its compute gap,
// the cache hit time, and — on misses and write-throughs — the memory
// transfer plus whatever stall the engine adds. DESIGN.md §4 documents
// why this level of modeling preserves the survey's relative results.
package soc

import (
	"fmt"

	"repro/internal/edu"
	"repro/internal/obs/rec"
	"repro/internal/sim/bus"
	"repro/internal/sim/cache"
	"repro/internal/sim/dram"
	"repro/internal/sim/trace"
)

// DefaultL2HitCycles is the L2 access latency assumed when an L2 is
// configured without an explicit latency: a 2005-class on-chip SRAM
// L2, several core cycles slower than the L1.
const DefaultL2HitCycles = 6

// Config assembles a system.
type Config struct {
	Cache cache.Config
	// L2 is an optional second-level cache between the L1 and DRAM
	// (zero value = single-level system). Its line size must equal the
	// L1's — a line is the unit moved between levels — and both levels
	// must be write-back (write-through through a hierarchy is not
	// modeled).
	L2 cache.Config
	// L2HitCycles is the L2 access latency in CPU cycles, charged on
	// every line transfer between L1 and L2; defaults to
	// DefaultL2HitCycles when an L2 is configured.
	L2HitCycles int
	// Placement selects which hierarchy boundary the engine and
	// verifier guard (DESIGN.md §4): the zero value picks the outermost
	// boundary — cache<->DRAM in a single-level system, L2<->DRAM with
	// an L2 — which is the classic Figure 7a arrangement. PlacementL1L2
	// (and PlacementCPUCache with an L2) moves the unit inward: every
	// L1 miss crosses it, the L2 and DRAM hold ciphertext, and
	// L2<->DRAM transfers move raw ciphertext with no engine stall.
	Placement edu.Placement
	Bus       bus.Config
	DRAM      dram.Config
	// CacheHitCycles is the L1 hit latency in CPU cycles.
	CacheHitCycles int
	// Engine is the bus-encryption unit; nil means edu.Null{}.
	Engine edu.Engine
	// Verifier is the memory authenticator (sim/authtree, or any
	// edu.Verifier); nil means no integrity checking. It is driven on
	// the same traffic as the engine — whatever crosses the guarded
	// boundary — but independently of it, so any confidentiality engine
	// composes with any authenticator.
	Verifier edu.Verifier
	// ViolationCycles is the security-exception cost charged per
	// detected verification failure (trap entry and the fail-stop
	// decision path) before the line is zeroed. Only meaningful with a
	// Verifier installed.
	ViolationCycles int
	// Intruder, when non-nil, is invoked before every reference with
	// the running reference index: the active adversary tampering with
	// external state mid-run (internal/attack.Schedule).
	Intruder Intruder
	// OnViolation, when non-nil, observes each detected tamper: the
	// reference index at which verification failed and the line
	// address. The attack schedule uses it to measure detection
	// latency.
	OnViolation func(refIndex, lineAddr uint64)
	// SkipFinalFlush disables the end-of-run drain of dirty cache
	// lines. The default (false) spills every dirty line when Run
	// finishes and folds the cycles into the report, so writeback
	// traffic is fully accounted; Compare flushes both systems, keeping
	// the overhead comparison apples-to-apples.
	SkipFinalFlush bool
	// Metrics, when non-nil, installs live observability: the hot loop
	// publishes into the bundle's pre-registered atomic metrics with
	// zero allocations per reference (the obs fixed-registry contract).
	// nil runs exactly as before — publishes become nil-receiver no-ops.
	Metrics *Metrics
	// Recorder, when non-nil, installs the flight recorder
	// (internal/obs/rec): the hot loop emits one fixed-size event per
	// line transfer, EDU granule batch, verification, and trap into the
	// preallocated ring, stamped with simulated-cycle time and reference
	// index — still zero allocations per reference. nil (the default)
	// publishes nowhere via nil-receiver no-ops.
	Recorder *rec.Recorder
}

// Intruder is an active adversary with write access to external state
// (DRAM contents, external tag stores) during a run — the attack model
// of the survey's §2.3 extended to modification. Strike is called once
// per reference, before the reference is processed; implementations
// tamper via s.DRAM() and the engine/verifier tag stores, never via
// timing-bearing paths.
type Intruder interface {
	Strike(refIndex uint64, ref trace.Ref, s *SoC)
}

// DefaultConfig is the reference 2005-class embedded system used across
// the experiments: 16 KiB 4-way cache with 32-byte lines, a 32-bit bus
// at half the core clock, and DefaultConfig DRAM.
func DefaultConfig() Config {
	return Config{
		Cache: cache.Config{
			Size: 16 << 10, LineSize: 32, Ways: 4,
			Policy: cache.LRU, WriteMode: cache.WriteBack,
		},
		Bus:             bus.Config{WidthBytes: 4, ClockDivider: 2, AddressCycles: 2},
		DRAM:            dram.DefaultConfig(),
		CacheHitCycles:  1,
		ViolationCycles: 100,
	}
}

// DefaultL2Config returns the standard L2 geometry for a given capacity:
// 8-way write-back with the reference 32-byte lines — the shape the
// campaign's -l2 axis and E22 sweep.
func DefaultL2Config(size int) cache.Config {
	return cache.Config{
		Size: size, LineSize: 32, Ways: 8,
		Policy: cache.LRU, WriteMode: cache.WriteBack,
	}
}

// Report is the outcome of one run.
type Report struct {
	EngineName   string
	Workload     string
	Cycles       uint64
	Instructions uint64 // fetch count
	Refs         uint64
	StallCycles  uint64 // cycles beyond compute + hit time
	EngineStalls uint64 // the portion attributable to the engine
	RMWEvents    uint64 // partial writes that forced read-modify-write
	// FlushedLines counts line spills performed by the end-of-run drain
	// of dirty cache lines (cycles included in Cycles). With an L2 the
	// drain moves lines boundary by boundary, so an L1 line that
	// flushes into the L2 and from there to DRAM counts twice — the
	// count is spill traffic, not distinct lines.
	FlushedLines uint64
	// EngineLines counts the line-granule transfers that crossed the
	// engine's boundary (fills, spills, write-through rewrites): the
	// unit's exposed bandwidth, the quantity E22's placement argument
	// is about. Transfers at unguarded boundaries (raw ciphertext
	// moves, plaintext L1<->L2 moves) are not counted.
	EngineLines uint64
	// AuthStalls is the verifier-side portion of StallCycles: tag
	// computation, tree walks, node fetches, violation traps.
	AuthStalls uint64
	// AuthViolations counts fail-stop events: every failed line
	// verification (zeroed line + trap charge). A tampered line that is
	// never repaired re-triggers on each refill, so this can exceed the
	// number of distinct tampers — real fail-stop hardware would halt
	// at the first event; the simulation keeps running and charges each
	// one. Distinct-tamper detection counts live in the attack
	// schedule (internal/attack.Schedule.Detected).
	AuthViolations uint64
	Cache          cache.Stats
	// L2 carries the second-level cache's counters (zero without an
	// L2). Installs from L1 writebacks share the hit/miss counters with
	// demand fills: the stats describe all traffic arriving at the L2.
	L2       cache.Stats
	BusBytes uint64
	BusTxns  uint64
}

// CPI returns cycles per instruction.
func (r Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// OverheadVs returns the fractional slowdown of r relative to the
// baseline run base (0.25 = 25 % more cycles), the number every
// surveyed paper quotes.
func (r Report) OverheadVs(base Report) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles)/float64(base.Cycles) - 1
}

// SoC is one assembled system.
type SoC struct {
	cfg      Config
	hier     *cache.Hierarchy
	cache    *cache.Cache // level 0
	l2       *cache.Cache // nil in a single-level system
	bus      *bus.Bus
	dram     *dram.DRAM
	engine   edu.Engine
	verifier edu.Verifier
	// inner is true when the engine/verifier guard the L1<->L2 boundary
	// (Placement L1L2 or CPUCache with an L2): the L2 holds ciphertext
	// and L2<->DRAM transfers are raw moves.
	inner bool
	// placement is the resolved boundary (defaults substituted).
	placement edu.Placement
	l2Hit     uint64
	// curRef is the index of the reference Run is processing, for
	// violation timestamps (detection-latency measurement).
	curRef uint64
	// shadows hold the per-level resident-line data in flat arenas
	// indexed by each cache's line slot, so their footprint is exactly
	// the hierarchy capacity and entries are recycled in lockstep with
	// evictions — clean or dirty. Level 0 always holds plaintext (the
	// CPU's view); level 1 holds plaintext when the engine guards the
	// outer boundary and ciphertext when it guards the inner one. The
	// arenas exist because the caches are timing/state models without a
	// data store, but writebacks must put real bytes on the probed bus.
	shadows [][]byte
	// Preallocated scratch so the per-reference hot path never
	// allocates: inbound ciphertext, outbound ciphertext, and a line of
	// plaintext for non-resident write-through rewrites.
	ctIn, ctOut, ptBuf []byte
	// m is the live metrics bundle (zero value = publish nowhere).
	m Metrics
	// rc is the flight recorder (nil = no-op sink); granules is the
	// engine blocks per line figure EDU events carry; flushing marks
	// transfers emitted by the end-of-run drain (FlagFlush).
	rc       *rec.Recorder
	granules uint64
	flushing bool
}

// New assembles a system from cfg.
func New(cfg Config) (*SoC, error) {
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	b, err := bus.New(cfg.Bus)
	if err != nil {
		return nil, err
	}
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = edu.Null{}
	}
	if cfg.CacheHitCycles <= 0 {
		return nil, fmt.Errorf("soc: non-positive cache hit latency %d", cfg.CacheHitCycles)
	}
	if cfg.ViolationCycles < 0 {
		return nil, fmt.Errorf("soc: negative violation cost %d", cfg.ViolationCycles)
	}
	if cfg.Cache.LineSize%eng.BlockBytes() != 0 {
		return nil, fmt.Errorf("soc: line size %d not a multiple of engine granule %d",
			cfg.Cache.LineSize, eng.BlockBytes())
	}

	var l2 *cache.Cache
	l2Hit := uint64(0)
	if cfg.L2.Size != 0 {
		if l2, err = cache.New(cfg.L2); err != nil {
			return nil, err
		}
		switch {
		case cfg.L2HitCycles < 0:
			return nil, fmt.Errorf("soc: negative L2 hit latency %d", cfg.L2HitCycles)
		case cfg.L2HitCycles == 0:
			l2Hit = DefaultL2HitCycles
		default:
			l2Hit = uint64(cfg.L2HitCycles)
		}
	} else if cfg.L2HitCycles != 0 {
		return nil, fmt.Errorf("soc: L2 hit latency set without an L2 cache")
	}

	inner := false
	placement := edu.PlacementCacheMem
	if l2 != nil {
		placement = edu.PlacementL2DRAM
	}
	switch cfg.Placement {
	case edu.PlacementNone, edu.PlacementCacheMem:
		// Outermost boundary, whatever the hierarchy depth.
	case edu.PlacementL2DRAM:
		if l2 == nil {
			return nil, fmt.Errorf("soc: placement %s requires an L2 cache", cfg.Placement)
		}
	case edu.PlacementL1L2:
		if l2 == nil {
			return nil, fmt.Errorf("soc: placement %s requires an L2 cache", cfg.Placement)
		}
		inner = true
		placement = edu.PlacementL1L2
	case edu.PlacementCPUCache:
		// Single-level: the cache<->DRAM boundary is the only line-
		// granule boundary and the engine's PerAccessCycles already
		// model the CPU-side path. With an L2, the unit guards the
		// inner boundary.
		if l2 != nil {
			inner = true
			placement = edu.PlacementCPUCache
		}
	default:
		return nil, fmt.Errorf("soc: unknown placement %v", cfg.Placement)
	}

	levels := []*cache.Cache{c}
	if l2 != nil {
		levels = append(levels, l2)
	}
	hier, err := cache.NewHierarchy(levels...)
	if err != nil {
		return nil, fmt.Errorf("soc: %w", err)
	}

	ls := cfg.Cache.LineSize
	shadows := make([][]byte, len(levels))
	for i, lvl := range levels {
		shadows[i] = make([]byte, lvl.Lines()*ls)
	}
	s := &SoC{
		cfg: cfg, hier: hier, cache: c, l2: l2, bus: b, dram: d,
		engine: eng, verifier: cfg.Verifier,
		inner: inner, placement: placement, l2Hit: l2Hit,
		shadows:  shadows,
		ctIn:     make([]byte, ls),
		ctOut:    make([]byte, ls),
		ptBuf:    make([]byte, ls),
		rc:       cfg.Recorder,
		granules: uint64(ls / eng.BlockBytes()),
	}
	if cfg.Metrics != nil {
		s.m = *cfg.Metrics
		c.SetMetrics(s.m.L1)
		if l2 != nil {
			l2.SetMetrics(s.m.L2)
		}
		hier.SetMetrics(s.m.Hier)
	}
	return s, nil
}

// ShadowBytes reports the total size of the resident-line data store —
// fixed at hierarchy capacity by construction (the regression guard for
// the old unbounded shadow map, which grew with every clean eviction).
func (s *SoC) ShadowBytes() int {
	n := 0
	for _, sh := range s.shadows {
		n += len(sh)
	}
	return n
}

// slotData returns the shadow data for a cache slot at a level.
func (s *SoC) slotData(level, slot int) []byte {
	ls := s.cfg.Cache.LineSize
	return s.shadows[level][slot*ls : (slot+1)*ls]
}

// Bus exposes the bus for probe attachment.
func (s *SoC) Bus() *bus.Bus { return s.bus }

// Cache exposes the first-level cache. The attack model reads residency
// from the hierarchy (Resident): a probe attacker reconstructs cache
// contents from the fill/eviction traffic it watches.
func (s *SoC) Cache() *cache.Cache { return s.cache }

// L2 exposes the second-level cache (nil in a single-level system).
func (s *SoC) L2() *cache.Cache { return s.l2 }

// Resident reports whether addr's line is held at any cache level —
// "on-chip" from the probe attacker's vantage point: a resident line is
// served without touching DRAM, and its eventual writeback overwrites
// whatever an adversary planted there.
func (s *SoC) Resident(addr uint64) bool {
	if s.cache.Contains(addr) {
		return true
	}
	return s.l2 != nil && s.l2.Contains(addr)
}

// DRAM exposes external memory (the attacker can dump it).
func (s *SoC) DRAM() *dram.DRAM { return s.dram }

// Engine returns the installed engine.
func (s *SoC) Engine() edu.Engine { return s.engine }

// Verifier returns the installed memory authenticator (nil if none).
func (s *SoC) Verifier() edu.Verifier { return s.verifier }

// Placement reports the hierarchy boundary the engine and verifier
// guard in this system, with the configured default resolved to the
// outermost boundary of the hierarchy.
func (s *SoC) Placement() edu.Placement { return s.placement }

// LoadImage installs plaintext data into external memory through the
// engine, line by line — the survey's step 6: "the processor uses K and
// a symmetric algorithm to decipher the software and to install the code
// in the external memory" (installed re-ciphered under the bus engine).
func (s *SoC) LoadImage(addr uint64, data []byte) error {
	ls := s.cfg.Cache.LineSize
	if addr%uint64(ls) != 0 {
		return fmt.Errorf("soc: image base %#x not line aligned", addr)
	}
	for off := 0; off < len(data); off += ls {
		line := make([]byte, ls)
		copy(line, data[off:])
		ct := make([]byte, ls)
		s.engine.EncryptLine(addr+uint64(off), ct, line)
		s.dram.Write(addr+uint64(off), ct)
		if s.verifier != nil {
			// Enrollment: the image install is the boot-time write that
			// brings each line under authentication (no timing — this is
			// the survey's step 6, outside the measured run).
			s.verifier.UpdateWrite(addr+uint64(off), ct)
		}
	}
	return nil
}

// ReadPlain fetches n bytes at addr through the engine (a debug/verify
// path, no timing): what the CPU would see. It reads DRAM directly,
// bypassing the hierarchy; with an inner placement and lines still
// dirty in the L2, DRAM (and hence this view) lags the verifier's
// state until the end-of-run flush drains them.
func (s *SoC) ReadPlain(addr uint64, n int) []byte {
	ls := s.cfg.Cache.LineSize
	start := addr &^ uint64(ls-1)
	end := (addr + uint64(n) + uint64(ls) - 1) &^ uint64(ls-1)
	out := make([]byte, 0, end-start)
	for a := start; a < end; a += uint64(ls) {
		ct := s.dram.Read(a, ls)
		pt := make([]byte, ls)
		s.engine.DecryptLine(a, pt, ct)
		if s.verifier != nil {
			if _, ok := s.verifier.VerifyRead(a, ct); !ok {
				clear(pt) // fail-stop: the CPU never sees tampered data
			}
		}
		out = append(out, pt...)
	}
	off := int(addr - start)
	return out[off : off+n]
}

// transferSize asks the engine how many bytes of a line actually cross
// the bus (compressed code moves fewer — Figure 8).
func (s *SoC) transferSize(lineAddr uint64, lineBytes int) int {
	if ts, ok := s.engine.(edu.TransferSizer); ok {
		if n := ts.TransferBytes(lineAddr, lineBytes); n > 0 && n < lineBytes {
			return n
		}
	}
	return lineBytes
}

// fill performs a line fill across the chip boundary into pt: DRAM
// access, bus transfer of ciphertext, engine decryption, and — with a
// verifier installed — read verification of the inbound ciphertext.
// Returns total CPU cycles for the miss path. Allocation-free: scratch
// buffers and the slot arenas are preallocated.
func (s *SoC) fill(lineAddr uint64, pt []byte, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	dramCycles := s.dram.AccessCycles(lineAddr)
	s.dram.ReadInto(lineAddr, s.ctIn)
	busCycles := s.bus.Transfer(bus.Read, lineAddr, s.ctIn[:s.transferSize(lineAddr, ls)])
	s.engine.DecryptLine(lineAddr, pt, s.ctIn)
	rep.EngineLines++
	s.m.EngineLines.Inc()
	s.rc.Emit(rec.KindDecipher, lineAddr, 0, 0, s.granules)
	transfer := dramCycles + busCycles
	extra := s.engine.ReadExtraCycles(lineAddr, ls, transfer)
	cycles = transfer + extra
	if s.verifier != nil {
		cycles += s.verifyInbound(lineAddr, s.ctIn, pt, rep)
	}
	return cycles, extra
}

// verifyInbound authenticates the inbound ciphertext ct for the line at
// lineAddr and applies the fail-stop response to pt on a detected
// tamper: zero the plaintext, charge the violation trap, count it, and
// notify the observer. Returns the verifier-side cycles.
func (s *SoC) verifyInbound(lineAddr uint64, ct, pt []byte, rep *Report) uint64 {
	stall, ok := s.verifier.VerifyRead(lineAddr, ct)
	rep.AuthStalls += stall
	if ok {
		s.rc.Emit(rec.KindVerify, lineAddr, 0, 0, stall)
	} else {
		s.rc.Emit(rec.KindVerify, lineAddr, 0, rec.FlagFail, stall)
		s.rc.Emit(rec.KindTrap, lineAddr, 0, 0, uint64(s.cfg.ViolationCycles))
		stall += uint64(s.cfg.ViolationCycles)
		rep.AuthStalls += uint64(s.cfg.ViolationCycles)
		rep.AuthViolations++
		s.m.AuthViolations.Inc()
		clear(pt)
		if s.cfg.OnViolation != nil {
			s.cfg.OnViolation(s.curRef, lineAddr)
		}
	}
	s.m.AuthStalls.Add(stall)
	return stall
}

// spill writes a dirty line's plaintext pt out across the chip
// boundary: engine encryption, bus, DRAM, and the verifier's
// write-update (retag plus tree propagation). The caller owns pt
// (normally the victim's shadow slot, read before the subsequent fill
// overwrites it).
func (s *SoC) spill(lineAddr uint64, pt []byte, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	s.engine.EncryptLine(lineAddr, s.ctOut, pt)
	rep.EngineLines++
	s.m.EngineLines.Inc()
	s.rc.Emit(rec.KindEncipher, lineAddr, 0, 0, s.granules)
	dramCycles := s.dram.AccessCycles(lineAddr)
	busCycles := s.bus.Transfer(bus.Write, lineAddr, s.ctOut[:s.transferSize(lineAddr, ls)])
	s.dram.Write(lineAddr, s.ctOut)
	extra := s.engine.WriteExtraCycles(lineAddr, ls)
	cycles = dramCycles + busCycles + extra + s.updateOutbound(lineAddr, rep)
	return cycles, extra
}

// rawFill moves a ciphertext line from DRAM into ct without any engine
// or verifier involvement — the outer boundary of a system whose EDU
// guards the L1<->L2 boundary: the L2 stores the same bytes DRAM holds.
func (s *SoC) rawFill(lineAddr uint64, ct []byte) (cycles uint64) {
	ls := s.cfg.Cache.LineSize
	dramCycles := s.dram.AccessCycles(lineAddr)
	s.dram.ReadInto(lineAddr, ct)
	busCycles := s.bus.Transfer(bus.Read, lineAddr, ct[:s.transferSize(lineAddr, ls)])
	return dramCycles + busCycles
}

// rawSpill is rawFill's outbound counterpart: a ciphertext line moves
// from the L2 to DRAM unchanged.
func (s *SoC) rawSpill(lineAddr uint64, ct []byte) (cycles uint64) {
	ls := s.cfg.Cache.LineSize
	dramCycles := s.dram.AccessCycles(lineAddr)
	busCycles := s.bus.Transfer(bus.Write, lineAddr, ct[:s.transferSize(lineAddr, ls)])
	s.dram.Write(lineAddr, ct)
	return dramCycles + busCycles
}

// innerFill deciphers a line crossing the guarded L1<->L2 boundary:
// ciphertext from the L2 slot, plaintext into the L1 slot, verification
// of the inbound ciphertext. The transfer window the engine can overlap
// is the L2 access itself.
func (s *SoC) innerFill(lineAddr uint64, pt, ct []byte, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	s.engine.DecryptLine(lineAddr, pt, ct)
	rep.EngineLines++
	s.m.EngineLines.Inc()
	s.rc.Emit(rec.KindDecipher, lineAddr, 0, rec.FlagInner, s.granules)
	extra := s.engine.ReadExtraCycles(lineAddr, ls, s.l2Hit)
	cycles = s.l2Hit + extra
	if s.verifier != nil {
		cycles += s.verifyInbound(lineAddr, ct, pt, rep)
	}
	return cycles, extra
}

// innerSpill enciphers a dirty L1 line into its L2 slot and runs the
// verifier's write-update — the outbound crossing of the guarded
// L1<->L2 boundary. DRAM is untouched until the L2 evicts the line.
func (s *SoC) innerSpill(lineAddr uint64, pt, ct []byte, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	s.engine.EncryptLine(lineAddr, ct, pt)
	rep.EngineLines++
	s.m.EngineLines.Inc()
	s.rc.Emit(rec.KindEncipher, lineAddr, 0, rec.FlagInner, s.granules)
	extra := s.engine.WriteExtraCycles(lineAddr, ls)
	cycles = s.l2Hit + extra
	if s.verifier != nil {
		us := s.verifier.UpdateWrite(lineAddr, ct)
		rep.AuthStalls += us
		s.m.AuthStalls.Add(us)
		s.rc.Emit(rec.KindRetag, lineAddr, 0, rec.FlagInner, us)
		cycles += us
	}
	return cycles, extra
}

// processEvent costs one hierarchy line transfer and moves its data:
// engine-guarded crossings run the transform and verifier, unguarded
// ones move bytes raw (outer boundary under an inner placement) or in
// plaintext (L1<->L2 under an outer placement).
func (s *SoC) processEvent(ev cache.Event, rep *Report) {
	// Stamp the transfer's start time: every event the transfer causes
	// (EDU batches, verifications, tree walks, traps) shares it, and
	// the closing KindFill/KindWriteback record carries the total cost.
	s.rc.Stamp(rep.Cycles, s.curRef)
	var c, e uint64
	if ev.PeerSlot < 0 {
		// The chip boundary: DRAM on the far side.
		data := s.slotData(ev.Level, ev.Slot)
		switch {
		case s.inner && ev.Kind == cache.EvFill:
			c = s.rawFill(ev.Addr, data)
		case s.inner:
			c = s.rawSpill(ev.Addr, data)
		case ev.Kind == cache.EvFill:
			c, e = s.fill(ev.Addr, data, rep)
		default:
			c, e = s.spill(ev.Addr, data, rep)
		}
	} else {
		// The L1<->L2 boundary.
		l1Data := s.slotData(ev.Level, ev.Slot)
		l2Data := s.slotData(ev.Level+1, ev.PeerSlot)
		switch {
		case s.inner && ev.Kind == cache.EvFill:
			c, e = s.innerFill(ev.Addr, l1Data, l2Data, rep)
		case s.inner:
			c, e = s.innerSpill(ev.Addr, l1Data, l2Data, rep)
		case ev.Kind == cache.EvFill:
			copy(l1Data, l2Data)
			c = s.l2Hit
		default:
			copy(l2Data, l1Data)
			c = s.l2Hit
		}
	}
	if s.rc != nil {
		kind := rec.KindFill
		if ev.Kind != cache.EvFill {
			kind = rec.KindWriteback
		}
		flags := uint8(0)
		if ev.PeerSlot < 0 {
			flags |= rec.FlagChip
		}
		if s.flushing {
			flags |= rec.FlagFlush
		}
		s.rc.Emit(kind, ev.Addr, uint8(ev.Level), flags, c)
	}
	rep.Cycles += c
	rep.StallCycles += c
	rep.EngineStalls += e
	s.m.TransferCycles.Observe(c)
}

// writeThrough costs a store of size bytes at addr going straight to
// memory. If the store granule is smaller than the engine's block, the
// survey's five-step read-decipher-modify-recipher-write sequence runs.
// Only reachable in a single-level system (the hierarchy rejects a
// write-through L1 above an L2), so the engine boundary is the chip
// boundary.
//
// Timing is granule-accurate (the survey's §2.2 sequence); the data
// path operates on the whole enclosing line so DRAM always holds the
// per-line ciphertext layout LoadImage installed and ReadPlain expects
// — re-enciphering a lone granule under a chained or address-bound mode
// would clobber real memory contents. Stores carry no data in this
// model, so the line's plaintext is written back unchanged (counter
// modes still advance, so the ciphertext may legitimately differ).
// hitSlot is the resident line's shadow slot, or -1 on a no-allocate
// write miss (the plaintext is then recovered from DRAM).
func (s *SoC) writeThrough(addr uint64, size, hitSlot int, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	bb := s.engine.BlockBytes()
	lineAddr := addr &^ uint64(ls-1)

	// Data path: the line's actual plaintext, then a full-line recipher.
	// The current DRAM ciphertext is only needed to recover a
	// non-resident line's plaintext or to put the RMW granule read on
	// the bus.
	needRMW := s.engine.NeedsRMW(size)
	if hitSlot < 0 || needRMW {
		s.dram.ReadInto(lineAddr, s.ctIn)
	}
	var authStall uint64
	pt := s.ptBuf
	if hitSlot >= 0 {
		pt = s.slotData(0, hitSlot)
	} else {
		s.engine.DecryptLine(lineAddr, pt, s.ctIn)
		rep.EngineLines++
		s.m.EngineLines.Inc()
		s.rc.Emit(rec.KindDecipher, lineAddr, 0, 0, s.granules)
		if s.verifier != nil {
			// The recovered line comes from tamperable memory: verify it
			// before its plaintext feeds the rewrite.
			authStall += s.verifyInbound(lineAddr, s.ctIn, pt, rep)
		}
	}
	s.engine.EncryptLine(lineAddr, s.ctOut, pt)
	rep.EngineLines++
	s.m.EngineLines.Inc()
	s.rc.Emit(rec.KindEncipher, lineAddr, 0, 0, s.granules)

	if needRMW {
		rep.RMWEvents++
		blockAddr := addr &^ uint64(bb-1)
		gOff := int(blockAddr - lineAddr)
		// Read the enclosing granule...
		dramR := s.dram.AccessCycles(blockAddr)
		busR := s.bus.Transfer(bus.Read, blockAddr, s.ctIn[gOff:gOff+bb])
		readExtra := s.engine.ReadExtraCycles(blockAddr, bb, dramR+busR)
		// ...decipher, modify, re-cipher (performed line-wide above; the
		// store's value is irrelevant to timing)...
		writeExtra := s.engine.WriteExtraCycles(blockAddr, bb)
		// ...and write back.
		dramW := s.dram.AccessCycles(blockAddr)
		busW := s.bus.Transfer(bus.Write, blockAddr, s.ctOut[gOff:gOff+bb])
		s.dram.Write(lineAddr, s.ctOut)
		authStall += s.updateOutbound(lineAddr, rep)
		stall := readExtra + writeExtra
		return dramR + busR + dramW + busW + stall + authStall, stall
	}
	// Granule-aligned store: encrypt and write one granule.
	n := size
	if bb > n {
		n = bb
	}
	blockAddr := addr &^ uint64(bb-1)
	gOff := int(blockAddr - lineAddr)
	if gOff+n > ls {
		n = ls - gOff // clamp to the line (stores never straddle lines)
	}
	extra := s.engine.WriteExtraCycles(blockAddr, n)
	dramW := s.dram.AccessCycles(blockAddr)
	busW := s.bus.Transfer(bus.Write, blockAddr, s.ctOut[gOff:gOff+n])
	s.dram.Write(lineAddr, s.ctOut)
	authStall += s.updateOutbound(lineAddr, rep)
	return dramW + busW + extra + authStall, extra
}

// updateOutbound runs the verifier's write-update for the line just
// written to DRAM (sitting in ctOut), returning its cycle cost.
func (s *SoC) updateOutbound(lineAddr uint64, rep *Report) uint64 {
	if s.verifier == nil {
		return 0
	}
	us := s.verifier.UpdateWrite(lineAddr, s.ctOut)
	rep.AuthStalls += us
	s.m.AuthStalls.Add(us)
	s.rc.Emit(rec.KindRetag, lineAddr, 0, 0, us)
	return us
}

// Run consumes src to completion and reports the cycle accounting. The
// source is rewound first (Run measures whole workloads), and the hot
// loop performs zero heap allocations per reference — trace length is
// bounded by time, not memory.
//
//repro:hotpath
func (s *SoC) Run(src trace.RefSource) Report {
	src.Reset()
	rep := Report{EngineName: s.engine.Name(), Workload: src.Label()}
	hit := uint64(s.cfg.CacheHitCycles)
	perAccess := s.engine.PerAccessCycles()

	for {
		ref, ok := src.Next()
		if !ok {
			break
		}
		// Stamp before the intruder strikes so injection events carry
		// the reference index the attack schedule accounts under.
		s.rc.Stamp(rep.Cycles, rep.Refs)
		if s.cfg.Intruder != nil {
			s.cfg.Intruder.Strike(rep.Refs, ref, s)
		}
		s.curRef = rep.Refs
		rep.Refs++
		s.m.Refs.Inc()
		if ref.Kind == trace.Fetch {
			rep.Instructions++
			s.m.Instructions.Inc()
		}
		cyclesBefore := rep.Cycles
		rep.Cycles += uint64(ref.Compute)

		isStore := ref.Kind == trace.Store
		res, events := s.hier.Access(ref.Addr, isStore)
		rep.Cycles += hit + perAccess

		for _, ev := range events {
			s.processEvent(ev, &rep)
		}
		if res.Through {
			hitSlot := -1
			if res.Hit {
				hitSlot = res.Slot
			}
			s.rc.Stamp(rep.Cycles, s.curRef)
			c, e := s.writeThrough(ref.Addr, int(ref.Size), hitSlot, &rep)
			s.rc.Emit(rec.KindWriteThrough, ref.Addr&^uint64(s.cfg.Cache.LineSize-1), 0, 0, c)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
		s.m.Cycles.Add(rep.Cycles - cyclesBefore)
	}

	if !s.cfg.SkipFinalFlush {
		preFlush := rep.Cycles
		s.flushing = true
		for _, ev := range s.hier.Flush() {
			s.processEvent(ev, &rep)
			rep.FlushedLines++
		}
		s.flushing = false
		s.m.Cycles.Add(rep.Cycles - preFlush)
	}

	rep.Cache = s.cache.Stats()
	if s.l2 != nil {
		rep.L2 = s.l2.Stats()
	}
	rep.BusBytes = s.bus.BytesMoved
	rep.BusTxns = s.bus.Transactions
	return rep
}

// Compare runs the same workload on a baseline (Null engine) system and
// a system with eng installed, both built from cfg, and returns both
// reports. This is the canonical overhead measurement every experiment
// uses: identical geometry, identical reference stream (src is rewound
// between runs — use a Seed-configured source, not an explicit Rand),
// engine as the only delta.
func Compare(cfg Config, eng edu.Engine, src trace.RefSource) (base, with Report, err error) {
	if r, ok := src.(interface{ Replayable() bool }); ok && !r.Replayable() {
		return base, with, fmt.Errorf(
			"soc: Compare replays %q between runs, but the source is single-pass (built from an explicit Config.Rand); configure trace.Config.Seed instead",
			src.Label())
	}
	bcfg := cfg
	bcfg.Engine = edu.Null{}
	bcfg.Verifier = nil
	bcfg.Intruder = nil
	bcfg.OnViolation = nil
	bsoc, err := New(bcfg)
	if err != nil {
		return base, with, err
	}
	base = bsoc.Run(src)

	ecfg := cfg
	ecfg.Engine = eng
	esoc, err := New(ecfg)
	if err != nil {
		return base, with, err
	}
	with = esoc.Run(src)
	return base, with, nil
}
