// Package soc composes the simulated system-on-chip of the survey's
// Figure 2c: trace-driven CPU core, on-chip cache, an encryption/
// decryption unit at one of the Figure 7 placements, the external bus
// (probe-able), and external DRAM. It produces the cycle counts from
// which every experiment's overhead figure is derived.
//
// The timing model is deterministic cycle accounting for an in-order,
// single-issue core: each trace reference contributes its compute gap,
// the cache hit time, and — on misses and write-throughs — the memory
// transfer plus whatever stall the engine adds. DESIGN.md §4 documents
// why this level of modeling preserves the survey's relative results.
package soc

import (
	"fmt"

	"repro/internal/edu"
	"repro/internal/sim/bus"
	"repro/internal/sim/cache"
	"repro/internal/sim/dram"
	"repro/internal/sim/trace"
)

// Config assembles a system.
type Config struct {
	Cache cache.Config
	Bus   bus.Config
	DRAM  dram.Config
	// CacheHitCycles is the L1 hit latency in CPU cycles.
	CacheHitCycles int
	// Engine is the bus-encryption unit; nil means edu.Null{}.
	Engine edu.Engine
}

// DefaultConfig is the reference 2005-class embedded system used across
// the experiments: 16 KiB 4-way cache with 32-byte lines, a 32-bit bus
// at half the core clock, and DefaultConfig DRAM.
func DefaultConfig() Config {
	return Config{
		Cache: cache.Config{
			Size: 16 << 10, LineSize: 32, Ways: 4,
			Policy: cache.LRU, WriteMode: cache.WriteBack,
		},
		Bus:            bus.Config{WidthBytes: 4, ClockDivider: 2, AddressCycles: 2},
		DRAM:           dram.DefaultConfig(),
		CacheHitCycles: 1,
	}
}

// Report is the outcome of one run.
type Report struct {
	EngineName   string
	Workload     string
	Cycles       uint64
	Instructions uint64 // fetch count
	Refs         uint64
	StallCycles  uint64 // cycles beyond compute + hit time
	EngineStalls uint64 // the portion attributable to the engine
	RMWEvents    uint64 // partial writes that forced read-modify-write
	Cache        cache.Stats
	BusBytes     uint64
	BusTxns      uint64
}

// CPI returns cycles per instruction.
func (r Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// OverheadVs returns the fractional slowdown of r relative to the
// baseline run base (0.25 = 25 % more cycles), the number every
// surveyed paper quotes.
func (r Report) OverheadVs(base Report) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles)/float64(base.Cycles) - 1
}

// SoC is one assembled system.
type SoC struct {
	cfg    Config
	cache  *cache.Cache
	bus    *bus.Bus
	dram   *dram.DRAM
	engine edu.Engine
	shadow map[uint64][]byte // plaintext of resident lines, for writeback data
}

// New assembles a system from cfg.
func New(cfg Config) (*SoC, error) {
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	b, err := bus.New(cfg.Bus)
	if err != nil {
		return nil, err
	}
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = edu.Null{}
	}
	if cfg.CacheHitCycles <= 0 {
		return nil, fmt.Errorf("soc: non-positive cache hit latency %d", cfg.CacheHitCycles)
	}
	if cfg.Cache.LineSize%eng.BlockBytes() != 0 {
		return nil, fmt.Errorf("soc: line size %d not a multiple of engine granule %d",
			cfg.Cache.LineSize, eng.BlockBytes())
	}
	return &SoC{
		cfg: cfg, cache: c, bus: b, dram: d, engine: eng,
		shadow: make(map[uint64][]byte),
	}, nil
}

// Bus exposes the bus for probe attachment.
func (s *SoC) Bus() *bus.Bus { return s.bus }

// DRAM exposes external memory (the attacker can dump it).
func (s *SoC) DRAM() *dram.DRAM { return s.dram }

// Engine returns the installed engine.
func (s *SoC) Engine() edu.Engine { return s.engine }

// LoadImage installs plaintext data into external memory through the
// engine, line by line — the survey's step 6: "the processor uses K and
// a symmetric algorithm to decipher the software and to install the code
// in the external memory" (installed re-ciphered under the bus engine).
func (s *SoC) LoadImage(addr uint64, data []byte) error {
	ls := s.cfg.Cache.LineSize
	if addr%uint64(ls) != 0 {
		return fmt.Errorf("soc: image base %#x not line aligned", addr)
	}
	for off := 0; off < len(data); off += ls {
		line := make([]byte, ls)
		copy(line, data[off:])
		ct := make([]byte, ls)
		s.engine.EncryptLine(addr+uint64(off), ct, line)
		s.dram.Write(addr+uint64(off), ct)
	}
	return nil
}

// ReadPlain fetches n bytes at addr through the engine (a debug/verify
// path, no timing): what the CPU would see.
func (s *SoC) ReadPlain(addr uint64, n int) []byte {
	ls := s.cfg.Cache.LineSize
	start := addr &^ uint64(ls-1)
	end := (addr + uint64(n) + uint64(ls) - 1) &^ uint64(ls-1)
	out := make([]byte, 0, end-start)
	for a := start; a < end; a += uint64(ls) {
		ct := s.dram.Read(a, ls)
		pt := make([]byte, ls)
		s.engine.DecryptLine(a, pt, ct)
		out = append(out, pt...)
	}
	off := int(addr - start)
	return out[off : off+n]
}

// lineData returns the plaintext the SoC believes lives at lineAddr,
// consulting the shadow of resident lines first.
func (s *SoC) lineData(lineAddr uint64) []byte {
	if d, ok := s.shadow[lineAddr]; ok {
		return d
	}
	ls := s.cfg.Cache.LineSize
	ct := s.dram.Read(lineAddr, ls)
	pt := make([]byte, ls)
	s.engine.DecryptLine(lineAddr, pt, ct)
	return pt
}

// transferSize asks the engine how many bytes of a line actually cross
// the bus (compressed code moves fewer — Figure 8).
func (s *SoC) transferSize(lineAddr uint64, lineBytes int) int {
	if ts, ok := s.engine.(edu.TransferSizer); ok {
		if n := ts.TransferBytes(lineAddr, lineBytes); n > 0 && n < lineBytes {
			return n
		}
	}
	return lineBytes
}

// fill performs a line fill: DRAM access, bus transfer of ciphertext,
// engine decryption. Returns total CPU cycles for the miss path.
func (s *SoC) fill(lineAddr uint64) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	dramCycles := s.dram.AccessCycles(lineAddr)
	ct := s.dram.Read(lineAddr, ls)
	busCycles := s.bus.Transfer(bus.Read, lineAddr, ct[:s.transferSize(lineAddr, ls)])
	pt := make([]byte, ls)
	s.engine.DecryptLine(lineAddr, pt, ct)
	s.shadow[lineAddr] = pt
	transfer := dramCycles + busCycles
	extra := s.engine.ReadExtraCycles(lineAddr, ls, transfer)
	return transfer + extra, extra
}

// spill writes a (dirty) line out: engine encryption, bus, DRAM.
func (s *SoC) spill(lineAddr uint64) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	pt := s.lineData(lineAddr)
	ct := make([]byte, ls)
	s.engine.EncryptLine(lineAddr, ct, pt)
	dramCycles := s.dram.AccessCycles(lineAddr)
	busCycles := s.bus.Transfer(bus.Write, lineAddr, ct[:s.transferSize(lineAddr, ls)])
	s.dram.Write(lineAddr, ct)
	extra := s.engine.WriteExtraCycles(lineAddr, ls)
	delete(s.shadow, lineAddr)
	return dramCycles + busCycles + extra, extra
}

// writeThrough costs a store of size bytes at addr going straight to
// memory. If the store granule is smaller than the engine's block, the
// survey's five-step read-decipher-modify-recipher-write sequence runs.
func (s *SoC) writeThrough(addr uint64, size int, rep *Report) (cycles, engineStall uint64) {
	bb := s.engine.BlockBytes()
	if s.engine.NeedsRMW(size) {
		rep.RMWEvents++
		blockAddr := addr &^ uint64(bb-1)
		// Read the enclosing granule...
		dramR := s.dram.AccessCycles(blockAddr)
		ct := s.dram.Read(blockAddr, bb)
		busR := s.bus.Transfer(bus.Read, blockAddr, ct)
		pt := make([]byte, bb)
		s.engine.DecryptLine(blockAddr, pt, ct)
		readExtra := s.engine.ReadExtraCycles(blockAddr, bb, dramR+busR)
		// ...modify (the store data; value irrelevant to timing)...
		pt[int(addr-blockAddr)%bb] ^= 0x5a
		// ...re-cipher and write back.
		s.engine.EncryptLine(blockAddr, ct, pt)
		writeExtra := s.engine.WriteExtraCycles(blockAddr, bb)
		dramW := s.dram.AccessCycles(blockAddr)
		busW := s.bus.Transfer(bus.Write, blockAddr, ct)
		s.dram.Write(blockAddr, ct)
		stall := readExtra + writeExtra
		return dramR + busR + dramW + busW + stall, stall
	}
	// Granule-aligned store: encrypt and write one granule.
	n := size
	if bb > n {
		n = bb
	}
	blockAddr := addr &^ uint64(bb-1)
	pt := make([]byte, n)
	ct := make([]byte, n)
	s.engine.EncryptLine(blockAddr, ct, pt)
	extra := s.engine.WriteExtraCycles(blockAddr, n)
	dramW := s.dram.AccessCycles(blockAddr)
	busW := s.bus.Transfer(bus.Write, blockAddr, ct)
	s.dram.Write(blockAddr, ct)
	return dramW + busW + extra, extra
}

// Run executes tr to completion and reports the cycle accounting.
func (s *SoC) Run(tr *trace.Trace) Report {
	rep := Report{EngineName: s.engine.Name(), Workload: tr.Name}
	hit := uint64(s.cfg.CacheHitCycles)
	perAccess := s.engine.PerAccessCycles()

	for _, ref := range tr.Refs {
		rep.Refs++
		if ref.Kind == trace.Fetch {
			rep.Instructions++
		}
		rep.Cycles += uint64(ref.Compute)

		isStore := ref.Kind == trace.Store
		res := s.cache.Access(ref.Addr, isStore)
		rep.Cycles += hit + perAccess

		if res.Writeback {
			c, e := s.spill(res.WritebackAddr)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
		if res.Fill {
			c, e := s.fill(res.FillAddr)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
		if res.Through {
			c, e := s.writeThrough(ref.Addr, int(ref.Size), &rep)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
	}

	rep.Cache = s.cache.Stats()
	rep.BusBytes = s.bus.BytesMoved
	rep.BusTxns = s.bus.Transactions
	return rep
}

// Compare runs the same workload on a baseline (Null engine) system and
// a system with eng installed, both built from cfg, and returns both
// reports. This is the canonical overhead measurement every experiment
// uses: identical geometry, identical trace, engine as the only delta.
func Compare(cfg Config, eng edu.Engine, tr *trace.Trace) (base, with Report, err error) {
	bcfg := cfg
	bcfg.Engine = edu.Null{}
	bsoc, err := New(bcfg)
	if err != nil {
		return base, with, err
	}
	base = bsoc.Run(tr)

	ecfg := cfg
	ecfg.Engine = eng
	esoc, err := New(ecfg)
	if err != nil {
		return base, with, err
	}
	with = esoc.Run(tr)
	return base, with, nil
}
