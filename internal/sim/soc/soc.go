// Package soc composes the simulated system-on-chip of the survey's
// Figure 2c: trace-driven CPU core, on-chip cache, an encryption/
// decryption unit at one of the Figure 7 placements, the external bus
// (probe-able), and external DRAM. It produces the cycle counts from
// which every experiment's overhead figure is derived.
//
// The timing model is deterministic cycle accounting for an in-order,
// single-issue core: each trace reference contributes its compute gap,
// the cache hit time, and — on misses and write-throughs — the memory
// transfer plus whatever stall the engine adds. DESIGN.md §4 documents
// why this level of modeling preserves the survey's relative results.
package soc

import (
	"fmt"

	"repro/internal/edu"
	"repro/internal/sim/bus"
	"repro/internal/sim/cache"
	"repro/internal/sim/dram"
	"repro/internal/sim/trace"
)

// Config assembles a system.
type Config struct {
	Cache cache.Config
	Bus   bus.Config
	DRAM  dram.Config
	// CacheHitCycles is the L1 hit latency in CPU cycles.
	CacheHitCycles int
	// Engine is the bus-encryption unit; nil means edu.Null{}.
	Engine edu.Engine
	// Verifier is the memory authenticator (sim/authtree, or any
	// edu.Verifier); nil means no integrity checking. It is driven on
	// the same miss/writeback traffic as the engine but independently
	// of it, so any confidentiality engine composes with any
	// authenticator.
	Verifier edu.Verifier
	// ViolationCycles is the security-exception cost charged per
	// detected verification failure (trap entry and the fail-stop
	// decision path) before the line is zeroed. Only meaningful with a
	// Verifier installed.
	ViolationCycles int
	// Intruder, when non-nil, is invoked before every reference with
	// the running reference index: the active adversary tampering with
	// external state mid-run (internal/attack.Schedule).
	Intruder Intruder
	// OnViolation, when non-nil, observes each detected tamper: the
	// reference index at which verification failed and the line
	// address. The attack schedule uses it to measure detection
	// latency.
	OnViolation func(refIndex, lineAddr uint64)
	// SkipFinalFlush disables the end-of-run drain of dirty cache
	// lines. The default (false) spills every dirty line when Run
	// finishes and folds the cycles into the report, so writeback
	// traffic is fully accounted; Compare flushes both systems, keeping
	// the overhead comparison apples-to-apples.
	SkipFinalFlush bool
}

// Intruder is an active adversary with write access to external state
// (DRAM contents, external tag stores) during a run — the attack model
// of the survey's §2.3 extended to modification. Strike is called once
// per reference, before the reference is processed; implementations
// tamper via s.DRAM() and the engine/verifier tag stores, never via
// timing-bearing paths.
type Intruder interface {
	Strike(refIndex uint64, ref trace.Ref, s *SoC)
}

// DefaultConfig is the reference 2005-class embedded system used across
// the experiments: 16 KiB 4-way cache with 32-byte lines, a 32-bit bus
// at half the core clock, and DefaultConfig DRAM.
func DefaultConfig() Config {
	return Config{
		Cache: cache.Config{
			Size: 16 << 10, LineSize: 32, Ways: 4,
			Policy: cache.LRU, WriteMode: cache.WriteBack,
		},
		Bus:             bus.Config{WidthBytes: 4, ClockDivider: 2, AddressCycles: 2},
		DRAM:            dram.DefaultConfig(),
		CacheHitCycles:  1,
		ViolationCycles: 100,
	}
}

// Report is the outcome of one run.
type Report struct {
	EngineName   string
	Workload     string
	Cycles       uint64
	Instructions uint64 // fetch count
	Refs         uint64
	StallCycles  uint64 // cycles beyond compute + hit time
	EngineStalls uint64 // the portion attributable to the engine
	RMWEvents    uint64 // partial writes that forced read-modify-write
	FlushedLines uint64 // dirty lines drained at end of run (spill cycles included in Cycles)
	// AuthStalls is the verifier-side portion of StallCycles: tag
	// computation, tree walks, node fetches, violation traps.
	AuthStalls uint64
	// AuthViolations counts fail-stop events: every failed line
	// verification (zeroed line + trap charge). A tampered line that is
	// never repaired re-triggers on each refill, so this can exceed the
	// number of distinct tampers — real fail-stop hardware would halt
	// at the first event; the simulation keeps running and charges each
	// one. Distinct-tamper detection counts live in the attack
	// schedule (internal/attack.Schedule.Detected).
	AuthViolations uint64
	Cache          cache.Stats
	BusBytes       uint64
	BusTxns        uint64
}

// CPI returns cycles per instruction.
func (r Report) CPI() float64 {
	if r.Instructions == 0 {
		return 0
	}
	return float64(r.Cycles) / float64(r.Instructions)
}

// OverheadVs returns the fractional slowdown of r relative to the
// baseline run base (0.25 = 25 % more cycles), the number every
// surveyed paper quotes.
func (r Report) OverheadVs(base Report) float64 {
	if base.Cycles == 0 {
		return 0
	}
	return float64(r.Cycles)/float64(base.Cycles) - 1
}

// SoC is one assembled system.
type SoC struct {
	cfg      Config
	cache    *cache.Cache
	bus      *bus.Bus
	dram     *dram.DRAM
	engine   edu.Engine
	verifier edu.Verifier
	// curRef is the index of the reference Run is processing, for
	// violation timestamps (detection-latency measurement).
	curRef uint64
	// shadow holds the plaintext of every resident cache line in a flat
	// arena indexed by the cache's line slot (cache.Result.Slot), so its
	// footprint is exactly the cache capacity and entries are recycled
	// in lockstep with evictions — clean or dirty. It exists because the
	// cache is a timing/state model without a data store, but writebacks
	// must put real (enciphered) bytes on the probed bus.
	shadow []byte
	// Preallocated scratch so the per-reference hot path never
	// allocates: inbound ciphertext, outbound ciphertext, and a line of
	// plaintext for non-resident write-through rewrites.
	ctIn, ctOut, ptBuf []byte
	flushBuf           []cache.DirtyLine
}

// New assembles a system from cfg.
func New(cfg Config) (*SoC, error) {
	c, err := cache.New(cfg.Cache)
	if err != nil {
		return nil, err
	}
	b, err := bus.New(cfg.Bus)
	if err != nil {
		return nil, err
	}
	d, err := dram.New(cfg.DRAM)
	if err != nil {
		return nil, err
	}
	eng := cfg.Engine
	if eng == nil {
		eng = edu.Null{}
	}
	if cfg.CacheHitCycles <= 0 {
		return nil, fmt.Errorf("soc: non-positive cache hit latency %d", cfg.CacheHitCycles)
	}
	if cfg.ViolationCycles < 0 {
		return nil, fmt.Errorf("soc: negative violation cost %d", cfg.ViolationCycles)
	}
	if cfg.Cache.LineSize%eng.BlockBytes() != 0 {
		return nil, fmt.Errorf("soc: line size %d not a multiple of engine granule %d",
			cfg.Cache.LineSize, eng.BlockBytes())
	}
	ls := cfg.Cache.LineSize
	return &SoC{
		cfg: cfg, cache: c, bus: b, dram: d, engine: eng, verifier: cfg.Verifier,
		shadow: make([]byte, c.Lines()*ls),
		ctIn:   make([]byte, ls),
		ctOut:  make([]byte, ls),
		ptBuf:  make([]byte, ls),
	}, nil
}

// ShadowBytes reports the size of the resident-line plaintext store —
// fixed at cache capacity by construction (the regression guard for the
// old unbounded shadow map, which grew with every clean eviction).
func (s *SoC) ShadowBytes() int { return len(s.shadow) }

// slotData returns the shadow plaintext for a cache slot.
func (s *SoC) slotData(slot int) []byte {
	ls := s.cfg.Cache.LineSize
	return s.shadow[slot*ls : (slot+1)*ls]
}

// Bus exposes the bus for probe attachment.
func (s *SoC) Bus() *bus.Bus { return s.bus }

// Cache exposes the on-chip cache. The attack model reads residency
// from it: a probe attacker reconstructs cache contents from the
// fill/eviction traffic it watches.
func (s *SoC) Cache() *cache.Cache { return s.cache }

// DRAM exposes external memory (the attacker can dump it).
func (s *SoC) DRAM() *dram.DRAM { return s.dram }

// Engine returns the installed engine.
func (s *SoC) Engine() edu.Engine { return s.engine }

// Verifier returns the installed memory authenticator (nil if none).
func (s *SoC) Verifier() edu.Verifier { return s.verifier }

// LoadImage installs plaintext data into external memory through the
// engine, line by line — the survey's step 6: "the processor uses K and
// a symmetric algorithm to decipher the software and to install the code
// in the external memory" (installed re-ciphered under the bus engine).
func (s *SoC) LoadImage(addr uint64, data []byte) error {
	ls := s.cfg.Cache.LineSize
	if addr%uint64(ls) != 0 {
		return fmt.Errorf("soc: image base %#x not line aligned", addr)
	}
	for off := 0; off < len(data); off += ls {
		line := make([]byte, ls)
		copy(line, data[off:])
		ct := make([]byte, ls)
		s.engine.EncryptLine(addr+uint64(off), ct, line)
		s.dram.Write(addr+uint64(off), ct)
		if s.verifier != nil {
			// Enrollment: the image install is the boot-time write that
			// brings each line under authentication (no timing — this is
			// the survey's step 6, outside the measured run).
			s.verifier.UpdateWrite(addr+uint64(off), ct)
		}
	}
	return nil
}

// ReadPlain fetches n bytes at addr through the engine (a debug/verify
// path, no timing): what the CPU would see.
func (s *SoC) ReadPlain(addr uint64, n int) []byte {
	ls := s.cfg.Cache.LineSize
	start := addr &^ uint64(ls-1)
	end := (addr + uint64(n) + uint64(ls) - 1) &^ uint64(ls-1)
	out := make([]byte, 0, end-start)
	for a := start; a < end; a += uint64(ls) {
		ct := s.dram.Read(a, ls)
		pt := make([]byte, ls)
		s.engine.DecryptLine(a, pt, ct)
		if s.verifier != nil {
			if _, ok := s.verifier.VerifyRead(a, ct); !ok {
				clear(pt) // fail-stop: the CPU never sees tampered data
			}
		}
		out = append(out, pt...)
	}
	off := int(addr - start)
	return out[off : off+n]
}

// transferSize asks the engine how many bytes of a line actually cross
// the bus (compressed code moves fewer — Figure 8).
func (s *SoC) transferSize(lineAddr uint64, lineBytes int) int {
	if ts, ok := s.engine.(edu.TransferSizer); ok {
		if n := ts.TransferBytes(lineAddr, lineBytes); n > 0 && n < lineBytes {
			return n
		}
	}
	return lineBytes
}

// fill performs a line fill into shadow slot: DRAM access, bus transfer
// of ciphertext, engine decryption, and — with a verifier installed —
// read verification of the inbound ciphertext. Returns total CPU cycles
// for the miss path. Allocation-free: scratch buffers and the slot
// arena are preallocated.
func (s *SoC) fill(lineAddr uint64, slot int, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	dramCycles := s.dram.AccessCycles(lineAddr)
	s.dram.ReadInto(lineAddr, s.ctIn)
	busCycles := s.bus.Transfer(bus.Read, lineAddr, s.ctIn[:s.transferSize(lineAddr, ls)])
	s.engine.DecryptLine(lineAddr, s.slotData(slot), s.ctIn)
	transfer := dramCycles + busCycles
	extra := s.engine.ReadExtraCycles(lineAddr, ls, transfer)
	cycles = transfer + extra
	if s.verifier != nil {
		cycles += s.verifyInbound(lineAddr, s.slotData(slot), rep)
	}
	return cycles, extra
}

// verifyInbound authenticates the ciphertext sitting in ctIn for the
// line at lineAddr and applies the fail-stop response to pt on a
// detected tamper: zero the plaintext, charge the violation trap,
// count it, and notify the observer. Returns the verifier-side cycles.
func (s *SoC) verifyInbound(lineAddr uint64, pt []byte, rep *Report) uint64 {
	stall, ok := s.verifier.VerifyRead(lineAddr, s.ctIn)
	rep.AuthStalls += stall
	if !ok {
		stall += uint64(s.cfg.ViolationCycles)
		rep.AuthStalls += uint64(s.cfg.ViolationCycles)
		rep.AuthViolations++
		clear(pt)
		if s.cfg.OnViolation != nil {
			s.cfg.OnViolation(s.curRef, lineAddr)
		}
	}
	return stall
}

// spill writes a dirty line's plaintext pt out: engine encryption, bus,
// DRAM, and the verifier's write-update (retag plus tree propagation).
// The caller owns pt (normally the victim's shadow slot, read before
// the subsequent fill overwrites it).
func (s *SoC) spill(lineAddr uint64, pt []byte, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	s.engine.EncryptLine(lineAddr, s.ctOut, pt)
	dramCycles := s.dram.AccessCycles(lineAddr)
	busCycles := s.bus.Transfer(bus.Write, lineAddr, s.ctOut[:s.transferSize(lineAddr, ls)])
	s.dram.Write(lineAddr, s.ctOut)
	extra := s.engine.WriteExtraCycles(lineAddr, ls)
	cycles = dramCycles + busCycles + extra + s.updateOutbound(lineAddr, rep)
	return cycles, extra
}

// writeThrough costs a store of size bytes at addr going straight to
// memory. If the store granule is smaller than the engine's block, the
// survey's five-step read-decipher-modify-recipher-write sequence runs.
//
// Timing is granule-accurate (the survey's §2.2 sequence); the data
// path operates on the whole enclosing line so DRAM always holds the
// per-line ciphertext layout LoadImage installed and ReadPlain expects
// — re-enciphering a lone granule under a chained or address-bound mode
// would clobber real memory contents. Stores carry no data in this
// model, so the line's plaintext is written back unchanged (counter
// modes still advance, so the ciphertext may legitimately differ).
// hitSlot is the resident line's shadow slot, or -1 on a no-allocate
// write miss (the plaintext is then recovered from DRAM).
func (s *SoC) writeThrough(addr uint64, size, hitSlot int, rep *Report) (cycles, engineStall uint64) {
	ls := s.cfg.Cache.LineSize
	bb := s.engine.BlockBytes()
	lineAddr := addr &^ uint64(ls-1)

	// Data path: the line's actual plaintext, then a full-line recipher.
	// The current DRAM ciphertext is only needed to recover a
	// non-resident line's plaintext or to put the RMW granule read on
	// the bus.
	needRMW := s.engine.NeedsRMW(size)
	if hitSlot < 0 || needRMW {
		s.dram.ReadInto(lineAddr, s.ctIn)
	}
	var authStall uint64
	pt := s.ptBuf
	if hitSlot >= 0 {
		pt = s.slotData(hitSlot)
	} else {
		s.engine.DecryptLine(lineAddr, pt, s.ctIn)
		if s.verifier != nil {
			// The recovered line comes from tamperable memory: verify it
			// before its plaintext feeds the rewrite.
			authStall += s.verifyInbound(lineAddr, pt, rep)
		}
	}
	s.engine.EncryptLine(lineAddr, s.ctOut, pt)

	if needRMW {
		rep.RMWEvents++
		blockAddr := addr &^ uint64(bb-1)
		gOff := int(blockAddr - lineAddr)
		// Read the enclosing granule...
		dramR := s.dram.AccessCycles(blockAddr)
		busR := s.bus.Transfer(bus.Read, blockAddr, s.ctIn[gOff:gOff+bb])
		readExtra := s.engine.ReadExtraCycles(blockAddr, bb, dramR+busR)
		// ...decipher, modify, re-cipher (performed line-wide above; the
		// store's value is irrelevant to timing)...
		writeExtra := s.engine.WriteExtraCycles(blockAddr, bb)
		// ...and write back.
		dramW := s.dram.AccessCycles(blockAddr)
		busW := s.bus.Transfer(bus.Write, blockAddr, s.ctOut[gOff:gOff+bb])
		s.dram.Write(lineAddr, s.ctOut)
		authStall += s.updateOutbound(lineAddr, rep)
		stall := readExtra + writeExtra
		return dramR + busR + dramW + busW + stall + authStall, stall
	}
	// Granule-aligned store: encrypt and write one granule.
	n := size
	if bb > n {
		n = bb
	}
	blockAddr := addr &^ uint64(bb-1)
	gOff := int(blockAddr - lineAddr)
	if gOff+n > ls {
		n = ls - gOff // clamp to the line (stores never straddle lines)
	}
	extra := s.engine.WriteExtraCycles(blockAddr, n)
	dramW := s.dram.AccessCycles(blockAddr)
	busW := s.bus.Transfer(bus.Write, blockAddr, s.ctOut[gOff:gOff+n])
	s.dram.Write(lineAddr, s.ctOut)
	authStall += s.updateOutbound(lineAddr, rep)
	return dramW + busW + extra + authStall, extra
}

// updateOutbound runs the verifier's write-update for the line just
// written to DRAM (sitting in ctOut), returning its cycle cost.
func (s *SoC) updateOutbound(lineAddr uint64, rep *Report) uint64 {
	if s.verifier == nil {
		return 0
	}
	us := s.verifier.UpdateWrite(lineAddr, s.ctOut)
	rep.AuthStalls += us
	return us
}

// Run consumes src to completion and reports the cycle accounting. The
// source is rewound first (Run measures whole workloads), and the hot
// loop performs zero heap allocations per reference — trace length is
// bounded by time, not memory.
func (s *SoC) Run(src trace.RefSource) Report {
	src.Reset()
	rep := Report{EngineName: s.engine.Name(), Workload: src.Label()}
	hit := uint64(s.cfg.CacheHitCycles)
	perAccess := s.engine.PerAccessCycles()

	for {
		ref, ok := src.Next()
		if !ok {
			break
		}
		if s.cfg.Intruder != nil {
			s.cfg.Intruder.Strike(rep.Refs, ref, s)
		}
		s.curRef = rep.Refs
		rep.Refs++
		if ref.Kind == trace.Fetch {
			rep.Instructions++
		}
		rep.Cycles += uint64(ref.Compute)

		isStore := ref.Kind == trace.Store
		res := s.cache.Access(ref.Addr, isStore)
		rep.Cycles += hit + perAccess

		if res.Writeback {
			// The victim's plaintext lives in the fill slot until the
			// fill below overwrites it.
			c, e := s.spill(res.WritebackAddr, s.slotData(res.Slot), &rep)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
		if res.Fill {
			c, e := s.fill(res.FillAddr, res.Slot, &rep)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
		if res.Through {
			hitSlot := -1
			if res.Hit {
				hitSlot = res.Slot
			}
			c, e := s.writeThrough(ref.Addr, int(ref.Size), hitSlot, &rep)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
		}
	}

	if !s.cfg.SkipFinalFlush {
		s.flushBuf = s.cache.FlushDirty(s.flushBuf[:0])
		for _, d := range s.flushBuf {
			c, e := s.spill(d.Addr, s.slotData(d.Slot), &rep)
			rep.Cycles += c
			rep.StallCycles += c
			rep.EngineStalls += e
			rep.FlushedLines++
		}
	}

	rep.Cache = s.cache.Stats()
	rep.BusBytes = s.bus.BytesMoved
	rep.BusTxns = s.bus.Transactions
	return rep
}

// Compare runs the same workload on a baseline (Null engine) system and
// a system with eng installed, both built from cfg, and returns both
// reports. This is the canonical overhead measurement every experiment
// uses: identical geometry, identical reference stream (src is rewound
// between runs — use a Seed-configured source, not an explicit Rand),
// engine as the only delta.
func Compare(cfg Config, eng edu.Engine, src trace.RefSource) (base, with Report, err error) {
	bcfg := cfg
	bcfg.Engine = edu.Null{}
	bcfg.Verifier = nil
	bcfg.Intruder = nil
	bcfg.OnViolation = nil
	bsoc, err := New(bcfg)
	if err != nil {
		return base, with, err
	}
	base = bsoc.Run(src)

	ecfg := cfg
	ecfg.Engine = eng
	esoc, err := New(ecfg)
	if err != nil {
		return base, with, err
	}
	with = esoc.Run(src)
	return base, with, nil
}
