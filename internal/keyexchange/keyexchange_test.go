package keyexchange

import (
	"bytes"
	"testing"
)

// passiveSpy records everything crossing the channel.
type passiveSpy struct {
	messages []Message
}

func (s *passiveSpy) Intercept(m Message) { s.messages = append(s.messages, m) }

func (s *passiveSpy) allBytes() []byte {
	var out []byte
	for _, m := range s.messages {
		out = append(out, m.Body...)
	}
	return out
}

const rsaBits = 512

func software() []byte {
	return bytes.Repeat([]byte("PROPRIETARY GAME ENGINE CODE ++ "), 8)
}

func TestProtocolDeliversSoftware(t *testing.T) {
	ch := &Channel{}
	m := NewManufacturer(1, rsaBits)
	p, err := m.Provision("SN-001")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEditor(2, software())
	got, err := Run(ch, m, e, p)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, software()) {
		t.Fatal("processor installed different software")
	}
}

// The heart of Figure 1: an eavesdropper on the open channel sees all
// five message kinds yet never the session key or the plaintext software.
func TestEavesdropperLearnsNothingUsable(t *testing.T) {
	ch := &Channel{}
	spy := &passiveSpy{}
	ch.Tap(spy)

	m := NewManufacturer(3, rsaBits)
	p, err := m.Provision("SN-002")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEditor(4, software())
	if _, err := Run(ch, m, e, p); err != nil {
		t.Fatal(err)
	}

	captured := spy.allBytes()
	if bytes.Contains(captured, software()[:16]) {
		t.Error("plaintext software crossed the open channel")
	}
	if bytes.Contains(captured, p.sessionKey) {
		t.Error("session key crossed the open channel in clear")
	}
	// But the protocol is not hiding its existence: the spy does see
	// traffic of each kind.
	kinds := map[string]bool{}
	for _, msg := range spy.messages {
		kinds[msg.Kind] = true
	}
	for _, k := range []string{"key-request", "pubkey", "wrapped-key", "software"} {
		if !kinds[k] {
			t.Errorf("expected to observe %q traffic", k)
		}
	}
}

// A second processor (different Dm) cannot unwrap the session key.
func TestWrongProcessorCannotInstall(t *testing.T) {
	ch := &Channel{}
	m := NewManufacturer(5, rsaBits)
	legit, err := m.Provision("SN-003")
	if err != nil {
		t.Fatal(err)
	}
	thief, err := m.Provision("SN-EVIL")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEditor(6, software())
	if _, err := Run(ch, m, e, legit); err != nil {
		t.Fatal(err)
	}

	// The thief replays the channel log into its own Receive.
	var thiefErr error
	for _, msg := range ch.Log() {
		if msg.To == "processor" {
			if err := thief.Receive(msg); err != nil {
				thiefErr = err
			}
		}
	}
	if thiefErr == nil && bytes.Equal(thief.Installed(), software()) {
		t.Fatal("a different processor recovered the software")
	}
}

func TestProtocolOrderEnforced(t *testing.T) {
	m := NewManufacturer(7, rsaBits)
	p, _ := m.Provision("SN-004")
	err := p.Receive(Message{Kind: "software", Body: []byte("ciphertext")})
	if err == nil {
		t.Error("software accepted before session key")
	}
}

func TestUnknownSerialRejected(t *testing.T) {
	m := NewManufacturer(8, rsaBits)
	if _, err := m.PublicKey(&Channel{}, "SN-MISSING"); err == nil {
		t.Error("unknown serial answered")
	}
}

func TestIrrelevantMessagesIgnored(t *testing.T) {
	m := NewManufacturer(9, rsaBits)
	p, _ := m.Provision("SN-005")
	if err := p.Receive(Message{Kind: "key-request"}); err != nil {
		t.Errorf("irrelevant message errored: %v", err)
	}
}

func TestChannelLogIsComplete(t *testing.T) {
	ch := &Channel{}
	m := NewManufacturer(10, rsaBits)
	p, _ := m.Provision("SN-006")
	e := NewEditor(11, software())
	if _, err := Run(ch, m, e, p); err != nil {
		t.Fatal(err)
	}
	if len(ch.Log()) != 4 {
		t.Errorf("channel log has %d messages, want 4", len(ch.Log()))
	}
}
