// Package keyexchange implements the survey's Figure 1 protocol: secret
// key exchange over a non-secure transmission channel, the six steps by
// which a software editor delivers ciphered software that only one
// "secure" processor can install:
//
//  1. The chip manufacturer provisions a private key Dm inside the
//     processor's non-volatile memory and publishes Em.
//  2. The processor requests the session key K from the editor.
//  3. The editor obtains Em from the manufacturer over the open channel.
//  4. The editor sends K enciphered under Em over the open channel.
//  5. Only the processor can decipher K with Dm.
//  6. The processor uses K (symmetric) to decipher the software and
//     installs it in external memory (re-ciphered by its bus engine).
//
// Every message crosses a Channel that any number of eavesdroppers tap;
// the tests and example verify the eavesdropper ends with nothing usable
// while the processor recovers the exact software image.
package keyexchange

import (
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/crypto/aes"
	"repro/internal/crypto/modes"
	"repro/internal/crypto/rsa"
)

// SessionKeyBytes is the symmetric session key size (AES-128).
const SessionKeyBytes = 16

// Message is one transmission on the open channel.
type Message struct {
	From, To string
	Kind     string // "pubkey-request", "pubkey", "key-request", "wrapped-key", "software"
	Body     []byte
}

// Eavesdropper sees every message on the channel.
type Eavesdropper interface {
	Intercept(Message)
}

// Channel is the non-secure transmission channel of Figure 1: it
// delivers faithfully but privately to no one.
type Channel struct {
	taps []Eavesdropper
	log  []Message
}

// Tap attaches an eavesdropper.
func (c *Channel) Tap(e Eavesdropper) { c.taps = append(c.taps, e) }

// Send transmits msg, copying it to every tap.
func (c *Channel) Send(msg Message) Message {
	c.log = append(c.log, msg)
	for _, t := range c.taps {
		t.Intercept(msg)
	}
	return msg
}

// Log returns all traffic so far (the channel is public, after all).
func (c *Channel) Log() []Message { return c.log }

// Manufacturer is the chip maker: it provisions processors and answers
// public-key requests (step 3).
type Manufacturer struct {
	keys map[string]*rsa.PrivateKey // serial -> keypair
	rng  *rand.Rand
	bits int
}

// NewManufacturer creates a manufacturer with its key-generation RNG.
func NewManufacturer(seed int64, rsaBits int) *Manufacturer {
	return &Manufacturer{keys: make(map[string]*rsa.PrivateKey), rng: rand.New(rand.NewSource(seed)), bits: rsaBits}
}

// Provision fabricates a processor with serial and a fresh keypair; Dm
// goes into the part's non-volatile memory (step 1).
func (m *Manufacturer) Provision(serial string) (*Processor, error) {
	key, err := rsa.GenerateKey(m.rng, m.bits)
	if err != nil {
		return nil, fmt.Errorf("keyexchange: provisioning %s: %w", serial, err)
	}
	m.keys[serial] = key
	return &Processor{Serial: serial, dm: key}, nil
}

// PublicKey answers an editor's request for Em over ch (step 3). The
// response travels in the clear — Em is public by design.
func (m *Manufacturer) PublicKey(ch *Channel, serial string) (*rsa.PublicKey, error) {
	key, ok := m.keys[serial]
	if !ok {
		return nil, fmt.Errorf("keyexchange: unknown serial %q", serial)
	}
	ch.Send(Message{From: "manufacturer", To: "editor", Kind: "pubkey",
		Body: append(key.N.Bytes(), key.E.Bytes()...)})
	return &key.PublicKey, nil
}

// Editor is the software editor: it owns plaintext software and a
// session key, and ships both protected (steps 2, 4).
type Editor struct {
	rng      *rand.Rand
	software []byte
}

// NewEditor creates an editor owning the given software image.
func NewEditor(seed int64, software []byte) *Editor {
	return &Editor{rng: rand.New(rand.NewSource(seed)), software: software}
}

// Deliver runs the editor's side: draw a session key K, wrap it under
// Em, send it (step 4), then send the software ciphered under K. The
// software cipher is AES-CTR keyed by K (a symmetric algorithm of the
// editor's choosing, per §2.1).
func (e *Editor) Deliver(ch *Channel, em *rsa.PublicKey) error {
	k := make([]byte, SessionKeyBytes)
	e.rng.Read(k)

	wrapped, err := rsa.Encrypt(e.rng, em, k)
	if err != nil {
		return fmt.Errorf("keyexchange: wrapping K: %w", err)
	}
	ch.Send(Message{From: "editor", To: "processor", Kind: "wrapped-key", Body: wrapped})

	blk, err := aes.New(k)
	if err != nil {
		return err
	}
	ct := make([]byte, len(e.software))
	modes.NewCTR(blk, 0).XOR(ct, e.software, 0)
	ch.Send(Message{From: "editor", To: "processor", Kind: "software", Body: ct})
	return nil
}

// Processor is the secure SoC: Dm in non-volatile memory, and an
// install target for the deciphered software (steps 5–6).
type Processor struct {
	Serial string
	dm     *rsa.PrivateKey

	sessionKey []byte
	installed  []byte
}

// RequestKey emits the processor's session-key request (step 2).
func (p *Processor) RequestKey(ch *Channel) {
	ch.Send(Message{From: "processor", To: "editor", Kind: "key-request", Body: []byte(p.Serial)})
}

// Receive processes a delivery message addressed to the processor,
// unwrapping K with Dm (step 5) and deciphering software with K (step 6).
func (p *Processor) Receive(msg Message) error {
	switch msg.Kind {
	case "wrapped-key":
		k, err := rsa.Decrypt(p.dm, msg.Body)
		if err != nil {
			return fmt.Errorf("keyexchange: unwrapping K: %w", err)
		}
		if len(k) != SessionKeyBytes {
			return errors.New("keyexchange: session key has wrong length")
		}
		p.sessionKey = k
		return nil
	case "software":
		if p.sessionKey == nil {
			return errors.New("keyexchange: software before session key")
		}
		blk, err := aes.New(p.sessionKey)
		if err != nil {
			return err
		}
		p.installed = make([]byte, len(msg.Body))
		modes.NewCTR(blk, 0).XOR(p.installed, msg.Body, 0)
		return nil
	default:
		return nil // requests and pubkeys are not for us to act on
	}
}

// Installed returns the deciphered software image (nil before step 6).
func (p *Processor) Installed() []byte { return p.installed }

// Run executes the full Figure 1 protocol between the parties over ch
// and returns the processor's installed image.
func Run(ch *Channel, m *Manufacturer, e *Editor, p *Processor) ([]byte, error) {
	p.RequestKey(ch) // step 2
	em, err := m.PublicKey(ch, p.Serial)
	if err != nil { // step 3
		return nil, err
	}
	if err := e.Deliver(ch, em); err != nil { // step 4
		return nil, err
	}
	// Steps 5 and 6: the processor consumes its deliveries off the
	// channel log (the transport is public; addressing is cosmetic).
	for _, msg := range ch.Log() {
		if msg.To == "processor" {
			if err := p.Receive(msg); err != nil {
				return nil, err
			}
		}
	}
	if p.Installed() == nil {
		return nil, errors.New("keyexchange: protocol completed without installing software")
	}
	return p.Installed(), nil
}
