package core

// System-level integration tests: invariants that must hold for EVERY
// surveyed engine when composed with the full SoC — the properties the
// unit tests check per module, re-verified through the public path
// (LoadImage → Run → probe/DRAM/ReadPlain).

import (
	"bytes"
	"testing"

	"repro/internal/attack"
	"repro/internal/edu"
	"repro/internal/edu/integrity"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// secretImage is deliberately repetitive: worst case for leak hiding.
func secretImage() []byte {
	return bytes.Repeat([]byte("CONFIDENTIAL CODE SEGMENT 0x00! "), 64)
}

// buildWith installs the image at 0 on a system with eng.
func buildWith(t *testing.T, eng edu.Engine) *soc.SoC {
	t.Helper()
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LoadImage(0, secretImage()); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEverySurveyedEngineHidesTheImage is the repository's headline
// invariant: for each catalogued engine, neither the bus probe nor a
// DRAM dump reveals installed plaintext, while the CPU-side view is
// intact.
func TestEverySurveyedEngineHidesTheImage(t *testing.T) {
	img := secretImage()
	for _, entry := range Survey() {
		entry := entry
		t.Run(entry.Key, func(t *testing.T) {
			eng, err := entry.Build()
			if err != nil {
				t.Fatal(err)
			}
			s := buildWith(t, eng)

			// CPU-side view intact.
			if got := s.ReadPlain(0, len(img)); !bytes.Equal(got, img) {
				t.Fatal("CPU-side view corrupted")
			}
			// DRAM image is ciphertext.
			if bytes.Contains(s.DRAM().Dump(0, len(img)), img[:16]) {
				t.Fatal("plaintext in external memory")
			}
			// Probe capture during a code sweep is ciphertext.
			probe := &attack.Probe{}
			s.Bus().Attach(probe)
			var refs []trace.Ref
			for a := uint64(0); a < uint64(len(img)); a += 32 {
				refs = append(refs, trace.Ref{Kind: trace.Fetch, Addr: a, Size: 4})
			}
			s.Run(&trace.Trace{Name: "sweep", Refs: refs})
			if probe.ContainsPlaintext(img[:16]) {
				t.Fatal("plaintext on the bus")
			}
		})
	}
}

// TestEnginesDoNotPerturbCacheBehaviour: the EDU sits outside the cache,
// so hit/miss streams must be identical with and without it.
func TestEnginesDoNotPerturbCacheBehaviour(t *testing.T) {
	tr := trace.Sequential(trace.Config{Refs: 20000, Seed: 33, LoadFraction: 0.4, WriteFraction: 0.3, Locality: 0.6})
	var baseline *soc.Report
	for _, entry := range Survey() {
		eng, err := entry.Build()
		if err != nil {
			t.Fatal(err)
		}
		base, with, err := soc.Compare(soc.DefaultConfig(), eng, tr)
		if err != nil {
			t.Fatal(err)
		}
		if baseline == nil {
			baseline = &base
		}
		if with.Cache.Misses != baseline.Cache.Misses || with.Cache.Hits != baseline.Cache.Hits {
			t.Errorf("%s: cache behaviour differs (misses %d vs %d)",
				entry.Key, with.Cache.Misses, baseline.Cache.Misses)
		}
		if with.Cycles < base.Cycles {
			t.Errorf("%s: encryption made the system FASTER (%d < %d)", entry.Key, with.Cycles, base.Cycles)
		}
	}
}

// TestRunsAreDeterministic: identical configurations and traces produce
// identical cycle counts — the property every experiment leans on.
func TestRunsAreDeterministic(t *testing.T) {
	tr := trace.PointerChase(trace.Config{Refs: 10000, Seed: 44})
	for _, key := range []string{"aegis", "gi", "gilmont"} {
		runOnce := func() uint64 {
			eng, err := MustEntry(key).Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg := soc.DefaultConfig()
			cfg.Engine = eng
			s, err := soc.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			return s.Run(tr).Cycles
		}
		if a, b := runOnce(), runOnce(); a != b {
			t.Errorf("%s: nondeterministic runs (%d vs %d)", key, a, b)
		}
	}
}

// TestGilmontLeavesDataInClear: the survey's explicit caveat about [3] —
// static code ciphering only — must be visible on the simulated bus.
func TestGilmontLeavesDataInClear(t *testing.T) {
	eng, err := MustEntry("gilmont").Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	s, err := soc.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	secretData := bytes.Repeat([]byte("USER PRIVATE DATA RECORD 00001! "), 4)
	dataBase := uint64(CodeLimit) + 0x1000
	if err := s.LoadImage(dataBase, secretData); err != nil {
		t.Fatal(err)
	}
	// Data region: external memory holds it in clear.
	if !bytes.Contains(s.DRAM().Dump(dataBase, len(secretData)), secretData[:16]) {
		t.Error("gilmont should leave the data region unprotected (the survey's caveat)")
	}
	// Code region: protected.
	code := bytes.Repeat([]byte("CODE!CODE!CODE!CODE!CODE!CODE!!!"), 4)
	if err := s.LoadImage(0, code); err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(s.DRAM().Dump(0, len(code)), code[:16]) {
		t.Error("gilmont failed to protect the code region")
	}
}

// TestIntegrityWrapperComposesWithSurveyEngines: the future-work wrapper
// must compose with any catalogued engine and keep the system sound.
func TestIntegrityWrapperComposesWithSurveyEngines(t *testing.T) {
	img := secretImage()
	for _, key := range []string{"xom", "aegis", "ds5240"} {
		inner, err := MustEntry(key).Build()
		if err != nil {
			t.Fatal(err)
		}
		wrapped, err := integrity.New(integrity.Config{
			Inner: inner, MACKey: []byte("compose-key"),
			Level: integrity.MACWithFreshness, ProtectedLines: 1 << 14,
		})
		if err != nil {
			t.Fatal(err)
		}
		s := buildWith(t, wrapped)
		if got := s.ReadPlain(0, len(img)); !bytes.Equal(got, img) {
			t.Errorf("%s+integrity: CPU view corrupted", key)
		}
		// Tamper, then verify fail-stop through the system path.
		out := attack.Spoof(s, 0x40, bytes.Repeat([]byte{0xAB}, 32))
		if out.Accepted {
			t.Errorf("%s+integrity: spoof accepted", key)
		}
		if wrapped.Violations == 0 {
			t.Errorf("%s+integrity: violation not recorded", key)
		}
	}
}

// TestWorkloadScalingSanity: doubling the trace roughly doubles cycles
// (steady state), for baseline and an engine system alike.
func TestWorkloadScalingSanity(t *testing.T) {
	eng, err := MustEntry("xom").Build()
	if err != nil {
		t.Fatal(err)
	}
	run := func(refs int, e edu.Engine) uint64 {
		cfg := soc.DefaultConfig()
		cfg.Engine = e
		s, err := soc.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.Run(trace.Streaming(trace.Config{Refs: refs, Seed: 55})).Cycles
	}
	small := run(20000, eng)
	big := run(40000, eng)
	ratio := float64(big) / float64(small)
	if ratio < 1.8 || ratio > 2.2 {
		t.Errorf("cycle scaling ratio %.2f, want ~2.0", ratio)
	}
}
