package core

// The authenticator registry: the memory-authentication counterpart of
// Survey(). Confidentiality engines and authenticators are orthogonal
// axes — any engine key can be paired with any authenticator key, in
// the CLIs ("xom+tree") and in campaign sweeps (-authtree) — because
// the SoC drives the edu.Verifier independently of the edu.Engine on
// the same miss/writeback traffic.

import (
	"fmt"
	"strings"

	"repro/internal/attack"
	"repro/internal/edu"
	"repro/internal/sim/authtree"
	"repro/internal/sim/soc"
)

// Default protected-memory geometry for registry-built authenticators:
// the code region plus a data window that covers every standard
// workload's footprint (pointer-chase touches 8 MiB). Experiments that
// sweep the protected size (E20) build their trees directly instead.
const (
	// ProtectedCodeBytes is the protected code window at address 0.
	ProtectedCodeBytes = 1 << 20
	// ProtectedDataBytes is the protected data window at DataBase.
	ProtectedDataBytes = 16 << 20
	// DataBase is where every workload's data region starts (matches
	// trace.Config defaults).
	DataBase = 0x4000_0000
	// AuthNodeCacheBytes is the default on-chip tree-node cache.
	AuthNodeCacheBytes = 4 << 10
)

// authKey is the GHASH key registry builds use (16 bytes).
var authKey = []byte("ghash-tag-key-01")

// DefaultProtectedRegions returns the standard protected windows.
func DefaultProtectedRegions() []authtree.Region {
	return []authtree.Region{
		{Base: 0, Bytes: ProtectedCodeBytes},
		{Base: DataBase, Bytes: ProtectedDataBytes},
	}
}

// AuthEntry describes one registered authenticator.
type AuthEntry struct {
	// Key is the registry lookup name (the -authtree flag vocabulary).
	Key string
	// Name is the descriptive name used in listings.
	Name string
	// Build constructs a fresh verifier sized to lineBytes; it returns
	// nil for the "none" entry.
	Build func(lineBytes int) (edu.Verifier, error)
}

// Authenticators returns the authenticator registry in design-space
// order: nothing, the flat per-line schemes (on-chip area scales with
// protected memory), then the trees (on-chip area constant).
func Authenticators() []AuthEntry {
	protectedLines := func(lineBytes int) int {
		return (ProtectedCodeBytes + ProtectedDataBytes) / lineBytes
	}
	tree := func(variant authtree.Variant) func(int) (edu.Verifier, error) {
		return func(lineBytes int) (edu.Verifier, error) {
			return authtree.New(authtree.Config{
				Key:            authKey,
				LineBytes:      lineBytes,
				Regions:        DefaultProtectedRegions(),
				NodeCacheBytes: AuthNodeCacheBytes,
				Variant:        variant,
			})
		}
	}
	return []AuthEntry{
		{
			Key: "none", Name: "no authentication",
			Build: func(int) (edu.Verifier, error) { return nil, nil },
		},
		{
			Key: "flat-mac", Name: "flat per-line MAC (no freshness: replay passes)",
			Build: func(lineBytes int) (edu.Verifier, error) {
				return authtree.NewFlat(authtree.FlatConfig{Key: authKey})
			},
		},
		{
			Key: "flat-fresh", Name: "flat MAC + on-chip counter table (area ~ protected memory)",
			Build: func(lineBytes int) (edu.Verifier, error) {
				return authtree.NewFlat(authtree.FlatConfig{
					Key: authKey, Fresh: true, ProtectedLines: protectedLines(lineBytes),
				})
			},
		},
		{
			Key: "tree", Name: "Merkle hash tree, cached nodes, on-chip root",
			Build: tree(authtree.HashTree),
		},
		{
			Key: "ctree", Name: "counter tree (AEGIS direction): smaller nodes, same root anchor",
			Build: tree(authtree.CounterTree),
		},
	}
}

// AuthKeys lists the registry keys in order (flag help, validation).
func AuthKeys() []string {
	entries := Authenticators()
	keys := make([]string, len(entries))
	for i, e := range entries {
		keys[i] = e.Key
	}
	return keys
}

// AuthEntryFor resolves an authenticator key.
func AuthEntryFor(key string) (AuthEntry, error) {
	for _, e := range Authenticators() {
		if e.Key == key {
			return e, nil
		}
	}
	return AuthEntry{}, fmt.Errorf("core: unknown authenticator %q (known: %s)",
		key, strings.Join(AuthKeys(), ", "))
}

// BuildAuthenticator constructs a fresh verifier for key at lineBytes;
// key "none" (or "") yields nil.
func BuildAuthenticator(key string, lineBytes int) (edu.Verifier, error) {
	if key == "" {
		key = "none"
	}
	e, err := AuthEntryFor(key)
	if err != nil {
		return nil, err
	}
	return e.Build(lineBytes)
}

// ParseEngineAuth splits a composite "engine[+authenticator]" key, the
// CLI vocabulary of cmd/attacklab -engine: "xom", "xom+tree",
// "aegis+flat-fresh".
func ParseEngineAuth(key string) (engineKey, auth string) {
	if i := strings.IndexByte(key, '+'); i >= 0 {
		return key[:i], key[i+1:]
	}
	return key, "none"
}

// TamperTable runs the three active attacks of internal/attack against
// a freshly assembled system per attack (tampering dirties state) and
// reports the outcomes — the table cmd/attacklab -engine prints. The
// composite key pairs any surveyed engine with any authenticator.
func TamperTable(compositeKey string) (*Table, error) {
	engineKey, auth := ParseEngineAuth(compositeKey)
	entry, err := Entry(engineKey)
	if err != nil {
		return nil, err
	}
	if _, err := AuthEntryFor(auth); err != nil {
		return nil, err
	}

	img := make([]byte, 4096)
	copy(img, []byte("GENUINE FIRMWARE -- entry point -- "))
	for i := 64; i < len(img); i++ {
		img[i] = byte(i * 7)
	}
	mkSoC := func() (*soc.SoC, error) {
		eng, err := entry.Build()
		if err != nil {
			return nil, err
		}
		cfg := soc.DefaultConfig()
		cfg.Engine = eng
		if cfg.Verifier, err = BuildAuthenticator(auth, cfg.Cache.LineSize); err != nil {
			return nil, err
		}
		s, err := soc.New(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.LoadImage(0, img); err != nil {
			return nil, err
		}
		return s, nil
	}
	spoof, splice, replay, err := runTampers(mkSoC)
	if err != nil {
		return nil, err
	}

	t := &Table{
		ID:     "TAMPER",
		Title:  fmt.Sprintf("active-attack outcomes: %s + %s", entry.Name, auth),
		Header: []string{"attack", "verdict", "detail"},
	}
	rows := []struct {
		name string
		out  attack.TamperOutcome
	}{{"spoof", spoof}, {"splice", splice}, {"replay", replay}}
	for _, r := range rows {
		verdict := "blocked"
		if r.out.Accepted {
			verdict = "ACCEPTED"
		}
		t.AddRow(r.name, verdict, r.out.Detail)
	}
	return t, nil
}

// runTampers executes spoof, splice and replay, each against its own
// fresh system from mkSoC.
func runTampers(mkSoC func() (*soc.SoC, error)) (spoof, splice, replay attack.TamperOutcome, err error) {
	junk := make([]byte, 32)
	for i := range junk {
		junk[i] = 0xEE
	}
	one := func(f func(*soc.SoC) attack.TamperOutcome) (attack.TamperOutcome, error) {
		s, err := mkSoC()
		if err != nil {
			return attack.TamperOutcome{}, err
		}
		return f(s), nil
	}
	if spoof, err = one(func(s *soc.SoC) attack.TamperOutcome { return attack.Spoof(s, 0x40, junk) }); err != nil {
		return
	}
	if splice, err = one(func(s *soc.SoC) attack.TamperOutcome { return attack.Splice(s, 0x00, 0x40, 32) }); err != nil {
		return
	}
	replay, err = one(func(s *soc.SoC) attack.TamperOutcome {
		return attack.Replay(s, 0x40, 32, func() {
			fresh := make([]byte, 32)
			if err := s.LoadImage(0x40, fresh); err != nil {
				panic(err)
			}
		})
	})
	return
}
