// Package core is the public façade of the bus-encryption survey
// reproduction: it registers every surveyed engine with its paper
// metadata, assembles simulated systems around them, and implements the
// experiment suite (E1–E16 in DESIGN.md) that regenerates each of the
// survey's quantitative claims.
//
// Typical use:
//
//	entry := core.MustEntry("aegis")
//	eng, _ := entry.Build()
//	base, with, _ := soc.Compare(soc.DefaultConfig(), eng, workload)
//	fmt.Printf("overhead: %.1f%%\n", 100*with.OverheadVs(base))
//
// or run a whole experiment:
//
//	table, _ := core.E6Aegis()
//	fmt.Print(table)
package core

import (
	"fmt"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/gilmont"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// CodeLimit is the boundary between the code and data regions in every
// experiment's address map (matches trace.Config defaults: code below,
// data at 0x4000_0000).
const CodeLimit = 0x1000_0000

// SurveyEntry describes one surveyed design: its paper metadata and an
// engine factory (fresh state per call — engines are stateful).
type SurveyEntry struct {
	// Key is the registry lookup name.
	Key string
	// Name is the design's common name.
	Name string
	// Origin cites the source (patent, product or paper).
	Origin string
	// Figure is the survey figure presenting it.
	Figure string
	// Year is the design's publication year.
	Year int
	// Cipher describes the cryptographic core.
	Cipher string
	// BlockBits is the ciphering granule in bits.
	BlockBits int
	// ModeDesc summarizes the operating mode.
	ModeDesc string
	// ClaimedCost quotes the survey's cost statement, if any.
	ClaimedCost string
	// Build constructs a fresh engine instance.
	Build func() (edu.Engine, error)
}

// Survey returns the registry of all surveyed designs in the order the
// paper presents them (§3, then the §4 proposals appear via E11/E12).
func Survey() []SurveyEntry {
	key8 := []byte("on-chip!")
	key16 := []byte("0123456789abcdef")
	key24 := []byte("0123456789abcdef01234567")
	return []SurveyEntry{
		{
			Key: "best", Name: "Best crypto-microprocessor",
			Origin: "US patents 4,168,396 / 4,278,837 / 4,465,901", Figure: "Fig. 3", Year: 1979,
			Cipher: "mono/poly-alphabetic substitution + byte transposition", BlockBits: 64,
			ModeDesc:    "address-bound per-block",
			ClaimedCost: "none quoted (runs at bus speed)",
			Build:       func() (edu.Engine, error) { return products.NewBest(key8) },
		},
		{
			Key: "vlsi", Name: "VLSI Technology secure MMU",
			Origin: "US patent 5,825,878", Figure: "Fig. 4", Year: 1998,
			Cipher: "DES", BlockBits: 64,
			ModeDesc:    "page-wise secure DMA, OS-trusted",
			ClaimedCost: "none quoted (page-granular amortization)",
			Build:       func() (edu.Engine, error) { return products.NewVLSI(key8, 4096, 8) },
		},
		{
			Key: "gi", Name: "General Instrument secure processor",
			Origin: "US patent 6,061,449", Figure: "Fig. 5", Year: 2000,
			Cipher: "3-DES + keyed hash", BlockBits: 64,
			ModeDesc:    "CBC chained + MAC",
			ClaimedCost: "\"unacceptable CPU performance degradation for random accesses\"",
			Build: func() (edu.Engine, error) {
				return products.NewGeneralInstrument(key24, key8)
			},
		},
		{
			Key: "ds5002", Name: "Dallas DS5002FP",
			Origin: "Dallas Semiconductor (Maxim)", Figure: "Fig. 6", Year: 1993,
			Cipher: "proprietary 8-bit bus cipher", BlockBits: 8,
			ModeDesc:    "per-byte, address-keyed",
			ClaimedCost: "broken by Kuhn's 256-way cipher instruction search",
			Build:       func() (edu.Engine, error) { return products.NewDS5002(key8) },
		},
		{
			Key: "ds5240", Name: "Dallas DS5240",
			Origin: "Dallas Semiconductor (Maxim)", Figure: "Fig. 6", Year: 2003,
			Cipher: "DES / 3-DES", BlockBits: 64,
			ModeDesc:    "per-block, address-tweaked",
			ClaimedCost: "none quoted (\"strengthened robustness\")",
			Build:       func() (edu.Engine, error) { return products.NewDS5240(key16) },
		},
		{
			Key: "gilmont", Name: "Gilmont et al. secure MMU",
			Origin: "Euromicro 1999 [3]", Figure: "§3", Year: 1999,
			Cipher: "pipelined 3-DES + fetch prediction", BlockBits: 64,
			ModeDesc:    "ECB, static code only",
			ClaimedCost: "deciphering cost < 2.5%",
			Build: func() (edu.Engine, error) {
				return gilmont.New(gilmont.Config{Key: key24, CodeLimit: CodeLimit, Gates: products.GilmontGates})
			},
		},
		{
			Key: "xom", Name: "XOM",
			Origin: "Stanford [13]", Figure: "§3", Year: 2000,
			Cipher: "pipelined AES", BlockBits: 128,
			ModeDesc:    "per-block",
			ClaimedCost: "latency 14 cycles, 1 block/cycle throughput",
			Build:       func() (edu.Engine, error) { return products.XOM(key16) },
		},
		{
			Key: "aegis", Name: "AEGIS",
			Origin: "MIT, ICS 2003 [14]", Figure: "§3", Year: 2003,
			Cipher: "pipelined AES, 300k gates", BlockBits: 128,
			ModeDesc:    "CBC per cache block, IV = addr + counter",
			ClaimedCost: "performance overhead ~25%",
			Build: func() (edu.Engine, error) {
				return products.AEGIS(key16, modes.IVCounter, 0xae915)
			},
		},
	}
}

// Entry looks up a surveyed design by key.
func Entry(key string) (SurveyEntry, error) {
	for _, e := range Survey() {
		if e.Key == key {
			return e, nil
		}
	}
	return SurveyEntry{}, fmt.Errorf("core: unknown engine %q (known: best, vlsi, gi, ds5002, ds5240, gilmont, xom, aegis)", key)
}

// MustEntry is Entry for known-good keys; it panics on typos.
func MustEntry(key string) SurveyEntry {
	e, err := Entry(key)
	if err != nil {
		panic(err)
	}
	return e
}

// WorkloadProfile returns the standard knob settings for the named
// workload — the single definition both the experiment suite and the
// campaign sweeps draw from, so a workload name measures the same
// reference mix everywhere. The caller supplies the RNG (Seed or Rand).
func WorkloadProfile(name string, refs int) (trace.Config, bool) {
	cfg := trace.Config{Refs: refs}
	switch name {
	case "sequential":
		cfg.LoadFraction, cfg.WriteFraction, cfg.JumpRate, cfg.Locality = 0.35, 0.3, 0.03, 0.7
	case "firmware":
		// Microcontroller-class mix; the generator forces the small
		// footprint (16K code / 32K data) itself.
		cfg.LoadFraction, cfg.WriteFraction, cfg.JumpRate, cfg.Locality = 0.35, 0.4, 0.03, 0.5
	case "code-only":
		cfg.JumpRate = 0.02
	case "streaming":
		cfg.WriteFraction = 0.3
	case "pointer-chase":
		cfg.DataSize = 8 << 20
	case "matrix-like":
		// generator defaults
	default:
		return trace.Config{}, false
	}
	return cfg, true
}

// workloadNames is the standard five-workload set in suite order.
var workloadNames = []string{"sequential", "code-only", "streaming", "pointer-chase", "matrix-like"}

// WorkloadSources returns the standard workload set as streaming
// reference sources sized to refs references each — the constant-memory
// form long sweeps consume. Sources are Seed-configured, so they can be
// replayed (soc.Compare replays).
func WorkloadSources(refs int) []trace.RefSource {
	out := make([]trace.RefSource, len(workloadNames))
	for i, name := range workloadNames {
		cfg, _ := WorkloadProfile(name, refs)
		cfg.Seed = int64(11 + i)
		out[i] = trace.Sources[name](cfg)
	}
	return out
}

// Workloads returns the same standard set fully materialized — the
// convenient form for small experiments and tests.
func Workloads(refs int) []*trace.Trace {
	srcs := WorkloadSources(refs)
	out := make([]*trace.Trace, len(srcs))
	for i, src := range srcs {
		out[i] = trace.Drain(src)
	}
	return out
}

// MeasureOverhead runs eng against the baseline on src with the
// standard system configuration and returns the fractional overhead.
// Both a streaming source and a materialized *trace.Trace satisfy src.
func MeasureOverhead(eng edu.Engine, src trace.RefSource) (float64, error) {
	base, with, err := soc.Compare(soc.DefaultConfig(), eng, src)
	if err != nil {
		return 0, err
	}
	return with.OverheadVs(base), nil
}
