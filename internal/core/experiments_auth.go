package core

// The memory-authentication experiments: E20 turns E17's three-row
// integrity extension into a full design-space axis (authenticator
// structure × protected-memory size × node-cache size), and E21 sweeps
// an active adversary's strike rate against the authenticators to
// measure what the flat-MAC literature never quotes: detection rate,
// detection latency, and the fail-stop tax.

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/products"
	"repro/internal/obs/rec"
	"repro/internal/sim/authtree"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// e20Key is the GHASH key the auth experiments use (16 bytes).
var e20Key = []byte("e20-tree-key-012")

// xomEngine builds the confidentiality engine all auth experiments
// hold fixed (XOM's pipelined AES), so the authenticator is the only
// delta between rows.
func xomEngine() (edu.Engine, error) { return products.XOM([]byte("0123456789abcdef")) }

// E20AuthTrees measures the tentpole design space: tree vs flat-MAC vs
// none, across protected-memory size (the flat table's scaling problem)
// and on-chip node-cache size (the tree's locality lever). The tamper
// verdicts show what each structure actually closes.
func E20AuthTrees(refs int) (*Table, error) {
	t := &Table{
		ID:         "E20 (extension)",
		Title:      "authentication trees vs flat MAC: overhead x protected size x node cache",
		PaperClaim: "\"take into account the problem of integrity\" (§5) — the AEGIS cached-tree direction, quantified",
		Header:     []string{"auth", "protected", "node$", "overhead", "on-chip gates", "spoof", "splice", "replay"},
	}
	const lineBytes = 32
	tr := trace.SequentialSource(trace.Config{
		Refs: refs, Seed: 20, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7,
	})

	protectedSizes := []uint64{4 << 20, 64 << 20, 512 << 20}
	nodeCaches := []int{1 << 10, 4 << 10, 16 << 10}
	regions := func(protected uint64) []authtree.Region {
		return []authtree.Region{
			{Base: 0, Bytes: ProtectedCodeBytes},
			{Base: DataBase, Bytes: protected},
		}
	}

	// The plaintext baseline and the engine-only run are shared by
	// every row: the engine never changes.
	cfg := soc.DefaultConfig()
	eng, err := xomEngine()
	if err != nil {
		return nil, err
	}
	base, engOnly, err := soc.Compare(cfg, eng, tr)
	if err != nil {
		return nil, err
	}

	// measure runs the engine+verifier system on the shared trace and
	// returns overhead vs the plaintext baseline.
	measure := func(ver edu.Verifier) (float64, error) {
		eng, err := xomEngine()
		if err != nil {
			return 0, err
		}
		vcfg := cfg
		vcfg.Engine = eng
		vcfg.Verifier = ver
		s, err := soc.New(vcfg)
		if err != nil {
			return 0, err
		}
		return s.Run(tr).OverheadVs(base), nil
	}

	// Tamper verdicts depend on the authenticator structure, not its
	// geometry: computed once per structure via the registry defaults.
	verdicts := map[string][3]string{}
	for _, key := range AuthKeys() {
		key := key
		mkSoC := func() (*soc.SoC, error) {
			eng, err := xomEngine()
			if err != nil {
				return nil, err
			}
			acfg := soc.DefaultConfig()
			acfg.Engine = eng
			if acfg.Verifier, err = BuildAuthenticator(key, lineBytes); err != nil {
				return nil, err
			}
			s, err := soc.New(acfg)
			if err != nil {
				return nil, err
			}
			img := make([]byte, 4096)
			for i := range img {
				img[i] = byte(i * 11)
			}
			if err := s.LoadImage(0, img); err != nil {
				return nil, err
			}
			return s, nil
		}
		spoof, splice, replay, err := runTampers(mkSoC)
		if err != nil {
			return nil, err
		}
		v := func(o attack.TamperOutcome) string {
			if o.Accepted {
				return "ACCEPTED"
			}
			return "blocked"
		}
		verdicts[key] = [3]string{v(spoof), v(splice), v(replay)}
	}

	sizeStr := func(b uint64) string {
		if b >= 1<<20 {
			return fmt.Sprintf("%dM", b>>20)
		}
		return fmt.Sprintf("%dK", b>>10)
	}

	// none: the engine-only reference row.
	vd := verdicts["none"]
	t.AddRow("none", "-", "-", fmt.Sprintf("%.1f%%", 100*engOnly.OverheadVs(base)), 0, vd[0], vd[1], vd[2])

	// flat-mac: constant on-chip area, no freshness.
	flat, err := authtree.NewFlat(authtree.FlatConfig{Key: e20Key})
	if err != nil {
		return nil, err
	}
	ov, err := measure(flat)
	if err != nil {
		return nil, err
	}
	vd = verdicts["flat-mac"]
	t.AddRow("flat-mac", "any", "-", fmt.Sprintf("%.1f%%", 100*ov), flat.Gates(), vd[0], vd[1], vd[2])

	// flat-fresh: on-chip counter table scales linearly with protected
	// memory — the row trio that motivates the trees.
	for _, protected := range protectedSizes {
		lines := int((ProtectedCodeBytes + protected) / lineBytes)
		fresh, err := authtree.NewFlat(authtree.FlatConfig{Key: e20Key, Fresh: true, ProtectedLines: lines})
		if err != nil {
			return nil, err
		}
		ov, err := measure(fresh)
		if err != nil {
			return nil, err
		}
		vd = verdicts["flat-fresh"]
		t.AddRow("flat-fresh", sizeStr(protected), "-", fmt.Sprintf("%.1f%%", 100*ov), fresh.Gates(), vd[0], vd[1], vd[2])
	}

	// The trees: on-chip area fixed by the node cache, overhead a
	// function of tree depth (protected size) and node locality.
	for _, variant := range []authtree.Variant{authtree.HashTree, authtree.CounterTree} {
		key := "tree"
		if variant == authtree.CounterTree {
			key = "ctree"
		}
		for _, protected := range protectedSizes {
			for _, nc := range nodeCaches {
				tree, err := authtree.New(authtree.Config{
					Key: e20Key, LineBytes: lineBytes, Regions: regions(protected),
					NodeCacheBytes: nc, Variant: variant,
				})
				if err != nil {
					return nil, err
				}
				ov, err := measure(tree)
				if err != nil {
					return nil, err
				}
				vd = verdicts[key]
				t.AddRow(variant.String(), sizeStr(protected), sizeStr(uint64(nc)),
					fmt.Sprintf("%.1f%%", 100*ov), tree.Gates(), vd[0], vd[1], vd[2])
			}
		}
	}

	t.Notes = append(t.Notes,
		"flat-fresh on-chip gates grow linearly with protected memory; tree gates are flat (node cache + root)",
		"tree overhead falls with node-cache size: verification stops at the first on-chip node, not the root",
		"counter-tree nodes are smaller, so the same SRAM caches more of the tree and misses move fewer bytes",
		"only root-anchored structures (trees) and on-chip counters (flat-fresh) block replay; flat-mac does not")
	return t, nil
}

// E21Auths and E21Rates are E21's grid: every registered authenticator
// against three strike rates (tampers per 10k references).
var (
	E21Auths = []string{"none", "flat-mac", "flat-fresh", "tree", "ctree"}
	E21Rates = []float64{1, 4, 16}
)

// E21Cell simulates one cell of the E21 active-adversary grid and
// returns its report plus the strike schedule (nil at rate 0). The
// exact configuration lives here — and only here — so tracelab's
// per-strike forensics reconstruct the very runs the E21 table
// aggregates, not a lookalike. rc, when non-nil, flight-records the
// run (the simulator, the tree authenticator's node walks, and the
// schedule's injections all emit into it).
//
// AEGIS (counter-mode IVs) rather than XOM: stores carry no data in
// this model, so only a counter-mode engine produces fresh ciphertext
// on writeback — the condition under which a replay snapshot ever goes
// stale and the rollback attack means anything.
func E21Cell(auth string, rate float64, refs int, rc *rec.Recorder) (soc.Report, *attack.Schedule, error) {
	const lineBytes = 32
	eng, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0x21)
	if err != nil {
		return soc.Report{}, nil, err
	}
	cfg := soc.DefaultConfig()
	cfg.Engine = eng
	cfg.Recorder = rc
	if cfg.Verifier, err = BuildAuthenticator(auth, lineBytes); err != nil {
		return soc.Report{}, nil, err
	}
	if tree, ok := cfg.Verifier.(*authtree.Tree); ok {
		tree.SetRecorder(rc)
	}
	var sched *attack.Schedule
	if rate > 0 {
		sched = attack.NewSchedule(attack.ScheduleConfig{
			Seed: 2100 + int64(rate*16), PerTenK: rate, LineBytes: lineBytes,
		})
		sched.SetRecorder(rc)
		cfg.Intruder = sched
		cfg.OnViolation = sched.OnViolation
	}
	s, err := soc.New(cfg)
	if err != nil {
		return soc.Report{}, nil, err
	}
	// A microcontroller-class footprint (16 KiB code, 32 KiB hot data —
	// the survey's systems): small enough that tampered lines cycle
	// back through the cache several times per run. Detection requires
	// the victim line to cross the bus again — with a multi-megabyte
	// footprint most tampers simply age out unobserved, which says
	// something about the attack surface but nothing about the
	// authenticators under test.
	src := trace.SequentialSource(trace.Config{
		Refs: refs, Seed: 21, LoadFraction: 0.35, WriteFraction: 0.4, JumpRate: 0.03, Locality: 0.5,
		CodeBase: 0, CodeSize: 16 << 10, DataBase: DataBase, DataSize: 32 << 10,
	})
	return s.Run(src), sched, nil
}

// E21AttackSweep drives the active-adversary schedule against each
// authenticator at increasing strike rates: detection rate, detection
// latency (references from injection to the fail-stop event), and the
// fail-stop overhead relative to the same system unattacked.
func E21AttackSweep(refs int) (*Table, error) {
	t := &Table{
		ID:         "E21 (extension)",
		Title:      "active-adversary sweep: detection rate, latency, fail-stop overhead",
		PaperClaim: "\"attacks based on the modification of the fetched instructions\" (§5) — measured as a campaign, not a single probe",
		Header:     []string{"auth", "atk/10k", "injected", "detected", "det-rate", "mean-lat", "max-lat", "fail-stop ovh"},
	}
	for _, auth := range E21Auths {
		quiet, _, err := E21Cell(auth, 0, refs, nil)
		if err != nil {
			return nil, err
		}
		for _, rate := range E21Rates {
			rep, sched, err := E21Cell(auth, rate, refs, nil)
			if err != nil {
				return nil, err
			}
			t.AddRow(auth, rate, sched.Injected, sched.Detected,
				fmt.Sprintf("%.0f%%", 100*sched.DetectionRate()),
				fmt.Sprintf("%.0f", sched.MeanLatency()),
				sched.MaxLatency,
				fmt.Sprintf("%.2f%%", 100*(float64(rep.Cycles)/float64(quiet.Cycles)-1)))
		}
	}
	t.Notes = append(t.Notes,
		"detection latency is bounded by cache residency: a tampered line is only checked when it next crosses the bus",
		"confidentiality-only systems (auth=none) detect nothing — every tamper is silently consumed",
		"flat-mac misses exactly the replay strikes; root-anchored and counter schemes catch all three kinds",
		"fail-stop overhead = violation traps on top of the steady verification cost already paid at rate 0")
	return t, nil
}
