package core

import (
	"testing"

	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// Streaming is not allowed to change a single measured number: for
// every registered engine, driving soc.Compare with a streaming
// RefSource must produce reports identical to driving it with the
// materialized *trace.Trace built from the same trace.Config.
func TestStreamingReportsMatchMaterializedForAllEngines(t *testing.T) {
	tcfg := trace.Config{
		Refs: 6000, Seed: 41,
		LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7,
	}
	for _, entry := range Survey() {
		t.Run(entry.Key, func(t *testing.T) {
			engM, err := entry.Build()
			if err != nil {
				t.Fatal(err)
			}
			baseM, withM, err := soc.Compare(soc.DefaultConfig(), engM, trace.Sequential(tcfg))
			if err != nil {
				t.Fatal(err)
			}

			engS, err := entry.Build() // fresh state: engines are stateful
			if err != nil {
				t.Fatal(err)
			}
			baseS, withS, err := soc.Compare(soc.DefaultConfig(), engS, trace.SequentialSource(tcfg))
			if err != nil {
				t.Fatal(err)
			}

			if baseM != baseS {
				t.Errorf("baseline reports differ:\n materialized %+v\n streaming    %+v", baseM, baseS)
			}
			if withM != withS {
				t.Errorf("engine reports differ:\n materialized %+v\n streaming    %+v", withM, withS)
			}
		})
	}
}

// The standard workload set must measure identically in both forms.
func TestWorkloadSourcesMatchWorkloads(t *testing.T) {
	const refs = 4000
	mats := Workloads(refs)
	srcs := WorkloadSources(refs)
	if len(mats) != len(srcs) {
		t.Fatalf("%d materialized workloads vs %d sources", len(mats), len(srcs))
	}
	for i := range srcs {
		if srcs[i].Label() != mats[i].Name {
			t.Errorf("workload %d: label %q != name %q", i, srcs[i].Label(), mats[i].Name)
		}
		sM, err := soc.New(soc.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		repM := sM.Run(mats[i])
		sS, _ := soc.New(soc.DefaultConfig())
		repS := sS.Run(srcs[i])
		if repM != repS {
			t.Errorf("workload %s: reports differ:\n materialized %+v\n streaming    %+v",
				mats[i].Name, repM, repS)
		}
	}
}
