package core

import (
	"strconv"
	"strings"
	"testing"
)

// E22's table must carry the placement argument in its cells: every
// verdict column asserts true (inner boundaries see the unfiltered L1
// miss stream, the outer boundary sees strictly less), and the firmware
// workload — whose footprint fits the L2 — shows substantial filtering.
func TestE22Hierarchy(t *testing.T) {
	tbl, err := E22Hierarchy(20000)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 18 {
		t.Fatalf("%d rows, want 18 (3 workloads x 6 hierarchy points)", len(tbl.Rows))
	}
	var firmwareFiltered float64
	for _, row := range tbl.Rows {
		wl, placement, filtered, verdict := row[0], row[2], row[4], row[6]
		if verdict != "-" && verdict != "true" {
			t.Errorf("%s @ %s: verdict %q, want true", wl, placement, verdict)
		}
		if placement == "l2<->dram" {
			if filtered == "-" {
				t.Errorf("%s @ %s: no filtered share reported", wl, placement)
				continue
			}
			pct, err := strconv.ParseFloat(strings.TrimSuffix(filtered, "%"), 64)
			if err != nil {
				t.Errorf("%s @ %s: bad filtered cell %q", wl, placement, filtered)
				continue
			}
			if pct <= 0 {
				t.Errorf("%s @ %s: outer placement filtered nothing (%s)", wl, placement, filtered)
			}
			if wl == "firmware" && pct > firmwareFiltered {
				firmwareFiltered = pct
			}
		}
	}
	// The quantitative heart of the experiment: a footprint that fits
	// the L2 shields the outer EDU from a large share of the traffic.
	if firmwareFiltered < 30 {
		t.Errorf("firmware best-case filtered share %.1f%%, want >= 30%%", firmwareFiltered)
	}
}
