package core

import (
	"fmt"
	"strings"
)

// Table is a formatted experiment result: what the bench harness prints
// and EXPERIMENTS.md records.
type Table struct {
	// ID is the experiment identifier (E1..E16).
	ID string
	// Title describes what is being reproduced.
	Title string
	// PaperClaim quotes the survey's number or statement being checked.
	PaperClaim string
	// Header names the columns.
	Header []string
	// Rows are the measured values, stringified.
	Rows [][]string
	// Notes carries caveats and substitutions.
	Notes []string
}

// AddRow appends a row, stringifying each cell with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", t.ID, t.Title)
	if t.PaperClaim != "" {
		fmt.Fprintf(&b, "paper: %s\n", t.PaperClaim)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}
