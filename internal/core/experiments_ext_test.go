package core

import (
	"strconv"
	"strings"
	"testing"
)

func TestE17IntegrityShape(t *testing.T) {
	tbl, err := E17Integrity(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("E17 has %d rows, want 3", len(tbl.Rows))
	}
	// Row 0: plain engine — all three attacks land.
	plain := tbl.Rows[0]
	if plain[1] != "ACCEPTED" || plain[2] != "ACCEPTED" || plain[3] != "ACCEPTED" {
		t.Errorf("plain engine should fail all attacks: %v", plain)
	}
	// Row 1: MAC-only — spoof and splice blocked, replay lands.
	mac := tbl.Rows[1]
	if mac[1] != "blocked" || mac[2] != "blocked" {
		t.Errorf("MAC should block spoof/splice: %v", mac)
	}
	if mac[3] != "ACCEPTED" {
		t.Errorf("MAC-only should fall to replay: %v", mac)
	}
	// Row 2: freshness — everything blocked.
	fresh := tbl.Rows[2]
	if fresh[1] != "blocked" || fresh[2] != "blocked" || fresh[3] != "blocked" {
		t.Errorf("freshness should block everything: %v", fresh)
	}
	// Protection costs strictly more at each level.
	ovPlain, ovMAC, ovFresh := pct(t, plain[4]), pct(t, mac[4]), pct(t, fresh[4])
	if !(ovPlain < ovMAC && ovMAC <= ovFresh) {
		t.Errorf("overheads should be ordered: %v %v %v", ovPlain, ovMAC, ovFresh)
	}
}

func TestE18AblationShapes(t *testing.T) {
	tbl, err := E18Ablations(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	byKnob := map[string][]float64{}
	for _, row := range tbl.Rows {
		byKnob[row[0]] = append(byKnob[row[0]], pct(t, row[2]))
	}
	// Bigger cache -> fewer misses -> less engine exposure.
	cs := byKnob["cache size"]
	if len(cs) != 3 || cs[2] >= cs[0] {
		t.Errorf("cache-size sweep should fall: %v", cs)
	}
	// Faster bus (divider 1) exposes the engine more than a slow bus.
	bd := byKnob["bus divider"]
	if len(bd) != 3 || bd[0] <= bd[2] {
		t.Errorf("bus-divider sweep should fall as the bus slows: %v", bd)
	}
	// Engine latency moves overhead monotonically.
	al := byKnob["AES latency"]
	if len(al) != 3 || !(al[0] < al[1] && al[1] < al[2]) {
		t.Errorf("latency sweep should rise: %v", al)
	}
}

func TestE19KeyManagementShape(t *testing.T) {
	tbl, err := E19KeyManagement(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	// Switch counts fall as the quantum grows; overhead falls with them.
	var switches []int
	var overheads []float64
	for _, row := range tbl.Rows {
		if row[0] == "isolation" {
			if !strings.Contains(row[3], "differ: true") {
				t.Errorf("domain isolation broken: %v", row)
			}
			continue
		}
		n, err := strconv.Atoi(row[1])
		if err != nil {
			t.Fatal(err)
		}
		switches = append(switches, n)
		overheads = append(overheads, pct(t, row[3]))
	}
	// Cross-domain writebacks floor the switch count, so monotonicity
	// holds only between the extremes of the sweep.
	if switches[len(switches)-1] >= switches[0] {
		t.Errorf("long quanta should switch less than short ones: %v", switches)
	}
	if overheads[len(overheads)-1] >= overheads[0] {
		t.Errorf("key-reload overhead should shrink with quantum: %v", overheads)
	}
	if last := overheads[len(overheads)-1]; last > 0.03 {
		t.Errorf("realistic quantum overhead %.2f%% should be negligible", 100*last)
	}
}
