package core

import (
	"strings"
	"testing"

	"repro/internal/sim/trace"
)

func TestSurveyRegistryComplete(t *testing.T) {
	entries := Survey()
	if len(entries) != 8 {
		t.Fatalf("survey has %d entries, want 8", len(entries))
	}
	keys := map[string]bool{}
	for _, e := range entries {
		if e.Key == "" || e.Name == "" || e.Origin == "" || e.Cipher == "" {
			t.Errorf("entry %q incomplete: %+v", e.Key, e)
		}
		if keys[e.Key] {
			t.Errorf("duplicate key %q", e.Key)
		}
		keys[e.Key] = true
		eng, err := e.Build()
		if err != nil {
			t.Errorf("%s: Build failed: %v", e.Key, err)
			continue
		}
		if eng.Name() == "" {
			t.Errorf("%s: engine has no name", e.Key)
		}
	}
	for _, want := range []string{"best", "vlsi", "gi", "ds5002", "ds5240", "gilmont", "xom", "aegis"} {
		if !keys[want] {
			t.Errorf("missing surveyed design %q", want)
		}
	}
}

func TestEntryLookup(t *testing.T) {
	e, err := Entry("aegis")
	if err != nil || e.Key != "aegis" {
		t.Errorf("Entry(aegis): %v, %v", e.Key, err)
	}
	if _, err := Entry("nonsense"); err == nil {
		t.Error("unknown key accepted")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustEntry on bad key did not panic")
		}
	}()
	MustEntry("nonsense")
}

func TestBuildReturnsFreshEngines(t *testing.T) {
	e := MustEntry("gilmont")
	a, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a == b {
		t.Error("Build returned a shared instance; engines are stateful")
	}
}

func TestWorkloadsSet(t *testing.T) {
	ws := Workloads(1000)
	if len(ws) != 5 {
		t.Fatalf("%d workloads", len(ws))
	}
	names := map[string]bool{}
	for _, w := range ws {
		if len(w.Refs) != 1000 {
			t.Errorf("%s: %d refs", w.Name, len(w.Refs))
		}
		names[w.Name] = true
	}
	if !names["code-only"] || !names["pointer-chase"] {
		t.Error("expected workload names missing")
	}
}

func TestMeasureOverheadPositiveForCostlyEngine(t *testing.T) {
	eng, err := MustEntry("gi").Build()
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.Sequential(trace.Config{Refs: 5000, Seed: 1, LoadFraction: 0.4, WriteFraction: 0.3})
	ov, err := MeasureOverhead(eng, tr)
	if err != nil {
		t.Fatal(err)
	}
	if ov <= 0 {
		t.Errorf("GI overhead %v, want > 0", ov)
	}
}

func TestTableFormatting(t *testing.T) {
	tbl := &Table{
		ID: "EX", Title: "demo", PaperClaim: "claim",
		Header: []string{"col-a", "b"},
		Notes:  []string{"a note"},
	}
	tbl.AddRow("value", 3.14159)
	tbl.AddRow(42, "x")
	s := tbl.String()
	for _, want := range []string{"== EX: demo ==", "paper: claim", "col-a", "3.142", "42", "note: a note"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}
