package core

// Extension experiments beyond the survey's own claims: E17 implements
// the paper's closing future-work sentence, and E18 ablates the system
// parameters the survey says the designer must trade off (§2.2's "it is
// often a tradeoff between intended security (robustness) and affordable
// performance loss").

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/crypto/aes"
	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/blockengine"
	"repro/internal/edu/integrity"
	"repro/internal/edu/multikey"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// E17Integrity implements §5's future work: "take into account the
// problem of integrity, to thwart attacks based on the modification of
// the fetched instructions". Three active attacks against three
// protection levels, plus what the authentication costs.
func E17Integrity(refs int) (*Table, error) {
	t := &Table{
		ID:         "E17 (extension)",
		Title:      "integrity against instruction modification (the survey's future work)",
		PaperClaim: "\"it might also be relevant to take into account the problem of integrity, to thwart attacks based on the modification of the fetched instructions\" (§5)",
		Header:     []string{"engine", "spoof", "splice", "replay", "overhead", "gates"},
	}
	img := make([]byte, 4096)
	copy(img, []byte("GENUINE FIRMWARE -- entry point -- "))
	for i := 64; i < len(img); i++ {
		img[i] = byte(i * 7)
	}

	mkPlain := func() (edu.Engine, error) { return products.XOM([]byte("0123456789abcdef")) }
	mkMAC := func() (edu.Engine, error) {
		in, err := mkPlain()
		if err != nil {
			return nil, err
		}
		return integrity.New(integrity.Config{Inner: in, MACKey: []byte("tag-key"), Level: integrity.MACOnly})
	}
	mkFresh := func() (edu.Engine, error) {
		in, err := mkPlain()
		if err != nil {
			return nil, err
		}
		return integrity.New(integrity.Config{
			Inner: in, MACKey: []byte("tag-key"),
			Level: integrity.MACWithFreshness, ProtectedLines: 1 << 16,
		})
	}

	tr := trace.Sequential(trace.Config{Refs: refs, Seed: 17, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7})
	for _, mk := range []func() (edu.Engine, error){mkPlain, mkMAC, mkFresh} {
		// One system per attack: tampering dirties state.
		attackRun := func(f func(*soc.SoC) attack.TamperOutcome) (attack.TamperOutcome, error) {
			eng, err := mk()
			if err != nil {
				return attack.TamperOutcome{}, err
			}
			cfg := soc.DefaultConfig()
			cfg.Engine = eng
			s, err := soc.New(cfg)
			if err != nil {
				return attack.TamperOutcome{}, err
			}
			if err := s.LoadImage(0, img); err != nil {
				return attack.TamperOutcome{}, err
			}
			return f(s), nil
		}
		junk := make([]byte, 32)
		for i := range junk {
			junk[i] = 0xEE
		}
		spoof, err := attackRun(func(s *soc.SoC) attack.TamperOutcome { return attack.Spoof(s, 0x40, junk) })
		if err != nil {
			return nil, err
		}
		splice, err := attackRun(func(s *soc.SoC) attack.TamperOutcome { return attack.Splice(s, 0x00, 0x40, 32) })
		if err != nil {
			return nil, err
		}
		replay, err := attackRun(func(s *soc.SoC) attack.TamperOutcome {
			return attack.Replay(s, 0x40, 32, func() {
				fresh := make([]byte, 32)
				if err := s.LoadImage(0x40, fresh); err != nil {
					panic(err)
				}
			})
		})
		if err != nil {
			return nil, err
		}

		eng, err := mk()
		if err != nil {
			return nil, err
		}
		ov, err := MeasureOverhead(eng, tr)
		if err != nil {
			return nil, err
		}
		verdict := func(o attack.TamperOutcome) string {
			if o.Accepted {
				return "ACCEPTED"
			}
			return "blocked"
		}
		t.AddRow(eng.Name(), verdict(spoof), verdict(splice), verdict(replay),
			fmt.Sprintf("%.1f%%", 100*ov), eng.Gates())
	}
	t.Notes = append(t.Notes,
		"MAC binds content+address (stops spoof/splice); only versioned freshness stops replay",
		"the freshness counter table's area scales with protected memory — the problem AEGIS's integrity tree exists to solve")
	return t, nil
}

// E18Ablations sweeps the system knobs DESIGN.md calls out, all against
// the AEGIS engine: cache size (miss-rate lever), line size (blocks per
// ciphering unit), write policy (writeback pressure), and memory speed
// (the overlap window) — the designer's §2.2 tradeoff space.
func E18Ablations(refs int) (*Table, error) {
	t := &Table{
		ID:         "E18 (extension)",
		Title:      "design-space ablations around the AEGIS engine",
		PaperClaim: "\"Electing a cryptosystem has to be done with respects to the system specifications. It is often a tradeoff...\" (§2.2)",
		Header:     []string{"knob", "setting", "overhead"},
	}
	tr := trace.Sequential(trace.Config{Refs: refs, Seed: 18, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7})

	measure := func(mut func(*soc.Config)) (float64, error) {
		eng, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0xab1a7e)
		if err != nil {
			return 0, err
		}
		cfg := soc.DefaultConfig()
		mut(&cfg)
		base, with, err := soc.Compare(cfg, eng, tr)
		if err != nil {
			return 0, err
		}
		return with.OverheadVs(base), nil
	}

	for _, size := range []int{4 << 10, 16 << 10, 64 << 10} {
		ov, err := measure(func(c *soc.Config) { c.Cache.Size = size })
		if err != nil {
			return nil, err
		}
		t.AddRow("cache size", fmt.Sprintf("%dK", size>>10), fmt.Sprintf("%.1f%%", 100*ov))
	}
	for _, line := range []int{16, 32, 64} {
		ov, err := measure(func(c *soc.Config) { c.Cache.LineSize = line })
		if err != nil {
			return nil, err
		}
		t.AddRow("line size", fmt.Sprintf("%dB", line), fmt.Sprintf("%.1f%%", 100*ov))
	}
	for _, div := range []int{1, 2, 4} {
		ov, err := measure(func(c *soc.Config) { c.Bus.ClockDivider = div })
		if err != nil {
			return nil, err
		}
		t.AddRow("bus divider", fmt.Sprintf("/%d", div), fmt.Sprintf("%.1f%%", 100*ov))
	}

	// Cipher-core latency: what a slower crypto clock does.
	for _, lat := range []int{7, 14, 28} {
		c, err := aes.New([]byte("0123456789abcdef"))
		if err != nil {
			return nil, err
		}
		eng, err := blockengine.New(blockengine.Config{
			Name: "aegis-var-latency", Cipher: c, Mode: blockengine.LineCBC,
			Timing: edu.PipelineTiming{Latency: lat, II: 1},
			Gates:  products.AEGISGates, Salt: 1, IVMode: modes.IVCounter, WholeLineStall: true,
		})
		if err != nil {
			return nil, err
		}
		base, with, err := soc.Compare(soc.DefaultConfig(), eng, tr)
		if err != nil {
			return nil, err
		}
		t.AddRow("AES latency", fmt.Sprintf("%d cycles", lat), fmt.Sprintf("%.1f%%", 100*with.OverheadVs(base)))
	}
	t.Notes = append(t.Notes,
		"bigger caches shrink the miss stream the engine taxes; slower buses widen the overlap window",
		"engine latency moves overhead nearly linearly — the pipelined core is the design's load-bearing choice")
	return t, nil
}

// E19KeyManagement implements the survey's §1 deferral: "it will not
// explore the key management mechanisms relative to multitasking
// operating systems; refer to [2]". Per-process bus keys on a
// round-robin multitasking workload: isolation across domains, and the
// key-reload tax as a function of scheduling quantum.
func E19KeyManagement(refs int) (*Table, error) {
	t := &Table{
		ID:         "E19 (extension)",
		Title:      "per-process bus keys under multitasking (the survey's §1 deferral)",
		PaperClaim: "\"it will not explore the key management mechanisms relative to multitasking operating systems; refer to [2]\" — explored here",
		Header:     []string{"quantum (refs)", "domain switches", "switch rate", "overhead vs single-key"},
	}
	const procs = 4
	mkMulti := func() (*multikey.Engine, error) {
		regions := make([]multikey.Region, procs)
		for p := 0; p < procs; p++ {
			base, limit := trace.MultiProcessConfig{}.ProcessRegion(p)
			inner, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, uint64(p+1))
			if err != nil {
				return nil, err
			}
			regions[p] = multikey.Region{Base: base, Limit: limit, Engine: inner, Name: fmt.Sprintf("proc%d", p)}
		}
		// 20 cycles: reloading a retained key schedule from the on-chip
		// key RAM (re-expansion would cost far more; retained schedules
		// are the design point the key RAM area pays for).
		return multikey.New(multikey.Config{Regions: regions, SwitchCycles: 20})
	}

	for _, quantum := range []int{100, 500, 2000, 10000} {
		tr := trace.MultiProcess(trace.MultiProcessConfig{
			Config:  trace.Config{Refs: refs, Seed: 19, LoadFraction: 0.3, WriteFraction: 0.3, JumpRate: 0.02, Locality: 0.6},
			Procs:   procs,
			Quantum: quantum,
		})

		multi, err := mkMulti()
		if err != nil {
			return nil, err
		}
		cfg := soc.DefaultConfig()
		cfg.Engine = multi
		sMulti, err := soc.New(cfg)
		if err != nil {
			return nil, err
		}
		repMulti := sMulti.Run(tr)

		// Single shared key over the whole space: the insecure baseline.
		single, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 99)
		if err != nil {
			return nil, err
		}
		cfgS := soc.DefaultConfig()
		cfgS.Engine = single
		sSingle, err := soc.New(cfgS)
		if err != nil {
			return nil, err
		}
		repSingle := sSingle.Run(tr)

		transfers := repMulti.Cache.Misses + repMulti.Cache.Writebacks
		t.AddRow(quantum, multi.Switches,
			fmt.Sprintf("%.3f", multi.SwitchRate(transfers)),
			fmt.Sprintf("%.2f%%", 100*(float64(repMulti.Cycles)/float64(repSingle.Cycles)-1)))
	}

	// Isolation demonstration: same plaintext, two processes, different
	// ciphertext on the bus.
	multi, err := mkMulti()
	if err != nil {
		return nil, err
	}
	line := make([]byte, 32)
	ctA := make([]byte, 32)
	ctB := make([]byte, 32)
	b1, _ := trace.MultiProcessConfig{}.ProcessRegion(0)
	b2, _ := trace.MultiProcessConfig{}.ProcessRegion(1)
	multi.EncryptLine(b1+0x40, ctA, line)
	multi.EncryptLine(b2+0x40, ctB, line)
	isolated := !bytesEqual(ctA, ctB)
	t.AddRow("isolation", "-", "-", fmt.Sprintf("cross-domain ciphertexts differ: %v", isolated))
	t.Notes = append(t.Notes,
		"switch counts are floored by cross-domain writeback interleaving, not just quantum boundaries",
		"short quanta amplify the key-reload tax; realistic quanta (thousands of refs) make it negligible",
		"the single-key baseline is cheaper but lets any process's probe observations correlate across all domains")
	return t, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
