package core

import (
	"fmt"

	"math/rand"

	"repro/internal/attack"
	"repro/internal/compress"
	"repro/internal/crypto/aes"
	"repro/internal/crypto/bestcipher"
	"repro/internal/crypto/modes"
	"repro/internal/crypto/stream"
	"repro/internal/edu"
	"repro/internal/edu/blockengine"
	"repro/internal/edu/cacheside"
	"repro/internal/edu/compressengine"
	"repro/internal/edu/gilmont"
	"repro/internal/edu/products"
	"repro/internal/edu/streamengine"
	"repro/internal/keyexchange"
	"repro/internal/sim/cache"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// DefaultRefs is the trace length used by the experiment suite; long
// enough for warm-cache steady state, short enough for fast benches.
const DefaultRefs = 60000

// E1SurveyTable reproduces the survey's implicit comparison table: every
// catalogued engine on the common workload mix, with cipher, granule,
// area, and the measured overhead next to the paper's claim.
func E1SurveyTable(refs int) (*Table, error) {
	t := &Table{
		ID:         "E1",
		Title:      "survey comparison table (all engines, mixed workload)",
		PaperClaim: "qualitative §3 catalogue; per-engine claims in their own experiments",
		Header:     []string{"engine", "cipher", "blk(bits)", "gates", "overhead", "claimed"},
	}
	tr := trace.Sequential(trace.Config{Refs: refs, Seed: 11, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7})
	for _, entry := range Survey() {
		eng, err := entry.Build()
		if err != nil {
			return nil, fmt.Errorf("E1: %s: %w", entry.Key, err)
		}
		ov, err := MeasureOverhead(eng, tr)
		if err != nil {
			return nil, fmt.Errorf("E1: %s: %w", entry.Key, err)
		}
		t.AddRow(entry.Name, entry.Cipher, entry.BlockBits, eng.Gates(),
			fmt.Sprintf("%.1f%%", 100*ov), entry.ClaimedCost)
	}
	t.Notes = append(t.Notes,
		"overhead vs identical plaintext system, sequential workload (35% data refs, 30% writes, 3% jumps)")
	return t, nil
}

// E2StreamVsBlock measures §2.2's architectural argument: the stream
// cipher's keystream generation overlaps the external fetch, while a
// (non-pipelined) block cipher cannot start until a whole block arrives.
func E2StreamVsBlock(refs int) (*Table, error) {
	t := &Table{
		ID:         "E2",
		Title:      "stream vs block cipher on the miss path (Fig. 2a/2b)",
		PaperClaim: "\"stream cipher seems to be more suitable in term of performance: the key stream generation can be parallelised with external data fetch\"",
		Header:     []string{"engine", "workload", "overhead"},
	}
	padSrc := stream.NewPadSource(stream.NewGeffe(0x51EA), 0x51EA, 32)
	streamEng, err := streamengine.New(streamengine.Config{Pads: padSrc, KeystreamCyclesPerByte: 1, Gates: 6000})
	if err != nil {
		return nil, err
	}
	aesBlk, err := aes.New([]byte("0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	iterative, err := blockengine.New(blockengine.Config{
		Name: "aes-ecb-iterative", Cipher: aesBlk, Mode: blockengine.ECB,
		Timing: edu.PipelineTiming{Latency: 44, II: 44}, Gates: 25_000,
	})
	if err != nil {
		return nil, err
	}
	aesBlk2, _ := aes.New([]byte("0123456789abcdef"))
	ctr, err := blockengine.New(blockengine.Config{
		Name: "aes-ctr (block as stream)", Cipher: aesBlk2, Mode: blockengine.CTR,
		Timing: edu.PipelineTiming{Latency: 14, II: 1}, Gates: products.XOMGates, Salt: 3,
	})
	if err != nil {
		return nil, err
	}

	workloads := []*trace.Trace{
		trace.CodeOnly(trace.Config{Refs: refs, Seed: 12, JumpRate: 0.02}),
		trace.PointerChase(trace.Config{Refs: refs, Seed: 14, DataSize: 8 << 20}),
	}
	for _, eng := range []edu.Engine{streamEng, iterative, ctr} {
		for _, tr := range workloads {
			// Fresh engine state per run where it matters (these are
			// stateless on the read path, reuse is fine).
			ov, err := MeasureOverhead(eng, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(eng.Name(), tr.Name, fmt.Sprintf("%.2f%%", 100*ov))
		}
	}
	t.Notes = append(t.Notes,
		"iterative AES cannot overlap: pays full latency per block on every miss",
		"CTR drives a block cipher from the address, recovering the stream cipher's overlap")
	return t, nil
}

// E3WritePenalty measures §2.2's five-step read-decipher-modify-
// recipher-write sequence: sub-block stores under a write-through cache,
// swept across write fractions.
func E3WritePenalty(refs int) (*Table, error) {
	t := &Table{
		ID:         "E3",
		Title:      "sub-block write penalty (read-decipher-modify-recipher-write)",
		PaperClaim: "\"a write operation can have an even worst impact on the performance\" (§2.2)",
		Header:     []string{"write fraction", "engine", "RMW events", "overhead"},
	}
	for _, wf := range []float64{0.1, 0.3, 0.5, 0.7} {
		tr := trace.Sequential(trace.Config{
			Refs: refs, Seed: 21, LoadFraction: 0.4, WriteFraction: wf, JumpRate: 0.02, Locality: 0.5,
		})
		cfg := soc.DefaultConfig()
		cfg.Cache.WriteMode = cache.WriteThrough

		aesBlk, err := aes.New([]byte("0123456789abcdef"))
		if err != nil {
			return nil, err
		}
		ecb, err := blockengine.New(blockengine.Config{
			Name: "aes-ecb", Cipher: aesBlk, Mode: blockengine.ECB,
			Timing: edu.PipelineTiming{Latency: 14, II: 1}, Gates: products.XOMGates,
		})
		if err != nil {
			return nil, err
		}
		aesBlk2, _ := aes.New([]byte("0123456789abcdef"))
		ctr, err := blockengine.New(blockengine.Config{
			Name: "aes-ctr", Cipher: aesBlk2, Mode: blockengine.CTR,
			Timing: edu.PipelineTiming{Latency: 14, II: 1}, Gates: products.XOMGates, Salt: 5,
		})
		if err != nil {
			return nil, err
		}

		for _, eng := range []edu.Engine{ecb, ctr} {
			base, with, err := soc.Compare(cfg, eng, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(fmt.Sprintf("%.0f%%", 100*wf), eng.Name(), with.RMWEvents,
				fmt.Sprintf("%.2f%%", 100*with.OverheadVs(base)))
		}
	}
	t.Notes = append(t.Notes,
		"write-through cache: every sub-block store under a block cipher triggers the five-step RMW",
		"CTR's byte-granular pad never needs RMW — the penalty vanishes")
	return t, nil
}

// E4ECBLeakage measures the §2.2 determinism weakness: the duplicate-
// ciphertext-block ratio a bus probe extracts under each mode, on a
// structured (repetitive) program image.
func E4ECBLeakage() (*Table, error) {
	t := &Table{
		ID:         "E4",
		Title:      "ECB determinism leak vs chained/addressed modes",
		PaperClaim: "\"a same data will be ciphered to the same value; which is the main security weakness of that mode\" (§2.2)",
		Header:     []string{"mode", "dup-block ratio", "plaintext found by probe"},
	}
	// A structured image: zero pages, repeated constants, copied code —
	// 75% duplicate 16-byte blocks in plaintext.
	img := make([]byte, 4096)
	copy(img, compress.SyntheticProgram(1024, 7))
	for off := 1024; off < 4096; off += 1024 {
		copy(img[off:], img[:1024])
	}

	run := func(name string, eng edu.Engine) error {
		cfg := soc.DefaultConfig()
		cfg.Engine = eng
		s, err := soc.New(cfg)
		if err != nil {
			return err
		}
		if err := s.LoadImage(0, img); err != nil {
			return err
		}
		probe := &attack.Probe{}
		s.Bus().Attach(probe)
		// Touch every line so the probe captures the whole image.
		var refs []trace.Ref
		for a := uint64(0); a < uint64(len(img)); a += 32 {
			refs = append(refs, trace.Ref{Kind: trace.Fetch, Addr: a, Size: 4})
		}
		s.Run(&trace.Trace{Name: "sweep", Refs: refs})
		ratio := attack.DuplicateBlockRatio(probe.Data(), 16)
		found := probe.ContainsPlaintext(img[:16])
		t.AddRow(name, ratio, found)
		return nil
	}

	if err := run("plaintext", edu.Null{}); err != nil {
		return nil, err
	}
	aesBlk, _ := aes.New([]byte("0123456789abcdef"))
	ecb, err := blockengine.New(blockengine.Config{
		Name: "ecb", Cipher: aesBlk, Mode: blockengine.ECB,
		Timing: edu.PipelineTiming{Latency: 14, II: 1},
	})
	if err != nil {
		return nil, err
	}
	if err := run("aes-ecb", ecb); err != nil {
		return nil, err
	}
	aegis, err := products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 9)
	if err != nil {
		return nil, err
	}
	if err := run("aegis line-CBC", aegis); err != nil {
		return nil, err
	}
	padSrc := stream.NewPadSource(stream.NewGeffe(0xE4), 0xE4, 32)
	streamEng, err := streamengine.New(streamengine.Config{Pads: padSrc, KeystreamCyclesPerByte: 1})
	if err != nil {
		return nil, err
	}
	if err := run("stream", streamEng); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		"structured image: 75% duplicate plaintext blocks; ECB preserves every equality",
		"address-bound modes (AEGIS IVs, per-line pads) reduce the probe's ratio to ~0")
	return t, nil
}

// E5CBCRandomAccess sweeps the jump rate against the General Instrument
// chained-CBC engine: its chain-restart penalty grows with jumps while
// an ECB engine stays flat — the "random data access problem (JUMP
// instructions)".
func E5CBCRandomAccess(refs int) (*Table, error) {
	t := &Table{
		ID:         "E5",
		Title:      "CBC chaining vs random access (jump-rate sweep)",
		PaperClaim: "\"cipher block chaining technique is very robust but implies unacceptable CPU performance degradation for random accesses\" (§3)",
		Header:     []string{"jump rate", "gi-3des-cbc overhead", "xom-ecb overhead", "cbc/ecb ratio"},
	}
	for _, jr := range []float64{0.0, 0.02, 0.05, 0.1, 0.2} {
		tr := trace.CodeOnly(trace.Config{Refs: refs, Seed: 31, JumpRate: jr, CodeSize: 4 << 20})

		gi, err := products.NewGeneralInstrument([]byte("0123456789abcdef01234567"), []byte("mac-key!"))
		if err != nil {
			return nil, err
		}
		ovCBC, err := MeasureOverhead(gi, tr)
		if err != nil {
			return nil, err
		}
		xom, err := products.XOM([]byte("0123456789abcdef"))
		if err != nil {
			return nil, err
		}
		ovECB, err := MeasureOverhead(xom, tr)
		if err != nil {
			return nil, err
		}
		ratio := 0.0
		if ovECB > 0 {
			ratio = ovCBC / ovECB
		}
		t.AddRow(fmt.Sprintf("%.0f%%", 100*jr), fmt.Sprintf("%.2f%%", 100*ovCBC),
			fmt.Sprintf("%.2f%%", 100*ovECB), fmt.Sprintf("%.1fx", ratio))
	}
	t.Notes = append(t.Notes,
		"the chained engine pays an extra predecessor-block fetch on every non-sequential fill")
	return t, nil
}

// E6Aegis reproduces the AEGIS quotes: ~25% overhead, 300k gates, the
// whole-cache-block stall, and the counter-vs-random IV choice against
// the birthday attack. Ablations: whole-line stall off, iterative core,
// random IV leak.
func E6Aegis(refs int) (*Table, error) {
	t := &Table{
		ID:         "E6",
		Title:      "AEGIS engine: overhead, area, IV scheme (with ablations)",
		PaperClaim: "\"they estimate the performance overhead induced by the encryption engine to 25%\"; 300,000 gates; whole-block decipher before fetch",
		Header:     []string{"variant", "workload", "overhead", "gates"},
	}
	key := []byte("0123456789abcdef")
	build := func(whole bool, ii int) (edu.Engine, error) {
		c, err := aes.New(key)
		if err != nil {
			return nil, err
		}
		name := "aegis"
		if !whole {
			name += "-cwf"
		}
		if ii > 1 {
			name += "-iterative"
		}
		return blockengine.New(blockengine.Config{
			Name: name, Cipher: c, Mode: blockengine.LineCBC,
			Timing: edu.PipelineTiming{Latency: 14 * ii, II: ii},
			Gates:  products.AEGISGates, Salt: 0xae915, IVMode: modes.IVCounter,
			WholeLineStall: whole,
		})
	}
	workloads := []*trace.Trace{
		trace.PointerChase(trace.Config{Refs: refs, Seed: 14, DataSize: 8 << 20}),
		trace.Sequential(trace.Config{Refs: refs, Seed: 11, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7}),
	}
	variants := []struct {
		whole bool
		ii    int
	}{{true, 1}, {false, 1}, {true, 14}}
	for _, v := range variants {
		for _, tr := range workloads {
			eng, err := build(v.whole, v.ii)
			if err != nil {
				return nil, err
			}
			ov, err := MeasureOverhead(eng, tr)
			if err != nil {
				return nil, err
			}
			t.AddRow(eng.Name(), tr.Name, fmt.Sprintf("%.1f%%", 100*ov), eng.Gates())
		}
	}

	// IV scheme: rewrite leak under random vs counter vectors, and the
	// analytic birthday bound the survey alludes to.
	c, _ := aes.New(key)
	random := modes.NewBlockCBC(c, modes.IVRandom, 1)
	counter := modes.NewBlockCBC(c, modes.IVCounter, 1)
	line := make([]byte, 32)
	leakR := attack.RewriteLeak(bcAdapter{random}, 0x1000, line, 16)
	leakC := attack.RewriteLeak(bcAdapter{counter}, 0x1000, line, 16)
	t.AddRow("iv=random rewrite leak", "16 rewrites", fmt.Sprintf("%d repeats", leakR), "-")
	t.AddRow("iv=counter rewrite leak", "16 rewrites", fmt.Sprintf("%d repeats", leakC), "-")
	p := attack.BirthdayCollisionProbability(64, 1<<32)
	t.AddRow("birthday P(collision)", "2^32 random 64-bit IVs", fmt.Sprintf("%.2f", p), "-")
	t.Notes = append(t.Notes,
		"paper's 25% includes integrity machinery this engine omits; shape target is tens of percent on miss-heavy workloads",
		"counter IVs eliminate rewrite repetition — the survey's birthday-attack fix")
	return t, nil
}

type bcAdapter struct{ bc *modes.BlockCBC }

func (a bcAdapter) EncryptLine(addr uint64, dst, src []byte) { a.bc.EncryptBlockAt(addr, dst, src) }

// E7XomPipeline verifies the XOM quotes at the timing-model level and in
// the system: 14-cycle latency, one block per cycle.
func E7XomPipeline(refs int) (*Table, error) {
	t := &Table{
		ID:         "E7",
		Title:      "XOM pipelined AES: latency and throughput",
		PaperClaim: "\"a low latency of 14 latency cycles, while a throughput of one encrypted/decrypted data per clock cycle\"",
		Header:     []string{"quantity", "value"},
	}
	pt := edu.PipelineTiming{Latency: 14, II: 1}
	t.AddRow("single-block latency (cycles)", pt.ExtraCycles(1, 0))
	t.AddRow("64-block burst completion (cycles)", pt.LineCycles(64, 0))
	t.AddRow("sustained throughput (blocks/cycle)", fmt.Sprintf("%.3f", 63.0/float64(pt.LineCycles(64, 0)-pt.LineCycles(1, 0))))

	xom, err := products.XOM([]byte("0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	for _, src := range WorkloadSources(refs) {
		ov, err := MeasureOverhead(xom, src)
		if err != nil {
			return nil, err
		}
		t.AddRow("overhead on "+src.Label(), fmt.Sprintf("%.2f%%", 100*ov))
	}
	t.Notes = append(t.Notes,
		"the survey: \"taking into account only the latency doesn't inform about the overall system cost\" — hence the per-workload rows")
	return t, nil
}

// E8Gilmont checks the < 2.5% claim for static-code deciphering with
// fetch prediction, and shows the claim's boundary: it holds for code,
// not for write-heavy data (which the design leaves in clear).
func E8Gilmont(refs int) (*Table, error) {
	t := &Table{
		ID:         "E8",
		Title:      "Gilmont fetch prediction + pipelined 3-DES",
		PaperClaim: "\"They assume to keep the deciphering cost under 2,5% in term of performance cost\" (code-only)",
		Header:     []string{"code footprint", "jump rate", "prediction rate", "overhead", "claim met"},
	}
	type point struct {
		size uint64
		jr   float64
	}
	// Two sweeps share the table: footprint at a fixed realistic jump
	// rate (loops resident vs thrashing), then jump rate at a hot
	// footprint. The <2.5% claim lives where real code lives: hot loops
	// that fit the cache, so fills are rare and almost all sequential.
	points := []point{
		{8 << 10, 0.02}, {16 << 10, 0.02}, {64 << 10, 0.02}, {2 << 20, 0.02},
		{16 << 10, 0.0}, {16 << 10, 0.10},
	}
	for _, p := range points {
		tr := trace.CodeOnly(trace.Config{Refs: refs, Seed: 41, JumpRate: p.jr, CodeSize: p.size})
		eng, err := gilmont.New(gilmont.Config{
			Key: []byte("0123456789abcdef01234567"), CodeLimit: CodeLimit, Gates: products.GilmontGates,
		})
		if err != nil {
			return nil, err
		}
		base, with, err := soc.Compare(soc.DefaultConfig(), eng, tr)
		if err != nil {
			return nil, err
		}
		ov := with.OverheadVs(base)
		t.AddRow(fmt.Sprintf("%dK", p.size>>10), fmt.Sprintf("%.0f%%", 100*p.jr),
			fmt.Sprintf("%.1f%%", 100*eng.PredictionRate()),
			fmt.Sprintf("%.2f%%", 100*ov), ov < 0.025)
	}
	t.Notes = append(t.Notes,
		"the claim holds when the hot code fits the cache (fills rare, nearly all sequential => predicted)",
		"thrashing footprints expose the 48-stage fill on every mispredicted jump target",
		"data traffic is NOT protected — the survey: \"authors are not confronted to smaller-than-block-size memory operations\"")
	return t, nil
}

// E9Kuhn reruns the DS5002FP break and the DS5240's resistance.
func E9Kuhn() (*Table, error) {
	t := &Table{
		ID:         "E9",
		Title:      "Kuhn cipher instruction search on DS5002FP; DS5240 resists",
		PaperClaim: "\"exhaustive attack (8-bit instruction -> 256 possibilities). After having identified the MOV instruction, he dumped the external memory content in clear form\"",
		Header:     []string{"target", "result", "probes"},
	}
	program := []byte("PAY-TV ACCESS CONTROL FIRMWARE -- entitlement keys: DEADBEEF CAFEBABE --")
	v, err := attack.NewVictim([]byte("battery!"), program)
	if err != nil {
		return nil, err
	}
	res, err := attack.Kuhn(v, 0x8000, len(program))
	if err != nil {
		return nil, err
	}
	recovered := string(res.Dump) == string(program)
	t.AddRow("ds5002fp (8-bit cipher)", fmt.Sprintf("full dump recovered: %v", recovered), res.Probes)

	hits, err := attack.DS5240SearchInfeasible([]byte("0123456789abcdef"), 200000, 42)
	if err != nil {
		return nil, err
	}
	t.AddRow("ds5240 (64-bit cipher)", fmt.Sprintf("chosen-gadget hits in 2e5 random injections: %d (need ~2^64)", hits), 200000)
	t.Notes = append(t.Notes,
		"probe budget: a few 256-way searches plus one gadget run per dumped byte",
		"the survey: \"the 8-bit based ciphering passes to 64-bit based ciphering\" — closing the search")
	return t, nil
}

// E10CodePack measures the compression claims: ~35% density gain and a
// performance impact of ±10% depending on memory speed.
func E10CodePack(refs int) (*Table, error) {
	t := &Table{
		ID:         "E10",
		Title:      "CodePack-style compression: density and memory-speed-dependent performance",
		PaperClaim: "\"performance impact is claimed to be about +/- 10% (depends on the type of memory used) and an increase of memory density of 35%\"",
		Header:     []string{"memory", "bus divider", "dram divider", "perf impact", "density gain"},
	}
	prog := compress.SyntheticProgram(256<<10, 77)
	codec, err := compress.Train(prog)
	if err != nil {
		return nil, err
	}
	im, err := codec.Compress(prog)
	if err != nil {
		return nil, err
	}
	density := im.Ratio()
	// The decoder runs at the memory-controller clock: two core cycles
	// per decoded instruction (CodePack's unit was not core-speed).
	codec.DecodeCyclesPerInstr = 2

	tr := trace.CodeOnly(trace.Config{Refs: refs, Seed: 51, JumpRate: 0.03, CodeSize: 2 << 20})
	memories := []struct {
		name    string
		busDiv  int
		dramDiv int
	}{
		{"fast (on-board SRAM-ish)", 1, 1},
		{"default SDRAM", 2, 3},
		{"slow (narrow flash)", 6, 8},
	}
	for _, m := range memories {
		cfg := soc.DefaultConfig()
		cfg.Bus.ClockDivider = m.busDiv
		cfg.DRAM.ClockDivider = m.dramDiv
		eng, err := compressengine.New(compressengine.Config{
			Codec: codec, Ratio: density, CodeLimit: CodeLimit, Gates: 20_000,
		})
		if err != nil {
			return nil, err
		}
		base, with, err := soc.Compare(cfg, eng, tr)
		if err != nil {
			return nil, err
		}
		t.AddRow(m.name, m.busDiv, m.dramDiv,
			fmt.Sprintf("%+.1f%%", 100*with.OverheadVs(base)),
			fmt.Sprintf("%.0f%%", 100*(density-1)))
	}
	t.Notes = append(t.Notes,
		"positive impact = slowdown (decode latency dominates on fast memory); negative = speedup (traffic savings dominate on slow memory) — the paper's '+/-'",
	)
	return t, nil
}

// E11CacheSide evaluates the Figure 7b placement against the equivalent
// Figure 7a stream engine: the per-access penalty, the doubled on-chip
// memory, and the absence of any performance win.
func E11CacheSide(refs int) (*Table, error) {
	t := &Table{
		ID:         "E11",
		Title:      "EDU between CPU and cache (Fig. 7b) vs stream EDU at Fig. 7a",
		PaperClaim: "\"this scheme seems to provide no benefit in term of performance when compared to a stream cipher located between cache memory and memory controller\"; keystream store = cache size",
		Header:     []string{"engine", "placement", "workload", "overhead", "gates"},
	}
	cfg := soc.DefaultConfig()
	mk7a := func() (edu.Engine, error) {
		pads := stream.NewPadSource(stream.NewGeffe(0x7A), 0x7A, cfg.Cache.LineSize)
		return streamengine.New(streamengine.Config{Pads: pads, KeystreamCyclesPerByte: 1, Gates: 6000})
	}
	mk7b := func() (edu.Engine, error) {
		pads := stream.NewPadSource(stream.NewGeffe(0x7B), 0x7B, cfg.Cache.LineSize)
		return cacheside.New(cacheside.Config{
			Pads: pads, CacheAccessPenalty: 1, CacheBytes: cfg.Cache.Size,
			KeystreamCyclesPerByte: 1, GeneratorGates: 6000,
		})
	}
	for _, src := range WorkloadSources(refs)[:3] {
		a, err := mk7a()
		if err != nil {
			return nil, err
		}
		ovA, err := MeasureOverhead(a, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(a.Name(), a.Placement().String(), src.Label(), fmt.Sprintf("%.2f%%", 100*ovA), a.Gates())

		b, err := mk7b()
		if err != nil {
			return nil, err
		}
		ovB, err := MeasureOverhead(b, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name(), b.Placement().String(), src.Label(), fmt.Sprintf("%.2f%%", 100*ovB), b.Gates())
	}
	t.Notes = append(t.Notes,
		"7b pays on every access (hit or miss) and its keystream store alone dwarfs the 7a generator",
		"\"doubling the integrated memory size seems to be unaffordable\" (§5)")
	return t, nil
}

// E12CompressThenEncrypt checks Figure 8's ordering rule and the
// combined engine's overhead against encryption alone.
func E12CompressThenEncrypt(refs int) (*Table, error) {
	t := &Table{
		ID:         "E12",
		Title:      "compression composed with encryption (Fig. 8)",
		PaperClaim: "\"The compression has to be done before ciphering, if not, compression will have a very poor ratio due to the strong stochastic properties of encrypted data\"",
		Header:     []string{"configuration", "value"},
	}
	prog := compress.SyntheticProgram(128<<10, 88)
	codec, err := compress.Train(prog)
	if err != nil {
		return nil, err
	}
	im, err := codec.Compress(prog)
	if err != nil {
		return nil, err
	}
	t.AddRow("compress(plaintext) ratio", fmt.Sprintf("%.3f", im.Ratio()))

	// Encrypt first, then try to compress: ratio collapses below 1.
	blk, _ := aes.New([]byte("0123456789abcdef"))
	ct := make([]byte, len(prog))
	modes.NewECB(blk).Encrypt(ct, prog)
	codecCT, err := compress.Train(ct)
	if err != nil {
		return nil, err
	}
	imCT, err := codecCT.Compress(ct)
	if err != nil {
		return nil, err
	}
	t.AddRow("compress(ciphertext) ratio", fmt.Sprintf("%.3f", imCT.Ratio()))

	// System overhead: encryption alone vs compress-then-encrypt,
	// measured in the memory regime where the proposal aims (external
	// memory slow relative to the core — the common embedded case; E10
	// shows compression loses on fast memory).
	tr := trace.CodeOnly(trace.Config{Refs: refs, Seed: 61, JumpRate: 0.03, CodeSize: 2 << 20})
	cfg := soc.DefaultConfig()
	cfg.Bus.ClockDivider = 4
	cfg.DRAM.ClockDivider = 6

	xom, err := products.XOM([]byte("0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	baseE, withE, err := soc.Compare(cfg, xom, tr)
	if err != nil {
		return nil, err
	}
	ovEnc := withE.OverheadVs(baseE)
	t.AddRow("overhead: encryption only (xom-aes)", fmt.Sprintf("%.2f%%", 100*ovEnc))

	inner, err := products.XOM([]byte("0123456789abcdef"))
	if err != nil {
		return nil, err
	}
	combo, err := compressengine.New(compressengine.Config{
		Codec: codec, Ratio: im.Ratio(), CodeLimit: CodeLimit, Inner: inner, Gates: 20_000,
	})
	if err != nil {
		return nil, err
	}
	baseC, withC, err := soc.Compare(cfg, combo, tr)
	if err != nil {
		return nil, err
	}
	ovCombo := withC.OverheadVs(baseC)
	t.AddRow("overhead: compress-then-encrypt", fmt.Sprintf("%.2f%%", 100*ovCombo))
	t.Notes = append(t.Notes,
		"compression shrinks the ciphered payload and the bus traffic; the survey's proposed mitigation",
		"measured with slow external memory (bus /4, dram /6) — compression's winning regime per E10")
	return t, nil
}

// E13BruteForce evaluates the §1 lifetime model.
func E13BruteForce() (*Table, error) {
	t := &Table{
		ID:         "E13",
		Title:      "brute-force keyspace lifetime under Moore's law",
		PaperClaim: "\"It's usually considered that a cryptosystem has a lifetime of at most 10 years due to the increase in computer processing power (Moore's law)\"",
		Header:     []string{"key bits", "example", "years to break (1e8 keys/s, 1.5y doubling)"},
	}
	names := map[int]string{
		8: "DS5002 per-byte space (Kuhn)", 56: "DES", 64: "generic 64-bit",
		80: "3-DES EDE2 (effective)", 112: "3-DES EDE3", 128: "AES-128",
	}
	b := attack.BruteForce{KeysPerSecond: 1e8, DoublingYears: 1.5}
	for _, row := range b.LifetimeTable() {
		t.AddRow(row.Bits, names[row.Bits], fmt.Sprintf("%.2f", row.Years))
	}
	t.Notes = append(t.Notes,
		"DES's fall inside a decade is the survey's motivating example; AES outlives the model")
	return t, nil
}

// E14KeyExchange runs the Figure 1 protocol end to end with a passive
// eavesdropper and reports what each party ends with.
func E14KeyExchange() (*Table, error) {
	t := &Table{
		ID:         "E14",
		Title:      "Figure 1 session-key exchange over a non-secure channel",
		PaperClaim: "six-step protocol: only the processor (holding Dm) recovers K and the software",
		Header:     []string{"party", "outcome"},
	}
	software := compress.SyntheticProgram(8<<10, 99)
	ch := &keyexchange.Channel{}
	spy := &spyTap{}
	ch.Tap(spy)
	m := keyexchange.NewManufacturer(1, 512)
	p, err := m.Provision("SN-42")
	if err != nil {
		return nil, err
	}
	e := keyexchange.NewEditor(2, software)
	installed, err := keyexchange.Run(ch, m, e, p)
	if err != nil {
		return nil, err
	}
	ok := len(installed) == len(software)
	for i := range installed {
		ok = ok && installed[i] == software[i]
	}
	t.AddRow("processor", fmt.Sprintf("installed %d bytes, matches editor's image: %v", len(installed), ok))
	t.AddRow("eavesdropper", fmt.Sprintf("captured %d messages, plaintext visible: %v", len(spy.msgs), spy.sawPlain(software)))
	t.AddRow("channel", fmt.Sprintf("%d messages total, all public", len(ch.Log())))
	t.Notes = append(t.Notes,
		"RSA here is textbook/deterministic-seeded for reproducibility (see internal/crypto/rsa docs)")
	return t, nil
}

type spyTap struct{ msgs []keyexchange.Message }

func (s *spyTap) Intercept(m keyexchange.Message) { s.msgs = append(s.msgs, m) }
func (s *spyTap) sawPlain(software []byte) bool {
	probe := software[:16]
	for _, m := range s.msgs {
		if containsSub(m.Body, probe) {
			return true
		}
	}
	return false
}

func containsSub(hay, needle []byte) bool {
	if len(needle) == 0 || len(hay) < len(needle) {
		return false
	}
outer:
	for i := 0; i+len(needle) <= len(hay); i++ {
		for j := range needle {
			if hay[i+j] != needle[j] {
				continue outer
			}
		}
		return true
	}
	return false
}

// E15Best probes the Best cipher's character: functional bus encryption,
// address-bound (no cross-address ECB leak), but deterministic per
// address and built from a small alphabet space — 1979-grade robustness.
func E15Best() (*Table, error) {
	t := &Table{
		ID:         "E15",
		Title:      "Best's substitution/transposition cipher: strengths and weaknesses",
		PaperClaim: "\"basic cryptographic functions such as mono and poly-alphabetic substitutions and byte transpositions\" (Fig. 3)",
		Header:     []string{"property", "measured"},
	}
	c, err := bestcipher.New([]byte("bestkey!"))
	if err != nil {
		return nil, err
	}

	// Cross-address determinism leak (should be ~0: poly-alphabetic).
	line := []byte("MOV A,#5")
	seen := map[string]int{}
	const addrs = 2048
	for a := uint64(0); a < addrs*8; a += 8 {
		ct := make([]byte, 8)
		c.EncryptAt(a, ct, line)
		seen[string(ct)]++
	}
	dups := addrs - len(seen)
	t.AddRow("same block at 2048 addresses: duplicate ciphertexts", dups)

	// Per-address determinism (the weakness: rewrites repeat).
	ct1 := make([]byte, 8)
	ct2 := make([]byte, 8)
	c.EncryptAt(0x100, ct1, line)
	c.EncryptAt(0x100, ct2, line)
	t.AddRow("rewrite at same address repeats ciphertext", string(ct1) == string(ct2))

	// Alphabet reuse: per-byte-address alphabets are shifts of ONE box,
	// so two byte addresses share an alphabet whenever their shifts
	// collide (expected rate 1/256) — the toehold for frequency
	// analysis. The attacker's chosen-plaintext procedure: locate where
	// position 0 lands after the (fixed per-address) transposition via a
	// one-byte differential, then compare the value→ciphertext mapping
	// on a few sample values.
	posOf := func(addr uint64) int {
		p := make([]byte, 8)
		q := make([]byte, 8)
		c.EncryptAt(addr, p, []byte{0, 0, 0, 0, 0, 0, 0, 0})
		c.EncryptAt(addr, q, []byte{1, 0, 0, 0, 0, 0, 0, 0})
		for i := range p {
			if p[i] != q[i] {
				return i
			}
		}
		return 0
	}
	alphaSample := func(addr uint64) [4]byte {
		pos := posOf(addr)
		var out [4]byte
		for i, v := range []byte{0x00, 0x01, 0x42, 0xAD} {
			blk := make([]byte, 8)
			blk[0] = v
			ct := make([]byte, 8)
			c.EncryptAt(addr, ct, blk)
			out[i] = ct[pos]
		}
		return out
	}
	collisions := 0
	const pairs = 4096
	rng := rand.New(rand.NewSource(15))
	for i := 0; i < pairs; i++ {
		a1 := uint64(rng.Intn(1<<24)) &^ 7
		a2 := uint64(rng.Intn(1<<24)) &^ 7
		if a1 == a2 {
			continue
		}
		if alphaSample(a1) == alphaSample(a2) {
			collisions++
		}
	}
	t.AddRow(fmt.Sprintf("alphabet collisions in %d random address pairs (expect ~%d)", pairs, pairs/256), collisions)
	t.Notes = append(t.Notes,
		"address binding defeats naive ECB scanning, but alphabet reuse at 1/256 rate and deterministic rewrites give a class-II attacker statistical traction",
	)
	return t, nil
}

// E16VlsiDma measures the page-wise secure-DMA design: amortization on
// local workloads, collapse on scattered ones, trust assumption noted.
func E16VlsiDma(refs int) (*Table, error) {
	t := &Table{
		ID:         "E16",
		Title:      "VLSI secure-DMA page transfers (Fig. 4)",
		PaperClaim: "\"data transfers to and from the external memory are done page-by-page ... viable provided that the OS is trusted\"",
		Header:     []string{"workload", "page-fault rate", "vlsi overhead", "per-line 3-des overhead"},
	}
	workloads := []trace.RefSource{
		trace.StreamingSource(trace.Config{Refs: refs, Seed: 71, WriteFraction: 0.2, DataSize: 1 << 20}),
		trace.SequentialSource(trace.Config{Refs: refs, Seed: 72, LoadFraction: 0.35, WriteFraction: 0.3, JumpRate: 0.03, Locality: 0.7}),
		trace.PointerChaseSource(trace.Config{Refs: refs, Seed: 73, DataSize: 16 << 20}),
	}
	for _, src := range workloads {
		vlsi, err := products.NewVLSI([]byte("on-chip!"), 4096, 8)
		if err != nil {
			return nil, err
		}
		ovV, err := MeasureOverhead(vlsi, src)
		if err != nil {
			return nil, err
		}
		perLine, err := products.NewDS5240([]byte("0123456789abcdef01234567"))
		if err != nil {
			return nil, err
		}
		ovL, err := MeasureOverhead(perLine, src)
		if err != nil {
			return nil, err
		}
		t.AddRow(src.Label(), fmt.Sprintf("%.1f%%", 100*vlsi.PageFaultRate()),
			fmt.Sprintf("%.2f%%", 100*ovV), fmt.Sprintf("%.2f%%", 100*ovL))
	}
	t.Notes = append(t.Notes,
		"page residency amortizes the DES core on local workloads; scattered access defeats it",
		"the DMA is OS-controlled: the scheme's security is conditional on a trusted OS")
	return t, nil
}
