package core

import (
	"strconv"
	"strings"
	"testing"
)

// The experiment tests assert SHAPE, not absolute numbers: who wins, by
// roughly what factor, where the crossovers fall — the reproduction
// standard DESIGN.md sets. A short trace keeps them fast.
const testRefs = 20000

// pct parses a "12.3%"-style cell back to a float.
func pct(t *testing.T, cell string) float64 {
	t.Helper()
	s := strings.TrimSuffix(strings.TrimPrefix(cell, "+"), "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cannot parse %q: %v", cell, err)
	}
	return v / 100
}

func TestE1AllEnginesPresent(t *testing.T) {
	tbl, err := E1SurveyTable(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 8 {
		t.Fatalf("E1 has %d rows, want 8", len(tbl.Rows))
	}
	// AEGIS must land near its quoted 25% on the mixed workload.
	for _, row := range tbl.Rows {
		if strings.Contains(row[0], "AEGIS") {
			ov := pct(t, row[4])
			if ov < 0.10 || ov > 0.45 {
				t.Errorf("AEGIS overhead %.1f%% outside the tens-of-percent band", 100*ov)
			}
		}
	}
}

func TestE2StreamBeatsIterativeBlock(t *testing.T) {
	tbl, err := E2StreamVsBlock(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	var streamOv, iterOv, ctrOv float64
	for _, row := range tbl.Rows {
		ov := pct(t, row[2])
		switch {
		case row[0] == "stream" && row[1] == "pointer-chase":
			streamOv = ov
		case strings.Contains(row[0], "iterative") && row[1] == "pointer-chase":
			iterOv = ov
		case strings.Contains(row[0], "ctr") && row[1] == "pointer-chase":
			ctrOv = ov
		}
	}
	if iterOv < 5*streamOv {
		t.Errorf("iterative block (%.1f%%) should dwarf stream (%.1f%%)", 100*iterOv, 100*streamOv)
	}
	if ctrOv > 3*streamOv+0.02 {
		t.Errorf("CTR (%.1f%%) should be near stream (%.1f%%)", 100*ctrOv, 100*streamOv)
	}
}

func TestE3RMWGrowsWithWriteFraction(t *testing.T) {
	tbl, err := E3WritePenalty(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	var ecbOv []float64
	for _, row := range tbl.Rows {
		if row[1] == "aes-ecb" {
			ecbOv = append(ecbOv, pct(t, row[3]))
		}
		if row[1] == "aes-ctr" {
			if rmw := row[2]; rmw != "0" {
				t.Errorf("CTR reported RMW events: %s", rmw)
			}
		}
	}
	for i := 1; i < len(ecbOv); i++ {
		if ecbOv[i] <= ecbOv[i-1] {
			t.Errorf("ECB RMW overhead not increasing: %v", ecbOv)
		}
	}
	if last := ecbOv[len(ecbOv)-1]; last < 0.2 {
		t.Errorf("heavy-write ECB overhead %.1f%% too small for the 'even worse' claim", 100*last)
	}
}

func TestE4ECBLeaksOthersDoNot(t *testing.T) {
	tbl, err := E4ECBLeakage()
	if err != nil {
		t.Fatal(err)
	}
	got := map[string][2]string{}
	for _, row := range tbl.Rows {
		got[row[0]] = [2]string{row[1], row[2]}
	}
	if got["plaintext"][1] != "true" {
		t.Error("plaintext bus should reveal the program to the probe")
	}
	if got["aes-ecb"][1] != "false" {
		t.Error("ECB should still hide literal plaintext")
	}
	ecbRatio, _ := strconv.ParseFloat(got["aes-ecb"][0], 64)
	aegisRatio, _ := strconv.ParseFloat(got["aegis line-CBC"][0], 64)
	if ecbRatio < 0.5 {
		t.Errorf("ECB duplicate ratio %.2f should preserve the plaintext's 0.75", ecbRatio)
	}
	if aegisRatio > 0.05 {
		t.Errorf("AEGIS duplicate ratio %.2f should be ~0", aegisRatio)
	}
}

func TestE5ChainedCBCWorseAndGrowing(t *testing.T) {
	tbl, err := E5CBCRandomAccess(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	first := pct(t, tbl.Rows[0][1])
	last := pct(t, tbl.Rows[len(tbl.Rows)-1][1])
	if last <= first {
		t.Errorf("CBC overhead should grow with jump rate: %.1f%% -> %.1f%%", 100*first, 100*last)
	}
	for _, row := range tbl.Rows {
		cbc, ecb := pct(t, row[1]), pct(t, row[2])
		if cbc < 3*ecb {
			t.Errorf("jump %s: chained CBC (%.1f%%) should dwarf ECB (%.1f%%)", row[0], 100*cbc, 100*ecb)
		}
	}
}

func TestE6AegisShape(t *testing.T) {
	tbl, err := E6Aegis(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	var pipelined, iterative float64
	for _, row := range tbl.Rows {
		switch {
		case row[0] == "aegis" && row[1] == "sequential":
			pipelined = pct(t, row[2])
		case row[0] == "aegis-iterative" && row[1] == "sequential":
			iterative = pct(t, row[2])
		case row[0] == "iv=random rewrite leak":
			if row[2] != "15 repeats" {
				t.Errorf("random IV leak: %s", row[2])
			}
		case row[0] == "iv=counter rewrite leak":
			if row[2] != "0 repeats" {
				t.Errorf("counter IV leak: %s", row[2])
			}
		}
	}
	if pipelined < 0.08 || pipelined > 0.45 {
		t.Errorf("AEGIS pipelined overhead %.1f%% out of band", 100*pipelined)
	}
	if iterative < 3*pipelined {
		t.Errorf("iterative ablation (%.1f%%) should dwarf pipelined (%.1f%%)", 100*iterative, 100*pipelined)
	}
}

func TestE7XomQuotes(t *testing.T) {
	tbl, err := E7XomPipeline(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1] != "14" {
		t.Errorf("latency row: %v", tbl.Rows[0])
	}
	if tbl.Rows[1][1] != "77" { // 14 + 63
		t.Errorf("burst row: %v", tbl.Rows[1])
	}
	if tbl.Rows[2][1] != "1.000" {
		t.Errorf("throughput row: %v", tbl.Rows[2])
	}
}

func TestE8ClaimMetForResidentCode(t *testing.T) {
	tbl, err := E8Gilmont(60000) // needs steady state; warmup dominates short runs
	if err != nil {
		t.Fatal(err)
	}
	metSomewhere := false
	var smallFootprint, thrashing float64
	for _, row := range tbl.Rows {
		if row[4] == "true" {
			metSomewhere = true
		}
		if row[0] == "8K" && row[1] == "2%" {
			smallFootprint = pct(t, row[3])
		}
		if row[0] == "2048K" && row[1] == "2%" {
			thrashing = pct(t, row[3])
		}
	}
	if !metSomewhere {
		t.Error("the <2.5% claim should hold somewhere in the sweep")
	}
	if smallFootprint >= thrashing {
		t.Errorf("resident code (%.2f%%) should beat thrashing code (%.2f%%)", 100*smallFootprint, 100*thrashing)
	}
}

func TestE9KuhnBreaksDS5002Not5240(t *testing.T) {
	tbl, err := E9Kuhn()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Rows[0][1], "true") {
		t.Errorf("DS5002 dump should succeed: %v", tbl.Rows[0])
	}
	if !strings.Contains(tbl.Rows[1][1], "hits in 2e5 random injections: 0") {
		t.Errorf("DS5240 should resist: %v", tbl.Rows[1])
	}
}

func TestE10PlusMinusShape(t *testing.T) {
	tbl, err := E10CodePack(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	fast := pct(t, tbl.Rows[0][3])
	slow := pct(t, tbl.Rows[len(tbl.Rows)-1][3])
	if fast <= 0 {
		t.Errorf("fast memory should show a slowdown, got %+.1f%%", 100*fast)
	}
	if slow >= 0 {
		t.Errorf("slow memory should show a speedup, got %+.1f%%", 100*slow)
	}
	// Density gain in the CodePack band.
	if d := tbl.Rows[0][4]; d != "32%" && d != "33%" && d != "34%" && d != "35%" && d != "36%" {
		t.Errorf("density gain %s outside ~35%% band", d)
	}
}

func TestE11CacheSideNeverWins(t *testing.T) {
	tbl, err := E11CacheSide(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	// Pair rows: 7a then 7b per workload; 7b must never be cheaper.
	for i := 0; i+1 < len(tbl.Rows); i += 2 {
		a := pct(t, tbl.Rows[i][3])
		b := pct(t, tbl.Rows[i+1][3])
		if b < a {
			t.Errorf("workload %s: 7b (%.2f%%) beat 7a (%.2f%%)", tbl.Rows[i][2], 100*b, 100*a)
		}
		gatesA, _ := strconv.Atoi(tbl.Rows[i][4])
		gatesB, _ := strconv.Atoi(tbl.Rows[i+1][4])
		if gatesB < 10*gatesA {
			t.Errorf("7b area (%d) should dwarf 7a (%d)", gatesB, gatesA)
		}
	}
}

func TestE12OrderingRule(t *testing.T) {
	tbl, err := E12CompressThenEncrypt(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	plainRatio, _ := strconv.ParseFloat(tbl.Rows[0][1], 64)
	ctRatio, _ := strconv.ParseFloat(tbl.Rows[1][1], 64)
	if plainRatio < 1.2 {
		t.Errorf("plaintext should compress: ratio %.2f", plainRatio)
	}
	if ctRatio >= 1.0 {
		t.Errorf("ciphertext should not compress: ratio %.2f", ctRatio)
	}
	encOnly := pct(t, tbl.Rows[2][1])
	combo := pct(t, tbl.Rows[3][1])
	if combo >= encOnly {
		t.Errorf("compress-then-encrypt (%.1f%%) should beat encryption alone (%.1f%%)", 100*combo, 100*encOnly)
	}
}

func TestE13LifetimeShape(t *testing.T) {
	tbl, err := E13BruteForce()
	if err != nil {
		t.Fatal(err)
	}
	var desYears float64
	for _, row := range tbl.Rows {
		if row[0] == "56" {
			desYears, _ = strconv.ParseFloat(row[2], 64)
		}
	}
	if desYears <= 0 || desYears > 10 {
		t.Errorf("DES lifetime %.1f years; the survey's ~10-year rule should catch it", desYears)
	}
}

func TestE14ProtocolOutcomes(t *testing.T) {
	tbl, err := E14KeyExchange()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(tbl.Rows[0][1], "matches editor's image: true") {
		t.Errorf("processor row: %v", tbl.Rows[0])
	}
	if !strings.Contains(tbl.Rows[1][1], "plaintext visible: false") {
		t.Errorf("eavesdropper row: %v", tbl.Rows[1])
	}
}

func TestE15BestCharacter(t *testing.T) {
	tbl, err := E15Best()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Rows[0][1] != "0" {
		t.Errorf("cross-address duplicates: %s, want 0 (poly-alphabetic)", tbl.Rows[0][1])
	}
	if tbl.Rows[1][1] != "true" {
		t.Error("rewrites should repeat (deterministic per address)")
	}
	collisions, _ := strconv.Atoi(tbl.Rows[2][1])
	if collisions < 4 || collisions > 64 {
		t.Errorf("alphabet collisions %d far from the ~16 expectation", collisions)
	}
}

func TestE16PageLocalityShape(t *testing.T) {
	tbl, err := E16VlsiDma(testRefs)
	if err != nil {
		t.Fatal(err)
	}
	// Streaming (first row) must fault rarely and beat the per-line
	// engine; pointer-chase (last row) must fault almost always.
	firstFault := pct(t, tbl.Rows[0][1])
	lastFault := pct(t, tbl.Rows[len(tbl.Rows)-1][1])
	if firstFault > 0.05 {
		t.Errorf("streaming fault rate %.1f%% too high", 100*firstFault)
	}
	if lastFault < 0.8 {
		t.Errorf("pointer-chase fault rate %.1f%% too low", 100*lastFault)
	}
	for _, row := range tbl.Rows {
		vlsi, perLine := pct(t, row[2]), pct(t, row[3])
		if row[0] == "streaming" && vlsi > perLine/10 {
			t.Errorf("streaming: VLSI (%.1f%%) should crush per-line (%.1f%%)", 100*vlsi, 100*perLine)
		}
	}
}

func TestFullSuiteRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	var tables []*Table
	for _, exp := range Experiments() {
		tbl, err := exp.Run(10000)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		tables = append(tables, tbl)
	}
	if len(tables) != 22 {
		t.Fatalf("%d tables, want 22", len(tables))
	}
	for _, tbl := range tables {
		if len(tbl.Rows) == 0 {
			t.Errorf("%s: empty table", tbl.ID)
		}
		if tbl.String() == "" {
			t.Errorf("%s: empty rendering", tbl.ID)
		}
	}
}
