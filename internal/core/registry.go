package core

import (
	"fmt"
	"strings"
)

// Experiment is one entry of the DESIGN.md experiment index: a stable
// ID and a runner. Experiments whose cost is not trace-driven (E4, E9,
// E13–E15) ignore the refs argument.
type Experiment struct {
	// ID is the index identifier, "E1".."E22".
	ID string
	// Title is the one-line description used by listings.
	Title string
	// Run regenerates the experiment's table at the given trace length.
	Run func(refs int) (*Table, error)
}

// Experiments returns the full experiment index in suite order. This is
// the single registry the survey CLI, the campaign scheduler, and the
// root benchmarks all drive, so an experiment added here appears
// everywhere.
func Experiments() []Experiment {
	return []Experiment{
		{"E1", "survey comparison table (all engines, mixed workload)", E1SurveyTable},
		{"E2", "stream vs block cipher on the miss path", E2StreamVsBlock},
		{"E3", "sub-block write penalty (RMW sequence)", E3WritePenalty},
		{"E4", "ECB determinism leak vs chained/addressed modes", func(int) (*Table, error) { return E4ECBLeakage() }},
		{"E5", "CBC chaining vs random access (jump-rate sweep)", E5CBCRandomAccess},
		{"E6", "AEGIS engine: overhead, area, IV scheme", E6Aegis},
		{"E7", "XOM pipelined AES: latency and throughput", E7XomPipeline},
		{"E8", "Gilmont fetch prediction + pipelined 3-DES", E8Gilmont},
		{"E9", "Kuhn cipher instruction search on DS5002FP", func(int) (*Table, error) { return E9Kuhn() }},
		{"E10", "CodePack-style compression density and performance", E10CodePack},
		{"E11", "EDU between CPU and cache (Fig. 7b) vs Fig. 7a", E11CacheSide},
		{"E12", "compression composed with encryption (Fig. 8)", E12CompressThenEncrypt},
		{"E13", "brute-force keyspace lifetime under Moore's law", func(int) (*Table, error) { return E13BruteForce() }},
		{"E14", "Figure 1 session-key exchange", func(int) (*Table, error) { return E14KeyExchange() }},
		{"E15", "Best's substitution/transposition cipher", func(int) (*Table, error) { return E15Best() }},
		{"E16", "VLSI secure-DMA page transfers (Fig. 4)", E16VlsiDma},
		{"E17", "integrity against instruction modification (extension)", E17Integrity},
		{"E18", "design-space ablations around AEGIS (extension)", E18Ablations},
		{"E19", "per-process bus keys under multitasking (extension)", E19KeyManagement},
		{"E20", "authentication trees vs flat MAC design space (extension)", E20AuthTrees},
		{"E21", "active-adversary attack-rate sweep (extension)", E21AttackSweep},
		{"E22", "EDU placement across a two-level hierarchy (extension)", E22Hierarchy},
	}
}

// ExperimentByID resolves an index entry case-insensitively ("e6" works).
func ExperimentByID(id string) (Experiment, bool) {
	want := strings.ToUpper(strings.TrimSpace(id))
	for _, e := range Experiments() {
		if e.ID == want {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExperimentIDRange names the suite's span for error messages, so CLI
// hints track the registry as experiments are added.
func ExperimentIDRange() string {
	exps := Experiments()
	return fmt.Sprintf("%s..%s", exps[0].ID, exps[len(exps)-1].ID)
}
