package core

import "testing"

func TestParseEngineAuth(t *testing.T) {
	cases := []struct{ in, eng, auth string }{
		{"xom", "xom", "none"},
		{"xom+tree", "xom", "tree"},
		{"aegis+flat-fresh", "aegis", "flat-fresh"},
	}
	for _, c := range cases {
		eng, auth := ParseEngineAuth(c.in)
		if eng != c.eng || auth != c.auth {
			t.Errorf("ParseEngineAuth(%q) = %q,%q want %q,%q", c.in, eng, auth, c.eng, c.auth)
		}
	}
}

func TestAuthenticatorRegistry(t *testing.T) {
	keys := AuthKeys()
	if len(keys) != 5 {
		t.Fatalf("registry has %d authenticators, want 5: %v", len(keys), keys)
	}
	for _, key := range keys {
		v, err := BuildAuthenticator(key, 32)
		if err != nil {
			t.Fatalf("build %s: %v", key, err)
		}
		if key == "none" && v != nil {
			t.Error("none built a verifier")
		}
		if key != "none" && v == nil {
			t.Errorf("%s built nil", key)
		}
	}
	if _, err := BuildAuthenticator("merkle", 32); err == nil {
		t.Error("unknown key accepted")
	}
}

// The acceptance matrix of the whole subsystem: confidentiality-only
// accepts everything, flat-mac accepts exactly replay, root-anchored
// and counter schemes block all three.
func TestTamperTableMatrix(t *testing.T) {
	cases := []struct {
		key  string
		want [3]string // spoof, splice, replay
	}{
		{"xom", [3]string{"ACCEPTED", "ACCEPTED", "ACCEPTED"}},
		{"xom+flat-mac", [3]string{"blocked", "blocked", "ACCEPTED"}},
		{"xom+flat-fresh", [3]string{"blocked", "blocked", "blocked"}},
		{"xom+tree", [3]string{"blocked", "blocked", "blocked"}},
		{"aegis+ctree", [3]string{"blocked", "blocked", "blocked"}},
	}
	for _, c := range cases {
		tbl, err := TamperTable(c.key)
		if err != nil {
			t.Fatalf("%s: %v", c.key, err)
		}
		if len(tbl.Rows) != 3 {
			t.Fatalf("%s: %d rows, want 3", c.key, len(tbl.Rows))
		}
		for i, row := range tbl.Rows {
			if row[1] != c.want[i] {
				t.Errorf("%s %s: verdict %q, want %q", c.key, row[0], row[1], c.want[i])
			}
		}
	}
	if _, err := TamperTable("xom+merkle"); err == nil {
		t.Error("unknown authenticator accepted")
	}
	if _, err := TamperTable("zom+tree"); err == nil {
		t.Error("unknown engine accepted")
	}
}

// E20's table must carry the design-space story in its cells: tree
// rows' on-chip gates are independent of protected size, flat-fresh's
// grow with it, and the verdict columns match the tamper matrix.
func TestE20AuthTrees(t *testing.T) {
	tbl, err := E20AuthTrees(4000)
	if err != nil {
		t.Fatal(err)
	}
	type rowInfo struct {
		protected, gates string
		verdicts         [3]string
	}
	byAuth := map[string][]rowInfo{}
	for _, row := range tbl.Rows {
		byAuth[row[0]] = append(byAuth[row[0]], rowInfo{
			protected: row[1], gates: row[4],
			verdicts: [3]string{row[5], row[6], row[7]},
		})
	}
	if got := len(byAuth["hash-tree"]); got != 9 {
		t.Fatalf("hash-tree rows = %d, want 9 (3 protected x 3 node caches)", got)
	}
	// Tree gates must not vary with protected size (different node
	// cache sizes legitimately differ; rows 0, 3 and 6 share a cache).
	trees := byAuth["hash-tree"]
	if trees[0].gates != trees[3].gates || trees[3].gates != trees[6].gates {
		t.Errorf("hash-tree on-chip gates vary with protected size: %s %s %s",
			trees[0].gates, trees[3].gates, trees[6].gates)
	}
	fresh := byAuth["flat-fresh"]
	if len(fresh) != 3 || fresh[0].gates == fresh[2].gates {
		t.Errorf("flat-fresh gates should scale with protected size: %+v", fresh)
	}
	for _, r := range byAuth["none"] {
		if r.verdicts != [3]string{"ACCEPTED", "ACCEPTED", "ACCEPTED"} {
			t.Errorf("none verdicts = %v", r.verdicts)
		}
	}
	for _, r := range byAuth["flat-mac"] {
		if r.verdicts != [3]string{"blocked", "blocked", "ACCEPTED"} {
			t.Errorf("flat-mac verdicts = %v", r.verdicts)
		}
	}
	for _, auth := range []string{"hash-tree", "counter-tree", "flat-fresh"} {
		for _, r := range byAuth[auth] {
			if r.verdicts != [3]string{"blocked", "blocked", "blocked"} {
				t.Errorf("%s verdicts = %v, want all blocked", auth, r.verdicts)
			}
		}
	}
}

// E21 must show detections under the authenticated systems and none
// under the bare engine.
func TestE21AttackSweep(t *testing.T) {
	tbl, err := E21AttackSweep(30000)
	if err != nil {
		t.Fatal(err)
	}
	var treeDetected, noneDetected bool
	for _, row := range tbl.Rows {
		auth, detected := row[0], row[3]
		if auth == "none" && detected != "0" {
			noneDetected = true
		}
		if (auth == "tree" || auth == "ctree") && detected != "0" {
			treeDetected = true
		}
	}
	if noneDetected {
		t.Error("confidentiality-only rows report detections")
	}
	if !treeDetected {
		t.Error("no tree row detected anything; the sweep is inert")
	}
}
