package core

// E22 generalizes the survey's §4 placement question (Figure 7a vs 7b)
// to a two-level cache hierarchy — the regime AEGIS was actually
// evaluated in. With only one cache level the placement choice is
// binary and mostly about the CPU-side access penalty (E11); with an
// L2 it becomes quantitative: the L2 filters the miss stream, so every
// step the EDU moves outward shrinks the bandwidth it must transform.

import (
	"fmt"

	"repro/internal/crypto/modes"
	"repro/internal/edu"
	"repro/internal/edu/products"
	"repro/internal/sim/soc"
	"repro/internal/sim/trace"
)

// E22Hierarchy sweeps EDU placement × L2 size × workload on the AEGIS
// engine. The edu-lines column is the engine's exposed bandwidth (line
// transfers crossing its boundary); "filtered" is the share of the
// inner boundary's traffic the L2 absorbed before it reached an outer
// EDU. The verdict column asserts the placement argument cell by cell:
// inner placements always see the full L1 miss stream (equal to the
// single-level system's), outer placement sees strictly less.
func E22Hierarchy(refs int) (*Table, error) {
	t := &Table{
		ID:         "E22 (extension)",
		Title:      "EDU placement across a two-level hierarchy: the L2 as a miss filter",
		PaperClaim: "\"where does the EDU fit?\" (§4, Fig. 7) — generalized to L1/L2: moving the unit outward shrinks its exposed bandwidth",
		Header:     []string{"workload", "l2", "placement", "edu-lines", "filtered", "overhead", "verdict"},
	}
	mkEng := func() (edu.Engine, error) {
		return products.AEGIS([]byte("0123456789abcdef"), modes.IVCounter, 0x22)
	}
	type hierPoint struct {
		l2Size     int
		placements []string
	}
	grid := []hierPoint{
		{0, []string{"default"}},
		{64 << 10, []string{"l1-l2", "l2-dram", "cpu-l1"}},
		{256 << 10, []string{"l1-l2", "l2-dram"}},
	}

	// Three filtering regimes: firmware's 48 KiB footprint overflows
	// the 16 KiB L1 but fits either L2 (nearly every L1 miss filtered),
	// sequential's locality gives the L2 a moderate win, and
	// pointer-chase's 8 MiB random walk defeats both L2 sizes.
	for wi, wl := range []string{"firmware", "sequential", "pointer-chase"} {
		tcfg, ok := WorkloadProfile(wl, refs)
		if !ok {
			return nil, fmt.Errorf("E22: workload %q has no knob profile", wl)
		}
		tcfg.Seed = int64(22 + wi)
		src := trace.Sources[wl](tcfg)

		// The single-level exposure is the reference every inner row
		// must match: the L1 miss stream does not depend on what sits
		// behind the L1.
		var singleLines uint64
		for _, hp := range grid {
			cfg := soc.DefaultConfig()
			if hp.l2Size > 0 {
				cfg.L2 = soc.DefaultL2Config(hp.l2Size)
			}
			bsoc, err := soc.New(cfg)
			if err != nil {
				return nil, err
			}
			base := bsoc.Run(src)

			var innerLines uint64
			for _, place := range hp.placements {
				ecfg := cfg
				if ecfg.Placement, err = edu.ParsePlacement(place); err != nil {
					return nil, err
				}
				if ecfg.Engine, err = mkEng(); err != nil {
					return nil, err
				}
				esoc, err := soc.New(ecfg)
				if err != nil {
					return nil, err
				}
				rep := esoc.Run(src)

				l2Cell := "-"
				if hp.l2Size > 0 {
					l2Cell = fmt.Sprintf("%dK", hp.l2Size>>10)
				}
				filtered, verdict := "-", "-"
				switch place {
				case "default":
					singleLines = rep.EngineLines
				case "l1-l2":
					innerLines = rep.EngineLines
					// The inner boundary must see the unfiltered L1
					// miss stream — identical to the single-level
					// system on the same trace.
					verdict = fmt.Sprintf("%v", rep.EngineLines == singleLines)
				case "cpu-l1":
					// Same exposure as l1-l2 (every L1 miss crosses
					// the unit); the placement differs in the CPU-side
					// access penalty, which E11's engine carries.
					verdict = fmt.Sprintf("%v", rep.EngineLines == innerLines)
				case "l2-dram":
					if innerLines > 0 {
						filtered = fmt.Sprintf("%.1f%%", 100*(1-float64(rep.EngineLines)/float64(innerLines)))
					}
					verdict = fmt.Sprintf("%v", rep.EngineLines < innerLines)
				}
				t.AddRow(wl, l2Cell, esoc.Placement().String(), rep.EngineLines, filtered,
					fmt.Sprintf("%.2f%%", 100*rep.OverheadVs(base)), verdict)
			}
		}
	}
	t.Notes = append(t.Notes,
		"edu-lines counts line transfers crossing the engine's boundary: its exposed bandwidth",
		"the L1 miss stream is L2-independent, so inner placements (cpu<->l1, l1<->l2) are never filtered",
		"outer placement wins twice: fewer lines cross the unit, and the DRAM transfer window it overlaps is longer than an L2 hit",
		"overheads are vs a plaintext baseline with the SAME hierarchy — the L2's own benefit is factored out")
	return t, nil
}
