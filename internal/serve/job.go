package serve

import (
	"context"
	"sync"

	"repro/internal/campaign"
	"repro/internal/obs"
)

// Sweep states, as reported by Status.State. A sweep moves
// queued → running → done, or to canceled from either live state
// (DELETE, or server shutdown). There is no failed state: a bad spec
// is rejected at admission, and a bad grid cell fails that cell's row,
// never the sweep.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateCanceled = "canceled"
)

// Status is the wire form of a sweep's progress — GET /sweeps/{id}.
// The counters come from the sweep's private obs registry (the PR-5
// campaign gauges), so progress reporting rides the same metrics
// inventory the CLI's -progress flag does.
type Status struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// Tasks is the grid size; Rows the results already available on the
	// incremental stream (the canonical-order prefix length).
	Tasks int `json:"tasks"`
	Rows  int `json:"rows"`
	// TasksDone counts finished tasks (memo-served included);
	// TaskErrors the failed grid cells among them.
	TasksDone  uint64 `json:"tasks_done"`
	TaskErrors uint64 `json:"task_errors"`
	// MemoHits counts this sweep's tasks served from the shared store —
	// work some earlier (or concurrent) sweep already paid for.
	MemoHits uint64 `json:"memo_hits"`
	// RefsPlanned/RefsDone are the simulated-reference denominator and
	// progress. Planned assumes cold baselines; a warm store finishes
	// below plan, which is the sharing win, not a stall.
	RefsPlanned int64  `json:"refs_planned"`
	RefsDone    uint64 `json:"refs_done"`
	Err         string `json:"err,omitempty"`
}

// sweepJob is one admitted sweep: its runner (sharing the server
// store), its private metrics registry, the canonical-order result
// re-sequencer the NDJSON stream reads, and the final report.
type sweepJob struct {
	id     string
	spec   campaign.Spec
	runner *campaign.Runner
	reg    *obs.Registry
	tracer *campaign.Tracer
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	state string
	tasks []campaign.Task
	out   []campaign.Result
	done  []bool
	// avail is the length of the contiguous completed prefix of out:
	// results are recorded in completion order but released to readers
	// strictly in expansion order, so the stream every subscriber sees
	// is the canonical one regardless of worker scheduling.
	avail  int
	notify chan struct{}
	report *campaign.Report
	err    error
}

func newSweepJob(id string, runner *campaign.Runner, reg *obs.Registry) *sweepJob {
	ctx, cancel := context.WithCancel(context.Background())
	return &sweepJob{
		id:     id,
		spec:   runner.Spec(),
		runner: runner,
		reg:    reg,
		ctx:    ctx,
		cancel: cancel,
		state:  StateQueued,
		notify: make(chan struct{}),
	}
}

// broadcast wakes every waiter; callers hold j.mu.
func (j *sweepJob) broadcast() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// begin sizes the re-sequencer for the expanded grid and moves the job
// to running.
func (j *sweepJob) begin(tasks []campaign.Task) {
	j.mu.Lock()
	j.state = StateRunning
	j.tasks = tasks
	j.out = make([]campaign.Result, len(tasks))
	j.done = make([]bool, len(tasks))
	j.broadcast()
	j.mu.Unlock()
}

// record is the runner's OnResult hook: slot the result by expansion
// index and advance the released prefix. Safe for concurrent workers.
func (j *sweepJob) record(t campaign.Task, res campaign.Result) {
	j.mu.Lock()
	if t.Index < len(j.out) && !j.done[t.Index] {
		j.out[t.Index] = res
		j.done[t.Index] = true
		for j.avail < len(j.out) && j.done[j.avail] {
			j.avail++
		}
	}
	j.broadcast()
	j.mu.Unlock()
}

// finalize fills every never-run slot with its Canceled placeholder,
// assembles the canonical report (identical to what Runner.RunContext
// would have returned), and settles the terminal state.
func (j *sweepJob) finalize() {
	j.mu.Lock()
	defer j.mu.Unlock()
	for i := range j.out {
		if !j.done[i] {
			j.out[i] = campaign.Canceled(j.tasks[i].Cfg)
			j.done[i] = true
		}
	}
	j.avail = len(j.out)
	j.report = &campaign.Report{
		Spec:    j.spec,
		Results: j.out,
		Summary: campaign.Summarize(j.out),
	}
	if err := j.ctx.Err(); err != nil {
		j.state = StateCanceled
		j.err = err
	} else {
		j.state = StateDone
	}
	j.broadcast()
}

// finished reports whether the job reached a terminal state; the
// report is non-nil exactly then.
func (j *sweepJob) finished() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.report != nil
}

// status samples the job for GET /sweeps/{id}.
func (j *sweepJob) status() Status {
	j.mu.Lock()
	state, avail, nTasks := j.state, j.avail, len(j.tasks)
	var errStr string
	if j.err != nil {
		errStr = j.err.Error()
	}
	j.mu.Unlock()
	if state == StateQueued {
		nTasks = j.spec.Size()
	}
	return Status{
		ID:          j.id,
		State:       state,
		Tasks:       nTasks,
		Rows:        avail,
		TasksDone:   j.reg.Counter("campaign.tasks_done").Load(),
		TaskErrors:  j.reg.Counter("campaign.task_errors").Load(),
		MemoHits:    j.reg.Counter("campaign.memo_hits").Load(),
		RefsPlanned: j.reg.Gauge("campaign.refs_planned").Load(),
		RefsDone:    j.reg.Counter("soc.refs").Load(),
		Err:         errStr,
	}
}
