package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/campaign"
)

// startServer builds a fabric + HTTP front end and tears both down
// with the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func postSpec(t *testing.T, base, specJSON string) (Status, int) {
	t.Helper()
	resp, err := http.Post(base+"/sweeps", "application/json", strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, base, id string) Status {
	t.Helper()
	resp, err := http.Get(base + "/sweeps/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitTerminal(t *testing.T, base, id string) Status {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for {
		st := getStatus(t, base, id)
		if st.State == StateDone || st.State == StateCanceled {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %s stuck in state %s", id, st.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func getBody(t *testing.T, url string) (string, int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b), resp.StatusCode
}

// referenceReport runs the same spec through the library path the
// sweep CLI uses and emits it in the given format — the bytes the
// service must reproduce exactly.
func referenceReport(t *testing.T, specJSON, format string) string {
	t.Helper()
	spec, err := campaign.ParseSpecJSON(strings.NewReader(specJSON))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Sweep(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := campaign.Emit(&buf, rep, format); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

const smallSpec = `{"engines":["aegis","xom"],"workloads":["sequential"],"refs":[2000]}`

func TestSweepLifecycleByteIdenticalToCLI(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 2})

	st, code := postSpec(t, ts.URL, smallSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d, want 202", code)
	}
	if st.ID == "" || st.Tasks != 2 {
		t.Fatalf("admission status = %+v", st)
	}

	// Drain the incremental stream: every row, canonical order, valid
	// JSON, and the stream ends exactly when the sweep does.
	resp, err := http.Get(ts.URL + "/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "application/x-ndjson" {
		t.Errorf("stream Content-Type = %q", got)
	}
	var rows []campaign.Result
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var r campaign.Result
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON row %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}

	spec, _ := campaign.ParseSpecJSON(strings.NewReader(smallSpec))
	tasks := spec.Expand()
	if len(rows) != len(tasks) {
		t.Fatalf("streamed %d rows, want %d", len(rows), len(tasks))
	}
	for i, r := range rows {
		if r.Key() != tasks[i].Cfg.Key() {
			t.Errorf("row %d = %s, want canonical order %s", i, r.Key(), tasks[i].Cfg.Key())
		}
		if r.Err != "" {
			t.Errorf("row %d failed: %s", i, r.Err)
		}
	}

	st = waitTerminal(t, ts.URL, st.ID)
	if st.State != StateDone || st.TasksDone != 2 || st.Rows != 2 {
		t.Fatalf("final status = %+v", st)
	}

	// The final report must be byte-identical to the CLI/library run of
	// the same spec, in every format.
	for _, format := range campaign.Formats {
		got, code := getBody(t, ts.URL+"/sweeps/"+st.ID+"/result?format="+format)
		if code != http.StatusOK {
			t.Fatalf("result?format=%s = %d", format, code)
		}
		if want := referenceReport(t, smallSpec, format); got != want {
			t.Errorf("format %s: server report differs from CLI report\nserver:\n%s\nCLI:\n%s", format, got, want)
		}
	}

	// A late subscriber replays the whole canonical stream.
	body, _ := getBody(t, ts.URL+"/sweeps/"+st.ID+"/results")
	if n := strings.Count(body, "\n"); n != len(tasks) {
		t.Errorf("replayed stream has %d rows, want %d", n, len(tasks))
	}
}

func TestAdmissionQueueOverflow(t *testing.T) {
	// Not started: nothing drains the queue, so admission behavior is
	// deterministic — the first sweep queues, the second bounces.
	s := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	st1, code := postSpec(t, ts.URL, smallSpec)
	if code != http.StatusAccepted {
		t.Fatalf("first POST = %d, want 202", code)
	}
	if st1.State != StateQueued {
		t.Fatalf("first sweep state = %s, want queued", st1.State)
	}
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow POST = %d, want 429 (%s)", resp.StatusCode, b)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	// Start drains the queue; the admitted sweep completes, and
	// admission reopens.
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	waitTerminal(t, ts.URL, st1.ID)
	if _, code := postSpec(t, ts.URL, smallSpec); code != http.StatusAccepted {
		t.Fatalf("post-drain POST = %d, want 202", code)
	}

	metrics, _ := getBody(t, ts.URL+"/metrics")
	if !strings.Contains(metrics, `"serve.sweeps_rejected": 1`) {
		t.Errorf("metrics do not record the rejection:\n%s", metrics)
	}
}

func TestCancelKeepsPartialStateAndMemoIntact(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 1})

	// A grid big enough that cancellation lands mid-sweep: all eight
	// engines × two workloads on one worker.
	bigSpec := `{"workloads":["sequential","firmware"],"refs":[50000]}`
	st, code := postSpec(t, ts.URL, bigSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}

	// Subscribe and cancel as soon as the first row is out.
	resp, err := http.Get(ts.URL + "/sweeps/" + st.ID + "/results")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	if !sc.Scan() {
		t.Fatal("stream ended before first row")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sweeps/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, dresp.Body)
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE = %d", dresp.StatusCode)
	}
	// The stream must terminate (rows for every slot, completed or
	// placeholder, then EOF).
	rows := 1
	for sc.Scan() {
		rows++
	}
	resp.Body.Close()

	final := waitTerminal(t, ts.URL, st.ID)
	if final.State != StateCanceled {
		t.Fatalf("state = %s, want canceled", final.State)
	}

	body, code := getBody(t, ts.URL+"/sweeps/"+st.ID+"/result?format=json")
	if code != http.StatusOK {
		t.Fatalf("result after cancel = %d", code)
	}
	var rep campaign.Report
	if err := json.Unmarshal([]byte(body), &rep); err != nil {
		t.Fatal(err)
	}
	completed, skipped := 0, 0
	for _, r := range rep.Results {
		switch r.Err {
		case "":
			completed++
		case campaign.CanceledErr:
			skipped++
		default:
			t.Errorf("unexpected cell error %q", r.Err)
		}
	}
	if completed == 0 || skipped == 0 {
		t.Fatalf("partial state: completed=%d skipped=%d, want both > 0 (rows streamed: %d)",
			completed, skipped, rows)
	}
	if rows != len(rep.Results) {
		t.Errorf("stream delivered %d rows, report has %d", rows, len(rep.Results))
	}

	// The shared store holds only the completed points — no canceled
	// placeholder may have leaked in.
	if _, nres := s.Store().Len(); nres != completed {
		t.Errorf("store holds %d results, want %d completed", nres, completed)
	}

	// Resubmitting the same grid completes it, reusing every completed
	// point (memo hits == previously completed cells).
	st2, code := postSpec(t, ts.URL, bigSpec)
	if code != http.StatusAccepted {
		t.Fatalf("resubmit POST = %d", code)
	}
	final2 := waitTerminal(t, ts.URL, st2.ID)
	if final2.State != StateDone {
		t.Fatalf("resubmit state = %s", final2.State)
	}
	if final2.MemoHits < uint64(completed) {
		t.Errorf("resubmit memo hits = %d, want >= %d", final2.MemoHits, completed)
	}
}

func TestConcurrentOverlappingSweepsShareTheStore(t *testing.T) {
	s, ts := startServer(t, Config{Workers: 2, MaxActive: 2})

	var ids [2]string
	var wg sync.WaitGroup
	for i := range ids {
		wg.Add(1)
		go func() {
			defer wg.Done()
			st, code := postSpec(t, ts.URL, smallSpec)
			if code != http.StatusAccepted {
				t.Errorf("POST = %d", code)
				return
			}
			ids[i] = st.ID
		}()
	}
	wg.Wait()
	if ids[0] == "" || ids[1] == "" {
		t.Fatal("admission failed")
	}

	var bodies [2]string
	for i, id := range ids {
		if st := waitTerminal(t, ts.URL, id); st.State != StateDone {
			t.Fatalf("sweep %s state = %s", id, st.State)
		}
		bodies[i], _ = getBody(t, ts.URL+"/sweeps/"+id+"/result?format=csv")
	}
	if bodies[0] != bodies[1] {
		t.Error("overlapping sweeps emitted different reports")
	}

	// The overlap must have been served from the shared store: two
	// sweeps of a 2-task grid simulate 2 points and hit the memo twice
	// (the singleflight memo serializes even perfectly simultaneous
	// computations of one key).
	if hits := s.Store().ResultHits(); hits == 0 {
		t.Error("no shared-memo hits recorded across overlapping sweeps")
	}
	if runs := s.Store().ResultRuns(); runs != 2 {
		t.Errorf("store simulated %d points, want 2", runs)
	}
	metrics, _ := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{`"serve.store_result_hits": 2`, `"serve.sweeps_completed": 2`} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %s:\n%s", want, metrics)
		}
	}
}

func TestCheckpointResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "store.json")

	s1, ts1 := startServer(t, Config{Workers: 2, SnapshotPath: path})
	st, code := postSpec(t, ts1.URL, smallSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitTerminal(t, ts1.URL, st.ID)
	runs := s1.Store().ResultRuns()
	if runs != 2 {
		t.Fatalf("first server simulated %d points, want 2", runs)
	}
	ts1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no checkpoint written: %v", err)
	}

	// A fresh server resumes from the checkpoint: the same grid is
	// served entirely from the restored store.
	s2, ts2 := startServer(t, Config{Workers: 2, SnapshotPath: path})
	st2, code := postSpec(t, ts2.URL, smallSpec)
	if code != http.StatusAccepted {
		t.Fatalf("resume POST = %d", code)
	}
	final := waitTerminal(t, ts2.URL, st2.ID)
	if final.State != StateDone {
		t.Fatalf("resume state = %s", final.State)
	}
	if got := s2.Store().ResultRuns(); got != 0 {
		t.Errorf("resumed server simulated %d points, want 0 (checkpoint should cover them)", got)
	}
	if final.MemoHits != 2 {
		t.Errorf("resumed sweep memo hits = %d, want 2", final.MemoHits)
	}

	// And its report still matches the reference bytes exactly.
	body, _ := getBody(t, ts2.URL+"/sweeps/"+st2.ID+"/result?format=csv")
	if want := referenceReport(t, smallSpec, "csv"); body != want {
		t.Error("resumed report differs from reference")
	}
}

func TestAdmissionErrors(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, MaxTasks: 4})

	cases := []struct {
		name, body string
		want       int
	}{
		{"bad json", `{engines}`, http.StatusBadRequest},
		{"unknown field", `{"engine":["aegis"]}`, http.StatusBadRequest},
		{"unknown engine", `{"engines":["warp-drive"]}`, http.StatusBadRequest},
		{"zero refs", `{"refs":[0]}`, http.StatusBadRequest},
		{"bad placement", `{"placements":["l3-dram"]}`, http.StatusBadRequest},
		{"too many tasks", `{"engines":["aegis"],"workloads":["sequential"],"refs":[1000],"cache_sizes":[4096,8192,16384,32768,65536]}`, http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: POST = %d, want %d (%s)", tc.name, resp.StatusCode, tc.want, b)
		}
		if !json.Valid(b) {
			t.Errorf("%s: error body is not JSON: %s", tc.name, b)
		}
	}

	for _, url := range []string{"/sweeps/nope", "/sweeps/nope/results", "/sweeps/nope/result"} {
		if _, code := getBody(t, ts.URL+url); code != http.StatusNotFound {
			t.Errorf("GET %s = %d, want 404", url, code)
		}
	}
	if body, code := getBody(t, ts.URL+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Errorf("healthz = %d %q", code, body)
	}
	if body, code := getBody(t, ts.URL+"/trace"); code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Errorf("/trace = %d, body valid JSON = %v", code, json.Valid([]byte(body)))
	}
}

func TestResultBeforeDoneConflicts(t *testing.T) {
	// Unstarted server: the sweep stays queued, so /result must 409.
	s := New(Config{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	st, code := postSpec(t, ts.URL, smallSpec)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	if _, code := getBody(t, ts.URL+"/sweeps/"+st.ID+"/result?format=csv"); code != http.StatusConflict {
		t.Errorf("result while queued = %d, want 409", code)
	}
	if _, code := getBody(t, ts.URL+"/sweeps/"+st.ID+"/result?format=nope"); code != http.StatusBadRequest {
		t.Errorf("bad format = %d, want 400", code)
	}
	// List shows the queued sweep.
	body, _ := getBody(t, ts.URL+"/sweeps")
	var list []Status
	if err := json.Unmarshal([]byte(body), &list); err != nil || len(list) != 1 {
		t.Errorf("list = %s (err %v)", body, err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, ts.URL, st.ID)
	s.Close()

	// After Close, admission answers 503.
	resp, err := http.Post(ts.URL+"/sweeps", "application/json", strings.NewReader(smallSpec))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST after Close = %d, want 503", resp.StatusCode)
	}
}

func TestTracedSweepServesTrace(t *testing.T) {
	_, ts := startServer(t, Config{Workers: 1, TraceCap: 1 << 12})
	st, code := postSpec(t, ts.URL, `{"engines":["aegis"],"workloads":["sequential"],"refs":[2000]}`)
	if code != http.StatusAccepted {
		t.Fatalf("POST = %d", code)
	}
	waitTerminal(t, ts.URL, st.ID)
	body, code := getBody(t, ts.URL+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace = %d", code)
	}
	var chrome struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chrome); err != nil {
		t.Fatalf("trace not Chrome JSON: %v", err)
	}
	if len(chrome.TraceEvents) == 0 {
		t.Error("traced sweep produced no trace events")
	}
}

func ExampleServer() {
	s := New(Config{Workers: 1})
	s.Start()
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, _ := http.Post(ts.URL+"/sweeps", "application/json",
		strings.NewReader(`{"engines":["xom"],"workloads":["sequential"],"refs":[1000]}`))
	var st Status
	json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	fmt.Println("admitted:", st.State)
	// Output: admitted: queued
}
