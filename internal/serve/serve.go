// Package serve is the sweep service: the long-lived campaign fabric
// behind cmd/sweepd. It accepts grid specs over HTTP, validates and
// expands them, and enqueues them on a bounded admission queue feeding
// one shared worker pool; results stream incrementally as NDJSON in
// canonical expansion order, and the final report is byte-identical to
// what the sweep CLI emits for the same spec. Every sweep shares one
// campaign.Store, so overlapping grids from concurrent users reuse
// each other's baselines and completed points instead of recomputing
// them — the sharing the hash-derived per-task seeds were built for.
//
// The fabric lives strictly above soc.Run: nothing here touches the
// simulation hot path, and a grid point's bytes are the same whether
// it ran here, in the CLI, or in a test.
//
// Endpoints (see DESIGN.md §11):
//
//	POST   /sweeps                   submit a campaign.Spec (JSON) → 202 + Status
//	GET    /sweeps                   list all sweeps (newest last)
//	GET    /sweeps/{id}              status/progress snapshot
//	GET    /sweeps/{id}/results      NDJSON result rows, canonical order, streamed live
//	GET    /sweeps/{id}/result       final report; ?format=table|csv|json
//	DELETE /sweeps/{id}              cancel (task-granular, partial report kept)
//	GET    /metrics                  server + shared-store obs snapshot
//	GET    /trace                    live flight-recorder snapshot (Perfetto JSON)
//	GET    /healthz                  liveness
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"net/http"
	"sync"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/obs/rec"
)

// Config sizes the fabric. The zero value serves with defaults.
type Config struct {
	// Store is the shared cross-request memo; nil creates a private one.
	Store *campaign.Store
	// Workers is the shared simulation pool size; every admitted sweep's
	// tasks run on this one pool (default campaign.DefaultJobs()).
	Workers int
	// QueueDepth bounds the admission queue — sweeps admitted but not
	// yet executing. POST /sweeps answers 429 when it is full: the
	// client backs off, the server never buffers unbounded work.
	// Default 16.
	QueueDepth int
	// MaxActive bounds how many sweeps feed the worker pool
	// concurrently; more than this many admitted sweeps wait in the
	// queue. Default 2: enough that overlapping grids meet in the
	// singleflight store, few enough that one giant sweep cannot be
	// starved by a stream of small ones taking every worker.
	MaxActive int
	// MaxTasks rejects specs expanding beyond this many grid points
	// with 413 — admission control against a combinatorial typo.
	// Default 65536.
	MaxTasks int
	// TraceCap, when > 0, arms per-sweep flight recording with this
	// per-task ring capacity (events). Recording retains every task's
	// sealed stream in memory for the life of the sweep, so this is a
	// debugging knob, not a production default.
	TraceCap int
	// SnapshotPath, when set, is the shared store's checkpoint file:
	// loaded at Start (a missing file is a cold start), rewritten after
	// every completed sweep and at Close. A restarted server replays
	// only work no prior sweep finished.
	SnapshotPath string
}

// Server is the campaign fabric. Construct with New, wire Handler into
// an http.Server, call Start to begin executing, Close to drain.
type Server struct {
	cfg   Config
	store *campaign.Store
	reg   *obs.Registry
	mux   *http.ServeMux

	queue    chan *sweepJob
	work     chan func()
	dispWG   sync.WaitGroup
	workerWG sync.WaitGroup

	mu     sync.Mutex
	sweeps map[string]*sweepJob
	order  []string
	seq    int
	closed bool
	// lastTraced is the most recently admitted traced sweep; /trace
	// serves its live snapshot.
	lastTraced *campaign.Tracer

	admitted  *obs.Counter
	rejected  *obs.Counter
	completed *obs.Counter
	canceled  *obs.Counter
	queueLen  *obs.Gauge
	active    *obs.Gauge
	snapMu    sync.Mutex
}

// New builds a server (not yet executing; call Start).
func New(cfg Config) *Server {
	if cfg.Store == nil {
		cfg.Store = campaign.NewStore()
	}
	if cfg.Workers <= 0 {
		cfg.Workers = campaign.DefaultJobs()
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	if cfg.MaxActive <= 0 {
		cfg.MaxActive = 2
	}
	if cfg.MaxTasks <= 0 {
		cfg.MaxTasks = 65536
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		store:     cfg.Store,
		reg:       reg,
		queue:     make(chan *sweepJob, cfg.QueueDepth),
		work:      make(chan func()),
		sweeps:    make(map[string]*sweepJob),
		admitted:  reg.Counter("serve.sweeps_admitted"),
		rejected:  reg.Counter("serve.sweeps_rejected"),
		completed: reg.Counter("serve.sweeps_completed"),
		canceled:  reg.Counter("serve.sweeps_canceled"),
		queueLen:  reg.Gauge("serve.queue_depth"),
		active:    reg.Gauge("serve.sweeps_active"),
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /sweeps", s.handleCreate)
	s.mux.HandleFunc("POST /sweeps/{$}", s.handleCreate)
	s.mux.HandleFunc("GET /sweeps", s.handleList)
	s.mux.HandleFunc("GET /sweeps/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /sweeps/{id}/results", s.handleStream)
	s.mux.HandleFunc("GET /sweeps/{id}/result", s.handleReport)
	s.mux.HandleFunc("DELETE /sweeps/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /trace", s.handleTrace)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return s
}

// Store returns the shared cross-request store.
func (s *Server) Store() *campaign.Store { return s.store }

// Handler is the service's HTTP surface. It is live before Start —
// sweeps POSTed early are admitted and wait in the queue.
func (s *Server) Handler() http.Handler { return s.mux }

// Start loads the checkpoint (if configured) and launches the shared
// worker pool and the sweep dispatchers.
func (s *Server) Start() error {
	if s.cfg.SnapshotPath != "" {
		if err := s.store.LoadFile(s.cfg.SnapshotPath); err != nil &&
			!errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("serve: loading store checkpoint: %w", err)
		}
	}
	for w := 0; w < s.cfg.Workers; w++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for fn := range s.work {
				fn()
			}
		}()
	}
	for d := 0; d < s.cfg.MaxActive; d++ {
		s.dispWG.Add(1)
		go s.dispatch()
	}
	return nil
}

// Close stops admission, cancels every live sweep, drains the pool,
// and writes a final checkpoint. Idempotent.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	jobs := make([]*sweepJob, 0, len(s.sweeps))
	for _, j := range s.sweeps {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.cancel()
	}
	close(s.queue)
	s.dispWG.Wait()
	close(s.work)
	s.workerWG.Wait()
	if s.cfg.SnapshotPath != "" {
		return s.saveSnapshot()
	}
	return nil
}

func (s *Server) saveSnapshot() error {
	// Serialized: a post-sweep save and the Close save must not
	// interleave their temp-file renames.
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	return s.store.SaveFile(s.cfg.SnapshotPath)
}

// dispatch is one sweep executor: it claims admitted sweeps and feeds
// their tasks to the shared worker pool. MaxActive of these run.
func (s *Server) dispatch() {
	defer s.dispWG.Done()
	for j := range s.queue {
		s.queueLen.Set(int64(len(s.queue)))
		s.active.Add(1)
		s.runJob(j)
		s.active.Add(-1)
		if s.cfg.SnapshotPath != "" {
			// Checkpoint after every finished sweep; a failed save is
			// not fatal to the service (the next one retries).
			s.saveSnapshot()
		}
	}
}

// runJob expands the sweep and submits each task to the shared pool in
// expansion order, stopping at cancellation. The per-task closures run
// Runner.Exec, which fires the job's record hook; after the last
// submitted task drains, the job finalizes into its canonical report.
func (s *Server) runJob(j *sweepJob) {
	j.begin(j.runner.Plan())
	var wg sync.WaitGroup
	for _, t := range j.tasks {
		if j.ctx.Err() != nil {
			break
		}
		fn := func() {
			defer wg.Done()
			if j.ctx.Err() != nil {
				return
			}
			j.runner.Exec(t)
		}
		wg.Add(1)
		select {
		case s.work <- fn:
		case <-j.ctx.Done():
			wg.Done()
		}
	}
	wg.Wait()
	j.finalize()
	if j.ctx.Err() != nil {
		s.canceled.Inc()
	} else {
		s.completed.Inc()
	}
}

// newID mints a sweep id: admission sequence number plus a hash of the
// filled spec, so overlapping submissions of one grid are visibly kin
// ("s3-91c2e0f7" and "s7-91c2e0f7") without colliding.
func (s *Server) newID(spec campaign.Spec) string {
	s.seq++
	h := fnv.New64a()
	b, _ := json.Marshal(spec)
	h.Write(b)
	return fmt.Sprintf("s%d-%08x", s.seq, uint32(h.Sum64()))
}

func (s *Server) job(id string) *sweepJob {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sweeps[id]
}

// httpError answers with a JSON error object — every error the fabric
// emits is machine-readable.
func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{
		"error": fmt.Sprintf(format, args...),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleCreate is POST /sweeps: validate, size-check, admit or 429.
func (s *Server) handleCreate(w http.ResponseWriter, r *http.Request) {
	spec, err := campaign.ParseSpecJSON(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if n := spec.Size(); n > s.cfg.MaxTasks {
		httpError(w, http.StatusRequestEntityTooLarge,
			"spec expands to %d tasks (limit %d)", n, s.cfg.MaxTasks)
		return
	}
	jreg := obs.NewRegistry()
	runner, err := campaign.NewRunnerWith(spec, s.store)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	runner.Observe(campaign.NewMetrics(jreg))

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "server shutting down")
		return
	}
	j := newSweepJob(s.newID(spec), runner, jreg)
	runner.OnResult(j.record)
	if s.cfg.TraceCap > 0 {
		j.tracer = &campaign.Tracer{Cap: s.cfg.TraceCap}
		runner.Trace(j.tracer)
		s.lastTraced = j.tracer
	}
	select {
	case s.queue <- j:
		s.sweeps[j.id] = j
		s.order = append(s.order, j.id)
		s.queueLen.Set(int64(len(s.queue)))
		s.mu.Unlock()
		s.admitted.Inc()
		w.Header().Set("Location", "/sweeps/"+j.id)
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.mu.Unlock()
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusTooManyRequests,
			"admission queue full (%d sweeps waiting); retry later", s.cfg.QueueDepth)
	}
}

// handleList is GET /sweeps: every sweep's status, admission order.
func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	jobs := make([]*sweepJob, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.sweeps[id])
	}
	s.mu.Unlock()
	out := make([]Status, len(jobs))
	for i, j := range jobs {
		out[i] = j.status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleStream is GET /sweeps/{id}/results: NDJSON rows in canonical
// expansion order, from row 0 (late subscribers replay the prefix),
// streamed live until the sweep finishes or the client hangs up.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	next := 0
	for {
		j.mu.Lock()
		avail, terminal, ch := j.avail, j.report != nil, j.notify
		// Released rows are immutable once avail covers them, so the
		// slice can be read outside the lock.
		rows := j.out[next:avail]
		j.mu.Unlock()
		for i := range rows {
			if err := enc.Encode(&rows[i]); err != nil {
				return
			}
		}
		next = avail
		if len(rows) > 0 && fl != nil {
			fl.Flush()
		}
		if terminal {
			return
		}
		select {
		case <-ch:
		case <-r.Context().Done():
			return
		}
	}
}

// handleReport is GET /sweeps/{id}/result?format=table|csv|json: the
// final canonical report, byte-identical to the sweep CLI on the same
// spec. 409 while the sweep is still running.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	format := r.URL.Query().Get("format")
	if format == "" {
		format = "table"
	}
	valid := false
	for _, f := range campaign.Formats {
		valid = valid || f == format
	}
	if !valid {
		httpError(w, http.StatusBadRequest, "unknown format %q", format)
		return
	}
	if !j.finished() {
		httpError(w, http.StatusConflict,
			"sweep %s is %s; stream /sweeps/%s/results or retry when done",
			j.id, j.status().State, j.id)
		return
	}
	switch format {
	case "json":
		w.Header().Set("Content-Type", "application/json")
	case "csv":
		w.Header().Set("Content-Type", "text/csv")
	default:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	}
	campaign.Emit(w, j.report, format)
}

// handleCancel is DELETE /sweeps/{id}: task-granular cancellation. The
// in-flight task finishes (the shared store only ever holds complete
// values), queued tasks are skipped, and the partial report stays
// available with Canceled placeholders in the never-run slots.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		httpError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	j.cancel()
	writeJSON(w, http.StatusOK, j.status())
}

// handleMetrics refreshes the shared-store gauges and serves the
// server registry snapshot.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	nb, nr := s.store.Len()
	s.reg.Gauge("serve.store_baselines").Set(int64(nb))
	s.reg.Gauge("serve.store_results").Set(int64(nr))
	s.reg.Gauge("serve.store_baseline_runs").Set(s.store.BaselineRuns())
	s.reg.Gauge("serve.store_baseline_hits").Set(s.store.BaselineHits())
	s.reg.Gauge("serve.store_result_runs").Set(s.store.ResultRuns())
	s.reg.Gauge("serve.store_result_hits").Set(s.store.ResultHits())
	s.queueLen.Set(int64(len(s.queue)))
	s.reg.Handler().ServeHTTP(w, r)
}

// handleTrace serves the most recently admitted traced sweep's live
// flight-recorder snapshot (Perfetto-loadable Chrome JSON); an empty
// trace when recording is off (Config.TraceCap == 0).
func (s *Server) handleTrace(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	tr := s.lastTraced
	s.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	if tr == nil {
		rec.WriteChrome(w, &rec.Trace{})
		return
	}
	rec.WriteChrome(w, tr.Snapshot())
}
