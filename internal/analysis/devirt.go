package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// devirtualizer holds the whole-program facts the call-graph builder
// uses to resolve dynamic call sites:
//
//   - the class hierarchy: every concrete named type declared in a
//     loaded module package, against which interface call sites are
//     resolved (types.Implements over value and pointer method sets);
//   - the function-value flow map: for every func-typed var, field or
//     parameter, the set of func literals and function references ever
//     assigned into it, collected flow-insensitively across the whole
//     module (assignments, var initializers, composite literals, and
//     arguments at statically resolved call sites).
//
// Both are deliberately over-approximate: an interface call gains an
// edge to every implementer whether or not that implementation can
// flow there dynamically, and a slot call gains an edge to every value
// the slot ever held. Over-approximation is the right direction for
// contract checking — it can only surface extra code to audit, never
// hide a reachable violation. The two blind spots are reflect (opaque
// sites become devirt diagnostics) and generic named types, whose
// uninstantiated method sets CHA cannot soundly enumerate; neither
// construct appears on the repo's marked paths.
type devirtualizer struct {
	prog *Program
	// concrete is every non-generic, non-interface named type declared
	// in a loaded module package, in deterministic order.
	concrete []*types.Named
	// impls caches interface-method resolution per interface identity.
	impls map[*types.Interface]map[string][]*FuncInfo
	// flows maps a slot object (var/field/param) to every function
	// value assigned into it anywhere in the module.
	flows map[types.Object][]*FuncInfo
}

func newDevirtualizer(prog *Program) *devirtualizer {
	dv := &devirtualizer{
		prog:  prog,
		impls: make(map[*types.Interface]map[string][]*FuncInfo),
		flows: make(map[types.Object][]*FuncInfo),
	}
	dv.collectConcrete()
	dv.scanFlows()
	return dv
}

// declFor maps a *types.Func to its loaded declaration, nil when the
// function has no body in the loaded set (external, interface method).
func (dv *devirtualizer) declFor(fn *types.Func) *FuncInfo {
	if fn == nil {
		return nil
	}
	return dv.prog.markers.decls[fn.Origin()]
}

// collectConcrete gathers the class hierarchy: package-scope named
// types with concrete underlying in every loaded package.
func (dv *devirtualizer) collectConcrete() {
	for _, pkg := range dv.prog.Pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) || named.TypeParams().Len() > 0 {
				continue
			}
			dv.concrete = append(dv.concrete, named)
		}
	}
}

// implementersOf resolves an interface method to the declared bodies of
// every in-module concrete type satisfying the interface, sorted by
// full name for deterministic edge order.
func (dv *devirtualizer) implementersOf(iface *types.Interface, method string) []*FuncInfo {
	byMethod := dv.impls[iface]
	if byMethod == nil {
		byMethod = make(map[string][]*FuncInfo)
		dv.impls[iface] = byMethod
	}
	if out, ok := byMethod[method]; ok {
		return out
	}
	var out []*FuncInfo
	for _, named := range dv.concrete {
		var recv types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			recv = types.NewPointer(named)
		}
		obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), method)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if fi := dv.declFor(fn); fi != nil && fi.Body() != nil {
			out = append(out, fi)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		return dv.prog.nameOf(out[i]) < dv.prog.nameOf(out[j])
	})
	byMethod[method] = out
	return out
}

// scanFlows walks every loaded file recording function values flowing
// into storage slots.
func (dv *devirtualizer) scanFlows() {
	for _, pkg := range dv.prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.AssignStmt:
					if len(node.Lhs) != len(node.Rhs) {
						return true
					}
					for i := range node.Lhs {
						dv.record(pkg, slotObj(pkg, node.Lhs[i]), node.Rhs[i])
					}
				case *ast.ValueSpec:
					if len(node.Names) != len(node.Values) {
						return true
					}
					for i, name := range node.Names {
						dv.record(pkg, pkg.Info.Defs[name], node.Values[i])
					}
				case *ast.CompositeLit:
					dv.recordStructLit(pkg, node)
				case *ast.CallExpr:
					dv.recordCallArgs(pkg, node)
				}
				return true
			})
		}
	}
	// Deduplicate and order each slot's target list.
	for slot, targets := range dv.flows {
		seen := make(map[*FuncInfo]bool, len(targets))
		var uniq []*FuncInfo
		for _, t := range targets {
			if !seen[t] {
				seen[t] = true
				uniq = append(uniq, t)
			}
		}
		sort.Slice(uniq, func(i, j int) bool {
			return dv.prog.nameOf(uniq[i]) < dv.prog.nameOf(uniq[j])
		})
		dv.flows[slot] = uniq
	}
}

// record stores the function values of expr under slot.
func (dv *devirtualizer) record(pkg *Package, slot types.Object, expr ast.Expr) {
	if slot == nil {
		return
	}
	if targets := dv.funcTargets(pkg, expr); len(targets) > 0 {
		dv.flows[slot] = append(dv.flows[slot], targets...)
	}
}

// recordStructLit maps composite-literal elements to their struct
// fields (keyed and positional) so S{Handler: fn} flows fn into the
// Handler slot.
func (dv *devirtualizer) recordStructLit(pkg *Package, lit *ast.CompositeLit) {
	t := typeOf(pkg, lit)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range lit.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if key, ok := kv.Key.(*ast.Ident); ok {
				dv.record(pkg, pkg.Info.Uses[key], kv.Value)
			}
			continue
		}
		if i < st.NumFields() {
			dv.record(pkg, st.Field(i), elt)
		}
	}
}

// recordCallArgs flows call arguments into the parameters of
// statically resolved in-module callees: memo.get(key, computeFn)
// makes computeFn a target of the compute parameter's slot.
func (dv *devirtualizer) recordCallArgs(pkg *Package, call *ast.CallExpr) {
	callee := calleeOf(pkg, call)
	if callee == nil {
		return
	}
	fi := dv.declFor(callee)
	if fi == nil || fi.Obj == nil {
		return
	}
	sig, ok := fi.Obj.Type().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var param *types.Var
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue
			}
			param = params.At(params.Len() - 1)
		case i < params.Len():
			param = params.At(i)
		}
		if param != nil {
			dv.record(pkg, param, arg)
		}
	}
}

// funcTargets extracts the function nodes an expression can evaluate
// to: literals, function/method references (interface method values
// resolve through the class hierarchy), and composite literals of
// functions, flattened.
func (dv *devirtualizer) funcTargets(pkg *Package, e ast.Expr) []*FuncInfo {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		if fi := dv.prog.markers.lits[x]; fi != nil {
			return []*FuncInfo{fi}
		}
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
			if fi := dv.declFor(fn); fi != nil {
				return []*FuncInfo{fi}
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			if m, ok := sel.Obj().(*types.Func); ok {
				// A method value or method expression on an interface
				// receiver can be any implementer's method.
				if iface := methodIface(m); iface != nil {
					return dv.implementersOf(iface, m.Name())
				}
				if fi := dv.declFor(m); fi != nil {
					return []*FuncInfo{fi}
				}
			}
			return nil
		}
		if fn, ok := pkg.Info.Uses[x.Sel].(*types.Func); ok {
			if fi := dv.declFor(fn); fi != nil {
				return []*FuncInfo{fi}
			}
		}
	case *ast.CompositeLit:
		var out []*FuncInfo
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				elt = kv.Value
			}
			out = append(out, dv.funcTargets(pkg, elt)...)
		}
		return out
	case *ast.CallExpr:
		if isConversion(pkg, x) && len(x.Args) == 1 {
			return dv.funcTargets(pkg, x.Args[0])
		}
	case *ast.UnaryExpr:
		return dv.funcTargets(pkg, x.X)
	}
	return nil
}

// Devirt reports the devirtualizer's blind spots on marked paths: a
// reflect invocation reachable from any contract root means the static
// guarantee stops there, and that must surface as a finding rather
// than silent under-approximation.
var Devirt = &Analyzer{
	Name: "devirt",
	Doc:  "flags reflect invocations reachable from contract roots, where devirtualization is blind",
	Run:  runDevirt,
}

func runDevirt(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.allRoots()) {
		for _, pos := range prog.graph.opaque[r.fn] {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(pos),
				Analyzer: "devirt",
				Message:  "call through reflect cannot be devirtualized: contract checking is blind past this point; restructure the call or move it off the marked path" + viaClause(prog, r),
			})
		}
	}
	return diags
}
