package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ShardPurity enforces the static form of the -jobs 1 ≡ -jobs N
// byte-identical contract at the task level: functions marked
// //repro:shardpure — the campaign's task-identity, baseline-memo and
// task-execution roots — and every module function reachable from them
// through the devirtualized graph must compute results from their
// inputs alone. A task that writes shared package-level state, reads
// the clock or environment, or observes worker parallelism can produce
// schedule-dependent output that the dynamic jobs-determinism smokes
// only catch when the schedule cooperates.
//
// Flagged: writes (assignment, ++/--, map/index stores) whose base
// resolves to a package-level variable; the wall-clock/environment
// reads the determinism analyzer bans; runtime host/goroutine identity
// reads (GOMAXPROCS, NumCPU, NumGoroutine); and the global math/rand
// generator, whose state is shared across every shard in the process.
var ShardPurity = &Analyzer{
	Name: "shardpurity",
	Doc:  "flags shared-state writes and host-identity reads reachable from //repro:shardpure roots",
	Run:  runShardPurity,
}

// shardBannedRuntime maps runtime functions to why a shard must not
// call them.
var shardBannedRuntime = map[string]string{
	"GOMAXPROCS":   "reads host parallelism",
	"NumCPU":       "reads host parallelism",
	"NumGoroutine": "reads goroutine identity",
}

func runShardPurity(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.markers.roots(contractShardpure)) {
		diags = append(diags, checkShardPure(prog, r)...)
	}
	return diags
}

func checkShardPure(prog *Program, r reached) []Diagnostic {
	var diags []Diagnostic
	fi, pkg := r.fn, r.fn.Pkg
	via := viaClause(prog, r)
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "shardpurity",
			Message:  msg + via,
		})
	}

	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if v := pkgLevelTarget(pkg, lhs); v != nil {
					report(lhs.Pos(), "package-level state written ("+v.Name()+"): sharded tasks must not share mutable state")
				}
			}
		case *ast.IncDecStmt:
			if v := pkgLevelTarget(pkg, node.X); v != nil {
				report(node.X.Pos(), "package-level state written ("+v.Name()+"): sharded tasks must not share mutable state")
			}
		case *ast.CallExpr:
			checkShardCall(pkg, node, report)
		}
		return true
	})
	return diags
}

func checkShardCall(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	callee := calleeOf(pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // instance-scoped methods (seeded *rand.Rand etc.) are fine
	}
	path, name := callee.Pkg().Path(), callee.Name()
	if why, ok := bannedCalls[path][name]; ok {
		report(call.Pos(), "call to "+path+"."+name+" "+why+": a shard's result must depend only on its inputs")
		return
	}
	if path == "runtime" {
		if why, ok := shardBannedRuntime[name]; ok {
			report(call.Pos(), "call to runtime."+name+" "+why+": a shard's result must depend only on its inputs")
		}
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
		report(call.Pos(), "global math/rand."+name+" shares process-wide seed state across shards; thread a *rand.Rand from the task seed")
	}
}

// pkgLevelTarget resolves a write destination to the package-level
// variable it mutates, or nil for locals, parameters and fields of
// local values. Writes THROUGH a package-level base count: pkgMap[k],
// pkgVar.field and pkgSlice[i] all mutate shared state.
func pkgLevelTarget(pkg *Package, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.Ident:
			v := identVar(pkg, x)
			if v != nil && isPkgLevel(v) {
				return v
			}
			return nil
		case *ast.SelectorExpr:
			// Qualified reference to another package's variable.
			if _, ok := pkg.Info.Uses[identOf(x.X)].(*types.PkgName); ok {
				if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && isPkgLevel(v) {
					return v
				}
				return nil
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func identOf(e ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(e).(*ast.Ident)
	return id
}

func identVar(pkg *Package, id *ast.Ident) *types.Var {
	if id == nil {
		return nil
	}
	if v, ok := pkg.Info.Uses[id].(*types.Var); ok {
		return v
	}
	v, _ := pkg.Info.Defs[id].(*types.Var)
	return v
}

// isPkgLevel reports whether v is declared at package scope (the scope
// whose parent is the universe).
func isPkgLevel(v *types.Var) bool {
	return v.Parent() != nil && v.Parent().Parent() == types.Universe
}
