package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MetricsDiscipline enforces the observability rule from DESIGN.md §8:
// hot-path code publishes only through pre-registered obs cells held by
// value. The registry (its mutex, its maps) is a setup/reader-side
// structure; touching it from a //repro:hotpath-reachable function is a
// contract violation even when hotpathalloc can't prove an allocation.
//
// Flagged, in hotpath-reachable code: any *obs.Registry method call,
// obs.NewRegistry, reader-side Histogram.Snapshot, and map lookups that
// fetch a metric cell (map values of type *obs.Counter/Gauge/Histogram).
var MetricsDiscipline = &Analyzer{
	Name: "metricsdiscipline",
	Doc:  "flags obs registry walks and metric-cell map lookups reachable from //repro:hotpath roots",
	Run:  runMetricsDiscipline,
}

func runMetricsDiscipline(prog *Program) []Diagnostic {
	obsPath := prog.ModPath + "/internal/obs"
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.markers.roots(contractHotpath)) {
		diags = append(diags, checkMetrics(prog, r, obsPath)...)
	}
	return diags
}

func checkMetrics(prog *Program, r reached, obsPath string) []Diagnostic {
	var diags []Diagnostic
	fi, pkg := r.fn, r.fn.Pkg
	via := viaClause(prog, r)
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "metricsdiscipline",
			Message:  msg + via,
		})
	}

	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			callee := calleeOf(pkg, node)
			if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != obsPath {
				return true
			}
			switch recv := receiverTypeName(callee); {
			case recv == "Registry":
				report(node.Pos(), "obs.Registry."+callee.Name()+" on the hot path: publishers must hold cells by value, registered at setup")
			case recv == "Histogram" && callee.Name() == "Snapshot":
				report(node.Pos(), "Histogram.Snapshot on the hot path: snapshots are reader-side")
			case recv == "" && callee.Name() == "NewRegistry":
				report(node.Pos(), "obs.NewRegistry on the hot path: registries are built at setup")
			}
		case *ast.IndexExpr:
			if !isMapType(typeOf(pkg, node.X)) {
				return true
			}
			m, _ := typeOf(pkg, node.X).Underlying().(*types.Map)
			if m != nil && isObsCellPtr(m.Elem(), obsPath) {
				report(node.Pos(), "metric cell fetched through a map on the hot path: hold the cell by value")
			}
		}
		return true
	})
	return diags
}

// receiverTypeName returns the bare receiver type name of a method
// ("Registry" for *obs.Registry), or "" for plain functions.
func receiverTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// isObsCellPtr reports whether t is *obs.Counter, *obs.Gauge, or
// *obs.Histogram.
func isObsCellPtr(t types.Type, obsPath string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := p.Elem().(*types.Named)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Pkg().Path() != obsPath {
		return false
	}
	switch named.Obj().Name() {
	case "Counter", "Gauge", "Histogram":
		return true
	}
	return false
}
