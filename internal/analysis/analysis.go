// Package analysis implements reprolint: a small, dependency-free
// go/analysis-style framework that statically enforces this repo's two
// load-bearing contracts — the 0 allocs/ref hot loop and the
// byte-identical determinism of campaign output — plus the metrics
// discipline that keeps the observability layer off the hot path.
//
// The dynamic pins (AllocsPerRun, jobs-determinism smokes, benchtrend)
// prove the contracts hold on the paths the tests exercise; these
// analyzers prove the *code shape* can't violate them, and fail in
// seconds with a file:line pointer instead of hours later with a diff.
//
// Everything is built on go/ast + go/types with stdlib go/importer
// loading (golang.org/x/tools is deliberately not a dependency), so the
// linter runs offline in the same container as the build.
package analysis

import (
	"go/token"
	"sort"
	"time"
)

// Diagnostic is one finding: a contract violation at a position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Allowance is one //repro:allow marker that suppressed at least one
// diagnostic, with the count it absorbed. The driver reports these so
// suppressions stay visible instead of silent.
type Allowance struct {
	Pos    token.Position
	Reason string
	Count  int
}

// Analyzer is one named pass over a loaded Program.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(prog *Program) []Diagnostic
}

// All is the full reprolint suite in reporting order.
var All = []*Analyzer{HotPathAlloc, Determinism, ShardPurity, AtomicDiscipline, MetricsDiscipline, RecDiscipline, Devirt}

// Timing records one analyzer's wall-clock cost, so lint runtime is a
// tracked quantity (surfaced by the driver, guarded in CI) rather than
// an invisible tax that creeps up.
type Timing struct {
	Analyzer string
	Elapsed  time.Duration
}

// Result is the outcome of an Analyze call: surviving diagnostics
// (position-sorted), the allowances that were exercised, marker grammar
// problems folded in as diagnostics, and per-analyzer timings.
type Result struct {
	Diags      []Diagnostic
	Allowances []Allowance
	Timings    []Timing
}

// Analyze runs the given analyzers (default: All) over the program,
// applies //repro:allow suppression, and flags stale allowances — an
// allow comment that suppresses nothing is dead weight that would hide
// a future regression, so it must be removed when the code it excused
// goes away.
func (p *Program) Analyze(analyzers ...*Analyzer) *Result {
	if len(analyzers) == 0 {
		analyzers = All
	}
	var raw []Diagnostic
	raw = append(raw, p.markers.diags...)
	res := &Result{}
	for _, a := range analyzers {
		start := time.Now()
		raw = append(raw, a.Run(p)...)
		res.Timings = append(res.Timings, Timing{Analyzer: a.Name, Elapsed: time.Since(start)})
	}

	for _, d := range raw {
		if m := p.markers.allowFor(d.Pos); m != nil {
			m.Used++
			continue
		}
		res.Diags = append(res.Diags, d)
	}
	for _, m := range p.markers.order {
		if m.Used > 0 {
			res.Allowances = append(res.Allowances, Allowance{Pos: m.Pos, Reason: m.Reason, Count: m.Used})
		} else {
			res.Diags = append(res.Diags, Diagnostic{
				Pos:      m.Pos,
				Analyzer: "markers",
				Message:  "stale //repro:allow: no diagnostic suppressed (remove it, or the excuse outlives the code)",
			})
		}
	}
	sortDiags(res.Diags)
	sort.Slice(res.Allowances, func(i, j int) bool {
		return posLess(res.Allowances[i].Pos, res.Allowances[j].Pos)
	})
	return res
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		if !posEq(ds[i].Pos, ds[j].Pos) {
			return posLess(ds[i].Pos, ds[j].Pos)
		}
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

func posLess(a, b token.Position) bool {
	if a.Filename != b.Filename {
		return a.Filename < b.Filename
	}
	if a.Line != b.Line {
		return a.Line < b.Line
	}
	return a.Column < b.Column
}

func posEq(a, b token.Position) bool {
	return a.Filename == b.Filename && a.Line == b.Line && a.Column == b.Column
}
