package analysis

import (
	"go/ast"
	"go/token"
)

// RecDiscipline enforces the flight-recorder rule from DESIGN.md §10:
// hot-path code touches the recorder only through the two writer-side
// entry points, (*rec.Recorder).Emit and (*rec.Recorder).Stamp — one
// fixed-size store into a pre-allocated ring, nil-safe, 0 allocs.
// Everything else in the rec package is setup (New) or reader side
// (Seal, Reset, the exporters, the decoder): those walk, copy or
// allocate, and reaching them from a //repro:hotpath root is a
// contract violation even when hotpathalloc can't prove an allocation
// on the specific path.
var RecDiscipline = &Analyzer{
	Name: "recdiscipline",
	Doc:  "flags flight-recorder setup/reader-side calls reachable from //repro:hotpath roots",
	Run:  runRecDiscipline,
}

func runRecDiscipline(prog *Program) []Diagnostic {
	recPath := prog.ModPath + "/internal/obs/rec"
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.markers.roots(contractHotpath)) {
		diags = append(diags, checkRec(prog, r, recPath)...)
	}
	return diags
}

func checkRec(prog *Program, r reached, recPath string) []Diagnostic {
	var diags []Diagnostic
	fi, pkg := r.fn, r.fn.Pkg
	via := viaClause(prog, r)
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "recdiscipline",
			Message:  msg + via,
		})
	}

	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		node, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeOf(pkg, node)
		if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != recPath {
			return true
		}
		if recv := receiverTypeName(callee); recv == "Recorder" {
			switch callee.Name() {
			case "Emit", "Stamp":
				return true // the writer-side contract
			}
			report(node.Pos(), "rec.Recorder."+callee.Name()+" on the hot path: only Emit and Stamp are writer-side; seal and read after the run")
			return true
		}
		report(node.Pos(), "rec."+callee.Name()+" on the hot path: recorder setup and export are off-path; rings are built before the run")
		return true
	})
	return diags
}
