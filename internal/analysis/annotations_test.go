package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// rootNameRE matches the backticked root names in the DESIGN.md §9
// table, in the same pkg.(*Recv).Method / pkg.Func shape fullName
// produces.
var rootNameRE = regexp.MustCompile("`([a-z][a-z0-9]*\\.(?:\\(\\*?[A-Za-z0-9]+\\)\\.)?[A-Za-z0-9]+)`")

// designRoots parses the "Canonical hot-path roots" table out of
// DESIGN.md §9: backticked names on table rows between the §9 header
// and the next section (or EOF).
func designRoots(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	start := strings.Index(text, "## §9")
	if start < 0 {
		t.Fatal("DESIGN.md has no §9 section")
	}
	section := text[start:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}
	var roots []string
	for _, line := range strings.Split(section, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		if m := rootNameRE.FindStringSubmatch(line); m != nil {
			roots = append(roots, m[1])
		}
	}
	if len(roots) < 10 {
		t.Fatalf("parsed only %d roots from the §9 table — table or parser drifted", len(roots))
	}
	return roots
}

// TestDesignRootsAnnotated: every root named in the DESIGN.md §9 table
// must carry //repro:hotpath in source. The table is the canonical
// list; the source may mark more (every edu.Engine implementation
// does), but a listed root losing its marker fails here.
func TestDesignRootsAnnotated(t *testing.T) {
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	ms := collectMarkers(prog)
	marked := make(map[string]bool)
	for _, fi := range ms.roots(true) {
		marked[fullName(fi.Obj)] = true
	}
	for _, root := range designRoots(t) {
		if !marked[root] {
			t.Errorf("DESIGN.md §9 names %s as a hot-path root, but it carries no //repro:hotpath marker", root)
		}
	}
}

// TestEngineMethodsAnnotated enforces the §9 rule for the open set:
// every edu.Engine implementation's EncryptLine/DecryptLine and every
// edu.Verifier's VerifyRead/UpdateWrite must be hotpath-marked, since
// interface dispatch is not a call-graph edge.
func TestEngineMethodsAnnotated(t *testing.T) {
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	ms := collectMarkers(prog)
	hot := map[string]bool{
		"EncryptLine": true, "DecryptLine": true,
		"VerifyRead": true, "UpdateWrite": true,
	}
	checked := 0
	for _, fi := range ms.decls {
		if fi.Obj == nil || fi.Decl.Recv == nil || !hot[fi.Obj.Name()] {
			continue
		}
		switch {
		case strings.Contains(fi.Pkg.Path, "/internal/attack"):
			continue // tamper probes replay lines off the hot loop
		case strings.Contains(fi.Pkg.Path, "/internal/core"):
			continue // one-shot experiment-table adapters, not the streaming loop
		}
		checked++
		if !fi.Hotpath {
			t.Errorf("%s implements a per-reference interface method but carries no //repro:hotpath marker", fullName(fi.Obj))
		}
	}
	if checked < 15 {
		t.Fatalf("only %d per-reference methods found — method-name sweep drifted", checked)
	}
}
