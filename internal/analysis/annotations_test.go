package analysis

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// rootNameRE matches the backticked root names in the DESIGN.md §9
// table, in the same pkg.(*Recv).Method / pkg.Func shape fullName
// produces.
var rootNameRE = regexp.MustCompile("`([a-z][a-z0-9]*\\.(?:\\(\\*?[A-Za-z0-9]+\\)\\.)?[A-Za-z0-9]+)`")

// designRoots parses the "Canonical hot-path roots" table out of
// DESIGN.md §9: backticked names on table rows between the §9 header
// and the next section (or EOF).
func designRoots(t *testing.T) []string {
	t.Helper()
	raw, err := os.ReadFile("../../DESIGN.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	start := strings.Index(text, "## §9")
	if start < 0 {
		t.Fatal("DESIGN.md has no §9 section")
	}
	section := text[start:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}
	var roots []string
	for _, line := range strings.Split(section, "\n") {
		if !strings.HasPrefix(line, "| `") {
			continue
		}
		if m := rootNameRE.FindStringSubmatch(line); m != nil {
			roots = append(roots, m[1])
		}
	}
	if len(roots) < 10 {
		t.Fatalf("parsed only %d roots from the §9 table — table or parser drifted", len(roots))
	}
	return roots
}

func loadModule(t *testing.T) *Program {
	t.Helper()
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load module: %v", err)
	}
	return prog
}

// TestDesignRootsAnnotated: every root named in the DESIGN.md §9 table
// must carry //repro:hotpath in source. The table is the canonical
// list; the source may mark more, but a listed root losing its marker
// fails here.
func TestDesignRootsAnnotated(t *testing.T) {
	prog := loadModule(t)
	marked := make(map[string]bool)
	for _, fi := range prog.markers.roots(contractHotpath) {
		if fi.Obj != nil {
			marked[fullName(fi.Obj)] = true
		}
	}
	for _, root := range designRoots(t) {
		if !marked[root] {
			t.Errorf("DESIGN.md §9 names %s as a hot-path root, but it carries no //repro:hotpath marker", root)
		}
	}
}

// findFunc locates a module function by its fullName-style rendering.
func findFunc(t *testing.T, prog *Program, name string) *FuncInfo {
	t.Helper()
	for _, fi := range prog.markers.all {
		if prog.nameOf(fi) == name {
			return fi
		}
	}
	t.Fatalf("module function %s not found", name)
	return nil
}

// TestDevirtualizedInterfaceCoverage pins the property the whole
// refactor exists for: the single //repro:hotpath marker on soc.Run
// reaches every in-module edu.Engine and edu.Verifier implementation
// body through the devirtualized call graph — the authtree verify
// paths, every engine's line transform — with NO marker needed on the
// implementations themselves. This replaces the old hand-rolled
// method-name sweep that required each implementation to carry its own
// marker because interface dispatch used to not be a call-graph edge.
func TestDevirtualizedInterfaceCoverage(t *testing.T) {
	prog := loadModule(t)
	socRun := findFunc(t, prog, "soc.(*SoC).Run")

	reach := make(map[string]bool)
	var reachedList []reached
	for _, r := range prog.reachableFrom([]*FuncInfo{socRun}) {
		reach[prog.nameOf(r.fn)] = true
		reachedList = append(reachedList, r)
	}

	// The acceptance pins: interface edges carry the contract from the
	// SoC loop into the authentication tree and the engines.
	for _, want := range []string{
		"authtree.(*Tree).VerifyRead",
		"authtree.(*Tree).UpdateWrite",
		"authtree.(*Flat).VerifyRead",
		"authtree.(*Flat).UpdateWrite",
		"gilmont.(*Engine).EncryptLine",
		"gilmont.(*Engine).DecryptLine",
		"blockengine.(*Engine).EncryptLine",
		"multikey.(*Engine).DecryptLine",
		"edu.Null.EncryptLine",
	} {
		if !reach[want] {
			t.Errorf("%s is not reachable from soc.(*SoC).Run in the devirtualized graph — interface-edge resolution regressed", want)
		}
	}

	// Sweep guard for the open set: every per-reference interface
	// method body in the module should be covered through dispatch, so
	// the count of distinct reached implementations must not collapse
	// if the engine registry or CHA scope drifts.
	perRef := map[string]bool{
		"EncryptLine": true, "DecryptLine": true,
		"VerifyRead": true, "UpdateWrite": true,
	}
	checked := 0
	for _, r := range reachedList {
		if r.fn.Obj != nil && r.fn.Decl != nil && r.fn.Decl.Recv != nil && perRef[r.fn.Obj.Name()] {
			checked++
		}
	}
	if checked < 15 {
		t.Fatalf("only %d per-reference interface method bodies reachable from soc.Run — devirtualization drifted", checked)
	}
}

// TestReachedAttribution: propagated coverage must attribute each
// reached function to the originating root so diagnostics can say
// "(reached from soc.(*SoC).Run)".
func TestReachedAttribution(t *testing.T) {
	prog := loadModule(t)
	socRun := findFunc(t, prog, "soc.(*SoC).Run")
	for _, r := range prog.reachableFrom([]*FuncInfo{socRun}) {
		if r.root != socRun {
			t.Fatalf("%s attributed to root %s, want soc.(*SoC).Run", prog.nameOf(r.fn), prog.nameOf(r.root))
		}
		if r.fn != socRun && viaClause(prog, r) == "" {
			t.Fatalf("%s reached transitively but has empty via clause", prog.nameOf(r.fn))
		}
	}
}
