package analysis

import (
	"go/ast"
	"go/types"
)

// The escape heuristic: deliberately conservative in the direction of
// false NEGATIVES. A hot-path allocation the linter misses is still
// caught by the dynamic AllocsPerRun pins; a false positive would push
// people toward blanket //repro:allow markers, which is worse. The
// rules are one-level: an allocation bound to a plain local variable is
// clean only if every use of that variable is a recognized non-escaping
// use; aliasing into a second local is trusted (not tracked further).

// escapeUse classifies how an allocating expression is consumed by its
// immediate syntactic parent.
func escapesAt(pkg *Package, fi *FuncInfo, alloc ast.Expr, stack []ast.Node) (bool, string) {
	child := ast.Node(alloc)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.CallExpr:
			if child == parent.Fun {
				return false, "" // conversion operand handled elsewhere
			}
			switch builtinName(pkg, parent) {
			case "len", "cap", "copy", "delete", "clear", "panic":
				return false, ""
			case "append":
				if len(parent.Args) > 0 && parent.Args[0] == child {
					// The base operand of append: growth is the append
					// rule's business, not the literal's.
					return false, ""
				}
				return true, "appended into a slice"
			}
			return true, "passed to a call"
		case *ast.AssignStmt:
			v := assignedLocal(pkg, fi, parent, child)
			if v == nil {
				return true, "stored outside the local frame"
			}
			return localEscapes(pkg, fi, v)
		case *ast.ValueSpec:
			for j, val := range parent.Values {
				if val != child || j >= len(parent.Names) {
					continue
				}
				if v, ok := pkg.Info.Defs[parent.Names[j]].(*types.Var); ok {
					return localEscapes(pkg, fi, v)
				}
			}
			return true, "stored outside the local frame"
		case *ast.ReturnStmt:
			return true, "returned"
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true, "stored in a composite literal"
		case *ast.SendStmt:
			return true, "sent on a channel"
		case *ast.IndexExpr, *ast.SliceExpr, *ast.StarExpr, *ast.SelectorExpr:
			// make(...)[i], make(...)[:n] etc: consumed in place.
			return false, ""
		case *ast.ExprStmt:
			return false, "" // discarded
		case *ast.RangeStmt:
			if parent.X == child {
				return false, "" // ranged over in place
			}
			return true, "used in range clause"
		case *ast.DeferStmt, *ast.GoStmt:
			return true, "captured by defer/go"
		default:
			return true, "escapes"
		}
	}
	return true, "escapes"
}

// assignedLocal returns the local variable the expression is bound to in
// the assignment, or nil when the destination is anything other than a
// plain function-local identifier.
func assignedLocal(pkg *Package, fi *FuncInfo, as *ast.AssignStmt, rhs ast.Node) *types.Var {
	if len(as.Lhs) != len(as.Rhs) {
		return nil
	}
	for i, r := range as.Rhs {
		if r != rhs {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		var v *types.Var
		if d, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := pkg.Info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v != nil && isLocalVar(fi, v) {
			return v
		}
		return nil
	}
	return nil
}

// isLocalVar reports whether v is declared inside the function body
// (not a parameter capture concern here — params are local too, but a
// param already came from the caller, so storing into it is fine).
func isLocalVar(fi *FuncInfo, v *types.Var) bool {
	return fi.Body() != nil && v.Pos() >= fi.Pos() && v.Pos() <= fi.End()
}

// localEscapes scans every use of a local variable bound to a fresh
// allocation and reports the first escaping use.
func localEscapes(pkg *Package, fi *FuncInfo, v *types.Var) (bool, string) {
	escaped := false
	reason := ""
	inspectStack(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		if escaped {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || pkg.Info.Uses[id] != v {
			return true
		}
		if esc, why := useEscapes(pkg, fi, v, id, stack); esc {
			escaped, reason = true, why+" via "+v.Name()
		}
		return true
	})
	return escaped, reason
}

// useEscapes classifies one use of the tracked variable.
func useEscapes(pkg *Package, fi *FuncInfo, v *types.Var, id *ast.Ident, stack []ast.Node) (bool, string) {
	child := ast.Node(id)
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.ParenExpr:
			child = parent
			continue
		case *ast.ReturnStmt:
			return true, "returned"
		case *ast.CallExpr:
			if child == parent.Fun {
				return false, ""
			}
			switch builtinName(pkg, parent) {
			case "len", "cap", "copy", "delete", "clear", "panic":
				return false, ""
			case "append":
				if len(parent.Args) > 0 && parent.Args[0] == child {
					return false, "" // v = append(v, ...): growth, not escape
				}
				return true, "appended into a slice"
			}
			return true, "passed to a call"
		case *ast.UnaryExpr:
			if parent.Op.String() == "&" {
				return true, "address taken"
			}
			return false, ""
		case *ast.AssignStmt:
			// v on the LHS: writing INTO the allocation is fine
			// (v[i] = x, v = append(v, ...)).
			for _, l := range parent.Lhs {
				if containsNode(l, id) {
					return false, ""
				}
			}
			// v on the RHS: fine if the destination is another plain
			// local (one-level aliasing is trusted), escaping otherwise.
			if local := aliasTarget(pkg, fi, parent, child); local {
				return false, ""
			}
			return true, "stored outside the local frame"
		case *ast.CompositeLit, *ast.KeyValueExpr:
			return true, "stored in a composite literal"
		case *ast.SendStmt:
			return true, "sent on a channel"
		case *ast.IndexExpr:
			if parent.X == child {
				return false, "" // v[i]
			}
			child = parent
			continue
		case *ast.SliceExpr, *ast.SelectorExpr, *ast.StarExpr, *ast.BinaryExpr,
			*ast.ExprStmt, *ast.IfStmt, *ast.ForStmt, *ast.SwitchStmt, *ast.BlockStmt,
			*ast.CaseClause, *ast.IncDecStmt, *ast.DeclStmt, *ast.TypeAssertExpr:
			if r, ok := parent.(*ast.SliceExpr); ok && r.X == child {
				return false, ""
			}
			child = stack[i]
			if _, isExpr := parent.(ast.Expr); !isExpr {
				return false, ""
			}
			continue
		case *ast.RangeStmt:
			return false, ""
		case *ast.DeferStmt, *ast.GoStmt:
			return true, "captured by defer/go"
		case *ast.FuncLit:
			return true, "captured by a closure"
		default:
			child = stack[i]
			continue
		}
	}
	return false, ""
}

// aliasTarget reports whether the assignment binds the use to another
// plain local variable (w := v).
func aliasTarget(pkg *Package, fi *FuncInfo, as *ast.AssignStmt, rhs ast.Node) bool {
	if len(as.Lhs) != len(as.Rhs) {
		return false
	}
	for i, r := range as.Rhs {
		if !containsNode(r, rhs) {
			continue
		}
		id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident)
		if !ok {
			return false
		}
		if id.Name == "_" {
			return true
		}
		var v *types.Var
		if d, ok := pkg.Info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := pkg.Info.Uses[id].(*types.Var); ok {
			v = u
		}
		return v != nil && isLocalVar(fi, v)
	}
	return false
}

// containsNode reports whether root's subtree contains target.
func containsNode(root, target ast.Node) bool {
	if root == nil {
		return false
	}
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
