package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Determinism enforces the -jobs 1 ≡ -jobs N byte-identical output
// contract: functions marked //repro:deterministic, and every
// same-module function statically reachable from them, must not let
// host state into results.
//
// Flagged: wall-clock reads (time.Now/Since/Until and timer
// constructors); the global math/rand generator (explicit *rand.Rand
// instances threaded from seeds are fine — that's the repo's idiom);
// environment/host reads (os.Getenv, os.Hostname, os.Getpid, ...); and
// ranging over a map, whose iteration order is deliberately random,
// unless the body is the sorted-keys idiom: collect keys with
// k = append(k, key) and sort them later in the same function.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "flags host-state and ordering nondeterminism reachable from //repro:deterministic roots",
	Run:  runDeterminism,
}

// bannedCalls maps package path → function name → explanation.
var bannedCalls = map[string]map[string]string{
	"time": {
		"Now":       "reads the wall clock",
		"Since":     "reads the wall clock",
		"Until":     "reads the wall clock",
		"After":     "schedules on the wall clock",
		"Tick":      "schedules on the wall clock",
		"NewTimer":  "schedules on the wall clock",
		"NewTicker": "schedules on the wall clock",
		"AfterFunc": "schedules on the wall clock",
	},
	"os": {
		"Getenv":        "reads the environment",
		"LookupEnv":     "reads the environment",
		"Environ":       "reads the environment",
		"Hostname":      "reads host identity",
		"Getpid":        "reads host identity",
		"Getppid":       "reads host identity",
		"Getuid":        "reads host identity",
		"Getwd":         "reads host state",
		"UserHomeDir":   "reads host state",
		"UserCacheDir":  "reads host state",
		"UserConfigDir": "reads host state",
		"TempDir":       "reads host state",
	},
}

// randConstructors are the math/rand package-level functions that are
// allowed: they build explicitly-seeded generators instead of consuming
// the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func runDeterminism(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.markers.roots(contractDeterministic)) {
		diags = append(diags, checkDeterministic(prog, r)...)
	}
	return diags
}

func checkDeterministic(prog *Program, r reached) []Diagnostic {
	var diags []Diagnostic
	fi, pkg := r.fn, r.fn.Pkg
	via := viaClause(prog, r)
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "determinism",
			Message:  msg + via,
		})
	}

	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			checkBannedCall(pkg, node, report)
		case *ast.RangeStmt:
			if isMapType(typeOf(pkg, node.X)) && !isSortedKeysIdiom(pkg, fi, node) {
				report(node.Range, "map iteration order is randomized; collect keys and sort (see sorted-keys idiom)")
			}
		}
		return true
	})
	return diags
}

func checkBannedCall(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	callee := calleeOf(pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return
	}
	path, name := callee.Pkg().Path(), callee.Name()
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
		return // methods (e.g. *rand.Rand.Intn, time.Time.Sub) are instance-scoped
	}
	if why, ok := bannedCalls[path][name]; ok {
		report(call.Pos(), "call to "+path+"."+name+" "+why)
		return
	}
	if (path == "math/rand" || path == "math/rand/v2") && !randConstructors[name] {
		report(call.Pos(), "global math/rand."+name+" shares seed state across the process; thread a *rand.Rand from a task seed")
	}
}

// isSortedKeysIdiom recognizes the one blessed map-range shape:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)   // or any sort./slices.Sort* over keys, later
//
// The range body must be exactly the self-append of the key, and the
// collected slice must flow into a sort call later in the same function.
func isSortedKeysIdiom(pkg *Package, fi *FuncInfo, rng *ast.RangeStmt) bool {
	if rng.Body == nil || len(rng.Body.List) != 1 {
		return false
	}
	keyID, ok := rng.Key.(*ast.Ident)
	if !ok {
		return false
	}
	as, ok := rng.Body.List[0].(*ast.AssignStmt)
	if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || builtinName(pkg, call) != "append" || len(call.Args) != 2 {
		return false
	}
	if types.ExprString(as.Lhs[0]) != types.ExprString(call.Args[0]) {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || arg.Name != keyID.Name {
		return false
	}
	keysVar := collectedVar(pkg, as.Lhs[0])
	if keysVar == nil {
		return false
	}
	// Look for a sort call after the range that consumes the keys var.
	sorted := false
	ast.Inspect(fi.Body(), func(n ast.Node) bool {
		if sorted || n == nil || n.Pos() <= rng.End() {
			return true
		}
		c, ok := n.(*ast.CallExpr)
		if !ok || !isSortCall(pkg, c) {
			return true
		}
		for _, a := range c.Args {
			used := false
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pkg.Info.Uses[id] == keysVar {
					used = true
				}
				return !used
			})
			if used {
				sorted = true
			}
		}
		return !sorted
	})
	return sorted
}

// collectedVar resolves the variable object of the keys slice.
func collectedVar(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[x]; o != nil {
			return o
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		return pkg.Info.Uses[x.Sel]
	}
	return nil
}

// isSortCall recognizes sort.* and slices.Sort* calls.
func isSortCall(pkg *Package, call *ast.CallExpr) bool {
	callee := calleeOf(pkg, call)
	if callee == nil || callee.Pkg() == nil {
		return false
	}
	switch callee.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		switch callee.Name() {
		case "Sort", "SortFunc", "SortStableFunc":
			return true
		}
	}
	return false
}
