package analysis

import (
	"strings"
	"testing"
)

// TestMarkerGrammar pins the framework-level diagnostics: unknown
// directives, misplaced markers, reason-less allows, and stale allows
// each produce a file:line finding.
func TestMarkerGrammar(t *testing.T) {
	prog, err := Load(".", "./testdata/src/markersfix")
	if err != nil {
		t.Fatal(err)
	}
	res := prog.Analyze()

	expect := map[int]string{
		8:  "unknown directive //repro:frobnicate",
		12: "//repro:hotpath must be on a function's doc comment or before the package clause",
		16: "//repro:allow requires a reason",
		20: "stale //repro:allow",
	}
	var fixtureDiags []Diagnostic
	for _, d := range res.Diags {
		if strings.Contains(d.Pos.Filename, "markersfix") {
			fixtureDiags = append(fixtureDiags, d)
		}
	}
	if len(fixtureDiags) != len(expect) {
		t.Errorf("got %d diagnostics, want %d: %v", len(fixtureDiags), len(expect), fixtureDiags)
	}
	for _, d := range fixtureDiags {
		want, ok := expect[d.Pos.Line]
		if !ok {
			t.Errorf("unexpected diagnostic at line %d: %s", d.Pos.Line, d.Message)
			continue
		}
		if d.Analyzer != "markers" {
			t.Errorf("line %d: analyzer = %q, want markers", d.Pos.Line, d.Analyzer)
		}
		if !strings.Contains(d.Message, want) {
			t.Errorf("line %d: message %q does not contain %q", d.Pos.Line, d.Message, want)
		}
		delete(expect, d.Pos.Line)
	}
	for line, msg := range expect {
		t.Errorf("missing diagnostic at line %d (%s)", line, msg)
	}
	if len(res.Allowances) != 0 {
		t.Errorf("stale allow must not appear as a used allowance: %v", res.Allowances)
	}
}

// TestLoadErrors pins loader failure modes.
func TestLoadErrors(t *testing.T) {
	if _, err := Load(".", "./no/such/dir"); err == nil {
		t.Error("expected error for missing package dir")
	}
	if _, err := Load("/", "./..."); err == nil {
		t.Error("expected error outside any module")
	}
}
