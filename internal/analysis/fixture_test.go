package analysis

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// runFixture loads one fixture package from testdata/src, runs the
// given analyzers, and checks the diagnostics against the fixture's
// // want `regexp` comments: every want must be matched by exactly one
// diagnostic on its line, and every diagnostic must be wanted.
// Diagnostics outside the fixture directory (e.g. in real module
// packages the fixture imports) are ignored. The Result is returned
// for extra assertions (allowances, counts).
func runFixture(t *testing.T, fixture string, analyzers ...*Analyzer) *Result {
	t.Helper()
	dir := filepath.Join("testdata", "src", fixture)
	prog, err := Load(".", "./"+filepath.ToSlash(dir))
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	res := prog.Analyze(analyzers...)

	absDir, err := filepath.Abs(dir)
	if err != nil {
		t.Fatal(err)
	}
	inFixture := func(filename string) bool {
		return strings.HasPrefix(filename, absDir+string(filepath.Separator))
	}

	wants := parseWants(t, absDir)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no // want comments — harness would pass vacuously", fixture)
	}

	// Index fixture diagnostics by file:line.
	got := make(map[string][]string)
	for _, d := range res.Diags {
		if !inFixture(d.Pos.Filename) {
			continue
		}
		key := filepath.Base(d.Pos.Filename) + ":" + itoa(d.Pos.Line)
		got[key] = append(got[key], d.Analyzer+": "+d.Message)
	}

	for key, res := range wants {
		msgs := got[key]
		if len(msgs) != len(res) {
			t.Errorf("%s: want %d diagnostic(s) %v, got %d: %v", key, len(res), res, len(msgs), msgs)
			continue
		}
		used := make([]bool, len(msgs))
		for _, re := range res {
			found := false
			for i, msg := range msgs {
				if !used[i] && re.MatchString(msg) {
					used[i] = true
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: no diagnostic matching %q among %v", key, re, msgs)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s): %v", key, msgs)
		}
	}
	return res
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

// parseWants extracts want expectations per file:line. Multiple
// patterns on one line: // want `a` `b`.
func parseWants(t *testing.T, dir string) map[string][]*regexp.Regexp {
	t.Helper()
	wants := make(map[string][]*regexp.Regexp)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			idx := strings.Index(line, "// want ")
			if idx < 0 {
				continue
			}
			key := e.Name() + ":" + itoa(i+1)
			for _, m := range wantRE.FindAllStringSubmatch(line[idx:], -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
				}
				wants[key] = append(wants[key], re)
			}
		}
	}
	return wants
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestHotPathAllocFixture(t *testing.T) {
	res := runFixture(t, "hotfix", HotPathAlloc)
	// The //repro:allow in Allowed must be exercised exactly once.
	found := false
	for _, a := range res.Allowances {
		if strings.Contains(a.Reason, "steady-state writes") {
			found = true
			if a.Count != 1 {
				t.Errorf("allowance count = %d, want 1", a.Count)
			}
		}
	}
	if !found {
		t.Error("expected the steady-state-writes allowance to be used")
	}
}

func TestDeterminismFixture(t *testing.T) {
	runFixture(t, "determfix", Determinism)
}

func TestRecDisciplineFixture(t *testing.T) {
	runFixture(t, "recfix", RecDiscipline)
}

func TestMetricsDisciplineFixture(t *testing.T) {
	runFixture(t, "metricsfix", MetricsDiscipline)
}

// TestShardPurityFixture also runs Devirt: shardfix carries the
// devirtualization cases (interface dispatch with two implementers,
// func value in a struct field, method value, reflect blind spot).
func TestShardPurityFixture(t *testing.T) {
	runFixture(t, "shardfix", ShardPurity, Devirt)
}

func TestAtomicDisciplineFixture(t *testing.T) {
	runFixture(t, "atomfix", AtomicDiscipline)
}

// TestUnmarkedVerifierImplementationFails is the regression pin for
// interface-edge propagation into real module interfaces: a dirty
// edu.Verifier implementation with no marker of its own must be
// flagged when a marked caller dispatches through the interface.
func TestUnmarkedVerifierImplementationFails(t *testing.T) {
	res := runFixture(t, "devirtfix", HotPathAlloc)
	found := false
	for _, d := range res.Diags {
		if strings.Contains(d.Pos.Filename, "devirtfix") {
			found = true
		}
	}
	if !found {
		t.Error("unmarked edu.Verifier implementation produced no diagnostics — interface edges regressed")
	}
}
