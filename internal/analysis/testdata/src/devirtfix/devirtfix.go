// Package devirtfix is the regression fixture for interface-edge
// propagation into real module interfaces: an edu.Verifier
// implementation that carries NO //repro:hotpath marker must still be
// checked when a marked function calls VerifyRead through the
// interface. Before devirtualization this implementation was invisible
// to the linter; if these wants stop firing, interface edges regressed.
package devirtfix

import "repro/internal/edu"

// badVerifier is a deliberately dirty, unmarked edu.Verifier.
type badVerifier struct {
	tags map[uint64][]byte
	name string
}

func (b *badVerifier) Name() string { return b.name }

func (b *badVerifier) Gates() int { return 0 }

func (b *badVerifier) VerifyRead(addr uint64, ct []byte) (uint64, bool) {
	held := append([]byte{}, ct...) // want `append outside the self-append idiom.*reached from devirtfix\.Pipeline`
	b.tags[addr] = held             // want `map write may allocate.*reached from devirtfix\.Pipeline`
	return 0, true
}

func (b *badVerifier) UpdateWrite(addr uint64, ct []byte) uint64 {
	b.name = b.name + "!" // want `string concatenation allocates.*reached from devirtfix\.Pipeline`
	return 0
}

// Pipeline is the only marked function; everything below it is reached
// through the devirtualized graph.
//
//repro:hotpath
func Pipeline(v edu.Verifier, addr uint64, ct []byte) uint64 {
	cost, ok := v.VerifyRead(addr, ct)
	if !ok {
		return cost
	}
	return v.UpdateWrite(addr, ct)
}
