// Package shardfix is the shard-purity fixture: shared package-level
// state, clock/environment reads, host-identity reads, global RNG —
// and the devirtualization cases the whole-program graph must resolve
// (interface dispatch with two implementers, a function value stored in
// a struct field, a method value, and a reflect call the graph must
// surface as a blind spot rather than silently skip).
package shardfix

import (
	"math/rand"
	"os"
	"reflect"
	"runtime"
	"time"
)

var sharedCounter int
var sharedTable = map[string]int{}

//repro:shardpure
func WritesShared() {
	sharedCounter++      // want `package-level state written \(sharedCounter\): sharded tasks must not share mutable state`
	sharedTable["k"] = 1 // want `package-level state written \(sharedTable\)`
}

//repro:shardpure
func ReadsClock() int64 {
	return time.Now().UnixNano() // want `call to time\.Now reads the wall clock: a shard's result must depend only on its inputs`
}

//repro:shardpure
func ReadsEnv() string {
	return os.Getenv("SHARD") // want `call to os\.Getenv reads the environment`
}

//repro:shardpure
func HostParallelism() int {
	return runtime.GOMAXPROCS(0) // want `call to runtime\.GOMAXPROCS reads host parallelism`
}

//repro:shardpure
func GoroutineIdentity() int {
	return runtime.NumGoroutine() // want `call to runtime\.NumGoroutine reads goroutine identity`
}

//repro:shardpure
func GlobalRNG() int {
	return rand.Intn(6) // want `global math/rand\.Intn shares process-wide seed state across shards`
}

//repro:shardpure
func SeededRNG(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // seeded from the task: clean
	return r.Intn(6)
}

//repro:shardpure
func LocalState() int {
	local := map[string]int{}
	local["k"] = 1 // local map: clean
	return local["k"]
}

// worker has two in-module implementers; a call through the interface
// must gain an edge to both, flagging only the dirty body.
type worker interface{ work() }

type cleanWorker struct{ n int }

func (w *cleanWorker) work() { w.n++ }

type dirtyWorker struct{}

func (dirtyWorker) work() {
	sharedCounter++ // want `package-level state written \(sharedCounter\).*reached from shardfix\.IfaceDispatch`
}

//repro:shardpure
func IfaceDispatch(w worker) {
	w.work() // devirtualizes to both implementers; no marker on either
}

// holder stores a function value in a struct field; calling through the
// field must resolve to everything ever assigned into it.
type holder struct{ fn func() }

func dirtyFn() {
	sharedTable["x"] = 2 // want `package-level state written \(sharedTable\).*reached from shardfix\.FieldFuncValue`
}

//repro:shardpure
func FieldFuncValue() {
	h := holder{fn: dirtyFn}
	h.fn()
}

// methodValued binds a method value to a variable; the call through the
// variable must resolve to the method body.
func (w *cleanWorker) tamper() {
	sharedCounter = 7 // want `package-level state written \(sharedCounter\).*reached from shardfix\.MethodValue`
}

//repro:shardpure
func MethodValue(w *cleanWorker) {
	f := w.tamper
	f()
}

//repro:shardpure
func Reflective(v reflect.Value) {
	v.Call(nil) // want `call through reflect cannot be devirtualized`
}
