// Package determfix is the determinism fixture: wall-clock reads,
// global RNG, environment reads, and map-iteration ordering.
package determfix

import (
	"math/rand"
	"os"
	"sort"
	"time"
)

// StampResult is the canonical seeded regression: a wall-clock read in
// a marked emitter.
//
//repro:deterministic
func StampResult() int64 {
	return time.Now().UnixNano() // want `call to time\.Now reads the wall clock`
}

//repro:deterministic
func GlobalRand() int {
	return rand.Intn(10) // want `global math/rand\.Intn shares seed state across the process`
}

//repro:deterministic
func SeededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // explicitly-seeded instance: clean
	return r.Intn(10)
}

//repro:deterministic
func Env() string {
	return os.Getenv("HOME") // want `call to os\.Getenv reads the environment`
}

//repro:deterministic
func UnsortedWalk(m map[string]int) int {
	total := 0
	for _, v := range m { // want `map iteration order is randomized`
		total += v
	}
	return total
}

//repro:deterministic
func SortedWalk(m map[string]int) []string {
	var keys []string
	for k := range m { // sorted-keys idiom: clean
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EmitAll demonstrates propagation: stamp is unmarked but reachable.
//
//repro:deterministic
func EmitAll() int64 {
	return stamp()
}

func stamp() int64 {
	return time.Now().Unix() // want `call to time\.Now reads the wall clock \(reached from determfix\.EmitAll\)`
}
