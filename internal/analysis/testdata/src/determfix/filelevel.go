// This file carries a file-level marker: every function in it is a
// deterministic root without per-function annotations.
//
//repro:deterministic

package determfix

import "time"

func fileLevelMarked() time.Duration {
	return time.Since(time.Time{}) // want `call to time\.Since reads the wall clock`
}

var _ = fileLevelMarked
