// Package metricsfix is the metricsdiscipline fixture: publishers must
// hold pre-registered obs cells by value; the registry is setup-side.
package metricsfix

import "repro/internal/obs"

type publisher struct {
	refs  *obs.Counter
	reg   *obs.Registry
	cells map[string]*obs.Counter
}

//repro:hotpath
func (p *publisher) Good() {
	p.refs.Inc() // cell held by value: clean
}

// RegistryWalk is the canonical seeded regression: a registry lookup in
// a marked publisher.
//
//repro:hotpath
func (p *publisher) RegistryWalk() {
	p.reg.Counter("soc.refs").Inc() // want `obs\.Registry\.Counter on the hot path`
}

//repro:hotpath
func (p *publisher) MapLookup() {
	p.cells["soc.refs"].Inc() // want `metric cell fetched through a map on the hot path`
}

//repro:hotpath
func (p *publisher) Fresh() {
	r := obs.NewRegistry() // want `obs\.NewRegistry on the hot path`
	_ = r
}

//repro:hotpath
func Snap(h *obs.Histogram) uint64 {
	s := h.Snapshot() // want `Histogram\.Snapshot on the hot path`
	return s.Count
}

// Reader is unmarked: reader-side registry walks are fine off the hot
// path, so this function must produce no diagnostics.
func Reader(r *obs.Registry) []string {
	return r.Names()
}
