// Package hotfix is the hotpathalloc fixture: each function exercises
// one rule, with // want assertions for flagged constructs and bare
// comments for the deliberately-clean ones.
package hotfix

import "fmt"

type box struct{ v int }

func sink(v any) { _ = v }

// SeededSprintf is the canonical seeded regression: a fmt call in a
// marked hot function.
//
//repro:hotpath
func SeededSprintf(id int) {
	msg := fmt.Sprintf("ref %d", id) // want `call to fmt\.Sprintf allocates`
	_ = msg
}

//repro:hotpath
func Concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//repro:hotpath
func ConstConcat() string {
	return "a" + "b" // constant-folded: clean
}

//repro:hotpath
func Convert(b []byte) string {
	return string(b) // want `string conversion allocates a copy`
}

//repro:hotpath
func MapWrite(m map[int]int) {
	m[1] = 2 // want `map write may allocate \(grow/insert\)`
}

//repro:hotpath
func MapInc(m map[int]int) {
	m[1]++ // want `map write may allocate \(grow/insert\)`
}

//repro:hotpath
func SelfAppend(buf []byte, b byte) []byte {
	buf = append(buf, b) // self-append idiom: clean
	return buf
}

//repro:hotpath
func FreshAppend(src []byte) []byte {
	out := append([]byte(nil), src...) // want `append outside the self-append idiom`
	return out
}

//repro:hotpath
func LocalScratch() int {
	buf := make([]byte, 32) // constant-size, never escapes: clean
	for i := range buf {
		buf[i] = byte(i)
	}
	return len(buf)
}

//repro:hotpath
func EscapingMake() []byte {
	buf := make([]byte, 32) // want `make escapes \(returned via buf\) and allocates`
	return buf
}

//repro:hotpath
func DynamicMake(n int) {
	buf := make([]byte, n) // want `make with non-constant size allocates`
	_ = buf
}

//repro:hotpath
func NewEscapes() *box {
	return new(box) // want `new escapes \(returned\) and allocates`
}

//repro:hotpath
func PtrLit() *box {
	return &box{v: 1} // want `&composite literal escapes \(returned\) and allocates`
}

//repro:hotpath
func ValueLit() int {
	b := box{v: 2} // value composite literal: clean
	return b.v
}

//repro:hotpath
func SliceLit() []int {
	return []int{1, 2, 3} // want `slice literal escapes \(returned\) and allocates`
}

//repro:hotpath
func MapLit() {
	m := map[int]int{} // want `map literal allocates`
	_ = m
}

//repro:hotpath
func Boxes(n int) {
	sink(n) // want `value boxed into interface argument allocates`
}

//repro:hotpath
func NoBoxPointer(p *box) {
	sink(p) // pointer-shaped values fit the interface word: clean
}

//repro:hotpath
func ConstBox() {
	sink(42) // constant conversions are statically allocated: clean
}

//repro:hotpath
func BoxAssign(n int) {
	var v any
	v = n // want `value boxed into interface on assignment allocates`
	_ = v
}

//repro:hotpath
func BoxReturn(n int) any {
	return n // want `value boxed into interface result allocates`
}

//repro:hotpath
func CapturingClosure(n int) func() int {
	f := func() int { return n } // want `closure captures n and allocates`
	return f
}

//repro:hotpath
func StaticClosure() func() int {
	f := func() int { return 7 } // non-capturing closures are static: clean
	return f
}

//repro:hotpath
func Spawns() {
	go func() {}() // want `go statement allocates a goroutine`
}

//repro:hotpath
func DeferLoop(fns []func()) {
	for _, f := range fns {
		defer f() // want `defer inside a loop allocates per iteration`
	}
}

//repro:hotpath
func DeferOnce(f func()) {
	defer f() // single defer outside loops is open-coded: clean
}

//repro:hotpath
func Assert(ok bool) {
	if !ok {
		panic(fmt.Sprintf("broken invariant %v", ok)) // assertion path: exempt
	}
}

// Root demonstrates propagation: helper is unmarked but reachable.
//
//repro:hotpath
func Root(m map[string]int) int {
	return helper(m)
}

func helper(m map[string]int) int {
	m["k"] = 1 // want `map write may allocate \(grow/insert\) \(reached from hotfix\.Root\)`
	return len(m)
}

//repro:hotpath
func Allowed(m map[string]int) {
	m["warm"] = 1 //repro:allow steady-state writes hit existing keys
}

type iface interface{ Do() }

//repro:hotpath
func DynCall(i iface) {
	i.Do() // no in-module implementer: class-hierarchy resolution yields no edges here (see shardfix/devirtfix for the resolved cases)
}
