// Package recfix is the recdiscipline fixture: hot-path code touches
// the flight recorder only through Emit and Stamp; construction,
// sealing and export are setup/reader-side.
package recfix

import (
	"io"

	"repro/internal/obs/rec"
)

type sim struct {
	rc *rec.Recorder
}

//repro:hotpath
func (s *sim) Good(addr, cycles uint64) {
	s.rc.Stamp(cycles, 0)                         // writer-side: clean
	s.rc.Emit(rec.KindFill, addr, 0, 0, cycles)   // writer-side: clean
	s.rc.Emit(rec.KindVerify, addr, 0, 0, cycles) // nil recorder is a no-op sink
}

// SealMidRun is the canonical seeded regression: sealing copies the
// whole ring, and must never happen inside the simulated loop.
//
//repro:hotpath
func (s *sim) SealMidRun() int {
	st := s.rc.Seal("mid") // want `rec\.Recorder\.Seal on the hot path`
	return len(st.Events)
}

//repro:hotpath
func (s *sim) FreshRing() {
	s.rc = rec.New(1 << 10) // want `rec\.New on the hot path`
}

//repro:hotpath
func (s *sim) ResetRing() {
	s.rc.Reset() // want `rec\.Recorder\.Reset on the hot path`
}

//repro:hotpath
func Export(w io.Writer, tr *rec.Trace) error {
	return rec.WriteChrome(w, tr) // want `rec\.WriteChrome on the hot path`
}

// SealAfterRun is unmarked: sealing and exporting on the reader side
// must produce no diagnostics.
func SealAfterRun(rc *rec.Recorder, w io.Writer) error {
	st := rc.Seal("done")
	return rec.WriteCSV(w, &rec.Trace{Streams: []rec.Stream{st}})
}
