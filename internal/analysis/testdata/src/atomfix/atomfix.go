// Package atomfix is the atomic-discipline fixture: any variable whose
// address reaches a sync/atomic function must be accessed atomically
// everywhere — a single plain load or store against it is a data race.
// Composite-literal initialization is exempt (happens-before
// publication), and variables never touched atomically are untracked.
package atomfix

import "sync/atomic"

type cell struct {
	n    uint64
	cold uint64
}

func (c *cell) bump() {
	atomic.AddUint64(&c.n, 1) // sanctioned access form: clean
}

func (c *cell) racyRead() uint64 {
	return c.n // want `plain read of n: the variable is accessed atomically at atomfix\.go:\d+`
}

func (c *cell) racyWrite() {
	c.n = 0 // want `plain write of n`
}

func (c *cell) cleanRead() uint64 {
	return atomic.LoadUint64(&c.n)
}

func (c *cell) casLoop(old, new uint64) bool {
	return atomic.CompareAndSwapUint64(&c.n, old, new)
}

func (c *cell) coldPath() uint64 {
	c.cold++ // never accessed atomically: untracked, clean
	return c.cold
}

// newCell initializes the field in a composite literal: construction
// happens-before publication, so plain initialization is exempt.
func newCell() *cell {
	return &cell{n: 0, cold: 0}
}

var hits uint64

func observe() {
	atomic.AddUint64(&hits, 1)
}

func racyGlobalRead() uint64 {
	return hits // want `plain read of hits`
}

func racyGlobalWrite() {
	hits = 0 // want `plain write of hits`
}

func cleanGlobalRead() uint64 {
	return atomic.LoadUint64(&hits)
}

// escape hands out the address outside an atomic call: every later
// access through the pointer is invisible to the checker, so the
// address-taking itself is flagged as a write-class access.
func escape() *uint64 {
	return &hits // want `plain write of hits`
}
