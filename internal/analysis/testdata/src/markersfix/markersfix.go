// Package markersfix exercises the marker grammar itself: unknown
// directives, reason-less allows, misplaced markers, and stale allows.
// Expectations are asserted programmatically in markers_test.go (the
// // want harness can't annotate lines whose directive would swallow
// the want text).
package markersfix

//repro:frobnicate
func unknownDirective() {}

func misplaced() {
	//repro:hotpath
	_ = 0
}

//repro:allow
func reasonless() {}

func stale() int {
	x := 1 //repro:allow nothing here needs suppressing
	return x
}

var _, _, _, _ = unknownDirective, misplaced, reasonless, stale
