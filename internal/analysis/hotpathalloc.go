package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc enforces the 0 allocs/ref contract: functions marked
// //repro:hotpath, and every same-module function statically reachable
// from them, must not contain heap-allocating constructs.
//
// Flagged: fmt calls; non-constant string concatenation and
// string<->[]byte/[]rune conversions; map writes; append that doesn't
// follow the self-append amortized-buffer idiom (x = append(x, ...));
// capturing closures; go statements; defer inside a loop; value-to-
// interface boxing at calls/assignments/returns; and make/new/&T{}/
// slice/map literals that escape per the heuristic in escape.go.
//
// Deliberately NOT flagged: value composite literals (T{} is a register/
// stack construct), non-escaping constant-size make, non-capturing
// closures, constant expressions, and anything inside a panic(...)
// argument (assertion paths are performance-exempt by definition).
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "flags heap-allocating constructs reachable from //repro:hotpath roots",
	Run:  runHotPathAlloc,
}

func runHotPathAlloc(prog *Program) []Diagnostic {
	var diags []Diagnostic
	for _, r := range prog.reachableFrom(prog.markers.roots(contractHotpath)) {
		diags = append(diags, checkAllocFree(prog, r)...)
	}
	return diags
}

func checkAllocFree(prog *Program, r reached) []Diagnostic {
	var diags []Diagnostic
	fi, pkg := r.fn, r.fn.Pkg
	via := viaClause(prog, r)
	report := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Pos:      prog.Fset.Position(pos),
			Analyzer: "hotpathalloc",
			Message:  msg + via,
		})
	}

	// Pre-pass: bless self-append statements (x = append(x, ...)), the
	// amortized-buffer idiom that is allocation-free in steady state.
	blessed := make(map[*ast.CallExpr]bool)
	ast.Inspect(fi.Body(), func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok || builtinName(pkg, call) != "append" || len(call.Args) == 0 {
			return true
		}
		if types.ExprString(as.Lhs[0]) == types.ExprString(call.Args[0]) {
			blessed[call] = true
		}
		return true
	})

	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		if inPanicArg(pkg, stack) {
			return true // assertion path: exempt, but keep walking for nested panics
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			checkCall(pkg, fi, node, stack, blessed, report)
		case *ast.BinaryExpr:
			if node.Op == token.ADD && isStringType(typeOf(pkg, node)) && !isConstExpr(pkg, node) {
				report(node.OpPos, "string concatenation allocates")
			}
		case *ast.GoStmt:
			report(node.Go, "go statement allocates a goroutine")
		case *ast.DeferStmt:
			if enclosedInLoop(stack) {
				report(node.Defer, "defer inside a loop allocates per iteration")
			}
		case *ast.AssignStmt:
			for _, lhs := range node.Lhs {
				if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && isMapType(typeOf(pkg, idx.X)) {
					report(idx.Lbrack, "map write may allocate (grow/insert)")
				}
			}
			checkAssignBoxing(pkg, node, report)
		case *ast.IncDecStmt:
			if idx, ok := ast.Unparen(node.X).(*ast.IndexExpr); ok && isMapType(typeOf(pkg, idx.X)) {
				report(idx.Lbrack, "map write may allocate (grow/insert)")
			}
		case *ast.ReturnStmt:
			checkReturnBoxing(pkg, fi, node, report)
		case *ast.FuncLit:
			if capt := capturedVar(pkg, fi, node); capt != "" {
				report(node.Pos(), "closure captures "+capt+" and allocates")
			}
		case *ast.CompositeLit, *ast.UnaryExpr:
			checkAllocExpr(pkg, fi, n, stack, report)
		}
		return true
	})
	return diags
}

// checkCall handles the call-shaped rules: fmt, conversions, append
// discipline, make/new allocation, and argument boxing.
func checkCall(pkg *Package, fi *FuncInfo, call *ast.CallExpr, stack []ast.Node, blessed map[*ast.CallExpr]bool, report func(token.Pos, string)) {
	if isConversion(pkg, call) {
		checkConversion(pkg, call, report)
		return
	}
	switch builtinName(pkg, call) {
	case "append":
		if !blessed[call] {
			report(call.Pos(), "append outside the self-append idiom (x = append(x, ...)) allocates")
		}
		return
	case "make", "new":
		checkMakeNew(pkg, fi, call, stack, report)
		return
	case "":
		// not a builtin: resolved call below
	default:
		return // len/cap/copy/panic/delete/clear etc.
	}
	if callee := calleeOf(pkg, call); callee != nil && callee.Pkg() != nil {
		if callee.Pkg().Path() == "fmt" {
			report(call.Pos(), "call to fmt."+callee.Name()+" allocates (formats into fresh storage)")
			return
		}
	}
	checkArgBoxing(pkg, call, report)
}

// checkConversion flags string<->byte/rune-slice conversions, which
// copy into fresh storage unless constant-folded.
func checkConversion(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	if len(call.Args) != 1 || isConstExpr(pkg, call) {
		return
	}
	dst := typeOf(pkg, call.Fun)
	src := typeOf(pkg, call.Args[0])
	if dst == nil || src == nil {
		return
	}
	if (isStringType(dst) && isByteOrRuneSlice(src)) || (isByteOrRuneSlice(dst) && isStringType(src)) {
		report(call.Pos(), "string conversion allocates a copy")
	}
}

// checkAllocExpr flags the allocating expressions (make, new, &T{},
// non-empty slice literals, map literals) that escape the frame.
func checkAllocExpr(pkg *Package, fi *FuncInfo, n ast.Node, stack []ast.Node, report func(token.Pos, string)) {
	var expr ast.Expr
	var what string
	switch node := n.(type) {
	case *ast.UnaryExpr:
		if node.Op != token.AND {
			return
		}
		if _, ok := ast.Unparen(node.X).(*ast.CompositeLit); !ok {
			return
		}
		expr, what = node, "&composite literal"
	case *ast.CompositeLit:
		t := typeOf(pkg, node)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Slice:
			if len(node.Elts) == 0 {
				return // zero-length slice literal does not allocate
			}
			expr, what = node, "slice literal"
		case *types.Map:
			report(node.Pos(), "map literal allocates")
			return
		default:
			return // value struct/array literal: not an allocation
		}
		// &T{} is reported by the UnaryExpr case; don't double-report.
		if len(stack) > 0 {
			if u, ok := stack[len(stack)-1].(*ast.UnaryExpr); ok && u.Op == token.AND {
				return
			}
		}
	default:
		return
	}
	if esc, why := escapesAt(pkg, fi, expr, stack); esc {
		report(expr.Pos(), what+" escapes ("+why+") and allocates")
	}
}

// checkMakeNew is wired from the inspect loop via CallExpr handling:
// make(map/chan) and variable-size make always hit the heap; fixed-size
// make/new only when they escape.
func checkMakeNew(pkg *Package, fi *FuncInfo, call *ast.CallExpr, stack []ast.Node, report func(token.Pos, string)) {
	switch builtinName(pkg, call) {
	case "make":
		t := typeOf(pkg, call)
		if t == nil {
			return
		}
		switch t.Underlying().(type) {
		case *types.Map, *types.Chan:
			report(call.Pos(), "make("+t.String()+") allocates")
			return
		}
		for _, arg := range call.Args[1:] {
			if !isConstExpr(pkg, arg) {
				report(call.Pos(), "make with non-constant size allocates")
				return
			}
		}
		if esc, why := escapesAt(pkg, fi, call, stack); esc {
			report(call.Pos(), "make escapes ("+why+") and allocates")
		}
	case "new":
		if esc, why := escapesAt(pkg, fi, call, stack); esc {
			report(call.Pos(), "new escapes ("+why+") and allocates")
		}
	}
}

// checkArgBoxing flags concrete non-pointer values passed to interface
// parameters: the conversion boxes onto the heap.
func checkArgBoxing(pkg *Package, call *ast.CallExpr, report func(token.Pos, string)) {
	sigT := typeOf(pkg, call.Fun)
	if sigT == nil {
		return
	}
	sig, ok := sigT.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through unboxed
			}
			last := params.At(params.Len() - 1).Type()
			if sl, ok := last.(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if boxes(pkg, arg, pt) {
			report(arg.Pos(), "value boxed into interface argument allocates")
		}
	}
}

// checkAssignBoxing flags concrete values assigned to interface-typed
// destinations.
func checkAssignBoxing(pkg *Package, as *ast.AssignStmt, report func(token.Pos, string)) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		dst := typeOf(pkg, as.Lhs[i])
		if boxes(pkg, as.Rhs[i], dst) {
			report(as.Rhs[i].Pos(), "value boxed into interface on assignment allocates")
		}
	}
}

// checkReturnBoxing flags concrete values returned as interface results.
func checkReturnBoxing(pkg *Package, fi *FuncInfo, ret *ast.ReturnStmt, report func(token.Pos, string)) {
	sig := fi.Sig()
	if sig == nil || sig.Results().Len() != len(ret.Results) {
		return
	}
	for i, res := range ret.Results {
		if boxes(pkg, res, sig.Results().At(i).Type()) {
			report(res.Pos(), "value boxed into interface result allocates")
		}
	}
}

// boxes reports whether assigning expr to a destination of type dst
// heap-boxes: dst is an interface, expr's type is concrete and not
// pointer-shaped, and expr is neither nil nor a constant (the compiler
// statically allocates constant conversions).
func boxes(pkg *Package, expr ast.Expr, dst types.Type) bool {
	if dst == nil || !types.IsInterface(dst) {
		return false
	}
	tv, ok := pkg.Info.Types[expr]
	if !ok || tv.Value != nil || tv.IsNil() {
		return false
	}
	src := tv.Type
	if src == nil || types.IsInterface(src) {
		return false
	}
	switch src.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: fits the iface word, no box
	}
	return true
}

// capturedVar returns the name of a variable the closure captures from
// its enclosing function, or "" for a non-capturing (static) closure.
func capturedVar(pkg *Package, fi *FuncInfo, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		// Captured: declared in the enclosing function but outside the
		// literal itself.
		if v.Pos() >= fi.Pos() && v.Pos() <= fi.End() &&
			(v.Pos() < lit.Pos() || v.Pos() > lit.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// isConstExpr reports whether the expression folded to a constant.
func isConstExpr(pkg *Package, e ast.Expr) bool {
	tv, ok := pkg.Info.Types[e]
	return ok && tv.Value != nil
}
