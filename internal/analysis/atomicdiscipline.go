package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
)

// AtomicDiscipline enforces all-or-nothing atomicity per memory
// location: once any code passes a variable's address to a sync/atomic
// function, every access to that variable anywhere in the module must
// go through sync/atomic. A single plain load or store against an
// otherwise-atomic field is a data race the race detector only catches
// when the interleaving cooperates, and on weakly ordered hardware it
// can read torn or stale values in a way amd64 testing never shows.
//
// Unlike the contract analyzers this pass is whole-program rather than
// root-driven: a mixed-access race is a bug wherever it sits, marked
// path or not. Composite-literal field initialization is exempt —
// construction happens-before publication, matching the sync/atomic
// convention that initialization may be plain. The typed atomics
// (atomic.Uint64 and friends) enforce this discipline in the type
// system and are the repo's preferred form; this analyzer exists to
// keep the function-style escape hatch honest.
var AtomicDiscipline = &Analyzer{
	Name: "atomicdiscipline",
	Doc:  "flags plain reads/writes of variables that are elsewhere accessed via sync/atomic",
	Run:  runAtomicDiscipline,
}

func runAtomicDiscipline(prog *Program) []Diagnostic {
	// Pass 1: every variable whose address reaches a sync/atomic call,
	// with the first such site for the diagnostic text.
	atomicAt := make(map[*types.Var]token.Position)
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				v := atomicCallTarget(pkg, call)
				if v == nil {
					return true
				}
				pos := prog.Fset.Position(call.Pos())
				if prev, ok := atomicAt[v]; !ok || posLess(pos, prev) {
					atomicAt[v] = pos
				}
				return true
			})
		}
	}
	if len(atomicAt) == 0 {
		return nil
	}

	// Pass 2: flag every plain (non-atomic-position) use of those vars.
	var diags []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			inspectStack(file, func(n ast.Node, stack []ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				firstAtomic, hot := atomicAt[v]
				if !hot || atomicPosition(pkg, id, stack) || compositeLitKey(id, stack) {
					return true
				}
				access := "read"
				if isWriteUse(id, stack) {
					access = "write"
				}
				diags = append(diags, Diagnostic{
					Pos:      prog.Fset.Position(id.Pos()),
					Analyzer: "atomicdiscipline",
					Message: "plain " + access + " of " + v.Name() +
						": the variable is accessed atomically at " + shortPos(firstAtomic) +
						"; mixing plain and atomic access is a data race — use sync/atomic (or a typed atomic) everywhere",
				})
				return true
			})
		}
	}
	sortDiags(diags)
	return diags
}

// atomicCallTarget returns the variable whose address call hands to a
// sync/atomic operation, or nil for any other call. Only the
// function-style API takes addresses; the typed atomics are methods and
// make mixed access inexpressible, so they need no tracking.
func atomicCallTarget(pkg *Package, call *ast.CallExpr) *types.Var {
	callee := calleeOf(pkg, call)
	if callee == nil || callee.Pkg() == nil || callee.Pkg().Path() != "sync/atomic" {
		return nil
	}
	if sig, ok := callee.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return nil
	}
	if len(call.Args) == 0 {
		return nil
	}
	return addrTarget(pkg, call.Args[0])
}

// addrTarget resolves &expr to the variable or field being addressed.
func addrTarget(pkg *Package, e ast.Expr) *types.Var {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch x := ast.Unparen(u.X).(type) {
	case *ast.SelectorExpr:
		v, _ := pkg.Info.Uses[x.Sel].(*types.Var)
		return v
	case *ast.Ident:
		v, _ := pkg.Info.Uses[x].(*types.Var)
		return v
	case *ast.IndexExpr:
		// &slots[i]: the collection is the tracked location.
		switch b := ast.Unparen(x.X).(type) {
		case *ast.SelectorExpr:
			v, _ := pkg.Info.Uses[b.Sel].(*types.Var)
			return v
		case *ast.Ident:
			v, _ := pkg.Info.Uses[b].(*types.Var)
			return v
		}
	}
	return nil
}

// atomicPosition reports whether the identifier use sits inside the
// address argument of a sync/atomic call — the one sanctioned access
// form.
func atomicPosition(pkg *Package, id *ast.Ident, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if v := atomicCallTarget(pkg, call); v != nil {
			// Confirm the ident is under the first argument, not an
			// operand of old/new value expressions.
			if len(call.Args) > 0 && call.Args[0].Pos() <= id.Pos() && id.Pos() < call.Args[0].End() {
				return true
			}
		}
	}
	return false
}

// compositeLitKey reports whether id is the key of a composite-literal
// element (S{counter: 0}): initialization happens-before publication
// and is exempt, per the sync/atomic convention.
func compositeLitKey(id *ast.Ident, stack []ast.Node) bool {
	if len(stack) == 0 {
		return false
	}
	kv, ok := stack[len(stack)-1].(*ast.KeyValueExpr)
	if !ok || kv.Key != id {
		return false
	}
	if len(stack) < 2 {
		return false
	}
	_, inLit := stack[len(stack)-2].(*ast.CompositeLit)
	return inLit
}

// isWriteUse reports whether the identifier use is a store: the ident
// (or a selector/index chain rooted at it) appears on the left of an
// assignment or under ++/--.
func isWriteUse(id *ast.Ident, stack []ast.Node) bool {
	var node ast.Node = id
	for i := len(stack) - 1; i >= 0; i-- {
		switch parent := stack[i].(type) {
		case *ast.SelectorExpr, *ast.ParenExpr:
			node = parent.(ast.Expr)
		case *ast.IndexExpr:
			if parent.X != node {
				return false // ident is the index, not the target
			}
			node = parent
		case *ast.AssignStmt:
			for _, lhs := range parent.Lhs {
				if lhs == node {
					return true
				}
			}
			return false
		case *ast.IncDecStmt:
			return parent.X == node
		case *ast.UnaryExpr:
			if parent.Op == token.AND {
				// Address taken outside an atomic call: the pointer can
				// be stored/loaded plainly anywhere; treat as a write.
				return true
			}
			return false
		default:
			return false
		}
	}
	return false
}

// shortPos renders file:line with just the base filename, keeping
// diagnostic text independent of the checkout directory.
func shortPos(p token.Position) string {
	return filepath.Base(p.Filename) + ":" + strconv.Itoa(p.Line)
}
