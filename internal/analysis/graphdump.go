package analysis

import (
	"fmt"
	"path/filepath"
	"strings"
)

// DotGraph renders the devirtualized call graph reachable from every
// contract root as Graphviz DOT, for auditing what the contracts
// actually cover. Roots are filled; edge styles distinguish how each
// call was resolved (solid = static, dashed = interface devirtualized
// by class hierarchy, dotted = function-value flow, gray = literal
// containment). Reflect-opaque call sites appear as red octagons: past
// one of those the graph — and every contract — is blind.
func (p *Program) DotGraph() string {
	roots := p.allRoots()
	rootSet := make(map[*FuncInfo]bool, len(roots))
	for _, r := range roots {
		rootSet[r] = true
	}
	reach := p.reachableFrom(roots)
	inReach := make(map[*FuncInfo]bool, len(reach))
	for _, r := range reach {
		inReach[r.fn] = true
	}

	var b strings.Builder
	b.WriteString("digraph reprolint {\n")
	b.WriteString("  rankdir=LR;\n")
	b.WriteString("  node [shape=box, fontsize=10, fontname=\"monospace\"];\n")
	for _, r := range reach {
		name := p.nameOf(r.fn)
		if rootSet[r.fn] {
			fmt.Fprintf(&b, "  %q [style=filled, fillcolor=lightblue, label=%q];\n", name, name+markerSuffix(r.fn))
		} else {
			fmt.Fprintf(&b, "  %q;\n", name)
		}
	}
	for _, r := range reach {
		from := p.nameOf(r.fn)
		for _, e := range p.graph.callees[r.fn] {
			if !inReach[e.to] {
				continue
			}
			fmt.Fprintf(&b, "  %q -> %q [%s];\n", from, p.nameOf(e.to), edgeAttrs(e.kind))
		}
		for _, pos := range p.graph.opaque[r.fn] {
			pp := p.Fset.Position(pos)
			site := "reflect@" + filepath.Base(pp.Filename) + ":" + fmt.Sprint(pp.Line)
			fmt.Fprintf(&b, "  %q [shape=octagon, color=red];\n", site)
			fmt.Fprintf(&b, "  %q -> %q [color=red];\n", from, site)
		}
	}
	b.WriteString("}\n")
	return b.String()
}

func edgeAttrs(k edgeKind) string {
	switch k {
	case edgeIface:
		return `style=dashed, color=blue, label="iface"`
	case edgeFuncVal:
		return `style=dotted, color=darkgreen, label="funcval"`
	case edgeContains:
		return `color=gray, label="contains"`
	default:
		return `label="call"`
	}
}

// markerSuffix annotates a root node with its contracts.
func markerSuffix(fi *FuncInfo) string {
	var ms []string
	if fi.Hotpath {
		ms = append(ms, "hotpath")
	}
	if fi.Deterministic {
		ms = append(ms, "deterministic")
	}
	if fi.Shardpure {
		ms = append(ms, "shardpure")
	}
	if len(ms) == 0 {
		return ""
	}
	return "\n[" + strings.Join(ms, ",") + "]"
}
