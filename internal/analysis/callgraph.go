package analysis

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// callGraph is the static, direct-call graph over module functions.
// Only calls whose callee is statically resolvable are edges: plain
// function calls, qualified package calls, and method calls on concrete
// receivers. Calls through interfaces or function values are NOT edges —
// the contract there is that every implementation carries its own
// marker (enforced socially by DESIGN.md §9 and dynamically by the
// AllocsPerRun pins), because the truth of a devirtualized target is a
// whole-program property a per-PR linter should not guess at.
type callGraph struct {
	callees map[*types.Func][]*types.Func
}

func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{callees: make(map[*types.Func][]*types.Func)}
	for _, fi := range prog.markers.decls {
		if fi.Decl.Body == nil || fi.Obj == nil {
			continue
		}
		seen := make(map[*types.Func]bool)
		// FuncLit bodies are walked as part of the enclosing function:
		// a closure defined in a hot function runs on the hot path.
		ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(fi.Pkg, call)
			if callee == nil || seen[callee] {
				return true
			}
			if pkg := callee.Pkg(); pkg == nil || !prog.Local(pkg.Path()) {
				return true
			}
			seen[callee] = true
			g.callees[fi.Obj] = append(g.callees[fi.Obj], callee)
			return true
		})
	}
	return g
}

// calleeOf statically resolves a call's target, or nil when the target
// is dynamic (interface method, function value, type conversion).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// A method call on an interface value has no static body;
			// returning it is harmless (no decl) but misleading for
			// root attribution, so drop it explicitly.
			if types.IsInterface(sel.Recv()) {
				return nil
			}
			return fn
		}
		// Qualified call: pkg.Func.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// reached records why a function is subject to a contract: the marked
// root it was reached from (root == fn for the roots themselves).
type reached struct {
	fn   *FuncInfo
	root *FuncInfo
}

// reachableFrom walks the call graph breadth-first from the marked
// roots and returns every module function with a body that the contract
// covers, each attributed to one originating root. Iteration order is
// deterministic (sorted by function full name).
func (p *Program) reachableFrom(roots []*FuncInfo) []reached {
	sort.Slice(roots, func(i, j int) bool {
		return fullName(roots[i].Obj) < fullName(roots[j].Obj)
	})
	rootOf := make(map[*types.Func]*FuncInfo)
	var queue []*types.Func
	for _, r := range roots {
		if r.Obj == nil || rootOf[r.Obj] != nil {
			continue
		}
		rootOf[r.Obj] = r
		queue = append(queue, r.Obj)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, callee := range p.graph.callees[fn] {
			if rootOf[callee] != nil {
				continue
			}
			if p.markers.decls[callee] == nil {
				continue // no body loaded (e.g. interface method)
			}
			rootOf[callee] = rootOf[fn]
			queue = append(queue, callee)
		}
	}
	var out []reached
	for fn, root := range rootOf {
		fi := p.markers.decls[fn]
		if fi == nil || fi.Decl.Body == nil {
			continue
		}
		out = append(out, reached{fn: fi, root: root})
	}
	sort.Slice(out, func(i, j int) bool {
		return fullName(out[i].fn.Obj) < fullName(out[j].fn.Obj)
	})
	return out
}

// fullName is types.Func.FullName without the module path noise:
// "soc.(*SoC).Run" instead of "(*repro/internal/sim/soc.SoC).Run".
func fullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + name
		}
		return name
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	recvName := recv.String()
	if named, ok := recv.(*types.Named); ok {
		recvName = named.Obj().Name()
	}
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	if ptr != "" {
		return pkgName + "(" + ptr + recvName + ")." + name
	}
	return pkgName + recvName + "." + name
}

// viaClause renders the attribution suffix for propagated diagnostics.
func viaClause(r reached) string {
	if r.fn == r.root {
		return ""
	}
	return " (reached from " + strings.TrimSpace(fullName(r.root.Obj)) + ")"
}
