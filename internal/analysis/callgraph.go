package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// edgeKind records how a call edge was resolved, so the -graph dump and
// the soundness story can distinguish a plain call from a devirtualized
// one.
type edgeKind uint8

const (
	// edgeStatic is a directly resolved call: plain function, qualified
	// package function, or method on a concrete receiver.
	edgeStatic edgeKind = iota
	// edgeIface is a class-hierarchy-resolved interface-method call:
	// one edge per in-module concrete type implementing the interface.
	edgeIface
	// edgeFuncVal is a function-value call resolved through the
	// flow-insensitive assignment scan: one edge per func literal or
	// function reference ever assigned to the called slot.
	edgeFuncVal
	// edgeContains links a function to a literal defined inside it: a
	// closure created on a marked path is conservatively assumed to run
	// on it.
	edgeContains
)

func (k edgeKind) String() string {
	switch k {
	case edgeIface:
		return "iface"
	case edgeFuncVal:
		return "funcval"
	case edgeContains:
		return "contains"
	default:
		return "static"
	}
}

// edge is one resolved call target.
type edge struct {
	to   *FuncInfo
	kind edgeKind
}

// callGraph is the devirtualized, whole-program call graph over module
// functions — declarations and function literals alike. Three edge
// sources: statically resolved calls; interface-method call sites
// resolved by class hierarchy analysis to every in-module concrete
// implementer (scope = loaded module packages only — an out-of-module
// implementation is invisible, which is sound for this repo because the
// contracts only bind module code); and function-value calls resolved
// through a flow-insensitive scan of every assignment into func-typed
// vars, fields and params. Calls through reflect cannot be resolved at
// all and are recorded as opaque sites, which the devirt analyzer turns
// into diagnostics rather than silence.
type callGraph struct {
	callees map[*FuncInfo][]edge
	// opaque records reflect call positions per enclosing function.
	opaque map[*FuncInfo][]token.Pos
}

func buildCallGraph(prog *Program) *callGraph {
	g := &callGraph{
		callees: make(map[*FuncInfo][]edge),
		opaque:  make(map[*FuncInfo][]token.Pos),
	}
	dv := newDevirtualizer(prog)
	for _, fi := range prog.markers.all {
		if fi.Body() == nil {
			continue
		}
		g.buildEdges(prog, dv, fi)
	}
	return g
}

// buildEdges walks one function body (not descending into nested
// literals — each literal is its own node) and records every resolvable
// call target.
func (g *callGraph) buildEdges(prog *Program, dv *devirtualizer, fi *FuncInfo) {
	seen := make(map[*FuncInfo]bool)
	add := func(to *FuncInfo, kind edgeKind) {
		if to == nil || to.Body() == nil || seen[to] {
			return
		}
		seen[to] = true
		g.callees[fi] = append(g.callees[fi], edge{to: to, kind: kind})
	}
	inspectShallow(fi.Body(), func(n ast.Node, stack []ast.Node) bool {
		switch node := n.(type) {
		case *ast.FuncLit:
			add(prog.markers.lits[node], edgeContains)
		case *ast.CallExpr:
			g.resolveCall(prog, dv, fi, node, add)
		}
		return true
	})
}

// resolveCall classifies one call site and adds its edges.
func (g *callGraph) resolveCall(prog *Program, dv *devirtualizer, fi *FuncInfo, call *ast.CallExpr, add func(*FuncInfo, edgeKind)) {
	pkg := fi.Pkg
	if isConversion(pkg, call) || builtinName(pkg, call) != "" {
		return
	}
	fun := ast.Unparen(call.Fun)

	// Interface-method calls (and interface method expressions):
	// devirtualize by class hierarchy before consulting calleeOf, which
	// deliberately reports them unresolvable. This also covers methods
	// promoted from embedded interface fields, whose selection receiver
	// is the concrete outer struct.
	if selx, ok := fun.(*ast.SelectorExpr); ok {
		if sel, ok := pkg.Info.Selections[selx]; ok {
			if m, ok := sel.Obj().(*types.Func); ok && methodIface(m) != nil {
				for _, impl := range dv.implementersOf(methodIface(m), m.Name()) {
					add(impl, edgeIface)
				}
				return
			}
		}
	}

	if callee := calleeOf(pkg, call); callee != nil {
		if cpkg := callee.Pkg(); cpkg != nil && cpkg.Path() == "reflect" && reflectInvoker[callee.Name()] {
			g.opaque[fi] = append(g.opaque[fi], call.Pos())
			return
		}
		add(dv.declFor(callee), edgeStatic)
		return
	}

	// Immediately invoked literal: func(){...}().
	if lit, ok := fun.(*ast.FuncLit); ok {
		add(prog.markers.lits[lit], edgeStatic)
		return
	}

	// Function-value call: resolve the called slot (var, field, param,
	// or indexed collection) through the assignment-flow scan.
	if slot := slotObj(pkg, fun); slot != nil {
		for _, target := range dv.flows[slot] {
			add(target, edgeFuncVal)
		}
	}
}

// reflectInvoker names the reflect entry points that invoke arbitrary
// code: past one of these, no static analysis can follow.
var reflectInvoker = map[string]bool{"Call": true, "CallSlice": true}

// methodIface returns the interface type a method belongs to, or nil
// for a concrete method.
func methodIface(m *types.Func) *types.Interface {
	sig, ok := m.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// calleeOf statically resolves a call's target, or nil when the target
// is dynamic (interface method, function value, type conversion).
// Generic instantiations resolve to their origin declaration.
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[fun].(*types.Func); ok {
			return fn.Origin()
		}
	case *ast.IndexExpr:
		// Generic instantiation f[T](...).
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			if fn, ok := pkg.Info.Uses[id].(*types.Func); ok {
				return fn.Origin()
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				return nil
			}
			// Interface receivers have no static body; the caller
			// devirtualizes them through the class hierarchy instead.
			if methodIface(fn) != nil {
				return nil
			}
			return fn.Origin()
		}
		// Qualified call: pkg.Func.
		if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			return fn.Origin()
		}
	}
	return nil
}

// slotObj resolves the storage location a function-value call reads
// from: a plain variable, a struct field, a parameter, or the base
// collection of an index expression (handlers[i]() resolves to every
// function ever stored in handlers).
func slotObj(pkg *Package, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if o := pkg.Info.Uses[x]; o != nil {
			return o
		}
		return pkg.Info.Defs[x]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[x]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[x.Sel]
	case *ast.IndexExpr:
		return slotObj(pkg, x.X)
	case *ast.StarExpr:
		return slotObj(pkg, x.X)
	}
	return nil
}

// reached records why a function is subject to a contract: the marked
// root it was reached from (root == fn for the roots themselves).
type reached struct {
	fn   *FuncInfo
	root *FuncInfo
}

// reachableFrom walks the devirtualized call graph breadth-first from
// the marked roots and returns every module function with a body that
// the contract covers, each attributed to one originating root.
// Iteration order is deterministic (sorted by function full name).
func (p *Program) reachableFrom(roots []*FuncInfo) []reached {
	sort.Slice(roots, func(i, j int) bool {
		return p.nameOf(roots[i]) < p.nameOf(roots[j])
	})
	rootOf := make(map[*FuncInfo]*FuncInfo)
	var queue []*FuncInfo
	for _, r := range roots {
		if r == nil || rootOf[r] != nil {
			continue
		}
		rootOf[r] = r
		queue = append(queue, r)
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		for _, e := range p.graph.callees[fn] {
			if rootOf[e.to] != nil {
				continue
			}
			rootOf[e.to] = rootOf[fn]
			queue = append(queue, e.to)
		}
	}
	var out []reached
	for fn, root := range rootOf {
		if fn.Body() == nil {
			continue
		}
		out = append(out, reached{fn: fn, root: root})
	}
	sort.Slice(out, func(i, j int) bool {
		return p.nameOf(out[i].fn) < p.nameOf(out[j].fn)
	})
	return out
}

// allRoots returns the union of every contract's marked roots, for
// passes (like the devirt opacity report) that apply to any marked
// path.
func (p *Program) allRoots() []*FuncInfo {
	seen := make(map[*FuncInfo]bool)
	var out []*FuncInfo
	for _, c := range []contract{contractHotpath, contractDeterministic, contractShardpure} {
		for _, fi := range p.markers.roots(c) {
			if !seen[fi] {
				seen[fi] = true
				out = append(out, fi)
			}
		}
	}
	return out
}

// nameOf renders a stable human-readable name for any graph node:
// fullName for declarations, pkg.func@file:line for literals.
func (p *Program) nameOf(fi *FuncInfo) string {
	if fi == nil {
		return ""
	}
	if fi.Obj != nil {
		return fullName(fi.Obj)
	}
	if fi.Lit != nil {
		pos := p.Fset.Position(fi.Lit.Pos())
		return fi.Pkg.Types.Name() + ".func@" + filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line) + ":" + strconv.Itoa(pos.Column)
	}
	return "?"
}

// fullName is types.Func.FullName without the module path noise:
// "soc.(*SoC).Run" instead of "(*repro/internal/sim/soc.SoC).Run".
func fullName(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	name := fn.Name()
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		if fn.Pkg() != nil {
			return fn.Pkg().Name() + "." + name
		}
		return name
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
		ptr = "*"
	}
	recvName := recv.String()
	if named, ok := recv.(*types.Named); ok {
		recvName = named.Obj().Name()
	}
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name() + "."
	}
	if ptr != "" {
		return pkgName + "(" + ptr + recvName + ")." + name
	}
	return pkgName + recvName + "." + name
}

// viaClause renders the attribution suffix for propagated diagnostics.
func viaClause(p *Program, r reached) string {
	if r.fn == r.root {
		return ""
	}
	return " (reached from " + strings.TrimSpace(p.nameOf(r.root)) + ")"
}
