package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked module package: syntax plus types, the
// unit the analyzers inspect.
type Package struct {
	// Path is the import path ("repro/internal/sim/soc").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Files is the parsed syntax (non-test files only).
	Files []*ast.File
	// Types and Info are the type-checker's output.
	Types *types.Package
	Info  *types.Info
}

// Program is a loaded module tree: every requested package plus every
// module-local dependency, type-checked against one shared FileSet so
// cross-package analysis (call graphs, marker propagation) is possible.
// reprolint builds one Program per invocation.
type Program struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string
	// Pkgs holds the loaded module packages in dependency order
	// (imports before importers).
	Pkgs []*Package

	byPath map[string]*Package
	std    types.Importer
	// loading guards against import cycles during recursive loads.
	loading map[string]bool

	markers *markerSet
	graph   *callGraph
}

// Load parses and type-checks the module packages matched by patterns.
// Patterns are directory paths relative to dir; a trailing "/..."
// expands recursively (skipping testdata, hidden and underscore
// directories — explicit paths may still point into testdata, which is
// how fixture packages load). Module-local imports of matched packages
// are loaded transitively; standard-library imports come from export
// data (or from source when no export data is available).
func Load(dir string, patterns ...string) (*Program, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	modDir, modPath, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		ModPath: modPath,
		ModDir:  modDir,
		byPath:  make(map[string]*Package),
		loading: make(map[string]bool),
	}
	prog.std = newStdImporter(prog.Fset)

	dirs, err := expandPatterns(absDir, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v", patterns)
	}
	for _, d := range dirs {
		rel, err := filepath.Rel(modDir, d)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", d, modDir)
		}
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		if _, err := prog.loadLocal(importPath); err != nil {
			return nil, err
		}
	}
	prog.markers = collectMarkers(prog)
	prog.graph = buildCallGraph(prog)
	return prog, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (modDir, modPath string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", dir)
		}
		d = parent
	}
}

// expandPatterns resolves CLI-style package patterns to directories.
func expandPatterns(base string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var out []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			out = append(out, d)
		}
	}
	for _, p := range patterns {
		recursive := false
		if p == "..." || strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(strings.TrimSuffix(p, "..."), "/")
			if p == "" {
				p = "."
			}
		}
		root := p
		if !filepath.IsAbs(root) {
			root = filepath.Join(base, p)
		}
		if !recursive {
			if hasGoFiles(root) {
				add(root)
			} else {
				return nil, fmt.Errorf("analysis: no Go files in %s", root)
			}
			continue
		}
		err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(out)
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// loadLocal parses and type-checks one module package (and, through the
// importer, its module-local dependencies), memoized by import path.
func (p *Program) loadLocal(importPath string) (*Package, error) {
	if pkg, ok := p.byPath[importPath]; ok {
		return pkg, nil
	}
	if p.loading[importPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", importPath)
	}
	p.loading[importPath] = true
	defer delete(p.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, p.ModPath), "/")
	dir := filepath.Join(p.ModDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: cannot read package %s: %w", importPath, err)
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	cfg := types.Config{Importer: progImporter{p}}
	tpkg, err := cfg.Check(importPath, p.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", importPath, err)
	}
	pkg := &Package{Path: importPath, Dir: dir, Files: files, Types: tpkg, Info: info}
	p.byPath[importPath] = pkg
	p.Pkgs = append(p.Pkgs, pkg)
	return pkg, nil
}

// Local reports whether importPath names a package inside the module.
func (p *Program) Local(importPath string) bool {
	return importPath == p.ModPath || strings.HasPrefix(importPath, p.ModPath+"/")
}

// progImporter routes module-local imports through the Program's own
// loader and everything else to the standard-library importer.
type progImporter struct{ prog *Program }

func (i progImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if i.prog.Local(path) {
		pkg, err := i.prog.loadLocal(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return i.prog.std.Import(path)
}

// newStdImporter picks the standard-library importer: compiled export
// data when available (fast), else type-checking from GOROOT source —
// the go/packages-free fallback that keeps the tool dependency-free.
func newStdImporter(fset *token.FileSet) types.Importer {
	gc := importer.Default()
	if _, err := gc.Import("fmt"); err == nil {
		return gc
	}
	return importer.ForCompiler(fset, "source", nil)
}
