package analysis

import (
	"go/ast"
	"go/types"
)

// inspectStack walks root calling f with every node and its ancestor
// stack (root first, parent of n last). Returning false skips n's
// children, mirroring ast.Inspect.
func inspectStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := f(n, stack)
		stack = append(stack, n)
		if !descend {
			// Still push/pop symmetrically: ast.Inspect won't call us
			// for children, but it will send the nil pop for n.
			return false
		}
		return true
	})
}

// inspectShallow walks root like inspectStack but does not descend
// into nested function literals: every literal is its own call-graph
// node, checked when its FuncInfo is processed (reached through a
// containment or flow edge). The *ast.FuncLit node itself IS visited —
// the cost of creating the closure value belongs to the enclosing
// function.
func inspectShallow(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	inspectStack(root, func(n ast.Node, stack []ast.Node) bool {
		if !f(n, stack) {
			return false
		}
		_, isLit := n.(*ast.FuncLit)
		return !isLit
	})
}

// inPanicArg reports whether the node whose ancestor stack is given sits
// inside the argument list of a builtin panic call. Assertion panics
// (panic(fmt.Sprintf(...)) guarding impossible states) are exempt from
// the hot-path allocation rules: if they fire, performance is moot.
func inPanicArg(pkg *Package, stack []ast.Node) bool {
	for i := len(stack) - 1; i >= 0; i-- {
		call, ok := stack[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if isBuiltin(pkg, call, "panic") {
			return true
		}
	}
	return false
}

// isBuiltin reports whether call invokes the named Go builtin.
func isBuiltin(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// builtinName returns the builtin's name if call invokes one, else "".
func builtinName(pkg *Package, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if _, isB := pkg.Info.Uses[id].(*types.Builtin); isB {
		return id.Name
	}
	return ""
}

// isConversion reports whether call is a type conversion T(x).
func isConversion(pkg *Package, call *ast.CallExpr) bool {
	tv, ok := pkg.Info.Types[call.Fun]
	return ok && tv.IsType()
}

// typeOf is a nil-safe Info.Types lookup.
func typeOf(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// enclosedInLoop reports whether any ancestor between the function body
// (stack[0]) and the node is a for/range statement.
func enclosedInLoop(stack []ast.Node) bool {
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return true
		}
	}
	return false
}
