package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Marker grammar (see DESIGN.md §9):
//
//	//repro:hotpath        — on a function's doc comment: the function and
//	                         every same-module function it can reach —
//	                         including through interface dispatch and
//	                         function values (the devirtualized graph) —
//	                         must be allocation-free. Before the package
//	                         clause: applies to every function in that
//	                         file.
//	//repro:deterministic  — same placement rules; the reachable code must
//	                         not consult wall-clock time, global RNG, the
//	                         environment, or unsorted map iteration.
//	//repro:shardpure      — same placement rules; the reachable code must
//	                         not write package-level state, read the
//	                         clock/environment, or depend on goroutine or
//	                         host identity. This is the static form of the
//	                         -jobs 1 ≡ -jobs N contract: a task's result
//	                         may depend only on its own inputs.
//	//repro:allow <reason> — on (or directly above) a flagged line:
//	                         suppresses diagnostics on that line. The
//	                         reason is mandatory; the driver counts and
//	                         reports every allowance it uses, and a stale
//	                         allowance (suppressing nothing) is itself a
//	                         diagnostic.
const (
	markerPrefix      = "//repro:"
	markerHotpath     = "hotpath"
	markerDeterminism = "deterministic"
	markerShardpure   = "shardpure"
	markerAllow       = "allow"
)

// contract names one of the propagating marker contracts.
type contract int

const (
	contractHotpath contract = iota
	contractDeterministic
	contractShardpure
)

// FuncInfo is the per-function record the analyzers share. It covers
// both declared functions (Decl != nil, Obj != nil) and function
// literals (Lit != nil): a literal stored in a struct field or passed
// as a callback is a call-graph node of its own, reached through the
// function-value flow edges rather than lexical containment.
type FuncInfo struct {
	Obj  *types.Func
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	Pkg  *Package

	Hotpath       bool
	Deterministic bool
	Shardpure     bool
}

// Body returns the function's body block (nil for bodyless decls).
func (fi *FuncInfo) Body() *ast.BlockStmt {
	if fi.Lit != nil {
		return fi.Lit.Body
	}
	if fi.Decl != nil {
		return fi.Decl.Body
	}
	return nil
}

// Pos and End bound the whole function (declaration or literal), used
// by the capture analysis to classify variable origins.
func (fi *FuncInfo) Pos() token.Pos {
	if fi.Lit != nil {
		return fi.Lit.Pos()
	}
	return fi.Decl.Pos()
}

func (fi *FuncInfo) End() token.Pos {
	if fi.Lit != nil {
		return fi.Lit.End()
	}
	return fi.Decl.End()
}

// Sig returns the function's signature type, or nil when unknown.
func (fi *FuncInfo) Sig() *types.Signature {
	if fi.Obj != nil {
		sig, _ := fi.Obj.Type().(*types.Signature)
		return sig
	}
	if fi.Lit != nil {
		if t := typeOf(fi.Pkg, fi.Lit); t != nil {
			sig, _ := t.(*types.Signature)
			return sig
		}
	}
	return nil
}

// marked reports whether the contract's marker is set on this function.
func (fi *FuncInfo) marked(c contract) bool {
	switch c {
	case contractHotpath:
		return fi.Hotpath
	case contractDeterministic:
		return fi.Deterministic
	default:
		return fi.Shardpure
	}
}

// allowMark is one //repro:allow comment. It suppresses diagnostics on
// its own line and on the line directly below (so it works both as a
// trailing comment and as a comment above the statement).
type allowMark struct {
	Pos    token.Position
	Reason string
	Used   int
}

type markerSet struct {
	funcs map[*types.Func]*FuncInfo
	// decls indexes every function declaration, marked or not, for
	// call-graph body lookup.
	decls map[*types.Func]*FuncInfo
	// lits indexes every function literal as its own call-graph node.
	lits map[*ast.FuncLit]*FuncInfo
	// order of all FuncInfos in file/position order, for deterministic
	// whole-program passes.
	all []*FuncInfo
	// allows maps filename → line → mark.
	allows map[string]map[int]*allowMark
	// allowOrder keeps allows in file/line order for stable reporting.
	order []*allowMark
	// diags holds marker-grammar problems (unknown directive, missing
	// reason, misplaced marker).
	diags []Diagnostic
}

func collectMarkers(prog *Program) *markerSet {
	ms := &markerSet{
		funcs:  make(map[*types.Func]*FuncInfo),
		decls:  make(map[*types.Func]*FuncInfo),
		lits:   make(map[*ast.FuncLit]*FuncInfo),
		allows: make(map[string]map[int]*allowMark),
	}
	for _, pkg := range prog.Pkgs {
		for _, file := range pkg.Files {
			ms.collectFile(prog, pkg, file)
		}
	}
	return ms
}

func (ms *markerSet) collectFile(prog *Program, pkg *Package, file *ast.File) {
	// Index doc comments so directives can be classified by placement.
	funcDocs := make(map[*ast.CommentGroup]*ast.FuncDecl)
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
			funcDocs[fd.Doc] = fd
		}
	}

	var fileHot, fileDet, fileShard bool
	for _, group := range file.Comments {
		fileLevel := group.End() < file.Package
		target := funcDocs[group]
		for _, c := range group.List {
			directive, arg, ok := parseDirective(c.Text)
			if !ok {
				continue
			}
			pos := prog.Fset.Position(c.Pos())
			switch directive {
			case markerHotpath, markerDeterminism, markerShardpure:
				switch {
				case target != nil:
					fi := ms.funcInfo(pkg, target)
					fi.setMarker(directive)
				case fileLevel:
					switch directive {
					case markerHotpath:
						fileHot = true
					case markerDeterminism:
						fileDet = true
					default:
						fileShard = true
					}
				default:
					ms.diags = append(ms.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "markers",
						Message:  "//repro:" + directive + " must be on a function's doc comment or before the package clause",
					})
				}
			case markerAllow:
				if arg == "" {
					ms.diags = append(ms.diags, Diagnostic{
						Pos:      pos,
						Analyzer: "markers",
						Message:  "//repro:allow requires a reason",
					})
					continue
				}
				mark := &allowMark{Pos: pos, Reason: arg}
				byLine := ms.allows[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*allowMark)
					ms.allows[pos.Filename] = byLine
				}
				byLine[pos.Line] = mark
				ms.order = append(ms.order, mark)
			default:
				ms.diags = append(ms.diags, Diagnostic{
					Pos:      pos,
					Analyzer: "markers",
					Message:  "unknown directive //repro:" + directive,
				})
			}
		}
	}

	if fileHot || fileDet || fileShard {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fi := ms.funcInfo(pkg, fd)
			fi.Hotpath = fi.Hotpath || fileHot
			fi.Deterministic = fi.Deterministic || fileDet
			fi.Shardpure = fi.Shardpure || fileShard
		}
	}

	// Register every declaration and every function literal for
	// call-graph lookup. Literals are their own nodes: one assigned to
	// a struct field in setup and invoked through the field on a marked
	// path must be checked even though no declaration names it.
	for _, decl := range file.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok {
			ms.funcInfo(pkg, fd)
		}
	}
	ast.Inspect(file, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			ms.litInfo(pkg, lit)
		}
		return true
	})
}

func (fi *FuncInfo) setMarker(directive string) {
	switch directive {
	case markerHotpath:
		fi.Hotpath = true
	case markerDeterminism:
		fi.Deterministic = true
	case markerShardpure:
		fi.Shardpure = true
	}
}

func (ms *markerSet) funcInfo(pkg *Package, decl *ast.FuncDecl) *FuncInfo {
	obj, _ := pkg.Info.Defs[decl.Name].(*types.Func)
	if obj == nil {
		return &FuncInfo{Decl: decl, Pkg: pkg}
	}
	if fi, ok := ms.decls[obj]; ok {
		return fi
	}
	fi := &FuncInfo{Obj: obj, Decl: decl, Pkg: pkg}
	ms.decls[obj] = fi
	ms.funcs[obj] = fi
	ms.all = append(ms.all, fi)
	return fi
}

func (ms *markerSet) litInfo(pkg *Package, lit *ast.FuncLit) *FuncInfo {
	if fi, ok := ms.lits[lit]; ok {
		return fi
	}
	fi := &FuncInfo{Lit: lit, Pkg: pkg}
	ms.lits[lit] = fi
	ms.all = append(ms.all, fi)
	return fi
}

// parseDirective splits "//repro:word rest" into (word, rest, true).
func parseDirective(text string) (directive, arg string, ok bool) {
	rest, found := strings.CutPrefix(text, markerPrefix)
	if !found {
		return "", "", false
	}
	directive, arg, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(directive), strings.TrimSpace(arg), true
}

// allowFor returns the allowance covering a diagnostic at pos: a
// //repro:allow on the same line or on the line directly above.
func (ms *markerSet) allowFor(pos token.Position) *allowMark {
	byLine := ms.allows[pos.Filename]
	if byLine == nil {
		return nil
	}
	if m := byLine[pos.Line]; m != nil {
		return m
	}
	return byLine[pos.Line-1]
}

// roots returns the marked roots for one contract.
func (ms *markerSet) roots(c contract) []*FuncInfo {
	var out []*FuncInfo
	for _, fi := range ms.all {
		if fi.marked(c) {
			out = append(out, fi)
		}
	}
	return out
}
